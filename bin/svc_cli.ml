(* svc — command-line front end.

   Databases are text files in the Db_text format (one "endo FACT" or
   "exo FACT" per line); queries use the Query_parse syntax with an optional
   language tag ("cq:", "ucq:", "rpq:", "crpq:", "ucrpq:", "cqneg:"). *)

open Cmdliner

let db_arg =
  let doc = "Database file (lines of 'endo R(a,b)' / 'exo S(c)')." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DATABASE" ~doc)

let query_arg pos_i =
  let doc =
    "Boolean query, e.g. 'R(?x), S(?x,?y)' or 'rpq: (A B* C)(s,t)'."
  in
  Arg.(required & pos pos_i (some string) None & info [] ~docv:"QUERY" ~doc)

let load_db path = Db_text.load path
let parse_query s = Query_parse.parse s

(* ---------------- shapley ---------------- *)

let shapley_cmd =
  let run db_path query_str =
    let db = load_db db_path in
    let q = parse_query query_str in
    let values = Svc.svc_all q db in
    let sorted =
      List.sort (fun (_, a) (_, b) -> Rational.compare b a) values
    in
    List.iter
      (fun (f, v) ->
         Printf.printf "%-30s %s  (≈ %.4f)\n" (Fact.to_string f) (Rational.to_string v)
           (Rational.to_float v))
      sorted;
    let total = List.fold_left (fun acc (_, v) -> Rational.add acc v) Rational.zero values in
    Printf.printf "sum: %s\n" (Rational.to_string total)
  in
  let doc = "Shapley value of every endogenous fact (SVC_q)." in
  Cmd.v (Cmd.info "shapley" ~doc) Term.(const run $ db_arg $ query_arg 1)

(* ---------------- eval ---------------- *)

let eval_cmd =
  let stats_arg =
    Arg.(value
         & opt ~vopt:(Some `Text) (some (enum [ ("text", `Text); ("json", `Json) ])) None
         & info [ "stats" ] ~docv:"FORMAT"
             ~doc:"Print the engine's instrumentation record after the values \
                   ($(b,--stats) for text, $(b,--stats=json) for one JSON line).")
  in
  let cache_arg =
    Arg.(value & opt (some int) None & info [ "cache-capacity" ] ~docv:"N"
           ~doc:"Bound the shared memo cache to $(docv) entries.")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Evaluate facts on $(docv) parallel domains (default 1 = \
                 serial, 0 = one per available core).  Values and order are \
                 identical for every $(docv).")
  in
  let backend_arg =
    Arg.(value & opt string "auto" & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Evaluation backend: $(b,conditioning) (one conditioned \
                 count per fact), $(b,circuit) (one d-DNNF compilation, \
                 every fact read off a single traversal pair), $(b,auto) \
                 (default: the compilation planner predicts the circuit \
                 size from the lineage's induced width and picks the \
                 cheaper backend), $(b,auto-legacy) (the pre-planner \
                 fact-count rule), or $(b,sample) (seeded anytime \
                 estimation with rational confidence intervals — the \
                 only approximate backend, never auto-selected; see \
                 $(b,--seed), $(b,--epsilon), $(b,--max-draws), \
                 $(b,--strategy)).  The exact backends produce identical \
                 values for every choice.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N"
           ~doc:"Sampling backend: master PRNG seed (default 0).  Same \
                 seed, bit-identical estimates — at any $(b,--jobs).")
  in
  let epsilon_arg =
    Arg.(value & opt string "1/20" & info [ "epsilon" ] ~docv:"E"
           ~doc:"Sampling backend: target confidence-interval half-width \
                 as an exact rational ($(b,1/20), $(b,0.05), ...); \
                 sampling stops early once every fact's interval is this \
                 tight (default 1/20).")
  in
  let max_draws_arg =
    Arg.(value & opt int 4096 & info [ "max-draws" ] ~docv:"K"
           ~doc:"Sampling backend: draw budget (default 4096) — shared \
                 permutations under $(b,--strategy mc), per-fact draws \
                 under the stratified strategies.")
  in
  let strategy_arg =
    Arg.(value & opt string "hybrid" & info [ "strategy" ] ~docv:"S"
           ~doc:"Sampling backend: $(b,mc) (permutation sampling), \
                 $(b,stratified) (per-coalition-size strata), or \
                 $(b,hybrid) (default: cheap strata enumerated exactly, \
                 expensive ones sampled).")
  in
  let plan_flag =
    Arg.(value & flag
         & info [ "plan" ]
             ~doc:"Print the compilation plan (AND-components, \
                   elimination orders, induced widths, predicted size) \
                   before the values, and verify its certificate with \
                   the independent checker (failure exits 1).")
  in
  let trace_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record the run's telemetry spans and write a Chrome \
                 trace_event JSON file to $(docv) (loadable in Perfetto / \
                 about:tracing; at $(b,--jobs) N each worker domain gets \
                 its own trace lane).  Inspect it with \
                 $(b,svc trace summary).")
  in
  let run db_path query_str stats cache_capacity jobs backend seed epsilon
      max_draws strategy show_plan trace =
    if jobs < 0 then begin
      Printf.eprintf "svc eval: --jobs must be >= 0 (got %d)\n" jobs;
      exit 2
    end;
    let backend =
      match backend with
      | "auto" -> `Auto
      | "auto-legacy" -> `AutoLegacy
      | "conditioning" -> `Conditioning
      | "circuit" -> `Circuit
      | "sample" ->
        let strategy =
          match Sample.strategy_of_string strategy with
          | Some s -> s
          | None ->
            Printf.eprintf
              "svc eval: unknown strategy %S (expected mc, stratified or \
               hybrid)\n"
              strategy;
            exit 2
        in
        let epsilon =
          match Rational.of_string epsilon with
          | e when Rational.sign e > 0 -> e
          | _ ->
            Printf.eprintf "svc eval: --epsilon must be > 0 (got %s)\n"
              epsilon;
            exit 2
          | exception _ ->
            Printf.eprintf
              "svc eval: --epsilon must be a rational like 1/20 (got %s)\n"
              epsilon;
            exit 2
        in
        if max_draws < 1 then begin
          Printf.eprintf "svc eval: --max-draws must be >= 1 (got %d)\n"
            max_draws;
          exit 2
        end;
        `Sample (Sample.config ~strategy ~seed ~epsilon ~max_draws ())
      | other ->
        Printf.eprintf
          "svc eval: unknown backend %S (expected auto, auto-legacy, \
           conditioning, circuit or sample)\n"
          other;
        exit 2
    in
    let db = load_db db_path in
    let q = parse_query query_str in
    let tel = Telemetry.create ~enabled:(trace <> None) () in
    let e = Engine.create ~tel ?cache_capacity ~jobs ~backend q db in
    let n_facts = Database.size_endo db in
    (match (backend, Engine.auto_selected e, Engine.plan e) with
     | `AutoLegacy, true, _ ->
       (* the historical note, verbatim *)
       Printf.printf
         "note: auto-selected circuit backend (%d endogenous facts >= %d); \
          --backend overrides\n"
         n_facts Engine.circuit_threshold
     | `Auto, true, Some pl ->
       Printf.printf
         "note: auto-selected circuit backend (%s); --backend overrides\n"
         (Plan.recommend_reason pl ~n_facts)
     | _ -> ());
    if show_plan then begin
      let phi = Engine.lineage e in
      let pl =
        match Engine.plan e with Some pl -> pl | None -> Plan.analyze phi
      in
      print_string (Plan.to_string pl);
      match Plancheck.check phi pl with
      | Ok r -> Printf.printf "certificate : %s\n" (Plancheck.report_to_string r)
      | Error msg ->
        Printf.eprintf "svc eval: plan certificate verification failed: %s\n"
          msg;
        exit 1
    end;
    let values = Engine.svc_all e in
    let sorted =
      List.sort (fun (_, a) (_, b) -> Rational.compare b a) values
    in
    List.iter
      (fun (f, v) ->
         Printf.printf "%-30s %s  (≈ %.4f)\n" (Fact.to_string f) (Rational.to_string v)
           (Rational.to_float v))
      sorted;
    let total = List.fold_left (fun acc (_, v) -> Rational.add acc v) Rational.zero values in
    Printf.printf "sum: %s\n" (Rational.to_string total);
    (match stats with
     | None -> ()
     | Some `Text -> print_string (Stats.to_string (Engine.stats e))
     | Some `Json -> print_endline (Stats.to_json (Engine.stats e)));
    match trace with
    | None -> ()
    | Some path ->
      (try
         Telemetry.Export.write_chrome tel path;
         Printf.printf "trace   : wrote %s (%d spans)\n" path
           (List.length (Telemetry.events tel))
       with Sys_error msg ->
         Printf.eprintf "svc eval: cannot write trace: %s\n" msg;
         exit 2)
  in
  let doc =
    "Shapley value of every endogenous fact through the batched memoizing \
     engine (one lineage compilation, then per-fact conditioning or a \
     single d-DNNF circuit evaluation), with optional instrumentation."
  in
  Cmd.v (Cmd.info "eval" ~doc)
    Term.(const run $ db_arg $ query_arg 1 $ stats_arg $ cache_arg $ jobs_arg
          $ backend_arg $ seed_arg $ epsilon_arg $ max_draws_arg
          $ strategy_arg $ plan_flag $ trace_arg)

(* ---------------- plan ---------------- *)

let plan_cmd =
  let heuristic_arg =
    Arg.(value & opt string "best" & info [ "heuristic" ] ~docv:"H"
           ~doc:"Elimination heuristic: $(b,min-degree), $(b,min-fill) or \
                 $(b,best) (run both, keep the smaller width; default).")
  in
  let format_arg =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FORMAT"
             ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let run db_path query_str heuristic format =
    let heuristic =
      match Plan.heuristic_of_string heuristic with
      | Some h -> h
      | None ->
        Printf.eprintf
          "svc plan: unknown heuristic %S (expected min-degree, min-fill or \
           best)\n"
          heuristic;
        exit 2
    in
    let db = load_db db_path in
    let q = parse_query query_str in
    let phi = Lineage.lineage q db in
    let pl = Plan.analyze ~heuristic phi in
    let n_facts = Database.size_endo db in
    let cert =
      match Plancheck.check phi pl with
      | Ok r -> Plancheck.report_to_string r
      | Error msg ->
        Printf.eprintf "svc plan: certificate verification FAILED: %s\n" msg;
        exit 1
    in
    let backend =
      match Plan.recommend pl ~n_facts with
      | `Circuit -> "circuit"
      | `Conditioning -> "conditioning"
    in
    match format with
    | `Json ->
      Printf.printf
        "{\"query\":%S,\"n_facts\":%d,\"plan\":%s,\"certificate\":%S,\
         \"recommended_backend\":%S}\n"
        (Query.to_string q) n_facts (Plan.to_json pl) cert backend
    | `Text ->
      Printf.printf "query   : %s\n" (Query.to_string q);
      Printf.printf "lineage : %d nodes over %d fact variables\n"
        (Bform.size phi) pl.Plan.n_vars;
      print_string (Plan.to_string pl);
      Printf.printf "certificate : %s\n" cert;
      Printf.printf "recommended backend : %s (%s)\n" backend
        (Plan.recommend_reason pl ~n_facts)
  in
  let doc =
    "Static compilation plan for a (query, database) pair: AND-components \
     of the lineage's co-occurrence graph, per-component elimination \
     orders and induced widths, predicted circuit size, and the backend \
     the engine's $(b,auto) mode would pick — with the plan certificate \
     re-verified by the independent checker."
  in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(const run $ db_arg $ query_arg 1 $ heuristic_arg $ format_arg)

(* ---------------- count ---------------- *)

let count_cmd =
  let size =
    Arg.(value & opt (some int) None & info [ "size"; "n" ] ~docv:"N"
           ~doc:"Report only FGMC(D, $(docv)).")
  in
  let run db_path query_str size =
    let db = load_db db_path in
    let q = parse_query query_str in
    let poly = Model_counting.fgmc_polynomial q db in
    (match size with
     | Some n -> Printf.printf "FGMC(D, %d) = %s\n" n (Bigint.to_string (Poly.Z.coeff poly n))
     | None ->
       Printf.printf "FGMC polynomial: %s\n" (Format.asprintf "%a" Poly.Z.pp poly);
       Printf.printf "GMC (total)    : %s\n" (Bigint.to_string (Poly.Z.total poly)))
  in
  let doc = "(Fixed-size) generalized model counting (FGMC_q / GMC_q)." in
  Cmd.v (Cmd.info "count" ~doc) Term.(const run $ db_arg $ query_arg 1 $ size)

(* ---------------- prob ---------------- *)

let prob_cmd =
  let p_arg =
    Arg.(value & opt string "1/2" & info [ "p"; "prob" ] ~docv:"PROB"
           ~doc:"Probability of each endogenous fact (rational, e.g. 1/3).")
  in
  let run db_path query_str p_str =
    let db = load_db db_path in
    let q = parse_query query_str in
    let p = Rational.of_string p_str in
    let pr = Pqe.sppqe q db p in
    Printf.printf "Pr(D ⊨ q) = %s  (≈ %.6f)\n" (Rational.to_string pr) (Rational.to_float pr)
  in
  let doc =
    "Probabilistic query evaluation with uniform probability on endogenous \
     facts (SPPQE_q)."
  in
  Cmd.v (Cmd.info "prob" ~doc) Term.(const run $ db_arg $ query_arg 1 $ p_arg)

(* ---------------- classify ---------------- *)

let classify_cmd =
  let run query_str =
    let q = parse_query query_str in
    let j = Classify.classify q in
    Printf.printf "query  : %s\n" (Query.to_string q);
    Printf.printf "verdict: %s\n" (Classify.verdict_to_string j.Classify.verdict);
    Printf.printf "rule   : %s\n" j.Classify.rule
  in
  let doc = "FP / #P-hard classification of SVC_q (Figure 1b)." in
  Cmd.v (Cmd.info "classify" ~doc) Term.(const run $ query_arg 0)

(* ---------------- reduce ---------------- *)

let reduce_cmd =
  let run db_path query_str =
    let db = load_db db_path in
    let q = parse_query query_str in
    let svc = Oracle.svc_of q in
    match Fgmc_to_svc.lemma41_auto ~svc ~query:q db with
    | Some poly ->
      Printf.printf "FGMC polynomial recovered through the SVC oracle:\n  %s\n"
        (Format.asprintf "%a" Poly.Z.pp poly);
      Printf.printf "SVC oracle calls: %d\n" (Oracle.calls svc);
      let expected = Model_counting.fgmc_polynomial q db in
      Printf.printf "cross-check vs direct counting: %s\n"
        (if Poly.Z.equal poly expected then "ok" else "MISMATCH")
    | None ->
      prerr_endline
        "No pseudo-connectivity witness (query must have a fresh minimal \
         support with a constant outside C).";
      exit 1
  in
  let doc =
    "Run the Lemma 4.1 reduction: compute FGMC_q through an SVC_q oracle."
  in
  Cmd.v (Cmd.info "reduce" ~doc) Term.(const run $ db_arg $ query_arg 1)

(* ---------------- max ---------------- *)

let max_cmd =
  let run db_path query_str =
    let db = load_db db_path in
    let q = parse_query query_str in
    match Max_svc.max_svc q db with
    | Some (f, v) ->
      Printf.printf "max contributor: %s with value %s\n" (Fact.to_string f)
        (Rational.to_string v)
    | None -> print_endline "no endogenous facts"
  in
  let doc = "A fact of maximal Shapley value (max-SVC_q, Section 6.3)." in
  Cmd.v (Cmd.info "max" ~doc) Term.(const run $ db_arg $ query_arg 1)

(* ---------------- banzhaf ---------------- *)

let banzhaf_cmd =
  let run db_path query_str =
    let db = load_db db_path in
    let q = parse_query query_str in
    let values =
      List.sort
        (fun (_, a) (_, b) -> Rational.compare b a)
        (List.map (fun f -> (f, Svc.banzhaf q db f)) (Database.endo_list db))
    in
    List.iter
      (fun (f, v) ->
         Printf.printf "%-30s %s  (≈ %.4f)\n" (Fact.to_string f) (Rational.to_string v)
           (Rational.to_float v))
      values
  in
  let doc = "Banzhaf value of every endogenous fact (via two GMC counts each)." in
  Cmd.v (Cmd.info "banzhaf" ~doc) Term.(const run $ db_arg $ query_arg 1)

(* ---------------- lineage ---------------- *)

let lineage_cmd =
  let run db_path query_str =
    let db = load_db db_path in
    let q = parse_query query_str in
    let phi = Lineage.lineage q db in
    Printf.printf "lineage: %s\n" (Format.asprintf "%a" Bform.pp phi);
    Printf.printf "size   : %d nodes over %d fact variables\n" (Bform.size phi)
      (Fact.Set.cardinal (Bform.vars phi));
    let poly, stats =
      Compile.size_polynomial_stats ~universe:(Database.endo_list db) phi
    in
    Printf.printf "count  : %s\n" (Format.asprintf "%a" Poly.Z.pp poly);
    Printf.printf "cache  : %d hits / %d misses\n" stats.Compile.cache_hits
      stats.Compile.cache_misses
  in
  let doc = "Show the Boolean lineage of the query and its compilation stats." in
  Cmd.v (Cmd.info "lineage" ~doc) Term.(const run $ db_arg $ query_arg 1)

(* ---------------- explain ---------------- *)

let explain_cmd =
  let run db_path query_str =
    let db = load_db db_path in
    let q = parse_query query_str in
    Printf.printf "query    : %s\n" (Query.to_string q);
    Printf.printf "answer   : %b\n" (Query.holds q db);
    let j = Classify.classify q in
    Printf.printf "complexity of SVC: %s — %s\n\n"
      (Classify.verdict_to_string j.Classify.verdict)
      j.Classify.rule;
    (match Query.minimal_supports_in q (Database.all db) with
     | [] -> Printf.printf "no minimal supports: the query is not satisfied.\n"
     | supports ->
       Printf.printf "minimal supports (%d):\n" (List.length supports);
       List.iter
         (fun s -> Printf.printf "  %s\n" (Format.asprintf "%a" Fact.Set.pp s))
         supports;
       Printf.printf "\nfact contributions (Shapley | Banzhaf):\n";
       let shapley = Svc.svc_all q db in
       List.iter
         (fun (f, sv) ->
            let bz = Svc.banzhaf q db f in
            Printf.printf "  %-28s %-10s | %s\n" (Fact.to_string f)
              (Rational.to_string sv) (Rational.to_string bz))
         (List.sort (fun (_, a) (_, b) -> Rational.compare b a) shapley);
       let pr = Pqe.sppqe q db Rational.half in
       Printf.printf "\nrobustness: Pr(q | each endogenous fact present w.p. 1/2) = %s (≈ %.4f)\n"
         (Rational.to_string pr) (Rational.to_float pr))
  in
  let doc =
    "One-stop explanation report: answer, complexity verdict, minimal \
     supports, Shapley and Banzhaf contributions, robustness."
  in
  Cmd.v (Cmd.info "explain" ~doc) Term.(const run $ db_arg $ query_arg 1)

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let query_opt =
    Arg.(value & opt (some string) None
         & info [ "query"; "q" ] ~docv:"QUERY" ~doc:"Query to analyze.")
  in
  let db_opt =
    Arg.(value & opt (some file) None
         & info [ "db"; "d" ] ~docv:"FILE" ~doc:"Database file to analyze.")
  in
  let workload_opt =
    Arg.(value & opt (some file) None
         & info [ "workload"; "w" ] ~docv:"FILE" ~doc:"Workload file to analyze.")
  in
  let format_arg =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ] ~doc:"Exit with status 1 on warnings, not just errors.")
  in
  let read_file path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let run query db workload format strict =
    if query = None && db = None && workload = None then begin
      prerr_endline
        "svc analyze: nothing to analyze (give --query, --db and/or --workload)";
      exit 2
    end;
    let q, query_ds =
      match query with
      | None -> (None, [])
      | Some s -> Analyze.query_src s
    in
    let dbv, db_ds =
      match db with
      | None -> (None, [])
      | Some path -> Analyze.database_src (read_file path)
    in
    let pair_ds =
      match (q, dbv) with
      | Some q, Some d -> Analyze.pair q d
      | _ -> []
    in
    let workload_ds =
      match workload with
      | None -> []
      | Some path -> snd (Analyze.workload_src (read_file path))
    in
    let ds = Diagnostic.sort (query_ds @ db_ds @ pair_ds @ workload_ds) in
    (match format with
     | `Json -> print_endline (Diagnostic.list_to_json ds)
     | `Text ->
       List.iter (fun d -> print_endline (Diagnostic.to_string d)) ds;
       Printf.printf "%s%d error(s), %d warning(s), %d hint(s)\n"
         (if ds = [] then "" else "\n")
         (Diagnostic.count Diagnostic.Error ds)
         (Diagnostic.count Diagnostic.Warning ds)
         (Diagnostic.count Diagnostic.Hint ds));
    if Diagnostic.gate ~strict ds then exit 1
  in
  let doc =
    "Statically analyze a query, database and/or workload; report \
     certificate-carrying diagnostics (codes Qxxx/Dxxx/Xxxx/Wxxx)."
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ query_opt $ db_opt $ workload_opt $ format_arg $ strict_arg)

(* ---------------- workload ---------------- *)

let workload_cmd =
  let list_cmd =
    let format_arg =
      Arg.(value & opt (enum [ ("table", `Table); ("names", `Names) ]) `Table
           & info [ "format" ] ~docv:"FORMAT"
               ~doc:"Output format: $(b,table) (name, expected class, \
                     description) or $(b,names) (one family name per line, \
                     for scripting).")
    in
    let run format =
      let fams = Workload.families () in
      match format with
      | `Names ->
        List.iter (fun f -> print_endline f.Workload.Family.name) fams
      | `Table ->
        let width =
          List.fold_left
            (fun w f -> max w (String.length f.Workload.Family.name))
            0 fams
        in
        Printf.printf "%-*s  %-8s  %s\n" width "family" "class" "description";
        List.iter
          (fun f ->
             Printf.printf "%-*s  %-8s  %s\n" width f.Workload.Family.name
               (Workload.Family.tractability_to_string
                  f.Workload.Family.tractability)
               f.Workload.Family.description)
          fams
    in
    let doc = "List the registered workload generator families." in
    Cmd.v (Cmd.info "list" ~doc) Term.(const run $ format_arg)
  in
  let gen_cmd =
    let family_arg =
      Arg.(required & opt (some string) None
           & info [ "family"; "f" ] ~docv:"FAMILY"
               ~doc:"Generator family (see $(b,svc workload list)).")
    in
    let size_arg =
      Arg.(value & opt int 4 & info [ "size"; "n" ] ~docv:"N"
             ~doc:"Instance size parameter (>= 1, default 4).")
    in
    let seed_arg =
      Arg.(value & opt int 0 & info [ "seed"; "s" ] ~docv:"S"
             ~doc:"Generator seed (>= 0, default 0).  The same (family, \
                   seed, size) triple always reproduces a byte-identical \
                   instance.")
    in
    let format_arg =
      Arg.(value
           & opt (enum [ ("workload", `Workload); ("db", `Db); ("query", `Query) ])
               `Workload
           & info [ "format" ] ~docv:"FORMAT"
               ~doc:"Output format: $(b,workload) (the self-contained \
                     workload text format, default), $(b,db) (just the \
                     database in the Db_text format, for $(b,svc eval)), \
                     or $(b,query) (just the query source line).")
    in
    let run family size seed format =
      if size < 1 then begin
        Printf.eprintf "svc workload gen: --size must be >= 1 (got %d)\n" size;
        exit 2
      end;
      if seed < 0 then begin
        Printf.eprintf "svc workload gen: --seed must be >= 0 (got %d)\n" seed;
        exit 2
      end;
      match Workload.find_family family with
      | None ->
        Printf.eprintf
          "svc workload gen: unknown family %S (try 'svc workload list')\n"
          family;
        exit 2
      | Some _ ->
        let c = Workload.generate ~family ~seed ~size in
        (match format with
         | `Workload -> print_string (Workload.to_string (Workload.to_workload c))
         | `Db -> print_string (Db_text.to_string c.Workload.db)
         | `Query -> print_endline c.Workload.query_src)
    in
    let doc =
      "Generate one seeded instance of a registered family and print it \
       (workload, database or query form)."
    in
    Cmd.v (Cmd.info "gen" ~doc)
      Term.(const run $ family_arg $ size_arg $ seed_arg $ format_arg)
  in
  let doc =
    "Seeded workload generators spanning the paper's variant frontier \
     (safe CQs, the bipartite gadget, RPQ/CRPQ graphs, CQ¬, purely \
     endogenous and max-/const-SVC instances)."
  in
  Cmd.group (Cmd.info "workload" ~doc) [ list_cmd; gen_cmd ]

(* ---------------- trace ---------------- *)

let trace_cmd =
  let summary_cmd =
    let file_arg =
      let doc = "Chrome trace_event JSON file written by $(b,svc eval --trace)." in
      Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
    in
    let run path =
      let text =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with Sys_error msg ->
          Printf.eprintf "svc trace summary: %s\n" msg;
          exit 1
      in
      match Tracejson.summarize ~name:(Filename.basename path) text with
      | Ok s -> print_string s
      | Error msg ->
        Printf.eprintf "svc trace summary: %s\n" msg;
        exit 1
    in
    let doc =
      "Validate a trace file against the Chrome trace_event schema and \
       print a summary (event counts, per-track span counts, per-name \
       span totals, final counter samples)."
    in
    Cmd.v (Cmd.info "summary" ~doc) Term.(const run $ file_arg)
  in
  let doc = "Inspect telemetry traces recorded by $(b,svc eval --trace)." in
  Cmd.group (Cmd.info "trace" ~doc) [ summary_cmd ]

(* ---------------- serve ---------------- *)

let serve_cmd =
  let db_args =
    let doc =
      "Preload a named database: $(docv) is NAME=FILE with FILE in the \
       Db_text format.  Repeatable."
    in
    Arg.(value & opt_all string [] & info [ "db" ] ~docv:"NAME=FILE" ~doc)
  in
  let capacity_arg =
    let doc = "Engine LRU cache capacity (entries)." in
    Arg.(value & opt int Server.default_capacity
         & info [ "cache-capacity" ] ~docv:"N" ~doc)
  in
  let jobs_arg =
    let doc = "Worker domains per engine evaluation (0 = recommended)." in
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let max_frame_arg =
    let doc = "Largest accepted frame payload, in bytes." in
    Arg.(value & opt int Frame.default_max_len
         & info [ "max-frame" ] ~docv:"BYTES" ~doc)
  in
  let journal_arg =
    let doc =
      "Changes per database kept replayable for delta updates before a \
       stale engine recompiles from scratch."
    in
    Arg.(value & opt int Server.default_journal_limit
         & info [ "journal-limit" ] ~docv:"N" ~doc)
  in
  let fake_clock_arg =
    let doc =
      "Run telemetry on a deterministic fake clock advanced by 1ms per \
       frame — byte-exact transcripts and traces for tests."
    in
    Arg.(value & flag & info [ "fake-clock" ] ~doc)
  in
  let run dbs capacity jobs max_frame journal fake_clock =
    let tel, on_frame =
      if fake_clock then begin
        let clock, advance = Telemetry.Clock.fake () in
        (Telemetry.create ~clock (), fun () -> advance 0.001)
      end
      else (Telemetry.create (), Fun.id)
    in
    let server =
      try
        Server.create ~tel ~capacity ~max_frame ~journal_limit:journal ~jobs ()
      with Invalid_argument msg ->
        Printf.eprintf "svc serve: %s\n" msg;
        exit 2
    in
    List.iter
      (fun spec ->
         match String.index_opt spec '=' with
         | None ->
           Printf.eprintf "svc serve: --db expects NAME=FILE, got %S\n" spec;
           exit 2
         | Some i ->
           let name = String.sub spec 0 i in
           let path =
             String.sub spec (i + 1) (String.length spec - i - 1)
           in
           let text =
             try
               let ic = open_in_bin path in
               Fun.protect
                 ~finally:(fun () -> close_in_noerr ic)
                 (fun () -> really_input_string ic (in_channel_length ic))
             with Sys_error msg ->
               Printf.eprintf "svc serve: %s\n" msg;
               exit 2
           in
           (try Server.load_db server ~name ~text
            with Invalid_argument msg ->
              Printf.eprintf "svc serve: %s: %s\n" path msg;
              exit 2))
      dbs;
    Server.serve_channels ~on_frame server stdin stdout
  in
  let doc =
    "Serve SVC over length-prefixed JSON frames on stdin/stdout: a hot \
     per-(query,db) compilation cache with LRU eviction and delta \
     updates (insert/delete facts recompile only the affected \
     sub-circuit).  Drive it with $(b,svc client encode)/$(b,decode); \
     see README.md for the protocol reference."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ db_args $ capacity_arg $ jobs_arg $ max_frame_arg
          $ journal_arg $ fake_clock_arg)

let client_cmd =
  let encode_cmd =
    let payload_args =
      let doc = "JSON request payloads, one frame each, in order." in
      Arg.(value & pos_all string [] & info [] ~docv:"JSON" ~doc)
    in
    let run payloads =
      List.iter (fun p -> print_string (Frame.encode p)) payloads
    in
    let doc =
      "Encode JSON payloads as protocol frames on stdout (pipe into \
       $(b,svc serve))."
    in
    Cmd.v (Cmd.info "encode" ~doc) Term.(const run $ payload_args)
  in
  let decode_cmd =
    let run () =
      let src = Frame.source_of_channel stdin in
      let rec loop () =
        match Frame.read src with
        | Ok None -> ()
        | Ok (Some payload) ->
          print_string payload;
          print_newline ();
          loop ()
        | Error e ->
          Printf.eprintf "svc client decode: %s\n" (Frame.error_message e);
          exit 1
      in
      loop ()
    in
    let doc =
      "Decode protocol frames from stdin to one JSON payload per line \
       (pipe $(b,svc serve) output through this)."
    in
    Cmd.v (Cmd.info "decode" ~doc) Term.(const run $ const ())
  in
  let doc = "Encode/decode the $(b,svc serve) frame protocol." in
  Cmd.group (Cmd.info "client" ~doc) [ encode_cmd; decode_cmd ]

let main =
  let doc =
    "Shapley value computation and model counting for database queries \
     (PODS 2024 reproduction)"
  in
  Cmd.group (Cmd.info "svc" ~version:"1.0.0" ~doc)
    [ shapley_cmd; eval_cmd; plan_cmd; count_cmd; prob_cmd; classify_cmd;
      reduce_cmd; max_cmd; banzhaf_cmd; lineage_cmd; explain_cmd; analyze_cmd;
      workload_cmd; trace_cmd; serve_cmd; client_cmd ]

let () = exit (Cmd.eval main)
