(** Independent verification of diagnostic certificates.

    [check] re-establishes a diagnostic's certificate from the raw inputs
    without trusting (or calling) the analysis passes: homomorphisms are
    applied as substitutions and checked by membership, hard words are
    re-accepted by an NFA built from the regex, emptiness proofs are
    replayed structurally, and source-level claims ([D103]/[D104]) re-scan
    the text with a separate parser.

    A diagnostic without a certificate is vacuously accepted. *)

val check :
  ?query:Query.t -> ?database:Database.t -> ?db_source:string -> Diagnostic.t -> bool
(** Whether the certificate is valid for the given inputs.  Certificates
    about a missing input (e.g. a query certificate with no [?query])
    are rejected. *)

val check_all :
  ?query:Query.t -> ?database:Database.t -> ?db_source:string -> Diagnostic.t list -> bool

val check_empty_proof : Regex.t -> Diagnostic.empty_proof -> bool
