(* Static analysis passes over queries, databases and workloads.

   Every pass returns structured {!Diagnostic.t} values; certificates are
   produced here and re-verified independently by {!Certcheck} (and by the
   test suite), so no diagnostic has to be taken on trust. *)

open Diagnostic

(* ------------------------------------------------------------------ *)
(* Regex emptiness proofs                                              *)
(* ------------------------------------------------------------------ *)

let rec empty_proof_of (re : Regex.t) : empty_proof option =
  match re with
  | Regex.Empty -> Some Prim_empty
  | Regex.Eps | Regex.Sym _ | Regex.Star _ -> None
  | Regex.Seq (a, b) ->
    (match empty_proof_of a with
     | Some p -> Some (Seq_left p)
     | None ->
       (match empty_proof_of b with
        | Some p -> Some (Seq_right p)
        | None -> None))
  | Regex.Alt (a, b) ->
    (match (empty_proof_of a, empty_proof_of b) with
     | Some p, Some q -> Some (Alt_both (p, q))
     | _ -> None)

(* ------------------------------------------------------------------ *)
(* CQ-level passes                                                     *)
(* ------------------------------------------------------------------ *)

(* A homomorphism q → q' (fixing constants), as a substitution on the
   variables of q whose image atoms all belong to q'. *)
let cq_hom_into (q : Cq.t) (q' : Cq.t) : (string * Term.t) list option =
  let canon, valuation = Cq.canonical_support ~prefix:"h" q' in
  match Homomorphism.find_valuation ~into:canon (Cq.atoms q) with
  | None -> None
  | Some subst ->
    (* un-canonize: constants that are images of q''s variables map back *)
    let back =
      Term.Smap.fold
        (fun v c acc -> Term.Smap.add c (Term.var v) acc)
        valuation Term.Smap.empty
    in
    Some
      (Term.Smap.fold
         (fun v c acc ->
            let t =
              match Term.Smap.find_opt c back with
              | Some t -> t
              | None -> Term.const c
            in
            (v, t) :: acc)
         subst []
       |> List.rev)

let self_join_pair (q : Cq.t) =
  let rec find = function
    | [] -> None
    | a :: rest ->
      (match List.find_opt (fun b -> Atom.rel a = Atom.rel b) rest with
       | Some b -> Some (a, b)
       | None -> find rest)
  in
  find (Cq.atoms q)

let subsumed_atoms (q : Cq.t) =
  let atoms = Cq.atoms q in
  if List.length atoms < 2 then []
  else
    List.filter_map
      (fun a ->
         let rest = List.filter (fun b -> not (Atom.equal a b)) atoms in
         match cq_hom_into q (Cq.of_atoms rest) with
         | Some hom -> Some (a, hom)
         | None -> None)
      atoms

let cq_atom_diags (q : Cq.t) =
  (* Q006: redundant atoms, certified by a homomorphism into the rest *)
  List.map
    (fun (a, hom) ->
       warning "Q006"
         ~certificate:(Subsumed_atom (a, hom))
         (Printf.sprintf
            "atom %s is redundant: the query without it is equivalent"
            (Atom.to_string a)))
    (subsumed_atoms q)

let cq_diags (q : Cq.t) =
  let hier =
    if Cq.is_self_join_free q then
      match Hierarchical.certificate q with
      | Some v ->
        [ warning "Q003"
            ~certificate:(Non_hierarchical v)
            "self-join-free CQ is not hierarchical: SVC is #P-hard \
             (Corollary 4.5)" ]
      | None -> []
    else
      match self_join_pair q with
      | Some (a, b) ->
        [ hint "Q007"
            ~certificate:(Self_join_pair (a, b))
            "CQ has a self-join: outside the hierarchical dichotomy, \
             complexity unknown" ]
      | None -> []
  in
  let disconnected =
    match Incidence.components (Cq.atoms q) with
    | [] | [ _ ] -> []
    | c1 :: rest ->
      [ hint "Q009"
          ~certificate:(Component_split (c1, List.concat rest))
          "CQ is a cartesian product of independent components" ]
  in
  hier @ cq_atom_diags q @ disconnected

let ucq_diags (u : Ucq.t) =
  let disjuncts = Array.of_list (Ucq.disjuncts u) in
  let n = Array.length disjuncts in
  let dropped = Array.make n false in
  let out = ref [] in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      (* disjunct j is redundant when some other disjunct i maps into it *)
      if i <> j && (not dropped.(j)) && not dropped.(i) then
        match cq_hom_into disjuncts.(i) disjuncts.(j) with
        | Some hom ->
          dropped.(j) <- true;
          out :=
            hint "Q008"
              ~certificate:
                (Subsumed_disjunct { kept = disjuncts.(i); dropped = disjuncts.(j); hom })
              (Printf.sprintf "disjunct %s is absorbed by disjunct %s"
                 (Cq.to_string disjuncts.(j)) (Cq.to_string disjuncts.(i)))
            :: !out
        | None -> ()
    done
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Graph-query passes                                                  *)
(* ------------------------------------------------------------------ *)

let dead_lang_diag ?(severity = Diagnostic.Error) (re : Regex.t) context =
  match empty_proof_of re with
  | Some proof ->
    [ make ~code:"Q005" ~severity
        ~certificate:(Dead_language (re, proof))
        (Printf.sprintf "%s: the path language %s is empty" context (Regex.to_string re)) ]
  | None -> []

let rpq_diags (r : Rpq.t) =
  let lang = Rpq.lang r in
  match dead_lang_diag lang "dead RPQ" with
  | _ :: _ as ds -> ds
  | [] ->
    (match Words.some_word_of_length_geq lang 3 with
     | Some w ->
       [ warning "Q004"
           ~certificate:(Hard_word w)
           "RPQ language contains a word of length ≥ 3: SVC is #P-hard \
            (Corollary 4.3)" ]
     | None -> [])

let patom_to_string (a : Crpq.path_atom) =
  Printf.sprintf "%s(%s,%s)" (Regex.to_string a.Crpq.lang)
    (Term.to_string a.Crpq.psrc) (Term.to_string a.Crpq.pdst)

let crpq_diags (c : Crpq.t) =
  List.concat_map
    (fun (a : Crpq.path_atom) ->
       dead_lang_diag a.Crpq.lang
         (Printf.sprintf "dead conjunct %s" (patom_to_string a)))
    (Crpq.path_atoms c)

let ucrpq_diags (u : Ucrpq.t) =
  (* a single dead disjunct is harmless; the union is dead only when every
     disjunct contains a dead path atom *)
  let dead_atom c =
    List.find_opt
      (fun (a : Crpq.path_atom) -> empty_proof_of a.Crpq.lang <> None)
      (Crpq.path_atoms c)
  in
  let deads = List.map dead_atom (Ucrpq.disjuncts u) in
  if List.for_all Option.is_some deads then
    match deads with
    | Some (a : Crpq.path_atom) :: _ ->
      dead_lang_diag a.Crpq.lang "dead UCRPQ: every disjunct has a dead conjunct"
    | _ -> []
  else []

let cqneg_diags (c : Cqneg.t) =
  if Cqneg.is_self_join_free c then
    match Hierarchical.certificate_cqneg c with
    | Some v ->
      [ warning "Q003"
          ~certificate:(Non_hierarchical v)
          "self-join-free CQ¬ is not hierarchical: SVC is #P-hard \
           ([12, Thm 3.1])" ]
    | None -> []
  else []

(* ------------------------------------------------------------------ *)
(* Query entry points                                                  *)
(* ------------------------------------------------------------------ *)

let rec query (q : Query.t) : Diagnostic.t list =
  let ds =
    match q with
    | Query.True -> []
    | Query.Cq c -> cq_diags c
    | Query.Ucq u -> ucq_diags u
    | Query.Rpq r -> rpq_diags r
    | Query.Crpq c -> crpq_diags c
    | Query.Ucrpq u -> ucrpq_diags u
    | Query.Cqneg c -> cqneg_diags c
    | Query.Gcq _ -> []
    | Query.And (a, b) | Query.Or (a, b) -> query a @ query b
  in
  Diagnostic.sort ds

let query_src (s : string) : Query.t option * Diagnostic.t list =
  match Query_parse.parse_result s with
  | Ok q -> (Some q, query q)
  | Error d ->
    ( None,
      [ error d.Query_parse.code
          ~span:(span_of_parse d)
          (Query_parse.diagnostic_to_string d) ] )

(* ------------------------------------------------------------------ *)
(* Database passes                                                     *)
(* ------------------------------------------------------------------ *)

let arity_conflict_diags facts =
  let _, conflicts = Schema.infer facts in
  List.map
    (fun (c : Schema.conflict) ->
       error "D102"
         ~certificate:(Arity_conflict (c.Schema.witness1, c.Schema.witness2))
         (Printf.sprintf "relation %s is used at two different arities" c.Schema.rel))
    conflicts

let database (db : Database.t) : Diagnostic.t list =
  Diagnostic.sort (arity_conflict_diags (Database.all db))

let database_src (text : string) : Database.t option * Diagnostic.t list =
  let diags = ref [] in
  let seen : (string * Fact.t, int) Hashtbl.t = Hashtbl.create 16 in
  let endo = ref Fact.Set.empty and exo = ref Fact.Set.empty in
  let overlap = ref false in
  let add d = diags := d :: !diags in
  List.iteri
    (fun i raw ->
       let lineno = i + 1 in
       let line =
         match String.index_opt raw '#' with
         | Some j -> String.sub raw 0 j
         | None -> raw
       in
       let trimmed = String.trim line in
       if trimmed <> "" then begin
         let sep =
           let n = String.length trimmed in
           let rec find k =
             if k >= n then None
             else if trimmed.[k] = ' ' || trimmed.[k] = '\t' then Some k
             else find (k + 1)
           in
           find 0
         in
         let span = span_of_line ~len:(String.length trimmed) lineno in
         match sep with
         | None ->
           add (error "D101" ~span "expected 'endo FACT' or 'exo FACT'")
         | Some k ->
           let tag = String.sub trimmed 0 k in
           let rest = String.sub trimmed k (String.length trimmed - k) in
           if tag <> "endo" && tag <> "exo" then
             add
               (error "D101" ~span
                  (Printf.sprintf "unknown part tag %S (expected 'endo' or 'exo')" tag))
           else begin
             match Db_text.parse_fact rest with
             | exception Invalid_argument msg -> add (error "D101" ~span msg)
             | f ->
               (match Hashtbl.find_opt seen (tag, f) with
                | Some l1 ->
                  add
                    (hint "D104" ~span
                       ~certificate:(Duplicate_fact (f, l1, lineno))
                       (Printf.sprintf "duplicate %s fact %s (first on line %d)" tag
                          (Fact.to_string f) l1))
                | None -> Hashtbl.add seen (tag, f) lineno);
               let other = if tag = "endo" then "exo" else "endo" in
               if Hashtbl.mem seen (other, f) then begin
                 overlap := true;
                 add
                   (error "D103" ~span
                      ~certificate:(Part_overlap f)
                      (Printf.sprintf "fact %s is declared both endogenous and exogenous"
                         (Fact.to_string f)))
               end;
               if tag = "endo" then endo := Fact.Set.add f !endo
               else exo := Fact.Set.add f !exo
           end
       end)
    (String.split_on_char '\n' text);
  let all = Fact.Set.union !endo !exo in
  let diags = arity_conflict_diags all @ !diags in
  let db =
    if !overlap then None else Some (Database.of_sets ~endo:!endo ~exo:!exo)
  in
  (db, Diagnostic.sort diags)

(* ------------------------------------------------------------------ *)
(* Query/database cross-checks                                         *)
(* ------------------------------------------------------------------ *)

(* Positive atoms (whose relations must exist for satisfiability), all
   atoms (whose arities must be consistent), and path-language relations. *)
let rec query_atoms (q : Query.t) : Atom.t list * Atom.t list * string list =
  let rec cond_atoms = function
    | Gcq.Catom a -> [ a ]
    | Gcq.Cand cs | Gcq.Cor cs -> List.concat_map cond_atoms cs
    | Gcq.Cnot c -> cond_atoms c
  in
  match q with
  | Query.True -> ([], [], [])
  | Query.Cq c -> (Cq.atoms c, Cq.atoms c, [])
  | Query.Ucq u ->
    let atoms = List.concat_map Cq.atoms (Ucq.disjuncts u) in
    (atoms, atoms, [])
  | Query.Rpq r -> ([], [], Term.Sset.elements (Rpq.rels r))
  | Query.Crpq c -> ([], [], Term.Sset.elements (Crpq.rels c))
  | Query.Ucrpq u -> ([], [], Term.Sset.elements (Ucrpq.rels u))
  | Query.Cqneg c -> (Cqneg.pos c, Cqneg.pos c @ Cqneg.neg c, [])
  | Query.Gcq g ->
    let conds = List.concat_map cond_atoms (Gcq.conditions g) in
    (Gcq.guards g, Gcq.guards g @ conds, [])
  | Query.And (a, b) | Query.Or (a, b) ->
    let pa, aa, ra = query_atoms a and pb, ab, rb = query_atoms b in
    (pa @ pb, aa @ ab, ra @ rb)

let blowup_threshold = 16

let pair (q : Query.t) (db : Database.t) : Diagnostic.t list =
  let schema, _ = Schema.of_database db in
  let positive, all, path_rels = query_atoms q in
  let missing =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun a ->
         let r = Atom.rel a in
         if Schema.mem schema r || Hashtbl.mem seen r then None
         else begin
           Hashtbl.add seen r ();
           Some
             (warning "X201"
                ~certificate:(Missing_relation (r, Some a))
                (Printf.sprintf
                   "relation %s does not occur in the database: atom %s cannot \
                    be satisfied" r (Atom.to_string a)))
         end)
      positive
    @ List.filter_map
      (fun r ->
         if Schema.mem schema r then None
         else
           Some
             (warning "X201"
                ~certificate:(Missing_relation (r, None))
                (Printf.sprintf
                   "path-language relation %s does not occur in the database" r)))
      (List.sort_uniq String.compare path_rels)
  in
  let arity =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun a ->
         match Schema.check_atom schema a with
         | `Ok | `Unknown_relation -> None
         | `Arity_mismatch w ->
           let key = (Atom.rel a, Atom.arity a) in
           if Hashtbl.mem seen key then None
           else begin
             Hashtbl.add seen key ();
             Some
               (error "X202"
                  ~certificate:
                    (Query_db_arity
                       { rel = Atom.rel a; query_arity = Atom.arity a; witness = w })
                  (Printf.sprintf
                     "atom %s uses %s with arity %d but the database has %s"
                     (Atom.to_string a) (Atom.rel a) (Atom.arity a) (Fact.to_string w)))
           end)
      all
    @ List.filter_map
      (fun r ->
         match Schema.arity schema r with
         | Some k when k <> 2 ->
           let w = Option.get (Schema.witness schema r) in
           Some
             (error "X202"
                ~certificate:(Query_db_arity { rel = r; query_arity = 2; witness = w })
                (Printf.sprintf
                   "path languages need binary relations but the database has %s"
                   (Fact.to_string w)))
         | _ -> None)
      (List.sort_uniq String.compare path_rels)
  in
  let blowup =
    let n = Database.size_endo db in
    if n <= blowup_threshold then []
    else begin
      let j = Classify.classify q in
      match j.Classify.verdict with
      | Classify.FP -> []
      | v ->
        let verdict = Classify.verdict_to_string v in
        (* the compilation planner refines the raw 2^n bound: a
           width-bounded plan means the circuit backend stays tractable
           despite the hardness verdict *)
        let plan =
          try Some (Plan.analyze (Lineage.lineage q db))
          with Invalid_argument _ | Failure _ -> None
        in
        let plan_width = Option.map (fun p -> p.Plan.max_width) plan in
        let refinement =
          match plan with
          | None -> ""
          | Some p when p.Plan.predicted_nodes <= Plan.circuit_node_budget ->
            Printf.sprintf
              "; a width-%d compilation plan bounds the circuit backend at \
               %d nodes" p.Plan.max_width p.Plan.predicted_nodes
          | Some p ->
            Printf.sprintf
              "; the best compilation plan found has induced width %d \
               (%d predicted nodes)" p.Plan.max_width p.Plan.predicted_nodes
        in
        [ warning "X203"
            ~certificate:(Blowup { verdict; n_endo = n; plan_width })
            (Printf.sprintf
               "query is %s and the database has %d endogenous facts: exact \
                computation may take 2^%d query evaluations%s" verdict n n
               refinement) ]
    end
  in
  Diagnostic.sort (missing @ arity @ blowup)

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let workload (w : Workload.t) : Diagnostic.t list =
  let cases = Workload.cases w in
  let empty =
    if cases = [] then [ hint "W302" "workload has no cases" ] else []
  in
  let dup_names =
    let rec find = function
      | [] -> []
      | (c : Workload.case) :: rest ->
        if List.exists (fun (c' : Workload.case) -> c'.Workload.cname = c.Workload.cname) rest
        then
          [ error "W301"
              (Printf.sprintf "duplicate case name %S in workload %S" c.Workload.cname
                 (Workload.name w)) ]
        else find rest
    in
    find cases
  in
  let per_case =
    List.concat_map
      (fun (c : Workload.case) ->
         let prefix d =
           { d with
             span = None;
             message = Printf.sprintf "case %S: %s" c.Workload.cname d.message }
         in
         List.map prefix
           (query c.Workload.query @ database c.Workload.db
            @ pair c.Workload.query c.Workload.db))
      cases
  in
  Diagnostic.sort (empty @ dup_names @ per_case)

let workload_src (text : string) : Workload.t option * Diagnostic.t list =
  match Workload.parse_result text with
  | Ok w -> (Some w, workload w)
  | Error (msg, line) ->
    (None, [ error "W303" ~span:(span_of_line line) msg ])
