(* Independent certificate verification.

   This module deliberately re-derives every claim from first principles —
   set membership, substitution application, NFA word acceptance, raw
   source re-scanning — without calling back into the analysis passes, so
   that a certificate accepted here really establishes the diagnostic. *)

open Diagnostic

(* All atoms of the query relevant to hierarchy checks. *)
let hierarchy_atoms (q : Query.t) =
  match q with
  | Query.Cq c -> Some (Cq.atoms c)
  | Query.Cqneg c -> Some (Cqneg.pos c @ Cqneg.neg c)
  | _ -> None

let rec query_regexes (q : Query.t) =
  match q with
  | Query.Rpq r -> [ Rpq.lang r ]
  | Query.Crpq c -> List.map (fun (a : Crpq.path_atom) -> a.Crpq.lang) (Crpq.path_atoms c)
  | Query.Ucrpq u -> List.concat_map (fun c -> query_regexes (Query.Crpq c)) (Ucrpq.disjuncts u)
  | Query.And (a, b) | Query.Or (a, b) -> query_regexes a @ query_regexes b
  | _ -> []

let rec check_empty_proof (re : Regex.t) (p : empty_proof) =
  match (re, p) with
  | Regex.Empty, Prim_empty -> true
  | Regex.Seq (a, _), Seq_left p -> check_empty_proof a p
  | Regex.Seq (_, b), Seq_right p -> check_empty_proof b p
  | Regex.Alt (a, b), Alt_both (pa, pb) -> check_empty_proof a pa && check_empty_proof b pb
  | _ -> false

let hom_to_subst hom =
  List.fold_left (fun m (v, t) -> Term.Smap.add v t m) Term.Smap.empty hom

(* Every atom of [src], instantiated by [hom], must occur in [dst]. *)
let check_hom hom src dst =
  let subst = hom_to_subst hom in
  List.for_all (fun a -> List.exists (Atom.equal (Atom.apply subst a)) dst) src

let atom_terms atoms =
  List.fold_left
    (fun acc a -> List.fold_left (fun acc t -> Term.Set.add t acc) acc (Atom.args a))
    Term.Set.empty atoms

let same_atom_multiset xs ys =
  List.sort Atom.compare xs = List.sort Atom.compare ys

(* Independent re-scan of database source text: (tag, fact, 1-based line)
   for every well-formed fact line. *)
let scan_db_source text =
  String.split_on_char '\n' text
  |> List.mapi (fun i raw -> (i + 1, raw))
  |> List.filter_map (fun (lineno, raw) ->
      let line =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      let line = String.trim line in
      let tagged prefix tag =
        let n = String.length prefix in
        if String.length line > n && String.sub line 0 n = prefix
           && (line.[n] = ' ' || line.[n] = '\t') then
          match Db_text.parse_fact (String.sub line n (String.length line - n)) with
          | f -> Some (tag, f, lineno)
          | exception Invalid_argument _ -> None
        else None
      in
      match tagged "endo" `Endo with
      | Some r -> Some r
      | None -> tagged "exo" `Exo)

let check ?query:q ?database:db ?db_source (d : Diagnostic.t) =
  let facts () =
    match (db, db_source) with
    | Some db, _ -> Some (Database.all db)
    | None, Some src ->
      Some (Fact.Set.of_list (List.map (fun (_, f, _) -> f) (scan_db_source src)))
    | None, None -> None
  in
  match d.certificate with
  | None -> true
  | Some cert ->
    (match cert with
     | Non_hierarchical v ->
       (match Option.bind q hierarchy_atoms with
        | Some atoms -> Hierarchical.check_violation atoms v
        | None -> false)
     | Hard_word w ->
       (match q with
        | Some (Query.Rpq r) ->
          List.length w >= 3 && Nfa.accepts (Nfa.of_regex (Rpq.lang r)) w
        | _ -> false)
     | Dead_language (re, proof) ->
       check_empty_proof re proof
       && (match q with
           | Some q -> List.exists (Regex.equal re) (query_regexes q)
           | None -> false)
     | Subsumed_atom (a, hom) ->
       (match q with
        | Some (Query.Cq c) ->
          let atoms = Cq.atoms c in
          let rest = List.filter (fun b -> not (Atom.equal a b)) atoms in
          List.exists (Atom.equal a) atoms
          && rest <> []
          && check_hom hom atoms rest
        | _ -> false)
     | Subsumed_disjunct { kept; dropped; hom } ->
       (match q with
        | Some (Query.Ucq u) ->
          let ds = Ucq.disjuncts u in
          List.exists (Cq.equal kept) ds
          && List.exists (Cq.equal dropped) ds
          && (not (Cq.equal kept dropped))
          && check_hom hom (Cq.atoms kept) (Cq.atoms dropped)
        | _ -> false)
     | Self_join_pair (a, b) ->
       (match q with
        | Some (Query.Cq c) ->
          let atoms = Cq.atoms c in
          List.exists (Atom.equal a) atoms
          && List.exists (Atom.equal b) atoms
          && (not (Atom.equal a b))
          && Atom.rel a = Atom.rel b
        | _ -> false)
     | Component_split (c1, c2) ->
       (match q with
        | Some (Query.Cq c) ->
          c1 <> [] && c2 <> []
          && same_atom_multiset (c1 @ c2) (Cq.atoms c)
          && Term.Set.is_empty (Term.Set.inter (atom_terms c1) (atom_terms c2))
        | _ -> false)
     | Arity_conflict (f1, f2) ->
       (match facts () with
        | Some fs ->
          Fact.Set.mem f1 fs && Fact.Set.mem f2 fs
          && Fact.rel f1 = Fact.rel f2
          && Fact.arity f1 <> Fact.arity f2
        | None -> false)
     | Part_overlap f ->
       (match db_source with
        | Some src ->
          let scanned = scan_db_source src in
          List.exists (fun (t, g, _) -> t = `Endo && Fact.equal f g) scanned
          && List.exists (fun (t, g, _) -> t = `Exo && Fact.equal f g) scanned
        | None -> false)
     | Duplicate_fact (f, l1, l2) ->
       (match db_source with
        | Some src ->
          l1 < l2
          && (let scanned = scan_db_source src in
              let at l = List.find_opt (fun (_, _, l') -> l' = l) scanned in
              match (at l1, at l2) with
              | Some (t1, g1, _), Some (t2, g2, _) ->
                t1 = t2 && Fact.equal f g1 && Fact.equal f g2
              | _ -> false)
        | None -> false)
     | Missing_relation (r, atom) ->
       (match facts () with
        | Some fs ->
          (not (Fact.Set.exists (fun f -> Fact.rel f = r) fs))
          && (match atom with Some a -> Atom.rel a = r | None -> true)
        | None -> false)
     | Query_db_arity { rel; query_arity; witness } ->
       (match facts () with
        | Some fs ->
          Fact.Set.mem witness fs
          && Fact.rel witness = rel
          && Fact.arity witness <> query_arity
        | None -> false)
     | Blowup { verdict; n_endo; plan_width } ->
       (match (q, db) with
        | Some q, Some db ->
          Database.size_endo db = n_endo
          && n_endo > Analyze.blowup_threshold
          && (let j = Classify.classify q in
              Classify.verdict_to_string j.Classify.verdict = verdict
              && j.Classify.verdict <> Classify.FP)
          && (match plan_width with
              | None -> true
              | Some w ->
                (* re-derive the plan from scratch: the claimed width
                   must be exactly what an independent analysis finds *)
                (try (Plan.analyze (Lineage.lineage q db)).Plan.max_width = w
                 with Invalid_argument _ | Failure _ -> false))
        | _ -> false))

let check_all ?query ?database ?db_source ds =
  List.for_all (fun d -> check ?query ?database ?db_source d) ds
