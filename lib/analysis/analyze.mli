(** Static analysis passes: queries, databases, cross-checks, workloads.

    Diagnostic codes (see README for the full table):

    - [Q001] syntax error, [Q002] unknown language tag (from {!Query_parse})
    - [Q003] non-hierarchical sjf query (certificate: {!Hierarchical.violation})
    - [Q004] RPQ with a word of length ≥ 3 — #P-hard (certificate: the word)
    - [Q005] dead path atom / empty language (certificate: emptiness proof)
    - [Q006] redundant atom (certificate: homomorphism into the rest)
    - [Q007] self-join (certificate: the atom pair)
    - [Q008] absorbed UCQ disjunct (certificate: homomorphism)
    - [Q009] cartesian-product CQ (certificate: the component split)
    - [D101] malformed database line, [D102] arity conflict,
      [D103] endo/exo overlap, [D104] duplicate fact line
    - [X201] query relation missing from database, [X202] arity mismatch
      between query and database, [X203] exponential blowup risk
    - [W301] duplicate case name, [W302] empty workload, [W303] workload
      file syntax error *)

val query : Query.t -> Diagnostic.t list
val query_src : string -> Query.t option * Diagnostic.t list
(** Parse (reporting [Q001]/[Q002] with spans) then analyze. *)

val database : Database.t -> Diagnostic.t list
val database_src : string -> Database.t option * Diagnostic.t list
(** Line-level checks ([D101]/[D103]/[D104]) need the source text; the
    database is [None] when the parts overlap. *)

val pair : Query.t -> Database.t -> Diagnostic.t list
(** Cross-checks [X201]/[X202]/[X203]. *)

val workload : Workload.t -> Diagnostic.t list
val workload_src : string -> Workload.t option * Diagnostic.t list

val empty_proof_of : Regex.t -> Diagnostic.empty_proof option
(** [Some proof] iff the language is empty. *)

val blowup_threshold : int
(** Endogenous-fact count above which a non-FP query triggers [X203]. *)
