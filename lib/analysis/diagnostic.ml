type severity = Error | Warning | Hint

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

type span = { line : int; col : int; len : int }

let span_of_parse (d : Query_parse.diagnostic) =
  { line = 1; col = d.Query_parse.offset; len = d.Query_parse.length }

let span_of_line ?(col = 0) ?(len = 0) line = { line; col; len }

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)
(* ------------------------------------------------------------------ *)

(* Structural proof that a regular expression denotes the empty
   language.  Eps, Sym and Star never do, so the proof only descends
   through Seq and Alt down to ∅ leaves. *)
type empty_proof =
  | Prim_empty                            (* the regex is ∅ itself *)
  | Seq_left of empty_proof               (* L·R with L empty *)
  | Seq_right of empty_proof              (* L·R with R empty *)
  | Alt_both of empty_proof * empty_proof (* L+R with both empty *)

type certificate =
  | Non_hierarchical of Hierarchical.violation
  | Hard_word of string list
    (* an accepted word of length ≥ 3 (Corollary 4.3 hard side) *)
  | Dead_language of Regex.t * empty_proof
  | Subsumed_atom of Atom.t * (string * Term.t) list
    (* the redundant atom and a homomorphism q → q∖atom fixing constants *)
  | Subsumed_disjunct of { kept : Cq.t; dropped : Cq.t; hom : (string * Term.t) list }
    (* hom kept → dropped witnesses dropped ⊨ kept, so dropped is redundant *)
  | Self_join_pair of Atom.t * Atom.t
  | Component_split of Atom.t list * Atom.t list
    (* a partition of the atoms sharing no term: a cartesian product *)
  | Arity_conflict of Fact.t * Fact.t
  | Part_overlap of Fact.t
    (* declared both endogenous and exogenous *)
  | Duplicate_fact of Fact.t * int * int
    (* same tagged fact on two source lines *)
  | Missing_relation of string * Atom.t option
    (* query relation absent from the database (atom when applicable) *)
  | Query_db_arity of { rel : string; query_arity : int; witness : Fact.t }
  | Blowup of { verdict : string; n_endo : int; plan_width : int option }
    (* not-known-tractable query over this many endogenous facts; the
       compilation planner's max induced width when a lineage plan was
       derivable (checked against an independent re-analysis) *)

type t = {
  code : string;
  severity : severity;
  span : span option;
  message : string;
  certificate : certificate option;
}

let make ?span ?certificate ~code ~severity message =
  { code; severity; span; message; certificate }

let error ?span ?certificate code message =
  make ?span ?certificate ~code ~severity:Error message

let warning ?span ?certificate code message =
  make ?span ?certificate ~code ~severity:Warning message

let hint ?span ?certificate code message =
  make ?span ?certificate ~code ~severity:Hint message

let compare a b =
  match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 ->
    (match Stdlib.compare a.code b.code with
     | 0 ->
       (match Stdlib.compare a.span b.span with
        | 0 -> Stdlib.compare a.message b.message
        | c -> c)
     | c -> c)
  | c -> c

let sort ds = List.sort_uniq compare ds

let count severity ds = List.length (List.filter (fun d -> d.severity = severity) ds)

let max_severity ds =
  List.fold_left
    (fun acc d ->
       match acc with
       | None -> Some d.severity
       | Some s -> if severity_rank d.severity < severity_rank s then Some d.severity else acc)
    None ds

let gate ~strict ds =
  List.exists
    (fun d -> d.severity = Error || (strict && d.severity = Warning))
    ds

(* ------------------------------------------------------------------ *)
(* Text rendering                                                      *)
(* ------------------------------------------------------------------ *)

let rec empty_proof_to_string = function
  | Prim_empty -> "∅"
  | Seq_left p -> "seq-left(" ^ empty_proof_to_string p ^ ")"
  | Seq_right p -> "seq-right(" ^ empty_proof_to_string p ^ ")"
  | Alt_both (p, q) ->
    "alt(" ^ empty_proof_to_string p ^ ", " ^ empty_proof_to_string q ^ ")"

let hom_to_string hom =
  String.concat ", "
    (List.map (fun (v, t) -> Printf.sprintf "?%s ↦ %s" v (Term.to_string t)) hom)

let atoms_to_string atoms = String.concat ", " (List.map Atom.to_string atoms)

let certificate_to_string = function
  | Non_hierarchical v -> Hierarchical.violation_to_string v
  | Hard_word w -> Printf.sprintf "accepted word of length %d: %s" (List.length w) (String.concat "·" w)
  | Dead_language (re, proof) ->
    Printf.sprintf "L(%s) = ∅ by %s" (Regex.to_string re) (empty_proof_to_string proof)
  | Subsumed_atom (a, hom) ->
    Printf.sprintf "%s is redundant: homomorphism [%s] maps the query into the rest"
      (Atom.to_string a) (hom_to_string hom)
  | Subsumed_disjunct { kept; dropped; hom } ->
    Printf.sprintf "disjunct %s implies disjunct %s via [%s]"
      (Cq.to_string dropped) (Cq.to_string kept) (hom_to_string hom)
  | Self_join_pair (a, b) ->
    Printf.sprintf "atoms %s and %s share relation %s" (Atom.to_string a) (Atom.to_string b)
      (Atom.rel a)
  | Component_split (c1, c2) ->
    Printf.sprintf "independent components {%s} × {%s}" (atoms_to_string c1) (atoms_to_string c2)
  | Arity_conflict (f1, f2) ->
    Printf.sprintf "%s vs %s" (Fact.to_string f1) (Fact.to_string f2)
  | Part_overlap f -> Fact.to_string f ^ " is both endogenous and exogenous"
  | Duplicate_fact (f, l1, l2) ->
    Printf.sprintf "%s on lines %d and %d" (Fact.to_string f) l1 l2
  | Missing_relation (r, Some a) ->
    Printf.sprintf "relation %s of atom %s" r (Atom.to_string a)
  | Missing_relation (r, None) -> Printf.sprintf "relation %s" r
  | Query_db_arity { rel; query_arity; witness } ->
    Printf.sprintf "%s used with arity %d, database has %s" rel query_arity
      (Fact.to_string witness)
  | Blowup { verdict; n_endo; plan_width } ->
    Printf.sprintf "verdict %s over %d endogenous facts%s" verdict n_endo
      (match plan_width with
       | Some w -> Printf.sprintf ", plan width %d" w
       | None -> "")

let to_string d =
  let loc =
    match d.span with
    | Some s -> Printf.sprintf " %d:%d" s.line s.col
    | None -> ""
  in
  Printf.sprintf "%s[%s]%s: %s%s"
    (severity_to_string d.severity) d.code loc d.message
    (match d.certificate with
     | Some c -> "\n    certificate: " ^ certificate_to_string c
     | None -> "")

let pp fmt d = Format.pp_print_string fmt (to_string d)

(* ------------------------------------------------------------------ *)
(* JSON rendering (hand-rolled; no external dependency)                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""
let jfield k v = jstr k ^ ":" ^ v
let jobj fields = "{" ^ String.concat "," fields ^ "}"
let jarr items = "[" ^ String.concat "," items ^ "]"

let hom_to_json hom =
  jobj (List.map (fun (v, t) -> jfield v (jstr (Term.to_string t))) hom)

let rec empty_proof_to_json = function
  | Prim_empty -> jobj [ jfield "rule" (jstr "empty") ]
  | Seq_left p -> jobj [ jfield "rule" (jstr "seq-left"); jfield "sub" (empty_proof_to_json p) ]
  | Seq_right p -> jobj [ jfield "rule" (jstr "seq-right"); jfield "sub" (empty_proof_to_json p) ]
  | Alt_both (p, q) ->
    jobj
      [ jfield "rule" (jstr "alt-both");
        jfield "left" (empty_proof_to_json p);
        jfield "right" (empty_proof_to_json q) ]

let certificate_to_json = function
  | Non_hierarchical v ->
    jobj
      [ jfield "kind" (jstr "non-hierarchical");
        jfield "var1" (jstr v.Hierarchical.var1);
        jfield "var2" (jstr v.Hierarchical.var2);
        jfield "atom_only1" (jstr (Atom.to_string v.Hierarchical.atom_only1));
        jfield "atom_both" (jstr (Atom.to_string v.Hierarchical.atom_both));
        jfield "atom_only2" (jstr (Atom.to_string v.Hierarchical.atom_only2)) ]
  | Hard_word w ->
    jobj [ jfield "kind" (jstr "hard-word"); jfield "word" (jarr (List.map jstr w)) ]
  | Dead_language (re, proof) ->
    jobj
      [ jfield "kind" (jstr "dead-language");
        jfield "regex" (jstr (Regex.to_string re));
        jfield "proof" (empty_proof_to_json proof) ]
  | Subsumed_atom (a, hom) ->
    jobj
      [ jfield "kind" (jstr "subsumed-atom");
        jfield "atom" (jstr (Atom.to_string a));
        jfield "hom" (hom_to_json hom) ]
  | Subsumed_disjunct { kept; dropped; hom } ->
    jobj
      [ jfield "kind" (jstr "subsumed-disjunct");
        jfield "kept" (jstr (Cq.to_string kept));
        jfield "dropped" (jstr (Cq.to_string dropped));
        jfield "hom" (hom_to_json hom) ]
  | Self_join_pair (a, b) ->
    jobj
      [ jfield "kind" (jstr "self-join");
        jfield "atom1" (jstr (Atom.to_string a));
        jfield "atom2" (jstr (Atom.to_string b)) ]
  | Component_split (c1, c2) ->
    jobj
      [ jfield "kind" (jstr "component-split");
        jfield "component1" (jarr (List.map (fun a -> jstr (Atom.to_string a)) c1));
        jfield "component2" (jarr (List.map (fun a -> jstr (Atom.to_string a)) c2)) ]
  | Arity_conflict (f1, f2) ->
    jobj
      [ jfield "kind" (jstr "arity-conflict");
        jfield "fact1" (jstr (Fact.to_string f1));
        jfield "fact2" (jstr (Fact.to_string f2)) ]
  | Part_overlap f ->
    jobj [ jfield "kind" (jstr "part-overlap"); jfield "fact" (jstr (Fact.to_string f)) ]
  | Duplicate_fact (f, l1, l2) ->
    jobj
      [ jfield "kind" (jstr "duplicate-fact");
        jfield "fact" (jstr (Fact.to_string f));
        jfield "line1" (string_of_int l1);
        jfield "line2" (string_of_int l2) ]
  | Missing_relation (r, a) ->
    jobj
      ([ jfield "kind" (jstr "missing-relation"); jfield "relation" (jstr r) ]
       @ match a with Some a -> [ jfield "atom" (jstr (Atom.to_string a)) ] | None -> [])
  | Query_db_arity { rel; query_arity; witness } ->
    jobj
      [ jfield "kind" (jstr "query-db-arity");
        jfield "relation" (jstr rel);
        jfield "query_arity" (string_of_int query_arity);
        jfield "witness" (jstr (Fact.to_string witness)) ]
  | Blowup { verdict; n_endo; plan_width } ->
    jobj
      ([ jfield "kind" (jstr "blowup");
         jfield "verdict" (jstr verdict);
         jfield "n_endo" (string_of_int n_endo) ]
       @ match plan_width with
       | Some w -> [ jfield "plan_width" (string_of_int w) ]
       | None -> [])

let to_json d =
  jobj
    ([ jfield "code" (jstr d.code);
       jfield "severity" (jstr (severity_to_string d.severity));
       jfield "message" (jstr d.message) ]
     @ (match d.span with
        | Some s ->
          [ jfield "span"
              (jobj
                 [ jfield "line" (string_of_int s.line);
                   jfield "col" (string_of_int s.col);
                   jfield "len" (string_of_int s.len) ]) ]
        | None -> [])
     @ (match d.certificate with
        | Some c -> [ jfield "certificate" (certificate_to_json c) ]
        | None -> []))

let list_to_json ds =
  jobj
    [ jfield "diagnostics" (jarr (List.map to_json ds));
      jfield "summary"
        (jobj
           [ jfield "errors" (string_of_int (count Error ds));
             jfield "warnings" (string_of_int (count Warning ds));
             jfield "hints" (string_of_int (count Hint ds)) ]) ]
