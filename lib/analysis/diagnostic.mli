(** Structured diagnostics with stable codes and checkable certificates.

    Every diagnostic produced by {!module:Analyze} carries a stable code
    ([Qxxx] for queries, [Dxxx] for databases, [Xxxx] for query/database
    cross-checks, [Wxxx] for workloads), a severity, an optional source
    span, a human message, and — where applicable — a machine-checkable
    {!certificate} that an independent verifier ({!module:Certcheck}) can
    re-establish without trusting the analyzer. *)

type severity = Error | Warning | Hint

val severity_to_string : severity -> string
val severity_rank : severity -> int
(** [Error < Warning < Hint]. *)

type span = { line : int; col : int; len : int }
(** 1-based line, 0-based column.  Query strings are line 1. *)

val span_of_parse : Query_parse.diagnostic -> span
val span_of_line : ?col:int -> ?len:int -> int -> span

(** Structural proof that a regular expression denotes ∅: [Eps], [Sym]
    and [Star] are never empty, so the proof descends through [Seq]
    (one empty factor suffices) and [Alt] (both branches) to ∅ leaves. *)
type empty_proof =
  | Prim_empty
  | Seq_left of empty_proof
  | Seq_right of empty_proof
  | Alt_both of empty_proof * empty_proof

type certificate =
  | Non_hierarchical of Hierarchical.violation
      (** the variable pair and the three atoms splitting their covers *)
  | Hard_word of string list
      (** an accepted word of length ≥ 3 (Corollary 4.3, hard side) *)
  | Dead_language of Regex.t * empty_proof
  | Subsumed_atom of Atom.t * (string * Term.t) list
      (** the redundant atom and a homomorphism [q → q∖atom] *)
  | Subsumed_disjunct of { kept : Cq.t; dropped : Cq.t; hom : (string * Term.t) list }
      (** [hom : kept → dropped] witnesses [dropped ⊨ kept] *)
  | Self_join_pair of Atom.t * Atom.t
  | Component_split of Atom.t list * Atom.t list
      (** a partition of the atoms sharing no term *)
  | Arity_conflict of Fact.t * Fact.t
  | Part_overlap of Fact.t
  | Duplicate_fact of Fact.t * int * int  (** fact, first line, second line *)
  | Missing_relation of string * Atom.t option
  | Query_db_arity of { rel : string; query_arity : int; witness : Fact.t }
  | Blowup of { verdict : string; n_endo : int; plan_width : int option }
      (** not-known-tractable query over [n_endo] endogenous facts;
          [plan_width] is the compilation planner's max induced width on
          the instance's lineage when one was derivable *)

type t = {
  code : string;
  severity : severity;
  span : span option;
  message : string;
  certificate : certificate option;
}

val make :
  ?span:span -> ?certificate:certificate -> code:string -> severity:severity -> string -> t

val error : ?span:span -> ?certificate:certificate -> string -> string -> t
val warning : ?span:span -> ?certificate:certificate -> string -> string -> t
val hint : ?span:span -> ?certificate:certificate -> string -> string -> t

val compare : t -> t -> int
(** Severity first (errors < warnings < hints), then code, span, message. *)

val sort : t list -> t list
(** Sorted and de-duplicated. *)

val count : severity -> t list -> int
val max_severity : t list -> severity option

val gate : strict:bool -> t list -> bool
(** Whether the list should fail a gate: any [Error], or — with
    [strict] — any [Warning]. *)

val certificate_to_string : certificate -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val to_json : t -> string
val list_to_json : t list -> string
(** [{"diagnostics":[...],"summary":{"errors":n,...}}]. *)
