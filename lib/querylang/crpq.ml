type path_atom = { lang : Regex.t; psrc : Term.t; pdst : Term.t }

type t = path_atom list

let of_path_atoms patoms =
  if patoms = [] then invalid_arg "Crpq.of_path_atoms: empty conjunction";
  patoms

let path_atoms q = q

let term_vars t = match t with Term.Var v -> Term.Sset.singleton v | Term.Const _ -> Term.Sset.empty
let term_consts t = match t with Term.Const c -> Term.Sset.singleton c | Term.Var _ -> Term.Sset.empty

let vars q =
  List.fold_left
    (fun acc a -> Term.Sset.union acc (Term.Sset.union (term_vars a.psrc) (term_vars a.pdst)))
    Term.Sset.empty q

let consts q =
  List.fold_left
    (fun acc a -> Term.Sset.union acc (Term.Sset.union (term_consts a.psrc) (term_consts a.pdst)))
    Term.Sset.empty q

let rels q =
  List.fold_left
    (fun acc a -> Term.Sset.union acc (Term.Sset.of_list (Regex.symbols a.lang)))
    Term.Sset.empty q

let is_constant_free q = Term.Sset.is_empty (consts q)

let is_self_join_free q =
  let rec pairwise = function
    | [] -> true
    | a :: rest ->
      let va = Term.Sset.of_list (Regex.symbols a.lang) in
      List.for_all
        (fun b -> Term.Sset.is_empty (Term.Sset.inter va (Term.Sset.of_list (Regex.symbols b.lang))))
        rest
      && pairwise rest
  in
  pairwise q

(* ------------------------------------------------------------------ *)
(* Evaluation: binary CSP over [pairs] relations                       *)
(* ------------------------------------------------------------------ *)

let eval q facts =
  let db_consts = Fact.Set.consts facts in
  let query_consts = consts q in
  let universe = Term.Sset.union db_consts query_consts in
  let atom_pairs a =
    let base = Rpq.reachable_pairs a.lang facts in
    if Regex.nullable a.lang then
      (* ε also relates any constant of the universe to itself, including
         constants absent from the database. *)
      List.sort_uniq compare
        (base @ List.map (fun c -> (c, c)) (Term.Sset.elements universe))
    else base
  in
  let constraints = List.map (fun a -> (a, atom_pairs a)) q in
  let lookup binding t =
    match t with
    | Term.Const c -> Some c
    | Term.Var v -> Term.Smap.find_opt v binding
  in
  let rec solve binding = function
    | [] -> true
    | (a, pairs) :: rest ->
      List.exists
        (fun (c, d) ->
           let ok_src = match lookup binding a.psrc with None -> true | Some x -> x = c in
           let ok_dst = match lookup binding a.pdst with None -> true | Some x -> x = d in
           if not (ok_src && ok_dst) then false
           else begin
             let binding =
               match a.psrc with Term.Var v -> Term.Smap.add v c binding | Term.Const _ -> binding
             in
             let binding =
               match a.pdst with Term.Var v -> Term.Smap.add v d binding | Term.Const _ -> binding
             in
             solve binding rest
           end)
        pairs
  in
  (* order constraints by ascending pair count: fail first *)
  let ordered =
    List.sort (fun (_, p1) (_, p2) -> compare (List.length p1) (List.length p2)) constraints
  in
  solve Term.Smap.empty ordered

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)
(* ------------------------------------------------------------------ *)

let components q =
  let arr = Array.of_list q in
  let n = Array.length arr in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else begin
    let r = find parent.(i) in
    parent.(i) <- r;
    r
  end in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let keys a =
    let key t = match t with Term.Const c -> "c:" ^ c | Term.Var v -> "v:" ^ v in
    [ key a.psrc; key a.pdst ]
  in
  let owner : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i a ->
       List.iter
         (fun k ->
            match Hashtbl.find_opt owner k with
            | None -> Hashtbl.add owner k i
            | Some j -> union i j)
         (keys a))
    arr;
  let groups : (int, path_atom list) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i a ->
       let r = find i in
       let prev = Option.value ~default:[] (Hashtbl.find_opt groups r) in
       Hashtbl.replace groups r (a :: prev))
    arr;
  Hashtbl.fold (fun _ g acc -> List.rev g :: acc) groups []

let is_connected q = List.length (components q) <= 1

let is_cc_disjoint q =
  let comps = components q in
  let vocabs = List.map (fun c -> rels c) comps in
  let rec pairwise = function
    | [] -> true
    | v :: rest ->
      List.for_all (fun v' -> Term.Sset.is_empty (Term.Sset.inter v v')) rest && pairwise rest
  in
  pairwise vocabs

(* ------------------------------------------------------------------ *)
(* Bounded expansion to UCQ                                            *)
(* ------------------------------------------------------------------ *)

let expand_atom max_len (a : path_atom) : (Atom.t list * (Term.t * Term.t) list) list option =
  if Words.exists_length_geq a.lang (max_len + 1) then None
  else begin
    let options = ref [] in
    for l = 0 to max_len do
      List.iter
        (fun word ->
           if word = [] then
             (* ε: equate the endpoints *)
             options := ([], [ (a.psrc, a.pdst) ]) :: !options
           else begin
             let k = List.length word in
             let node i =
               if i = 0 then a.psrc
               else if i = k then a.pdst
               else Term.var (Term.fresh_const ~prefix:"w" ())
             in
             let nodes = Array.init (k + 1) node in
             let atoms = List.mapi (fun i r -> Atom.make r [ nodes.(i); nodes.(i + 1) ]) word in
             options := (atoms, []) :: !options
           end)
        (Words.words_of_length a.lang l)
    done;
    Some (List.rev !options)
  end

let apply_unifications (atoms : Atom.t list) (eqs : (Term.t * Term.t) list) : Atom.t list option =
  (* Resolve the equations into a substitution on variables; fail when two
     distinct constants must be equal. *)
  let rec norm subst t =
    match t with
    | Term.Const _ -> t
    | Term.Var v ->
      (match Term.Smap.find_opt v subst with
       | None -> t
       | Some t' -> norm subst t')
  in
  let rec unify subst = function
    | [] -> Some subst
    | (t1, t2) :: rest ->
      let t1 = norm subst t1 and t2 = norm subst t2 in
      (match (t1, t2) with
       | Term.Const c1, Term.Const c2 -> if c1 = c2 then unify subst rest else None
       | Term.Var v, t | t, Term.Var v -> unify (Term.Smap.add v t subst) rest)
  in
  match unify Term.Smap.empty eqs with
  | None -> None
  | Some subst ->
    let resolve t = norm subst t in
    Some (List.map (fun a -> Atom.make (Atom.rel a) (List.map resolve (Atom.args a))) atoms)

let to_ucq ~max_len q =
  let rec product = function
    | [] -> Some [ ([], []) ]
    | a :: rest ->
      (match (expand_atom max_len a, product rest) with
       | Some opts, Some combos ->
         Some
           (List.concat_map
              (fun (atoms, eqs) ->
                 List.map (fun (atoms', eqs') -> (atoms @ atoms', eqs @ eqs')) combos)
              opts)
       | _ -> None)
  in
  match product q with
  | None -> None
  | Some combos ->
    let cqs =
      List.filter_map
        (fun (atoms, eqs) ->
           match apply_unifications atoms eqs with
           | None -> None
           | Some [] -> None (* all-ε combination: trivially true, not a CQ *)
           | Some atoms -> Some (Cq.of_atoms atoms))
        combos
    in
    (match cqs with [] -> None | _ -> Some (Ucq.of_cqs cqs))

(* ------------------------------------------------------------------ *)
(* Parsing and printing                                                *)
(* ------------------------------------------------------------------ *)

let parse_term s =
  let s = String.trim s in
  if s = "" then invalid_arg "Crpq.parse: empty term";
  if s.[0] = '?' then Term.var (String.sub s 1 (String.length s - 1)) else Term.const s

let parse s =
  (* path atoms separated by top-level commas; each is regex(term,term) *)
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  String.iter
    (fun c ->
       match c with
       | '(' -> incr depth; Buffer.add_char buf c
       | ')' -> decr depth; Buffer.add_char buf c
       | ',' when !depth = 0 ->
         parts := Buffer.contents buf :: !parts;
         Buffer.clear buf
       | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  let parse_patom s =
    let s = String.trim s in
    (* the argument pair is the last parenthesized group *)
    let n = String.length s in
    if n = 0 || s.[n - 1] <> ')' then invalid_arg "Crpq.parse: path atom missing (src,dst)";
    (* find the matching '(' of the final ')' *)
    let rec find i depth =
      if i < 0 then invalid_arg "Crpq.parse: unbalanced parentheses"
      else
        match s.[i] with
        | ')' -> find (i - 1) (depth + 1)
        | '(' -> if depth = 1 then i else find (i - 1) (depth - 1)
        | _ -> find (i - 1) depth
    in
    let open_i = find (n - 1) 0 in
    let regex_part = String.sub s 0 open_i in
    let args_part = String.sub s (open_i + 1) (n - open_i - 2) in
    match String.split_on_char ',' args_part with
    | [ a; b ] ->
      { lang = Regex.parse regex_part; psrc = parse_term a; pdst = parse_term b }
    | _ -> invalid_arg "Crpq.parse: path atoms take exactly two arguments"
  in
  of_path_atoms (List.map parse_patom (List.rev !parts))

let patom_to_string a =
  Printf.sprintf "(%s)(%s,%s)" (Regex.to_string a.lang) (Term.to_string a.psrc)
    (Term.to_string a.pdst)

let to_string q = String.concat ", " (List.map patom_to_string q)
let pp fmt q = Format.pp_print_string fmt (to_string q)
