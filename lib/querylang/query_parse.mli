(** Front-end parser for the unified {!Query.t} type.

    Syntax: an optional language tag followed by the language-specific
    body (variables are [?]-prefixed everywhere):

    {v
      cq:    R(?x,?y), S(?y,b)
      ucq:   R(?x) | S(?x,?y)
      rpq:   (A B* C)(s, t)
      crpq:  (AB+BA)(?x,a), C(?x,?y)
      ucrpq: A(?x,?y) | (BC)(?x,a)
      cqneg: R(?x), S(?x,?y), !T(?y)
      true
    v}

    Without a tag, [cq:] is assumed. *)

val parse : string -> Query.t
(** @raise Invalid_argument on syntax errors. *)
