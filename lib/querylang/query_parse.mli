(** Front-end parser for the unified {!Query.t} type, with location
    tracking.

    Syntax: an optional language tag followed by the language-specific
    body (variables are [?]-prefixed everywhere):

    {v
      cq:    R(?x,?y), S(?y,b)
      ucq:   R(?x) | S(?x,?y)
      rpq:   (A B* C)(s, t)
      crpq:  (AB+BA)(?x,a), C(?x,?y)
      ucrpq: A(?x,?y) | (BC)(?x,a)
      cqneg: R(?x), S(?x,?y), !T(?y)
      gcq:   S(?x,?y), !(A(?x) & B(?y))
      true
    v}

    Without a tag, [cq:] is assumed.  Nullary atoms [R()] are accepted.

    Errors carry a {!diagnostic}: a stable code, the character offset and
    length of the offending span in the input, and (when identifiable) the
    offending token.  For the CQ-family languages (cq, ucq, cqneg) the
    span points at the exact atom, term or character; for the delegated
    graph languages it covers the query body. *)

type diagnostic = {
  code : string;
  (** ["Q001"] for syntax errors, ["Q002"] for an unknown language tag. *)
  message : string;
  offset : int;           (** 0-based character offset into the input *)
  length : int;           (** length of the offending span *)
  token : string option;  (** the offending token, when identifiable *)
}

exception Error of diagnostic

val diagnostic_to_string : diagnostic -> string
(** ["<message> at offset N (near token T)"]. *)

val parse_result : string -> (Query.t, diagnostic) result
(** Non-raising entry point, used by the static analyzer. *)

val parse : string -> Query.t
(** @raise Invalid_argument with a located message on syntax errors. *)
