(** Unified Boolean queries.

    The studied problems (SVC, model counting, probabilistic evaluation) are
    parameterized by an arbitrary Boolean query; this module packages the
    concrete languages behind one evaluation interface, together with the
    structural data the paper's reductions consume: constants [C] for
    C-hom-closure, vocabulary, canonical minimal supports, relevance,
    q-leaks (Section 4.1). *)

type t =
  | True                    (** the trivial query ⊤ *)
  | Cq of Cq.t
  | Ucq of Ucq.t
  | Rpq of Rpq.t
  | Crpq of Crpq.t
  | Ucrpq of Ucrpq.t
  | Cqneg of Cqneg.t
  | Gcq of Gcq.t            (** guarded generalized CQ (Appendix D.2.3) *)
  | And of t * t            (** conjunction (the [q ∧ q′] of Lemma 4.3) *)
  | Or of t * t

val eval : t -> Fact.Set.t -> bool

val holds : t -> Database.t -> bool
(** [holds q db = eval q (Database.all db)]. *)

val consts : t -> Term.Sset.t
(** The constants of the query, i.e. the set [C] for which the query is
    C-hom-closed ({!Cqneg} queries are not hom-closed; their constants are
    still returned). *)

val rels : t -> Term.Sset.t

val is_hom_closed_syntactically : t -> bool
(** Whether the query belongs to a (C-)hom-closed fragment by its syntax
    (everything except {!Cqneg} and combinations containing one). *)

val name : t -> string
(** A short description for reports. *)

(** {1 Supports} *)

val minimal_supports_in : t -> Fact.Set.t -> Fact.Set.t list
(** All ⊆-minimal subsets [S] of the given facts with [S ⊨ q], computed by
    language-specific enumeration for (U)CQs and by subset search otherwise
    (intended for small fact sets in the generic case). *)

val fresh_support : t -> Fact.Set.t option
(** A minimal support over fresh constants (and the query's own constants),
    suitable as the support [S] of the paper's constructions; [None] when
    the query is unsatisfiable or satisfied by the empty database. *)

val is_support : t -> Fact.Set.t -> bool
val is_minimal_support : t -> Fact.Set.t -> bool

val relevant_in : t -> Fact.Set.t -> Fact.t -> bool
(** Whether the fact belongs to some minimal support of [q] within the
    given fact set (the "relevant" of Section 2, relativized to a concrete
    database). *)

(** {1 Leak detection (Section 4.1)} *)

val leak_witness : t -> canonical:Fact.Set.t list -> Fact.t -> bool
(** [leak_witness q ~canonical f] checks whether [f] is a q-leak witnessed
    by one of the given minimal supports: some fact [α'] of a support admits
    a C-homomorphism onto [f] sending a constant outside [C = consts q]
    into [C]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
