type t = { lang : Regex.t; src : string; dst : string }

let make lang ~src ~dst = { lang; src; dst }
let of_string s ~src ~dst = { lang = Regex.parse s; src; dst }

let lang q = q.lang
let src q = q.src
let dst q = q.dst
let consts q = Term.Sset.of_list [ q.src; q.dst ]
let rels q = Term.Sset.of_list (Regex.symbols q.lang)

(* Binary facts as labelled edges. *)
let edges facts =
  Fact.Set.fold
    (fun f acc -> match Fact.args f with [ a; b ] -> (a, Fact.rel f, b) :: acc | _ -> acc)
    facts []

(* Product reachability: explore (node, nfa-state-set) pairs from [start]. *)
let reachable_from (nfa : Nfa.t) (es : (string * string * string) list) (origin : string) :
  (string * Nfa.state_set) list =
  let module M = Map.Make (String) in
  (* successor edges by source node *)
  let out =
    List.fold_left
      (fun m (a, r, b) ->
         M.update a (function None -> Some [ (r, b) ] | Some l -> Some ((r, b) :: l)) m)
      M.empty es
  in
  let visited : (string, Nfa.state_set list) Hashtbl.t = Hashtbl.create 16 in
  let seen node set =
    let sets = Option.value ~default:[] (Hashtbl.find_opt visited node) in
    List.exists (fun s -> Nfa.set_compare s set = 0) sets
  in
  let mark node set =
    let sets = Option.value ~default:[] (Hashtbl.find_opt visited node) in
    Hashtbl.replace visited node (set :: sets)
  in
  let queue = Queue.create () in
  let push node set =
    if (not (Nfa.is_empty_set set)) && not (seen node set) then begin
      mark node set;
      Queue.add (node, set) queue
    end
  in
  push origin (Nfa.start nfa);
  while not (Queue.is_empty queue) do
    let node, set = Queue.pop queue in
    let succs = Option.value ~default:[] (M.find_opt node out) in
    List.iter (fun (r, b) -> push b (Nfa.step nfa set r)) succs
  done;
  Hashtbl.fold (fun node sets acc -> List.map (fun s -> (node, s)) sets @ acc) visited []

let eval q facts =
  (Regex.nullable q.lang && q.src = q.dst)
  ||
  let nfa = Nfa.of_regex q.lang in
  let es = edges facts in
  List.exists
    (fun (node, set) -> node = q.dst && Nfa.is_accepting nfa set)
    (reachable_from nfa es q.src)

let reachable_pairs lang facts =
  let nfa = Nfa.of_regex lang in
  let es = edges facts in
  let nodes =
    List.sort_uniq String.compare
      (List.concat_map (fun (a, _, b) -> [ a; b ]) es)
  in
  let from_node c =
    List.filter_map
      (fun (node, set) -> if Nfa.is_accepting nfa set then Some (c, node) else None)
      (reachable_from nfa es c)
  in
  let pairs = List.concat_map from_node nodes in
  let eps_pairs = if Regex.nullable lang then List.map (fun c -> (c, c)) nodes else [] in
  List.sort_uniq compare (pairs @ eps_pairs)

let fresh_path_support ?(min_len = 1) q =
  match Words.some_word_of_length_geq q.lang min_len with
  | None -> None
  | Some word ->
    let l = List.length word in
    let node i =
      if i = 0 then q.src
      else if i = l then q.dst
      else Term.fresh_const ~prefix:"p" ()
    in
    let nodes = Array.init (l + 1) node in
    let facts =
      List.mapi (fun i r -> Fact.make r [ nodes.(i); nodes.(i + 1) ]) word
    in
    Some (Fact.Set.of_list facts, word)

let is_pseudo_connected q = Words.exists_length_geq q.lang 2
let dichotomy_hard q = Words.exists_length_geq q.lang 3

let to_string q = Printf.sprintf "%s(%s,%s)" (Regex.to_string q.lang) q.src q.dst
let pp fmt q = Format.pp_print_string fmt (to_string q)
