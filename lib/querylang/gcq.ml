type cond =
  | Catom of Atom.t
  | Cand of cond list
  | Cor of cond list
  | Cnot of cond

type t = { guards : Atom.t list; conds : cond list }

let rec cond_atoms = function
  | Catom a -> [ a ]
  | Cand cs | Cor cs -> List.concat_map cond_atoms cs
  | Cnot c -> cond_atoms c

let atoms_vars atoms =
  List.fold_left (fun acc a -> Term.Sset.union acc (Atom.vars a)) Term.Sset.empty atoms

let make ~guards ~cond =
  if guards = [] then invalid_arg "Gcq.make: empty guard set";
  let gvars = atoms_vars guards in
  List.iter
    (fun c ->
       if not (Term.Sset.subset (atoms_vars (cond_atoms c)) gvars) then
         invalid_arg "Gcq.make: condition variable not covered by the guards")
    cond;
  { guards = List.sort_uniq Atom.compare guards; conds = cond }

let guards q = q.guards
let conditions q = q.conds

let all_atoms q = q.guards @ List.concat_map cond_atoms q.conds

let vars q = atoms_vars (all_atoms q)

let consts q =
  List.fold_left
    (fun acc a -> Term.Sset.union acc (Atom.consts a))
    Term.Sset.empty (all_atoms q)

let rels q =
  List.fold_left (fun acc a -> Term.Sset.add (Atom.rel a) acc) Term.Sset.empty (all_atoms q)

let guard_rels q =
  List.fold_left (fun acc a -> Term.Sset.add (Atom.rel a) acc) Term.Sset.empty q.guards

let cond_rels q =
  List.fold_left
    (fun acc a -> Term.Sset.add (Atom.rel a) acc)
    Term.Sset.empty
    (List.concat_map cond_atoms q.conds)

let rec eval_cond subst facts = function
  | Catom a ->
    let ground = Atom.apply (Term.Smap.map Term.const subst) a in
    (match Fact.of_atom_opt ground with
     | Some f -> Fact.Set.mem f facts
     | None -> invalid_arg "Gcq: condition atom not fully instantiated")
  | Cand cs -> List.for_all (eval_cond subst facts) cs
  | Cor cs -> List.exists (eval_cond subst facts) cs
  | Cnot c -> not (eval_cond subst facts c)

let eval q facts =
  let found = ref false in
  (try
     Homomorphism.iter_valuations ~into:facts q.guards (fun s ->
         if List.for_all (eval_cond s facts) q.conds then begin
           found := true;
           raise Exit
         end)
   with Exit -> ());
  !found

let is_guard_self_join_free q =
  Term.Sset.cardinal (guard_rels q) = List.length q.guards

let guards_disjoint_from_conditions q =
  Term.Sset.is_empty (Term.Sset.inter (guard_rels q) (cond_rels q))

let has_variable_free_condition_atom q =
  List.exists
    (fun a -> Term.Sset.is_empty (Atom.vars a))
    (List.concat_map cond_atoms q.conds)

let guard_variable_components q =
  let comps = Cq.variable_components (Cq.of_atoms q.guards) in
  List.map
    (fun comp ->
       let cvars = Cq.vars comp in
       let inside =
         List.filter
           (fun c -> Term.Sset.subset (atoms_vars (cond_atoms c)) cvars)
           q.conds
       in
       (comp, inside))
    comps

let of_cqneg qn =
  make ~guards:(Cqneg.pos qn)
    ~cond:(List.map (fun a -> Cnot (Catom a)) (Cqneg.neg qn))

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* split [s] on [sep] at parenthesis depth 0 *)
let split_top sep s =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  String.iter
    (fun ch ->
       match ch with
       | '(' -> incr depth; Buffer.add_char buf ch
       | ')' -> decr depth; Buffer.add_char buf ch
       | c when c = sep && !depth = 0 ->
         parts := Buffer.contents buf :: !parts;
         Buffer.clear buf
       | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map String.trim !parts

let rec parse_item (s : string) : cond =
  let s = String.trim s in
  if s = "" then invalid_arg "Gcq.parse: empty item";
  if s.[0] = '!' then Cnot (parse_item (String.sub s 1 (String.length s - 1)))
  else if s.[0] = '(' && s.[String.length s - 1] = ')'
          && (* the closing paren must match the opening one *)
          (let depth = ref 0 and closes_early = ref false in
           String.iteri
             (fun i ch ->
                if ch = '(' then incr depth
                else if ch = ')' then begin
                  decr depth;
                  if !depth = 0 && i < String.length s - 1 then closes_early := true
                end)
             s;
           not !closes_early)
  then parse_expr (String.sub s 1 (String.length s - 2))
  else begin
    (* a plain atom, reuse the CQ atom syntax *)
    match Cq.atoms (Cq.parse s) with
    | [ a ] -> Catom a
    | _ -> invalid_arg "Gcq.parse: expected a single atom"
  end

and parse_expr (s : string) : cond =
  match split_top '|' s with
  | [ single ] ->
    (match split_top '&' single with
     | [ one ] -> parse_item one
     | conjuncts -> Cand (List.map parse_item conjuncts))
  | disjuncts ->
    Cor
      (List.map
         (fun d ->
            match split_top '&' d with
            | [ one ] -> parse_item one
            | conjuncts -> Cand (List.map parse_item conjuncts))
         disjuncts)

let parse s =
  let items = split_top ',' s in
  let guards, conds =
    List.fold_left
      (fun (guards, conds) item ->
         if item = "" then (guards, conds)
         else if item.[0] = '!' || item.[0] = '(' then
           (guards, parse_item item :: conds)
         else
           match Cq.atoms (Cq.parse item) with
           | [ a ] -> (a :: guards, conds)
           | _ -> invalid_arg "Gcq.parse: expected a single atom per item")
      ([], []) items
  in
  make ~guards:(List.rev guards) ~cond:(List.rev conds)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec cond_to_string = function
  | Catom a -> Atom.to_string a
  | Cand cs -> "(" ^ String.concat " & " (List.map cond_to_string cs) ^ ")"
  | Cor cs -> "(" ^ String.concat " | " (List.map cond_to_string cs) ^ ")"
  | Cnot c -> "!" ^ cond_to_string c

let to_string q =
  String.concat ", "
    (List.map Atom.to_string q.guards @ List.map cond_to_string q.conds)

let pp fmt q = Format.pp_print_string fmt (to_string q)
