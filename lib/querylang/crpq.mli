(** Conjunctive regular path queries (Section 2): existentially quantified
    conjunctions of path atoms [L(t, t')] over a binary schema. *)

type path_atom = { lang : Regex.t; psrc : Term.t; pdst : Term.t }

type t

val of_path_atoms : path_atom list -> t
(** @raise Invalid_argument on an empty list. *)

val path_atoms : t -> path_atom list

val vars : t -> Term.Sset.t
val consts : t -> Term.Sset.t
val rels : t -> Term.Sset.t
(** Union of the path-atom alphabets (the vocabulary). *)

val eval : t -> Fact.Set.t -> bool

val is_constant_free : t -> bool

val is_self_join_free : t -> bool
(** Path atoms have pairwise disjoint alphabets (sjf-CRPQ, Section 4.2). *)

val components : t -> t list
(** Connected components of the path atoms via shared terms. *)

val is_connected : t -> bool

val is_cc_disjoint : t -> bool
(** Connected components have pairwise disjoint vocabularies
    (cc-disjoint-CRPQ, Corollary 4.6). *)

val to_ucq : max_len:int -> t -> Ucq.t option
(** Expand every path atom into the union of its words of length ≤
    [max_len]; [Some] only when every language is finite with all words
    within the bound, in which case the result is an equivalent UCQ
    (boundedness witness). *)

val parse : string -> t
(** Comma-separated path atoms [regex(term,term)] with [?]-prefixed
    variables, e.g. ["(AB+BA)(?x,a)"]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
