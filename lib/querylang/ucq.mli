(** Unions of conjunctive queries (Section 2). *)

type t

val of_cqs : Cq.t list -> t
(** @raise Invalid_argument on an empty list. *)

val disjuncts : t -> Cq.t list
val of_cq : Cq.t -> t

val vars : t -> Term.Sset.t
val consts : t -> Term.Sset.t
val rels : t -> Term.Sset.t

val eval : t -> Fact.Set.t -> bool

val is_constant_free : t -> bool

val is_connected : t -> bool
(** Every disjunct of the reduced form is connected; for constant-free
    UCQs this matches "every minimal support is connected" (connected
    hom-closed queries, Section 4.1). *)

val reduce : t -> t
(** Remove redundant disjuncts (those implied by another disjunct) and
    replace each disjunct by its core.  The minimal supports of the result
    are exactly the C-hom images of its disjuncts' canonical databases. *)

val minimal_supports_in : t -> Fact.Set.t -> Fact.Set.t list

val canonical_supports : t -> Fact.Set.t list
(** One canonical (fresh-constant) minimal support per disjunct of the
    reduced form. *)

val implies : t -> t -> bool
(** [implies q q'] iff every database satisfying [q] satisfies [q']. *)

val equivalent : t -> t -> bool

val parse : string -> t
(** Disjuncts separated by ["|"], each in {!Cq.parse} syntax. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
