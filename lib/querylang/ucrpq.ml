type t = Crpq.t list

let of_crpqs l =
  if l = [] then invalid_arg "Ucrpq.of_crpqs: empty union";
  l

let of_crpq c = [ c ]
let disjuncts q = q

let consts q =
  List.fold_left (fun acc c -> Term.Sset.union acc (Crpq.consts c)) Term.Sset.empty q

let rels q = List.fold_left (fun acc c -> Term.Sset.union acc (Crpq.rels c)) Term.Sset.empty q
let eval q facts = List.exists (fun c -> Crpq.eval c facts) q
let is_constant_free q = List.for_all Crpq.is_constant_free q

let to_ucq ~max_len q =
  let expanded = List.map (Crpq.to_ucq ~max_len) q in
  if List.exists Option.is_none expanded then None
  else
    Some (Ucq.of_cqs (List.concat_map (fun u -> Ucq.disjuncts (Option.get u)) expanded))

let parse s = of_crpqs (List.map Crpq.parse (String.split_on_char '|' s))
let to_string q = String.concat " | " (List.map Crpq.to_string q)
let pp fmt q = Format.pp_print_string fmt (to_string q)
