let parse s =
  let s = String.trim s in
  if String.lowercase_ascii s = "true" then Query.True
  else begin
    let tag, body =
      match String.index_opt s ':' with
      | Some i when i < 8 ->
        ( String.lowercase_ascii (String.trim (String.sub s 0 i)),
          String.sub s (i + 1) (String.length s - i - 1) )
      | _ -> ("cq", s)
    in
    match tag with
    | "cq" -> Query.Cq (Cq.parse body)
    | "ucq" -> Query.Ucq (Ucq.parse body)
    | "rpq" ->
      (* parse as a single-atom CRPQ, then require constant endpoints *)
      (match Crpq.path_atoms (Crpq.parse body) with
       | [ { lang; psrc = Term.Const a; pdst = Term.Const b } ] ->
         Query.Rpq (Rpq.make lang ~src:a ~dst:b)
       | [ _ ] -> invalid_arg "Query_parse: RPQ endpoints must be constants"
       | _ -> invalid_arg "Query_parse: an RPQ is a single path atom")
    | "crpq" -> Query.Crpq (Crpq.parse body)
    | "ucrpq" -> Query.Ucrpq (Ucrpq.parse body)
    | "cqneg" -> Query.Cqneg (Cqneg.parse body)
    | "gcq" -> Query.Gcq (Gcq.parse body)
    | _ -> invalid_arg (Printf.sprintf "Query_parse: unknown language tag %S" tag)
  end
