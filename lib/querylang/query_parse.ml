(* Front-end parser for Query.t, with location tracking.

   The CQ-family languages (cq, ucq, cqneg) are parsed directly on the
   input string with character offsets, so that syntax errors carry a
   precise span and offending token.  The graph languages delegate to the
   per-language parsers; their errors are attributed to the body span. *)

type diagnostic = {
  code : string;          (* "Q001" syntax error, "Q002" unknown tag *)
  message : string;
  offset : int;           (* 0-based character offset into the input *)
  length : int;
  token : string option;  (* the offending token, when identifiable *)
}

exception Error of diagnostic

let code_syntax = "Q001"
let code_unknown_tag = "Q002"

let diagnostic_to_string d =
  Printf.sprintf "%s at offset %d%s" d.message d.offset
    (match d.token with
     | Some t -> Printf.sprintf " (near token %S)" t
     | None -> "")

let err ?token ~code ~lo ~hi message =
  raise (Error { code; message; offset = lo; length = max 0 (hi - lo); token })

(* ------------------------------------------------------------------ *)
(* Range helpers over the original input string                        *)
(* ------------------------------------------------------------------ *)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let trim_range s lo hi =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi && is_space s.[!lo] do incr lo done;
  while !hi > !lo && is_space s.[!hi - 1] do decr hi done;
  (!lo, !hi)

let sub_range s lo hi = String.sub s lo (hi - lo)

(* Split [lo, hi) at every depth-0 occurrence of [sep]. *)
let split_top s lo hi sep =
  let parts = ref [] in
  let depth = ref 0 in
  let start = ref lo in
  for i = lo to hi - 1 do
    match s.[i] with
    | '(' -> incr depth
    | ')' -> decr depth
    | c when c = sep && !depth = 0 ->
      parts := (!start, i) :: !parts;
      start := i + 1
    | _ -> ()
  done;
  List.rev ((!start, hi) :: !parts)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '#' || c = '\''

(* ------------------------------------------------------------------ *)
(* Span-tracked atoms and terms (CQ family)                            *)
(* ------------------------------------------------------------------ *)

let parse_term_range s lo hi : Term.t =
  let lo, hi = trim_range s lo hi in
  if lo >= hi then err ~code:code_syntax ~lo ~hi:(lo + 1) "empty term";
  let check_ident lo hi =
    for i = lo to hi - 1 do
      if not (is_ident_char s.[i]) then
        err ~code:code_syntax ~lo:i ~hi:(i + 1)
          ~token:(sub_range s lo hi)
          (Printf.sprintf "invalid character %C in term" s.[i])
    done
  in
  if s.[lo] = '?' then begin
    if lo + 1 >= hi then
      err ~code:code_syntax ~lo ~hi ~token:"?" "empty variable name";
    check_ident (lo + 1) hi;
    Term.var (sub_range s (lo + 1) hi)
  end
  else begin
    check_ident lo hi;
    Term.const (sub_range s lo hi)
  end

let parse_atom_range s lo hi : Atom.t =
  let lo, hi = trim_range s lo hi in
  if lo >= hi then err ~code:code_syntax ~lo ~hi:(lo + 1) "empty atom";
  let paren =
    let rec find i = if i >= hi then None else if s.[i] = '(' then Some i else find (i + 1) in
    find lo
  in
  match paren with
  | None ->
    err ~code:code_syntax ~lo ~hi ~token:(sub_range s lo hi) "atom is missing '('"
  | Some p ->
    if s.[hi - 1] <> ')' then
      err ~code:code_syntax ~lo:(hi - 1) ~hi ~token:(sub_range s lo hi)
        "atom is missing ')'";
    let rlo, rhi = trim_range s lo p in
    if rlo >= rhi then
      err ~code:code_syntax ~lo ~hi:p "atom is missing its relation name";
    let rel = sub_range s rlo rhi in
    let ilo, ihi = (p + 1, hi - 1) in
    let tlo, thi = trim_range s ilo ihi in
    let args =
      if tlo >= thi then [] (* nullary atom R() *)
      else List.map (fun (l, h) -> parse_term_range s l h) (split_top s ilo ihi ',')
    in
    Atom.make rel args

let parse_atoms_range s lo hi : Atom.t list =
  List.map (fun (l, h) -> parse_atom_range s l h) (split_top s lo hi ',')

let cq_of_atoms_range ~lo ~hi atoms =
  match atoms with
  | [] -> err ~code:code_syntax ~lo ~hi "empty conjunction (use 'true')"
  | _ -> Cq.of_atoms atoms

(* ------------------------------------------------------------------ *)
(* Language bodies                                                     *)
(* ------------------------------------------------------------------ *)

let parse_cq_body s lo hi = cq_of_atoms_range ~lo ~hi (parse_atoms_range s lo hi)

let parse_ucq_body s lo hi =
  let disjuncts =
    List.map
      (fun (l, h) ->
         let l', h' = trim_range s l h in
         if l' >= h' then err ~code:code_syntax ~lo:l ~hi:(l + 1) "empty disjunct";
         parse_cq_body s l' h')
      (split_top s lo hi '|')
  in
  Ucq.of_cqs disjuncts

let parse_cqneg_body s lo hi =
  let pos = ref [] and neg = ref [] in
  List.iter
    (fun (l, h) ->
       let l, h = trim_range s l h in
       if l >= h then err ~code:code_syntax ~lo:l ~hi:(l + 1) "empty atom";
       if s.[l] = '!' then neg := (parse_atom_range s (l + 1) h, (l, h)) :: !neg
       else pos := parse_atom_range s l h :: !pos)
    (split_top s lo hi ',');
  let pos = List.rev !pos and neg = List.rev !neg in
  if pos = [] then
    err ~code:code_syntax ~lo ~hi "a CQ with negation needs at least one positive atom";
  (* safety: locate the offending negated atom ourselves *)
  let pos_vars =
    List.fold_left (fun acc a -> Term.Sset.union acc (Atom.vars a)) Term.Sset.empty pos
  in
  List.iter
    (fun (a, (l, h)) ->
       match Term.Sset.choose_opt (Term.Sset.diff (Atom.vars a) pos_vars) with
       | Some v ->
         err ~code:code_syntax ~lo:l ~hi:h ~token:(Atom.to_string a)
           (Printf.sprintf
              "unsafe negation: variable ?%s does not occur in a positive atom" v)
       | None -> ())
    neg;
  Cqneg.make ~pos ~neg:(List.map fst neg)

(* Delegate to a per-language parser, attributing failures to the body. *)
let delegate s lo hi parse_fn =
  let body = sub_range s lo hi in
  match parse_fn body with
  | q -> q
  | exception Invalid_argument msg -> err ~code:code_syntax ~lo ~hi msg

let parse_rpq_body s lo hi =
  let crpq = delegate s lo hi Crpq.parse in
  match Crpq.path_atoms crpq with
  | [ { Crpq.lang; psrc = Term.Const a; pdst = Term.Const b } ] ->
    Rpq.make lang ~src:a ~dst:b
  | [ _ ] -> err ~code:code_syntax ~lo ~hi "RPQ endpoints must be constants"
  | _ -> err ~code:code_syntax ~lo ~hi "an RPQ is a single path atom"

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let parse_exn (s : string) : Query.t =
  let lo0, hi0 = trim_range s 0 (String.length s) in
  if lo0 >= hi0 then err ~code:code_syntax ~lo:0 ~hi:1 "empty query";
  if String.lowercase_ascii (sub_range s lo0 hi0) = "true" then Query.True
  else begin
    let colon =
      let rec find i = if i >= hi0 then None else if s.[i] = ':' then Some i else find (i + 1) in
      find lo0
    in
    let tag_span, (blo, bhi) =
      match colon with
      | Some i when i - lo0 < 8 ->
        let tlo, thi = trim_range s lo0 i in
        (Some (tlo, thi), trim_range s (i + 1) hi0)
      | _ -> (None, (lo0, hi0))
    in
    let tag =
      match tag_span with
      | Some (tlo, thi) -> String.lowercase_ascii (sub_range s tlo thi)
      | None -> "cq"
    in
    if blo >= bhi then
      err ~code:code_syntax ~lo:blo ~hi:(blo + 1)
        (Printf.sprintf "empty %s body" tag);
    match tag with
    | "cq" -> Query.Cq (parse_cq_body s blo bhi)
    | "ucq" -> Query.Ucq (parse_ucq_body s blo bhi)
    | "cqneg" -> Query.Cqneg (parse_cqneg_body s blo bhi)
    | "rpq" -> Query.Rpq (parse_rpq_body s blo bhi)
    | "crpq" -> Query.Crpq (delegate s blo bhi Crpq.parse)
    | "ucrpq" -> Query.Ucrpq (delegate s blo bhi Ucrpq.parse)
    | "gcq" -> Query.Gcq (delegate s blo bhi Gcq.parse)
    | _ ->
      let tlo, thi =
        match tag_span with Some sp -> sp | None -> (blo, bhi)
      in
      err ~code:code_unknown_tag ~lo:tlo ~hi:thi ~token:(sub_range s tlo thi)
        (Printf.sprintf "unknown language tag %S" tag)
  end

let parse_result (s : string) : (Query.t, diagnostic) result =
  match parse_exn s with
  | q -> Ok q
  | exception Error d -> Error d
  | exception Invalid_argument msg ->
    (* residual errors from sub-parsers reached outside [delegate] *)
    Error { code = code_syntax; message = msg; offset = 0;
            length = String.length s; token = None }

let parse (s : string) : Query.t =
  match parse_result s with
  | Ok q -> q
  | Error d -> invalid_arg ("Query_parse: " ^ diagnostic_to_string d)
