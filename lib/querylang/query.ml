type t =
  | True
  | Cq of Cq.t
  | Ucq of Ucq.t
  | Rpq of Rpq.t
  | Crpq of Crpq.t
  | Ucrpq of Ucrpq.t
  | Cqneg of Cqneg.t
  | Gcq of Gcq.t
  | And of t * t
  | Or of t * t

let rec eval q facts =
  match q with
  | True -> true
  | Cq q -> Cq.eval q facts
  | Ucq q -> Ucq.eval q facts
  | Rpq q -> Rpq.eval q facts
  | Crpq q -> Crpq.eval q facts
  | Ucrpq q -> Ucrpq.eval q facts
  | Cqneg q -> Cqneg.eval q facts
  | Gcq q -> Gcq.eval q facts
  | And (a, b) -> eval a facts && eval b facts
  | Or (a, b) -> eval a facts || eval b facts

let holds q db = eval q (Database.all db)

let rec consts = function
  | True -> Term.Sset.empty
  | Cq q -> Cq.consts q
  | Ucq q -> Ucq.consts q
  | Rpq q -> Rpq.consts q
  | Crpq q -> Crpq.consts q
  | Ucrpq q -> Ucrpq.consts q
  | Cqneg q -> Cqneg.consts q
  | Gcq q -> Gcq.consts q
  | And (a, b) | Or (a, b) -> Term.Sset.union (consts a) (consts b)

let rec rels = function
  | True -> Term.Sset.empty
  | Cq q -> Cq.rels q
  | Ucq q -> Ucq.rels q
  | Rpq q -> Rpq.rels q
  | Crpq q -> Crpq.rels q
  | Ucrpq q -> Ucrpq.rels q
  | Cqneg q -> Cqneg.rels q
  | Gcq q -> Gcq.rels q
  | And (a, b) | Or (a, b) -> Term.Sset.union (rels a) (rels b)

let rec is_hom_closed_syntactically = function
  | True | Cq _ | Ucq _ | Rpq _ | Crpq _ | Ucrpq _ -> true
  | Cqneg _ | Gcq _ -> false
  | And (a, b) | Or (a, b) -> is_hom_closed_syntactically a && is_hom_closed_syntactically b

let rec name = function
  | True -> "⊤"
  | Cq q -> "CQ[" ^ Cq.to_string q ^ "]"
  | Ucq q -> "UCQ[" ^ Ucq.to_string q ^ "]"
  | Rpq q -> "RPQ[" ^ Rpq.to_string q ^ "]"
  | Crpq q -> "CRPQ[" ^ Crpq.to_string q ^ "]"
  | Ucrpq q -> "UCRPQ[" ^ Ucrpq.to_string q ^ "]"
  | Cqneg q -> "CQ¬[" ^ Cqneg.to_string q ^ "]"
  | Gcq q -> "GCQ[" ^ Gcq.to_string q ^ "]"
  | And (a, b) -> "(" ^ name a ^ " ∧ " ^ name b ^ ")"
  | Or (a, b) -> "(" ^ name a ^ " ∨ " ^ name b ^ ")"

let to_string = name
let pp fmt q = Format.pp_print_string fmt (name q)

let is_support q facts = eval q facts

(* Generic minimal-support enumeration by subset search in increasing size;
   a satisfying subset none of whose strict subsets satisfies the query has
   already been recorded, so any satisfying set not containing a recorded
   one is itself minimal. *)
let generic_minimal_supports q facts =
  let arr = Array.of_list (Fact.Set.elements facts) in
  let n = Array.length arr in
  if n > 20 then
    invalid_arg "Query.minimal_supports_in: generic enumeration limited to 20 facts";
  let masks = List.init (1 lsl n) (fun m -> m) in
  let popcount m =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go m 0
  in
  let sorted = List.sort (fun a b -> compare (popcount a) (popcount b)) masks in
  let minimal_masks = ref [] in
  let to_set m =
    let s = ref Fact.Set.empty in
    for i = 0 to n - 1 do
      if m land (1 lsl i) <> 0 then s := Fact.Set.add arr.(i) !s
    done;
    !s
  in
  List.iter
    (fun m ->
       let dominated = List.exists (fun m' -> m land m' = m') !minimal_masks in
       if (not dominated) && eval q (to_set m) then minimal_masks := m :: !minimal_masks)
    sorted;
  List.rev_map to_set !minimal_masks

let minimal_supports_in q facts =
  match q with
  | True -> [ Fact.Set.empty ]
  | Cq cq -> if Cq.eval cq facts then Cq.minimal_supports_in cq facts else []
  | Ucq ucq -> if Ucq.eval ucq facts then Ucq.minimal_supports_in ucq facts else []
  | _ -> if eval q facts then generic_minimal_supports q facts else []

let is_minimal_support q facts =
  eval q facts
  && Fact.Set.for_all
    (fun f -> not (eval q (Fact.Set.remove f facts)))
    facts
  &&
  (* removing single facts is enough only for monotone queries; re-check via
     enumeration for the general case *)
  (is_hom_closed_syntactically q
   || List.exists (Fact.Set.equal facts) (minimal_supports_in q facts))

let relevant_in q facts f =
  List.exists (fun s -> Fact.Set.mem f s) (minimal_supports_in q facts)

(* ------------------------------------------------------------------ *)
(* Fresh supports                                                      *)
(* ------------------------------------------------------------------ *)

(* Shrink a support candidate to a minimal one (monotone queries: greedy
   single-fact removal reaches a minimal support). *)
let shrink_to_minimal q facts =
  let rec go current =
    match
      Fact.Set.fold
        (fun f acc ->
           match acc with
           | Some _ -> acc
           | None ->
             let without = Fact.Set.remove f current in
             if eval q without then Some without else None)
        current None
    with
    | Some smaller -> go smaller
    | None -> current
  in
  go facts

let rec fresh_support q =
  match q with
  | True -> None
  | Cq cq ->
    let s, _ = Cq.canonical_support (Cq.core cq) in
    Some s
  | Ucq ucq ->
    let cands = Ucq.canonical_supports ucq in
    let ok s = not (Fact.Set.is_empty s) in
    (* canonical support of a reduced disjunct may still contain a support
       of another disjunct; shrink to be safe *)
    (match List.filter ok cands with
     | [] -> None
     | s :: _ -> Some (shrink_to_minimal (Ucq ucq) s))
  | Rpq rpq ->
    (match Rpq.fresh_path_support ~min_len:1 rpq with
     | Some (s, _) -> Some (shrink_to_minimal q s)
     | None -> None)
  | Crpq crpq ->
    let valuation =
      Term.Sset.fold
        (fun v acc -> Term.Smap.add v (Term.fresh_const ~prefix:("n" ^ v) ()) acc)
        (Crpq.vars crpq) Term.Smap.empty
    in
    let resolve t =
      match t with
      | Term.Const c -> Some c
      | Term.Var v -> Term.Smap.find_opt v valuation
    in
    let support = ref Fact.Set.empty in
    let feasible = ref true in
    List.iter
      (fun (a : Crpq.path_atom) ->
         match (resolve a.psrc, resolve a.pdst) with
         | Some src, Some dst ->
           let sub = Rpq.make a.lang ~src ~dst in
           (match Rpq.fresh_path_support ~min_len:1 sub with
            | Some (s, _) -> support := Fact.Set.union s !support
            | None ->
              (* no word of length ≥ 1; ε works only if endpoints coincide *)
              if not (Regex.nullable a.lang && src = dst) then feasible := false)
         | _ -> feasible := false)
      (Crpq.path_atoms crpq);
    if !feasible && not (Fact.Set.is_empty !support) then
      Some (shrink_to_minimal q !support)
    else None
  | Ucrpq ucrpq ->
    let rec first = function
      | [] -> None
      | c :: rest ->
        (match fresh_support (Crpq c) with
         | Some s ->
           let shrunk = shrink_to_minimal q s in
           if Fact.Set.is_empty shrunk then first rest else Some shrunk
         | None -> first rest)
    in
    first (Ucrpq.disjuncts ucrpq)
  | Cqneg cqn ->
    let pos_cq = Cq.of_atoms (Cqneg.pos cqn) in
    let s, _ = Cq.canonical_support pos_cq in
    if Cqneg.eval cqn s then Some s else None
  | Gcq g ->
    let guard_cq = Cq.of_atoms (Gcq.guards g) in
    let s, _ = Cq.canonical_support guard_cq in
    if Gcq.eval g s then Some s else None
  | And (a, b) ->
    (match (fresh_support a, fresh_support b) with
     | Some sa, Some sb ->
       let s = Fact.Set.union sa sb in
       if eval q s then Some (shrink_to_minimal q s) else None
     | None, Some sb -> if eval q sb then Some sb else None
     | Some sa, None -> if eval q sa then Some sa else None
     | None, None -> None)
  | Or (a, b) ->
    (match fresh_support a with
     | Some sa ->
       let shrunk = shrink_to_minimal q sa in
       if Fact.Set.is_empty shrunk then None else Some shrunk
     | None -> fresh_support b)

(* ------------------------------------------------------------------ *)
(* q-leaks                                                             *)
(* ------------------------------------------------------------------ *)

let leak_witness q ~canonical f =
  let c_set = consts q in
  let is_leak_from alpha' =
    let outside = Term.Sset.diff (Fact.consts alpha') c_set in
    if Term.Sset.is_empty outside then false
    else begin
      let found = ref false in
      Homomorphism.iter_fact_homs ~fixed:c_set
        (Fact.Set.singleton alpha')
        ~into:(Fact.Set.singleton f)
        (fun h ->
           if
             Term.Sset.exists
               (fun c ->
                  match Term.Smap.find_opt c h with
                  | Some c' -> Term.Sset.mem c' c_set
                  | None -> false)
               outside
           then found := true);
      !found
    end
  in
  List.exists (fun support -> Fact.Set.exists is_leak_from support) canonical
