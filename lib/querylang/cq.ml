type t = Atom.t list (* sorted, duplicate-free *)

let of_atoms atoms =
  if atoms = [] then invalid_arg "Cq.of_atoms: empty conjunction (use Query.True)";
  List.sort_uniq Atom.compare atoms

let atoms q = q

let vars q =
  List.fold_left (fun acc a -> Term.Sset.union acc (Atom.vars a)) Term.Sset.empty q

let consts q =
  List.fold_left (fun acc a -> Term.Sset.union acc (Atom.consts a)) Term.Sset.empty q

let rels q = List.fold_left (fun acc a -> Term.Sset.add (Atom.rel a) acc) Term.Sset.empty q

let eval q facts = Homomorphism.exists_valuation ~into:facts q

let is_self_join_free q = Term.Sset.cardinal (rels q) = List.length q
let is_constant_free q = Term.Sset.is_empty (consts q)
let is_connected q = Incidence.connected q
let is_variable_connected q = Incidence.variable_connected q
let variable_components q = List.map of_atoms (Incidence.variable_components q)

let is_hierarchical q =
  (* Footnote 5: q is NOT hierarchical iff some triple (α₁, α₂, α₃) has
     vars(α₁)∩vars(α₂) ⊄ vars(α₃) and vars(α₃)∩vars(α₂) ⊄ vars(α₁). *)
  let arr = Array.of_list q in
  let n = Array.length arr in
  let non_hier = ref false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for k = 0 to n - 1 do
        if not !non_hier then begin
          let v1 = Atom.vars arr.(i)
          and v2 = Atom.vars arr.(j)
          and v3 = Atom.vars arr.(k) in
          if
            (not (Term.Sset.subset (Term.Sset.inter v1 v2) v3))
            && not (Term.Sset.subset (Term.Sset.inter v3 v2) v1)
          then non_hier := true
        end
      done
    done
  done;
  not !non_hier

(* ------------------------------------------------------------------ *)
(* Canonical support and core                                          *)
(* ------------------------------------------------------------------ *)

let canonical_support ?(prefix = "v") q =
  let valuation =
    Term.Sset.fold
      (fun v acc -> Term.Smap.add v (Term.fresh_const ~prefix:(prefix ^ v) ()) acc)
      (vars q) Term.Smap.empty
  in
  (Homomorphism.image valuation q, valuation)

(* Map a set of facts back to atoms, turning constants in the codomain of
   [valuation] back into their variables. *)
let uncanonize (valuation : string Term.Smap.t) (facts : Fact.Set.t) : Atom.t list =
  let back =
    Term.Smap.fold (fun v c acc -> Term.Smap.add c (Term.var v) acc) valuation Term.Smap.empty
  in
  List.map
    (fun f ->
       Atom.make (Fact.rel f)
         (List.map
            (fun c ->
               match Term.Smap.find_opt c back with
               | Some v -> v
               | None -> Term.const c)
            (Fact.args f)))
    (Fact.Set.elements facts)

let core q =
  (* Repeatedly retract the canonical database onto a proper sub-image. *)
  let canon, valuation = canonical_support q in
  let rec shrink (current : Fact.Set.t) =
    let candidate = ref None in
    (try
       Homomorphism.iter_valuations ~into:current q (fun s ->
           let img = Homomorphism.image s q in
           if Fact.Set.cardinal img < Fact.Set.cardinal current then begin
             candidate := Some img;
             raise Exit
           end)
     with Exit -> ());
    match !candidate with
    | Some smaller -> shrink smaller
    | None -> current
  in
  (* Valuations of q into subsets of its canonical database are exactly the
     endomorphisms of the canonical database fixing const(q). *)
  let retract = shrink canon in
  of_atoms (uncanonize valuation retract)

let equal_atomsets (a : t) (b : t) = a = b

let is_minimal q = equal_atomsets (core q) q

let minimal_supports_in q facts = Homomorphism.minimal_images ~into:facts q

let homomorphic_to q q' =
  let canon', _ = canonical_support q' in
  eval q canon'

let equivalent q q' = homomorphic_to q q' && homomorphic_to q' q

let rename_apart ~avoid q =
  let rho =
    Term.Sset.fold
      (fun v acc ->
         if Term.Sset.mem v avoid then
           Term.Smap.add v (Term.var (Term.fresh_const ~prefix:("u" ^ v) ())) acc
         else acc)
      (vars q) Term.Smap.empty
  in
  List.map (Atom.apply rho) q

let instantiate tuple q =
  let qvars = vars q in
  List.iter
    (fun (v, _) ->
       if not (Term.Sset.mem v qvars) then
         invalid_arg (Printf.sprintf "Cq.instantiate: no variable %s in the query" v))
    tuple;
  let subst =
    List.fold_left
      (fun acc (v, c) -> Term.Smap.add v (Term.const c) acc)
      Term.Smap.empty tuple
  in
  of_atoms (List.map (Atom.apply subst) q)

(* ------------------------------------------------------------------ *)
(* Parsing and printing                                                *)
(* ------------------------------------------------------------------ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '#' || c = '\''

let parse_term (s : string) : Term.t =
  let s = String.trim s in
  if s = "" then invalid_arg "Cq.parse: empty term";
  if s.[0] = '?' then Term.var (String.sub s 1 (String.length s - 1))
  else begin
    String.iter
      (fun c -> if not (is_ident_char c) then invalid_arg "Cq.parse: bad term character")
      s;
    Term.const s
  end

let parse_atom (s : string) : Atom.t =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None -> invalid_arg "Cq.parse: atom missing '('"
  | Some i ->
    if String.length s = 0 || s.[String.length s - 1] <> ')' then
      invalid_arg "Cq.parse: atom missing ')'";
    let rel = String.trim (String.sub s 0 i) in
    let inner = String.sub s (i + 1) (String.length s - i - 2) in
    let args = String.split_on_char ',' inner in
    Atom.make rel (List.map parse_term args)

let parse (s : string) : t =
  (* split on commas at paren depth 0 *)
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  String.iter
    (fun c ->
       match c with
       | '(' -> incr depth; Buffer.add_char buf c
       | ')' -> decr depth; Buffer.add_char buf c
       | ',' when !depth = 0 ->
         parts := Buffer.contents buf :: !parts;
         Buffer.clear buf
       | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  of_atoms (List.map parse_atom (List.rev !parts))

let to_string q = String.concat ", " (List.map Atom.to_string q)
let pp fmt q = Format.pp_print_string fmt (to_string q)
let compare = Stdlib.compare
let equal a b = compare a b = 0
