type t = { pos : Atom.t list; neg : Atom.t list }

let atoms_vars atoms =
  List.fold_left (fun acc a -> Term.Sset.union acc (Atom.vars a)) Term.Sset.empty atoms

let make ~pos ~neg =
  if pos = [] then invalid_arg "Cqneg.make: empty positive part";
  let pos_vars = atoms_vars pos in
  List.iter
    (fun a ->
       if not (Term.Sset.subset (Atom.vars a) pos_vars) then
         invalid_arg "Cqneg.make: unsafe negation (variable not in positive part)")
    neg;
  { pos = List.sort_uniq Atom.compare pos; neg = List.sort_uniq Atom.compare neg }

let pos q = q.pos
let neg q = q.neg

let vars q = Term.Sset.union (atoms_vars q.pos) (atoms_vars q.neg)

let consts q =
  List.fold_left
    (fun acc a -> Term.Sset.union acc (Atom.consts a))
    Term.Sset.empty (q.pos @ q.neg)

let rels q =
  List.fold_left (fun acc a -> Term.Sset.add (Atom.rel a) acc) Term.Sset.empty (q.pos @ q.neg)

let eval q facts =
  let found = ref false in
  (try
     Homomorphism.iter_valuations ~into:facts q.pos (fun s ->
         let bad =
           List.exists
             (fun a ->
                let ground = Atom.apply (Term.Smap.map Term.const s) a in
                match Fact.of_atom_opt ground with
                | Some f -> Fact.Set.mem f facts
                | None ->
                  (* unconstrained variable in a negative atom cannot occur
                     by the safety check, so this is unreachable *)
                  assert false)
             q.neg
         in
         if not bad then begin
           found := true;
           raise Exit
         end)
   with Exit -> ());
  !found

let is_self_join_free q =
  let all = q.pos @ q.neg in
  Term.Sset.cardinal (rels q) = List.length all

let is_hierarchical q =
  (* same triple condition as for CQs, ranging over positive and negative
     atoms alike ([12]) *)
  Cq.is_hierarchical (Cq.of_atoms (q.pos @ q.neg))

let positive_variable_components q =
  let comps = Cq.variable_components (Cq.of_atoms q.pos) in
  List.map
    (fun comp ->
       let cvars = Cq.vars comp in
       let guarded =
         List.filter
           (fun a ->
              let av = Atom.vars a in
              (not (Term.Sset.is_empty av)) && Term.Sset.subset av cvars)
           q.neg
       in
       (comp, guarded))
    comps

let has_component_guarded_negation q =
  let comps = positive_variable_components q in
  List.for_all
    (fun a ->
       Term.Sset.is_empty (Atom.vars a)
       || List.exists (fun (comp, _) -> Term.Sset.subset (Atom.vars a) (Cq.vars comp)) comps)
    q.neg

let parse s =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  String.iter
    (fun c ->
       match c with
       | '(' -> incr depth; Buffer.add_char buf c
       | ')' -> decr depth; Buffer.add_char buf c
       | ',' when !depth = 0 ->
         parts := Buffer.contents buf :: !parts;
         Buffer.clear buf
       | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  let pos, neg =
    List.fold_left
      (fun (pos, neg) part ->
         let part = String.trim part in
         if part = "" then (pos, neg)
         else if part.[0] = '!' then
           (pos, Cq.atoms (Cq.parse (String.sub part 1 (String.length part - 1))) @ neg)
         else (Cq.atoms (Cq.parse part) @ pos, neg))
      ([], []) (List.rev !parts)
  in
  make ~pos ~neg

let to_string q =
  String.concat ", "
    (List.map Atom.to_string q.pos @ List.map (fun a -> "!" ^ Atom.to_string a) q.neg)

let pp fmt q = Format.pp_print_string fmt (to_string q)
