(** Regular path queries [L(a,b)] over graph databases (Section 2).

    [D ⊨ L(a,b)] iff some word [R₁…Rₗ ∈ L] labels a directed path
    [a = c₀ →R₁ c₁ → … →Rₗ cₗ = b] of facts of [D].  The empty word is
    allowed: if [ε ∈ L] then [L(a,a)] holds in every database. *)

type t

val make : Regex.t -> src:string -> dst:string -> t
val of_string : string -> src:string -> dst:string -> t
(** Regex in {!Regex.parse} syntax. *)

val lang : t -> Regex.t
val src : t -> string
val dst : t -> string
val consts : t -> Term.Sset.t
val rels : t -> Term.Sset.t

val eval : t -> Fact.Set.t -> bool
(** Facts of arity other than 2 are ignored (graph queries live on binary
    schemas). *)

val reachable_pairs : Regex.t -> Fact.Set.t -> (string * string) list
(** All pairs [(c, d)] of constants of the fact set with [L(c, d)]
    witnessed inside it (the ε-pairs [(c, c)] are included when [ε ∈ L]). *)

val fresh_path_support : ?min_len:int -> t -> (Fact.Set.t * string list) option
(** A minimal support built from a shortest accepted word of length
    [≥ min_len] (default 1): a simple path from [src] to [dst] through
    fresh intermediate constants, as in the proof of Lemma B.1.  [None] if
    the language has no such word.  Returns the facts and the word used. *)

val is_pseudo_connected : t -> bool
(** Lemma B.1: an RPQ is pseudo-connected as soon as its language contains
    a word of length ≥ 2. *)

val dichotomy_hard : t -> bool
(** Corollary 4.3: SVC is #P-hard iff the language contains a word of
    length ≥ 3 (and in FP otherwise). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
