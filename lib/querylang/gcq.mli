(** Guarded generalized conjunctive queries: CQs with an arbitrary
    quantifier-free Boolean condition (Appendix D.2.3).

    The sjf-1RA¬ examples of the paper (Examples D.1 and D.2) go beyond
    CQ¬: their negations nest and contain several atoms, e.g.

    {v
      q₁ = ∃x,y  D(x) ∧ S(x,y) ∧ A(y) ∧ ¬(B(y) ∧ ¬C(y))
      q₂ = ∃x,y  S(x,y) ∧ ¬(A(x) ∧ B(y))
    v}

    A guarded generalized CQ is an existentially quantified conjunction of
    {e guard} atoms (positive, covering every variable) and an arbitrary
    {e condition} in negation normal form over further atoms whose
    variables all occur in the guards.  Evaluation ranges over valuations
    of the guards, as for CQ¬. *)

(** Quantifier-free Boolean conditions over atoms. *)
type cond =
  | Catom of Atom.t
  | Cand of cond list
  | Cor of cond list
  | Cnot of cond

type t

val make : guards:Atom.t list -> cond:cond list -> t
(** @raise Invalid_argument if [guards] is empty or some condition variable
    does not occur in the guards (unsafe). *)

val guards : t -> Atom.t list
val conditions : t -> cond list

val vars : t -> Term.Sset.t
val consts : t -> Term.Sset.t
val rels : t -> Term.Sset.t
val guard_rels : t -> Term.Sset.t
val cond_rels : t -> Term.Sset.t

val eval : t -> Fact.Set.t -> bool

val is_guard_self_join_free : t -> bool
(** No two guard atoms share a relation name. *)

val guards_disjoint_from_conditions : t -> bool
(** The guard and condition vocabularies do not intersect (a hypothesis of
    Lemma D.2). *)

val has_variable_free_condition_atom : t -> bool
(** Whether some condition atom has no variable (the [α_k] of Lemma D.2,
    unsupported by the reduction implementation). *)

val guard_variable_components : t -> (Cq.t * cond list) list
(** Maximal variable-connected subqueries of the guard set, each with the
    conditions whose variables lie entirely inside it. *)

val of_cqneg : Cqneg.t -> t
(** CQ¬ is the special case where every condition is a negated atom. *)

val parse : string -> t
(** Comma-separated items: positive atoms are guards; other items are
    conditions built from atoms with [!] (negation), [&], [|] and
    parentheses, e.g. ["D(?x), S(?x,?y), A(?y), !(B(?y) & !C(?y))"]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
