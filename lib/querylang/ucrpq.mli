(** Unions of conjunctive regular path queries (Section 2). *)

type t

val of_crpqs : Crpq.t list -> t
(** @raise Invalid_argument on an empty list. *)

val disjuncts : t -> Crpq.t list
val of_crpq : Crpq.t -> t

val consts : t -> Term.Sset.t
val rels : t -> Term.Sset.t
val eval : t -> Fact.Set.t -> bool
val is_constant_free : t -> bool

val to_ucq : max_len:int -> t -> Ucq.t option
(** Bounded expansion of every disjunct (see {!Crpq.to_ucq}). *)

val parse : string -> t
(** Disjuncts separated by ["|"], each in {!Crpq.parse} syntax. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
