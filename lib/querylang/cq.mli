(** Boolean conjunctive queries (Section 2).

    A CQ is a conjunction of atoms with all variables existentially
    quantified; [D ⊨ q] iff there is a valuation of its variables into the
    constants of [D] mapping every atom to a fact of [D] (i.e. a
    [C-hom] with [C = const(q)]). *)

type t

val of_atoms : Atom.t list -> t
(** @raise Invalid_argument on an empty atom list (use {!Query.True} for
    the trivial query). Duplicate atoms are removed. *)

val atoms : t -> Atom.t list
val vars : t -> Term.Sset.t
val consts : t -> Term.Sset.t
val rels : t -> Term.Sset.t

val eval : t -> Fact.Set.t -> bool

(** {1 Syntactic classes} *)

val is_self_join_free : t -> bool
(** No two atoms share a relation name. *)

val is_constant_free : t -> bool

val is_connected : t -> bool
(** Connectivity of the incidence graph (shared variables or constants). *)

val is_variable_connected : t -> bool
(** Connectivity after removing constant nodes (Section 4.1). *)

val variable_components : t -> t list
(** Maximal variable-connected subqueries; atoms without variables form
    singleton components. *)

val is_hierarchical : t -> bool
(** [q] is hierarchical iff there are no atoms [α₁, α₂, α₃] with
    [vars α₁ ∩ vars α₂ ⊄ vars α₃] and [vars α₃ ∩ vars α₂ ⊄ vars α₁]
    (footnote 5 of the paper; equivalently, for any two variables the sets
    of atoms containing them are disjoint or nested). *)

(** {1 Minimality and supports} *)

val core : t -> t
(** An equivalent subquery that is minimal (its canonical database is a
    core).  Computed by searching for proper retractions; exact, intended
    for the small queries manipulated here. *)

val is_minimal : t -> bool
(** Whether [q] equals its core (up to atom set). *)

val canonical_support : ?prefix:string -> t -> Fact.Set.t * string Term.Smap.t
(** The canonical database of [q]: each variable mapped to a fresh constant.
    Returns the facts and the variable valuation used.  For a minimal [q],
    this is a minimal support. *)

val minimal_supports_in : t -> Fact.Set.t -> Fact.Set.t list
(** All ⊆-minimal supports of [q] inside the given fact set. *)

val homomorphic_to : t -> t -> bool
(** [homomorphic_to q q'] iff there is a query homomorphism [q → q']
    (fixing constants), i.e. [q'] implies [q]. *)

val equivalent : t -> t -> bool

val rename_apart : avoid:Term.Sset.t -> t -> t
(** Rename the variables of [q] so that their names avoid clashes with
    [avoid] (variables live in their own namespace; this is for hygiene when
    conjoining queries). *)

val instantiate : (string * string) list -> t -> t
(** [instantiate tuple q] substitutes each variable by the paired constant —
    the Remark 3.1 transformation turning a non-Boolean query plus an
    answer tuple into a Boolean query (with constants).
    @raise Invalid_argument if a named variable does not occur in [q]. *)

(** {1 Parsing and printing} *)

val parse : string -> t
(** Comma-separated atoms; variables are [?]-prefixed, other identifiers
    are constants.  Example: ["R(?x,?y), S(?y,alice)"].
    @raise Invalid_argument on syntax errors. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
