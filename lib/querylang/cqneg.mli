(** Conjunctive queries with safe negation (Section 6.2, after [12]).

    A CQ¬ has positive atoms [q⁺] and negated atoms [q⁻], with the safety
    condition that every variable of a negative atom occurs in some positive
    atom.  [D ⊨ q] iff some valuation of the variables sends every positive
    atom into [D] and no negative atom into [D]. *)

type t

val make : pos:Atom.t list -> neg:Atom.t list -> t
(** @raise Invalid_argument if [pos] is empty or a negative atom uses a
    variable absent from the positive part (unsafe negation). *)

val pos : t -> Atom.t list
val neg : t -> Atom.t list

val vars : t -> Term.Sset.t
val consts : t -> Term.Sset.t
val rels : t -> Term.Sset.t

val eval : t -> Fact.Set.t -> bool

val is_self_join_free : t -> bool
(** No two atoms (positive or negative) share a relation name. *)

val is_hierarchical : t -> bool
(** The hierarchy condition of footnote 5 over {e all} atoms, as in [12]. *)

val positive_variable_components : t -> (Cq.t * Atom.t list) list
(** Maximal variable-connected subqueries [q⁺ᵥ꜀] of the positive part, each
    paired with the negative atoms whose variables all lie inside it (the
    [q⁻ᵥ꜀] of Proposition 6.1). *)

val has_component_guarded_negation : t -> bool
(** Every negative atom's variable set is contained in a single maximal
    variable-connected positive component (Section 6.2). *)

val parse : string -> t
(** Comma-separated atoms, negated ones prefixed by ["!"], e.g.
    ["R(?x), S(?x,?y), !T(?y)"]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
