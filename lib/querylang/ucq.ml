type t = Cq.t list

let of_cqs cqs =
  if cqs = [] then invalid_arg "Ucq.of_cqs: empty union";
  List.sort_uniq Cq.compare cqs

let of_cq cq = [ cq ]
let disjuncts q = q

let union_map f q =
  List.fold_left (fun acc cq -> Term.Sset.union acc (f cq)) Term.Sset.empty q

let vars q = union_map Cq.vars q
let consts q = union_map Cq.consts q
let rels q = union_map Cq.rels q

let eval q facts = List.exists (fun cq -> Cq.eval cq facts) q
let is_constant_free q = List.for_all Cq.is_constant_free q

let reduce q =
  (* Keep a set of pairwise-incomparable cores: a disjunct d is dropped when
     a kept disjunct k maps homomorphically into d (k's models ⊇ d's);
     conversely adding d evicts any kept k that d maps into.  Processing
     greedily keeps one representative per equivalence class. *)
  let cores = List.sort_uniq Cq.compare (List.map Cq.core q) in
  let step kept d =
    if List.exists (fun k -> Cq.homomorphic_to k d) kept then kept
    else d :: List.filter (fun k -> not (Cq.homomorphic_to d k)) kept
  in
  List.sort Cq.compare (List.fold_left step [] cores)

let is_connected q = List.for_all Cq.is_connected (reduce q)

let minimal_supports_in q facts =
  let all = List.concat_map (fun cq -> Cq.minimal_supports_in cq facts) q in
  let distinct =
    List.fold_left
      (fun acc s -> if List.exists (Fact.Set.equal s) acc then acc else s :: acc)
      [] all
  in
  List.filter
    (fun s ->
       not
         (List.exists
            (fun s' -> Fact.Set.subset s' s && not (Fact.Set.equal s' s))
            distinct))
    distinct

let canonical_supports q =
  List.map (fun cq -> fst (Cq.canonical_support cq)) (reduce q)

let implies q q' =
  (* every disjunct of q must satisfy q' on its canonical database *)
  List.for_all
    (fun cq ->
       let canon, _ = Cq.canonical_support cq in
       eval q' canon)
    q

let equivalent q q' = implies q q' && implies q' q

let parse s =
  let parts = String.split_on_char '|' s in
  of_cqs (List.map Cq.parse parts)

let to_string q = String.concat " | " (List.map Cq.to_string q)
let pp fmt q = Format.pp_print_string fmt (to_string q)
