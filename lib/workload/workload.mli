(** Workloads and deterministic instance generators.

    A {e workload} is a named list of (query, database) cases — the unit
    the static analyzer ({!module:Analyze} in [lib/analysis]) vets before
    batch execution.  The rest of the module provides random (seeded) and
    structured databases for the query classes studied in the paper; used
    by the property tests and by the benchmark harness that regenerates
    the figures.  All generators are pure functions of their seed. *)

(** {1 Workloads} *)

type case = {
  cname : string;
  query_src : string;  (** the query's source text, for reporting *)
  query : Query.t;
  db : Database.t;
}

type t = {
  wname : string;
  cases : case list;
}

val make : name:string -> cases:case list -> t
val name : t -> string
val cases : t -> case list

val case : name:string -> query_src:string -> db:Database.t -> case
(** @raise Invalid_argument if the query source does not parse. *)

val parse_result : string -> (t, string * int) result
(** Parse the self-contained text format ([workload NAME] header, then
    [case NAME] blocks with one [query ...] line and [endo]/[exo] fact
    lines; ['#'] comments).  On error, the message and its 1-based line. *)

val parse : string -> t
(** @raise Invalid_argument on malformed input, with the line number. *)

val load : string -> t
(** Read a workload from a file path. *)

val to_string : t -> string
(** Round-trips through {!parse} (facts are printed sorted). *)

(** {1 Evaluation}

    Batch execution of a workload: every case runs through its own
    {!Engine} (one lineage compilation per case, conditioned per fact),
    and carries its instrumentation record home. *)

type case_result = {
  rcase : case;
  values : (Fact.t * Rational.t) list;  (** Shapley value per endogenous fact *)
  stats : Stats.t;
}

val eval_case :
  ?tel:Telemetry.t -> ?cache_capacity:int -> ?jobs:int ->
  ?backend:Engine.backend -> case -> case_result
val eval :
  ?tel:Telemetry.t -> ?cache_capacity:int -> ?jobs:int ->
  ?backend:Engine.backend -> t -> case_result list
(** [jobs] (default [1]; [0] = auto) and [backend] (default [`Auto]) are
    handed to every case's {!Engine.create}: each case fans its per-fact
    conditionings out across that many domains, or answers from one
    d-DNNF compilation under the circuit backend.  Values are identical
    for every [jobs] and every backend.  With [tel], each case runs in a
    [workload.case] span (attribute [case] = its name) and every case's
    engine records into the same tracer. *)

(** {1 Random generation} *)

type rng

val rng : int -> rng
val int : rng -> int -> int
(** [int r bound] is uniform in [0, bound). *)

val bool : rng -> bool
val pick : rng -> 'a list -> 'a

(** {1 Random databases} *)

val random_database :
  rng ->
  rels:(string * int) list ->
  consts:string list ->
  n_endo:int ->
  n_exo:int ->
  Database.t
(** Random facts over the given schema and constant pool; endogenous and
    exogenous parts are disjoint by construction. *)

val random_graph :
  rng ->
  labels:string list ->
  nodes:string list ->
  n_endo:int ->
  n_exo:int ->
  Database.t
(** Random labelled graph (binary facts). *)

(** {1 Structured families} *)

val rst_gadget : ?complete:bool -> rows:int -> extra_exo:bool -> unit -> Database.t
(** Instances for [q_RST = R(x) ∧ S(x,y) ∧ T(y)]: a bipartite block with
    [rows] left and right nodes, all [R]/[T] facts endogenous and the [S]
    facts endogenous too; with [extra_exo], some [S] facts are exogenous.
    By default roughly half of the [S] grid is present; [complete] keeps
    the full grid (the classic hard-lineage family). *)

val path_graph : label_word:string list -> n_paths:int -> Database.t
(** [n_paths] parallel fresh paths from ["s"] to ["t"], each labelled by
    [label_word]; all edges endogenous. *)

val bibliography : n_authors:int -> n_papers:int -> seed:int -> Fact.Set.t
(** The Section 6.4 Publication/Keyword schema with a random
    author-paper incidence and a 'shapley' keyword on roughly half the
    papers. *)

val star_join : spokes:int -> Database.t
(** Hierarchical instance for [R(x) ∧ S(x,y)]: one hub with [spokes]
    S-facts. *)

(** {1 Generator registry}

    A {e family} is a named, seeded, size-parameterized generator of
    (query, database) cases spanning the paper's variant frontier: safe
    CQs, the hard bipartite gadget, RPQ/CRPQ graphs, CQ¬, purely
    endogenous databases, and the §6.3/§6.4 max-SVC / constant-SVC
    settings.  Every generator is a pure function of [(seed, size)] —
    a triple always reproduces a byte-identical workload text
    serialization — and at [seed = 0] the [star] and [bipartite]
    families coincide with the historical bench instances
    ({!star_join}, complete {!rst_gadget}).

    The registry feeds three consumers: the [svc workload] CLI
    subcommand, the bench harness, and the universal cross-backend
    conformance suite ([test/test_conformance.ml]), so every engine is
    exercised on every family automatically. *)

module Family : sig
  type tractability = [ `Fp | `Hard | `Mixed ]
  (** Expected complexity of exact SVC on the family's instances per the
      paper's dichotomies ([`Mixed] when it depends on the variant
      viewpoint, e.g. max-SVC's tractable maximum on a hard query). *)

  val tractability_to_string : tractability -> string

  type t = {
    name : string;  (** unique registry key, e.g. ["star"] *)
    description : string;  (** one line, shown by [svc workload list] *)
    tractability : tractability;
    generate : seed:int -> size:int -> case;
  }
end

val register_family : Family.t -> unit
(** @raise Invalid_argument on a duplicate or empty name. *)

val families : unit -> Family.t list
(** All registered families, in registration order; the eight built-ins
    ([star], [bipartite], [rpq-road], [crpq], [cqneg], [endogenous],
    [max-svc], [const-svc]) are registered at module initialization. *)

val find_family : string -> Family.t option

val generate : family:string -> seed:int -> size:int -> case
(** Run a registered family's generator.
    @raise Invalid_argument on an unknown family, [seed < 0] or
    [size < 1]. *)

val case_name : family:string -> seed:int -> size:int -> string
(** The canonical case name ["FAMILY-sSEED-nSIZE"] used by the built-in
    generators. *)

val to_workload : case -> t
(** A single-case workload named after the case — the unit [svc workload
    gen] serializes with {!to_string}. *)
