(* Small deterministic xorshift PRNG, independent of Stdlib.Random so that
   instances are stable across OCaml versions. *)
type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (if seed = 0 then 0x9E3779B9 else seed) }

let next r =
  let open Int64 in
  let x = r.state in
  let x = logxor x (shift_left x 13) in
  let x = logxor x (shift_right_logical x 7) in
  let x = logxor x (shift_left x 17) in
  r.state <- x;
  x

let int r bound =
  if bound <= 0 then invalid_arg "Workload.int: non-positive bound";
  Int64.to_int (Int64.rem (Int64.logand (next r) Int64.max_int) (Int64.of_int bound))

let bool r = int r 2 = 0

let pick r l =
  match l with
  | [] -> invalid_arg "Workload.pick: empty list"
  | _ -> List.nth l (int r (List.length l))

let random_fact r ~rels ~consts =
  let name, arity = pick r rels in
  Fact.make name (List.init arity (fun _ -> pick r consts))

let distinct_facts r ~gen ~count ~avoid =
  let rec go acc tries =
    if Fact.Set.cardinal acc >= count then acc
    else if tries > 1000 * (count + 1) then acc (* pool exhausted *)
    else begin
      let f = gen r in
      if Fact.Set.mem f acc || Fact.Set.mem f avoid then go acc (tries + 1)
      else go (Fact.Set.add f acc) (tries + 1)
    end
  in
  go Fact.Set.empty 0

let random_database r ~rels ~consts ~n_endo ~n_exo =
  let gen r = random_fact r ~rels ~consts in
  let endo = distinct_facts r ~gen ~count:n_endo ~avoid:Fact.Set.empty in
  let exo = distinct_facts r ~gen ~count:n_exo ~avoid:endo in
  Database.of_sets ~endo ~exo

let random_graph r ~labels ~nodes ~n_endo ~n_exo =
  random_database r ~rels:(List.map (fun l -> (l, 2)) labels) ~consts:nodes ~n_endo ~n_exo

let rst_gadget ?(complete = false) ~rows ~extra_exo () =
  let left i = Printf.sprintf "l%d" i and right i = Printf.sprintf "r%d" i in
  let r_facts = List.init rows (fun i -> Fact.make "R" [ left i ]) in
  let t_facts = List.init rows (fun i -> Fact.make "T" [ right i ]) in
  let s_facts =
    List.concat
      (List.init rows (fun i ->
           List.init rows (fun j ->
               if complete || (i + j) mod 2 = 0 then
                 [ Fact.make "S" [ left i; right j ] ]
               else [])))
    |> List.concat
  in
  if extra_exo then
    let exo, endo_s =
      List.partition (fun f -> Hashtbl.hash f mod 3 = 0) s_facts
    in
    Database.make ~endo:(r_facts @ t_facts @ endo_s) ~exo
  else Database.make ~endo:(r_facts @ t_facts @ s_facts) ~exo:[]

let path_graph ~label_word ~n_paths =
  let l = List.length label_word in
  let edges =
    List.concat
      (List.init n_paths (fun p ->
           let node i =
             if i = 0 then "s" else if i = l then "t" else Printf.sprintf "p%d_%d" p i
           in
           List.mapi (fun i lbl -> Fact.make lbl [ node i; node (i + 1) ]) label_word))
  in
  Database.make ~endo:edges ~exo:[]

let bibliography ~n_authors ~n_papers ~seed =
  let r = rng seed in
  let author i = Printf.sprintf "author%d" i and paper i = Printf.sprintf "paper%d" i in
  let pubs =
    List.concat
      (List.init n_authors (fun a ->
           List.filter_map
             (fun p -> if int r 3 = 0 then Some (Fact.make "Publication" [ author a; paper p ]) else None)
             (List.init n_papers (fun p -> p))))
  in
  let keywords =
    List.filter_map
      (fun p ->
         Some (Fact.make "Keyword" [ paper p; (if int r 2 = 0 then "shapley" else "logic") ]))
      (List.init n_papers (fun p -> p))
  in
  Fact.Set.of_list (pubs @ keywords)

let star_join ~spokes =
  let hub = "hub" in
  let s_facts = List.init spokes (fun i -> Fact.make "S" [ hub; Printf.sprintf "n%d" i ]) in
  Database.make ~endo:(Fact.make "R" [ hub ] :: s_facts) ~exo:[]
