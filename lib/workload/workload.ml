(* ------------------------------------------------------------------ *)
(* Named workloads: (query, database) cases for batch analysis/runs    *)
(* ------------------------------------------------------------------ *)

type case = {
  cname : string;
  query_src : string;
  query : Query.t;
  db : Database.t;
}

type t = {
  wname : string;
  cases : case list;
}

let make ~name ~cases = { wname = name; cases }
let name w = w.wname
let cases w = w.cases

let case ~name ~query_src ~db =
  { cname = name; query_src; query = Query_parse.parse query_src; db }

(* Text format, one self-contained file:

     workload demo          # optional header line
     case first
     query R(?x), S(?x,?y)
     endo R(1)
     endo S(1,2)
     exo  T(2)

     case second
     query rpq: (AB)(s,t)
     endo A(s,m)
     endo B(m,t)

   '#' starts a comment; blank lines are ignored.  Each [case] block has
   exactly one [query] line and any number of endo/exo fact lines. *)

exception Parse_error of string * int  (* message, 1-based line *)

let parse_result text =
  let strip line =
    match String.index_opt line '#' with
    | Some i -> String.trim (String.sub line 0 i)
    | None -> String.trim line
  in
  let split_tag line =
    match String.index_opt line ' ' with
    | None ->
      (* also accept tab-separated tags, as in Db_text *)
      (match String.index_opt line '\t' with
       | None -> (line, "")
       | Some i ->
         (String.sub line 0 i,
          String.trim (String.sub line i (String.length line - i))))
    | Some i ->
      (String.sub line 0 i, String.trim (String.sub line i (String.length line - i)))
  in
  try
    let wname = ref "workload" in
    let finished = ref [] in
    (* pending case: name, lineno, query source option, reversed fact lines *)
    let pending = ref None in
    let flush () =
      match !pending with
      | None -> ()
      | Some (cname, lineno, qsrc, facts) ->
        let query_src =
          match qsrc with
          | Some s -> s
          | None -> raise (Parse_error (Printf.sprintf "case %S has no query line" cname, lineno))
        in
        let query =
          match Query_parse.parse_result query_src with
          | Ok q -> q
          | Error d ->
            raise (Parse_error
                     (Printf.sprintf "case %S: %s" cname (Query_parse.diagnostic_to_string d),
                      lineno))
        in
        let endo = List.filter_map (fun (t, f) -> if t = `Endo then Some f else None) facts in
        let exo = List.filter_map (fun (t, f) -> if t = `Exo then Some f else None) facts in
        let db =
          try Database.make ~endo ~exo
          with Invalid_argument m -> raise (Parse_error (Printf.sprintf "case %S: %s" cname m, lineno))
        in
        finished := { cname; query_src; query; db } :: !finished;
        pending := None
    in
    List.iteri
      (fun i raw ->
         let lineno = i + 1 in
         let line = strip raw in
         if line <> "" then begin
           let tag, rest = split_tag line in
           match tag with
           | "workload" -> wname := if rest = "" then !wname else rest
           | "case" ->
             flush ();
             if rest = "" then raise (Parse_error ("case line needs a name", lineno));
             pending := Some (rest, lineno, None, [])
           | "query" ->
             (match !pending with
              | None -> raise (Parse_error ("query line outside a case", lineno))
              | Some (_, _, Some _, _) ->
                raise (Parse_error ("a case has exactly one query line", lineno))
              | Some (n, l, None, facts) -> pending := Some (n, l, Some rest, facts))
           | "endo" | "exo" ->
             (match !pending with
              | None -> raise (Parse_error ("fact line outside a case", lineno))
              | Some (n, l, q, facts) ->
                let f =
                  try Db_text.parse_fact rest
                  with Invalid_argument m -> raise (Parse_error (m, lineno))
                in
                let part = if tag = "endo" then `Endo else `Exo in
                pending := Some (n, l, q, facts @ [ (part, f) ]))
           | _ ->
             raise (Parse_error
                      (Printf.sprintf
                         "expected 'workload', 'case', 'query', 'endo' or 'exo', got %S" tag,
                       lineno))
         end)
      (String.split_on_char '\n' text);
    flush ();
    Ok { wname = !wname; cases = List.rev !finished }
  with Parse_error (msg, line) -> Error (msg, line)

let parse text =
  match parse_result text with
  | Ok w -> w
  | Error (msg, line) ->
    invalid_arg (Printf.sprintf "Workload.parse: line %d: %s" line msg)

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  parse content

(* ------------------------------------------------------------------ *)
(* Evaluation: one batched engine per case                             *)
(* ------------------------------------------------------------------ *)

type case_result = {
  rcase : case;
  values : (Fact.t * Rational.t) list;
  stats : Stats.t;
}

let eval_case ?tel ?cache_capacity ?jobs ?backend (c : case) =
  let case_span f =
    match tel with
    | Some tel -> Telemetry.span tel ~attrs:[ ("case", c.cname) ] "workload.case" f
    | None -> f ()
  in
  case_span @@ fun () ->
  let e = Engine.create ?tel ?cache_capacity ?jobs ?backend c.query c.db in
  let values = Engine.svc_all e in
  { rcase = c; values; stats = Engine.stats e }

let eval ?tel ?cache_capacity ?jobs ?backend w =
  List.map (eval_case ?tel ?cache_capacity ?jobs ?backend) w.cases

let to_string w =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("workload " ^ w.wname ^ "\n");
  List.iter
    (fun c ->
       Buffer.add_string buf (Printf.sprintf "\ncase %s\nquery %s\n" c.cname c.query_src);
       Fact.Set.iter
         (fun f -> Buffer.add_string buf ("endo " ^ Fact.to_string f ^ "\n"))
         (Database.endo c.db);
       Fact.Set.iter
         (fun f -> Buffer.add_string buf ("exo  " ^ Fact.to_string f ^ "\n"))
         (Database.exo c.db))
    w.cases;
  Buffer.contents buf

(* Small deterministic xorshift PRNG, independent of Stdlib.Random so that
   instances are stable across OCaml versions. *)
type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (if seed = 0 then 0x9E3779B9 else seed) }

let next r =
  let open Int64 in
  let x = r.state in
  let x = logxor x (shift_left x 13) in
  let x = logxor x (shift_right_logical x 7) in
  let x = logxor x (shift_left x 17) in
  r.state <- x;
  x

let int r bound =
  if bound <= 0 then invalid_arg "Workload.int: non-positive bound";
  Int64.to_int (Int64.rem (Int64.logand (next r) Int64.max_int) (Int64.of_int bound))

let bool r = int r 2 = 0

let pick r l =
  match l with
  | [] -> invalid_arg "Workload.pick: empty list"
  | _ -> List.nth l (int r (List.length l))

let random_fact r ~rels ~consts =
  let name, arity = pick r rels in
  Fact.make name (List.init arity (fun _ -> pick r consts))

let distinct_facts r ~gen ~count ~avoid =
  let rec go acc tries =
    if Fact.Set.cardinal acc >= count then acc
    else if tries > 1000 * (count + 1) then acc (* pool exhausted *)
    else begin
      let f = gen r in
      if Fact.Set.mem f acc || Fact.Set.mem f avoid then go acc (tries + 1)
      else go (Fact.Set.add f acc) (tries + 1)
    end
  in
  go Fact.Set.empty 0

let random_database r ~rels ~consts ~n_endo ~n_exo =
  let gen r = random_fact r ~rels ~consts in
  let endo = distinct_facts r ~gen ~count:n_endo ~avoid:Fact.Set.empty in
  let exo = distinct_facts r ~gen ~count:n_exo ~avoid:endo in
  Database.of_sets ~endo ~exo

let random_graph r ~labels ~nodes ~n_endo ~n_exo =
  random_database r ~rels:(List.map (fun l -> (l, 2)) labels) ~consts:nodes ~n_endo ~n_exo

let rst_gadget ?(complete = false) ~rows ~extra_exo () =
  let left i = Printf.sprintf "l%d" i and right i = Printf.sprintf "r%d" i in
  let r_facts = List.init rows (fun i -> Fact.make "R" [ left i ]) in
  let t_facts = List.init rows (fun i -> Fact.make "T" [ right i ]) in
  let s_facts =
    List.concat
      (List.init rows (fun i ->
           List.init rows (fun j ->
               if complete || (i + j) mod 2 = 0 then
                 [ Fact.make "S" [ left i; right j ] ]
               else [])))
    |> List.concat
  in
  if extra_exo then
    let exo, endo_s =
      List.partition (fun f -> Hashtbl.hash f mod 3 = 0) s_facts
    in
    Database.make ~endo:(r_facts @ t_facts @ endo_s) ~exo
  else Database.make ~endo:(r_facts @ t_facts @ s_facts) ~exo:[]

let path_graph ~label_word ~n_paths =
  let l = List.length label_word in
  let edges =
    List.concat
      (List.init n_paths (fun p ->
           let node i =
             if i = 0 then "s" else if i = l then "t" else Printf.sprintf "p%d_%d" p i
           in
           List.mapi (fun i lbl -> Fact.make lbl [ node i; node (i + 1) ]) label_word))
  in
  Database.make ~endo:edges ~exo:[]

let bibliography ~n_authors ~n_papers ~seed =
  let r = rng seed in
  let author i = Printf.sprintf "author%d" i and paper i = Printf.sprintf "paper%d" i in
  let pubs =
    List.concat
      (List.init n_authors (fun a ->
           List.filter_map
             (fun p -> if int r 3 = 0 then Some (Fact.make "Publication" [ author a; paper p ]) else None)
             (List.init n_papers (fun p -> p))))
  in
  let keywords =
    List.filter_map
      (fun p ->
         Some (Fact.make "Keyword" [ paper p; (if int r 2 = 0 then "shapley" else "logic") ]))
      (List.init n_papers (fun p -> p))
  in
  Fact.Set.of_list (pubs @ keywords)

let star_join ~spokes =
  let hub = "hub" in
  let s_facts = List.init spokes (fun i -> Fact.make "S" [ hub; Printf.sprintf "n%d" i ]) in
  Database.make ~endo:(Fact.make "R" [ hub ] :: s_facts) ~exo:[]

(* ------------------------------------------------------------------ *)
(* Generator registry: seeded, size-parameterized instance families    *)
(* ------------------------------------------------------------------ *)

module Family = struct
  type tractability = [ `Fp | `Hard | `Mixed ]

  let tractability_to_string = function
    | `Fp -> "FP"
    | `Hard -> "#P-hard"
    | `Mixed -> "mixed"

  type t = {
    name : string;
    description : string;
    tractability : tractability;
    generate : seed:int -> size:int -> case;
  }
end

let registry : Family.t list ref = ref []

let register_family (f : Family.t) =
  if String.trim f.Family.name = "" then
    invalid_arg "Workload.register_family: empty family name";
  if List.exists (fun (g : Family.t) -> g.Family.name = f.Family.name) !registry
  then
    invalid_arg
      (Printf.sprintf "Workload.register_family: duplicate family %S"
         f.Family.name);
  registry := !registry @ [ f ]

let families () = !registry

let find_family name =
  List.find_opt (fun (f : Family.t) -> f.Family.name = name) !registry

let case_name ~family ~seed ~size = Printf.sprintf "%s-s%d-n%d" family seed size

let to_workload c = { wname = c.cname; cases = [ c ] }

(* Every generator below is a pure function of (seed, size): the only
   randomness is the xorshift [rng] above, consumed in a fixed order, so
   a (family, seed, size) triple always serializes byte-identically (the
   golden-digest regression test in test/test_conformance.ml pins this).
   At [seed = 0] the star and bipartite families reproduce the historical
   bench instances ([star_join], complete [rst_gadget]) exactly, keeping
   the BENCH_*.json history comparable. *)

let star_family ~seed ~size =
  let name = case_name ~family:"star" ~seed ~size in
  let db =
    if seed = 0 then star_join ~spokes:size
    else begin
      (* seeded variation: some spokes become exogenous *)
      let r = rng seed in
      let hub = "hub" in
      let endo = ref [ Fact.make "R" [ hub ] ] and exo = ref [] in
      for i = 0 to size - 1 do
        let f = Fact.make "S" [ hub; Printf.sprintf "n%d" i ] in
        if int r 4 = 0 then exo := f :: !exo else endo := f :: !endo
      done;
      Database.make ~endo:(List.rev !endo) ~exo:(List.rev !exo)
    end
  in
  case ~name ~query_src:"R(?x), S(?x,?y)" ~db

let bipartite_family ~seed ~size =
  let name = case_name ~family:"bipartite" ~seed ~size in
  let db =
    if seed = 0 then rst_gadget ~complete:true ~rows:size ~extra_exo:false ()
    else begin
      (* seeded variation: a random sub-grid of the S block *)
      let r = rng seed in
      let left i = Printf.sprintf "l%d" i and right i = Printf.sprintf "r%d" i in
      let rt =
        List.init size (fun i -> Fact.make "R" [ left i ])
        @ List.init size (fun i -> Fact.make "T" [ right i ])
      in
      let s =
        List.concat
          (List.init size (fun i ->
               List.filter_map
                 (fun j ->
                    if int r 3 < 2 then Some (Fact.make "S" [ left i; right j ])
                    else None)
                 (List.init size Fun.id)))
      in
      Database.make ~endo:(rt @ s) ~exo:[]
    end
  in
  case ~name ~query_src:"R(?x), S(?x,?y), T(?y)" ~db

let rpq_road_family ~seed ~size =
  (* the examples/road_network.ml topology, scaled: a primary corridor
     home →Road st0 →Rail … →Rail st(size-1) →Road hub, seeded rail
     bypasses and road on-ramps, and a Ferry shortcut kept exogenous *)
  let name = case_name ~family:"rpq-road" ~seed ~size in
  let station i = Printf.sprintf "st%d" i in
  let corridor =
    Fact.make "Road" [ "home"; station 0 ]
    :: Fact.make "Road" [ station (size - 1); "hub" ]
    :: List.init (size - 1) (fun i ->
           Fact.make "Rail" [ station i; station (i + 1) ])
  in
  let r = rng seed in
  let bypasses =
    if size < 2 then []
    else
      List.concat
        (List.init size (fun _ ->
             if bool r then begin
               let i = int r (size - 1) in
               let j = i + 1 + int r (size - 1 - i) in
               [ Fact.make "Rail" [ station i; station j ] ]
             end
             else []))
  in
  let onramp =
    if bool r then [ Fact.make "Road" [ "home"; station (int r size) ] ]
    else []
  in
  let db =
    Database.of_sets
      ~endo:(Fact.Set.of_list (corridor @ bypasses @ onramp))
      ~exo:(Fact.Set.singleton (Fact.make "Ferry" [ "home"; "hub" ]))
  in
  case ~name ~query_src:"rpq: (Road Rail* Road)(home, hub)" ~db

let crpq_family ~seed ~size =
  let name = case_name ~family:"crpq" ~seed ~size in
  let r = rng seed in
  let nodes =
    "s" :: "t" :: List.init (min size 4) (fun i -> Printf.sprintf "v%d" i)
  in
  let n_exo = int r 3 in
  let db = random_graph r ~labels:[ "A"; "B" ] ~nodes ~n_endo:size ~n_exo in
  case ~name ~query_src:"crpq: (AB+BA)(?x,t)" ~db

let cqneg_family ~seed ~size =
  let name = case_name ~family:"cqneg" ~seed ~size in
  let r = rng seed in
  let n_exo = int r 3 in
  let db =
    random_database r
      ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
      ~consts:[ "1"; "2"; "3"; "4" ] ~n_endo:size ~n_exo
  in
  case ~name ~query_src:"cqneg: R(?x), S(?x,?y), !T(?y)" ~db

let endogenous_family ~seed ~size =
  let name = case_name ~family:"endogenous" ~seed ~size in
  let r = rng seed in
  let db =
    random_database r
      ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
      ~consts:[ "1"; "2"; "3" ] ~n_endo:size ~n_exo:0
  in
  case ~name ~query_src:"R(?x), S(?x,?y), T(?y)" ~db

let max_svc_family ~seed ~size =
  (* a guaranteed singleton generalized support (Lemma 6.3): with R(h)
     and T(k) exogenous, the endogenous bridge S(h,k) alone satisfies
     q_RST — max-SVC must rank it (or a tie) on top — plus seeded noise *)
  let name = case_name ~family:"max-svc" ~seed ~size in
  let r = rng seed in
  let bridge = Fact.make "S" [ "h"; "k" ] in
  let exo = Fact.Set.of_list [ Fact.make "R" [ "h" ]; Fact.make "T" [ "k" ] ] in
  let gen r =
    random_fact r
      ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
      ~consts:[ "h"; "k"; "1"; "2" ]
  in
  let noise =
    distinct_facts r ~gen ~count:(size - 1)
      ~avoid:(Fact.Set.add bridge exo)
  in
  let db = Database.of_sets ~endo:(Fact.Set.add bridge noise) ~exo in
  case ~name ~query_src:"R(?x), S(?x,?y), T(?y)" ~db

let const_svc_family ~seed ~size =
  (* purely endogenous chain-join instances for the §6.4 constant-player
     variant: every constant of the graph can be promoted to a player *)
  let name = case_name ~family:"const-svc" ~seed ~size in
  let r = rng seed in
  let db =
    random_graph r ~labels:[ "R"; "T" ]
      ~nodes:[ "1"; "2"; "3"; "4" ] ~n_endo:size ~n_exo:0
  in
  case ~name ~query_src:"R(?x,?y), T(?y,?z)" ~db

let () =
  List.iter register_family
    [
      { Family.name = "star";
        description =
          "hierarchical star join for R(x) ∧ S(x,y): one hub, size spokes \
           (seeds > 0 demote some spokes to exogenous)";
        tractability = `Fp; generate = star_family };
      { Family.name = "bipartite";
        description =
          "complete-bipartite q_RST gadget, the classic hard-lineage \
           family (seeds > 0 keep a random sub-grid)";
        tractability = `Hard; generate = bipartite_family };
      { Family.name = "rpq-road";
        description =
          "road-network RPQ (Road Rail* Road)(home, hub): a rail corridor \
           of size stations with seeded bypasses and an exogenous ferry";
        tractability = `Hard; generate = rpq_road_family };
      { Family.name = "crpq";
        description =
          "CRPQ (AB+BA)(?x,t) over seeded random labelled graphs with \
           exogenous edges";
        tractability = `Hard; generate = crpq_family };
      { Family.name = "cqneg";
        description =
          "CQ with negation R(x) ∧ S(x,y) ∧ ¬T(y) over seeded random \
           partitioned databases";
        tractability = `Hard; generate = cqneg_family };
      { Family.name = "endogenous";
        description =
          "purely endogenous q_RST databases (the §6.1 SVCⁿ setting: no \
           exogenous facts anywhere)";
        tractability = `Hard; generate = endogenous_family };
      { Family.name = "max-svc";
        description =
          "q_RST instances with a guaranteed singleton support (Lemma \
           6.3): an exogenous R/T frame, one endogenous bridge, seeded \
           noise — exercises max-SVC";
        tractability = `Mixed; generate = max_svc_family };
      { Family.name = "const-svc";
        description =
          "purely endogenous chain joins R(x,y) ∧ T(y,z) whose constants \
           become the §6.4 players (SVC^const)";
        tractability = `Hard; generate = const_svc_family };
    ]

let generate ~family ~seed ~size =
  if seed < 0 then invalid_arg "Workload.generate: seed must be >= 0";
  if size < 1 then invalid_arg "Workload.generate: size must be >= 1";
  match find_family family with
  | None ->
    invalid_arg (Printf.sprintf "Workload.generate: unknown family %S" family)
  | Some f -> f.Family.generate ~seed ~size
