(** SVC-as-a-service: the serving loop behind [svc serve].

    A server holds named databases and a bounded LRU cache of hot
    {!Engine}s keyed by (database name, query source, requested
    backend).  The compiled artifact — lineage, memo cache, circuit
    session, plan — is the unit of reuse:

    - an [eval] against an up-to-date cached engine is a {e hit}: the
      whole batched answer is cached too, so repeated (even per-fact)
      questions cost a list projection;
    - after [insert]/[delete] requests, a stale engine catches up by
      replaying the database's change journal through {!Engine.update}
      — a {e delta} update that reuses every untouched sub-circuit and
      plan component, with results rationally equal to a cold
      recompute (the identity the differential suite pins);
    - an engine whose version fell off the bounded journal (or a cold
      key) recompiles from scratch: a {e miss}, evicting the
      least-recently-used entry when the cache is full.

    The protocol is length-prefixed JSON frames ({!Frame}) over any
    byte transport — channels for the CLI's stdin/stdout pipe pair,
    plain strings for tests.  One request frame yields exactly one
    response frame; a request that fails leaves a structured error
    frame ([{"ok":false,"error":code,"message":…}]) and a consistent
    cache — the server never crashes on malformed input.

    Requests are JSON objects with an ["op"] field and an optional
    ["id"] echoed verbatim into the response.  Ops: ["ping"],
    ["load_db"] (name, text), ["eval"] (db, query, optional backend
    [auto|conditioning|circuit|sample], optional seed, optional facts
    array to project), ["insert"] (db, fact, optional kind
    [endo|exo]), ["delete"] (db, fact), ["stats"], ["trace"] (path),
    ["shutdown"].  See README.md, "Serving", for the field-by-field
    reference.

    Counters in the telemetry registry: [server.requests],
    [server.errors], [server.cache_hits], [server.cache_misses],
    [server.cache_evictions], [server.delta_updates]; spans
    [server.request] (per frame, with the op as attribute),
    [server.eval] and [server.update] around engine work. *)

type t

val create :
  ?tel:Telemetry.t ->
  ?capacity:int ->
  ?max_frame:int ->
  ?journal_limit:int ->
  ?jobs:int ->
  ?engine_cache_capacity:int ->
  unit ->
  t
(** A fresh server.  [capacity] bounds the engine LRU (default
    {!default_capacity}); [max_frame] the accepted payload size in
    bytes (default {!Frame.default_max_len}); [journal_limit] how many
    changes per database stay replayable before stale engines must
    recompile cold (default {!default_journal_limit}); [jobs] and
    [engine_cache_capacity] are handed to every {!Engine.create}.
    @raise Invalid_argument if [capacity < 1] or [journal_limit < 0]. *)

val default_capacity : int
(** Default engine-LRU capacity (8). *)

val default_journal_limit : int
(** Default per-database journal bound (64). *)

val load_db : t -> name:string -> text:string -> unit
(** Load (or atomically replace) a named database from {!Db_text}
    syntax — the programmatic form of the ["load_db"] op.  Replacing
    invalidates cached engines for the name (they miss on next eval).
    @raise Invalid_argument on malformed text. *)

val serve :
  ?on_frame:(unit -> unit) ->
  t ->
  Frame.source ->
  out:(string -> unit) ->
  unit
(** Run the loop: read frames from the source, emit one response frame
    to [out] per request, until clean EOF, an unrecoverable framing
    error (after emitting its error frame) or a ["shutdown"] request.
    [on_frame] runs before each read — the hook the CLI uses to advance
    the fake clock deterministically. *)

val serve_string : ?on_frame:(unit -> unit) -> t -> string -> string
(** {!serve} over in-memory bytes: feed a session transcript in, get
    the concatenated response frames back.  The fuzz harness's
    entry point — no sockets, no pipes. *)

val serve_channels : ?on_frame:(unit -> unit) -> t -> in_channel -> out_channel -> unit
(** {!serve} over channels, flushing after every response frame (so a
    pipe peer can run the session interactively). *)

(** {2 Introspection (tests, CLI)} *)

val telemetry : t -> Telemetry.t
val cache_hits : t -> int
val cache_misses : t -> int
val cache_evictions : t -> int
val delta_updates : t -> int

val cached_engines : t -> int
(** Entries currently in the LRU. *)
