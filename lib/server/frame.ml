(* Length-prefixed JSON frames.

   Wire form: the payload byte length in ASCII decimal (1–8 digits),
   one '\n', the payload bytes, one '\n'.  Both newlines are framing,
   not payload.  The textual prefix keeps sessions composable from a
   shell (`svc client encode`) and transcripts human-readable, while
   the explicit length makes truncation detectable — a bare
   line-delimited protocol cannot tell a short read from a short
   message.

   Error taxonomy, by whether the reader still knows where the next
   frame starts:

   - [Oversized]: the declared length exceeds the limit.  The payload
     bytes are read and discarded, so framing survives — recoverable.
   - [Malformed]: the length prefix is not 1–8 digits followed by '\n',
     or the byte after the payload is not '\n'.  The stream position is
     no longer trustworthy — fatal.
   - [Truncated]: EOF inside a frame — fatal by nature. *)

type error =
  | Malformed of string
  | Oversized of int
  | Truncated of string

let error_message = function
  | Malformed m -> m
  | Oversized n -> Printf.sprintf "frame of %d bytes exceeds the limit" n
  | Truncated m -> m

type source = unit -> char option

let source_of_string s =
  let pos = ref 0 in
  fun () ->
    if !pos >= String.length s then None
    else begin
      let c = s.[!pos] in
      incr pos;
      Some c
    end

let source_of_channel ic = fun () -> In_channel.input_char ic

let max_digits = 8
let default_max_len = 1 lsl 20

let encode payload =
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

(* None = clean EOF at a frame boundary (normal end of session). *)
let read ?(max_len = default_max_len) (src : source) =
  match src () with
  | None -> Ok None
  | Some c0 ->
    let rec prefix acc ndigits c =
      match c with
      | '\n' when ndigits > 0 -> Ok acc
      | '0' .. '9' ->
        if ndigits >= max_digits then
          Error (Malformed "frame length prefix has too many digits")
        else begin
          let acc = (acc * 10) + (Char.code c - Char.code '0') in
          match src () with
          | Some c -> prefix acc (ndigits + 1) c
          | None -> Error (Truncated "eof inside frame length prefix")
        end
      | _ -> Error (Malformed "frame length prefix is not a decimal line")
    in
    (match prefix 0 0 c0 with
     | Error _ as e -> e
     | Ok len ->
       if len > max_len then begin
         (* drain the declared payload + trailing newline so the next
            frame still starts at a known position *)
         let rec drain k =
           if k = 0 then true
           else match src () with None -> false | Some _ -> drain (k - 1)
         in
         if drain (len + 1) then Error (Oversized len)
         else Error (Truncated "eof inside oversized frame payload")
       end
       else begin
         let buf = Bytes.create len in
         let rec fill i =
           if i = len then Ok ()
           else
             match src () with
             | Some c ->
               Bytes.set buf i c;
               fill (i + 1)
             | None -> Error (Truncated "eof inside frame payload")
         in
         match fill 0 with
         | Error _ as e -> e
         | Ok () ->
           (match src () with
            | Some '\n' -> Ok (Some (Bytes.to_string buf))
            | Some _ -> Error (Malformed "frame payload not terminated by newline")
            | None -> Error (Truncated "eof at frame terminator"))
       end)

let recoverable = function
  | Oversized _ -> true
  | Malformed _ | Truncated _ -> false
