(* The SVC serving loop: named databases, a bounded LRU of hot engines,
   and journal-driven delta updates.

   The unit of reuse is the compiled artifact, not the query text: an
   LRU entry key is (database name, query source, backend tag), and its
   engine carries the compiled lineage, the memo cache, the circuit
   session and the plan across requests.  Mutations ([insert]/[delete])
   touch only the named database's state — they bump its version and
   append to a bounded journal; engines catch up lazily on their next
   [eval], replaying the journal through [Engine.update] (each replayed
   change is a "delta update": sub-circuit and plan reuse instead of a
   cold recompile).  An engine whose version fell off the journal
   recompiles cold and counts as a miss.

   Batching: one [eval] computes (and caches) the whole [svc_all]
   answer; a request for specific facts is served by projection, so any
   number of per-fact questions against one (db, query) funnel through
   a single engine evaluation.

   Everything is deterministic given the request sequence: answers are
   exact rationals in players order, and no response carries a wall
   time (clocks only feed the telemetry trace, which tests pin through
   the fake clock + the summary mask). *)

type entry = {
  e_db : string;
  mutable engine : Engine.t;
  mutable version : int;
  mutable values : (Fact.t * Rational.t) list option;
  mutable last_used : int;
}

type dbstate = {
  mutable db : Database.t;
  mutable version : int;
  mutable journal : (int * Engine.change) list;
      (* newest first; [(v, ch)] means applying [ch] produced version
         [v]; truncated to [journal_limit] *)
}

type t = {
  tel : Telemetry.t;
  dbs : (string, dbstate) Hashtbl.t;
  entries : (string, entry) Hashtbl.t;
  capacity : int;
  max_frame : int;
  journal_limit : int;
  jobs : int;
  engine_cache_capacity : int;
  mutable tick : int;
  mutable stopped : bool;
  requests : Telemetry.Counter.t;
  errors : Telemetry.Counter.t;
  hits : Telemetry.Counter.t;
  misses : Telemetry.Counter.t;
  evictions : Telemetry.Counter.t;
  deltas : Telemetry.Counter.t;
}

let default_capacity = 8
let default_journal_limit = 64

let create ?(tel = Telemetry.disabled ()) ?(capacity = default_capacity)
    ?(max_frame = Frame.default_max_len)
    ?(journal_limit = default_journal_limit) ?(jobs = 1)
    ?(engine_cache_capacity = 1 lsl 20) () =
  if capacity < 1 then invalid_arg "Server.create: capacity must be >= 1";
  if journal_limit < 0 then
    invalid_arg "Server.create: journal_limit must be >= 0";
  {
    tel;
    dbs = Hashtbl.create 16;
    entries = Hashtbl.create 16;
    capacity;
    max_frame;
    journal_limit;
    jobs;
    engine_cache_capacity;
    tick = 0;
    stopped = false;
    (* registration order is user-visible in exporter output *)
    requests = Telemetry.counter tel "server.requests";
    errors = Telemetry.counter tel "server.errors";
    hits = Telemetry.counter tel "server.cache_hits";
    misses = Telemetry.counter tel "server.cache_misses";
    evictions = Telemetry.counter tel "server.cache_evictions";
    deltas = Telemetry.counter tel "server.delta_updates";
  }

let telemetry t = t.tel
let cache_hits t = Telemetry.Counter.value t.hits
let cache_misses t = Telemetry.Counter.value t.misses
let cache_evictions t = Telemetry.Counter.value t.evictions
let delta_updates t = Telemetry.Counter.value t.deltas
let cached_engines t = Hashtbl.length t.entries

let load_db t ~name ~text =
  let db = Db_text.parse text in
  match Hashtbl.find_opt t.dbs name with
  | None -> Hashtbl.replace t.dbs name { db; version = 0; journal = [] }
  | Some ds ->
    (* a wholesale reload is not a single-fact delta: bump past the
       journal so stale engines recompile cold *)
    ds.db <- db;
    ds.version <- ds.version + 1;
    ds.journal <- []

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""
let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields)
  ^ "}"
let jarr xs = "[" ^ String.concat "," xs ^ "]"

let rec render_json (j : Tracejson.json) =
  match j with
  | Tracejson.Null -> "null"
  | Tracejson.Bool b -> if b then "true" else "false"
  | Tracejson.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f
  | Tracejson.Str s -> jstr s
  | Tracejson.Arr xs -> jarr (List.map render_json xs)
  | Tracejson.Obj kvs ->
    jobj (List.map (fun (k, v) -> (k, render_json v)) kvs)

let field req k =
  match req with
  | Tracejson.Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let str_field req k =
  match field req k with Some (Tracejson.Str s) -> Some s | _ -> None

let int_field req k =
  match field req k with
  | Some (Tracejson.Num f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

(* [id] is the client's correlation field, echoed verbatim when present. *)
let with_id id fields =
  match id with Some j -> ("id", render_json j) :: fields | None -> fields

let ok_frame id fields = jobj (("ok", "true") :: with_id id fields)

exception Reject of string * string (* code, message *)

let rejectf code fmt = Printf.ksprintf (fun m -> raise (Reject (code, m))) fmt

let error_frame id ~code ~message =
  jobj
    (("ok", "false")
     :: with_id id [ ("error", jstr code); ("message", jstr message) ])

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let backend_of_tag req : Engine.backend =
  match str_field req "backend" with
  | None | Some "auto" -> `Auto
  | Some "conditioning" -> `Conditioning
  | Some "circuit" -> `Circuit
  | Some "sample" ->
    let seed = Option.value ~default:0 (int_field req "seed") in
    `Sample (Sample.config ~seed ())
  | Some other -> rejectf "bad_request" "unknown backend %S" other

let backend_name = function
  | `Conditioning -> "conditioning"
  | `Circuit -> "circuit"
  | `Sample _ -> "sample"

let required req k =
  match str_field req k with
  | Some s -> s
  | None -> rejectf "bad_request" "missing string field %S" k

let db_state t name =
  match Hashtbl.find_opt t.dbs name with
  | Some ds -> ds
  | None -> rejectf "unknown_db" "no database named %S is loaded" name

(* Journal changes strictly after [since], oldest first; [None] when the
   gap is no longer covered (the entry must recompile cold). *)
let pending ds ~since =
  if ds.version = since then Some []
  else begin
    let rec collect acc = function
      | (v, ch) :: rest when v > since -> collect ((v, ch) :: acc) rest
      | _ -> acc
    in
    let changes = collect [] ds.journal in
    if List.length changes = ds.version - since then
      Some (List.map snd changes)
    else None
  end

let evict_if_full t =
  if Hashtbl.length t.entries >= t.capacity then begin
    let victim = ref None in
    Hashtbl.iter
      (fun key e ->
         match !victim with
         | Some (_, lru) when e.last_used >= lru -> ()
         | _ -> victim := Some (key, e.last_used))
      t.entries;
    match !victim with
    | Some (key, _) ->
      Hashtbl.remove t.entries key;
      Telemetry.Counter.incr t.evictions
    | None -> ()
  end

let fresh_engine t ds ~backend ~query_src =
  let query = Query_parse.parse query_src in
  Engine.create ~tel:t.tel ~cache_capacity:t.engine_cache_capacity
    ~jobs:t.jobs ~backend query ds.db

let requested_name (b : Engine.backend) =
  match b with
  | `Auto -> "auto"
  | `AutoLegacy -> "auto-legacy"
  | `Conditioning -> "conditioning"
  | `Circuit -> "circuit"
  | `Sample _ -> "sample"

(* hit / delta / miss resolution of the (db, query, backend) entry *)
let entry_for t ~db_name ~query_src ~backend =
  let ds = db_state t db_name in
  let key =
    String.concat "\x00" [ db_name; query_src; requested_name backend ]
  in
  t.tick <- t.tick + 1;
  let e, status =
    match Hashtbl.find_opt t.entries key with
    | Some e when e.version = ds.version ->
      Telemetry.Counter.incr t.hits;
      (e, "hit")
    | Some e ->
      (match pending ds ~since:e.version with
       | Some changes when changes <> [] ->
         Telemetry.span t.tel "server.update" (fun () ->
             List.iter
               (fun ch ->
                  e.engine <- Engine.update e.engine ch;
                  Telemetry.Counter.incr t.deltas)
               changes);
         e.version <- ds.version;
         e.values <- None;
         (e, "delta")
       | _ ->
         Telemetry.Counter.incr t.misses;
         e.engine <- fresh_engine t ds ~backend ~query_src;
         e.version <- ds.version;
         e.values <- None;
         (e, "miss"))
    | None ->
      Telemetry.Counter.incr t.misses;
      evict_if_full t;
      let e =
        {
          e_db = db_name;
          engine = fresh_engine t ds ~backend ~query_src;
          version = ds.version;
          values = None;
          last_used = t.tick;
        }
      in
      Hashtbl.replace t.entries key e;
      (e, "miss")
  in
  e.last_used <- t.tick;
  (e, status)

let values_of e =
  match e.values with
  | Some vs -> vs
  | None ->
    let vs = Engine.svc_all e.engine in
    e.values <- Some vs;
    vs

let handle_eval t id req =
  let db_name = required req "db" in
  let query_src = required req "query" in
  let backend = backend_of_tag req in
  let e, status = entry_for t ~db_name ~query_src ~backend in
  let values =
    Telemetry.span t.tel "server.eval" (fun () -> values_of e)
  in
  let values =
    match field req "facts" with
    | None -> values
    | Some (Tracejson.Arr fs) ->
      List.map
        (fun f ->
           match f with
           | Tracejson.Str s ->
             let fact = Db_text.parse_fact s in
             (match
                List.find_opt (fun (g, _) -> Fact.equal g fact) values
              with
              | Some pair -> pair
              | None ->
                rejectf "bad_request" "fact %S is not an endogenous fact" s)
           | _ -> rejectf "bad_request" "facts must be an array of strings")
        fs
    | Some _ -> rejectf "bad_request" "facts must be an array of strings"
  in
  ok_frame id
    [
      ("op", jstr "eval");
      ("db", jstr db_name);
      ("backend", jstr (backend_name (Engine.backend e.engine)));
      ("cache", jstr status);
      ("version", string_of_int e.version);
      ("reused_nodes", string_of_int (Engine.circuit_reused_nodes e.engine));
      ( "values",
        jarr
          (List.map
             (fun (f, v) ->
                jobj
                  [
                    ("fact", jstr (Fact.to_string f));
                    ("value", jstr (Rational.to_string v));
                  ])
             values) );
    ]

let apply_change t id req change =
  let db_name = required req "db" in
  let ds = db_state t db_name in
  let db =
    match change with
    | `Insert (part, f) ->
      if Database.mem f ds.db then
        rejectf "bad_request" "fact %s is already present"
          (Fact.to_string f);
      (match part with
       | `Endo -> Database.add_endo f ds.db
       | `Exo -> Database.add_exo f ds.db)
    | `Delete f ->
      if not (Database.mem f ds.db) then
        rejectf "bad_request" "fact %s is not present" (Fact.to_string f);
      Database.remove f ds.db
  in
  ds.db <- db;
  ds.version <- ds.version + 1;
  let journal = (ds.version, change) :: ds.journal in
  ds.journal <-
    (if List.length journal > t.journal_limit then
       List.filteri (fun i _ -> i < t.journal_limit) journal
     else journal);
  ok_frame id
    [
      ( "op",
        jstr (match change with `Insert _ -> "insert" | `Delete _ -> "delete")
      );
      ("db", jstr db_name);
      ("version", string_of_int ds.version);
      ("endo", string_of_int (Database.size_endo ds.db));
      ("size", string_of_int (Database.size ds.db));
    ]

let handle_insert t id req =
  let fact = Db_text.parse_fact (required req "fact") in
  let part =
    match str_field req "kind" with
    | None | Some "endo" -> `Endo
    | Some "exo" -> `Exo
    | Some other -> rejectf "bad_request" "unknown kind %S" other
  in
  apply_change t id req (`Insert (part, fact))

let handle_delete t id req =
  let fact = Db_text.parse_fact (required req "fact") in
  apply_change t id req (`Delete fact)

let handle_load_db t id req =
  let name = required req "name" in
  let text = required req "text" in
  load_db t ~name ~text;
  let ds = Hashtbl.find t.dbs name in
  ok_frame id
    [
      ("op", jstr "load_db");
      ("db", jstr name);
      ("version", string_of_int ds.version);
      ("endo", string_of_int (Database.size_endo ds.db));
      ("size", string_of_int (Database.size ds.db));
    ]

let handle_stats t id =
  ok_frame id
    [
      ("op", jstr "stats");
      ("dbs", string_of_int (Hashtbl.length t.dbs));
      ("engines", string_of_int (Hashtbl.length t.entries));
      ("capacity", string_of_int t.capacity);
      ("hits", string_of_int (cache_hits t));
      ("misses", string_of_int (cache_misses t));
      ("evictions", string_of_int (cache_evictions t));
      ("delta_updates", string_of_int (delta_updates t));
      ("requests", string_of_int (Telemetry.Counter.value t.requests));
      ("errors", string_of_int (Telemetry.Counter.value t.errors));
    ]

let handle_trace t id req =
  let path = required req "path" in
  (try Telemetry.Export.write_chrome t.tel path
   with Sys_error m -> rejectf "internal" "cannot write trace: %s" m);
  ok_frame id [ ("op", jstr "trace"); ("path", jstr path) ]

let dispatch t id req =
  match str_field req "op" with
  | None -> rejectf "bad_request" "missing string field \"op\""
  | Some "ping" -> ok_frame id [ ("op", jstr "ping") ]
  | Some "eval" -> handle_eval t id req
  | Some "insert" -> handle_insert t id req
  | Some "delete" -> handle_delete t id req
  | Some "load_db" -> handle_load_db t id req
  | Some "stats" -> handle_stats t id
  | Some "trace" -> handle_trace t id req
  | Some "shutdown" ->
    t.stopped <- true;
    ok_frame id [ ("op", jstr "shutdown") ]
  | Some other -> rejectf "unknown_op" "unknown op %S" other

(* One request, one response frame, no exception escapes: whatever goes
   wrong becomes a structured error frame and the server state stays
   whatever the completed prefix of the request made it. *)
let handle t payload =
  Telemetry.Counter.incr t.requests;
  match Tracejson.parse payload with
  | Error msg ->
    Telemetry.Counter.incr t.errors;
    error_frame None ~code:"bad_json" ~message:msg
  | Ok req ->
    let id = field req "id" in
    let op = Option.value ~default:"?" (str_field req "op") in
    (match
       Telemetry.span t.tel ~attrs:[ ("op", op) ] "server.request"
         (fun () -> dispatch t id req)
     with
     | resp -> resp
     | exception Reject (code, message) ->
       Telemetry.Counter.incr t.errors;
       error_frame id ~code ~message
     | exception Invalid_argument message ->
       Telemetry.Counter.incr t.errors;
       error_frame id ~code:"bad_request" ~message
     | exception exn ->
       Telemetry.Counter.incr t.errors;
       error_frame id ~code:"internal" ~message:(Printexc.to_string exn))

(* ------------------------------------------------------------------ *)
(* The serving loop                                                    *)
(* ------------------------------------------------------------------ *)

let serve ?(on_frame = fun () -> ()) t src ~out =
  let rec loop () =
    if not t.stopped then begin
      on_frame ();
      match Frame.read ~max_len:t.max_frame src with
      | Ok None -> () (* clean EOF at a frame boundary *)
      | Ok (Some payload) ->
        out (Frame.encode (handle t payload));
        loop ()
      | Error e ->
        Telemetry.Counter.incr t.requests;
        Telemetry.Counter.incr t.errors;
        out
          (Frame.encode
             (error_frame None ~code:"frame" ~message:(Frame.error_message e)));
        (* an oversized frame was drained, so framing survives; any
           other framing error loses the stream position — stop *)
        if Frame.recoverable e then loop ()
    end
  in
  loop ()

let serve_string ?on_frame t input =
  let buf = Buffer.create 256 in
  serve ?on_frame t (Frame.source_of_string input) ~out:(Buffer.add_string buf);
  Buffer.contents buf

let serve_channels ?on_frame t ic oc =
  serve ?on_frame t
    (Frame.source_of_channel ic)
    ~out:(fun s ->
      output_string oc s;
      flush oc)
