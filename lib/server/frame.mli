(** Length-prefixed frames for the serving protocol.

    Wire form of one frame: the payload's byte length in ASCII decimal
    (1–8 digits), a newline, the payload, a newline.  The textual
    prefix keeps sessions composable from a shell and transcripts
    readable; the explicit length makes truncation detectable, which a
    bare line protocol cannot do. *)

type error =
  | Malformed of string
      (** the length prefix is not a 1–8 digit decimal line, or the
          byte after the payload is not a newline; stream position is
          lost — fatal *)
  | Oversized of int
      (** declared length exceeds the reader's limit; the payload was
          drained, framing survives — recoverable *)
  | Truncated of string  (** EOF inside a frame — fatal *)

val error_message : error -> string

val recoverable : error -> bool
(** Whether the reader still knows where the next frame starts (only
    for {!Oversized}). *)

type source = unit -> char option
(** A byte source; [None] is EOF.  Keeps the reader transport-agnostic
    so tests drive it from strings, no sockets or pipes required. *)

val source_of_string : string -> source
val source_of_channel : in_channel -> source

val default_max_len : int
(** Default payload limit, [2{^20}] bytes. *)

val encode : string -> string
(** The wire form of one frame around the payload. *)

val read : ?max_len:int -> source -> (string option, error) result
(** Read one frame.  [Ok None] is clean EOF at a frame boundary (the
    normal end of a session); [Ok (Some payload)] one decoded frame. *)
