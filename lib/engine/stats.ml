type domain_stat = {
  d_facts : int;
  d_hits : int;
  d_misses : int;
  d_steals : int;
}

type t = {
  players : int;
  compilations : int;
  conditionings : int;
  cache_hits : int;
  cache_misses : int;
  cache_size : int;
  cache_capacity : int;
  cache_drops : int;
  poly_ops : int;
  jobs : int;
  domains : domain_stat array;
  compile_s : float;
  eval_s : float;
  backend : string;
  circuit_nodes : int;
  circuit_edges : int;
  circuit_smoothing : int;
  circuit_cache_hits : int;
  circuit_cache_misses : int;
  circuit_cache_drops : int;
  circuit_compile_s : float;
  circuit_traverse_s : float;
  sample_strategy : string;
  sample_seed : int;
  sample_draws : int;
  sample_exact_strata : int;
  sample_sampled_strata : int;
  sample_max_hw : string;
  sample_epsilon : string;
  sample_confidence : string;
  sample_converged : bool;
  span_s : (string * int * float) array;
}

let zero =
  { players = 0; compilations = 0; conditionings = 0; cache_hits = 0;
    cache_misses = 0; cache_size = 0; cache_capacity = 0; cache_drops = 0;
    poly_ops = 0; jobs = 1; domains = [||]; compile_s = 0.; eval_s = 0.;
    backend = "conditioning"; circuit_nodes = 0; circuit_edges = 0;
    circuit_smoothing = 0; circuit_cache_hits = 0; circuit_cache_misses = 0;
    circuit_cache_drops = 0; circuit_compile_s = 0.; circuit_traverse_s = 0.;
    sample_strategy = ""; sample_seed = 0; sample_draws = 0;
    sample_exact_strata = 0; sample_sampled_strata = 0; sample_max_hw = "0";
    sample_epsilon = "0"; sample_confidence = "0"; sample_converged = false;
    span_s = [||] }

let sum_domains proj s = Array.fold_left (fun acc d -> acc + proj d) 0 s.domains
let par_facts s = sum_domains (fun d -> d.d_facts) s
let par_hits s = sum_domains (fun d -> d.d_hits) s
let par_misses s = sum_domains (fun d -> d.d_misses) s
let par_steals s = sum_domains (fun d -> d.d_steals) s

let normalize s =
  {
    s with
    compile_s = 0.;
    eval_s = 0.;
    circuit_compile_s = 0.;
    circuit_traverse_s = 0.;
    domains = Array.map (fun d -> { d with d_steals = 0 }) s.domains;
    (* span counts are deterministic; only the accumulated durations are
       wall clock *)
    span_s = Array.map (fun (name, count, _) -> (name, count, 0.)) s.span_s;
  }

let ms s = s *. 1000.

let capacity_string c = if c = max_int then "unbounded" else string_of_int c

let to_string s =
  String.concat ""
    ([
       "engine stats:\n";
       Printf.sprintf "  players       : %d\n" s.players;
       Printf.sprintf "  compilations  : %d\n" s.compilations;
       Printf.sprintf "  conditionings : %d\n" s.conditionings;
       Printf.sprintf "  cache         : %d hits / %d misses / %d drops (%d entries, capacity %s)\n"
         s.cache_hits s.cache_misses s.cache_drops s.cache_size
         (capacity_string s.cache_capacity);
       Printf.sprintf "  poly ops      : %d\n" s.poly_ops;
     ]
     @ (if s.jobs = 1 then []
        else
          [
            (* summed across domains: the per-slice numbers are stable but
               verbose, and steal counts are scheduling noise anyway *)
            Printf.sprintf
              "  parallel      : %d jobs, %d facts, cache %d hits / %d misses, steals %d\n"
              s.jobs (par_facts s) (par_hits s) (par_misses s) (par_steals s);
          ])
     @ (if s.backend = "circuit" then
          [
            Printf.sprintf "  backend       : %s\n" s.backend;
            Printf.sprintf "  circuit       : %d nodes / %d edges (%d smoothing)\n"
              s.circuit_nodes s.circuit_edges s.circuit_smoothing;
            Printf.sprintf "  circuit cache : %d hits / %d misses / %d drops\n"
              s.circuit_cache_hits s.circuit_cache_misses s.circuit_cache_drops;
          ]
        else [])
     @ (if s.backend = "sample" then
          [
            Printf.sprintf "  backend       : %s\n" s.backend;
            Printf.sprintf
              "  sampling      : %s, seed %d, %d draws, %d/%d strata exact/sampled\n"
              s.sample_strategy s.sample_seed s.sample_draws
              s.sample_exact_strata s.sample_sampled_strata;
            Printf.sprintf
              "  ci            : half-width <= %s (target %s at confidence %s) — %s\n"
              s.sample_max_hw s.sample_epsilon s.sample_confidence
              (if s.sample_converged then "converged" else "budget exhausted");
          ]
        else [])
     @ [
         Printf.sprintf "  compile time  : %.2fms\n" (ms s.compile_s);
         Printf.sprintf "  eval time  : %.2fms\n" (ms s.eval_s);
       ]
     @ (if s.backend = "circuit" then
          [
            Printf.sprintf "  circuit compile time  : %.2fms\n"
              (ms s.circuit_compile_s);
            Printf.sprintf "  circuit traverse time  : %.2fms\n"
              (ms s.circuit_traverse_s);
          ]
        else [])
     @ (if Array.length s.span_s = 0 then []
        else
          "  spans:\n"
          :: (Array.to_list s.span_s
              |> List.map (fun (name, count, dur) ->
                     Printf.sprintf "    %-28s %4dx  time  : %.2fms\n" name
                       count (ms dur)))))

let pp fmt s = Format.pp_print_string fmt (to_string s)

(* Stable field names: consumed by BENCH_engine.json / BENCH_parallel.json
   and the cram tests (which mask only the two *_ms fields and the
   scheduling-dependent par_steals). *)
let to_json s =
  Printf.sprintf
    "{\"players\":%d,\"compilations\":%d,\"conditionings\":%d,\
     \"cache_hits\":%d,\"cache_misses\":%d,\"cache_size\":%d,\
     \"cache_capacity\":%s,\"cache_drops\":%d,\"poly_ops\":%d,\
     \"jobs\":%d,\"par_facts\":%d,\"par_cache_hits\":%d,\
     \"par_cache_misses\":%d,\"par_steals\":%d,\
     \"compile_ms\":%.3f,\"eval_ms\":%.3f,\
     \"backend\":\"%s\",\"circuit_nodes\":%d,\"circuit_edges\":%d,\
     \"circuit_smoothing\":%d,\"circuit_cache_hits\":%d,\
     \"circuit_cache_misses\":%d,\"circuit_cache_drops\":%d,\
     \"circuit_compile_ms\":%.3f,\"circuit_traverse_ms\":%.3f,\
     \"sample_strategy\":%S,\"sample_seed\":%d,\"sample_draws\":%d,\
     \"sample_exact_strata\":%d,\"sample_sampled_strata\":%d,\
     \"sample_max_hw\":%S,\"sample_epsilon\":%S,\"sample_confidence\":%S,\
     \"sample_converged\":%b}"
    s.players s.compilations s.conditionings s.cache_hits s.cache_misses
    s.cache_size
    (if s.cache_capacity = max_int then "null" else string_of_int s.cache_capacity)
    s.cache_drops s.poly_ops s.jobs (par_facts s) (par_hits s) (par_misses s)
    (par_steals s) (ms s.compile_s) (ms s.eval_s) s.backend s.circuit_nodes
    s.circuit_edges s.circuit_smoothing s.circuit_cache_hits
    s.circuit_cache_misses s.circuit_cache_drops (ms s.circuit_compile_s)
    (ms s.circuit_traverse_s) s.sample_strategy s.sample_seed s.sample_draws
    s.sample_exact_strata s.sample_sampled_strata s.sample_max_hw
    s.sample_epsilon s.sample_confidence s.sample_converged
