(** Batched, memoizing SVC evaluation engine.

    Computing all Shapley values of a database with per-fact {!Svc.svc}
    does [2n] full lineage compilations of the same query.  This engine
    compiles the lineage {e once} per (query, database) and derives each
    fact's two FGMC generating polynomials from the shared compiled form:
    [φ[μ:=1]] by {e conditioning} (exact because the size-generating
    polynomial depends only on the Boolean function), and [φ[μ:=0]] for
    free from the splitting identity
    [C(φ) = z·C(φ[μ:=1]) + C(φ[μ:=0])] against the full count [C(φ)]
    computed once.  Additionally:

    - all conditioned sub-formulas memoized in one shared, bounded,
      structurally-hashed cache ({!Compile.Memo}) — they overlap massively
      across facts;
    - the Shapley coefficients [j!(n-j-1)!/n!] read off a factorial table
      precomputed once ({!Bigint.factorial_table}).

    {2 Parallelism}

    The per-fact conditioning step is embarrassingly parallel — every
    fact's polynomial reads only the shared immutable lineage and the
    full count — so at [jobs > 1] the batched entry points
    ({!svc_all}, {!banzhaf_all}) fan it out across [jobs] stdlib domains
    through {!Pool}.

    {b Cache-ownership invariant:} a {!Compile.Memo} is an
    unsynchronized [Hashtbl] and must never be mutated from two domains.
    The engine's own shared cache is therefore used only from the
    calling domain (the serial path, the full polynomial, per-fact
    {!svc}/{!banzhaf} calls); a parallel batched run gives each worker
    slot a {e private} cache of the same capacity, created and dropped
    inside the run.  Worker slots own static slices of the fact array
    ([slot i] evaluates facts [i·n/jobs, (i+1)·n/jobs)) and each result
    is written back at the fact's original index, so output order and
    values are bit-identical for every [jobs] — only wall clock and the
    scheduling counters ({!Stats.domain_stat}) can differ.

    Every call is instrumented; see {!Stats}. *)

type t
(** A compiled engine for one (query, database) pair.  Mutable only in its
    instrumentation and cache; all answers are deterministic. *)

type backend =
  [ `Auto | `AutoLegacy | `Conditioning | `Circuit | `Sample of Sample.config ]
(** The evaluation strategy for batched answers:

    - [`Conditioning]: the PR-3 path — one conditioned size-polynomial
      count per fact against the shared memo cache (parallelizable);
    - [`Circuit]: compile the lineage once into a smoothed deterministic
      decomposable NNF circuit ({!Circuit}) and read {e every} fact's
      polynomial off it with one bottom-up + one top-down traversal — no
      per-fact conditioning at all;
    - [`Auto] (the default): cost-based.  A serial instance is analyzed
      by the compilation planner ({!Plan.analyze}) and gets [`Circuit]
      exactly when {!Plan.recommend} predicts the compiled circuit fits
      the node budget (the prediction comes from the lineage's induced
      width, so dense co-occurrence graphs fall back to conditioning no
      matter how many facts they have); [`Conditioning] at [jobs > 1];
    - [`AutoLegacy]: the pre-planner rule, kept for comparison —
      [`Circuit] iff serial and at least {!circuit_threshold}
      endogenous facts, no width analysis;
    - [`Sample cfg]: the anytime sampling estimator ({!Sample}) — the
      only {e approximate} backend, and therefore never auto-selected:
      every answer carries a seeded-deterministic estimate whose
      confidence interval is reported through {!stats}
      ([sample_*] fields) and {!Sample.report}.  [svc]/[svc_all] and
      [banzhaf]/[banzhaf_all] run (and cache) one estimation pass each;
      {!fgmc_polynomial} stays exact via the conditioning path.  [jobs]
      does not affect the values (the estimator is a pure function of
      the seed).

    The exact backends return bit-identical values in the same order. *)

val circuit_threshold : int
(** Endogenous-fact count at which [`AutoLegacy] switches to
    [`Circuit]. *)

val create :
  ?tel:Telemetry.t -> ?cache_capacity:int -> ?jobs:int -> ?backend:backend ->
  Query.t -> Database.t -> t
(** Compiles the lineage (the single compilation of the engine's life).
    [cache_capacity] bounds the number of memoized sub-formulas (default
    [2{^20}]; results past the bound are recomputed, never wrong) — under
    [`Circuit] the same bound applies to the circuit compiler's
    formula→node cache.  [jobs] sets the worker-domain count for batched
    runs: default [1] (fully serial, no domain ever spawned), [0] resolves
    to {!Pool.recommended_domains}; the circuit backend is always serial.
    [backend] selects the evaluation strategy (default [`Auto]).

    [tel] (default: a private disabled tracer, making every span a free
    no-op) hosts the engine's whole instrumentation: the
    [engine.compilations]/[engine.conditionings] counters live in its
    registry — {!stats} is a projection of it, not a separate record —
    and, when enabled, the run is recorded as spans: [engine.lineage]
    (the one compilation), [engine.eval] per batched entry point,
    [engine.full] (the unconditioned polynomial), [engine.fact] per
    fact on the serial path, [engine.slice] per worker slot on track
    [slot + 1] at [jobs > 1] (one Chrome lane per domain), and
    [engine.merge] for the deterministic merge; the circuit backend adds
    {!Circuit}'s [circuit.*] spans, counters and gauges.
    @raise Invalid_argument if [jobs < 0]. *)

type change = [ `Insert of [ `Endo | `Exo ] * Fact.t | `Delete of Fact.t ]
(** A single-fact delta against the engine's database: insert a fresh
    fact into the endogenous or exogenous part, or delete a present
    fact from whichever part holds it. *)

val update : t -> change -> t
(** Incremental recompilation after a delta.  Returns a {e new} engine
    over the changed database whose answers are rationally equal to
    [create]-ing from scratch — the differential identity the test
    suite pins — but which reuses everything the change does not
    invalidate:

    - the shared {!Compile.Memo} (sound across formulas: a cached
      polynomial counts over exactly its formula's variables);
    - the circuit compilation session, so a later circuit compile
      resolves every hash-consed sub-circuit untouched by the change to
      its existing arena node ({!Circuit.reused_nodes});
    - the compilation plan, replayed component-locally through
      {!Plan.replan} — only components the change touched are
      re-ordered.

    The original engine stays fully usable (its answers still describe
    the old database).  Per-answer caches (full polynomial, circuit
    evaluation, sample reports) start cold in the new engine; the
    backend is re-resolved from the originally requested one, so an
    [`Auto] engine may flip strategy as the instance grows or shrinks.
    Runs in an [engine.update] span and bumps the [engine.updates]
    counter (registered on first use).
    @raise Invalid_argument on inserting a present fact or deleting an
    absent one. *)

val backend : t -> [ `Conditioning | `Circuit | `Sample of Sample.config ]
(** The resolved backend. *)

val requested_backend : t -> backend
(** The backend as originally asked of {!create} (what {!update}
    re-resolves). *)

val circuit_reused_nodes : t -> int
(** {!Circuit.reused_nodes} of the engine's compiled circuit: nodes
    inherited from pre-update compiles through the shared session.  [0]
    if no circuit was compiled or the engine never went through
    {!update}. *)

val sample_report : t -> Sample.report option
(** The cached report of the last sampled batched run ([None] unless the
    engine is a [`Sample] backend and an entry point has run; prefers
    the Shapley report when both Shapley and Banzhaf passes ran).
    Carries per-fact confidence intervals, draw counts and convergence
    flags — the data behind the [sample_*] fields of {!stats}. *)

val auto_selected : t -> bool
(** [true] iff [`Auto]/[`AutoLegacy] resolution picked the circuit
    backend (lets the CLI announce the switch). *)

val plan : t -> Plan.t option
(** The compilation plan computed at {!create} time: present for an
    explicit [`Circuit] backend and for a serial [`Auto] (where it
    decided the resolution and will steer any circuit compilation);
    absent for [`Conditioning], [`AutoLegacy] and parallel [`Auto]
    engines. *)

val query : t -> Query.t
val database : t -> Database.t

val jobs : t -> int
(** The resolved worker count ([>= 1]). *)

val lineage : t -> Bform.t
(** The shared compiled lineage [φ]. *)

val svc : t -> Fact.t -> Rational.t
(** Shapley value by conditioning the shared lineage (Claim A.1).
    @raise Invalid_argument if the fact is not endogenous. *)

val svc_all : t -> (Fact.t * Rational.t) list
(** Shapley values of all endogenous facts — one lineage compilation
    total, [n + 1] conditioned counts (the full polynomial once, then one
    conditioning per fact).  At [jobs > 1] the per-fact conditionings run
    on [jobs] domains with private caches and a deterministic merge; the
    result is identical to the [jobs = 1] output, in the same order. *)

val banzhaf : t -> Fact.t -> Rational.t
(** Banzhaf value from the same conditioned polynomials (two GMC totals).
    @raise Invalid_argument if the fact is not endogenous. *)

val banzhaf_all : t -> (Fact.t * Rational.t) list

val fgmc_polynomial : t -> Poly.Z.t
(** The FGMC generating polynomial of the unconditioned lineage, through
    the same shared cache. *)

val stats : t -> Stats.t
(** Projection of the engine's telemetry registry (plus the engine's own
    wall clocks) into the pinned {!Stats.t} shape; [span_s] carries
    {!Telemetry.aggregate} of the engine's tracer. *)

val telemetry : t -> Telemetry.t
(** The tracer given to (or created by) {!create}. *)

val shapley_of_polynomials :
  factorials:Bigint.t array ->
  with_mu_exo:Poly.Z.t ->
  without_mu:Poly.Z.t ->
  n:int ->
  Rational.t
(** The Claim A.1 arithmetic alone, against a caller-supplied factorial
    table ([factorials.(i) = i!], length [> n]).
    @raise Invalid_argument if the table is too small. *)
