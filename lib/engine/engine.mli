(** Batched, memoizing SVC evaluation engine.

    Computing all Shapley values of a database with per-fact {!Svc.svc}
    does [2n] full lineage compilations of the same query.  This engine
    compiles the lineage {e once} per (query, database) and derives each
    fact's two FGMC generating polynomials from the shared compiled form:
    [φ[μ:=1]] by {e conditioning} (exact because the size-generating
    polynomial depends only on the Boolean function), and [φ[μ:=0]] for
    free from the splitting identity
    [C(φ) = z·C(φ[μ:=1]) + C(φ[μ:=0])] against the full count [C(φ)]
    computed once.  Additionally:

    - all conditioned sub-formulas memoized in one shared, bounded,
      structurally-hashed cache ({!Compile.Memo}) — they overlap massively
      across facts;
    - the Shapley coefficients [j!(n-j-1)!/n!] read off a factorial table
      precomputed once ({!Bigint.factorial_table}).

    Every call is instrumented; see {!Stats}. *)

type t
(** A compiled engine for one (query, database) pair.  Mutable only in its
    instrumentation and cache; all answers are deterministic. *)

val create : ?cache_capacity:int -> Query.t -> Database.t -> t
(** Compiles the lineage (the single compilation of the engine's life).
    [cache_capacity] bounds the number of memoized sub-formulas (default
    [2{^20}]; results past the bound are recomputed, never wrong). *)

val query : t -> Query.t
val database : t -> Database.t

val lineage : t -> Bform.t
(** The shared compiled lineage [φ]. *)

val svc : t -> Fact.t -> Rational.t
(** Shapley value by conditioning the shared lineage (Claim A.1).
    @raise Invalid_argument if the fact is not endogenous. *)

val svc_all : t -> (Fact.t * Rational.t) list
(** Shapley values of all endogenous facts — one lineage compilation
    total, [n + 1] conditioned counts against the shared cache (the full
    polynomial once, then one conditioning per fact). *)

val banzhaf : t -> Fact.t -> Rational.t
(** Banzhaf value from the same conditioned polynomials (two GMC totals).
    @raise Invalid_argument if the fact is not endogenous. *)

val banzhaf_all : t -> (Fact.t * Rational.t) list

val fgmc_polynomial : t -> Poly.Z.t
(** The FGMC generating polynomial of the unconditioned lineage, through
    the same shared cache. *)

val stats : t -> Stats.t

val shapley_of_polynomials :
  factorials:Bigint.t array ->
  with_mu_exo:Poly.Z.t ->
  without_mu:Poly.Z.t ->
  n:int ->
  Rational.t
(** The Claim A.1 arithmetic alone, against a caller-supplied factorial
    table ([factorials.(i) = i!], length [> n]).
    @raise Invalid_argument if the table is too small. *)
