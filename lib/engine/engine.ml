(* Batched, memoizing SVC evaluation engine.

   [Svc.svc] (Claim A.1) recompiles the FGMC generating polynomial from
   scratch twice per fact: once for (Dₙ∖μ, Dₓ∪μ) and once for (Dₙ∖μ, Dₓ).
   But both databases have the same lineage as D up to the single variable
   μ: over S ⊆ Dₙ∖{μ},

     lineage(q, (Dₙ∖μ, Dₓ∪μ)) ≡ φ[μ := 1]
     lineage(q, (Dₙ∖μ, Dₓ))   ≡ φ[μ := 0]      where φ = lineage(q, D),

   and the size-generating polynomial depends only on the Boolean function,
   so conditioning the one shared compiled form is exact.  The engine
   therefore compiles φ once per (query, database) and answers every
   per-fact query by conditioning, with all conditioned sub-formulas
   memoized in one shared bounded cache (they overlap massively across
   facts), the φ[μ:=0] polynomial recovered from the full count by the
   splitting identity rather than a second conditioning, and the Shapley
   coefficients read off precomputed factorial tables.

   At [jobs > 1] the per-fact conditioning step — embarrassingly parallel,
   every fact's work reading only the shared immutable φ and the full
   polynomial — fans out across [jobs] domains through [Pool].  The fact
   array is cut into [jobs] static slices; slot i always evaluates slice i
   with its own private [Compile.Memo] (a Memo is an unsynchronized
   Hashtbl, so it must never be mutated from two domains), and each
   result lands at its original index, so values and order are
   bit-identical for every jobs count. *)

let now = Unix.gettimeofday

type backend =
  [ `Auto | `AutoLegacy | `Conditioning | `Circuit | `Sample of Sample.config ]

type t = {
  query : Query.t;
  db : Database.t;
  players : Fact.t array;
  n : int;
  jobs : int;
  cache_capacity : int;
  requested : backend; (* as asked — re-resolved after a delta update *)
  backend : [ `Conditioning | `Circuit | `Sample of Sample.config ];
  (* resolved *)
  auto_selected : bool; (* resolution picked `Circuit without being asked *)
  plan : Plan.t option; (* the compilation plan that steered resolution *)
  session : Circuit.Session.t option;
  (* shared compilation arena across delta updates; [None] until the
     first [update] (so one-shot engines keep their exporter output) *)
  phi : Bform.t;
  memo : Compile.Memo.t;
  factorials : Bigint.t array; (* 0! .. n! *)
  tel : Telemetry.t;
  compilations : Telemetry.Counter.t;
  conditionings : Telemetry.Counter.t;
  mutable full : Poly.Z.t option; (* count of phi over all n players *)
  mutable par : Stats.domain_stat array; (* last batched parallel run *)
  mutable compile_s : float;
  mutable eval_s : float;
  mutable circuit : Circuit.t option; (* compiled on first circuit answer *)
  mutable circuit_eval : (Poly.Z.t * (Fact.t, Poly.Z.t) Hashtbl.t) option;
  mutable circuit_compile_s : float;
  mutable circuit_traverse_s : float;
  mutable sample_shapley : Sample.report option; (* first sampled svc_all *)
  mutable sample_banzhaf : Sample.report option;
}

let default_cache_capacity = 1 lsl 20

(* The historical `Auto rule, kept verbatim behind `AutoLegacy: at this
   many endogenous facts the n conditionings of a batched run are
   expected to lose to one circuit compilation + two traversals.  The
   default `Auto now asks the compilation planner instead — it predicts
   the circuit size from the lineage's induced width, so a 24-fact
   instance with a dense co-occurrence graph no longer gets pushed into
   a blowing-up compilation.  Either way only the serial path
   auto-switches: the circuit evaluator is a whole-universe pass with
   nothing per-fact to fan out, so at jobs > 1 the user's ask for
   parallel conditioning wins. *)
let circuit_threshold = 24

let make ~tel ~cache_capacity ~jobs ~requested ~memo ~session ~prev_plan query
    db =
  (* registered here, in this order: record-field evaluation order is
     unspecified, and the registry's registration order is user-visible
     in exporter output *)
  let compilations = Telemetry.counter tel "engine.compilations" in
  let conditionings = Telemetry.counter tel "engine.conditionings" in
  Telemetry.Counter.incr compilations;
  let t0 = now () in
  let phi = Telemetry.span tel "engine.lineage" (fun () -> Lineage.lineage query db) in
  let compile_s = now () -. t0 in
  let players = Array.of_list (Database.endo_list db) in
  let n = Array.length players in
  (* The plan is computed exactly when something will read it: to steer
     an explicit circuit compilation, or to resolve a serial `Auto.  A
     parallel `Auto never plans, so jobs > 1 runs are span-for-span
     identical to the pre-planner engine.  After a delta update the
     previous plan seeds a component-local replan instead of a fresh
     analysis. *)
  let analyze () =
    match prev_plan with
    | Some previous -> fst (Plan.replan ~tel ~previous phi)
    | None -> Plan.analyze ~tel phi
  in
  let plan =
    match requested with
    | `Circuit -> Some (analyze ())
    | `Auto when jobs = 1 -> Some (analyze ())
    | `Auto | `AutoLegacy | `Conditioning | `Sample _ -> None
  in
  let resolved, auto_selected =
    match requested with
    | `Conditioning -> (`Conditioning, false)
    | `Circuit -> (`Circuit, false)
    (* never auto-selected: an approximate answer must be asked for *)
    | `Sample cfg -> Sample.validate cfg; (`Sample cfg, false)
    | `AutoLegacy ->
      if jobs = 1 && n >= circuit_threshold then (`Circuit, true)
      else (`Conditioning, false)
    | `Auto ->
      (match plan with
       | Some pl when Plan.recommend pl ~n_facts:n = `Circuit ->
         (`Circuit, true)
       | _ -> (`Conditioning, false))
  in
  {
    query;
    db;
    players;
    n;
    jobs;
    cache_capacity;
    requested;
    backend = resolved;
    auto_selected;
    plan;
    session;
    phi;
    memo =
      (match memo with
       | Some m -> m
       | None -> Compile.Memo.create ~capacity:cache_capacity ());
    factorials = Bigint.factorial_table n;
    tel;
    compilations;
    conditionings;
    full = None;
    par = [||];
    compile_s;
    eval_s = 0.;
    circuit = None;
    circuit_eval = None;
    circuit_compile_s = 0.;
    circuit_traverse_s = 0.;
    sample_shapley = None;
    sample_banzhaf = None;
  }

let create ?(tel = Telemetry.disabled ()) ?(cache_capacity = default_cache_capacity)
    ?(jobs = 1) ?(backend = `Auto) query db =
  let jobs =
    if jobs < 0 then invalid_arg "Engine.create: jobs must be >= 0"
    else if jobs = 0 then Pool.recommended_domains ()
    else jobs
  in
  make ~tel ~cache_capacity ~jobs ~requested:backend ~memo:None ~session:None
    ~prev_plan:None query db

type change = [ `Insert of [ `Endo | `Exo ] * Fact.t | `Delete of Fact.t ]

(* A delta update recompiles the lineage (cheap — the quadratic work is
   downstream) but carries over every reusable artifact: the shared memo
   (sound across formulas — a cached polynomial counts over exactly its
   formula's variables), the circuit session (hash-consed sub-circuits
   untouched by the change come back as the same nodes), and the plan
   (components the change did not touch replay their elimination
   orders).  The per-answer caches (full polynomial, circuit evaluation,
   sample reports) are invalidated wholesale by building a fresh [t]. *)
let update t change =
  Telemetry.span t.tel "engine.update" @@ fun () ->
  Telemetry.Counter.incr (Telemetry.counter t.tel "engine.updates");
  let db =
    match change with
    | `Insert (part, f) ->
      if Database.mem f t.db then
        invalid_arg "Engine.update: inserted fact is already present";
      (match part with
       | `Endo -> Database.add_endo f t.db
       | `Exo -> Database.add_exo f t.db)
    | `Delete f ->
      if not (Database.mem f t.db) then
        invalid_arg "Engine.update: deleted fact is not present";
      Database.remove f t.db
  in
  let session =
    match t.session with
    | Some s -> s
    | None ->
      let s = Circuit.Session.create () in
      (* a circuit compiled before the first update joins the arena so
         the very next compile already reuses its nodes *)
      (match t.circuit with
       | Some c -> Circuit.session_adopt s c
       | None -> ());
      s
  in
  make ~tel:t.tel ~cache_capacity:t.cache_capacity ~jobs:t.jobs
    ~requested:t.requested ~memo:(Some t.memo) ~session:(Some session)
    ~prev_plan:t.plan t.query db

let query t = t.query
let database t = t.db
let lineage t = t.phi
let jobs t = t.jobs
let backend t = t.backend
let requested_backend t = t.requested
let auto_selected t = t.auto_selected
let plan t = t.plan

let circuit_reused_nodes t =
  match t.circuit with Some c -> Circuit.reused_nodes c | None -> 0

(* The Claim A.1 arithmetic with the factorials shared across terms:
   Sh(μ) = Σ_j j!(n-j-1)!/n! · (FGMC_j(Dₙ∖μ, Dₓ∪μ) - FGMC_j(Dₙ∖μ, Dₓ)). *)
let shapley_of_polynomials ~factorials ~with_mu_exo ~without_mu ~n =
  if Array.length factorials <= n then
    invalid_arg "Engine.shapley_of_polynomials: factorial table too small";
  (* Every term of Claim A.1 shares the denominator n!, so accumulate one
     integer numerator and normalize a single rational at the end. *)
  let num = ref Bigint.zero in
  for j = 0 to n - 1 do
    let delta =
      Bigint.sub (Poly.Z.coeff with_mu_exo j) (Poly.Z.coeff without_mu j)
    in
    if not (Bigint.is_zero delta) then
      num :=
        Bigint.add !num
          (Bigint.mul (Bigint.mul factorials.(j) factorials.(n - j - 1)) delta)
  done;
  Rational.make !num factorials.(n)

let conditioned t mu b ~universe =
  Telemetry.Counter.incr t.conditionings;
  Compile.size_polynomial_with ~memo:t.memo ~universe
    (Bform.condition mu b t.phi)

(* The circuit backend: compile the lineage into a d-DNNF once, then one
   bottom-up + one top-down traversal reads every fact's [with_mu_exo]
   polynomial (and the full count) off the circuit — zero per-fact
   conditionings.  Both steps are lazy and cached, so every entry point
   ([svc], [svc_all], [banzhaf], [fgmc_polynomial]) shares them. *)
let circuit_of t =
  match t.circuit with
  | Some c -> c
  | None ->
    let t0 = now () in
    let c =
      Circuit.compile ~tel:t.tel ?plan:t.plan ~cache_capacity:t.cache_capacity
        ?session:t.session t.phi
    in
    t.circuit_compile_s <- t.circuit_compile_s +. (now () -. t0);
    t.circuit <- Some c;
    c

let circuit_evaluation t =
  match t.circuit_eval with
  | Some e -> e
  | None ->
    let c = circuit_of t in
    let t0 = now () in
    let ev = Circuit.evaluate ~tel:t.tel c ~universe:(Array.to_list t.players) in
    t.circuit_traverse_s <- t.circuit_traverse_s +. (now () -. t0);
    let tbl = Hashtbl.create (max 16 (Array.length ev.Circuit.by_fact)) in
    Array.iter (fun (f, p) -> Hashtbl.replace tbl f p) ev.Circuit.by_fact;
    t.full <- Some ev.Circuit.full;
    let e = (ev.Circuit.full, tbl) in
    t.circuit_eval <- Some e;
    e

(* C(φ, U), the size polynomial of the unconditioned lineage over all n
   players, computed once and reused by every per-fact query. *)
let full_polynomial t =
  match t.full with
  | Some p -> p
  | None ->
    (match t.backend with
     | `Circuit -> fst (circuit_evaluation t)
     (* the sample backend only approximates Shapley/Banzhaf values; an
        explicit ask for the FGMC polynomial stays exact via the
        conditioning path *)
     | `Conditioning | `Sample _ ->
       Telemetry.Counter.incr t.conditionings;
       let p =
         Telemetry.span t.tel "engine.full" (fun () ->
             Compile.size_polynomial_with ~memo:t.memo
               ~universe:(Array.to_list t.players) t.phi)
       in
       t.full <- Some p;
       p)

(* Splitting C(φ, U) by membership of μ gives the exact identity
     C(φ, U) = z·C(φ[μ:=1], U∖{μ}) + C(φ[μ:=0], U∖{μ}),
   so a single conditioning per fact suffices: the [without_mu] polynomial
   is recovered from the shared full count by a polynomial subtraction.
   The circuit backend reads [with_mu_exo] off the shared evaluation
   instead — the same identity then applies verbatim. *)
let polynomials t mu =
  match t.backend with
  | `Conditioning | `Sample _ ->
    let full = full_polynomial t in
    let universe =
      List.filter (fun f -> not (Fact.equal f mu)) (Array.to_list t.players)
    in
    let with_mu_exo = conditioned t mu true ~universe in
    let without_mu = Poly.Z.sub full (Poly.Z.shift 1 with_mu_exo) in
    (with_mu_exo, without_mu)
  | `Circuit ->
    let full, by_fact = circuit_evaluation t in
    let with_mu_exo = Hashtbl.find by_fact mu in
    let without_mu = Poly.Z.sub full (Poly.Z.shift 1 with_mu_exo) in
    (with_mu_exo, without_mu)

(* The sample backend: one anytime estimation pass answers every fact at
   once (Shapley and Banzhaf reports cached independently).  The run is a
   deterministic function of (lineage, universe, config) — in particular
   [jobs] plays no part, so values are bit-identical at every jobs count
   by construction rather than by a parallel-merge argument. *)
let sample_run t cfg ~which =
  let cached =
    match which with
    | `Shapley -> t.sample_shapley
    | `Banzhaf -> t.sample_banzhaf
  in
  match cached with
  | Some r -> r
  | None ->
    let t0 = now () in
    let universe = Array.to_list t.players in
    let r =
      match which with
      | `Shapley -> Sample.shapley ~tel:t.tel cfg ~universe t.phi
      | `Banzhaf -> Sample.banzhaf ~tel:t.tel cfg ~universe t.phi
    in
    t.eval_s <- t.eval_s +. (now () -. t0);
    (match which with
     | `Shapley -> t.sample_shapley <- Some r
     | `Banzhaf -> t.sample_banzhaf <- Some r);
    r

(* estimates are stored in players order, so mu's slot is its index *)
let sample_estimate t cfg ~which mu =
  let r = sample_run t cfg ~which in
  let rec find i =
    if i >= t.n then invalid_arg "Engine: fact is not endogenous"
    else if Fact.equal t.players.(i) mu then r.Sample.estimates.(i)
    else find (i + 1)
  in
  find 0

let sample_values t cfg ~which =
  let r = sample_run t cfg ~which in
  Array.to_list
    (Array.map (fun e -> (e.Sample.fact, e.Sample.value)) r.Sample.estimates)

(* Per-fact span; the attribute list is only built when someone will read
   it, so the disabled-tracer path stays allocation-free. *)
let fact_span t mu f =
  if Telemetry.enabled t.tel then
    Telemetry.span t.tel ~attrs:[ ("fact", Fact.to_string mu) ] "engine.fact" f
  else f ()

let svc t mu =
  if not (Database.mem_endo mu t.db) then
    invalid_arg "Engine.svc: fact is not endogenous";
  match t.backend with
  | `Sample cfg -> (sample_estimate t cfg ~which:`Shapley mu).Sample.value
  | `Conditioning | `Circuit ->
    let t0 = now () in
    let v =
      fact_span t mu (fun () ->
          let with_mu_exo, without_mu = polynomials t mu in
          shapley_of_polynomials ~factorials:t.factorials ~with_mu_exo
            ~without_mu ~n:t.n)
    in
    t.eval_s <- t.eval_s +. (now () -. t0);
    v

(* The parallel batched path: fan the per-fact conditioning out across
   [t.jobs] domains.  Slot i owns the static slice [i·n/jobs, (i+1)·n/jobs)
   of the fact array and a private memo cache; the pool decides which
   domain runs which slot (stealing slots off slow siblings), which can
   change the steal counters but — by slice/cache ownership — never the
   per-slot counters, let alone a value.  Workers touch no engine state:
   they read the immutable φ, players and full polynomial, and everything
   mutable is merged in the calling domain after the join. *)
let batched_parallel t ~value_of =
  let t0 = now () in
  let full = full_polynomial t in
  let n = t.n and jobs = t.jobs in
  let all_players = Array.to_list t.players in
  (* One trace track per worker slot: slice spans land on the lane of the
     slot that owns them, giving the Chrome view one row per domain.
     Forked here (the owning domain), handed to exactly one worker each,
     joined back after the pool's own Domain.joins. *)
  let slot_tels =
    Array.init jobs (fun slot ->
        Telemetry.fork t.tel ~track:(slot + 1)
          ~name:(Printf.sprintf "domain %d" slot))
  in
  let evaluate_slot slot =
    let lo = slot * n / jobs and hi = (slot + 1) * n / jobs in
    let stel = slot_tels.(slot) in
    Telemetry.span stel
      ~attrs:
        (if Telemetry.enabled stel then
           [ ("slot", string_of_int slot);
             ("facts", string_of_int (hi - lo)) ]
         else [])
      "engine.slice"
    @@ fun () ->
    (* Warm-start the private cache from the engine's shared one, which
       already holds every sub-result of the full polynomial and is
       read-only for the duration of the fan-out (copying is sound from
       any domain while nobody mutates the source).  Cold caches would
       redo the shared prefix of the work once per domain — measured at
       ~2x total compute on the bipartite family, i.e. half the speedup
       gone. *)
    let memo = Compile.Memo.copy t.memo in
    let values =
      Array.init (hi - lo) (fun k ->
          let mu = t.players.(lo + k) in
          let universe =
            List.filter (fun f -> not (Fact.equal f mu)) all_players
          in
          let with_mu_exo =
            Compile.size_polynomial_with ~memo ~universe
              (Bform.condition mu true t.phi)
          in
          let without_mu = Poly.Z.sub full (Poly.Z.shift 1 with_mu_exo) in
          (mu, value_of ~with_mu_exo ~without_mu))
    in
    (values, hi - lo, Compile.Memo.hits memo, Compile.Memo.misses memo)
  in
  let pool = Pool.create ~domains:jobs in
  let slots, pool_stats =
    Pool.map_stats ~chunk:1 pool evaluate_slot (Array.init jobs Fun.id)
  in
  Array.iter (fun stel -> Telemetry.join t.tel stel) slot_tels;
  Telemetry.Counter.add t.conditionings n;
  let merged =
    Telemetry.span t.tel "engine.merge" (fun () ->
        t.par <-
          Array.mapi
            (fun i (_, facts, hits, misses) ->
               { Stats.d_facts = facts; d_hits = hits; d_misses = misses;
                 d_steals = pool_stats.Pool.steals.(i) })
            slots;
        Array.to_list
          (Array.concat
             (List.map (fun (vs, _, _, _) -> vs) (Array.to_list slots))))
  in
  t.eval_s <- t.eval_s +. (now () -. t0);
  merged

let shapley_value_of t ~with_mu_exo ~without_mu =
  shapley_of_polynomials ~factorials:t.factorials ~with_mu_exo ~without_mu
    ~n:t.n

let banzhaf_value_of t ~with_mu_exo ~without_mu =
  let delta = Bigint.sub (Poly.Z.total with_mu_exo) (Poly.Z.total without_mu) in
  Rational.make delta (Bigint.pow Bigint.two (t.n - 1))

let svc_all t =
  Telemetry.span t.tel "engine.eval" @@ fun () ->
  match t.backend with
  | `Sample cfg -> sample_values t cfg ~which:`Shapley
  | `Conditioning when t.jobs > 1 ->
    batched_parallel t ~value_of:(shapley_value_of t)
  | `Conditioning | `Circuit ->
    Array.to_list (Array.map (fun f -> (f, svc t f)) t.players)

let banzhaf t mu =
  if not (Database.mem_endo mu t.db) then
    invalid_arg "Engine.banzhaf: fact is not endogenous";
  match t.backend with
  | `Sample cfg -> (sample_estimate t cfg ~which:`Banzhaf mu).Sample.value
  | `Conditioning | `Circuit ->
    let t0 = now () in
    let v =
      fact_span t mu (fun () ->
          let with_mu_exo, without_mu = polynomials t mu in
          banzhaf_value_of t ~with_mu_exo ~without_mu)
    in
    t.eval_s <- t.eval_s +. (now () -. t0);
    v

let banzhaf_all t =
  Telemetry.span t.tel "engine.eval" @@ fun () ->
  match t.backend with
  | `Sample cfg -> sample_values t cfg ~which:`Banzhaf
  | `Conditioning when t.jobs > 1 ->
    batched_parallel t ~value_of:(banzhaf_value_of t)
  | `Conditioning | `Circuit ->
    Array.to_list (Array.map (fun f -> (f, banzhaf t f)) t.players)

let fgmc_polynomial t = full_polynomial t

let telemetry t = t.tel

let sample_report t =
  match t.sample_shapley with Some r -> Some r | None -> t.sample_banzhaf

let stats t =
  let sample_strategy, sample_seed, sample_epsilon, sample_confidence =
    match t.backend with
    | `Sample cfg ->
      (Sample.strategy_to_string cfg.Sample.strategy, cfg.Sample.seed,
       Rational.to_string cfg.Sample.epsilon,
       Rational.to_string cfg.Sample.confidence)
    | `Conditioning | `Circuit -> ("", 0, "0", "0")
  in
  let sample_draws, sample_exact_strata, sample_sampled_strata, sample_max_hw,
      sample_converged =
    match sample_report t with
    | Some r ->
      ( r.Sample.total_draws,
        Array.fold_left
          (fun a e -> a + e.Sample.exact_strata)
          0 r.Sample.estimates,
        Array.fold_left
          (fun a e -> a + e.Sample.sampled_strata)
          0 r.Sample.estimates,
        Rational.to_string r.Sample.max_half_width,
        r.Sample.all_converged )
    | None -> (0, 0, 0, "0", false)
  in
  {
    Stats.players = t.n;
    compilations = Telemetry.Counter.value t.compilations;
    conditionings = Telemetry.Counter.value t.conditionings;
    cache_hits = Compile.Memo.hits t.memo;
    cache_misses = Compile.Memo.misses t.memo;
    cache_size = Compile.Memo.length t.memo;
    cache_capacity = Compile.Memo.capacity t.memo;
    cache_drops = Compile.Memo.drops t.memo;
    poly_ops = Compile.Memo.poly_ops t.memo;
    jobs = t.jobs;
    domains = t.par;
    compile_s = t.compile_s;
    eval_s = t.eval_s;
    backend = (match t.backend with
        | `Conditioning -> "conditioning"
        | `Circuit -> "circuit"
        | `Sample _ -> "sample");
    circuit_nodes = (match t.circuit with
        | Some c -> Circuit.node_count c
        | None -> 0);
    circuit_edges = (match t.circuit with
        | Some c -> Circuit.edge_count c
        | None -> 0);
    circuit_smoothing = (match t.circuit with
        | Some c -> Circuit.smoothing_nodes c
        | None -> 0);
    circuit_cache_hits = (match t.circuit with
        | Some c -> Circuit.cache_hits c
        | None -> 0);
    circuit_cache_misses = (match t.circuit with
        | Some c -> Circuit.cache_misses c
        | None -> 0);
    circuit_cache_drops = (match t.circuit with
        | Some c -> Circuit.cache_drops c
        | None -> 0);
    circuit_compile_s = t.circuit_compile_s;
    circuit_traverse_s = t.circuit_traverse_s;
    sample_strategy;
    sample_seed;
    sample_draws;
    sample_exact_strata;
    sample_sampled_strata;
    sample_max_hw;
    sample_epsilon;
    sample_confidence;
    sample_converged;
    span_s = Telemetry.aggregate t.tel;
  }
