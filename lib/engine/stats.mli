(** Instrumentation record of a batched SVC {!Engine} run.

    Counters:
    - [compilations]: lineage compilations performed (the engine's whole
      point is that this stays at [1] per (query, database));
    - [conditionings]: size-polynomial evaluations against the engine's
      caches ([n + 1] for a full [svc_all] at {e any} jobs count: the
      unconditioned polynomial once, then [φ[μ:=1]] once per fact —
      [φ[μ:=0]] comes from the splitting identity without a count);
    - [cache_*]: the engine's own {!Compile.Memo} counters (hits, misses,
      retained entries, capacity, results dropped at capacity).  At
      [jobs > 1] this cache only serves the serial phases (the full
      polynomial and any per-fact calls made outside a batched run);
    - [poly_ops]: polynomial ring operations charged to the engine's own
      cache;
    - [jobs] / [domains]: the configured worker count and one
      {!domain_stat} per worker slot of the last batched run ([[||]]
      until a batched run happens at [jobs > 1]);
    - [compile_s] / [eval_s]: wall-clock seconds per phase (lineage
      compilation vs per-fact evaluation);
    - [backend]: ["conditioning"] or ["circuit"] — which evaluation
      strategy the engine resolved to;
    - [circuit_*]: the knowledge-compilation backend's metrics (all zero
      under the conditioning backend): live d-DNNF node/edge counts,
      nodes spent on smoothing gadgets, the formula→node memo cache
      counters, and the compile vs traverse wall clock.

    Determinism: for a given (query, database, jobs, capacity, backend),
    every field is deterministic {e except} the four wall-clock fields and
    the per-domain [d_steals] (which record scheduling choices).
    {!normalize} zeroes exactly those, so two runs of the same workload
    must satisfy
    [normalize s1 = normalize s2] — the regression test for the
    deterministic-merge contract.  The per-slot [d_facts]/[d_hits]/
    [d_misses] are deterministic because work slices are assigned to
    slots statically, whatever domain ends up running each slice. *)

type domain_stat = {
  d_facts : int;  (** endogenous facts evaluated by this worker slot *)
  d_hits : int;  (** this slot's private cache hits *)
  d_misses : int;  (** this slot's private cache misses *)
  d_steals : int;
      (** chunks this worker claimed beyond its first
          (scheduling-dependent; zeroed by {!normalize}) *)
}

type t = {
  players : int;
  compilations : int;
  conditionings : int;
  cache_hits : int;
  cache_misses : int;
  cache_size : int;
  cache_capacity : int;
  cache_drops : int;
  poly_ops : int;
  jobs : int;
  domains : domain_stat array;
  compile_s : float;
  eval_s : float;
  backend : string;
  circuit_nodes : int;
  circuit_edges : int;
  circuit_smoothing : int;
  circuit_cache_hits : int;
  circuit_cache_misses : int;
  circuit_cache_drops : int;
  circuit_compile_s : float;
  circuit_traverse_s : float;
  sample_strategy : string;
      (** ["mc"] / ["stratified"] / ["hybrid"] under the sample backend,
          [""] otherwise (the [sample_*] fields are only meaningful when
          [backend = "sample"]) *)
  sample_seed : int;
  sample_draws : int;  (** {!Sample.report.total_draws} of the last run *)
  sample_exact_strata : int;
      (** strata enumerated exactly, summed over facts *)
  sample_sampled_strata : int;
  sample_max_hw : string;
      (** exact rational string of the largest reported CI half-width *)
  sample_epsilon : string;  (** the configured target, exact rational *)
  sample_confidence : string;
  sample_converged : bool;
      (** every fact's half-width hit the [epsilon] target in budget *)
  span_s : (string * int * float) array;
      (** telemetry span rollup: (span name, completions, total seconds),
          sorted by name — [Telemetry.aggregate] of the run's tracer.
          Empty when the engine ran without an enabled tracer.  Not part
          of {!to_json} (the pinned JSON shape predates telemetry). *)
}

val zero : t

val par_facts : t -> int
(** Sum of [d_facts] over {!field-t.domains}; likewise below. *)

val par_hits : t -> int
val par_misses : t -> int
val par_steals : t -> int

val normalize : t -> t
(** The deterministic projection: wall-clock fields ([compile_s],
    [eval_s], [circuit_compile_s], [circuit_traverse_s]), per-domain
    steal counts, and the durations inside [span_s] zeroed (span {e
    counts} are deterministic and kept), everything else untouched.  Two
    runs of the same (query, database, jobs, capacity, backend) produce
    structurally equal normalized records. *)

val to_string : t -> string
(** Multi-line human-readable block (the [svc eval --stats] output).  At
    [jobs > 1] a [parallel] line reports the per-domain counters summed;
    under the circuit backend, [backend]/[circuit]/[circuit cache] lines
    and the circuit wall-clock lines are appended (every wall-clock line
    ends in [time  : …ms] so one mask covers them all).  When [span_s]
    is non-empty a [spans:] block is appended, one [time  : …ms] line
    per span name. *)

val to_json : t -> string
(** One-line JSON object with stable field names ([players],
    [compilations], [conditionings], [cache_hits], [cache_misses],
    [cache_size], [cache_capacity] (JSON [null] when unbounded),
    [cache_drops], [poly_ops], [jobs], [par_facts], [par_cache_hits],
    [par_cache_misses], [par_steals], [compile_ms], [eval_ms],
    [backend], [circuit_nodes], [circuit_edges], [circuit_smoothing],
    [circuit_cache_hits], [circuit_cache_misses], [circuit_cache_drops],
    [circuit_compile_ms], [circuit_traverse_ms], [sample_strategy],
    [sample_seed], [sample_draws], [sample_exact_strata],
    [sample_sampled_strata], [sample_max_hw], [sample_epsilon],
    [sample_confidence], [sample_converged]).  The [par_*] fields
    aggregate the per-domain counters (all [0] at [jobs = 1]); the
    [circuit_*] fields are all [0] under the conditioning backend; the
    [sample_*] fields are at their {!zero} defaults unless
    [backend = "sample"] — all deterministic given the seed, so none is
    masked by {!normalize}. *)

val pp : Format.formatter -> t -> unit
