(** Instrumentation record of a batched SVC {!Engine} run.

    Counters:
    - [compilations]: lineage compilations performed (the engine's whole
      point is that this stays at [1] per (query, database));
    - [conditionings]: size-polynomial evaluations against the shared
      cache ([n + 1] for a full [svc_all]: the unconditioned polynomial
      once, then [φ[μ:=1]] once per fact — [φ[μ:=0]] comes from the
      splitting identity without a count);
    - [cache_*]: the shared {!Compile.Memo} counters (hits, misses,
      retained entries, capacity, results dropped at capacity);
    - [poly_ops]: polynomial ring operations performed by the counter;
    - [compile_s] / [eval_s]: wall-clock seconds per phase (lineage
      compilation vs per-fact evaluation).

    All counters are deterministic for a given (query, database); only the
    two wall-clock fields vary between runs. *)

type t = {
  players : int;
  compilations : int;
  conditionings : int;
  cache_hits : int;
  cache_misses : int;
  cache_size : int;
  cache_capacity : int;
  cache_drops : int;
  poly_ops : int;
  compile_s : float;
  eval_s : float;
}

val zero : t

val to_string : t -> string
(** Multi-line human-readable block (the [svc eval --stats] output). *)

val to_json : t -> string
(** One-line JSON object with stable field names ([players],
    [compilations], [conditionings], [cache_hits], [cache_misses],
    [cache_size], [cache_capacity] (JSON [null] when unbounded),
    [cache_drops], [poly_ops], [compile_ms], [eval_ms]). *)

val pp : Format.formatter -> t -> unit
