(** Arbitrary-precision signed integers.

    The Shapley value formulas of the paper involve factorials of the number
    of endogenous facts, and the reductions of Lemmas 4.1/4.3/4.4 invert
    linear systems whose entries are products of factorials.  Native 63-bit
    integers overflow at [21!], so all counting and Shapley computations in
    this library are carried out with this module (the sealed build
    environment provides no [zarith]).

    Representation: adaptive two-tier.  Values whose magnitude fits in 62
    bits are carried as a tagged native [int] (the overwhelming majority of
    intermediates on the conditioning / circuit-sweep hot paths); anything
    larger transparently promotes to a sign + magnitude form in base
    [2{^24}] limbs, and demotes again the moment a result shrinks back
    under the boundary.  The canonical-form invariant (small iff it fits)
    is maintained by every operation, so there is exactly one
    representation per value — in particular one zero.  All operations are
    purely functional. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int : t -> int
(** [to_int n] is the value of [n] as a native [int].
    @raise Failure if [n] does not fit in an OCaml [int]. *)

val to_int_opt : t -> int option

val of_string : string -> t
(** Parses an optionally ['-']-prefixed decimal numeral.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal representation, with a leading ['-'] when negative. *)

val to_float : t -> float
(** Best-effort conversion; large values lose precision or become infinite. *)

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Value hash: two numerically equal values hash identically regardless of
    which internal tier holds them (both tiers fold the same normalized
    limb sequence). *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val lt : t -> t -> bool
val leq : t -> t -> bool
val gt : t -> t -> bool
val geq : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|], and [r]
    carrying the sign of [a] (truncated division, as for OCaml's [/]).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val divexact : t -> t -> t
(** [divexact a b] is [a / b] when the division is known to be exact.
    @raise Invalid_argument if [b] does not divide [a]. *)

val pow : t -> int -> t
(** [pow b e] for [e >= 0]. @raise Invalid_argument on negative exponent. *)

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative, [gcd 0 0 = 0]. *)

val isqrt : t -> t
(** [isqrt n] is [⌊√n⌋] (Newton's method) — the exact integer anchor under
    {!Rational.sqrt_upper}, i.e. under every confidence half-width the
    sampling engine reports.  @raise Invalid_argument on negative input. *)

(** {1 Combinatorics} *)

val factorial : int -> t
(** [factorial n] is [n!]. @raise Invalid_argument on negative input. *)

val factorial_table : int -> t array
(** [factorial_table n] is [[| 0!; 1!; …; n! |]], built with one running
    product — the shared table behind the Shapley coefficient loops, which
    would otherwise recompute each factorial from scratch per term.
    @raise Invalid_argument on negative input. *)

val binomial_row : int -> t array
(** [binomial_row n] is row [n] of Pascal's triangle,
    [[| C(n,0); …; C(n,n) |]]. @raise Invalid_argument on negative input. *)

val binomial : int -> int -> t
(** [binomial n k] is [n choose k] ([zero] when [k < 0] or [k > n]). *)

val falling_factorial : int -> int -> t
(** [falling_factorial n k] is [n (n-1) ... (n-k+1)]. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
  val ( ~- ) : t -> t
end

(** {1 Test hooks}

    The cross-representation differential battery (test/test_bigint.ml)
    and the arith microbench need to force values onto the magnitude-array
    tier and to observe which tier a result landed on.  Nothing in the
    library itself uses these. *)

module For_tests : sig
  val force_big : t -> t
  (** Same value, re-represented on the magnitude-array tier even when it
      fits the small tier (a deliberately non-canonical view; all public
      operations accept it and still return canonical results). *)

  val is_small : t -> bool
  (** [true] iff the value is currently held on the tagged-int tier. *)

  val canonical : t -> bool
  (** Checks the canonical-form invariant: small iff the magnitude fits in
      62 bits, no [min_int] payload, normalized magnitude, exact sign. *)

  val add_ref : t -> t -> t
  val sub_ref : t -> t -> t

  val mul_ref : t -> t -> t
  (** Pure magnitude-path reference computations: compute through the
      big-tier code regardless of operand size and return a forced-big
      result.  The differential suites and the [bench arith] forced-big
      baseline are built from these. *)
end
