module type Ring = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val mul : t -> t -> t
  val neg : t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module type S = sig
  type coeff
  type t

  val zero : t
  val one : t
  val x : t
  val constant : coeff -> t
  val monomial : coeff -> int -> t
  val of_coeffs : coeff list -> t
  val coeff : t -> int -> coeff
  val coeffs : t -> coeff array
  val degree : t -> int
  val is_zero : t -> bool
  val equal : t -> t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val scale : coeff -> t -> t
  val shift : int -> t -> t
  val eval : t -> coeff -> coeff
  val sum : t list -> t
  val pp : Format.formatter -> t -> unit

  type acc

  val acc_create : int -> acc
  val acc_clear : acc -> unit
  val acc_add : acc -> t -> unit
  val acc_add_scaled : acc -> coeff -> int -> t -> unit
  val acc_total : acc -> t

  module For_tests : sig
    val of_list_reference : coeff list -> t
  end
end

module Make (R : Ring) : S with type coeff = R.t = struct
  type coeff = R.t

  (* Dense little-endian coefficient array with no trailing zeros.  The
     flat representation keeps the hot kernels (add / scale / shift and
     the accumulator below) as single passes over contiguous arrays, with
     the leading-coefficient analysis deciding when a normalization copy
     can be skipped entirely. *)
  type t = coeff array

  let norm (a : t) : t =
    let n = ref (Array.length a) in
    while !n > 0 && R.equal a.(!n - 1) R.zero do decr n done;
    if !n = Array.length a then a else Array.sub a 0 !n

  let zero = [||]
  let constant c = norm [| c |]
  let one = constant R.one

  let monomial c k =
    if k < 0 then invalid_arg "Poly.monomial: negative degree";
    if R.equal c R.zero then zero
    else begin
      let a = Array.make (k + 1) R.zero in
      a.(k) <- c;
      a
    end

  let x = monomial R.one 1
  let of_coeffs cs = norm (Array.of_list cs)
  let coeff p j = if j < 0 || j >= Array.length p then R.zero else p.(j)
  let coeffs p = Array.copy p
  let degree p = Array.length p - 1
  let is_zero p = Array.length p = 0

  let equal p q =
    Array.length p = Array.length q
    && (let ok = ref true in
        Array.iteri (fun i c -> if not (R.equal c q.(i)) then ok := false) p;
        !ok)

  (* Unequal lengths cannot cancel the leading coefficient, so the longer
     operand's tail is blitted and no normalization pass is needed. *)
  let add p q =
    let lp = Array.length p and lq = Array.length q in
    if lp = 0 then q
    else if lq = 0 then p
    else if lp = lq then begin
      let r = Array.make lp R.zero in
      for i = 0 to lp - 1 do r.(i) <- R.add p.(i) q.(i) done;
      norm r
    end
    else begin
      let long, short = if lp > lq then (p, q) else (q, p) in
      let ll = Array.length long and ls = Array.length short in
      let r = Array.make ll R.zero in
      for i = 0 to ls - 1 do r.(i) <- R.add long.(i) short.(i) done;
      Array.blit long ls r ls (ll - ls);
      r
    end

  let neg p = Array.map R.neg p

  let sub p q =
    let lp = Array.length p and lq = Array.length q in
    if lq = 0 then p
    else begin
      let lr = Stdlib.max lp lq in
      let r = Array.make lr R.zero in
      for i = 0 to lr - 1 do
        let a = if i < lp then p.(i) else R.zero in
        let b = if i < lq then q.(i) else R.zero in
        r.(i) <- R.add a (R.neg b)
      done;
      if lp > lq then r else norm r
    end

  let mul p q =
    let lp = Array.length p and lq = Array.length q in
    if lp = 0 || lq = 0 then zero
    else begin
      let r = Array.make (lp + lq - 1) R.zero in
      for i = 0 to lp - 1 do
        let pi = p.(i) in
        if not (R.equal pi R.zero) then
          for j = 0 to lq - 1 do
            r.(i + j) <- R.add r.(i + j) (R.mul pi q.(j))
          done
      done;
      norm r
    end

  let scale c p =
    if R.equal c R.zero then zero
    else if R.equal c R.one then p
    else begin
      let r = Array.make (Array.length p) R.zero in
      for i = 0 to Array.length p - 1 do r.(i) <- R.mul c p.(i) done;
      norm r
    end

  let shift k p =
    if k < 0 then invalid_arg "Poly.shift: negative shift";
    if is_zero p then zero
    else Array.append (Array.make k R.zero) p

  let eval p v =
    let acc = ref R.zero in
    for i = Array.length p - 1 downto 0 do
      acc := R.add (R.mul !acc v) p.(i)
    done;
    !acc

  (* In-place accumulation: one growable coefficient buffer absorbing a
     whole sequence of (scaled, shifted) polynomials with no intermediate
     allocation — the shape of the conditioning merge and of the
     bottom-up circuit sweep.  [len] counts the valid prefix; slots at or
     beyond it are [R.zero]. *)
  type acc = { mutable buf : coeff array; mutable len : int }

  let acc_create hint =
    { buf = Array.make (Stdlib.max 1 hint) R.zero; len = 0 }

  let acc_clear a =
    Array.fill a.buf 0 a.len R.zero;
    a.len <- 0

  let acc_ensure a n =
    if n > Array.length a.buf then begin
      let nbuf = Array.make (Stdlib.max n (2 * Array.length a.buf)) R.zero in
      Array.blit a.buf 0 nbuf 0 a.len;
      a.buf <- nbuf
    end

  let acc_add_scaled a c k p =
    if k < 0 then invalid_arg "Poly.acc_add_scaled: negative shift";
    let lp = Array.length p in
    if lp > 0 && not (R.equal c R.zero) then begin
      acc_ensure a (lp + k);
      if lp + k > a.len then a.len <- lp + k;
      let buf = a.buf in
      if R.equal c R.one then
        for i = 0 to lp - 1 do buf.(i + k) <- R.add buf.(i + k) p.(i) done
      else
        for i = 0 to lp - 1 do buf.(i + k) <- R.add buf.(i + k) (R.mul c p.(i)) done
    end

  let acc_add a p = acc_add_scaled a R.one 0 p

  let acc_total a = norm (Array.sub a.buf 0 a.len)

  let sum ps =
    match ps with
    | [] -> zero
    | [ p ] -> p
    | ps ->
      let cap =
        List.fold_left (fun m p -> Stdlib.max m (Array.length p)) 1 ps
      in
      let a = acc_create cap in
      List.iter (fun p -> acc_add a p) ps;
      acc_total a

  let pp fmt p =
    if is_zero p then Format.pp_print_string fmt "0"
    else begin
      let first = ref true in
      Array.iteri
        (fun i c ->
           if not (R.equal c R.zero) then begin
             if not !first then Format.pp_print_string fmt " + ";
             first := false;
             if i = 0 then R.pp fmt c
             else if R.equal c R.one then Format.fprintf fmt "z^%d" i
             else Format.fprintf fmt "%a·z^%d" R.pp c i
           end)
        p
    end

  module For_tests = struct
    (* Reference construction along the pre-flat-array shape: a fold of
       one monomial per position through the generic [add].  The
       differential suite pins [of_coeffs] (single dense pass) against
       this. *)
    let of_list_reference cs =
      let p, _ =
        List.fold_left
          (fun (acc, i) c -> (add acc (monomial c i), i + 1))
          (zero, 0) cs
      in
      p
  end
end

module Bigint_ring = struct
  type t = Bigint.t

  let zero = Bigint.zero
  let one = Bigint.one
  let add = Bigint.add
  let mul = Bigint.mul
  let neg = Bigint.neg
  let equal = Bigint.equal
  let pp = Bigint.pp
end

module Rational_ring = struct
  type t = Rational.t

  let zero = Rational.zero
  let one = Rational.one
  let add = Rational.add
  let mul = Rational.mul
  let neg = Rational.neg
  let equal = Rational.equal
  let pp = Rational.pp
end

module Z = struct
  include Make (Bigint_ring)

  let eval_rational p v =
    let acc = ref Rational.zero in
    let cs = coeffs p in
    for i = Array.length cs - 1 downto 0 do
      acc := Rational.add (Rational.mul !acc v) (Rational.of_bigint cs.(i))
    done;
    !acc

  let total p = eval p Bigint.one
end

module Q = Make (Rational_ring)
