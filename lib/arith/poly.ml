module type Ring = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val mul : t -> t -> t
  val neg : t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module type S = sig
  type coeff
  type t

  val zero : t
  val one : t
  val x : t
  val constant : coeff -> t
  val monomial : coeff -> int -> t
  val of_coeffs : coeff list -> t
  val coeff : t -> int -> coeff
  val coeffs : t -> coeff array
  val degree : t -> int
  val is_zero : t -> bool
  val equal : t -> t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val scale : coeff -> t -> t
  val shift : int -> t -> t
  val eval : t -> coeff -> coeff
  val sum : t list -> t
  val pp : Format.formatter -> t -> unit
end

module Make (R : Ring) : S with type coeff = R.t = struct
  type coeff = R.t

  (* Dense little-endian coefficient array with no trailing zeros. *)
  type t = coeff array

  let norm (a : t) : t =
    let n = ref (Array.length a) in
    while !n > 0 && R.equal a.(!n - 1) R.zero do decr n done;
    if !n = Array.length a then a else Array.sub a 0 !n

  let zero = [||]
  let constant c = norm [| c |]
  let one = constant R.one

  let monomial c k =
    if k < 0 then invalid_arg "Poly.monomial: negative degree";
    if R.equal c R.zero then zero
    else begin
      let a = Array.make (k + 1) R.zero in
      a.(k) <- c;
      a
    end

  let x = monomial R.one 1
  let of_coeffs cs = norm (Array.of_list cs)
  let coeff p j = if j < 0 || j >= Array.length p then R.zero else p.(j)
  let coeffs p = Array.copy p
  let degree p = Array.length p - 1
  let is_zero p = Array.length p = 0

  let equal p q =
    Array.length p = Array.length q
    && (let ok = ref true in
        Array.iteri (fun i c -> if not (R.equal c q.(i)) then ok := false) p;
        !ok)

  let add p q =
    let lp = Array.length p and lq = Array.length q in
    let lr = Stdlib.max lp lq in
    norm (Array.init lr (fun i -> R.add (coeff p i) (coeff q i)))

  let neg p = Array.map R.neg p
  let sub p q = add p (neg q)

  let mul p q =
    let lp = Array.length p and lq = Array.length q in
    if lp = 0 || lq = 0 then zero
    else begin
      let r = Array.make (lp + lq - 1) R.zero in
      for i = 0 to lp - 1 do
        for j = 0 to lq - 1 do
          r.(i + j) <- R.add r.(i + j) (R.mul p.(i) q.(j))
        done
      done;
      norm r
    end

  let scale c p = norm (Array.map (R.mul c) p)

  let shift k p =
    if k < 0 then invalid_arg "Poly.shift: negative shift";
    if is_zero p then zero
    else Array.append (Array.make k R.zero) p

  let eval p v =
    let acc = ref R.zero in
    for i = Array.length p - 1 downto 0 do
      acc := R.add (R.mul !acc v) p.(i)
    done;
    !acc

  let sum = List.fold_left add zero

  let pp fmt p =
    if is_zero p then Format.pp_print_string fmt "0"
    else begin
      let first = ref true in
      Array.iteri
        (fun i c ->
           if not (R.equal c R.zero) then begin
             if not !first then Format.pp_print_string fmt " + ";
             first := false;
             if i = 0 then R.pp fmt c
             else if R.equal c R.one then Format.fprintf fmt "z^%d" i
             else Format.fprintf fmt "%a·z^%d" R.pp c i
           end)
        p
    end
end

module Bigint_ring = struct
  type t = Bigint.t

  let zero = Bigint.zero
  let one = Bigint.one
  let add = Bigint.add
  let mul = Bigint.mul
  let neg = Bigint.neg
  let equal = Bigint.equal
  let pp = Bigint.pp
end

module Rational_ring = struct
  type t = Rational.t

  let zero = Rational.zero
  let one = Rational.one
  let add = Rational.add
  let mul = Rational.mul
  let neg = Rational.neg
  let equal = Rational.equal
  let pp = Rational.pp
end

module Z = struct
  include Make (Bigint_ring)

  let eval_rational p v =
    let acc = ref Rational.zero in
    let cs = coeffs p in
    for i = Array.length cs - 1 downto 0 do
      acc := Rational.add (Rational.mul !acc v) (Rational.of_bigint cs.(i))
    done;
    !acc

  let total p = eval p Bigint.one
end

module Q = Make (Rational_ring)
