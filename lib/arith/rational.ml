type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else if Bigint.equal den Bigint.one then { num; den }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    if Bigint.equal g Bigint.one then { num; den }
    else { num = Bigint.divexact num g; den = Bigint.divexact den g }
  end

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }
let half = { num = Bigint.one; den = Bigint.two }

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)

let num x = x.num
let den x = x.den

let sign x = Bigint.sign x.num
let is_zero x = Bigint.is_zero x.num

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den (dens > 0);
     equal denominators (integers in particular) skip the cross products *)
  if Bigint.equal a.den b.den then Bigint.compare a.num b.num
  else Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let min a b = if leq a b then a else b
let max a b = if leq a b then b else a

let neg x = { x with num = Bigint.neg x.num }
let abs x = { x with num = Bigint.abs x.num }

let add a b =
  (* integer + integer stays integer: no cross products, no gcd *)
  if Bigint.equal a.den Bigint.one && Bigint.equal b.den Bigint.one then
    { num = Bigint.add a.num b.num; den = Bigint.one }
  else
    make
      (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
      (Bigint.mul a.den b.den)

let sub a b = add a (neg b)

let mul a b =
  if Bigint.equal a.den Bigint.one && Bigint.equal b.den Bigint.one then
    { num = Bigint.mul a.num b.num; den = Bigint.one }
  else make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv x =
  if is_zero x then raise Division_by_zero;
  if Bigint.sign x.num < 0 then { num = Bigint.neg x.den; den = Bigint.neg x.num }
  else { num = x.den; den = x.num }

let div a b = mul a (inv b)
let mul_bigint x n = make (Bigint.mul x.num n) x.den

let pow x e =
  if e >= 0 then { num = Bigint.pow x.num e; den = Bigint.pow x.den e }
  else inv { num = Bigint.pow x.num (-e); den = Bigint.pow x.den (-e) }

let is_integer x = Bigint.equal x.den Bigint.one

let to_bigint x =
  if not (is_integer x) then invalid_arg "Rational.to_bigint: not an integer";
  x.num

let to_float x = Bigint.to_float x.num /. Bigint.to_float x.den

let to_string x =
  if is_integer x then Bigint.to_string x.num
  else Bigint.to_string x.num ^ "/" ^ Bigint.to_string x.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let n = Bigint.of_string (String.sub s 0 i) in
    let d = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make n d
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (Bigint.of_string s)
     | Some i ->
       let int_part = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       let negative = String.length int_part > 0 && int_part.[0] = '-' in
       let ip = if int_part = "" || int_part = "-" then Bigint.zero else Bigint.of_string int_part in
       let fp = if frac = "" then zero else make (Bigint.of_string frac) (Bigint.pow (Bigint.of_int 10) (String.length frac)) in
       let a = of_bigint ip in
       if negative then sub a fp else add a fp)

(* ------------------------------------------------------------------ *)
(* Certified upper bounds for confidence intervals                     *)
(*                                                                     *)
(* The sampling engine's Hoeffding / empirical-Bernstein half-widths   *)
(* need √· and ln· of rationals.  Both are irrational in general, so   *)
(* we return rational OVER-approximations: a half-width computed from  *)
(* them is still a valid (slightly conservative) confidence bound,     *)
(* keeping the whole estimator float-free and deterministic.           *)
(* ------------------------------------------------------------------ *)

let sqrt_upper ?(scale = 12) x =
  if Bigint.sign x.num < 0 then
    invalid_arg "Rational.sqrt_upper: negative argument";
  if is_zero x then zero
  else begin
    (* √(a/b) = √(a·b)/b <= (⌊√(a·b·P²)⌋ + 1)/(b·P) with P = 10^scale,
       an upper bound within 1/(b·P) of the true root *)
    let p = Bigint.pow (Bigint.of_int 10) scale in
    let s =
      Bigint.isqrt (Bigint.mul (Bigint.mul x.num x.den) (Bigint.mul p p))
    in
    make (Bigint.succ s) (Bigint.mul x.den p)
  end

(* 0.693148 > ln 2 = 0.693147180…; the slack per doubling is < 10⁻⁶. *)
let ln2_upper = make (Bigint.of_int 693148) (Bigint.of_int 1_000_000)

let ln_upper x =
  if lt x one then invalid_arg "Rational.ln_upper: argument must be >= 1";
  (* split x = 2^k · r with 1 <= r < 2, then
     ln x = k·ln 2 + ln r <= k·ln2_upper + (r - 1)   [ln(1+t) <= t] *)
  let rec split k p =
    let p2 = add p p in
    if leq p2 x then split (k + 1) p2 else (k, p)
  in
  let k, p = split 0 one in
  add (mul_bigint ln2_upper (Bigint.of_int k)) (sub (div x p) one)

let pp fmt x = Format.pp_print_string fmt (to_string x)

let sum = List.fold_left add zero

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) = lt
  let ( <= ) = leq
  let ( ~- ) = neg
end
