(* Arbitrary-precision signed integers with an adaptive two-tier
   representation:

   - [Sml v]: a tagged native int for every value whose magnitude fits in
     62 bits (so [v] is never [min_int], keeping [neg]/[abs] total).  All
     of the counting arithmetic behind conditioning, the circuit sweeps
     and the Shapley coefficient loops lives here for realistic instance
     sizes, at machine-word cost and with zero allocation.
   - [Big]: the sign + magnitude representation, magnitude a little-endian
     [int array] of base 2^24 limbs with no trailing zero limb.

   Canonical-form invariant: a value is [Sml] IF AND ONLY IF its magnitude
   has bit length <= 62.  Every constructor and every operation returns a
   canonical result (promotion on overflow, demotion whenever a magnitude
   shrinks back under the boundary), so structural equality of canonical
   values coincides with numeric equality and there is exactly one zero,
   [Sml 0].  Operations additionally ACCEPT non-canonical [Big] inputs
   (built by [For_tests.force_big]) and still compute correct canonical
   results — the cross-representation differential test battery in
   test/test_bigint.ml exercises exactly this boundary.

   The base 2^24 is chosen so that a limb product (< 2^48) plus carries fits
   comfortably in OCaml's 63-bit native ints, keeping multiplication a simple
   schoolbook loop with no overflow analysis. *)

let base_bits = 24
let base = 1 lsl base_bits
let mask = base - 1

(* Largest magnitude bit length representable as an [Sml] payload:
   62 on 64-bit (payloads live in [min_int+1, max_int], |·| <= 2^62 - 1). *)
let small_bits = Sys.int_size - 1

type big = { bsign : int; bmag : int array }
type t = Sml of int | Big of big

let zero = Sml 0

(* ------------------------------------------------------------------ *)
(* Magnitude primitives                                                *)
(* ------------------------------------------------------------------ *)

let mag_norm (a : int array) : int array =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_cmp a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  mag_norm r

(* Requires a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_norm r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let s = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- s land mask;
          carry := s lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land mask;
          carry := s lsr base_bits;
          incr k
        done
      end
    done;
    mag_norm r
  end

(* Multiplication by a small non-negative int (may exceed one limb). *)
let mag_mul_small a (m : int) =
  if m = 0 then [||]
  else if m < base then begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * m) + !carry in
      r.(i) <- s land mask;
      carry := s lsr base_bits
    done;
    let k = ref la in
    while !carry <> 0 do
      r.(!k) <- !carry land mask;
      carry := !carry lsr base_bits;
      incr k
    done;
    mag_norm r
  end
  else
    (* Split m into limbs and fall back to full multiplication. *)
    let rec limbs m = if m = 0 then [] else (m land mask) :: limbs (m lsr base_bits) in
    mag_mul a (Array.of_list (limbs m))

(* Short division by 0 < d < base: returns (quotient, remainder). *)
let mag_divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_norm q, !r)

let mag_bitlength a =
  let la = Array.length a in
  if la = 0 then 0
  else
    let top = a.(la - 1) in
    let rec width n acc = if n = 0 then acc else width (n lsr 1) (acc + 1) in
    ((la - 1) * base_bits) + width top 0

let mag_testbit a i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length a then false else (a.(limb) lsr off) land 1 = 1

(* Binary long division on magnitudes: O(bits(a) * limbs(a)) worst case,
   amply fast at the instance sizes used by the reductions. *)
let mag_divmod a b =
  if Array.length b = 0 then raise Division_by_zero;
  let c = mag_cmp a b in
  if c < 0 then ([||], Array.copy a)
  else if Array.length b = 1 then
    let q, r = mag_divmod_small a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  else begin
    let nbits = mag_bitlength a in
    let qlimbs = Array.make (Array.length a) 0 in
    (* Remainder kept as a mutable magnitude buffer with explicit length. *)
    let rbuf = Array.make (Array.length b + 1) 0 in
    let rlen = ref 0 in
    let r_shift_in bit =
      (* rbuf := rbuf * 2 + bit *)
      let carry = ref bit in
      for i = 0 to !rlen - 1 do
        let s = (rbuf.(i) lsl 1) lor !carry in
        rbuf.(i) <- s land mask;
        carry := s lsr base_bits
      done;
      if !carry <> 0 then begin rbuf.(!rlen) <- !carry; incr rlen end
    in
    let r_geq_b () =
      let lb = Array.length b in
      if !rlen <> lb then !rlen > lb
      else
        let rec go i = if i < 0 then true else if rbuf.(i) <> b.(i) then rbuf.(i) > b.(i) else go (i - 1) in
        go (lb - 1)
    in
    let r_sub_b () =
      let lb = Array.length b in
      let borrow = ref 0 in
      for i = 0 to !rlen - 1 do
        let db = if i < lb then b.(i) else 0 in
        let s = rbuf.(i) - db - !borrow in
        if s < 0 then begin rbuf.(i) <- s + base; borrow := 1 end
        else begin rbuf.(i) <- s; borrow := 0 end
      done;
      while !rlen > 0 && rbuf.(!rlen - 1) = 0 do decr rlen done
    in
    for i = nbits - 1 downto 0 do
      r_shift_in (if mag_testbit a i then 1 else 0);
      if r_geq_b () then begin
        r_sub_b ();
        qlimbs.(i / base_bits) <- qlimbs.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (mag_norm qlimbs, mag_norm (Array.sub rbuf 0 !rlen))
  end

(* ------------------------------------------------------------------ *)
(* Representation boundary: views and the canonicalizing constructor   *)
(* ------------------------------------------------------------------ *)

(* Magnitude of a non-zero int, including min_int (handled limb by limb
   without computing [abs min_int]). *)
let mag_of_int_abs (n : int) : int array =
  if n = Stdlib.min_int then begin
    (* min_int = -2^62 on 64-bit: magnitude has a single bit set. *)
    let bits = Sys.int_size - 1 in
    let limb = bits / base_bits and off = bits mod base_bits in
    let mag = Array.make (limb + 1) 0 in
    mag.(limb) <- 1 lsl off;
    mag
  end
  else begin
    let rec limbs m acc = if m = 0 then List.rev acc else limbs (m lsr base_bits) ((m land mask) :: acc) in
    Array.of_list (limbs (Stdlib.abs n) [])
  end

(* Value of a magnitude known to fit 62 bits (<= 3 limbs). *)
let small_of_mag (mag : int array) : int =
  let v = ref 0 in
  for i = Array.length mag - 1 downto 0 do
    v := (!v lsl base_bits) lor mag.(i)
  done;
  !v

(* The single entry point back into the adaptive world: normalizes the
   magnitude, demotes to [Sml] whenever the value fits, and collapses to
   the one canonical zero. *)
let make sign mag =
  let mag = mag_norm mag in
  if Array.length mag = 0 then zero
  else if mag_bitlength mag <= small_bits then
    let v = small_of_mag mag in
    Sml (if sign < 0 then -v else v)
  else Big { bsign = (if sign < 0 then -1 else 1); bmag = mag }

let sgn_of = function
  | Sml v -> if v > 0 then 1 else if v < 0 then -1 else 0
  | Big b -> b.bsign

let mag_of = function
  | Sml 0 -> [||]
  | Sml v -> mag_of_int_abs v
  | Big b -> b.bmag

(* Re-canonicalize a possibly [force_big]-ed value. *)
let canon = function
  | Sml _ as t -> t
  | Big b -> make b.bsign b.bmag

(* ------------------------------------------------------------------ *)
(* Construction and conversions                                        *)
(* ------------------------------------------------------------------ *)

let of_int n =
  if n = Stdlib.min_int then Big { bsign = -1; bmag = mag_of_int_abs n }
  else Sml n

let one = Sml 1
let two = Sml 2
let minus_one = Sml (-1)

let to_int_opt = function
  | Sml v -> Some v
  | Big b ->
    let la = Array.length b.bmag in
    if la * base_bits >= Sys.int_size + base_bits then None
    else begin
      let v = ref 0 in
      let ok = ref true in
      for i = la - 1 downto 0 do
        if !v > Stdlib.max_int lsr base_bits then ok := false
        else begin
          let v' = (!v lsl base_bits) lor b.bmag.(i) in
          if v' < 0 then ok := false else v := v'
        end
      done;
      if !ok then Some (if b.bsign < 0 then - !v else !v)
      else if b.bsign < 0 then begin
        (* min_int itself round-trips. *)
        if mag_cmp b.bmag (mag_of_int_abs Stdlib.min_int) = 0 then Some Stdlib.min_int
        else None
      end
      else None
    end

let to_int n =
  match to_int_opt n with
  | Some v -> v
  | None -> failwith "Bigint.to_int: overflow"

let sign = sgn_of
let is_zero n = match n with Sml 0 -> true | Sml _ -> false | Big b -> b.bsign = 0

let compare a b =
  match a, b with
  | Sml x, Sml y -> Stdlib.compare x y
  | _ ->
    let sa = sgn_of a and sb = sgn_of b in
    if sa <> sb then Stdlib.compare sa sb
    else if sa = 0 then 0
    else
      let c = mag_cmp (mag_of a) (mag_of b) in
      if sa > 0 then c else -c

let equal a b =
  match a, b with
  | Sml x, Sml y -> x = y
  | _ -> compare a b = 0

(* Value hash: identical for [Sml v] and any (forced) [Big] holding the
   same value, because both fold the same normalized little-endian limb
   sequence.  Used wherever a structural Bigint key is needed. *)
let hash n =
  if sgn_of n = 0 then 0
  else begin
    let h = ref (if sgn_of n < 0 then 0x3ade68b1 else 0x61c88647) in
    let fold limb = h := ((!h * 0x01000193) lxor limb) land Stdlib.max_int in
    (match n with
     | Sml v ->
       let m = ref (Stdlib.abs v) in
       while !m <> 0 do
         fold (!m land mask);
         m := !m lsr base_bits
       done
     | Big b -> Array.iter fold b.bmag);
    !h
  end

let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let gt a b = compare a b > 0
let geq a b = compare a b >= 0
let min a b = if leq a b then a else b
let max a b = if geq a b then a else b

let neg = function
  | Sml v -> Sml (-v) (* payloads exclude min_int, so negation is total *)
  | Big b -> if b.bsign = 0 then zero else Big { b with bsign = -b.bsign }

let abs n = if sgn_of n < 0 then neg n else n

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

(* Magnitude-path addition, used on promotion and for [Big] operands. *)
let add_general a b =
  let sa = sgn_of a and sb = sgn_of b in
  if sa = 0 then canon b
  else if sb = 0 then canon a
  else
    let ma = mag_of a and mb = mag_of b in
    if sa = sb then make sa (mag_add ma mb)
    else
      let c = mag_cmp ma mb in
      if c = 0 then zero
      else if c > 0 then make sa (mag_sub ma mb)
      else make sb (mag_sub mb ma)

let add a b =
  match a, b with
  | Sml x, Sml y ->
    let s = x + y in
    (* Wrap-around detection: same-sign operands whose sum flips sign. *)
    if (x >= 0) = (y >= 0) && (s >= 0) <> (x >= 0) then add_general a b
    else if s = Stdlib.min_int then Big { bsign = -1; bmag = mag_of_int_abs s }
    else Sml s
  | _ -> add_general a b

let sub a b =
  match a, b with
  | Sml x, Sml y ->
    let s = x - y in
    if (x >= 0) <> (y >= 0) && (s >= 0) <> (x >= 0) then add_general a (neg b)
    else if s = Stdlib.min_int then Big { bsign = -1; bmag = mag_of_int_abs s }
    else Sml s
  | _ -> add_general a (neg b)

let succ n = add n one
let pred n = sub n one

let mul_general a b =
  let sa = sgn_of a and sb = sgn_of b in
  if sa = 0 || sb = 0 then zero
  else make (sa * sb) (mag_mul (mag_of a) (mag_of b))

(* |x|, |y| < 2^31 guarantees |x*y| < 2^62 with no division needed. *)
let mul_fast_bound = 1 lsl 31

let mul a b =
  match a, b with
  | Sml x, Sml y ->
    if x = 0 || y = 0 then zero
    else
      let ax = Stdlib.abs x and ay = Stdlib.abs y in
      if (ax < mul_fast_bound && ay < mul_fast_bound)
         || ax <= Stdlib.max_int / ay
      then Sml (x * y)
      else mul_general a b
  | _ -> mul_general a b

let mul_int a m =
  match a with
  | Sml _ -> mul a (of_int m)
  | Big b ->
    if b.bsign = 0 || m = 0 then zero
    else if m = Stdlib.min_int then mul_general a (of_int m)
    else
      let s = if m < 0 then -b.bsign else b.bsign in
      make s (mag_mul_small b.bmag (Stdlib.abs m))

let divmod a b =
  match a, b with
  | Sml x, Sml y ->
    if y = 0 then raise Division_by_zero;
    (* x <> min_int, so x / -1 cannot overflow; OCaml's (/) truncates. *)
    (Sml (x / y), Sml (x mod y))
  | _ ->
    if sgn_of b = 0 then raise Division_by_zero;
    if sgn_of a = 0 then (zero, zero)
    else
      let qm, rm = mag_divmod (mag_of a) (mag_of b) in
      let q = make (sgn_of a * sgn_of b) qm in
      let r = make (sgn_of a) rm in
      (q, r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let divexact a b =
  let q, r = divmod a b in
  if not (is_zero r) then invalid_arg "Bigint.divexact: inexact division";
  q

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

(* Binary GCD on magnitudes for multi-limb operands; plain Euclid on the
   small tier (remainders only shrink, so every step stays in [Sml]). *)
let gcd a b =
  match a, b with
  | Sml x, Sml y ->
    let rec go x y = if y = 0 then x else go y (x mod y) in
    Sml (go (Stdlib.abs x) (Stdlib.abs y))
  | _ ->
    let rec twos m i = if Array.length m > 0 && not (mag_testbit m i) then twos m (i + 1) else i in
    let mag_shr m k =
      (* shift right by k bits *)
      if Array.length m = 0 || k = 0 then m
      else begin
        let limbshift = k / base_bits and bitshift = k mod base_bits in
        let lm = Array.length m in
        if limbshift >= lm then [||]
        else begin
          let lr = lm - limbshift in
          let r = Array.make lr 0 in
          for i = 0 to lr - 1 do
            let lo = m.(i + limbshift) lsr bitshift in
            let hi =
              if bitshift = 0 || i + limbshift + 1 >= lm then 0
              else (m.(i + limbshift + 1) lsl (base_bits - bitshift)) land mask
            in
            r.(i) <- lo lor hi
          done;
          mag_norm r
        end
      end
    in
    let mag_shl m k =
      if Array.length m = 0 || k = 0 then m
      else begin
        let limbshift = k / base_bits and bitshift = k mod base_bits in
        let lm = Array.length m in
        let lr = lm + limbshift + 1 in
        let r = Array.make lr 0 in
        for i = 0 to lm - 1 do
          let v = m.(i) lsl bitshift in
          r.(i + limbshift) <- r.(i + limbshift) lor (v land mask);
          if bitshift > 0 then r.(i + limbshift + 1) <- r.(i + limbshift + 1) lor (v lsr base_bits)
        done;
        mag_norm r
      end
    in
    let ma = mag_of (abs a) and mb = mag_of (abs b) in
    if Array.length ma = 0 then make 1 mb
    else if Array.length mb = 0 then make 1 ma
    else begin
      let ka = twos ma 0 and kb = twos mb 0 in
      let k = Stdlib.min ka kb in
      let u = ref (mag_shr ma ka) and v = ref (mag_shr mb kb) in
      (* u, v odd *)
      let continue = ref true in
      while !continue do
        let c = mag_cmp !u !v in
        if c = 0 then continue := false
        else begin
          if c < 0 then begin let t = !u in u := !v; v := t end;
          let d = mag_sub !u !v in
          u := mag_shr d (twos d 0)
        end
      done;
      make 1 (mag_shl !u k)
    end

let factorial n =
  if n < 0 then invalid_arg "Bigint.factorial: negative argument";
  let acc = ref one in
  for i = 2 to n do acc := mul_int !acc i done;
  !acc

let factorial_table n =
  if n < 0 then invalid_arg "Bigint.factorial_table: negative argument";
  let t = Array.make (n + 1) one in
  for i = 2 to n do t.(i) <- mul_int t.(i - 1) i done;
  t

let binomial_row n =
  if n < 0 then invalid_arg "Bigint.binomial_row: negative argument";
  let t = Array.make (n + 1) one in
  for k = 1 to n do
    t.(k) <- divexact (mul_int t.(k - 1) (n - k + 1)) (of_int k)
  done;
  t

let falling_factorial n k =
  if k < 0 then invalid_arg "Bigint.falling_factorial: negative k";
  let acc = ref one in
  for i = 0 to k - 1 do acc := mul_int !acc (n - i) done;
  !acc

let binomial n k =
  if k < 0 || k > n then zero
  else begin
    let k = if k > n - k then n - k else k in
    let acc = ref one in
    for i = 1 to k do
      acc := divexact (mul_int !acc (n - k + i)) (of_int i)
    done;
    !acc
  end

(* Floor integer square root.  Small tier: float sqrt plus a fix-up walk
   (division-based tests, so no intermediate can overflow).  Big tier:
   Newton's method — starting from any x₀ >= √n, the iteration
   x ↦ (x + n/x)/2 over the integers decreases strictly until it reaches
   ⌊√n⌋ and the first non-decreasing step stops it.  n < 2^(24·limbs)
   gives the over-approximation x₀ = 2^(12·limbs). *)
let isqrt n =
  if sgn_of n < 0 then invalid_arg "Bigint.isqrt: negative argument"
  else if is_zero n then zero (* covers a forced-big zero too *)
  else
    match n with
    | Sml v ->
      let r = ref (int_of_float (sqrt (float_of_int v))) in
      if !r < 1 then r := 1;
      while !r > v / !r do decr r done;
      while !r + 1 <= v / (!r + 1) do incr r done;
      Sml !r
    | Big b ->
      let x0 = pow two (12 * Array.length b.bmag) in
      let rec go x =
        let y = div (add x (div n x)) two in
        if lt y x then go y else x
      in
      go x0

let chunk_pow = 7
let chunk_base = 10_000_000 (* 10^7 < 2^24 is required by mag_divmod_small *)

let to_string = function
  | Sml v -> string_of_int v
  | Big b ->
    if b.bsign = 0 then "0"
    else begin
      let buf = Buffer.create 32 in
      let rec go m acc =
        if Array.length m = 0 then acc
        else
          let q, r = mag_divmod_small m chunk_base in
          go q (r :: acc)
      in
      match go b.bmag [] with
      | [] -> "0"
      | hd :: tl ->
        if b.bsign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int hd);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%07d" c)) tl;
        Buffer.contents buf
    end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let neg_sign = s.[0] = '-' in
  let start = if neg_sign || s.[0] = '+' then 1 else 0 in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  String.iter
    (fun c -> if (c < '0' || c > '9') && not (c = '-' || c = '+') then
        invalid_arg "Bigint.of_string: invalid digit")
    s;
  (* 18 decimal digits always fit the small tier (10^18 < 2^62). *)
  if len - start <= 18 then
    match int_of_string_opt s with
    | Some v -> of_int v
    | None -> invalid_arg "Bigint.of_string: invalid digit"
  else begin
    let acc = ref zero in
    let i = ref start in
    while !i < len do
      let stop = Stdlib.min len (!i + chunk_pow) in
      let width = stop - !i in
      let chunk = String.sub s !i width in
      (match int_of_string_opt chunk with
       | None -> invalid_arg "Bigint.of_string: invalid digit"
       | Some v ->
         let rec pow10 k = if k = 0 then 1 else 10 * pow10 (k - 1) in
         acc := add (mul_int !acc (pow10 width)) (of_int v));
      i := stop
    done;
    if neg_sign then neg !acc else !acc
  end

let to_float = function
  | Sml v -> float_of_int v
  | Big b ->
    let acc = ref 0. in
    for i = Array.length b.bmag - 1 downto 0 do
      acc := (!acc *. float_of_int base) +. float_of_int b.bmag.(i)
    done;
    if b.bsign < 0 then -. !acc else !acc

let pp fmt n = Format.pp_print_string fmt (to_string n)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) = lt
  let ( <= ) = leq
  let ( > ) = gt
  let ( >= ) = geq
  let ( ~- ) = neg
end

module For_tests = struct
  let force_big = function
    | Sml 0 -> Big { bsign = 0; bmag = [||] }
    | Sml v -> Big { bsign = (if v < 0 then -1 else 1); bmag = mag_of_int_abs v }
    | Big _ as t -> t

  let is_small = function Sml _ -> true | Big _ -> false

  let canonical = function
    | Sml v -> v <> Stdlib.min_int
    | Big b ->
      (b.bsign = 1 || b.bsign = -1)
      && Array.length b.bmag > 0
      && b.bmag.(Array.length b.bmag - 1) <> 0
      && mag_bitlength b.bmag > small_bits

  let add_ref a b = force_big (add_general a b)
  let sub_ref a b = force_big (add_general a (neg b))
  let mul_ref a b = force_big (mul_general a b)
end
