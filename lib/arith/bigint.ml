(* Arbitrary-precision signed integers: sign + magnitude, base 2^24 limbs.

   Magnitudes are little-endian [int array]s with no trailing zero limb.
   The invariant [sign = 0 <=> mag = [||]] is maintained by [make].

   The base 2^24 is chosen so that a limb product (< 2^48) plus carries fits
   comfortably in OCaml's 63-bit native ints, keeping multiplication a simple
   schoolbook loop with no overflow analysis. *)

let base_bits = 24
let base = 1 lsl base_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude primitives                                                *)
(* ------------------------------------------------------------------ *)

let mag_norm (a : int array) : int array =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let make sign mag =
  let mag = mag_norm mag in
  if Array.length mag = 0 then zero else { sign; mag }

let mag_cmp a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  mag_norm r

(* Requires a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_norm r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let s = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- s land mask;
          carry := s lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land mask;
          carry := s lsr base_bits;
          incr k
        done
      end
    done;
    mag_norm r
  end

(* Multiplication by a small non-negative int (may exceed one limb). *)
let mag_mul_small a (m : int) =
  if m = 0 then [||]
  else if m < base then begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * m) + !carry in
      r.(i) <- s land mask;
      carry := s lsr base_bits
    done;
    let k = ref la in
    while !carry <> 0 do
      r.(!k) <- !carry land mask;
      carry := !carry lsr base_bits;
      incr k
    done;
    mag_norm r
  end
  else
    (* Split m into limbs and fall back to full multiplication. *)
    let rec limbs m = if m = 0 then [] else (m land mask) :: limbs (m lsr base_bits) in
    mag_mul a (Array.of_list (limbs m))

(* Short division by 0 < d < base: returns (quotient, remainder). *)
let mag_divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_norm q, !r)

let mag_bitlength a =
  let la = Array.length a in
  if la = 0 then 0
  else
    let top = a.(la - 1) in
    let rec width n acc = if n = 0 then acc else width (n lsr 1) (acc + 1) in
    ((la - 1) * base_bits) + width top 0

let mag_testbit a i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length a then false else (a.(limb) lsr off) land 1 = 1

(* Binary long division on magnitudes: O(bits(a) * limbs(a)) worst case,
   amply fast at the instance sizes used by the reductions. *)
let mag_divmod a b =
  if Array.length b = 0 then raise Division_by_zero;
  let c = mag_cmp a b in
  if c < 0 then ([||], Array.copy a)
  else if Array.length b = 1 then
    let q, r = mag_divmod_small a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  else begin
    let nbits = mag_bitlength a in
    let qlimbs = Array.make (Array.length a) 0 in
    (* Remainder kept as a mutable magnitude buffer with explicit length. *)
    let rbuf = Array.make (Array.length b + 1) 0 in
    let rlen = ref 0 in
    let r_shift_in bit =
      (* rbuf := rbuf * 2 + bit *)
      let carry = ref bit in
      for i = 0 to !rlen - 1 do
        let s = (rbuf.(i) lsl 1) lor !carry in
        rbuf.(i) <- s land mask;
        carry := s lsr base_bits
      done;
      if !carry <> 0 then begin rbuf.(!rlen) <- !carry; incr rlen end
    in
    let r_geq_b () =
      let lb = Array.length b in
      if !rlen <> lb then !rlen > lb
      else
        let rec go i = if i < 0 then true else if rbuf.(i) <> b.(i) then rbuf.(i) > b.(i) else go (i - 1) in
        go (lb - 1)
    in
    let r_sub_b () =
      let lb = Array.length b in
      let borrow = ref 0 in
      for i = 0 to !rlen - 1 do
        let db = if i < lb then b.(i) else 0 in
        let s = rbuf.(i) - db - !borrow in
        if s < 0 then begin rbuf.(i) <- s + base; borrow := 1 end
        else begin rbuf.(i) <- s; borrow := 0 end
      done;
      while !rlen > 0 && rbuf.(!rlen - 1) = 0 do decr rlen done
    in
    for i = nbits - 1 downto 0 do
      r_shift_in (if mag_testbit a i then 1 else 0);
      if r_geq_b () then begin
        r_sub_b ();
        qlimbs.(i / base_bits) <- qlimbs.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (mag_norm qlimbs, mag_norm (Array.sub rbuf 0 !rlen))
  end

(* ------------------------------------------------------------------ *)
(* Construction and conversions                                        *)
(* ------------------------------------------------------------------ *)

let of_int n =
  if n = 0 then zero
  else
    let sign = if n < 0 then -1 else 1 in
    (* Beware min_int: negate via the magnitude loop on the absolute value,
       handling it limb by limb without computing [abs min_int]. *)
    let rec limbs m acc = if m = 0 then List.rev acc else limbs (m lsr base_bits) ((m land mask) :: acc) in
    let m = if n = Stdlib.min_int then n else Stdlib.abs n in
    if n = Stdlib.min_int then begin
      (* min_int = -2^62 on 64-bit: magnitude has a single bit set. *)
      let bits = Sys.int_size - 1 in
      let limb = bits / base_bits and off = bits mod base_bits in
      let mag = Array.make (limb + 1) 0 in
      mag.(limb) <- 1 lsl off;
      { sign; mag }
    end
    else { sign; mag = Array.of_list (limbs m []) }

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let to_int_opt n =
  let la = Array.length n.mag in
  if la * base_bits >= Sys.int_size + base_bits then None
  else begin
    let v = ref 0 in
    let ok = ref true in
    for i = la - 1 downto 0 do
      if !v > Stdlib.max_int lsr base_bits then ok := false
      else begin
        let v' = (!v lsl base_bits) lor n.mag.(i) in
        if v' < 0 then ok := false else v := v'
      end
    done;
    if !ok then Some (if n.sign < 0 then - !v else !v)
    else if n.sign < 0 then begin
      (* min_int itself round-trips. *)
      let m = of_int Stdlib.min_int in
      if mag_cmp n.mag m.mag = 0 then Some Stdlib.min_int else None
    end
    else None
  end

let to_int n =
  match to_int_opt n with
  | Some v -> v
  | None -> failwith "Bigint.to_int: overflow"

let sign n = n.sign
let is_zero n = n.sign = 0

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_cmp a.mag b.mag
  else mag_cmp b.mag a.mag

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let gt a b = compare a b > 0
let geq a b = compare a b >= 0
let min a b = if leq a b then a else b
let max a b = if geq a b then a else b

let neg n = if n.sign = 0 then zero else { n with sign = -n.sign }
let abs n = if n.sign < 0 then neg n else n

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (mag_add a.mag b.mag)
  else
    let c = mag_cmp a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (mag_sub a.mag b.mag)
    else make b.sign (mag_sub b.mag a.mag)

let sub a b = add a (neg b)
let succ n = add n one
let pred n = sub n one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mag_mul a.mag b.mag)

let mul_int a m =
  if a.sign = 0 || m = 0 then zero
  else if m = Stdlib.min_int then mul a (of_int m)
  else
    let s = if m < 0 then -a.sign else a.sign in
    make s (mag_mul_small a.mag (Stdlib.abs m))

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else
    let qm, rm = mag_divmod a.mag b.mag in
    let q = make (a.sign * b.sign) qm in
    let r = make a.sign rm in
    (q, r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let divexact a b =
  let q, r = divmod a b in
  if not (is_zero r) then invalid_arg "Bigint.divexact: inexact division";
  q

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

(* Binary GCD: avoids bignum division entirely (shifts + subtractions). *)
let gcd a b =
  let rec twos m i = if Array.length m > 0 && not (mag_testbit m i) then twos m (i + 1) else i in
  let mag_shr m k =
    (* shift right by k bits *)
    if Array.length m = 0 || k = 0 then m
    else begin
      let limbshift = k / base_bits and bitshift = k mod base_bits in
      let lm = Array.length m in
      if limbshift >= lm then [||]
      else begin
        let lr = lm - limbshift in
        let r = Array.make lr 0 in
        for i = 0 to lr - 1 do
          let lo = m.(i + limbshift) lsr bitshift in
          let hi =
            if bitshift = 0 || i + limbshift + 1 >= lm then 0
            else (m.(i + limbshift + 1) lsl (base_bits - bitshift)) land mask
          in
          r.(i) <- lo lor hi
        done;
        mag_norm r
      end
    end
  in
  let mag_shl m k =
    if Array.length m = 0 || k = 0 then m
    else begin
      let limbshift = k / base_bits and bitshift = k mod base_bits in
      let lm = Array.length m in
      let lr = lm + limbshift + 1 in
      let r = Array.make lr 0 in
      for i = 0 to lm - 1 do
        let v = m.(i) lsl bitshift in
        r.(i + limbshift) <- r.(i + limbshift) lor (v land mask);
        if bitshift > 0 then r.(i + limbshift + 1) <- r.(i + limbshift + 1) lor (v lsr base_bits)
      done;
      mag_norm r
    end
  in
  let a = (abs a).mag and b = (abs b).mag in
  if Array.length a = 0 then make 1 b
  else if Array.length b = 0 then make 1 a
  else begin
    let ka = twos a 0 and kb = twos b 0 in
    let k = Stdlib.min ka kb in
    let u = ref (mag_shr a ka) and v = ref (mag_shr b kb) in
    (* u, v odd *)
    let continue = ref true in
    while !continue do
      let c = mag_cmp !u !v in
      if c = 0 then continue := false
      else begin
        if c < 0 then begin let t = !u in u := !v; v := t end;
        let d = mag_sub !u !v in
        u := mag_shr d (twos d 0)
      end
    done;
    make 1 (mag_shl !u k)
  end

let factorial n =
  if n < 0 then invalid_arg "Bigint.factorial: negative argument";
  let acc = ref one in
  for i = 2 to n do acc := mul_int !acc i done;
  !acc

let factorial_table n =
  if n < 0 then invalid_arg "Bigint.factorial_table: negative argument";
  let t = Array.make (n + 1) one in
  for i = 2 to n do t.(i) <- mul_int t.(i - 1) i done;
  t

let binomial_row n =
  if n < 0 then invalid_arg "Bigint.binomial_row: negative argument";
  let t = Array.make (n + 1) one in
  for k = 1 to n do
    t.(k) <- divexact (mul_int t.(k - 1) (n - k + 1)) (of_int k)
  done;
  t

let falling_factorial n k =
  if k < 0 then invalid_arg "Bigint.falling_factorial: negative k";
  let acc = ref one in
  for i = 0 to k - 1 do acc := mul_int !acc (n - i) done;
  !acc

let binomial n k =
  if k < 0 || k > n then zero
  else begin
    let k = if k > n - k then n - k else k in
    let acc = ref one in
    for i = 1 to k do
      acc := divexact (mul_int !acc (n - k + i)) (of_int i)
    done;
    !acc
  end

(* Floor integer square root by Newton's method.  Starting from any
   x₀ >= √n, the iteration x ↦ (x + n/x)/2 over the integers decreases
   strictly until it reaches ⌊√n⌋ and the first non-decreasing step stops
   it.  n < 2^(24·limbs) gives the over-approximation x₀ = 2^(12·limbs). *)
let isqrt n =
  if sign n < 0 then invalid_arg "Bigint.isqrt: negative argument"
  else if is_zero n then zero
  else begin
    let x0 = pow two (12 * Array.length n.mag) in
    let rec go x =
      let y = div (add x (div n x)) two in
      if lt y x then go y else x
    in
    go x0
  end

let chunk_pow = 7
let chunk_base = 10_000_000 (* 10^7 < 2^24 is required by mag_divmod_small *)

let to_string n =
  if n.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go m acc =
      if Array.length m = 0 then acc
      else
        let q, r = mag_divmod_small m chunk_base in
        go q (r :: acc)
    in
    match go n.mag [] with
    | [] -> "0"
    | hd :: tl ->
      if n.sign < 0 then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int hd);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%07d" c)) tl;
      Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let neg_sign = s.[0] = '-' in
  let start = if neg_sign || s.[0] = '+' then 1 else 0 in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let i = ref start in
  while !i < len do
    let stop = Stdlib.min len (!i + chunk_pow) in
    let width = stop - !i in
    let chunk = String.sub s !i width in
    String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Bigint.of_string: invalid digit") chunk;
    let v = int_of_string chunk in
    let rec pow10 k = if k = 0 then 1 else 10 * pow10 (k - 1) in
    let scale = pow10 width in
    acc := add (make 1 (mag_mul_small (!acc).mag scale)) (of_int v);
    i := stop
  done;
  if neg_sign then neg !acc else !acc

let to_float n =
  let acc = ref 0. in
  for i = Array.length n.mag - 1 downto 0 do
    acc := (!acc *. float_of_int base) +. float_of_int n.mag.(i)
  done;
  if n.sign < 0 then -. !acc else !acc

let pp fmt n = Format.pp_print_string fmt (to_string n)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) = lt
  let ( <= ) = leq
  let ( > ) = gt
  let ( >= ) = geq
  let ( ~- ) = neg
end
