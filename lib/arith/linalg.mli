(** Exact linear algebra over ℚ.

    The paper's reductions recover counting vectors from Shapley-value or
    probability measurements by inverting structured linear systems:

    - Claim A.2 inverts a Vandermonde system (SPPQE at [n+1] distinct
      probabilities determines all [FGMC_j]);
    - Lemmas 4.1/4.3/4.4 invert the matrix with general term [(i+j)!], whose
      invertibility is due to Bacher (2002).

    We implement exact Gaussian elimination over {!Rational} plus the
    structured system builders used by the reductions. *)

type matrix = Rational.t array array
type vector = Rational.t array

val solve : matrix -> vector -> vector option
(** [solve m b] is [Some x] with [m x = b] when [m] is square and
    non-singular, [None] when singular.
    @raise Invalid_argument on dimension mismatch. *)

val determinant : matrix -> Rational.t
(** @raise Invalid_argument if the matrix is not square. *)

val mat_vec : matrix -> vector -> vector
(** Matrix-vector product. @raise Invalid_argument on dimension mismatch. *)

val vandermonde : Rational.t array -> matrix
(** [vandermonde pts] has general term [pts.(i)^j]. *)

val solve_vandermonde : Rational.t array -> vector -> vector
(** [solve_vandermonde pts b] solves [V x = b] for the Vandermonde matrix of
    [pts], which must be pairwise distinct.
    @raise Invalid_argument if the points are not pairwise distinct. *)

val shifted_factorial_matrix : int -> matrix
(** The [(n+1) × (n+1)] matrix of general term [(i+j)!] (Bacher 2002), used
    to argue invertibility of the reductions' systems. *)

val pp_matrix : Format.formatter -> matrix -> unit
val pp_vector : Format.formatter -> vector -> unit
