type matrix = Rational.t array array
type vector = Rational.t array

let dimensions (m : matrix) =
  let rows = Array.length m in
  let cols = if rows = 0 then 0 else Array.length m.(0) in
  Array.iter (fun r -> if Array.length r <> cols then invalid_arg "Linalg: ragged matrix") m;
  (rows, cols)

let mat_vec m v =
  let rows, cols = dimensions m in
  if cols <> Array.length v then invalid_arg "Linalg.mat_vec: dimension mismatch";
  Array.init rows (fun i ->
      let acc = ref Rational.zero in
      for j = 0 to cols - 1 do
        acc := Rational.add !acc (Rational.mul m.(i).(j) v.(j))
      done;
      !acc)

(* Gaussian elimination with row pivoting (first non-zero pivot; over ℚ any
   non-zero pivot is exact, no numerical concerns). Returns the echelonized
   copy together with the transformed right-hand side, or None if singular. *)
let solve m b =
  let rows, cols = dimensions m in
  if rows <> cols then invalid_arg "Linalg.solve: non-square matrix";
  if rows <> Array.length b then invalid_arg "Linalg.solve: dimension mismatch";
  let a = Array.map Array.copy m in
  let y = Array.copy b in
  let n = rows in
  let singular = ref false in
  (try
     for k = 0 to n - 1 do
       (* find pivot *)
       let piv = ref (-1) in
       for i = k to n - 1 do
         if !piv < 0 && not (Rational.is_zero a.(i).(k)) then piv := i
       done;
       if !piv < 0 then begin singular := true; raise Exit end;
       if !piv <> k then begin
         let t = a.(k) in a.(k) <- a.(!piv); a.(!piv) <- t;
         let t = y.(k) in y.(k) <- y.(!piv); y.(!piv) <- t
       end;
       for i = k + 1 to n - 1 do
         if not (Rational.is_zero a.(i).(k)) then begin
           let f = Rational.div a.(i).(k) a.(k).(k) in
           a.(i).(k) <- Rational.zero;
           for j = k + 1 to n - 1 do
             a.(i).(j) <- Rational.sub a.(i).(j) (Rational.mul f a.(k).(j))
           done;
           y.(i) <- Rational.sub y.(i) (Rational.mul f y.(k))
         end
       done
     done
   with Exit -> ());
  if !singular then None
  else begin
    let x = Array.make n Rational.zero in
    for i = n - 1 downto 0 do
      let acc = ref y.(i) in
      for j = i + 1 to n - 1 do
        acc := Rational.sub !acc (Rational.mul a.(i).(j) x.(j))
      done;
      x.(i) <- Rational.div !acc a.(i).(i)
    done;
    Some x
  end

let determinant m =
  let rows, cols = dimensions m in
  if rows <> cols then invalid_arg "Linalg.determinant: non-square matrix";
  let a = Array.map Array.copy m in
  let n = rows in
  let det = ref Rational.one in
  (try
     for k = 0 to n - 1 do
       let piv = ref (-1) in
       for i = k to n - 1 do
         if !piv < 0 && not (Rational.is_zero a.(i).(k)) then piv := i
       done;
       if !piv < 0 then begin det := Rational.zero; raise Exit end;
       if !piv <> k then begin
         let t = a.(k) in a.(k) <- a.(!piv); a.(!piv) <- t;
         det := Rational.neg !det
       end;
       det := Rational.mul !det a.(k).(k);
       for i = k + 1 to n - 1 do
         if not (Rational.is_zero a.(i).(k)) then begin
           let f = Rational.div a.(i).(k) a.(k).(k) in
           for j = k to n - 1 do
             a.(i).(j) <- Rational.sub a.(i).(j) (Rational.mul f a.(k).(j))
           done
         end
       done
     done
   with Exit -> ());
  !det

let vandermonde pts =
  let n = Array.length pts in
  Array.init n (fun i -> Array.init n (fun j -> Rational.pow pts.(i) j))

let solve_vandermonde pts b =
  let n = Array.length pts in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rational.equal pts.(i) pts.(j) then
        invalid_arg "Linalg.solve_vandermonde: duplicate points"
    done
  done;
  match solve (vandermonde pts) b with
  | Some x -> x
  | None -> invalid_arg "Linalg.solve_vandermonde: singular (impossible for distinct points)"

let shifted_factorial_matrix n =
  (* one shared running-product table instead of recomputing (i+j)! from
     scratch for each of the (n+1)^2 entries *)
  let t = Bigint.factorial_table (2 * n) in
  Array.init (n + 1) (fun i ->
      Array.init (n + 1) (fun j -> Rational.of_bigint t.(i + j)))

let pp_vector fmt v =
  Format.fprintf fmt "[@[%a@]]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") Rational.pp)
    (Array.to_list v)

let pp_matrix fmt m =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_vector)
    (Array.to_list m)
