(** Univariate polynomials over a commutative ring.

    The central counting object of this library is the {e size-generating
    polynomial} of a query lineage: the polynomial [p(z) = Σ_j c_j z^j] where
    [c_j] counts the satisfying assignments setting exactly [j] endogenous
    facts to true.  Its coefficients are exactly the [FGMC_j] values of the
    paper (Section 3.2), and evaluating [p] at [z = p/(1-p)] divided by
    [(1+z)^n] yields SPPQE probabilities (Claim A.2).  *)

module type Ring = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val mul : t -> t -> t
  val neg : t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module type S = sig
  type coeff
  type t

  val zero : t
  val one : t
  val x : t
  (** The monomial [z]. *)

  val constant : coeff -> t
  val monomial : coeff -> int -> t
  (** [monomial c k] is [c·z^k]. @raise Invalid_argument if [k < 0]. *)

  val of_coeffs : coeff list -> t
  (** [of_coeffs [c0; c1; ...]] is [c0 + c1 z + ...]. *)

  val coeff : t -> int -> coeff
  (** [coeff p j] is the coefficient of [z^j] (zero beyond the degree). *)

  val coeffs : t -> coeff array
  (** Dense coefficient array, lowest degree first; [ [||] ] for zero. *)

  val degree : t -> int
  (** Degree, with [degree zero = -1]. *)

  val is_zero : t -> bool
  val equal : t -> t -> bool

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val scale : coeff -> t -> t
  val shift : int -> t -> t
  (** [shift k p] is [z^k · p]. *)

  val eval : t -> coeff -> coeff

  val sum : t list -> t
  (** Sums a whole list through one in-place accumulator: a single
      coefficient buffer of the maximum length, not a fold of pairwise
      [add]s. *)

  val pp : Format.formatter -> t -> unit

  (** {2 In-place accumulation}

      The conditioning merge and the circuit bottom-up sweep both reduce
      long sequences of (scaled, shifted) polynomials into one result; an
      accumulator absorbs the whole sequence into a single growable
      coefficient buffer with no per-step allocation. *)

  type acc

  val acc_create : int -> acc
  (** [acc_create hint] is a fresh zero accumulator, pre-sized for
      polynomials of length [hint] (it grows on demand). *)

  val acc_clear : acc -> unit
  (** Reset to zero, keeping the buffer. *)

  val acc_add : acc -> t -> unit
  (** [acc_add a p]: in-place [a += p]. *)

  val acc_add_scaled : acc -> coeff -> int -> t -> unit
  (** [acc_add_scaled a c k p]: in-place [a += c·z{^k}·p] — a fused
      scale / shift / add with no intermediate polynomial.
      @raise Invalid_argument if [k < 0]. *)

  val acc_total : acc -> t
  (** Snapshot of the accumulated sum (the accumulator stays usable). *)

  module For_tests : sig
    val of_list_reference : coeff list -> t
    (** Reference constructor building one monomial per position and
        folding through generic [add] — the slow path the differential
        suite pins the flat construction against. *)
  end
end

module Make (R : Ring) : S with type coeff = R.t

(** Polynomials with {!Bigint} coefficients (counting polynomials). *)
module Z : sig
  include S with type coeff = Bigint.t

  val eval_rational : t -> Rational.t -> Rational.t
  (** Evaluate an integer polynomial at a rational point. *)

  val total : t -> Bigint.t
  (** [total p = p(1)]: the sum of all coefficients.  For a size-generating
      polynomial this is the plain (generalized) model count. *)
end

(** Polynomials with {!Rational} coefficients. *)
module Q : S with type coeff = Rational.t
