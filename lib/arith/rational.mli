(** Exact rational numbers over {!Bigint}.

    Shapley values are rationals with factorial denominators (Equations 1-2
    of the paper); probabilities in SPQE/SPPQE instances are rationals in
    [(0, 1]]; the linear systems inverted by the reductions live over ℚ.
    Values are kept normalized: [gcd num den = 1] and [den > 0]. *)

type t = private { num : Bigint.t; den : Bigint.t }

val zero : t
val one : t
val half : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints a b] is [a/b]. @raise Division_by_zero if [b = 0]. *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val lt : t -> t -> bool
val leq : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val div : t -> t -> t
(** @raise Division_by_zero on zero divisor. *)

val mul_bigint : t -> Bigint.t -> t
val pow : t -> int -> t
(** [pow x e] for any integer [e]; [pow zero e] with [e < 0] raises
    [Division_by_zero]. *)

val is_integer : t -> bool
val to_bigint : t -> Bigint.t
(** @raise Invalid_argument if the value is not an integer. *)

val to_float : t -> float
val to_string : t -> string
val of_string : string -> t
(** Accepts ["a"], ["a/b"] and simple decimals like ["0.25"]. *)

val sqrt_upper : ?scale:int -> t -> t
(** [sqrt_upper x] is a rational upper bound on [√x], within
    [1/(den x · 10^scale)] of the true root (default [scale = 12]).
    Exact on [zero].  Confidence half-widths computed from it stay valid
    (slightly conservative) bounds, which is what keeps the sampling
    engine float-free.  @raise Invalid_argument on negative input. *)

val ln_upper : t -> t
(** [ln_upper x] for [x >= 1] is a rational upper bound on [ln x]:
    splitting [x = 2^k·r] with [1 <= r < 2] gives
    [k·0.693148 + (r - 1)].  The additive slack is at most [~0.307]
    (the [ln(1+t) <= t] gap at [r → 2]) — conservative but sound for
    the [ln(2/δ)] terms of Hoeffding/Bernstein bounds.
    @raise Invalid_argument on [x < 1]. *)

val pp : Format.formatter -> t -> unit

val sum : t list -> t

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( ~- ) : t -> t
end
