(* Unified tracing + metrics.

   One tracer value carries both a hierarchical span recorder (timestamps
   from an injectable clock, so tests run on a fake deterministic one) and
   a metrics registry (counters, gauges, exact-integer histograms).  The
   design constraints, in order:

   - zero overhead when disabled: [span t name f] on a disabled tracer is
     one branch and then [f ()]; counters are a mutable int wherever they
     end up, so subsystems can keep their instrumentation *in* telemetry
     metrics rather than duplicating them in private fields;
   - deterministic merges: a parallel run gives every worker slot its own
     {!fork} of the tracer (fresh buffer, shared clock/epoch/registry),
     and {!join} folds the buffers back in the calling domain.  Events
     carry (track, per-track sequence number), so the exported order is
     canonical whatever the scheduling;
   - exporters are pure functions of the recorded events, so golden tests
     can pin their output byte-exactly on a fake clock. *)

module Clock = struct
  type t = unit -> float

  let monotonic : t = Unix.gettimeofday

  (* Reads never mutate (so concurrent domains may read a fake clock
     freely); [advance] CASes, so even concurrent advancing could not lose
     ticks. *)
  let fake ?(start = 0.) () =
    let cell = Atomic.make start in
    let clock () = Atomic.get cell in
    let advance d =
      if d < 0. then invalid_arg "Telemetry.Clock.fake: cannot advance backwards";
      let rec go () =
        let v = Atomic.get cell in
        if not (Atomic.compare_and_set cell v (v +. d)) then go ()
      in
      go ()
    in
    (clock, advance)
end

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr c = c.v <- c.v + 1
  let add c n = c.v <- c.v + n
  let value c = c.v
  let reset c = c.v <- 0
  let merge a b = { v = a.v + b.v }
end

module Gauge = struct
  type t = { mutable g : int }

  let create () = { g = 0 }
  let set g v = g.g <- v
  let value g = g.g
  let merge a b = { g = max a.g b.g }
end

module Histogram = struct
  type t = { tbl : (int, int) Hashtbl.t }

  let create () = { tbl = Hashtbl.create 16 }

  let observe_n h v n =
    if n < 0 then invalid_arg "Telemetry.Histogram.observe_n: negative count";
    if n > 0 then
      Hashtbl.replace h.tbl v
        (n + Option.value ~default:0 (Hashtbl.find_opt h.tbl v))

  let observe h v = observe_n h v 1
  let count h = Hashtbl.fold (fun _ n acc -> acc + n) h.tbl 0
  let total h = Hashtbl.fold (fun v n acc -> acc + (v * n)) h.tbl 0

  let bins h =
    List.sort compare (Hashtbl.fold (fun v n acc -> (v, n) :: acc) h.tbl [])

  let of_list vs =
    let h = create () in
    List.iter (observe h) vs;
    h

  let merge a b =
    let h = create () in
    List.iter (fun (v, n) -> observe_n h v n) (bins a);
    List.iter (fun (v, n) -> observe_n h v n) (bins b);
    h

  let equal a b = bins a = bins b
end

type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

(* Registration order preserved (the exporters keep it); find-or-create by
   name so the same logical counter is shared by everyone naming it. *)
type registry = { mutable metrics : (string * metric) list (* reversed *) }

type event = {
  ev_name : string;
  ev_track : int;
  ev_seq : int;  (** completion order within the track *)
  ev_depth : int;  (** open spans above this one when it was entered *)
  ev_path : string list;  (** root-first, ending in [ev_name] *)
  ev_start_s : float;  (** seconds since the tracer's epoch *)
  ev_dur_s : float;
  ev_attrs : (string * string) list;
}

type open_span = {
  os_name : string;
  os_attrs : (string * string) list;
  os_t0 : float;
  os_depth : int;
  os_rpath : string list; (* leaf-first *)
}

type span = open_span option

type t = {
  clock : Clock.t;
  epoch : float;
  on : bool;
  track : int;
  registry : registry;
  track_names : (int * string) list ref; (* shared across forks; ascending *)
  mutable stack : open_span list;
  mutable events : event list; (* reversed *)
  mutable seq : int;
}

let create ?(clock = Clock.monotonic) ?(enabled = true) () =
  {
    clock;
    epoch = clock ();
    on = enabled;
    track = 0;
    registry = { metrics = [] };
    track_names = ref [ (0, "main") ];
    stack = [];
    events = [];
    seq = 0;
  }

let disabled () = create ~clock:(fun () -> 0.) ~enabled:false ()
let enabled t = t.on

let fork ?name t ~track =
  if track < 0 then invalid_arg "Telemetry.fork: negative track";
  let name =
    match name with Some n -> n | None -> Printf.sprintf "domain %d" track
  in
  if not (List.mem_assoc track !(t.track_names)) then
    t.track_names :=
      List.sort (fun (a, _) (b, _) -> compare a b)
        ((track, name) :: !(t.track_names));
  { t with track; stack = []; events = []; seq = 0 }

let join t child =
  (* events already carry (track, seq); the canonical sort happens at
     export, so appending in any order is fine *)
  t.events <- child.events @ t.events

(* ---------------- spans ---------------- *)

let enter t ?(attrs = []) name : span =
  if not t.on then None
  else
    let rpath =
      name :: (match t.stack with [] -> [] | s :: _ -> s.os_rpath)
    in
    let os =
      { os_name = name; os_attrs = attrs; os_t0 = t.clock ();
        os_depth = List.length t.stack; os_rpath = rpath }
    in
    t.stack <- os :: t.stack;
    Some os

let exit t (s : span) =
  match s with
  | None -> ()
  | Some os ->
    (match t.stack with
     | top :: rest when top == os ->
       t.stack <- rest;
       let now = t.clock () in
       t.events <-
         {
           ev_name = os.os_name;
           ev_track = t.track;
           ev_seq = t.seq;
           ev_depth = os.os_depth;
           ev_path = List.rev os.os_rpath;
           ev_start_s = os.os_t0 -. t.epoch;
           ev_dur_s = now -. os.os_t0;
           ev_attrs = os.os_attrs;
         }
         :: t.events;
       t.seq <- t.seq + 1
     | [] -> invalid_arg "Telemetry.exit: no span is open"
     | _ -> invalid_arg "Telemetry.exit: span is not the innermost open one")

let span t ?attrs name f =
  if not t.on then f ()
  else
    let s = enter t ?attrs name in
    Fun.protect ~finally:(fun () -> exit t s) f

let open_spans t = List.length t.stack

let events t =
  List.sort
    (fun a b ->
       let c = compare a.ev_track b.ev_track in
       if c <> 0 then c else compare a.ev_seq b.ev_seq)
    (List.rev t.events)

let tracks t = !(t.track_names)

let aggregate t =
  let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
       let n, d = Option.value ~default:(0, 0.) (Hashtbl.find_opt tbl e.ev_name) in
       Hashtbl.replace tbl e.ev_name (n + 1, d +. e.ev_dur_s))
    t.events;
  let all = Hashtbl.fold (fun name (n, d) acc -> (name, n, d) :: acc) tbl [] in
  Array.of_list (List.sort compare all)

(* ---------------- metrics registry ---------------- *)

let find_or_register t name make =
  match List.assoc_opt name t.registry.metrics with
  | Some m -> m
  | None ->
    let m = make () in
    t.registry.metrics <- t.registry.metrics @ [ (name, m) ];
    m

let counter t name =
  match find_or_register t name (fun () -> Counter (Counter.create ())) with
  | Counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Telemetry.counter: %S is not a counter" name)

let gauge t name =
  match find_or_register t name (fun () -> Gauge (Gauge.create ())) with
  | Gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Telemetry.gauge: %S is not a gauge" name)

let histogram t name =
  match find_or_register t name (fun () -> Histogram (Histogram.create ())) with
  | Histogram h -> h
  | _ ->
    invalid_arg (Printf.sprintf "Telemetry.histogram: %S is not a histogram" name)

let metrics t = t.registry.metrics

(* ---------------- exporters ---------------- *)

module Export = struct
  let json_escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
         match c with
         | '"' -> Buffer.add_string buf "\\\""
         | '\\' -> Buffer.add_string buf "\\\\"
         | '\n' -> Buffer.add_string buf "\\n"
         | '\r' -> Buffer.add_string buf "\\r"
         | '\t' -> Buffer.add_string buf "\\t"
         | c when Char.code c < 0x20 ->
           Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
         | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let ms s = s *. 1000.

  (* Human-readable tree: spans grouped per track, nested by call path,
     siblings in alphabetical order; then the metrics.  Every wall-clock
     figure sits on a line ending in [time  : …ms] so the cram tests mask
     all of them with the one existing pattern. *)
  let summary t =
    let buf = Buffer.create 512 in
    let evs = events t in
    Buffer.add_string buf "telemetry summary\n";
    List.iter
      (fun (track, tname) ->
         let mine = List.filter (fun e -> e.ev_track = track) evs in
         if mine <> [] then begin
           Buffer.add_string buf (Printf.sprintf "spans (track %d, %s):\n" track tname);
           (* group by full path: (path, count, total) *)
           let tbl : (string list, int * float) Hashtbl.t = Hashtbl.create 16 in
           List.iter
             (fun e ->
                let n, d =
                  Option.value ~default:(0, 0.) (Hashtbl.find_opt tbl e.ev_path)
                in
                Hashtbl.replace tbl e.ev_path (n + 1, d +. e.ev_dur_s))
             mine;
           let paths =
             List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) tbl [])
           in
           List.iter
             (fun path ->
                let n, d = Hashtbl.find tbl path in
                let depth = List.length path - 1 in
                let name = List.nth path depth in
                let label = String.make (2 + (2 * depth)) ' ' ^ name in
                Buffer.add_string buf
                  (Printf.sprintf "%-42s %4dx  time  : %.2fms\n" label n (ms d)))
             paths
         end)
      (tracks t);
    let counters =
      List.filter_map
        (function name, Counter c -> Some (name, Counter.value c) | _ -> None)
        (metrics t)
    and gauges =
      List.filter_map
        (function name, Gauge g -> Some (name, Gauge.value g) | _ -> None)
        (metrics t)
    and histos =
      List.filter_map
        (function name, Histogram h -> Some (name, h) | _ -> None)
        (metrics t)
    in
    if counters <> [] then begin
      Buffer.add_string buf "counters:\n";
      List.iter
        (fun (name, v) ->
           Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" name v))
        counters
    end;
    if gauges <> [] then begin
      Buffer.add_string buf "gauges:\n";
      List.iter
        (fun (name, v) ->
           Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" name v))
        gauges
    end;
    if histos <> [] then begin
      Buffer.add_string buf "histograms:\n";
      List.iter
        (fun (name, h) ->
           let bins = Histogram.bins h in
           let lo = match bins with [] -> 0 | (v, _) :: _ -> v in
           let hi = List.fold_left (fun _ (v, _) -> v) lo bins in
           Buffer.add_string buf
             (Printf.sprintf "  %-40s n=%d total=%d min=%d max=%d\n" name
                (Histogram.count h) (Histogram.total h) lo hi))
        histos
    end;
    Buffer.contents buf

  let attrs_json attrs =
    String.concat ","
      (List.map
         (fun (k, v) ->
            Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         attrs)

  let jsonl t =
    let buf = Buffer.create 512 in
    List.iter
      (fun e ->
         Buffer.add_string buf
           (Printf.sprintf
              "{\"type\":\"span\",\"name\":\"%s\",\"track\":%d,\"depth\":%d,\
               \"start_ms\":%.3f,\"dur_ms\":%.3f,\"attrs\":{%s}}\n"
              (json_escape e.ev_name) e.ev_track e.ev_depth (ms e.ev_start_s)
              (ms e.ev_dur_s) (attrs_json e.ev_attrs)))
      (events t);
    List.iter
      (fun (name, m) ->
         match m with
         | Counter c ->
           Buffer.add_string buf
             (Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}\n"
                (json_escape name) (Counter.value c))
         | Gauge g ->
           Buffer.add_string buf
             (Printf.sprintf "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%d}\n"
                (json_escape name) (Gauge.value g))
         | Histogram h ->
           Buffer.add_string buf
             (Printf.sprintf
                "{\"type\":\"histogram\",\"name\":\"%s\",\"bins\":[%s]}\n"
                (json_escape name)
                (String.concat ","
                   (List.map
                      (fun (v, n) -> Printf.sprintf "[%d,%d]" v n)
                      (Histogram.bins h)))))
      (metrics t);
    Buffer.contents buf

  (* Chrome trace_event JSON (the about:tracing / Perfetto format): one
     thread_name metadata record per track, one complete ("X") event per
     span with microsecond timestamps, and one final counter ("C") sample
     per counter/gauge at the end of the trace. *)
  let chrome t =
    let evs = events t in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\"traceEvents\":[";
    let first = ref true in
    let emit s =
      if !first then first := false else Buffer.add_string buf ",";
      Buffer.add_string buf "\n";
      Buffer.add_string buf s
    in
    List.iter
      (fun (track, name) ->
         emit
           (Printf.sprintf
              "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
               \"args\":{\"name\":\"%s\"}}"
              track (json_escape name)))
      (tracks t);
    List.iter
      (fun e ->
         let args =
           match e.ev_attrs with
           | [] -> ""
           | attrs -> Printf.sprintf ",\"args\":{%s}" (attrs_json attrs)
         in
         emit
           (Printf.sprintf
              "{\"name\":\"%s\",\"cat\":\"svc\",\"ph\":\"X\",\"ts\":%.3f,\
               \"dur\":%.3f,\"pid\":1,\"tid\":%d%s}"
              (json_escape e.ev_name)
              (e.ev_start_s *. 1e6)
              (e.ev_dur_s *. 1e6)
              e.ev_track args))
      evs;
    let end_ts =
      List.fold_left
        (fun acc e -> Float.max acc ((e.ev_start_s +. e.ev_dur_s) *. 1e6))
        0. evs
    in
    List.iter
      (fun (name, m) ->
         match m with
         | Counter c ->
           emit
             (Printf.sprintf
                "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\
                 \"tid\":0,\"args\":{\"value\":%d}}"
                (json_escape name) end_ts (Counter.value c))
         | Gauge g ->
           emit
             (Printf.sprintf
                "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\
                 \"tid\":0,\"args\":{\"value\":%d}}"
                (json_escape name) end_ts (Gauge.value g))
         | Histogram h ->
           emit
             (Printf.sprintf
                "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\
                 \"tid\":0,\"args\":{\"count\":%d,\"total\":%d}}"
                (json_escape name) end_ts (Histogram.count h)
                (Histogram.total h)))
      (metrics t);
    Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
    Buffer.contents buf

  let write_chrome t path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (chrome t))
end
