(* Reading side of the Chrome trace_event format: a minimal dependency-free
   JSON parser, a schema check, and the renderer behind `svc trace
   summary`.  The parser accepts exactly the JSON grammar (objects,
   arrays, strings with escapes, numbers, true/false/null); it exists so
   the CLI can validate and summarize trace files without pulling in a
   JSON library. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Malformed of string

let parse (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit in \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | None -> fail "unterminated escape"
         | Some c ->
           advance ();
           (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let code =
                (hex_digit s.[!pos] lsl 12)
                lor (hex_digit s.[!pos + 1] lsl 8)
                lor (hex_digit s.[!pos + 2] lsl 4)
                lor hex_digit s.[!pos + 3]
              in
              pos := !pos + 4;
              (* UTF-8 encode the code point (BMP only — enough for traces
                 we emit, which escape only control characters) *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
            | _ -> fail "unknown escape"));
        go ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let parse_literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> parse_literal "true" (Bool true)
    | Some 'f' -> parse_literal "false" (Bool false)
    | Some 'n' -> parse_literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    Ok v
  with Malformed msg -> Error msg

(* ---------------- trace-event schema ---------------- *)

type tev = {
  t_name : string;
  t_ph : string;
  t_tid : int;
  t_ts : float;  (* microseconds; 0 for metadata *)
  t_dur : float;  (* microseconds; 0 unless ph = X *)
  t_args : (string * json) list;
}

let known_phases = [ "X"; "B"; "E"; "M"; "C"; "I"; "i"; "b"; "e" ]

let field name fields = List.assoc_opt name fields

let require_num what name fields =
  match field name fields with
  | Some (Num f) -> f
  | Some _ -> raise (Malformed (Printf.sprintf "%s: %S is not a number" what name))
  | None -> raise (Malformed (Printf.sprintf "%s: missing %S" what name))

let require_str what name fields =
  match field name fields with
  | Some (Str s) -> s
  | Some _ -> raise (Malformed (Printf.sprintf "%s: %S is not a string" what name))
  | None -> raise (Malformed (Printf.sprintf "%s: missing %S" what name))

(* Validate one trace event object against the Chrome trace_event schema
   subset we emit (and Perfetto accepts). *)
let validate_event i j =
  let what = Printf.sprintf "event #%d" i in
  match j with
  | Obj fields ->
    let ph = require_str what "ph" fields in
    if not (List.mem ph known_phases) then
      raise (Malformed (Printf.sprintf "%s: unknown phase %S" what ph));
    let name = require_str what "name" fields in
    ignore (require_num what "pid" fields);
    let tid = int_of_float (require_num what "tid" fields) in
    let ts = if ph = "M" then 0. else require_num what "ts" fields in
    let dur = if ph = "X" then require_num what "dur" fields else 0. in
    if dur < 0. then raise (Malformed (Printf.sprintf "%s: negative duration" what));
    let args =
      match field "args" fields with
      | Some (Obj a) -> a
      | Some _ -> raise (Malformed (Printf.sprintf "%s: \"args\" is not an object" what))
      | None -> []
    in
    { t_name = name; t_ph = ph; t_tid = tid; t_ts = ts; t_dur = dur; t_args = args }
  | _ -> raise (Malformed (Printf.sprintf "%s: not an object" what))

let validate (j : json) : (tev list, string) result =
  match j with
  | Obj fields ->
    (match field "traceEvents" fields with
     | Some (Arr evs) ->
       (try Ok (List.mapi validate_event evs) with Malformed msg -> Error msg)
     | Some _ -> Error "\"traceEvents\" is not an array"
     | None -> Error "missing \"traceEvents\" array")
  | _ -> Error "top level is not an object"

(* ---------------- summary rendering ---------------- *)

let summarize ~name text =
  match parse text with
  | Error msg -> Error (Printf.sprintf "malformed JSON: %s" msg)
  | Ok j ->
    (match validate j with
     | Error msg -> Error (Printf.sprintf "invalid trace: %s" msg)
     | Ok evs ->
       let buf = Buffer.create 512 in
       let spans = List.filter (fun e -> e.t_ph = "X") evs in
       let metas = List.filter (fun e -> e.t_ph = "M") evs in
       let counters = List.filter (fun e -> e.t_ph = "C") evs in
       Buffer.add_string buf (Printf.sprintf "trace summary : %s\n" name);
       Buffer.add_string buf
         (Printf.sprintf "events        : %d (%d spans, %d metadata, %d counter samples)\n"
            (List.length evs) (List.length spans) (List.length metas)
            (List.length counters));
       (* track table: names from thread_name metadata, span counts per tid *)
       let track_name tid =
         List.fold_left
           (fun acc e ->
              if e.t_ph = "M" && e.t_name = "thread_name" && e.t_tid = tid then
                match field "name" e.t_args with Some (Str s) -> Some s | _ -> acc
              else acc)
           None evs
       in
       let tids =
         List.sort_uniq compare (List.map (fun e -> e.t_tid) (spans @ metas))
       in
       Buffer.add_string buf (Printf.sprintf "tracks        : %d\n" (List.length tids));
       List.iter
         (fun tid ->
            let count =
              List.length (List.filter (fun e -> e.t_tid = tid) spans)
            in
            let label =
              match track_name tid with
              | Some n -> Printf.sprintf "track %d (%s)" tid n
              | None -> Printf.sprintf "track %d" tid
            in
            Buffer.add_string buf (Printf.sprintf "  %-26s: %d spans\n" label count))
         tids;
       (* span aggregation by name, sorted *)
       if spans <> [] then begin
         Buffer.add_string buf "spans by name:\n";
         let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
         List.iter
           (fun e ->
              let c, d =
                Option.value ~default:(0, 0.) (Hashtbl.find_opt tbl e.t_name)
              in
              Hashtbl.replace tbl e.t_name (c + 1, d +. e.t_dur))
           spans;
         List.iter
           (fun name ->
              let c, d = Hashtbl.find tbl name in
              Buffer.add_string buf
                (Printf.sprintf "  %-40s %4dx  time  : %.2fms\n" name c (d /. 1000.)))
           (List.sort compare
              (Hashtbl.fold (fun name _ acc -> name :: acc) tbl []))
       end;
       if counters <> [] then begin
         Buffer.add_string buf "counters:\n";
         List.iter
           (fun e ->
              let v =
                match field "value" e.t_args with
                | Some (Num f) -> Printf.sprintf "%.0f" f
                | _ ->
                  (* histogram-style sample: show its args verbatim *)
                  String.concat " "
                    (List.map
                       (fun (k, v) ->
                          match v with
                          | Num f -> Printf.sprintf "%s=%.0f" k f
                          | _ -> k)
                       e.t_args)
              in
              Buffer.add_string buf (Printf.sprintf "  %-40s %s\n" e.t_name v))
           counters
       end;
       Ok (Buffer.contents buf))
