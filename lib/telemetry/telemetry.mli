(** Unified telemetry: hierarchical spans, a metrics registry, and
    exporters (summary tree, JSON lines, Chrome [trace_event]).

    A tracer {!t} records {e spans} (named, nested, timestamped intervals)
    and owns a {e registry} of named metrics.  Timestamps come from an
    injectable {!Clock.t}, so tests run on a fake deterministic clock and
    pin exporter output byte-exactly.

    {2 Cost model}

    A {e disabled} tracer ({!disabled}, or [create ~enabled:false]) records
    nothing: {!span} is one branch and then the thunk, {!enter}/{!exit} are
    no-ops.  Metrics are {e always} live — a {!Counter.t} is a mutable
    [int] — so subsystems keep their instrumentation in the registry
    instead of duplicating it in private fields, at no extra cost.

    {2 Concurrency}

    A tracer is single-domain: spans and metrics must be touched only from
    the domain that owns it.  Parallel runs give each worker slot its own
    {!fork} (fresh span buffer and stack; shared clock, epoch, registry and
    track table) created {e in the owning domain before spawning}, and
    {!join} the buffers back after the workers are joined.  Events carry a
    (track, per-track sequence) pair, so the exported order is canonical
    whatever the scheduling. *)

module Clock : sig
  type t = unit -> float
  (** Monotonic seconds.  Absolute origin is irrelevant: all exported
      timestamps are relative to the tracer's creation. *)

  val monotonic : t
  (** Wall clock ([Unix.gettimeofday]). *)

  val fake : ?start:float -> unit -> t * (float -> unit)
  (** A deterministic manual clock and its [advance] function (strictly
      non-negative increments).  Reads never mutate, so concurrent domains
      may read freely; advancing is atomic.
      @raise Invalid_argument on a negative advance. *)
end

(** Monotone integer counters.  Not thread-safe: increment only from the
    owning domain; parallel code accumulates per-slot and merges after the
    join (merge is associative and commutative). *)
module Counter : sig
  type t

  val create : unit -> t
  (** A fresh standalone counter (not in any registry). *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit

  val merge : t -> t -> t
  (** Fresh counter holding the sum. *)
end

(** Last-value integer gauges ({!Gauge.merge} takes the max, making merge
    associative and commutative). *)
module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> int -> unit
  val value : t -> int
  val merge : t -> t -> t
end

(** Exact integer histograms: every observed value keeps its own bin, so
    merging loses nothing and is associative and commutative. *)
module Histogram : sig
  type t

  val create : unit -> t
  val observe : t -> int -> unit

  val observe_n : t -> int -> int -> unit
  (** [observe_n h v n] records [n] observations of [v].
      @raise Invalid_argument on negative [n]. *)

  val count : t -> int
  (** Number of observations. *)

  val total : t -> int
  (** Sum of observed values. *)

  val bins : t -> (int * int) list
  (** [(value, occurrences)] pairs, sorted by value. *)

  val of_list : int list -> t
  val merge : t -> t -> t
  val equal : t -> t -> bool
end

type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

type t

val create : ?clock:Clock.t -> ?enabled:bool -> unit -> t
(** A fresh tracer on track [0] (named ["main"]), epoch = the clock now.
    [enabled] defaults to [true]. *)

val disabled : unit -> t
(** A fresh disabled tracer: spans are free no-ops, the metrics registry
    is fully functional.  The default instrumentation sink. *)

val enabled : t -> bool

(** {1 Spans} *)

type span

val enter : t -> ?attrs:(string * string) list -> string -> span
(** Open a span.  On a disabled tracer, a free no-op handle. *)

val exit : t -> span -> unit
(** Close a span.  Spans close innermost-first.
    @raise Invalid_argument if the span is not the innermost open one. *)

val span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a fresh span.  The span is closed (and
    its event recorded) even when [f] raises. *)

val open_spans : t -> int
(** Currently open spans on this tracer's stack. *)

(** {1 Forking (parallel tracks)} *)

val fork : ?name:string -> t -> track:int -> t
(** A child tracer recording onto [track] (default name ["domain N"]):
    fresh buffer, stack and sequence, shared clock/epoch/registry/track
    table.  Call from the owning domain {e before} handing the child to a
    worker; the child must then be touched by that worker alone.
    @raise Invalid_argument on a negative track. *)

val join : t -> t -> unit
(** [join t child] folds the child's recorded events into [t].  Call after
    the worker domain has been joined. *)

(** {1 Reading the record} *)

type event = {
  ev_name : string;
  ev_track : int;
  ev_seq : int;  (** completion order within the track *)
  ev_depth : int;  (** open spans above this one when it was entered *)
  ev_path : string list;  (** root-first call path, ending in [ev_name] *)
  ev_start_s : float;  (** seconds since the tracer's epoch *)
  ev_dur_s : float;
  ev_attrs : (string * string) list;
}

val events : t -> event list
(** All recorded (and joined) span events, sorted by (track, sequence). *)

val tracks : t -> (int * string) list
(** Known tracks, ascending. *)

val aggregate : t -> (string * int * float) array
(** Per span name: (name, count, total duration in seconds), sorted by
    name.  The deterministic projection used by {!Stats}-style records. *)

(** {1 Metrics registry} *)

val counter : t -> string -> Counter.t
(** Find-or-create by name; the same name always yields the same counter,
    so independent subsystems naming one arrow share one count.
    @raise Invalid_argument if the name is registered as another kind. *)

val gauge : t -> string -> Gauge.t
val histogram : t -> string -> Histogram.t

val metrics : t -> (string * metric) list
(** Registration order. *)

(** {1 Exporters}

    Pure functions of the recorded events and registry. *)

module Export : sig
  val summary : t -> string
  (** Human-readable block: spans grouped per track and nested by call
      path (alphabetical siblings), then counters/gauges/histograms.
      Every wall-clock figure ends its line in [time  : …ms], so one mask
      covers them all in cram tests. *)

  val jsonl : t -> string
  (** One JSON object per line: spans first (track order), then metrics. *)

  val chrome : t -> string
  (** Chrome [trace_event] JSON, loadable in [about:tracing] / Perfetto:
      a [thread_name] metadata record per track, an ["X"] (complete)
      event per span with microsecond timestamps, and a final ["C"]
      counter sample per counter/gauge/histogram. *)

  val write_chrome : t -> string -> unit
  (** Write {!chrome} to a file path.  @raise Sys_error on I/O failure. *)
end
