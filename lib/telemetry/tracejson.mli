(** Reading side of the Chrome [trace_event] format: a minimal JSON
    parser, a schema validator, and the renderer behind
    [svc trace summary].  Dependency-free on purpose — the repo has no
    JSON library and should not grow one for this. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result
(** Parse a complete JSON document.  Errors carry a byte offset. *)

(** One validated trace event. *)
type tev = {
  t_name : string;
  t_ph : string;  (** phase: ["X"], ["M"], ["C"], … *)
  t_tid : int;
  t_ts : float;  (** microseconds; [0.] for metadata events *)
  t_dur : float;  (** microseconds; [0.] unless [t_ph = "X"] *)
  t_args : (string * json) list;
}

val validate : json -> (tev list, string) result
(** Check the document against the trace-event subset we emit: a
    top-level object with a ["traceEvents"] array whose members each
    carry a known ["ph"], a ["name"], numeric ["pid"]/["tid"], a ["ts"]
    (except metadata) and a non-negative ["dur"] on complete events. *)

val summarize : name:string -> string -> (string, string) result
(** [summarize ~name text] parses and validates [text] (a trace file's
    contents) and renders the human-readable summary printed by
    [svc trace summary].  Wall-clock lines end in [time  : …ms] to match
    the cram mask. *)
