(** Anytime sampling SVC estimator.

    Every exact backend (conditioning, circuit, planned circuit) is
    limited to ~100 endogenous facts by the #P-hardness wall.  This
    module trades exactness for scale: it estimates Shapley (and
    Banzhaf) values of a compiled lineage by randomized sampling, with
    {e rational-arithmetic} confidence intervals — no floats anywhere in
    the estimate or the bound, so a run is a pure function of
    [(lineage, universe, config)] and in particular of the [seed]:
    bit-identical on every host and at every [jobs] count.

    {2 Strategies}

    - {!Monte_carlo}: ApproShapley permutation sampling.  One uniform
      random permutation of the universe yields a marginal contribution
      for {e every} fact at once (for monotone lineages exactly one fact
      per permutation flips the query — found by binary search over
      prefix lengths in [O(log n)] evaluations); the estimate for each
      fact is the mean of its contributions.  One "draw" = one
      permutation, shared by all facts.  The strategy of choice at
      [n >= 10³].
    - {!Stratified}: per fact, the Shapley value is averaged over
      coalition-size strata — [Sh(μ) = (1/n) Σ_k E_k] where [E_k] is the
      expected marginal contribution over uniform size-[k] coalitions of
      [U∖{μ}] (the same stratification the splitting identity
      [C = z·C₁ + C₀] gives the exact engines coefficient-by-
      coefficient).  Each stratum is sampled independently and the
      per-stratum intervals are combined by a union bound.
    - {!Hybrid}: as {!Stratified}, but every stratum whose coalition
      count [C(n-1,k)] is at most [exact_cap] is {e enumerated} instead
      of sampled, contributing zero interval width.  When every stratum
      is exact (always the case on small instances) the result is
      {b rationally equal} to the exact engines — the identity
      [(1/n)/C(n-1,k) = k!(n-1-k)!/n!] is Claim A.1 term by term — and
      the report says [draws = 0], [half_width = 0], [converged].

    {2 Confidence intervals}

    Per fact, the reported [half_width] is a valid
    [confidence]-level bound on [|value - Sh(μ)|] (per-fact, not
    familywise): Hoeffding by default, or the Maurer–Pontil empirical
    Bernstein bound under [`Bernstein] (tighter when the observed
    variance is small).  All bound arithmetic uses
    {!Rational.sqrt_upper} / {!Rational.ln_upper}, so the intervals are
    conservative rational over-approximations — the stopping rule can
    only stop {e later} than an ideal real-valued rule, never report a
    half-width below what the inequality certifies.

    {2 Anytime stopping}

    Draws proceed in batches of [batch]; after each batch the rule stops
    as soon as the half-width is [<= epsilon] ([converged = true]) or
    the [max_draws] budget is exhausted ([converged] reports whether the
    target was still met).  Under {!Monte_carlo} the budget counts
    shared permutations; under the stratified strategies it is a
    per-fact budget across that fact's sampled strata. *)

type strategy = Monte_carlo | Stratified | Hybrid

val strategy_to_string : strategy -> string

val strategy_of_string : string -> strategy option
(** Accepts ["mc"] / ["monte-carlo"], ["stratified"], ["hybrid"]. *)

type bound = Hoeffding | Bernstein

val bound_to_string : bound -> string
val bound_of_string : string -> bound option

type config = {
  strategy : strategy;
  seed : int;  (** master seed; every substream is derived from it *)
  epsilon : Rational.t;  (** target CI half-width, [> 0] *)
  confidence : Rational.t;  (** CI level in [(0, 1)], e.g. [19/20] *)
  max_draws : int;  (** draw budget, [>= 1] (see the stopping-rule note) *)
  batch : int;  (** draws between stopping-rule checks, [>= 1] *)
  exact_cap : int;
      (** {!Hybrid} only: strata with [C(n-1,k) <= exact_cap] coalitions
          are enumerated exactly ([>= 0]) *)
  bound : bound;
}

val default : config
(** [Hybrid], seed [0], [epsilon = 1/20], [confidence = 19/20],
    [max_draws = 4096], [batch = 64], [exact_cap = 512], [Hoeffding]. *)

val config :
  ?strategy:strategy -> ?seed:int -> ?epsilon:Rational.t ->
  ?confidence:Rational.t -> ?max_draws:int -> ?batch:int ->
  ?exact_cap:int -> ?bound:bound -> unit -> config
(** {!default} with overrides, validated.
    @raise Invalid_argument as {!validate}. *)

val validate : config -> unit
(** @raise Invalid_argument if [epsilon <= 0], [confidence] outside
    [(0, 1)], [max_draws < 1], [batch < 1] or [exact_cap < 0]. *)

type estimate = {
  fact : Fact.t;
  value : Rational.t;  (** point estimate of the Shapley/Banzhaf value *)
  half_width : Rational.t;
      (** CI half-width at [confidence]; [0] iff the value is exact *)
  draws : int;  (** draws charged to this fact *)
  exact_strata : int;  (** strata enumerated exactly (stratified only) *)
  sampled_strata : int;
  converged : bool;  (** [half_width <= epsilon] *)
}

type report = {
  estimates : estimate array;  (** in universe order *)
  total_draws : int;
      (** {!Monte_carlo}: shared permutations, counted once; otherwise
          the sum of per-fact draws *)
  total_evals : int;  (** lineage evaluations performed *)
  max_half_width : Rational.t;
  all_converged : bool;
}

val shapley :
  ?tel:Telemetry.t -> config -> universe:Fact.t list -> Bform.t -> report
(** Estimate the Shapley value of every fact of [universe] (the
    endogenous facts, in engine order) for the lineage [phi].  The
    result is a deterministic function of [(config, universe, phi)].
    When [tel] is given, the run is a [sample.eval] span (with one
    [sample.fact] span per fact under the stratified strategies and one
    [sample.round] span per batch round under {!Monte_carlo}), and the
    [sample.draws] / [sample.evals] / [sample.exact_strata] /
    [sample.sampled_strata] counters and the [sample.max_hw_ppm] gauge
    (half-width in parts per million, rounded up) are updated.
    @raise Invalid_argument if the config is invalid ({!validate}) or
    [phi] mentions a fact outside [universe]. *)

val banzhaf :
  ?tel:Telemetry.t -> config -> universe:Fact.t list -> Bform.t -> report
(** Banzhaf estimates by uniform coalition sampling (one shared subset
    per draw serves every fact).  [strategy] and [exact_cap] are ignored
    — the Banzhaf value has no permutation/stratum structure — while
    seed, epsilon, confidence, budget, batch and bound apply as in
    {!shapley}. *)

(** The confidence-interval arithmetic, exposed for the statistical test
    layer.  Draw values live in an interval of width [range]
    ([{0,1}] for monotone lineages, [{-1,0,1}] otherwise). *)
module Bound : sig
  val log_term : confidence:Rational.t -> intervals:int -> Rational.t
  (** [ln_upper (2/δ')] with [δ' = (1 - confidence)/intervals] — the
      per-interval log term after a union bound over [intervals]
      simultaneous intervals. *)

  val hoeffding : range:Rational.t -> log_term:Rational.t -> m:int -> Rational.t
  (** [range · √(log_term/(2m))]: with probability [>= 1 - δ'] the
      sample mean of [m] i.i.d. draws is within this of the true mean. *)

  val bernstein :
    range:Rational.t -> log_term:Rational.t -> m:int -> sum:int ->
    sumsq:int -> Rational.t
  (** The Maurer–Pontil empirical Bernstein bound
      [√(2·V·log_term/m) + 7·range·log_term/(3(m-1))] where [V] is the
      unbiased sample variance reconstructed from the integer draw sums
      [sum = Σxᵢ], [sumsq = Σxᵢ²].  Falls back to {!hoeffding} at
      [m < 2]. *)
end

(** Deterministic seeded PRNG (a splitmix64-mixed xorshift64-star
    stream), exposed for the statistical test layer.  Substreams derived via {!of_path}
    from distinct paths are independent for all practical purposes,
    which is what makes every strategy's draw sequence a function of the
    master seed alone — independent of evaluation order and [jobs]. *)
module Rng : sig
  type t

  val create : int -> t
  val of_path : int -> int list -> t
  val int : t -> int -> int
  (** [int t bound] is uniform in [[0, bound)].
      @raise Invalid_argument if [bound <= 0]. *)

  val bool : t -> bool
end
