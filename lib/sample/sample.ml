(* Anytime sampling SVC estimator.

   Everything here is exact rational arithmetic over integer draw sums:
   the only randomness is the seeded PRNG, so a run is a pure function
   of (lineage, universe, config) — the determinism contract the test
   layer pins (same seed => bit-identical report at any jobs count).

   The stratified view: for a universe U with |U| = n and μ ∈ U,

     Sh(μ) = (1/n) Σ_{k=0}^{n-1} E_k(μ),
     E_k(μ) = (FGMC_k(φ[μ:=1]) - FGMC_k(φ[μ:=0])) / C(n-1, k)

   — the expected marginal contribution of μ over uniform size-k
   coalitions of U∖{μ}.  Since (1/n)/C(n-1,k) = k!(n-1-k)!/n!, a stratum
   computed exactly contributes its Claim A.1 terms verbatim, which is
   why the hybrid estimator with every stratum exact equals the exact
   engines rationally, not just approximately. *)

type strategy = Monte_carlo | Stratified | Hybrid

let strategy_to_string = function
  | Monte_carlo -> "mc"
  | Stratified -> "stratified"
  | Hybrid -> "hybrid"

let strategy_of_string = function
  | "mc" | "monte-carlo" -> Some Monte_carlo
  | "stratified" -> Some Stratified
  | "hybrid" -> Some Hybrid
  | _ -> None

type bound = Hoeffding | Bernstein

let bound_to_string = function Hoeffding -> "hoeffding" | Bernstein -> "bernstein"

let bound_of_string = function
  | "hoeffding" -> Some Hoeffding
  | "bernstein" -> Some Bernstein
  | _ -> None

type config = {
  strategy : strategy;
  seed : int;
  epsilon : Rational.t;
  confidence : Rational.t;
  max_draws : int;
  batch : int;
  exact_cap : int;
  bound : bound;
}

let default =
  {
    strategy = Hybrid;
    seed = 0;
    epsilon = Rational.of_ints 1 20;
    confidence = Rational.of_ints 19 20;
    max_draws = 4096;
    batch = 64;
    exact_cap = 512;
    bound = Hoeffding;
  }

let validate cfg =
  if Rational.sign cfg.epsilon <= 0 then
    invalid_arg "Sample: epsilon must be > 0";
  if Rational.sign cfg.confidence <= 0
     || not (Rational.lt cfg.confidence Rational.one) then
    invalid_arg "Sample: confidence must be in (0, 1)";
  if cfg.max_draws < 1 then invalid_arg "Sample: max_draws must be >= 1";
  if cfg.batch < 1 then invalid_arg "Sample: batch must be >= 1";
  if cfg.exact_cap < 0 then invalid_arg "Sample: exact_cap must be >= 0"

let config ?(strategy = default.strategy) ?(seed = default.seed)
    ?(epsilon = default.epsilon) ?(confidence = default.confidence)
    ?(max_draws = default.max_draws) ?(batch = default.batch)
    ?(exact_cap = default.exact_cap) ?(bound = default.bound) () =
  let cfg =
    { strategy; seed; epsilon; confidence; max_draws; batch; exact_cap; bound }
  in
  validate cfg;
  cfg

type estimate = {
  fact : Fact.t;
  value : Rational.t;
  half_width : Rational.t;
  draws : int;
  exact_strata : int;
  sampled_strata : int;
  converged : bool;
}

type report = {
  estimates : estimate array;
  total_draws : int;
  total_evals : int;
  max_half_width : Rational.t;
  all_converged : bool;
}

(* ------------------------------------------------------------------ *)
(* Seeded PRNG                                                         *)
(* ------------------------------------------------------------------ *)

module Rng = struct
  type t = { mutable s : int64 }

  let golden = 0x9E3779B97F4A7C15L

  (* splitmix64's output mixer: a bijection on 64-bit words with full
     avalanche, used both to seed and to derive substreams *)
  let mix64 z =
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (* xorshift64* needs a nonzero state *)
  let of_state z = { s = (if Int64.equal z 0L then golden else z) }

  let create seed = of_state (mix64 (Int64.add (Int64.of_int seed) golden))

  let of_path seed path =
    let z0 = mix64 (Int64.add (Int64.of_int seed) golden) in
    of_state
      (List.fold_left
         (fun acc i ->
            mix64 (Int64.add (Int64.mul acc 0x100000001B3L) (Int64.of_int (i + 1))))
         z0 path)

  let next t =
    let s = t.s in
    let s = Int64.logxor s (Int64.shift_left s 13) in
    let s = Int64.logxor s (Int64.shift_right_logical s 7) in
    let s = Int64.logxor s (Int64.shift_left s 17) in
    t.s <- s;
    Int64.mul s 0x2545F4914F6CDD1DL

  let int t bound =
    if bound <= 0 then invalid_arg "Sample.Rng.int: bound must be positive";
    (* modulo of 63 uniform bits: bias < 2^-50 for any practical bound *)
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

  let bool t = Int64.equal (Int64.logand (next t) 1L) 1L
end

(* ------------------------------------------------------------------ *)
(* Confidence bounds                                                   *)
(* ------------------------------------------------------------------ *)

module Bound = struct
  let log_term ~confidence ~intervals =
    let delta = Rational.sub Rational.one confidence in
    let delta' = Rational.div delta (Rational.of_int intervals) in
    Rational.ln_upper (Rational.div (Rational.of_int 2) delta')

  let hoeffding ~range ~log_term ~m =
    Rational.mul range
      (Rational.sqrt_upper (Rational.div log_term (Rational.of_int (2 * m))))

  let bernstein ~range ~log_term ~m ~sum ~sumsq =
    if m < 2 then hoeffding ~range ~log_term ~m
    else begin
      (* unbiased sample variance from the integer draw sums; the draws
         are in {-1,0,1} so the int products stay far below overflow *)
      let v = Rational.of_ints ((m * sumsq) - (sum * sum)) (m * (m - 1)) in
      let t1 =
        Rational.sqrt_upper
          (Rational.div
             (Rational.mul (Rational.of_int 2) (Rational.mul v log_term))
             (Rational.of_int m))
      in
      let t2 =
        Rational.div
          (Rational.mul range (Rational.mul (Rational.of_int 7) log_term))
          (Rational.of_int (3 * (m - 1)))
      in
      Rational.add t1 t2
    end
end

(* ------------------------------------------------------------------ *)
(* Lineage evaluation over an indexed universe                         *)
(* ------------------------------------------------------------------ *)

(* The compiled Bform is re-indexed over int variables so a draw is one
   O(|φ|) sweep against a mutable membership array — no Fact.Set
   allocation per evaluation (Bform.eval would build one per probe). *)
module Nf = struct
  type t =
    | T
    | F
    | V of int
    | And of t array
    | Or of t array
    | Not of t

  let of_bform ~index phi =
    let rec go = function
      | Bform.True -> T
      | Bform.False -> F
      | Bform.Fv f ->
        (match Hashtbl.find_opt index f with
         | Some i -> V i
         | None ->
           invalid_arg
             (Printf.sprintf "Sample: lineage mentions %s outside the universe"
                (Fact.to_string f)))
      | Bform.And l -> And (Array.of_list (List.map go l))
      | Bform.Or l -> Or (Array.of_list (List.map go l))
      | Bform.Not b -> Not (go b)
    in
    go phi

  let rec eval present = function
    | T -> true
    | F -> false
    | V i -> present.(i)
    | Not b -> not (eval present b)
    | And bs ->
      let n = Array.length bs in
      let rec all i = i >= n || (eval present bs.(i) && all (i + 1)) in
      all 0
    | Or bs ->
      let n = Array.length bs in
      let rec any i = i < n && (eval present bs.(i) || any (i + 1)) in
      any 0

  let rec monotone = function
    | T | F | V _ -> true
    | Not _ -> false
    | And bs | Or bs -> Array.for_all monotone bs
end

type ctx = {
  cfg : config;
  universe : Fact.t array;
  n : int;
  nf : Nf.t;
  mono : bool;
  present : bool array;
  evals : int ref;
}

let make_ctx cfg universe phi =
  let universe = Array.of_list universe in
  let n = Array.length universe in
  let index = Hashtbl.create (max 16 n) in
  Array.iteri
    (fun i f ->
       if Hashtbl.mem index f then
         invalid_arg "Sample: duplicate fact in universe";
       Hashtbl.add index f i)
    universe;
  let nf = Nf.of_bform ~index phi in
  {
    cfg;
    universe;
    n;
    nf;
    mono = Nf.monotone nf;
    present = Array.make n false;
    evals = ref 0;
  }

let eval ctx =
  incr ctx.evals;
  Nf.eval ctx.present ctx.nf

let b2i b = if b then 1 else 0

(* draw support width: marginal contributions live in {0,1} for monotone
   lineages, {-1,0,1} otherwise *)
let range_of ctx = if ctx.mono then Rational.one else Rational.of_int 2

let finish ctx estimates ~total_draws =
  let max_hw =
    Array.fold_left
      (fun acc e -> Rational.max acc e.half_width)
      Rational.zero estimates
  in
  {
    estimates;
    total_draws;
    total_evals = !(ctx.evals);
    max_half_width = max_hw;
    all_converged = Array.for_all (fun e -> e.converged) estimates;
  }

(* ------------------------------------------------------------------ *)
(* Monte-Carlo permutation sampling (ApproShapley)                     *)
(* ------------------------------------------------------------------ *)

(* One permutation yields a marginal contribution for every fact: the
   estimate of Sh(μ) is the mean of μ's contributions, the draw budget
   counts shared permutations.  Monotone lineages take the pivot fast
   path — along any permutation φ flips false→true at most once, so the
   flip position is found by binary search over prefix lengths
   (O(log n) evaluations) and only the pivot fact's sums move.  The
   stopping rule uses the Hoeffding width, which at shared m is the
   same for every fact; under `Bernstein the final per-fact widths are
   refined to min(hoeffding, bernstein) — both are valid bounds. *)
let monte_carlo ctx tel =
  let cfg = ctx.cfg and n = ctx.n in
  let range = range_of ctx in
  let log_term = Bound.log_term ~confidence:cfg.confidence ~intervals:1 in
  let sums = Array.make n 0 and sumsq = Array.make n 0 in
  let perm = Array.init n Fun.id in
  (* φ(∅) and φ(U) decide whether a monotone permutation has a pivot *)
  Array.fill ctx.present 0 n false;
  let empty_true = eval ctx in
  Array.fill ctx.present 0 n true;
  let full_true = eval ctx in
  Array.fill ctx.present 0 n false;
  let constant = ctx.mono && (empty_true || not full_true) in
  let cur = ref 0 in
  let set_prefix target =
    while !cur < target do
      ctx.present.(perm.(!cur)) <- true;
      incr cur
    done;
    while !cur > target do
      decr cur;
      ctx.present.(perm.(!cur)) <- false
    done
  in
  let one_permutation p =
    let rng = Rng.of_path cfg.seed [ p ] in
    for i = n - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t
    done;
    if constant then ()
    else if ctx.mono then begin
      (* invariant: φ(prefix lo) = false, φ(prefix hi) = true *)
      let lo = ref 0 and hi = ref n in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        set_prefix mid;
        if eval ctx then hi := mid else lo := mid
      done;
      let pivot = perm.(!hi - 1) in
      sums.(pivot) <- sums.(pivot) + 1;
      sumsq.(pivot) <- sumsq.(pivot) + 1;
      set_prefix 0
    end
    else begin
      let prev = ref empty_true in
      for i = 0 to n - 1 do
        ctx.present.(perm.(i)) <- true;
        let curv = eval ctx in
        let d = b2i curv - b2i !prev in
        sums.(perm.(i)) <- sums.(perm.(i)) + d;
        sumsq.(perm.(i)) <- sumsq.(perm.(i)) + (d * d);
        prev := curv
      done;
      Array.fill ctx.present 0 n false
    end
  in
  let m = ref 0 in
  let hw = ref range in
  let stop = ref false in
  while not !stop do
    let b = min cfg.batch (cfg.max_draws - !m) in
    Telemetry.span tel
      ~attrs:
        (if Telemetry.enabled tel then
           [ ("draws", string_of_int b) ]
         else [])
      "sample.round"
      (fun () ->
         for p = !m to !m + b - 1 do
           one_permutation p
         done);
    m := !m + b;
    hw := Bound.hoeffding ~range ~log_term ~m:!m;
    if Rational.leq !hw cfg.epsilon || !m >= cfg.max_draws then stop := true
  done;
  let estimates =
    Array.mapi
      (fun i fact ->
         let value = Rational.of_ints sums.(i) !m in
         let half_width =
           match cfg.bound with
           | Hoeffding -> !hw
           | Bernstein ->
             Rational.min !hw
               (Bound.bernstein ~range ~log_term ~m:!m ~sum:sums.(i)
                  ~sumsq:sumsq.(i))
         in
         {
           fact;
           value;
           half_width;
           draws = !m;
           exact_strata = 0;
           sampled_strata = 0;
           converged = Rational.leq half_width cfg.epsilon;
         })
      ctx.universe
  in
  finish ctx estimates ~total_draws:!m

(* ------------------------------------------------------------------ *)
(* Stratified / hybrid estimation                                      *)
(* ------------------------------------------------------------------ *)

(* Per fact μ: every coalition-size stratum k over U∖{μ} is either
   enumerated exactly (hybrid, C(n-1,k) <= exact_cap) or sampled.  A
   size-k operation only ever touches min(k, n-1-k) elements: for
   k > (n-1)/2 the complement of size n-1-k is enumerated/sampled and
   the membership default inverted.  The fact's half-width is
   (1/n)·Σ_k hw_k over sampled strata, each at level δ/#sampled (union
   bound); exact strata contribute zero width. *)
let stratified ctx tel ~exact_cap =
  let cfg = ctx.cfg and n = ctx.n in
  let n1 = n - 1 in
  let range = range_of ctx in
  let binom = Bigint.binomial_row (max n1 0) in
  let cap = Bigint.of_int exact_cap in
  let inv_n = Rational.of_ints 1 n in
  let one_fact fi =
    let fact = ctx.universe.(fi) in
    let others = Array.make (max n1 0) 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if i <> fi then begin
        others.(!j) <- i;
        incr j
      end
    done;
    (* membership default per stratum: [invert] strata keep all of
       [others] present and toggle the complement *)
    let stratum_args k =
      let kk = min k (n1 - k) in
      (kk, k > n1 - k)
    in
    let eval_pair () =
      (* marginal contribution at the current coalition of U∖{μ} *)
      ctx.present.(fi) <- false;
      let v0 = eval ctx in
      ctx.present.(fi) <- true;
      let v1 = eval ctx in
      ctx.present.(fi) <- false;
      b2i v1 - b2i v0
    in
    (* exact stratum: enumerate the C(n1,k) coalitions by stepping the
       lexicographic kk-combination of [others] *)
    let exact_stratum k =
      let kk, invert = stratum_args k in
      if invert then Array.iter (fun i -> ctx.present.(i) <- true) others;
      let dflt = invert in
      let diff = ref 0 in
      if kk = 0 then diff := eval_pair ()
      else begin
        let c = Array.init kk Fun.id in
        let stop = ref false in
        while not !stop do
          for t = 0 to kk - 1 do
            ctx.present.(others.(c.(t))) <- not dflt
          done;
          diff := !diff + eval_pair ();
          for t = 0 to kk - 1 do
            ctx.present.(others.(c.(t))) <- dflt
          done;
          (* advance the combination *)
          let i = ref (kk - 1) in
          while !i >= 0 && c.(!i) = n1 - kk + !i do decr i done;
          if !i < 0 then stop := true
          else begin
            c.(!i) <- c.(!i) + 1;
            for t = !i + 1 to kk - 1 do c.(t) <- c.(t - 1) + 1 done
          end
        done
      end;
      if invert then Array.iter (fun i -> ctx.present.(i) <- false) others;
      Rational.make (Bigint.of_int !diff) binom.(k)
    in
    let exact = Array.make (n1 + 1) None in
    let sampled = ref [] in
    for k = n1 downto 0 do
      if Bigint.leq binom.(k) cap then exact.(k) <- Some (exact_stratum k)
      else sampled := k :: !sampled
    done;
    let sampled = Array.of_list !sampled in
    let s = Array.length sampled in
    let exact_value =
      Array.fold_left
        (fun acc v -> match v with Some x -> Rational.add acc x | None -> acc)
        Rational.zero exact
    in
    if s = 0 then
      {
        fact;
        value = Rational.mul inv_n exact_value;
        half_width = Rational.zero;
        draws = 0;
        exact_strata = n1 + 1;
        sampled_strata = 0;
        converged = true;
      }
    else begin
      let log_term = Bound.log_term ~confidence:cfg.confidence ~intervals:s in
      let m = Array.make s 0
      and sum = Array.make s 0
      and sumsq = Array.make s 0 in
      let rngs =
        Array.map (fun k -> Rng.of_path cfg.seed [ fi; k ]) sampled
      in
      (* reusable pool for partial Fisher–Yates; swaps are undone after
         each draw so a draw's outcome depends only on its own rng state *)
      let pool = Array.copy others in
      let draw si =
        let k = sampled.(si) in
        let kk, invert = stratum_args k in
        let dflt = invert in
        if invert then Array.iter (fun i -> ctx.present.(i) <- true) others;
        let rng = rngs.(si) in
        let swaps = Array.make kk 0 in
        for t = 0 to kk - 1 do
          let r = t + Rng.int rng (n1 - t) in
          swaps.(t) <- r;
          let tmp = pool.(t) in
          pool.(t) <- pool.(r);
          pool.(r) <- tmp
        done;
        for t = 0 to kk - 1 do ctx.present.(pool.(t)) <- not dflt done;
        let d = eval_pair () in
        for t = 0 to kk - 1 do ctx.present.(pool.(t)) <- dflt done;
        for t = kk - 1 downto 0 do
          let r = swaps.(t) in
          let tmp = pool.(t) in
          pool.(t) <- pool.(r);
          pool.(r) <- tmp
        done;
        if invert then Array.iter (fun i -> ctx.present.(i) <- false) others;
        m.(si) <- m.(si) + 1;
        sum.(si) <- sum.(si) + d;
        sumsq.(si) <- sumsq.(si) + (d * d)
      in
      let stratum_hw si =
        if m.(si) = 0 then
          (* no draw yet: estimate at the midpoint of E_k's support,
             error at most half the width *)
          Rational.div range (Rational.of_int 2)
        else
          match cfg.bound with
          | Hoeffding -> Bound.hoeffding ~range ~log_term ~m:m.(si)
          | Bernstein ->
            Rational.min
              (Bound.hoeffding ~range ~log_term ~m:m.(si))
              (Bound.bernstein ~range ~log_term ~m:m.(si) ~sum:sum.(si)
                 ~sumsq:sumsq.(si))
      in
      let total_hw () =
        let acc = ref Rational.zero in
        for si = 0 to s - 1 do acc := Rational.add !acc (stratum_hw si) done;
        Rational.mul inv_n !acc
      in
      let draws = ref 0 in
      let rr = ref 0 in
      let hw = ref (total_hw ()) in
      let stop = ref (Rational.leq !hw cfg.epsilon) in
      while not !stop do
        let b = min cfg.batch (cfg.max_draws - !draws) in
        for _ = 1 to b do
          draw (!rr mod s);
          incr rr
        done;
        draws := !draws + b;
        hw := total_hw ();
        if Rational.leq !hw cfg.epsilon || !draws >= cfg.max_draws then
          stop := true
      done;
      let sampled_value =
        let acc = ref Rational.zero in
        for si = 0 to s - 1 do
          let v =
            if m.(si) = 0 then
              if ctx.mono then Rational.half else Rational.zero
            else Rational.of_ints sum.(si) m.(si)
          in
          acc := Rational.add !acc v
        done;
        !acc
      in
      {
        fact;
        value = Rational.mul inv_n (Rational.add exact_value sampled_value);
        half_width = !hw;
        draws = !draws;
        exact_strata = n1 + 1 - s;
        sampled_strata = s;
        converged = Rational.leq !hw cfg.epsilon;
      }
    end
  in
  let estimates =
    Array.init n (fun fi ->
        if Telemetry.enabled tel then
          Telemetry.span tel
            ~attrs:[ ("fact", Fact.to_string ctx.universe.(fi)) ]
            "sample.fact"
            (fun () -> one_fact fi)
        else one_fact fi)
  in
  let total_draws = Array.fold_left (fun a e -> a + e.draws) 0 estimates in
  finish ctx estimates ~total_draws

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let record_metrics tel report =
  Telemetry.Counter.add (Telemetry.counter tel "sample.draws")
    report.total_draws;
  Telemetry.Counter.add (Telemetry.counter tel "sample.evals")
    report.total_evals;
  Telemetry.Counter.add
    (Telemetry.counter tel "sample.exact_strata")
    (Array.fold_left (fun a e -> a + e.exact_strata) 0 report.estimates);
  Telemetry.Counter.add
    (Telemetry.counter tel "sample.sampled_strata")
    (Array.fold_left (fun a e -> a + e.sampled_strata) 0 report.estimates);
  (* half-width in parts per million, rounded up (gauges are ints) *)
  let ppm =
    let x = Rational.mul report.max_half_width (Rational.of_int 1_000_000) in
    let q, r = Bigint.divmod (Rational.num x) (Rational.den x) in
    Bigint.to_int (if Bigint.is_zero r then q else Bigint.succ q)
  in
  Telemetry.Gauge.set (Telemetry.gauge tel "sample.max_hw_ppm") ppm

let shapley ?(tel = Telemetry.disabled ()) cfg ~universe phi =
  validate cfg;
  let ctx = make_ctx cfg universe phi in
  let report =
    Telemetry.span tel "sample.eval" (fun () ->
        if ctx.n = 0 then
          finish ctx [||] ~total_draws:0
        else
          match cfg.strategy with
          | Monte_carlo -> monte_carlo ctx tel
          | Stratified -> stratified ctx tel ~exact_cap:0
          | Hybrid -> stratified ctx tel ~exact_cap:cfg.exact_cap)
  in
  record_metrics tel report;
  report

(* Banzhaf: the value is the expected marginal contribution over one
   uniform coalition of U∖{μ}, so one shared uniform subset per draw
   serves every fact (1 + n evaluations: the subset once, then each
   fact's membership flipped).  No permutation or stratum structure —
   strategy and exact_cap are ignored. *)
let banzhaf ?(tel = Telemetry.disabled ()) cfg ~universe phi =
  validate cfg;
  let ctx = make_ctx cfg universe phi in
  let n = ctx.n in
  let report =
    Telemetry.span tel "sample.eval" @@ fun () ->
    if n = 0 then finish ctx [||] ~total_draws:0
    else begin
      let range = range_of ctx in
      let log_term =
        Bound.log_term ~confidence:cfg.confidence ~intervals:1
      in
      let sums = Array.make n 0 and sumsq = Array.make n 0 in
      let one_draw d =
        let rng = Rng.of_path cfg.seed [ d ] in
        for i = 0 to n - 1 do ctx.present.(i) <- Rng.bool rng done;
        let base = eval ctx in
        for i = 0 to n - 1 do
          let was = ctx.present.(i) in
          ctx.present.(i) <- not was;
          let flipped = eval ctx in
          ctx.present.(i) <- was;
          let v1, v0 = if was then (base, flipped) else (flipped, base) in
          let d = b2i v1 - b2i v0 in
          sums.(i) <- sums.(i) + d;
          sumsq.(i) <- sumsq.(i) + (d * d)
        done
      in
      let m = ref 0 in
      let hw = ref range in
      let stop = ref false in
      while not !stop do
        let b = min cfg.batch (cfg.max_draws - !m) in
        Telemetry.span tel
          ~attrs:
            (if Telemetry.enabled tel then [ ("draws", string_of_int b) ]
             else [])
          "sample.round"
          (fun () ->
             for d = !m to !m + b - 1 do
               one_draw d
             done);
        m := !m + b;
        hw := Bound.hoeffding ~range ~log_term ~m:!m;
        if Rational.leq !hw cfg.epsilon || !m >= cfg.max_draws then
          stop := true
      done;
      let estimates =
        Array.mapi
          (fun i fact ->
             let half_width =
               match cfg.bound with
               | Hoeffding -> !hw
               | Bernstein ->
                 Rational.min !hw
                   (Bound.bernstein ~range ~log_term ~m:!m ~sum:sums.(i)
                      ~sumsq:sumsq.(i))
             in
             {
               fact;
               value = Rational.of_ints sums.(i) !m;
               half_width;
               draws = !m;
               exact_strata = 0;
               sampled_strata = 0;
               converged = Rational.leq half_width cfg.epsilon;
             })
          ctx.universe
      in
      finish ctx estimates ~total_draws:!m
    end
  in
  record_metrics tel report;
  report
