(* d-DNNF circuits for lineage formulas.

   Shannon expansion with structural-hash node sharing, reusing the
   counter's branching heuristic and variable-disjoint ∧-decomposition
   ([Compile.branch_variable] / [Compile.conjunct_components]) and the
   [Compile.Memo] cache discipline (bounded, drops never change the
   result).  Every ∨ is either a decision node [(μ ∧ hi) ∨ (¬μ ∧ lo)] or
   a smoothing gadget [μ ∨ ¬μ], so determinism is structural; smoothing
   gadgets are inserted at construction time so both children of every
   decision mention exactly the decided formula's variables.

   Nodes live in one arena; a child id is always smaller than its
   parent's (construction is bottom-up), so ascending id order is a
   topological order — the evaluator is two array sweeps. *)

type node =
  | NTrue
  | NFalse
  | NLit of Fact.t * bool
  | NAnd of int array
  | NOr of int array

(* Structural hashing over child *ids*: children are hash-consed before
   their parent, so id equality is structural equality of sub-circuits
   and node hashing is O(fanout), not O(circuit). *)
module Unique = Hashtbl.Make (struct
    type t = node

    let equal a b =
      match (a, b) with
      | NTrue, NTrue | NFalse, NFalse -> true
      | NLit (f, s), NLit (f', s') -> s = s' && Fact.equal f f'
      | NAnd xs, NAnd ys | NOr xs, NOr ys -> xs = ys
      | _ -> false

    let hash n =
      let mix h k = (h * 0x01000193) lxor k in
      (match n with
       | NTrue -> 0x11
       | NFalse -> 0x13
       | NLit (f, s) -> mix (mix 0x17 (Hashtbl.hash f)) (Bool.to_int s)
       | NAnd ch -> Array.fold_left mix 0x1d ch
       | NOr ch -> Array.fold_left mix 0x1f ch)
      land max_int
  end)

module Fcache = Hashtbl.Make (struct
    type t = Bform.t

    let equal = Bform.equal
    let hash = Bform.hash
  end)

type t = {
  mutable nodes : node array;
  mutable varsets : Fact.Set.t array;
  mutable len : int;
  unique : int Unique.t;
  mutable root : int;
  capacity : int;
  mutable smoothing : int;
  hits : Telemetry.Counter.t;
  misses : Telemetry.Counter.t;
  drops : Telemetry.Counter.t;
  mutable n_nodes : int; (* reachable from root, frozen at compile *)
  mutable n_edges : int;
  mutable reused : int; (* reachable nodes inherited from the session *)
}

(* A session persists the arena + hash-cons table + formula cache across
   compiles.  Soundness rests on the arena being append-only: a compiled
   circuit only ever reads ids [< len]-at-its-compile, growth copies the
   prefix into the fresh arrays, and later compiles only append — so an
   old [t] stays valid forever, and a new compile silently reuses every
   hash-consed sub-circuit the cached formulas or structural hashing
   reach.  The formula→node cache is sound across compiles because the
   node built for a formula always covers exactly its variables,
   independently of which plan steered the build. *)
module Session = struct
  type circuit = t

  type t = { mutable prev : circuit option; cache : int Fcache.t }

  let create () = { prev = None; cache = Fcache.create 256 }
end

let true_id = 0
let false_id = 1

let alloc c node vs =
  match Unique.find_opt c.unique node with
  | Some id -> id
  | None ->
    let cap = Array.length c.nodes in
    if c.len = cap then begin
      let nodes = Array.make (2 * cap) NTrue in
      Array.blit c.nodes 0 nodes 0 cap;
      c.nodes <- nodes;
      let varsets = Array.make (2 * cap) Fact.Set.empty in
      Array.blit c.varsets 0 varsets 0 cap;
      c.varsets <- varsets
    end;
    let id = c.len in
    c.nodes.(id) <- node;
    c.varsets.(id) <- vs;
    Unique.add c.unique node id;
    c.len <- id + 1;
    id

let mk_lit c f sign = alloc c (NLit (f, sign)) (Fact.Set.singleton f)

(* ⊥ absorbs, ⊤ drops, nested ∧ flattens (children stay pairwise
   variable-disjoint by transitivity); children sorted for sharing.
   [?vs] is the union of the children's variable sets when the caller
   already knows it — Fact.Set unions over structural fact compares are
   the hottest part of compilation otherwise. *)
let mk_and ?vs c ids =
  let rec gather acc = function
    | [] -> Some acc
    | id :: rest ->
      if id = false_id then None
      else if id = true_id then gather acc rest
      else (
        match c.nodes.(id) with
        | NAnd ch -> gather (List.rev_append (Array.to_list ch) acc) rest
        | _ -> gather (id :: acc) rest)
  in
  match gather [] ids with
  | None -> false_id
  | Some [] -> true_id
  | Some [ id ] -> id
  | Some ids ->
    let arr = Array.of_list (List.sort_uniq Int.compare ids) in
    if Array.length arr = 1 then arr.(0)
    else
      let vs =
        match vs with
        | Some vs -> vs
        | None ->
          Array.fold_left
            (fun acc i -> Fact.Set.union acc c.varsets.(i))
            Fact.Set.empty arr
      in
      alloc c (NAnd arr) vs

(* ⊥ children drop (they would break smoothness and contribute nothing);
   the callers only ever produce mutually exclusive children. *)
let mk_or c ids =
  match List.filter (fun id -> id <> false_id) ids with
  | [] -> false_id
  | [ id ] -> id
  | ids ->
    let arr = Array.of_list (List.sort Int.compare ids) in
    alloc c (NOr arr) c.varsets.(arr.(0))

(* Pad [id] up to the variable set [target] with μ ∨ ¬μ gadgets, one per
   missing variable; fresh allocations are charged to the smoothing
   counter (gadgets and wrappers are pure evaluator enablement). *)
let smooth_to c target id =
  if id = false_id then id
  else
    let missing = Fact.Set.diff target c.varsets.(id) in
    if Fact.Set.is_empty missing then id
    else begin
      let before = c.len in
      let gadgets =
        Fact.Set.fold
          (fun v acc -> mk_or c [ mk_lit c v true; mk_lit c v false ] :: acc)
          missing []
      in
      (* vars(id) ⊆ target at every call site, so the result covers
         exactly [target] *)
      let r = mk_and ~vs:target c (id :: gadgets) in
      c.smoothing <- c.smoothing + (c.len - before);
      r
    end

(* Plan-ranked branching: among the formula's live variables, decide the
   one the plan would eliminate *last* (rank = position in the plan's
   branch order).  Variables the plan never mentions rank below every
   planned one; ties fall back to Fact order, so the pick is total and
   deterministic even against a stale plan. *)
let planned_variable rank all =
  let best =
    Fact.Set.fold
      (fun f acc ->
         let r = Option.value ~default:max_int (Hashtbl.find_opt rank f) in
         match acc with
         | Some (_, br) when br <= r -> acc
         | _ -> Some (f, r))
      all None
  in
  Option.map fst best

let rec build c rank cache phi =
  match phi with
  | Bform.True -> true_id
  | Bform.False -> false_id
  | Bform.Fv f -> mk_lit c f true
  | Bform.Not (Bform.Fv f) -> mk_lit c f false
  | _ ->
    (match Fcache.find_opt cache phi with
     | Some id ->
       Telemetry.Counter.incr c.hits;
       id
     | None ->
       Telemetry.Counter.incr c.misses;
       let id =
         match phi with
         | Bform.And parts ->
           (match Compile.conjunct_components parts with
            | [] | [ _ ] -> shannon c rank cache phi
            | comps ->
              (* independent join: a decomposable ∧ over the components *)
              mk_and c
                (List.map (fun (sub, _) -> build c rank cache sub) comps))
         | _ -> shannon c rank cache phi
       in
       if Fcache.length cache < c.capacity then Fcache.add cache phi id
       else Telemetry.Counter.incr c.drops;
       id)

and shannon c rank cache phi =
  let all = Bform.vars phi in
  let v =
    match rank with
    | Some rank -> planned_variable rank all
    | None -> Compile.branch_variable phi
  in
  match v with
  | None -> assert false (* non-constant formula has a variable *)
  | Some v ->
    let target = Fact.Set.remove v all in
    let hi =
      smooth_to c target (build c rank cache (Bform.condition v true phi))
    in
    let lo =
      smooth_to c target (build c rank cache (Bform.condition v false phi))
    in
    (* deterministic by the decided variable; smooth because both
       branches were padded to exactly [target] *)
    mk_or c
      [ mk_and ~vs:all c [ mk_lit c v true; hi ];
        mk_and ~vs:all c [ mk_lit c v false; lo ] ]

(* Split a conjunctive root along the plan's claimed AND-components and
   compile each separately.  The plan is advisory: if any conjunct
   straddles two claimed components (or mentions a variable the plan
   does not know), the split is abandoned and the root compiles through
   the ordinary [build] path — decomposability is enforced by [mk_and]'s
   construction either way, never assumed from the certificate. *)
let build_root c rank plan cache phi =
  match (plan, phi) with
  | Some pl, Bform.And parts when Plan.component_count pl > 1 ->
    let idx = Plan.component_index pl in
    let buckets = Array.make (Plan.component_count pl) [] in
    let consts = ref [] in
    let stray = ref false in
    List.iter
      (fun p ->
         if not !stray then begin
           let vs = Bform.vars p in
           if Fact.Set.is_empty vs then consts := p :: !consts
           else
             match Hashtbl.find_opt idx (Fact.Set.min_elt vs) with
             | Some i
               when Fact.Set.for_all
                      (fun f -> Hashtbl.find_opt idx f = Some i)
                      vs ->
               buckets.(i) <- p :: buckets.(i)
             | _ -> stray := true
         end)
      parts;
    if !stray then build c rank cache phi
    else begin
      let ids = ref [] in
      Array.iter
        (fun ps ->
           match List.rev ps with
           | [] -> ()
           | [ p ] -> ids := build c rank cache p :: !ids
           | ps -> ids := build c rank cache (Bform.And ps) :: !ids)
        buckets;
      List.iter (fun p -> ids := build c rank cache p :: !ids) !consts;
      mk_and c (List.rev !ids)
    end
  | _ -> build c rank cache phi

(* Sub-circuits built for components that a later ⊥ collapsed can be
   unreachable from the root; size metrics report the live circuit.
   [base_len] is the arena length before this compile: reachable ids
   below it were inherited from the session, not built. *)
let count_reachable c ~base_len =
  let reach = Array.make c.len false in
  let rec mark id =
    if not reach.(id) then begin
      reach.(id) <- true;
      match c.nodes.(id) with
      | NAnd ch | NOr ch -> Array.iter mark ch
      | _ -> ()
    end
  in
  mark c.root;
  let nodes = ref 0 and edges = ref 0 and reused = ref 0 in
  Array.iteri
    (fun id live ->
       if live then begin
         incr nodes;
         if id < base_len then incr reused;
         match c.nodes.(id) with
         | NAnd ch | NOr ch -> edges := !edges + Array.length ch
         | _ -> ()
       end)
    reach;
  (!nodes, !edges, !reused)

let compile ?(tel = Telemetry.disabled ()) ?plan ?(cache_capacity = max_int)
    ?session phi =
  if cache_capacity < 0 then invalid_arg "Circuit.compile: negative capacity";
  (* rank = position in the plan's branch order (first = decided first);
     duplicate mentions keep their earliest rank *)
  let rank =
    Option.map
      (fun pl ->
         let tbl : (Fact.t, int) Hashtbl.t = Hashtbl.create 64 in
         List.iteri
           (fun i f -> if not (Hashtbl.mem tbl f) then Hashtbl.add tbl f i)
           (Plan.branch_order pl);
         tbl)
      plan
  in
  (* explicit registration order: record fields evaluate in unspecified
     order, and registry order shows in exporter output *)
  let hits = Telemetry.counter tel "circuit.cache_hits" in
  let misses = Telemetry.counter tel "circuit.cache_misses" in
  let drops = Telemetry.counter tel "circuit.cache_drops" in
  let base = match session with Some s -> s.Session.prev | None -> None in
  let c =
    match base with
    | Some p ->
      (* share the arena and hash-cons table; per-compile state resets *)
      {
        p with
        root = 0;
        capacity = cache_capacity;
        smoothing = 0;
        hits;
        misses;
        drops;
        n_nodes = 0;
        n_edges = 0;
        reused = 0;
      }
    | None ->
      {
        nodes = Array.make 64 NTrue;
        varsets = Array.make 64 Fact.Set.empty;
        len = 0;
        unique = Unique.create 256;
        root = 0;
        capacity = cache_capacity;
        smoothing = 0;
        hits;
        misses;
        drops;
        n_nodes = 0;
        n_edges = 0;
        reused = 0;
      }
  in
  let base_len = c.len in
  let cache =
    match session with Some s -> s.Session.cache | None -> Fcache.create 256
  in
  Telemetry.span tel "circuit.compile" (fun () ->
      ignore (alloc c NTrue Fact.Set.empty : int); (* id 0 *)
      ignore (alloc c NFalse Fact.Set.empty : int); (* id 1 *)
      c.root <- build_root c rank plan cache phi);
  let nodes, edges, reused = count_reachable c ~base_len in
  c.n_nodes <- nodes;
  c.n_edges <- edges;
  c.reused <- reused;
  (match session with Some s -> s.Session.prev <- Some c | None -> ());
  Telemetry.Gauge.set (Telemetry.gauge tel "circuit.nodes") nodes;
  Telemetry.Gauge.set (Telemetry.gauge tel "circuit.edges") edges;
  Telemetry.Gauge.set (Telemetry.gauge tel "circuit.smoothing") c.smoothing;
  (* only session compiles have a reuse story; keeping the gauge out of
     sessionless runs keeps their exporter output unchanged *)
  (match session with
   | Some _ -> Telemetry.Gauge.set (Telemetry.gauge tel "circuit.reused_nodes") reused
   | None -> ());
  c

let session_adopt s c = s.Session.prev <- Some c

let vars c = c.varsets.(c.root)
let node_count c = c.n_nodes
let edge_count c = c.n_edges
let smoothing_nodes c = c.smoothing
let reused_nodes c = c.reused
let cache_hits c = Telemetry.Counter.value c.hits
let cache_misses c = Telemetry.Counter.value c.misses
let cache_drops c = Telemetry.Counter.value c.drops

type evaluation = {
  full : Poly.Z.t;
  by_fact : (Fact.t * Poly.Z.t) array;
  poly_ops : int;
}

(* One bottom-up pass (per-node size polynomials p) and one top-down pass
   (per-node gradients g = ∂p_root/∂p_node, chain rule over the DAG in
   reverse id order).  By smoothness + decomposability + determinism the
   root polynomial is multilinear in the leaf weights w(μ)=z, w(¬μ)=1,
   so g at the positive literal of μ is Σ_{S ∌ μ, S∪{μ} ⊨ φ} z^|S| —
   exactly C(φ[μ:=1]) over the circuit variables minus μ. *)
let evaluate ?(tel = Telemetry.disabled ()) c ~universe =
  let cvars = vars c in
  if not (Fact.Set.subset cvars (Fact.Set.of_list universe)) then
    invalid_arg "Circuit.evaluate: circuit mentions a fact outside the universe";
  let ops = ref 0 in
  (* The ring ops, with the identities that dominate the circuit (neutral
     elements from ¬μ leaves, z from μ leaves) short-circuited: a smoothed
     decision wrapper is [μ ∧ hi], and paying a full convolution to
     multiply by 1 or z would drown the traversal in Bigint work. *)
  let mul a b =
    if Poly.Z.equal a Poly.Z.one then b
    else if Poly.Z.equal b Poly.Z.one then a
    else if Poly.Z.equal a Poly.Z.x then (incr ops; Poly.Z.shift 1 b)
    else if Poly.Z.equal b Poly.Z.x then (incr ops; Poly.Z.shift 1 a)
    else (incr ops; Poly.Z.mul a b)
  in
  let add a b =
    if Poly.Z.is_zero a then b
    else if Poly.Z.is_zero b then a
    else (incr ops; Poly.Z.add a b)
  in
  (* Smoothing gadgets [μ ∨ ¬μ] are structural (so {!Check} can verify
     smoothness) but algebraically they are just the factor (1 + z): a
     ∧-node with k gadget children multiplies by the {e memoized}
     [(1+z)^k] in one op instead of k full convolutions.  A gadget is any
     ∨ of the two opposite literals of one variable — whether [smooth_to]
     made it or a trivial decision collapsed into the same shape. *)
  let gadget = Array.make c.len false in
  for id = 0 to c.len - 1 do
    match c.nodes.(id) with
    | NOr [| a; b |] ->
      (match (c.nodes.(a), c.nodes.(b)) with
       | NLit (v, sa), NLit (w, sb) when Fact.equal v w && sa <> sb ->
         gadget.(id) <- true
       | _ -> ())
    | _ -> ()
  done;
  let n = List.length universe in
  let nv = Fact.Set.cardinal cvars in
  let p = Array.make c.len Poly.Z.zero in
  Telemetry.span tel "circuit.bottom_up" (fun () ->
      for id = 0 to c.len - 1 do
        p.(id) <-
          (match c.nodes.(id) with
           | NTrue -> Poly.Z.one
           | NFalse -> Poly.Z.zero
           | NLit (_, true) -> Poly.Z.x
           | NLit (_, false) -> Poly.Z.one
           | NAnd ch ->
             let k = ref 0 in
             let prod = ref Poly.Z.one in
             Array.iter
               (fun i -> if gadget.(i) then incr k else prod := mul !prod p.(i))
               ch;
             if !k = 0 then !prod else mul !prod (Compile.one_plus_z_pow !k)
           | NOr ch ->
             if gadget.(id) then Compile.one_plus_z_pow 1
             else Array.fold_left (fun acc i -> add acc p.(i)) Poly.Z.zero ch)
      done);
  let g = Array.make c.len Poly.Z.zero in
  g.(c.root) <- Poly.Z.one;
  (* Only positive literals are ever read out of g (by_fact), so gradient
     flowing into ¬μ leaves or constants is pure waste — and in a decision
     chain the ¬μ gradient is a full convolution with the sibling branch
     at every level.  Dead leaves are pruned from the flow entirely. *)
  let wants_g i =
    match c.nodes.(i) with
    | NLit (_, false) | NTrue | NFalse -> false
    | NLit (_, true) | NAnd _ | NOr _ -> true
  in
  (* Gadget fan-out batching.  A smoothed ∧ adds the same base gradient
     to each of its k gadget children; doing that as k polynomial adds
     makes the sweep cubic in |vars| on decision chains (every level
     smooths a near-complete suffix of the variable order).  The sets of
     gadgets smoothed over at successive decisions are nested — each is
     the previous minus the newly decided variable — so ranking gadgets
     by how deep their variable is decided (deeper decision ⇒ higher
     rank) turns each ∧'s gadget set into one (or few) contiguous rank
     intervals.  Each interval costs O(1) polynomial ops: the base enters
     a running sum at the interval's high rank and leaves below its low
     rank, and a final descending rank sweep deposits the accumulated
     gradient of every gadget directly into its positive literal. *)
  let gadget_ids = ref [] in
  for id = c.len - 1 downto 0 do
    if gadget.(id) then gadget_ids := id :: !gadget_ids
  done;
  let gadget_ids = Array.of_list !gadget_ids in
  let nranks = Array.length gadget_ids in
  let gadget_rank = Array.make c.len (-1) in
  let rank_pos_lit = Array.make nranks (-1) in
  if nranks > 0 then begin
    (* decision depth of a variable ≈ the largest ∧ in which one of its
       literals appears undisguised (not as part of a gadget); ids grow
       upward, so a larger id means a shallower decision *)
    let decision_id : (Fact.t, int) Hashtbl.t = Hashtbl.create 64 in
    for id = 0 to c.len - 1 do
      match c.nodes.(id) with
      | NAnd ch ->
        Array.iter
          (fun i ->
             if not gadget.(i) then
               match c.nodes.(i) with
               | NLit (v, _) -> Hashtbl.replace decision_id v id
               | _ -> ())
          ch
      | _ -> ()
    done;
    let var_of gid =
      match c.nodes.(gid) with
      | NOr [| a; _ |] ->
        (match c.nodes.(a) with NLit (v, _) -> v | _ -> assert false)
      | _ -> assert false
    in
    let depth gid =
      match Hashtbl.find_opt decision_id (var_of gid) with
      | Some d -> d
      | None -> -1
    in
    Array.sort
      (fun g1 g2 ->
         let c1 = compare (depth g2) (depth g1) in
         if c1 <> 0 then c1 else compare g1 g2)
      gadget_ids;
    Array.iteri
      (fun rank gid ->
         gadget_rank.(gid) <- rank;
         rank_pos_lit.(rank) <-
           (match c.nodes.(gid) with
            | NOr [| a; b |] ->
              (match c.nodes.(a) with NLit (_, true) -> a | _ -> b)
            | _ -> assert false))
      gadget_ids
  end;
  let on_enter = Array.make (max nranks 1) [] in
  let on_exit = Array.make (max nranks 1) [] in
  let fan_out_to_gadgets ch base =
    (* the gadget children's ranks, split into maximal consecutive runs *)
    let ranks =
      Array.of_list
        (List.filter_map
           (fun i -> if gadget.(i) then Some gadget_rank.(i) else None)
           (Array.to_list ch))
    in
    Array.sort compare ranks;
    let nr = Array.length ranks in
    let lo = ref 0 in
    for i = 0 to nr - 1 do
      if i = nr - 1 || ranks.(i + 1) <> ranks.(i) + 1 then begin
        on_enter.(ranks.(i)) <- base :: on_enter.(ranks.(i));
        on_exit.(ranks.(!lo)) <- base :: on_exit.(ranks.(!lo));
        lo := i + 1
      end
    done
  in
  Telemetry.span tel "circuit.top_down" (fun () ->
  for id = c.len - 1 downto 0 do
    if not (Poly.Z.is_zero g.(id)) then begin
      match c.nodes.(id) with
      | NOr ch ->
        Array.iter (fun i -> if wants_g i then g.(i) <- add g.(i) g.(id)) ch
      | NAnd ch ->
        (* g flows to child i scaled by the product of the siblings'
           polynomials; prefix/suffix products over the non-gadget
           children (k gadget siblings contribute the shared factor
           (1+z)^k, or (1+z)^(k-1) when i is itself a gadget) keep this
           linear in the fanout *)
        let real = Array.of_list (List.filter (fun i -> not gadget.(i)) (Array.to_list ch)) in
        let k = Array.length ch - Array.length real in
        let m = Array.length real in
        let pre = Array.make (m + 1) Poly.Z.one in
        for i = 0 to m - 1 do
          pre.(i + 1) <- mul pre.(i) p.(real.(i))
        done;
        let pad = if k = 0 then Poly.Z.one else Compile.one_plus_z_pow k in
        let g_pad = mul g.(id) pad in
        let suf = ref Poly.Z.one in
        for i = m - 1 downto 0 do
          if wants_g real.(i) then
            g.(real.(i)) <- add g.(real.(i)) (mul g_pad (mul pre.(i) !suf));
          suf := mul !suf p.(real.(i))
        done;
        if k > 0 then
          (* every gadget child of this ∧ receives the same gradient:
             g · (product of real children) · (1+z)^(k-1) *)
          fan_out_to_gadgets ch
            (mul g.(id)
               (mul pre.(m)
                  (if k = 1 then Poly.Z.one
                   else Compile.one_plus_z_pow (k - 1))))
      | _ -> ()
    end
  done;
  (* resolve the batched fan-outs: sweep ranks from deepest decision to
     shallowest, maintaining the running interval sum, and deposit each
     gadget's accumulated gradient straight into its positive literal
     (the gadget node itself forwards nothing else downward) *)
  let running = ref Poly.Z.zero in
  for r = nranks - 1 downto 0 do
    List.iter (fun b -> running := add !running b) on_enter.(r);
    if not (Poly.Z.is_zero !running) then begin
      let lit = rank_pos_lit.(r) in
      g.(lit) <- add g.(lit) !running
    end;
    List.iter
      (fun b ->
         incr ops;
         running := Poly.Z.sub !running b)
      on_exit.(r)
  done);
  let pad k poly = if k = 0 then poly else mul poly (Compile.one_plus_z_pow k) in
  let full = pad (n - nv) p.(c.root) in
  let by_fact =
    Array.of_list
      (List.map
         (fun f ->
            if Fact.Set.mem f cvars then
              (* g counts over cvars∖{f}; pad the (n-1) - (nv-1) facts of
                 the universe the circuit never mentions *)
              let base =
                (* the shared hash-cons table of a session can hold
                   literals allocated by *later* compiles; only ids
                   below this circuit's frozen length belong to it *)
                match Unique.find_opt c.unique (NLit (f, true)) with
                | Some id when id < c.len -> g.(id)
                | Some _ | None -> Poly.Z.zero
              in
              (f, pad (n - nv) base)
            else
              (* null player: φ[f:=1] = φ, over a universe of n-1 facts *)
              (f, pad (n - 1 - nv) p.(c.root)))
         universe)
  in
  { full; by_fact; poly_ops = !ops }

module Check = struct
  type report = {
    nodes_checked : int;
    and_nodes : int;
    or_nodes : int;
    assignments : int;
  }

  exception Fail of string

  let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

  (* Deliberately independent of the compiler: variable sets are
     recomputed from the raw node structure (never read from the cached
     [varsets]), decomposability/smoothness checked on those, and
     determinism (plus equivalence to [formula], when given) verified by
     evaluating every reachable node under every assignment. *)
  let check ?(max_vars = 16) ?formula c =
    try
      let vs = Array.make c.len Fact.Set.empty in
      for id = 0 to c.len - 1 do
        vs.(id) <-
          (match c.nodes.(id) with
           | NTrue | NFalse -> Fact.Set.empty
           | NLit (f, _) -> Fact.Set.singleton f
           | NAnd ch | NOr ch ->
             Array.iter
               (fun i ->
                  if i >= id then
                    failf "node %d has child %d >= itself (not topological)"
                      id i)
               ch;
             Array.fold_left
               (fun acc i -> Fact.Set.union acc vs.(i))
               Fact.Set.empty ch)
      done;
      let reach = Array.make c.len false in
      let rec mark id =
        if not reach.(id) then begin
          reach.(id) <- true;
          match c.nodes.(id) with
          | NAnd ch | NOr ch -> Array.iter mark ch
          | _ -> ()
        end
      in
      mark c.root;
      let checked = ref 0 and and_nodes = ref 0 and or_nodes = ref 0 in
      for id = 0 to c.len - 1 do
        if reach.(id) then begin
          incr checked;
          match c.nodes.(id) with
          | NAnd ch ->
            incr and_nodes;
            let seen = ref Fact.Set.empty in
            Array.iter
              (fun i ->
                 if not (Fact.Set.is_empty (Fact.Set.inter !seen vs.(i))) then
                   failf "∧-node %d is not decomposable" id;
                 seen := Fact.Set.union !seen vs.(i))
              ch
          | NOr ch ->
            incr or_nodes;
            Array.iter
              (fun i ->
                 if not (Fact.Set.equal vs.(i) vs.(id)) then
                   failf "∨-node %d is not smooth" id)
              ch
          | _ -> ()
        end
      done;
      let enum_vars =
        Fact.Set.elements
          (match formula with
           | Some phi -> Fact.Set.union vs.(c.root) (Bform.vars phi)
           | None -> vs.(c.root))
      in
      let k = List.length enum_vars in
      if k > max_vars then
        failf "too many variables (%d > %d) to verify determinism" k max_vars;
      let arr = Array.of_list enum_vars in
      let assignments = ref 0 in
      let value = Array.make c.len false in
      for mask = 0 to (1 lsl k) - 1 do
        incr assignments;
        let sigma = ref Fact.Set.empty in
        Array.iteri
          (fun i f ->
             if mask land (1 lsl i) <> 0 then sigma := Fact.Set.add f !sigma)
          arr;
        for id = 0 to c.len - 1 do
          if reach.(id) then
            value.(id) <-
              (match c.nodes.(id) with
               | NTrue -> true
               | NFalse -> false
               | NLit (f, s) -> Bool.equal (Fact.Set.mem f !sigma) s
               | NAnd ch -> Array.for_all (fun i -> value.(i)) ch
               | NOr ch ->
                 let trues =
                   Array.fold_left
                     (fun acc i -> if value.(i) then acc + 1 else acc)
                     0 ch
                 in
                 if trues > 1 then
                   failf "∨-node %d is not deterministic (%d children true)"
                     id trues;
                 trues = 1)
        done;
        match formula with
        | Some phi when not (Bool.equal (Bform.eval phi !sigma) value.(c.root))
          ->
          failf "circuit disagrees with the formula on an assignment"
        | _ -> ()
      done;
      Ok
        {
          nodes_checked = !checked;
          and_nodes = !and_nodes;
          or_nodes = !or_nodes;
          assignments = !assignments;
        }
    with Fail msg -> Error msg
  [@@warning "-27"]
end
