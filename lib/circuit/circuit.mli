(** Knowledge-compilation backend: d-DNNF circuits for lineage formulas.

    The conditioning engine ({!Engine}) answers a batched SVC query with
    one size-polynomial extraction {e per fact}.  This module attacks the
    asymptotics themselves, following Deutch, Frost, Kimelfeld &
    Moskovitch ("Computing the Shapley Value of Facts in Query
    Answering"): compile the lineage {e once} into a smoothed,
    decomposable, deterministic NNF circuit, then read every fact's
    Shapley polynomial off the circuit with a single bottom-up pass
    (per-node size polynomials) plus a single top-down gradient pass
    (per-node partial derivatives of the root polynomial) — no per-fact
    conditioning at all.

    {2 The circuit}

    Nodes are [⊤], [⊥], literals [μ]/[¬μ], ∧ and ∨, stored in one arena
    with structural-hash node sharing (a child's id is always smaller
    than its parent's, so id order is a topological order).  The
    invariants, checkable independently with {!Check}:

    - {e decomposable}: the children of every ∧ mention pairwise disjoint
      variable sets (so their polynomials multiply);
    - {e deterministic}: the children of every ∨ are pairwise mutually
      exclusive (so their polynomials add) — guaranteed structurally,
      because every ∨ is either a Shannon decision node on a variable or
      a smoothing gadget [μ ∨ ¬μ];
    - {e smooth}: the children of every ∨ mention the {e same} variable
      set (so all polynomials count over a consistent universe);
      smoothing gadgets are inserted during construction and counted as
      [smoothing_nodes].

    Compilation is Shannon expansion with the same branching heuristic
    and variable-disjoint ∧-decomposition as {!Compile}, memoized on the
    conditioned sub-formula in a bounded cache with the {!Compile.Memo}
    discipline: at capacity, sub-circuits are still built (node sharing
    keeps them small) but the formula→node binding is not retained,
    counted as a drop — a bound can never change the circuit's meaning.

    {2 The single-pass evaluator}

    For a smooth deterministic decomposable circuit, the root's size
    polynomial [P(z)] is multilinear in the leaf weights
    [w(μ) = z, w(¬μ) = 1], so [∂P/∂w(μ)] — computed for {e all} leaves at
    once by one reverse sweep — is exactly the generating polynomial of
    the satisfying assignments with [μ] true, i.e. [C(φ[μ:=1])], the
    [with_mu_exo] polynomial of Claim A.1.  {!evaluate} returns it for
    every fact of the universe (null players handled by padding), plus
    the full polynomial [C(φ)]. *)

type t
(** A compiled circuit for one formula.  Immutable once compiled; the
    instrumentation counters are frozen at compile time. *)

(** A compilation session: the node arena, the structural hash-cons
    table and the formula→node cache, persisted across compiles.
    Compiling several (versions of) lineages through one session makes
    every structurally identical sub-circuit — every conditioned
    sub-formula untouched by a delta update — come back as the {e same}
    arena node instead of being rebuilt: the subtree-reuse substrate of
    {!Engine.update} and the serving cache.

    Sound by construction: the arena is append-only (a compiled
    circuit's id range is frozen at compile time and never mutated), and
    the cached formula→node bindings are plan- and database-independent
    — the node built for a formula always represents exactly that
    formula over exactly its variables.  Sessions are single-domain;
    share one session per serving thread, like {!Compile.Memo}. *)
module Session : sig
  type t

  val create : unit -> t
end

val compile :
  ?tel:Telemetry.t ->
  ?plan:Plan.t ->
  ?cache_capacity:int ->
  ?session:Session.t ->
  Bform.t ->
  t
(** Compile a lineage formula.  [cache_capacity] bounds the number of
    formula→node memo entries (default unbounded; the bound affects
    compile time, never the result).

    [plan] steers the build without being trusted for correctness: the
    root conjunction is split along the plan's AND-components (each
    compiled separately and conjoined under one decomposable ∧), and
    Shannon expansion decides variables in the plan's branch order
    (reverse elimination order) instead of the occurrence-count
    heuristic, keeping each decision's cut at the plan's induced width.
    A plan that does not fit the formula — a conjunct straddling two
    claimed components, or orders missing variables — only disables the
    steering for the affected sub-build; the circuit invariants come
    from construction, never from the plan.

    [session] compiles into a shared {!Session} arena instead of a fresh
    one: hash-consing then resolves every sub-circuit already built by
    an earlier compile of the session to its existing node, and the
    formula→node cache warm-starts from all previous compiles.  The
    number of inherited nodes reachable from the new root is
    {!reused_nodes}.  Circuits compiled earlier in the session remain
    valid and unchanged.

    [tel] hosts the circuit's instrumentation: the whole build runs in a
    [circuit.compile] span, the memo counters live in the registry as
    [circuit.cache_hits]/[circuit.cache_misses]/[circuit.cache_drops],
    and the live size lands in the [circuit.nodes]/[circuit.edges]/
    [circuit.smoothing]/[circuit.reused_nodes] gauges.  The default is a
    private disabled tracer, so the per-circuit accessors below are
    unshared; compiling twice against the {e same} [tel] accumulates
    into shared counters.
    @raise Invalid_argument on negative capacity. *)

val vars : t -> Fact.Set.t
(** The variables the circuit mentions (= the formula's variables unless
    the formula was constant). *)

val node_count : t -> int
val edge_count : t -> int

val smoothing_nodes : t -> int
(** Nodes allocated by smoothing alone — the structural overhead paid so
    the one-pass evaluator can read all facts off the circuit. *)

val reused_nodes : t -> int
(** Of the nodes reachable from this circuit's root, how many were
    inherited from earlier compiles of the same {!Session} rather than
    built — 0 for a sessionless compile.  The delta-update payoff
    metric. *)

val session_adopt : Session.t -> t -> unit
(** Retroactively seed a session with a circuit compiled {e outside} any
    session: the next [compile ~session] continues in that circuit's
    arena and reuses its hash-consed nodes.  Used by {!Engine.update} to
    upgrade an engine whose first compile was sessionless. *)

val cache_hits : t -> int
val cache_misses : t -> int
val cache_drops : t -> int

type evaluation = {
  full : Poly.Z.t;
      (** [C(φ, U)]: the size polynomial over the whole universe. *)
  by_fact : (Fact.t * Poly.Z.t) array;
      (** One entry per universe fact, in the given order: the fact and
          its [C(φ[μ:=1], U∖{μ})] polynomial ([with_mu_exo]).  The
          [φ[μ:=0]] side follows from the splitting identity
          [C(φ) = z·C(φ[μ:=1]) + C(φ[μ:=0])] without another pass. *)
  poly_ops : int;  (** polynomial ring operations spent evaluating *)
}

val evaluate : ?tel:Telemetry.t -> t -> universe:Fact.t list -> evaluation
(** One bottom-up + one top-down traversal; every fact's polynomial from
    a single compilation, no per-fact conditioning.  The two sweeps run
    in [circuit.bottom_up] and [circuit.top_down] spans on [tel].
    @raise Invalid_argument if the circuit mentions a fact outside the
    universe. *)

(** Independent invariant verifier, in the style of {!Certcheck}: it
    recomputes every variable set from the raw node structure and checks
    decomposability and smoothness structurally, then verifies
    determinism {e semantically} by enumerating all assignments over the
    root's variables and evaluating every reachable node under each —
    trusting neither the compiler's cached variable sets nor its
    structural guarantees. *)
module Check : sig
  type report = {
    nodes_checked : int;  (** reachable nodes visited *)
    and_nodes : int;
    or_nodes : int;
    assignments : int;  (** assignments enumerated for determinism *)
  }

  val check : ?max_vars:int -> ?formula:Bform.t -> t -> (report, string) result
  (** [check c] is [Ok report] iff every reachable ∧ is decomposable,
      every reachable ∨ is smooth and deterministic, and child ids are
      topologically ordered.  With [formula], additionally checks the
      circuit is logically equivalent to it under every enumerated
      assignment.  Determinism/equivalence enumeration needs
      [2^|vars|] evaluations, so circuits over more than [max_vars]
      (default [16]) variables are an [Error] rather than silently
      unverified. *)
end
