(** Independent verification of {!Plan.t} certificates, in the style of
    {!Certcheck}: everything is re-derived from the raw formula — its
    own conjunct flattening and union-find for the component partition,
    its own clique traversal for the co-occurrence graph — and every
    claimed elimination order is {e replayed} on that graph.  Nothing
    computed by {!Plan.analyze} is trusted.

    A certificate passes iff:

    - the claimed component partition {e equals} the recomputed
      separator-free split of the formula's variables (a merged or
      otherwise coarsened partition is rejected);
    - every component's [order] and [branch] covers its [cvars] exactly
      once (the branch order's {e quality} is not checked — any
      permutation yields a correct circuit, only a bigger one);
    - every component's claimed [width] is {e sound}: replaying the
      order on the recomputed graph never eliminates a vertex of degree
      above it (an understated width is rejected; an overstated one is a
      valid, weaker bound and accepted);
    - the top-level [n_vars], [max_width] and [predicted_nodes] fields
      are consistent with the components. *)

type report = {
  r_components : int;  (** components verified *)
  r_vars : int;  (** variables covered *)
  r_width : int;  (** maximum {e replayed} width (≤ the claimed bound) *)
}

val check : Bform.t -> Plan.t -> (report, string) result
(** [check phi plan] verifies [plan] against [phi] from first
    principles.  [Error msg] pinpoints the first violated clause. *)

val report_to_string : report -> string
(** ["verified (k component(s), v var(s), max replayed width w)"]. *)
