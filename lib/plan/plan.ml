(* Static compilation planner.

   Everything here is the *producer* side of a certificate: the
   AND-component partition comes from grouping the root conjuncts by
   shared variables (the same union-find discipline as
   [Compile.conjunct_components], routed through the relational
   [Incidence] helper), the co-occurrence graph from one clique per
   syntactic constraint, and the orders from greedy elimination.  None
   of it is trusted downstream — [Plancheck] re-derives the partition
   and the graph from the raw formula and replays every order. *)

module Iset = Set.Make (Int)

type heuristic = Min_degree | Min_fill | Best

let heuristic_name = function
  | Min_degree -> "min-degree"
  | Min_fill -> "min-fill"
  | Best -> "best"

let heuristic_of_string = function
  | "min-degree" -> Some Min_degree
  | "min-fill" -> Some Min_fill
  | "best" -> Some Best
  | _ -> None

type component = {
  cvars : Fact.t list;
  order : Fact.t list;
  branch : Fact.t list;
  width : int;
  picked : heuristic;
}

type t = {
  n_vars : int;
  components : component list;
  max_width : int;
  predicted_nodes : int;
  requested : heuristic;
}

let huge_nodes = 1_000_000_000

(* ------------------------------------------------------------------ *)
(* Co-occurrence cliques                                               *)
(* ------------------------------------------------------------------ *)

(* One clique per syntactic constraint: a disjunct couples all its
   variables, a conjunction couples nothing by itself.  On DNF-style
   lineages this is the primal graph of the support hypergraph. *)
let cliques phi =
  let rec go acc phi =
    match phi with
    | Bform.True | Bform.False -> acc
    | Bform.Fv f -> Fact.Set.singleton f :: acc
    | Bform.Not p -> go acc p
    | Bform.And ps -> List.fold_left go acc ps
    | Bform.Or ps ->
      List.fold_left (fun acc p -> Bform.vars p :: acc) acc ps
  in
  List.rev (go [] phi)

(* ------------------------------------------------------------------ *)
(* Greedy elimination                                                  *)
(* ------------------------------------------------------------------ *)

(* Adjacency sets over vertex indices 0..m-1.  Components are small
   (one lineage's variables), so the O(m²·d²) greedy loops below are
   never the bottleneck — the circuit compilation they steer is. *)
let graph_of vars_arr clique_list =
  let m = Array.length vars_arr in
  let index : (Fact.t, int) Hashtbl.t = Hashtbl.create (2 * m + 1) in
  Array.iteri (fun i f -> Hashtbl.replace index f i) vars_arr;
  let adj = Array.make m Iset.empty in
  List.iter
    (fun cl ->
       let ids =
         Fact.Set.fold
           (fun f acc ->
              match Hashtbl.find_opt index f with
              | Some i -> i :: acc
              | None -> acc)
           cl []
       in
       List.iter
         (fun a ->
            List.iter
              (fun b -> if a <> b then adj.(a) <- Iset.add b adj.(a))
              ids)
         ids)
    clique_list;
  adj

(* Eliminate every vertex, [pick] choosing the next victim; returns the
   order, the induced width (max degree at elimination, fill edges
   included) and each vertex's neighbour set at the moment it was
   eliminated (the filled-graph structure the pseudo-tree is read off).
   [adj0] is not mutated. *)
let eliminate ~pick adj0 =
  let m = Array.length adj0 in
  let adj = Array.copy adj0 in
  let alive = Array.make m true in
  let order = ref [] in
  let width = ref 0 in
  let elim_nbrs = Array.make m Iset.empty in
  for _ = 1 to m do
    let v = pick alive adj in
    elim_nbrs.(v) <- adj.(v);
    let nbrs = Iset.elements adj.(v) in
    width := max !width (List.length nbrs);
    List.iter
      (fun a ->
         adj.(a) <- Iset.remove v adj.(a);
         List.iter (fun b -> if b <> a then adj.(a) <- Iset.add b adj.(a)) nbrs)
      nbrs;
    adj.(v) <- Iset.empty;
    alive.(v) <- false;
    order := v :: !order
  done;
  (List.rev !order, !width, elim_nbrs)

(* Pseudo-tree preorder: the decision order the elimination order
   implies.  In the filled graph, a vertex's parent is its
   earliest-eliminated-after-it neighbour (the standard bucket-tree
   construction); branching in preorder — parent decided before its
   subtrees, later-eliminated children first — keeps every decision's
   live cut inside one tree path, so the conditioned sub-formulas
   cluster into at most 2^width classes per vertex.  A naive reverse of
   the elimination order loses this locality: it decides whole "levels"
   across sibling subtrees and pays for their product. *)
let branch_of_elimination order elim_nbrs =
  let m = Array.length elim_nbrs in
  let pos = Array.make m 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  let parent = Array.make m (-1) in
  List.iter
    (fun v ->
       Iset.iter
         (fun w ->
            if parent.(v) < 0 || pos.(w) < pos.(parent.(v)) then
              parent.(v) <- w)
         elim_nbrs.(v))
    order;
  let children = Array.make m [] in
  List.iter
    (fun v ->
       if parent.(v) >= 0 then
         children.(parent.(v)) <- v :: children.(parent.(v)))
    order;
  let out = ref [] in
  let rec visit v =
    out := v :: !out;
    List.iter visit
      (List.sort (fun a b -> compare pos.(b) pos.(a)) children.(v))
  in
  (* roots (isolated or last of their tree) in reverse elimination order *)
  List.iter (fun v -> if parent.(v) < 0 then visit v) (List.rev order);
  List.rev !out

(* Ties break towards the smallest vertex index; vertices are indexed in
   Fact.compare order, so both heuristics are fully deterministic. *)
let pick_min_degree alive adj =
  let best = ref (-1) and best_d = ref max_int in
  Array.iteri
    (fun i live ->
       if live then begin
         let d = Iset.cardinal adj.(i) in
         if d < !best_d then begin
           best := i;
           best_d := d
         end
       end)
    alive;
  !best

let fill_of adj v =
  let nbrs = Iset.elements adj.(v) in
  let rec pairs = function
    | [] -> 0
    | a :: rest ->
      List.fold_left
        (fun acc b -> if Iset.mem b adj.(a) then acc else acc + 1)
        0 rest
      + pairs rest
  in
  pairs nbrs

let pick_min_fill alive adj =
  let best = ref (-1) and best_key = ref (max_int, max_int) in
  Array.iteri
    (fun i live ->
       if live then begin
         let key = (fill_of adj i, Iset.cardinal adj.(i)) in
         if key < !best_key then begin
           best := i;
           best_key := key
         end
       end)
    alive;
  !best

(* ------------------------------------------------------------------ *)
(* Per-component analysis                                              *)
(* ------------------------------------------------------------------ *)

let order_component ~heuristic vars_arr clique_list =
  let adj = graph_of vars_arr clique_list in
  let run h =
    match h with
    | Min_degree ->
      let o, w, nb = eliminate ~pick:pick_min_degree adj in
      (o, w, nb, Min_degree)
    | Min_fill | Best ->
      let o, w, nb = eliminate ~pick:pick_min_fill adj in
      (o, w, nb, Min_fill)
  in
  let o, w, nb, picked =
    match heuristic with
    | Min_degree | Min_fill -> run heuristic
    | Best ->
      let (_, wd, _, _) as deg = run Min_degree in
      let (_, wf, _, _) as fil = run Min_fill in
      if wd < wf then deg else fil
  in
  let branch = branch_of_elimination o nb in
  {
    cvars = Array.to_list vars_arr;
    order = List.map (fun i -> vars_arr.(i)) o;
    branch = List.map (fun i -> vars_arr.(i)) branch;
    width = w;
    picked;
  }

(* The root-level AND-component split: group the flattened conjuncts of
   a conjunctive root by shared variables (any other root is a single
   component).  Routed through the relational incidence helper — the
   same union-find the compiler's decomposition rule uses. *)
let blocks phi =
  match phi with
  | Bform.True | Bform.False -> []
  | Bform.And parts ->
    let tagged = List.map (fun p -> (p, Bform.vars p)) parts in
    Incidence.group_by_shared
      (fun (_, vs) -> List.map Fact.to_string (Fact.Set.elements vs))
      tagged
    |> List.filter_map (fun group ->
        let vs =
          List.fold_left
            (fun acc (_, v) -> Fact.Set.union acc v)
            Fact.Set.empty group
        in
        if Fact.Set.is_empty vs then None
        else Some (List.map fst group, vs))
  | _ -> [ ([ phi ], Bform.vars phi) ]

let saturating_add a b = if a >= huge_nodes - b then huge_nodes else a + b

let predicted_of_component nv w =
  let bits = min (w + 1) 24 in
  let per = (nv + 1) * (1 lsl bits) in
  if per >= huge_nodes || per < 0 then huge_nodes else per

let analyze ?(tel = Telemetry.disabled ()) ?(heuristic = Best) phi =
  Telemetry.span tel "plan.analyze" @@ fun () ->
  let blocks =
    List.sort
      (fun (_, v1) (_, v2) ->
         Fact.compare (Fact.Set.min_elt v1) (Fact.Set.min_elt v2))
      (blocks phi)
  in
  let components =
    Telemetry.span tel "plan.order" @@ fun () ->
    List.map
      (fun (parts, vs) ->
         let vars_arr = Array.of_list (Fact.Set.elements vs) in
         let cls =
           List.concat_map (fun p -> cliques p) parts
         in
         order_component ~heuristic vars_arr cls)
      blocks
  in
  let n_vars =
    List.fold_left (fun acc c -> acc + List.length c.cvars) 0 components
  in
  let max_width = List.fold_left (fun acc c -> max acc c.width) 0 components in
  let predicted_nodes =
    List.fold_left
      (fun acc c ->
         saturating_add acc
           (predicted_of_component (List.length c.cvars) c.width))
      0 components
  in
  Telemetry.Gauge.set
    (Telemetry.gauge tel "plan.components")
    (List.length components);
  Telemetry.Gauge.set (Telemetry.gauge tel "plan.max_width") max_width;
  { n_vars; components; max_width; predicted_nodes; requested = heuristic }

(* ------------------------------------------------------------------ *)
(* Component-local replan                                              *)
(* ------------------------------------------------------------------ *)

(* Components partition the variables, so a component is identified by
   its variable set; the canonical string key below is injective on
   sorted fact lists. *)
let component_key vs =
  String.concat "\x00" (List.map Fact.to_string (Fact.Set.elements vs))

(* Replay a previously derived elimination order on the *new* graph: the
   width we report is the induced width on the actual co-occurrence
   structure, never the stale claim, so a replayed component still
   passes [Plancheck].  Falls back to the fresh heuristic whenever the
   replayed order stopped being a permutation of the component or its
   width degraded past the previous claim. *)
let replay_component ~heuristic prev vars_arr clique_list =
  let index : (Fact.t, int) Hashtbl.t =
    Hashtbl.create (2 * Array.length vars_arr + 1)
  in
  Array.iteri (fun i f -> Hashtbl.replace index f i) vars_arr;
  let order_idx =
    List.filter_map (fun f -> Hashtbl.find_opt index f) prev.order
  in
  if List.length order_idx <> Array.length vars_arr then
    order_component ~heuristic vars_arr clique_list
  else begin
    let adj = graph_of vars_arr clique_list in
    let remaining = ref order_idx in
    let pick _alive _adj =
      match !remaining with
      | v :: rest ->
        remaining := rest;
        v
      | [] -> invalid_arg "Plan.replay_component: order exhausted"
    in
    let o, w, nb = eliminate ~pick adj in
    if w > prev.width then order_component ~heuristic vars_arr clique_list
    else
      let branch = branch_of_elimination o nb in
      {
        cvars = Array.to_list vars_arr;
        order = List.map (fun i -> vars_arr.(i)) o;
        branch = List.map (fun i -> vars_arr.(i)) branch;
        width = w;
        picked = prev.picked;
      }
  end

let replan ?(tel = Telemetry.disabled ()) ?(heuristic = Best) ~previous phi =
  Telemetry.span tel "plan.replan" @@ fun () ->
  let blocks =
    List.sort
      (fun (_, v1) (_, v2) ->
         Fact.compare (Fact.Set.min_elt v1) (Fact.Set.min_elt v2))
      (blocks phi)
  in
  let prev_by_key : (string, component) Hashtbl.t =
    Hashtbl.create (2 * List.length previous.components + 1)
  in
  List.iter
    (fun c ->
       Hashtbl.replace prev_by_key
         (component_key (Fact.Set.of_list c.cvars))
         c)
    previous.components;
  let reused = ref 0 in
  let components =
    List.map
      (fun (parts, vs) ->
         let vars_arr = Array.of_list (Fact.Set.elements vs) in
         let cls = List.concat_map (fun p -> cliques p) parts in
         match Hashtbl.find_opt prev_by_key (component_key vs) with
         | Some prev ->
           let c = replay_component ~heuristic prev vars_arr cls in
           (* only count it reused if the replay survived the width check *)
           if c.picked = prev.picked && c.order = prev.order then incr reused;
           c
         | None -> order_component ~heuristic vars_arr cls)
      blocks
  in
  let n_vars =
    List.fold_left (fun acc c -> acc + List.length c.cvars) 0 components
  in
  let max_width = List.fold_left (fun acc c -> max acc c.width) 0 components in
  let predicted_nodes =
    List.fold_left
      (fun acc c ->
         saturating_add acc
           (predicted_of_component (List.length c.cvars) c.width))
      0 components
  in
  Telemetry.Gauge.set
    (Telemetry.gauge tel "plan.components")
    (List.length components);
  Telemetry.Gauge.set (Telemetry.gauge tel "plan.max_width") max_width;
  Telemetry.Gauge.set (Telemetry.gauge tel "plan.reused_components") !reused;
  ( { n_vars; components; max_width; predicted_nodes; requested = heuristic },
    !reused )

(* ------------------------------------------------------------------ *)
(* Derived views                                                       *)
(* ------------------------------------------------------------------ *)

let branch_order t = List.concat_map (fun c -> c.branch) t.components

let component_count t = List.length t.components

let component_index t =
  let tbl : (Fact.t, int) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i c -> List.iter (fun f -> Hashtbl.replace tbl f i) c.cvars)
    t.components;
  tbl

(* ------------------------------------------------------------------ *)
(* Backend recommendation                                              *)
(* ------------------------------------------------------------------ *)

let min_circuit_facts = 8
let circuit_node_budget = 1 lsl 16

let recommend t ~n_facts =
  if n_facts >= min_circuit_facts && t.predicted_nodes <= circuit_node_budget
  then `Circuit
  else `Conditioning

let recommend_reason t ~n_facts =
  if n_facts < min_circuit_facts then
    Printf.sprintf "%d endogenous facts < %d: conditioning wins on tiny \
                    instances" n_facts min_circuit_facts
  else if t.predicted_nodes > circuit_node_budget then
    Printf.sprintf
      "~%d predicted nodes exceed the %d-node budget (width %d): \
       conditioning avoids the blow-up"
      t.predicted_nodes circuit_node_budget t.max_width
  else
    Printf.sprintf
      "~%d predicted nodes (width %d) within the %d-node budget for %d \
       endogenous facts"
      t.predicted_nodes t.max_width circuit_node_budget n_facts

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let facts_line fs = String.concat ", " (List.map Fact.to_string fs)

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "plan : %d component(s) over %d variable(s), max width %d, ~%d \
        predicted nodes\n"
       (List.length t.components) t.n_vars t.max_width t.predicted_nodes);
  List.iteri
    (fun i c ->
       Buffer.add_string buf
         (Printf.sprintf "  component %d : %d var(s), width %d [%s]\n" (i + 1)
            (List.length c.cvars) c.width (heuristic_name c.picked));
       Buffer.add_string buf
         (Printf.sprintf "    elimination order : %s\n" (facts_line c.order));
       Buffer.add_string buf
         (Printf.sprintf "    branch order      : %s\n" (facts_line c.branch)))
    t.components;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""
let jfacts fs = "[" ^ String.concat "," (List.map (fun f -> jstr (Fact.to_string f)) fs) ^ "]"

let to_json t =
  Printf.sprintf
    "{\"n_vars\":%d,\"max_width\":%d,\"predicted_nodes\":%d,\"components\":[%s]}"
    t.n_vars t.max_width t.predicted_nodes
    (String.concat ","
       (List.map
          (fun c ->
             Printf.sprintf
               "{\"vars\":%s,\"order\":%s,\"branch\":%s,\"width\":%d,\
                \"heuristic\":%s}"
               (jfacts c.cvars) (jfacts c.order) (jfacts c.branch) c.width
               (jstr (heuristic_name c.picked)))
          t.components))
