(* Independent plan-certificate verification.

   Deliberately shares no code with [Plan]: the conjunct flattening,
   the variable union-find, the clique traversal and the elimination
   replay are all re-implemented here from the documented definitions,
   so a certificate accepted by this module really establishes the
   partition/order/width claims about the raw formula. *)

type report = {
  r_components : int;
  r_vars : int;
  r_width : int;
}

exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

module Fmap = Map.Make (Fact)

(* ------------------------------------------------------------------ *)
(* Recomputed AND-component partition of the variables                 *)
(* ------------------------------------------------------------------ *)

(* Flatten a conjunctive root into its conjuncts (recursively, so a
   non-canonical nested ∧ still splits the same way); any other root is
   a single conjunct. *)
let conjuncts phi =
  let rec flat acc = function
    | Bform.And ps -> List.fold_left flat acc ps
    | p -> p :: acc
  in
  match phi with
  | Bform.True | Bform.False -> []
  | Bform.And _ -> List.rev (flat [] phi)
  | p -> [ p ]

(* Union-find over variables: all variables of one conjunct are merged.
   The resulting classes are exactly the separator-free AND-components
   of the formula's variable set. *)
let variable_partition phi : Fact.Set.t list =
  let parent : Fact.t Fmap.t ref = ref Fmap.empty in
  let rec find f =
    match Fmap.find_opt f !parent with
    | None ->
      parent := Fmap.add f f !parent;
      f
    | Some p -> if Fact.equal p f then f else find p
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (Fact.equal ra rb) then parent := Fmap.add ra rb !parent
  in
  List.iter
    (fun conj ->
       match Fact.Set.elements (Bform.vars conj) with
       | [] -> ()
       | v :: rest ->
         ignore (find v);
         List.iter (fun w -> union v w) rest)
    (conjuncts phi);
  let classes = ref Fmap.empty in
  Fact.Set.iter
    (fun f ->
       let r = find f in
       let prev =
         Option.value ~default:Fact.Set.empty (Fmap.find_opt r !classes)
       in
       classes := Fmap.add r (Fact.Set.add f prev) !classes)
    (Bform.vars phi);
  Fmap.fold (fun _ c acc -> c :: acc) !classes []

(* ------------------------------------------------------------------ *)
(* Recomputed co-occurrence graph                                      *)
(* ------------------------------------------------------------------ *)

(* The clique rule, re-traversed: a disjunct couples all its variables,
   conjunction couples nothing, negation is transparent. *)
let adjacency phi : Fact.Set.t Fmap.t =
  let adj = ref Fmap.empty in
  let touch f =
    if not (Fmap.mem f !adj) then adj := Fmap.add f Fact.Set.empty !adj
  in
  let add_clique vs =
    Fact.Set.iter
      (fun a ->
         touch a;
         let nbrs = Fact.Set.remove a vs in
         adj :=
           Fmap.add a
             (Fact.Set.union nbrs (Fmap.find a !adj))
             !adj)
      vs
  in
  let rec go = function
    | Bform.True | Bform.False -> ()
    | Bform.Fv f -> touch f
    | Bform.Not p -> go p
    | Bform.And ps -> List.iter go ps
    | Bform.Or ps -> List.iter (fun p -> add_clique (Bform.vars p)) ps
  in
  go phi;
  !adj

(* Replay an elimination order on the (mutable copy of the) graph
   restricted to the order's own variables, returning the induced
   width.  Fill edges are added exactly as an eliminator would. *)
let replay_width adj_global order =
  let inside = Fact.Set.of_list order in
  let adj =
    ref
      (List.fold_left
         (fun m f ->
            let nbrs =
              Option.value ~default:Fact.Set.empty (Fmap.find_opt f adj_global)
            in
            Fmap.add f (Fact.Set.inter nbrs inside) m)
         Fmap.empty order)
  in
  let width = ref 0 in
  List.iter
    (fun v ->
       let nbrs = Fmap.find v !adj in
       width := max !width (Fact.Set.cardinal nbrs);
       Fact.Set.iter
         (fun a ->
            let cur = Fmap.find a !adj in
            let cur = Fact.Set.remove v cur in
            let cur = Fact.Set.union cur (Fact.Set.remove a nbrs) in
            adj := Fmap.add a cur !adj)
         nbrs;
       adj := Fmap.remove v !adj)
    order;
  !width

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)
(* ------------------------------------------------------------------ *)

(* Mirrors the documented prediction formula; the certificate's
   [predicted_nodes] must be consistent with its own claimed widths. *)
let predicted_of nv w =
  let bits = min (w + 1) 24 in
  let per = (nv + 1) * (1 lsl bits) in
  if per >= Plan.huge_nodes || per < 0 then Plan.huge_nodes else per

let check phi (plan : Plan.t) =
  try
    let all_vars = Bform.vars phi in
    if plan.Plan.n_vars <> Fact.Set.cardinal all_vars then
      failf "n_vars claims %d variables but the formula has %d"
        plan.Plan.n_vars (Fact.Set.cardinal all_vars);
    (* 1. the claimed partition equals the recomputed one *)
    let claimed =
      List.map (fun c -> Fact.Set.of_list c.Plan.cvars) plan.Plan.components
    in
    List.iteri
      (fun i (c : Plan.component) ->
         if List.length c.Plan.cvars <> Fact.Set.cardinal (List.nth claimed i)
         then failf "component %d lists a variable twice" (i + 1))
      plan.Plan.components;
    let recomputed = variable_partition phi in
    if List.length claimed <> List.length recomputed then
      failf "partition claims %d component(s) but the formula splits into %d"
        (List.length claimed) (List.length recomputed);
    List.iter
      (fun cl ->
         if
           not
             (List.exists (fun rc -> Fact.Set.equal cl rc) recomputed)
         then
           failf "claimed component {%s} is not a separator-free split of \
                  the formula"
             (String.concat ", "
                (List.map Fact.to_string (Fact.Set.elements cl))))
      claimed;
    (* (equal counts + every claimed class is a recomputed class + no
       duplicates ⇒ the partitions coincide) *)
    let rec dup_free = function
      | [] -> true
      | c :: rest ->
        (not (List.exists (Fact.Set.equal c) rest)) && dup_free rest
    in
    if not (dup_free claimed) then
      failf "partition lists the same component twice";
    (* 2. every order and branch order covers its component exactly once *)
    List.iteri
      (fun i (c : Plan.component) ->
         let cvars = Fact.Set.of_list c.Plan.cvars in
         let permutation_of vs = function
           | l ->
             List.length l = Fact.Set.cardinal vs
             && Fact.Set.equal (Fact.Set.of_list l) vs
         in
         if not (permutation_of cvars c.Plan.order) then
           failf
             "component %d: order is not a permutation of its variables"
             (i + 1);
         if not (permutation_of cvars c.Plan.branch) then
           failf
             "component %d: branch order is not a permutation of its \
              variables"
             (i + 1))
      plan.Plan.components;
    (* 3. widths are sound for the recomputed graph *)
    let adj = adjacency phi in
    let max_replayed = ref 0 in
    List.iteri
      (fun i (c : Plan.component) ->
         let w = replay_width adj c.Plan.order in
         max_replayed := max !max_replayed w;
         if w > c.Plan.width then
           failf
             "component %d: claimed width %d understates the replayed \
              induced width %d"
             (i + 1) c.Plan.width w)
      plan.Plan.components;
    (* 4. the roll-up fields are consistent with the components *)
    let max_claimed =
      List.fold_left
        (fun acc (c : Plan.component) -> max acc c.Plan.width)
        0 plan.Plan.components
    in
    if plan.Plan.max_width <> max_claimed then
      failf "max_width %d does not match the component widths (max %d)"
        plan.Plan.max_width max_claimed;
    let predicted =
      List.fold_left
        (fun acc (c : Plan.component) ->
           let per = predicted_of (List.length c.Plan.cvars) c.Plan.width in
           if acc >= Plan.huge_nodes - per then Plan.huge_nodes else acc + per)
        0 plan.Plan.components
    in
    if plan.Plan.predicted_nodes <> predicted then
      failf "predicted_nodes %d is inconsistent with the claimed widths \
             (expected %d)"
        plan.Plan.predicted_nodes predicted;
    Ok
      {
        r_components = List.length plan.Plan.components;
        r_vars = plan.Plan.n_vars;
        r_width = !max_replayed;
      }
  with Fail msg -> Error msg

let report_to_string r =
  Printf.sprintf "verified (%d component(s), %d var(s), max replayed width %d)"
    r.r_components r.r_vars r.r_width
