(** Certified compilation planner: static analysis of a lineage formula
    before any backend work.

    The d-DNNF compiler ({!Circuit}) expands the lineage by Shannon
    branching; the order in which variables are decided controls the
    circuit size exponentially.  The planner looks at the lineage's
    {e variable co-occurrence graph} and derives, per independent
    AND-component, a variable elimination order whose {e induced width}
    (the treewidth-style quantity of Kara–Olteanu–Suciu's variable-order
    trees) bounds the conditioning blow-up along the reverse order.

    {2 The co-occurrence graph}

    One vertex per fact variable of the formula; edges come from a
    clique per syntactic {e constraint}:

    - [True]/[False] contribute nothing;
    - a literal [Fv f] contributes the singleton clique [{f}];
    - [Not p] contributes the cliques of [p];
    - [And ps] contributes the union of the children's cliques (a
      conjunction couples nothing by itself);
    - [Or ps] contributes one clique [vars p] {e per disjunct} [p] —
      within a disjunct every variable interacts, across disjuncts they
      do not.

    On DNF-style lineages (an ∨ of minimal-support conjunctions) this is
    exactly the primal graph of the support hypergraph.

    {2 The certificate}

    {!analyze} returns a transparent {!t}: the AND-component partition
    of the variables (from grouping the root conjuncts by shared
    variables), one elimination order and induced width per component,
    and a size prediction.  Nothing in it needs to be taken on trust —
    {!Plancheck.check} re-derives the partition and the graph
    independently and replays the order, in the style of {!Certcheck}. *)

type heuristic =
  | Min_degree  (** eliminate a vertex of minimum current degree *)
  | Min_fill    (** eliminate a vertex adding the fewest fill edges *)
  | Best        (** run both, keep the order of smaller induced width
                    (ties go to min-fill) *)

val heuristic_name : heuristic -> string
(** ["min-degree"], ["min-fill"] or ["best"]. *)

val heuristic_of_string : string -> heuristic option

type component = {
  cvars : Fact.t list;
      (** the component's variables, sorted by {!Fact.compare} *)
  order : Fact.t list;
      (** elimination order: a permutation of [cvars].  Its induced
          width is what [width] claims and what {!Plancheck} replays. *)
  branch : Fact.t list;
      (** decision order for the compiler: the preorder of the
          pseudo-tree the elimination order induces on the filled graph
          (a vertex's parent is its earliest-eliminated-after-it
          neighbour; subtrees visited later-eliminated-child first).
          Branching down one tree path at a time keeps each decision's
          live cut within the claimed width — a plain reversed
          elimination order decides across sibling subtrees and loses
          that locality.  A permutation of [cvars]; only its quality,
          never correctness, depends on the construction. *)
  width : int;
      (** induced width of [order] on the component's co-occurrence
          graph: the maximum degree of a vertex at its elimination,
          counting fill edges. *)
  picked : heuristic;
      (** which heuristic produced [order] ([Min_degree] or [Min_fill]) *)
}

type t = {
  n_vars : int;  (** variables of the analyzed formula *)
  components : component list;
      (** the separator-free AND-component partition, sorted by smallest
          variable; empty iff the formula is constant *)
  max_width : int;  (** maximum component width (0 for constants) *)
  predicted_nodes : int;
      (** predicted circuit size
          [Σ_c (|cvars_c| + 1) · 2^min(width_c + 1, 24)], saturated at
          {!huge_nodes} — the standard decision-DNNF bound [n · 2^w]
          along the reverse elimination order *)
  requested : heuristic;  (** the heuristic {!analyze} was asked for *)
}

val huge_nodes : int
(** Saturation value of [predicted_nodes] ([10^9]): the prediction for
    instances past any practical compilation budget. *)

val analyze : ?tel:Telemetry.t -> ?heuristic:heuristic -> Bform.t -> t
(** Run the full pass: split into AND-components (grouping the root
    conjuncts by shared variables; a non-conjunctive root is one
    component), build each component's co-occurrence graph, derive its
    elimination order and induced width, and predict the circuit size.
    Deterministic: ties everywhere break by {!Fact.compare} / vertex
    index.  [heuristic] defaults to [Best].

    With [tel], the pass runs in a [plan.analyze] span with the
    order derivation in a nested [plan.order] span (its time is the
    "order time" of the plan), and sets the [plan.components] and
    [plan.max_width] gauges. *)

val replan :
  ?tel:Telemetry.t -> ?heuristic:heuristic -> previous:t -> Bform.t -> t * int
(** Component-local replan after a delta update.  Re-derives the
    AND-component partition of the new formula, then for every component
    whose variable set matches a component of [previous] {e replays} the
    previous elimination order on the new co-occurrence graph instead of
    re-running the greedy heuristic.  The reported width is always the
    induced width of the replayed order on the {e actual} graph — never
    the stale claim — so a replanned certificate still passes
    {!Plancheck.check} unchanged.  If the replayed width exceeds the
    previous claim (the component's structure changed under it, e.g. by
    a fact flipping between exogenous truth values), that component
    falls back to the fresh heuristic.  Components with no variable-set
    match (the ones an insert/delete actually touched) are ordered from
    scratch.

    Returns the new plan and the number of components whose previous
    order was reused verbatim.  With [tel], runs in a [plan.replan] span
    and sets the [plan.reused_components] gauge (plus the same
    [plan.components]/[plan.max_width] gauges as {!analyze}). *)

val branch_order : t -> Fact.t list
(** The decision order the compiler should follow: each component's
    [branch] (pseudo-tree preorder), components concatenated in their
    listed order. *)

val component_count : t -> int
val component_index : t -> (Fact.t, int) Hashtbl.t
(** Variable → index of its component in [components]. *)

val recommend : t -> n_facts:int -> [ `Circuit | `Conditioning ]
(** Cost-based backend choice for a serial batched run over [n_facts]
    endogenous facts: [`Circuit] iff [n_facts >= min_circuit_facts] and
    [predicted_nodes <= circuit_node_budget] — one compilation of a
    width-bounded circuit beats [n_facts] conditioned counts; otherwise
    the predicted blow-up (or the tiny instance) favours conditioning. *)

val recommend_reason : t -> n_facts:int -> string
(** One line explaining {!recommend}'s verdict, for CLI notes. *)

val min_circuit_facts : int
(** Below this many endogenous facts conditioning always wins (8). *)

val circuit_node_budget : int
(** Predicted-node budget above which [`Auto] refuses to compile
    ([2^16]). *)

val to_string : t -> string
(** Multi-line human-readable dump (components, orders, widths,
    prediction); deterministic. *)

val to_json : t -> string
(** One JSON line: [{"n_vars":…,"max_width":…,"predicted_nodes":…,
    "components":[{"vars":[…],"order":[…],"branch":[…],"width":…,
    "heuristic":…}…]}]. *)

(** {2 Raw graph access}

    Exposed for {!Plancheck}-independent callers (tests, benchmarks)
    that want the co-occurrence structure itself. *)

val cliques : Bform.t -> Fact.Set.t list
(** The clique decomposition of the formula per the rules above, in
    deterministic traversal order. *)
