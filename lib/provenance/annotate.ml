let cq (type a) (module R : Semiring.S with type t = a) ~(annot : Fact.t -> a) (q : Cq.t)
    (facts : Fact.Set.t) : a =
  let total = ref R.zero in
  Homomorphism.iter_valuations ~into:facts (Cq.atoms q) (fun s ->
      let term =
        List.fold_left
          (fun acc atom ->
             let f = Fact.of_atom (Atom.apply (Term.Smap.map Term.const s) atom) in
             R.times acc (annot f))
          R.one (Cq.atoms q)
      in
      total := R.plus !total term);
  !total

let ucq (type a) (module R : Semiring.S with type t = a) ~annot (q : Ucq.t) facts : a =
  List.fold_left
    (fun acc d -> R.plus acc (cq (module R) ~annot d facts))
    R.zero (Ucq.disjuncts q)

let provenance_polynomial q facts =
  cq (module Semiring.Nx) ~annot:Semiring.Nx.var q facts

let lineage_of_provenance q db =
  let p = provenance_polynomial q (Database.all db) in
  let boolean_image =
    Semiring.Nx.specialize
      (module Semiring.Nx)
      (fun f -> if Database.mem_exo f db then Semiring.Nx.one else Semiring.Nx.var f)
      p
  in
  Semiring.Nx.to_lineage boolean_image

let hom_count q facts =
  cq (module Semiring.Counting) ~annot:(fun _ -> Bigint.one) q facts

let min_cost ~cost q facts =
  Semiring.Tropical.finite
    (cq (module Semiring.Tropical) ~annot:(fun f -> Semiring.Tropical.of_int (cost f)) q facts)
