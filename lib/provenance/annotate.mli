(** Annotated evaluation of monotone queries in a commutative semiring.

    For a Boolean CQ, the annotation is the sum over all valuations of the
    product of the annotations of the matched facts; for a UCQ, the sum
    over disjuncts.  Specializations recover familiar quantities:

    - {!Semiring.Bool}: satisfaction;
    - {!Semiring.Counting}: the number of homomorphisms;
    - {!Semiring.Tropical}: the minimum-cost derivation;
    - {!Semiring.Nx}: the full provenance polynomial, whose Boolean image
      is (an unreduced form of) the query lineage.

    RPQs/CRPQs are excluded: cyclic graphs make their derivation sums
    infinite, which needs ω-continuous star semirings (out of scope). *)

val cq :
  (module Semiring.S with type t = 'a) -> annot:(Fact.t -> 'a) -> Cq.t -> Fact.Set.t -> 'a

val ucq :
  (module Semiring.S with type t = 'a) -> annot:(Fact.t -> 'a) -> Ucq.t -> Fact.Set.t -> 'a

val provenance_polynomial : Cq.t -> Fact.Set.t -> Semiring.Nx.t
(** Annotation in ℕ[X] with each fact annotated by its own variable. *)

val lineage_of_provenance : Cq.t -> Database.t -> Bform.t
(** The Boolean image of the provenance polynomial, restricted to the
    endogenous facts (exogenous facts absorb to ⊤) — logically equivalent
    to {!Lineage.lineage} (tested), though not support-minimized. *)

val hom_count : Cq.t -> Fact.Set.t -> Bigint.t
(** Number of satisfying valuations (counting-semiring specialization). *)

val min_cost : cost:(Fact.t -> int) -> Cq.t -> Fact.Set.t -> int option
(** Cheapest derivation under per-fact costs (tropical specialization);
    [None] when the query is unsatisfied. *)
