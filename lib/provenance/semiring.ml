module type S = sig
  type t

  val zero : t
  val one : t
  val plus : t -> t -> t
  val times : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Bool = struct
  type t = bool

  let zero = false
  let one = true
  let plus = ( || )
  let times = ( && )
  let equal = Bool.equal
  let pp = Format.pp_print_bool
end

module Counting = struct
  type t = Bigint.t

  let zero = Bigint.zero
  let one = Bigint.one
  let plus = Bigint.add
  let times = Bigint.mul
  let equal = Bigint.equal
  let pp = Bigint.pp
end

module Tropical = struct
  type t = Finite of int | Infinity

  let zero = Infinity
  let one = Finite 0

  let plus a b =
    match (a, b) with
    | Infinity, x | x, Infinity -> x
    | Finite m, Finite n -> Finite (min m n)

  let times a b =
    match (a, b) with
    | Infinity, _ | _, Infinity -> Infinity
    | Finite m, Finite n -> Finite (m + n)

  let equal = ( = )
  let of_int n = Finite n
  let finite = function Finite n -> Some n | Infinity -> None

  let pp fmt = function
    | Infinity -> Format.pp_print_string fmt "∞"
    | Finite n -> Format.pp_print_int fmt n
end

module Nx = struct
  (* a monomial is a multiset of facts: fact -> exponent (> 0) *)
  module Monomial = struct
    type t = int Fact.Map.t

    let compare = Fact.Map.compare Int.compare
    let one = Fact.Map.empty

    let times a b =
      Fact.Map.union (fun _ e1 e2 -> Some (e1 + e2)) a b

    let var f = Fact.Map.singleton f 1
  end

  module Mmap = Map.Make (Monomial)

  (* polynomial: monomial -> coefficient (non-zero) *)
  type t = Bigint.t Mmap.t

  let zero = Mmap.empty
  let const c = if Bigint.is_zero c then zero else Mmap.singleton Monomial.one c
  let one = const Bigint.one
  let var f = Mmap.singleton (Monomial.var f) Bigint.one

  let plus a b =
    Mmap.union
      (fun _ c1 c2 ->
         let c = Bigint.add c1 c2 in
         if Bigint.is_zero c then None else Some c)
      a b

  let times a b =
    Mmap.fold
      (fun ma ca acc ->
         Mmap.fold
           (fun mb cb acc ->
              let m = Monomial.times ma mb in
              let c = Bigint.mul ca cb in
              Mmap.update m
                (function
                  | None -> Some c
                  | Some c' ->
                    let s = Bigint.add c c' in
                    if Bigint.is_zero s then None else Some s)
                acc)
           b acc)
      a zero

  let equal = Mmap.equal Bigint.equal

  let monomials p =
    List.map (fun (m, c) -> (c, Fact.Map.bindings m)) (Mmap.bindings p)

  let specialize (type a) (module R : S with type t = a) (valuation : Fact.t -> a) (p : t) : a =
    Mmap.fold
      (fun m c acc ->
         let coeff =
           (* c · 1 = 1 + 1 + ... (c times); compute by doubling *)
           let rec of_bigint c =
             if Bigint.is_zero c then R.zero
             else begin
               let q, r = Bigint.divmod c Bigint.two in
               let half = of_bigint q in
               let dbl = R.plus half half in
               if Bigint.is_zero r then dbl else R.plus dbl R.one
             end
           in
           of_bigint c
         in
         let term =
           Fact.Map.fold
             (fun f e acc ->
                let v = valuation f in
                let rec pow acc e = if e = 0 then acc else pow (R.times acc v) (e - 1) in
                pow acc e)
             m coeff
         in
         R.plus acc term)
      p R.zero

  let to_lineage p =
    Bform.disj
      (List.map
         (fun (m, _) ->
            Bform.conj (List.map (fun (f, _) -> Bform.fv f) (Fact.Map.bindings m)))
         (Mmap.bindings p))

  let pp fmt p =
    if Mmap.is_empty p then Format.pp_print_string fmt "0"
    else begin
      let pp_mono fmt (m, c) =
        let factors =
          List.map
            (fun (f, e) ->
               if e = 1 then Fact.to_string f
               else Printf.sprintf "%s^%d" (Fact.to_string f) e)
            (Fact.Map.bindings m)
        in
        if factors = [] then Bigint.pp fmt c
        else if Bigint.equal c Bigint.one then
          Format.pp_print_string fmt (String.concat "·" factors)
        else Format.fprintf fmt "%a·%s" Bigint.pp c (String.concat "·" factors)
      in
      Format.pp_print_list
        ~pp_sep:(fun f () -> Format.pp_print_string f " + ")
        pp_mono fmt (Mmap.bindings p)
    end
end
