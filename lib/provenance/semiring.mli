(** Commutative semirings for provenance annotations (Green et al.'s
    framework; the paper's home turf per its CCS classification).

    The Boolean lineage used throughout this library is the image of the
    most general annotation — the provenance polynomial over ℕ[X] — under
    the specialization to the Boolean semiring; {!Annotate} computes
    annotations for monotone queries in any instance. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val plus : t -> t -> t
  val times : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** The Boolean semiring ({true, false}, ∨, ∧): plain satisfaction. *)
module Bool : S with type t = bool

(** The counting semiring (ℕ, +, ×): number of derivations
    (homomorphisms). *)
module Counting : S with type t = Bigint.t

(** The tropical semiring (ℕ ∪ {∞}, min, +): minimal derivation cost.
    [zero] is ∞ and [one] is 0. *)
module Tropical : sig
  include S

  val of_int : int -> t
  val finite : t -> int option
  (** [None] on ∞. *)
end

(** Provenance polynomials ℕ[X] over fact variables — the free commutative
    semiring: sums of monomials with multiplicities, each monomial a
    multiset of facts. *)
module Nx : sig
  include S

  val var : Fact.t -> t
  val const : Bigint.t -> t

  val monomials : t -> (Bigint.t * (Fact.t * int) list) list
  (** Coefficient and factored monomial (fact, exponent) pairs, in a
      canonical order. *)

  val specialize : (module S with type t = 'a) -> (Fact.t -> 'a) -> t -> 'a
  (** Evaluate the polynomial in another semiring under a fact
      valuation — the universality of ℕ[X]. *)

  val to_lineage : t -> Bform.t
  (** The Boolean image: each monomial becomes the conjunction of its
      facts, the sum a disjunction. *)
end
