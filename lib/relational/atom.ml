type t = { rel : string; args : Term.t list }

let make rel args =
  if rel = "" then invalid_arg "Atom.make: empty relation name";
  { rel; args }

let rel a = a.rel
let args a = a.args
let arity a = List.length a.args

let vars a =
  List.fold_left
    (fun acc t -> match t with Term.Var v -> Term.Sset.add v acc | Term.Const _ -> acc)
    Term.Sset.empty a.args

let consts a =
  List.fold_left
    (fun acc t -> match t with Term.Const c -> Term.Sset.add c acc | Term.Var _ -> acc)
    Term.Sset.empty a.args

let is_ground a = List.for_all Term.is_const a.args

let apply subst a =
  let map_term = function
    | Term.Var v as t -> (match Term.Smap.find_opt v subst with Some t' -> t' | None -> t)
    | Term.Const _ as t -> t
  in
  { a with args = List.map map_term a.args }

let rename_consts rho a =
  let map_term = function
    | Term.Const c as t ->
      (match Term.Smap.find_opt c rho with Some c' -> Term.Const c' | None -> t)
    | Term.Var _ as t -> t
  in
  { a with args = List.map map_term a.args }

let compare = Stdlib.compare
let equal a b = compare a b = 0

let to_string a =
  Printf.sprintf "%s(%s)" a.rel (String.concat "," (List.map Term.to_string a.args))

let pp fmt a = Format.pp_print_string fmt (to_string a)

module Set = Stdlib.Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)
