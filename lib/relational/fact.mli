(** Facts: ground atoms [R(a₁, …, aₖ)] over constants only. *)

type t = { rel : string; args : string list }

val make : string -> string list -> t
(** Nullary facts [R()] are allowed (propositional relations).
    @raise Invalid_argument on an empty relation name. *)

val rel : t -> string
val args : t -> string list
val arity : t -> int

val consts : t -> Term.Sset.t

val to_atom : t -> Atom.t
val of_atom : Atom.t -> t
(** @raise Invalid_argument if the atom is not ground. *)

val of_atom_opt : Atom.t -> t option

val rename : string Term.Smap.t -> t -> t
(** [rename rho f] replaces each constant bound in [rho] by its image. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : sig
  include Set.S with type elt = t

  val consts : t -> Term.Sset.t
  (** All constants appearing in the set. *)

  val rels : t -> Term.Sset.t
  (** All relation names appearing in the set. *)

  val rename : string Term.Smap.t -> t -> t
  val pp : Format.formatter -> t -> unit
end

module Map : Map.S with type key = t
