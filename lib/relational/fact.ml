type t = { rel : string; args : string list }

let make rel args =
  if rel = "" then invalid_arg "Fact.make: empty relation name";
  { rel; args }

let rel f = f.rel
let args f = f.args
let arity f = List.length f.args

let consts f = Term.Sset.of_list f.args

let to_atom f = Atom.make f.rel (List.map Term.const f.args)

let of_atom_opt (a : Atom.t) =
  let rec ground acc = function
    | [] -> Some (List.rev acc)
    | Term.Const c :: rest -> ground (c :: acc) rest
    | Term.Var _ :: _ -> None
  in
  match ground [] (Atom.args a) with
  | Some args -> Some (make (Atom.rel a) args)
  | None -> None

let of_atom a =
  match of_atom_opt a with
  | Some f -> f
  | None -> invalid_arg "Fact.of_atom: atom is not ground"

let rename rho f =
  let map_const c = match Term.Smap.find_opt c rho with Some c' -> c' | None -> c in
  { f with args = List.map map_const f.args }

let compare = Stdlib.compare
let equal a b = compare a b = 0

let to_string f = Printf.sprintf "%s(%s)" f.rel (String.concat "," f.args)
let pp fmt f = Format.pp_print_string fmt (to_string f)

module Base_set = Stdlib.Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)

module Set = struct
  include Base_set

  let consts s =
    fold (fun f acc -> Term.Sset.union (consts f) acc) s Term.Sset.empty

  let rels s = fold (fun f acc -> Term.Sset.add f.rel acc) s Term.Sset.empty
  let rename rho s = map (rename rho) s

  let pp fmt s =
    Format.fprintf fmt "{@[%a@]}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@ ") pp)
      (elements s)
end

module Map = Stdlib.Map.Make (struct
    type nonrec t = t

    let compare = compare
  end)
