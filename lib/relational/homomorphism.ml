type subst = string Term.Smap.t

(* Facts of [into] indexed by relation name, for candidate generation. *)
let index_by_rel (into : Fact.Set.t) : Fact.t list Term.Smap.t =
  Fact.Set.fold
    (fun f acc ->
       Term.Smap.update (Fact.rel f)
         (function None -> Some [ f ] | Some l -> Some (f :: l))
         acc)
    into Term.Smap.empty

(* Try to extend [binding] so that [atom] maps onto [fact]. *)
let match_atom binding (atom : Atom.t) (fact : Fact.t) : subst option =
  if Atom.rel atom <> Fact.rel fact || Atom.arity atom <> Fact.arity fact then None
  else begin
    let rec go binding ts cs =
      match (ts, cs) with
      | [], [] -> Some binding
      | Term.Const c :: ts', c' :: cs' -> if c = c' then go binding ts' cs' else None
      | Term.Var v :: ts', c' :: cs' ->
        (match Term.Smap.find_opt v binding with
         | Some c when c = c' -> go binding ts' cs'
         | Some _ -> None
         | None -> go (Term.Smap.add v c' binding) ts' cs')
      | _, _ -> None
    in
    go binding (Atom.args atom) (Fact.args fact)
  end

let candidates index binding atom =
  let facts =
    match Term.Smap.find_opt (Atom.rel atom) index with
    | None -> []
    | Some l -> l
  in
  List.filter_map
    (fun f -> match match_atom binding atom f with Some b -> Some (f, b) | None -> None)
    facts

type ordering =
  | Fail_first
  | Syntactic

let iter_valuations ?(ordering = Fail_first) ~into ?(binding = Term.Smap.empty) atoms yield =
  let index = index_by_rel into in
  (* Fail-first: expand the atom with the fewest candidate facts under the
     current binding.  Candidate lists are recomputed per step; atom lists
     in this library are small (queries, minimal supports).  The [Syntactic]
     ordering processes atoms in their given order (ablation baseline). *)
  let rec go binding pending =
    match pending with
    | [] -> yield binding
    | first :: rest_syntactic ->
      let best, best_cands, rest =
        match ordering with
        | Syntactic -> (first, candidates index binding first, rest_syntactic)
        | Fail_first ->
          let scored = List.map (fun a -> (a, candidates index binding a)) pending in
          let best, best_cands =
            List.fold_left
              (fun (ba, bc) (a, c) ->
                 if List.length c < List.length bc then (a, c) else (ba, bc))
              (List.hd scored) (List.tl scored)
          in
          (best, best_cands, List.filter (fun a -> not (Atom.equal a best)) pending)
      in
      ignore best;
      List.iter (fun (_, binding') -> go binding' rest) best_cands
  in
  (* Duplicate atoms are redundant constraints and would be dropped together
     by the [filter] above; dedup once up front. *)
  go binding (List.sort_uniq Atom.compare atoms)

exception Found_subst of subst

let find_valuation ~into ?binding atoms =
  try
    iter_valuations ~into ?binding atoms (fun s -> raise (Found_subst s));
    None
  with Found_subst s -> Some s

let exists_valuation ~into ?binding atoms =
  Option.is_some (find_valuation ~into ?binding atoms)

let image subst atoms =
  List.fold_left
    (fun acc atom ->
       let ground =
         Atom.apply (Term.Smap.map Term.const subst) atom
       in
       match Fact.of_atom_opt ground with
       | Some f -> Fact.Set.add f acc
       | None -> invalid_arg "Homomorphism.image: valuation is not total")
    Fact.Set.empty atoms

let all_images ~into atoms =
  let seen = ref [] in
  iter_valuations ~into atoms (fun s ->
      let img = image s atoms in
      if not (List.exists (Fact.Set.equal img) !seen) then seen := img :: !seen);
  List.rev !seen

let minimal_images ~into atoms =
  let images = all_images ~into atoms in
  List.filter
    (fun img ->
       not
         (List.exists
            (fun other -> Fact.Set.subset other img && not (Fact.Set.equal other img))
            images))
    images

(* ------------------------------------------------------------------ *)
(* Fact-set homomorphisms: view non-fixed constants as variables.      *)
(* ------------------------------------------------------------------ *)

let fact_to_pattern ~fixed (f : Fact.t) : Atom.t =
  Atom.make (Fact.rel f)
    (List.map
       (fun c -> if Term.Sset.mem c fixed then Term.const c else Term.var c)
       (Fact.args f))

let iter_fact_homs ~fixed src ~into yield =
  let patterns = List.map (fact_to_pattern ~fixed) (Fact.Set.elements src) in
  let fixed_part =
    Term.Sset.fold
      (fun c acc -> if Term.Sset.mem c (Fact.Set.consts src) then Term.Smap.add c c acc else acc)
      fixed Term.Smap.empty
  in
  iter_valuations ~into patterns (fun s ->
      yield (Term.Smap.union (fun _ a _ -> Some a) s fixed_part))

exception Found_hom of string Term.Smap.t

let find_fact_hom ~fixed src ~into =
  try
    iter_fact_homs ~fixed src ~into (fun h -> raise (Found_hom h));
    None
  with Found_hom h -> Some h

let exists_fact_hom ~fixed src ~into =
  Option.is_some (find_fact_hom ~fixed src ~into)
