type t =
  | Const of string
  | Var of string

let const c = Const c
let var v = Var v

let is_const = function Const _ -> true | Var _ -> false
let is_var = function Var _ -> true | Const _ -> false

let compare = Stdlib.compare
let equal a b = compare a b = 0

let to_string = function
  | Const c -> c
  | Var v -> "?" ^ v

let pp fmt t = Format.pp_print_string fmt (to_string t)

let fresh_counter = ref 0

let fresh_const ?(prefix = "c") () =
  incr fresh_counter;
  Printf.sprintf "%s#%d" prefix !fresh_counter

let reset_fresh () = fresh_counter := 0

module Sset = Set.Make (String)
module Smap = Map.Make (String)

module Set = Stdlib.Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)

module Map = Stdlib.Map.Make (struct
    type nonrec t = t

    let compare = compare
  end)
