(* Schema inference: relation name -> arity, with arity-conflict
   certificates when a relation is used at two different arities. *)

type conflict = { rel : string; witness1 : Fact.t; witness2 : Fact.t }

type t = (int * Fact.t) Term.Smap.t
(* relation -> (arity, first fact seen with that arity) *)

let empty : t = Term.Smap.empty

let add_fact (schema, conflicts) f =
  let rel = Fact.rel f and k = Fact.arity f in
  match Term.Smap.find_opt rel schema with
  | None -> (Term.Smap.add rel (k, f) schema, conflicts)
  | Some (k', w) ->
    if k = k' then (schema, conflicts)
    else (schema, { rel; witness1 = w; witness2 = f } :: conflicts)

let infer facts =
  let schema, conflicts =
    Fact.Set.fold (fun f acc -> add_fact acc f) facts (empty, [])
  in
  (schema, List.rev conflicts)

let of_database db = infer (Database.all db)

let arity schema rel =
  Option.map fst (Term.Smap.find_opt rel schema)

let mem schema rel = Term.Smap.mem rel schema

let witness schema rel = Option.map snd (Term.Smap.find_opt rel schema)

let to_list schema =
  Term.Smap.fold (fun rel (k, _) acc -> (rel, k) :: acc) schema []
  |> List.sort compare

let check_atom schema a =
  match Term.Smap.find_opt (Atom.rel a) schema with
  | None -> `Unknown_relation
  | Some (k, w) -> if Atom.arity a = k then `Ok else `Arity_mismatch w

let pp fmt schema =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun f (r, k) ->
         Format.fprintf f "%s/%d" r k))
    (to_list schema)
