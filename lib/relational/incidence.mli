(** Incidence graphs and connectivity of atom sets (Section 2).

    The incidence graph [G_S] of a set of atoms [S] has the atoms and their
    terms as nodes, and an edge between each atom and each of its terms.
    [S] is {e connected} if [G_S] is; it is {e variable-connected} if [G_S]
    stays connected after removing all constant nodes (Section 4.1). *)

val connected : Atom.t list -> bool
(** Whether the incidence graph of the atoms is connected.  The empty set
    and singletons are connected. *)

val variable_connected : Atom.t list -> bool
(** Connectivity of [G_S] after removal of the constant nodes: atoms are
    adjacent only through shared variables. *)

val components : Atom.t list -> Atom.t list list
(** Connected components (via shared terms), coarsest partition. *)

val variable_components : Atom.t list -> Atom.t list list
(** Connected components via shared variables only. *)

val facts_connected_outside : fixed:Term.Sset.t -> Fact.Set.t -> bool
(** Whether the facts form a connected incidence graph when only constants
    outside [fixed] count as shared nodes — the invariant of the support
    [S^k ⊎ S⁻] in Claim 5.3 ("every atom is connected to every other by
    some constant outside of C"). *)

val fact_components_outside : fixed:Term.Sset.t -> Fact.Set.t -> Fact.Set.t list
(** Components of the above graph. *)

val group_by_shared : ('a -> string list) -> 'a list -> 'a list list
(** [group_by_shared keys items] is the generic union-find underneath
    all of the above: items sharing a key land in one group (elements
    keep their relative order inside a group; group order is
    unspecified).  Exposed for the compilation planner ({!Plan}), which
    groups lineage conjuncts by shared fact variables with it. *)
