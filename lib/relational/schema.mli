(** Schema inference over fact sets and databases.

    The paper works schema-less: a database is any finite set of facts.
    For static analysis we recover the implied schema — each relation name
    with its arity — and report {e conflicts}: relations used at two
    different arities, certified by a pair of witnessing facts. *)

type conflict = {
  rel : string;
  witness1 : Fact.t;  (** first fact seen for [rel] *)
  witness2 : Fact.t;  (** a fact of [rel] with a different arity *)
}

type t

val empty : t

val infer : Fact.Set.t -> t * conflict list
(** Inferred schema (first-seen arity wins) and all arity conflicts. *)

val of_database : Database.t -> t * conflict list

val arity : t -> string -> int option
val mem : t -> string -> bool

val witness : t -> string -> Fact.t option
(** The fact that fixed the relation's arity. *)

val to_list : t -> (string * int) list
(** Sorted [(relation, arity)] pairs. *)

val check_atom : t -> Atom.t -> [ `Ok | `Unknown_relation | `Arity_mismatch of Fact.t ]
(** Check a query atom against the schema; on arity mismatch, returns the
    database fact witnessing the conflicting arity. *)

val pp : Format.formatter -> t -> unit
