type t = { endo : Fact.Set.t; exo : Fact.Set.t }

let empty = { endo = Fact.Set.empty; exo = Fact.Set.empty }

let of_sets ~endo ~exo =
  if not (Fact.Set.is_empty (Fact.Set.inter endo exo)) then
    invalid_arg "Database.of_sets: endogenous and exogenous parts overlap";
  { endo; exo }

let make ~endo ~exo =
  of_sets ~endo:(Fact.Set.of_list endo) ~exo:(Fact.Set.of_list exo)

let endo db = db.endo
let exo db = db.exo
let all db = Fact.Set.union db.endo db.exo
let endo_list db = Fact.Set.elements db.endo
let size_endo db = Fact.Set.cardinal db.endo
let size db = Fact.Set.cardinal db.endo + Fact.Set.cardinal db.exo

let mem f db = Fact.Set.mem f db.endo || Fact.Set.mem f db.exo
let mem_endo f db = Fact.Set.mem f db.endo
let mem_exo f db = Fact.Set.mem f db.exo

let add_endo f db =
  if Fact.Set.mem f db.exo then invalid_arg "Database.add_endo: fact is exogenous";
  { db with endo = Fact.Set.add f db.endo }

let add_exo f db =
  if Fact.Set.mem f db.endo then invalid_arg "Database.add_exo: fact is endogenous";
  { db with exo = Fact.Set.add f db.exo }

let remove f db =
  { endo = Fact.Set.remove f db.endo; exo = Fact.Set.remove f db.exo }

let make_exogenous f db =
  if not (Fact.Set.mem f db.endo) then
    invalid_arg "Database.make_exogenous: fact is not endogenous";
  { endo = Fact.Set.remove f db.endo; exo = Fact.Set.add f db.exo }

let make_endogenous f db =
  if not (Fact.Set.mem f db.exo) then
    invalid_arg "Database.make_endogenous: fact is not exogenous";
  { endo = Fact.Set.add f db.endo; exo = Fact.Set.remove f db.exo }

let union_disjoint a b =
  if not (Fact.Set.is_empty (Fact.Set.inter (all a) (all b))) then
    invalid_arg "Database.union_disjoint: databases share facts";
  { endo = Fact.Set.union a.endo b.endo; exo = Fact.Set.union a.exo b.exo }

let consts db = Fact.Set.consts (all db)
let rels db = Fact.Set.rels (all db)

let rename rho db =
  { endo = Fact.Set.rename rho db.endo; exo = Fact.Set.rename rho db.exo }

let rename_away ~keep ~avoid db =
  let clashing =
    Term.Sset.filter
      (fun c -> (not (Term.Sset.mem c keep)) && Term.Sset.mem c avoid)
      (consts db)
  in
  let rho =
    Term.Sset.fold
      (fun c acc -> Term.Smap.add c (Term.fresh_const ~prefix:c ()) acc)
      clashing Term.Smap.empty
  in
  (rename rho db, rho)

let fold_endo_subsets f db init =
  let facts = Array.of_list (endo_list db) in
  let n = Array.length facts in
  if n > 62 then invalid_arg "Database.fold_endo_subsets: too many endogenous facts";
  let acc = ref init in
  for mask = 0 to (1 lsl n) - 1 do
    let subset = ref Fact.Set.empty in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then subset := Fact.Set.add facts.(i) !subset
    done;
    acc := f !subset !acc
  done;
  !acc

let restrict_to_consts c db =
  let keep f = Term.Sset.subset (Fact.consts f) c in
  { endo = Fact.Set.filter keep db.endo; exo = Fact.Set.filter keep db.exo }

let equal a b = Fact.Set.equal a.endo b.endo && Fact.Set.equal a.exo b.exo

let pp fmt db =
  Format.fprintf fmt "@[<v>endo: %a@,exo:  %a@]" Fact.Set.pp db.endo Fact.Set.pp db.exo
