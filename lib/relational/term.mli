(** Terms: constants and variables (Section 2 of the paper).

    Constants and variables are drawn from two disjoint infinite sets; we
    represent both by strings and keep them apart at the type level.  A
    global gensym provides the "fresh constants" that the reductions
    C-isomorphically rename databases with (Claims 5.1/5.3). *)

type t =
  | Const of string
  | Var of string

val const : string -> t
val var : string -> t

val is_const : t -> bool
val is_var : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val fresh_const : ?prefix:string -> unit -> string
(** A constant name guaranteed distinct from every name previously returned
    by this function in the process.  Caller-supplied names can still collide
    with it only if they use the reserved ["#"] character. *)

val reset_fresh : unit -> unit
(** Reset the gensym counter (test isolation only). *)

(** String sets/maps, used pervasively for constant sets [C]. *)
module Sset : Set.S with type elt = string

module Smap : Map.S with type key = string

module Set : Stdlib.Set.S with type elt = t
module Map : Stdlib.Map.S with type key = t
