(** Relational atoms [R(t₁, …, tₖ)] over terms.

    An atom whose terms are all constants is a {e fact}; ground atoms
    convert to and from {!Fact.t}. *)

type t = { rel : string; args : Term.t list }

val make : string -> Term.t list -> t
(** Nullary atoms [R()] are allowed (propositional relations); note that
    the paper's constructions assume positive arities (cf. proof of
    Lemma 4.2), so the reductions are only exercised on arity ≥ 1.
    @raise Invalid_argument on an empty relation name. *)

val rel : t -> string
val args : t -> Term.t list
val arity : t -> int

val vars : t -> Term.Sset.t
(** Variable names occurring in the atom. *)

val consts : t -> Term.Sset.t
(** Constant names occurring in the atom. *)

val is_ground : t -> bool

val apply : Term.t Term.Smap.t -> t -> t
(** [apply subst atom] replaces each variable [v] bound in [subst] by its
    image (constants are left untouched). *)

val rename_consts : string Term.Smap.t -> t -> t
(** [rename_consts rho atom] replaces each constant [c] bound in [rho] by
    [rho(c)]; unbound constants and variables are untouched. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
