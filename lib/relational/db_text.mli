(** Plain-text format for partitioned databases.

    One fact per line, tagged by its part; ['#'] starts a comment:

    {v
      # players
      endo R(a,b)
      endo S(b)
      # assumed facts
      exo  T(b,c)
    v} *)

val parse : string -> Database.t
(** @raise Invalid_argument on malformed input. *)

val parse_fact : string -> Fact.t
(** Parse a single ["R(a,b)"] fact. *)

val load : string -> Database.t
(** Read a database from a file path. *)

val to_string : Database.t -> string
