let parse_fact s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None -> invalid_arg ("Db_text.parse_fact: missing '(' in " ^ s)
  | Some i ->
    if s.[String.length s - 1] <> ')' then
      invalid_arg ("Db_text.parse_fact: missing ')' in " ^ s);
    let rel = String.trim (String.sub s 0 i) in
    if rel = "" then invalid_arg ("Db_text.parse_fact: missing relation name in " ^ s);
    let inner = String.sub s (i + 1) (String.length s - i - 2) in
    (* [R()] is a nullary fact; otherwise no argument may be empty *)
    let args =
      if String.trim inner = "" then []
      else begin
        let args = List.map String.trim (String.split_on_char ',' inner) in
        if List.exists (fun a -> a = "") args then
          invalid_arg ("Db_text.parse_fact: empty argument in " ^ s);
        args
      end
    in
    Fact.make rel args

let parse text =
  let lines = String.split_on_char '\n' text in
  let endo = ref [] and exo = ref [] in
  List.iteri
    (fun lineno line ->
       let line =
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line
       in
       let line = String.trim line in
       if line <> "" then begin
         let fail () =
           invalid_arg
             (Printf.sprintf "Db_text.parse: line %d: expected 'endo FACT' or 'exo FACT'"
                (lineno + 1))
         in
         let sep =
           (* the tag separator is the first blank, space or tab *)
           let n = String.length line in
           let rec find i =
             if i >= n then None
             else if line.[i] = ' ' || line.[i] = '\t' then Some i
             else find (i + 1)
           in
           find 0
         in
         match sep with
         | None -> fail ()
         | Some i ->
           let tag = String.sub line 0 i in
           let rest = String.sub line i (String.length line - i) in
           (match tag with
            | "endo" -> endo := parse_fact rest :: !endo
            | "exo" -> exo := parse_fact rest :: !exo
            | _ -> fail ())
       end)
    lines;
  Database.make ~endo:!endo ~exo:!exo

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  parse content

let to_string db =
  let buf = Buffer.create 256 in
  Fact.Set.iter
    (fun f -> Buffer.add_string buf ("endo " ^ Fact.to_string f ^ "\n"))
    (Database.endo db);
  Fact.Set.iter
    (fun f -> Buffer.add_string buf ("exo  " ^ Fact.to_string f ^ "\n"))
    (Database.exo db);
  Buffer.contents buf
