(** Partitioned databases [D = (Dₙ, Dₓ)] (Section 3 of the paper).

    A database is a finite set of facts split into {e endogenous} facts
    [Dₙ] (the Shapley players / counted facts) and {e exogenous} facts [Dₓ]
    (assumed facts, always present).  The two parts are disjoint by
    construction. *)

type t

val empty : t

val make : endo:Fact.t list -> exo:Fact.t list -> t
(** @raise Invalid_argument if the two lists share a fact. *)

val of_sets : endo:Fact.Set.t -> exo:Fact.Set.t -> t
(** @raise Invalid_argument if the two sets intersect. *)

val endo : t -> Fact.Set.t
val exo : t -> Fact.Set.t
val all : t -> Fact.Set.t

val endo_list : t -> Fact.t list
val size_endo : t -> int
val size : t -> int

val mem : Fact.t -> t -> bool
val mem_endo : Fact.t -> t -> bool
val mem_exo : Fact.t -> t -> bool

val add_endo : Fact.t -> t -> t
(** @raise Invalid_argument if the fact is already exogenous. *)

val add_exo : Fact.t -> t -> t
(** @raise Invalid_argument if the fact is already endogenous. *)

val remove : Fact.t -> t -> t

val make_exogenous : Fact.t -> t -> t
(** Move an endogenous fact to the exogenous part (used by the SVC → FGMC
    reduction, Claim A.1). @raise Invalid_argument if not endogenous. *)

val make_endogenous : Fact.t -> t -> t
(** Move an exogenous fact to the endogenous part (Lemma 6.1).
    @raise Invalid_argument if not exogenous. *)

val union_disjoint : t -> t -> t
(** Union of two databases with disjoint fact sets (the [⊎] of the paper's
    constructions). @raise Invalid_argument if they share a fact. *)

val consts : t -> Term.Sset.t
val rels : t -> Term.Sset.t

val rename : string Term.Smap.t -> t -> t
(** Apply a constant renaming to every fact of both parts. *)

val rename_away : keep:Term.Sset.t -> avoid:Term.Sset.t -> t -> t * string Term.Smap.t
(** [rename_away ~keep ~avoid db] C-isomorphically renames [db] so that no
    constant outside [keep] appears in [avoid]; constants in [keep] are
    untouched.  Returns the renamed database and the renaming used
    (Claim 5.1 (2)). *)

val fold_endo_subsets : (Fact.Set.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over all [2^|Dₙ|] subsets of the endogenous facts (brute-force
    oracles; intended for small instances only). *)

val restrict_to_consts : Term.Sset.t -> t -> t
(** [restrict_to_consts c db] keeps only facts whose constants all belong to
    [c] — the induced database [D|_C] of Section 6.4. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
