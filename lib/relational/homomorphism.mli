(** (C-)homomorphism search.

    The satisfaction relation for CQs, hom-closure checks, minimal-support
    enumeration and the paper's q-leak test (Section 4.1) all reduce to
    finding maps that send a set of atoms into a set of facts:

    - a {e valuation} maps the variables of an atom set to constants so that
      every instantiated atom is a fact of the target set (constants are
      rigid) — this is the [C-hom] of CQ semantics with [C = const(q)];
    - a {e C-homomorphism between fact sets} maps constants to constants,
      fixing a set [C] pointwise.

    The search is backtracking with a fail-first atom ordering (the atom
    with the fewest candidate facts is matched first). *)

type subst = string Term.Smap.t
(** Finite map from variable names to constant names. *)

type ordering =
  | Fail_first  (** match the atom with the fewest candidates first (default) *)
  | Syntactic   (** match atoms in the given order (ablation baseline) *)

val iter_valuations :
  ?ordering:ordering ->
  into:Fact.Set.t -> ?binding:subst -> Atom.t list -> (subst -> unit) -> unit
(** Enumerate every total valuation of the atoms' variables (extending
    [binding]) whose image lies inside [into]. *)

val find_valuation :
  into:Fact.Set.t -> ?binding:subst -> Atom.t list -> subst option

val exists_valuation :
  into:Fact.Set.t -> ?binding:subst -> Atom.t list -> bool

val image : subst -> Atom.t list -> Fact.Set.t
(** The set of facts obtained by applying a total valuation.
    @raise Invalid_argument if some variable is unbound. *)

val all_images : into:Fact.Set.t -> Atom.t list -> Fact.Set.t list
(** All distinct images of valuations into [into]. *)

val minimal_images : into:Fact.Set.t -> Atom.t list -> Fact.Set.t list
(** The ⊆-minimal elements of {!all_images} — for a CQ [q], these are the
    minimal supports of [q] inside [into]. *)

(** {1 Homomorphisms between fact sets} *)

val iter_fact_homs :
  fixed:Term.Sset.t -> Fact.Set.t -> into:Fact.Set.t -> (string Term.Smap.t -> unit) -> unit
(** Enumerate constant renamings [h] fixing [fixed] pointwise with
    [h(src) ⊆ into].  The map is defined on every constant of the source
    (including fixed ones, mapped to themselves). *)

val exists_fact_hom : fixed:Term.Sset.t -> Fact.Set.t -> into:Fact.Set.t -> bool

val find_fact_hom :
  fixed:Term.Sset.t -> Fact.Set.t -> into:Fact.Set.t -> string Term.Smap.t option
