(* Union-find over array indices; small, local, path-compressing. *)
module Uf = struct
  let create n = Array.init n (fun i -> i)

  let rec find uf i = if uf.(i) = i then i else begin
    let r = find uf uf.(i) in
    uf.(i) <- r;
    r
  end

  let union uf i j =
    let ri = find uf i and rj = find uf j in
    if ri <> rj then uf.(ri) <- rj
end

(* Group list elements by the representative of the terms they share.
   [terms_of x] lists the "connecting" node keys of element [x]. *)
let components_by (type a) (terms_of : a -> string list) (items : a list) : a list list =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let uf = Uf.create n in
    let owner : (string, int) Hashtbl.t = Hashtbl.create 16 in
    Array.iteri
      (fun i x ->
         List.iter
           (fun key ->
              match Hashtbl.find_opt owner key with
              | None -> Hashtbl.add owner key i
              | Some j -> Uf.union uf i j)
           (terms_of x))
      items;
    let groups : (int, a list) Hashtbl.t = Hashtbl.create 8 in
    Array.iteri
      (fun i x ->
         let r = Uf.find uf i in
         let prev = Option.value ~default:[] (Hashtbl.find_opt groups r) in
         Hashtbl.replace groups r (x :: prev))
      items;
    Hashtbl.fold (fun _ g acc -> List.rev g :: acc) groups []
  end

(* Term keys: tag constants and variables apart so that a constant "x" and a
   variable "x" never connect. *)
let all_term_keys atom =
  List.map
    (function Term.Const c -> "c:" ^ c | Term.Var v -> "v:" ^ v)
    (Atom.args atom)

let var_term_keys atom =
  List.filter_map
    (function Term.Var v -> Some ("v:" ^ v) | Term.Const _ -> None)
    (Atom.args atom)

let components atoms = components_by all_term_keys (List.sort_uniq Atom.compare atoms)

let variable_components atoms =
  components_by var_term_keys (List.sort_uniq Atom.compare atoms)

let connected atoms = List.length (components atoms) <= 1
let variable_connected atoms = List.length (variable_components atoms) <= 1

let fact_components_outside ~fixed facts =
  let keys f =
    List.filter (fun c -> not (Term.Sset.mem c fixed)) (Fact.args f)
  in
  List.map Fact.Set.of_list (components_by keys (Fact.Set.elements facts))

let facts_connected_outside ~fixed facts =
  List.length (fact_components_outside ~fixed facts) <= 1

let group_by_shared = components_by
