(** Shapley-counting: a library reproducing
    "When is Shapley Value Computation a Matter of Counting?"
    (Bienvenu, Figueira, Lafourcade — PODS 2024).

    This umbrella module re-exports the full public API in dependency
    order.  Start with {!Quickstart} below, or the [examples/] directory.

    {1 Layers}

    - arithmetic: {!Bigint}, {!Rational}, {!Poly}, {!Linalg}
    - relational: {!Term}, {!Atom}, {!Fact}, {!Database},
      {!Homomorphism}, {!Incidence}
    - automata: {!Regex}, {!Nfa}, {!Dfa}, {!Words}
    - queries: {!Cq}, {!Ucq}, {!Rpq}, {!Crpq}, {!Ucrpq}, {!Cqneg},
      {!Query}
    - lineage: {!Bform}, {!Lineage}, {!Compile}
    - counting: {!Model_counting}, {!Prob_db}, {!Pqe}
    - Shapley: {!Game}, {!Svc}, {!Max_svc}, {!Const_svc}
    - reductions (Figure 1a): {!Oracle}, {!Svc_to_fgmc}, {!Fgmc_sppqe},
      {!Fgmc_to_svc}, {!Endogenous}, {!Max_svc_red}, {!Const_red},
      {!Negation_red}
    - dichotomies (Figure 1b): {!Hierarchical}, {!Safety},
      {!Pseudo_connected}, {!Decomposable}, {!Classify} *)

(* Arithmetic substrate *)
module Bigint = Bigint
module Rational = Rational
module Poly = Poly
module Linalg = Linalg

(* Relational substrate *)
module Term = Term
module Atom = Atom
module Fact = Fact
module Database = Database
module Homomorphism = Homomorphism
module Incidence = Incidence

(* Automata substrate *)
module Regex = Regex
module Nfa = Nfa
module Dfa = Dfa
module Words = Words

(* Query languages *)
module Cq = Cq
module Ucq = Ucq
module Rpq = Rpq
module Crpq = Crpq
module Ucrpq = Ucrpq
module Cqneg = Cqneg
module Gcq = Gcq
module Query = Query
module Query_parse = Query_parse

(* Lineage and knowledge compilation *)
module Bform = Bform
module Lineage = Lineage
module Compile = Compile

(* Counting and probabilistic problems *)
module Model_counting = Model_counting
module Prob_db = Prob_db
module Pqe = Pqe
module Safe_plan = Safe_plan
module Lifted = Lifted

(* Shapley values *)
module Game = Game
module Svc = Svc
module Max_svc = Max_svc
module Const_svc = Const_svc

(* Reductions (Figure 1a) *)
module Oracle = Oracle
module Svc_to_fgmc = Svc_to_fgmc
module Fgmc_sppqe = Fgmc_sppqe
module Fgmc_to_svc = Fgmc_to_svc
module Endogenous = Endogenous
module Max_svc_red = Max_svc_red
module Const_red = Const_red
module Negation_red = Negation_red
module Mc_pqe_half = Mc_pqe_half

(* Provenance semirings *)
module Semiring = Semiring
module Annotate = Annotate

(* Workload generators *)
module Workload = Workload

(* Dichotomies (Figure 1b) *)
module Hierarchical = Hierarchical
module Safety = Safety
module Pseudo_connected = Pseudo_connected
module Decomposable = Decomposable
module Classify = Classify
module Shatter = Shatter
