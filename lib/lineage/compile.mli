(** Model counting on lineage formulas by memoized Shannon expansion.

    The central routine computes the {e size-generating polynomial} of a
    formula over a variable universe: the coefficient of [z^j] counts the
    satisfying assignments with exactly [j] variables set to true.  This
    single polynomial answers the whole family of problems of Section 3:

    - [FGMC_j] is coefficient [j] (over universe [Dₙ]);
    - [GMC] is the total [p(1)];
    - [SPPQE] at probability [p] is [p(z)/(1+z)^n] for [z = p/(1-p)]
      (Claim A.2);
    - arbitrary tuple-independent [PQE] is the weighted variant below.

    The expansion conditions on one variable at a time, memoizes on the
    simplified sub-formula, and multiplies variable-disjoint conjuncts
    (the d-DNNF-style decomposition rule). *)

type stats = { cache_hits : int; cache_misses : int }

(** A shareable, bounded memo cache for {!size_polynomial_with}.

    {b Not domain-safe:} the cache is a plain [Hashtbl] with no
    synchronization, so a [Memo.t] must only ever be mutated from the
    domain that owns it.  Callers that fan counting out across domains
    (the parallel {!Engine}) give each domain its own cache.

    Keys are the conditioned sub-formulas themselves, hashed structurally
    ({!Bform.hash}); a cached polynomial counts over exactly [vars phi],
    which makes one cache sound across any number of calls — in particular
    across the per-fact conditionings of a batched SVC run.  At capacity,
    new results are still computed and returned but not retained (counted
    as [drops]), so a bound can never change an answer.  [poly_ops] counts
    the polynomial ring operations performed by the counter. *)
module Memo : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity: unbounded.
      @raise Invalid_argument on negative capacity. *)

  val copy : t -> t
  (** A new cache with the same entries and capacity but fresh (zero)
      counters.  The copy shares no mutable structure with the original,
      so it is the way to hand a warm cache to another domain without
      violating the single-owner rule: copy first (while no domain is
      mutating the source), then let the receiving domain own the copy. *)

  val length : t -> int
  val capacity : t -> int
  val hits : t -> int
  val misses : t -> int
  val drops : t -> int
  val poly_ops : t -> int
  val clear : t -> unit
end

val conjunct_components : Bform.t list -> (Bform.t * Fact.Set.t) list
(** Split the juncts of a conjunction into variable-disjoint groups (the
    d-DNNF decomposition rule), each rebuilt as one conjunct and tagged
    with its variable set.  Exposed for the {!Circuit} knowledge compiler,
    which applies the same rule when building decomposable ∧-nodes. *)

val branch_variable : Bform.t -> Fact.t option
(** The Shannon branching heuristic (most frequently occurring variable);
    [None] iff the formula is constant.  Exposed so {!Circuit} expands in
    the same order as the counter, keeping the two backends' structures —
    and their cache behaviours — comparable. *)

val one_plus_z_pow : int -> Poly.Z.t
(** [(1 + z)^k], the size polynomial of the always-true function over [k]
    variables — the padding factor for variables a sub-formula does not
    mention.  Memoized in a {e domain-local} table (safe to call from any
    domain) and referentially transparent: every call returns a polynomial
    equal to [Poly.Z.of_coeffs (Array.to_list (Bigint.binomial_row k))].
    @raise Invalid_argument on negative [k]. *)

val size_polynomial_with :
  memo:Memo.t -> universe:Fact.t list -> Bform.t -> Poly.Z.t
(** As {!size_polynomial}, but looking sub-results up in — and charging
    instrumentation to — the given shared cache.
    @raise Invalid_argument if the formula mentions a fact outside the
    universe. *)

val size_polynomial : universe:Fact.t list -> Bform.t -> Poly.Z.t
(** @raise Invalid_argument if the formula mentions a fact outside the
    universe. *)

val size_polynomial_stats : universe:Fact.t list -> Bform.t -> Poly.Z.t * stats

val size_polynomial_naive : universe:Fact.t list -> Bform.t -> Poly.Z.t
(** No memoization, no decomposition: Shannon expansion only (ablation
    baseline). *)

val count_models : universe:Fact.t list -> Bform.t -> Bigint.t
(** Total number of satisfying assignments over the universe. *)

val probability : prob:(Fact.t -> Rational.t) -> Bform.t -> Rational.t
(** Probability that the formula is true when each fact variable [f] is
    independently true with probability [prob f]. *)

val probability_naive : prob:(Fact.t -> Rational.t) -> Bform.t -> Rational.t
