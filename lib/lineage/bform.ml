type t =
  | True
  | False
  | Fv of Fact.t
  | And of t list
  | Or of t list
  | Not of t

let tru = True
let fls = False
let fv f = Fv f

let conj parts =
  let rec gather acc = function
    | [] -> Some acc
    | True :: rest -> gather acc rest
    | False :: _ -> None
    | And inner :: rest -> gather acc (inner @ rest)
    | phi :: rest -> gather (phi :: acc) rest
  in
  match gather [] parts with
  | None -> False
  | Some [] -> True
  | Some [ phi ] -> phi
  | Some phis -> And (List.rev phis)

let disj parts =
  let rec gather acc = function
    | [] -> Some acc
    | False :: rest -> gather acc rest
    | True :: _ -> None
    | Or inner :: rest -> gather acc (inner @ rest)
    | phi :: rest -> gather (phi :: acc) rest
  in
  match gather [] parts with
  | None -> True
  | Some [] -> False
  | Some [ phi ] -> phi
  | Some phis -> Or (List.rev phis)

let neg = function
  | True -> False
  | False -> True
  | Not phi -> phi
  | phi -> Not phi

let rec vars = function
  | True | False -> Fact.Set.empty
  | Fv f -> Fact.Set.singleton f
  | And parts | Or parts ->
    List.fold_left (fun acc p -> Fact.Set.union acc (vars p)) Fact.Set.empty parts
  | Not phi -> vars phi

let rec eval phi assignment =
  match phi with
  | True -> true
  | False -> false
  | Fv f -> Fact.Set.mem f assignment
  | And parts -> List.for_all (fun p -> eval p assignment) parts
  | Or parts -> List.exists (fun p -> eval p assignment) parts
  | Not phi -> not (eval phi assignment)

let rec condition f b phi =
  match phi with
  | True -> True
  | False -> False
  | Fv f' -> if Fact.equal f f' then (if b then True else False) else phi
  | And parts -> conj (List.map (condition f b) parts)
  | Or parts -> disj (List.map (condition f b) parts)
  | Not phi -> neg (condition f b phi)

let rec size = function
  | True | False | Fv _ -> 1
  | And parts | Or parts -> List.fold_left (fun acc p -> acc + size p) 1 parts
  | Not phi -> 1 + size phi

let compare = Stdlib.compare
let equal a b = compare a b = 0

(* Full structural hash (FNV-style mixing).  [Hashtbl.hash] stops after a
   bounded number of meaningful nodes, so distinct large formulas collide
   systematically; memo caches keyed on lineages need the whole structure
   to contribute. *)
let hash phi =
  let mix h k = (h * 0x01000193) lxor (k land max_int) in
  let rec go h = function
    | True -> mix h 0x11
    | False -> mix h 0x13
    | Fv f -> mix (mix h 0x17) (Hashtbl.hash f)
    | And parts -> List.fold_left go (mix h 0x1d) parts
    | Or parts -> List.fold_left go (mix h 0x1f) parts
    | Not phi -> go (mix h 0x25) phi
  in
  go 0x811c9dc5 phi land max_int

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "⊤"
  | False -> Format.pp_print_string fmt "⊥"
  | Fv f -> Fact.pp fmt f
  | And parts ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ∧ ") pp)
      parts
  | Or parts ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ∨ ") pp)
      parts
  | Not phi -> Format.fprintf fmt "¬%a" pp phi
