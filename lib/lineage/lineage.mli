(** Lineage computation: from a query and a partitioned database to a
    Boolean function of the endogenous facts.

    For every [S ⊆ Dₙ]:  [Bform.eval (lineage q db) S  ⇔  S ∪ Dₓ ⊨ q].

    Monotone queries yield the disjunction of their minimal supports
    (restricted to endogenous facts); CQ¬ queries yield a non-monotone
    formula with negated fact variables. *)

val lineage : Query.t -> Database.t -> Bform.t

val rpq_minimal_supports : Rpq.t -> Fact.Set.t -> Fact.Set.t list
(** Scalable minimal-support enumeration for RPQs by product-automaton walk
    search (the generic subset enumeration of {!Query.minimal_supports_in}
    is exponential in the database size). *)
