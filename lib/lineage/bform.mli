(** Boolean formulas over fact variables (lineage expressions).

    The lineage of a query [q] over a partitioned database [D] is a Boolean
    function of the endogenous facts describing exactly which sub-databases
    satisfy [q]; every counting and probabilistic problem of Section 3 is a
    computation on this function. *)

type t =
  | True
  | False
  | Fv of Fact.t                (** a fact variable *)
  | And of t list
  | Or of t list
  | Not of t

val tru : t
val fls : t
val fv : Fact.t -> t

val conj : t list -> t
(** Flattening, constant-folding conjunction. *)

val disj : t list -> t
val neg : t -> t

val vars : t -> Fact.Set.t

val eval : t -> Fact.Set.t -> bool
(** Truth value under the assignment "facts in the set are true". *)

val condition : Fact.t -> bool -> t -> t
(** [condition f b phi] substitutes [b] for [f] and simplifies. *)

val size : t -> int
(** Node count. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash over the whole formula (unlike [Hashtbl.hash], which
    truncates), compatible with {!equal}; non-negative.  Used to key memo
    caches on conditioned lineages. *)

val pp : Format.formatter -> t -> unit
