(* ------------------------------------------------------------------ *)
(* RPQ minimal supports via product-automaton walk enumeration          *)
(* ------------------------------------------------------------------ *)

module Iset = Set.Make (Int)

let rpq_minimal_supports (q : Rpq.t) (facts : Fact.Set.t) : Fact.Set.t list =
  let lang = Rpq.lang q and src = Rpq.src q and dst = Rpq.dst q in
  if Regex.nullable lang && src = dst then [ Fact.Set.empty ]
  else begin
    let nfa = Nfa.of_regex lang in
    (* indexed binary edges *)
    let edges =
      Fact.Set.fold
        (fun f acc -> match Fact.args f with [ a; b ] -> (f, a, b) :: acc | _ -> acc)
        facts []
      |> Array.of_list
    in
    let out : (string, int list) Hashtbl.t = Hashtbl.create 16 in
    Array.iteri
      (fun i (_, a, _) ->
         let prev = Option.value ~default:[] (Hashtbl.find_opt out a) in
         Hashtbl.replace out a (i :: prev))
      edges;
    let results : Fact.Set.t list ref = ref [] in
    let record used =
      let support =
        Iset.fold (fun i acc -> let f, _, _ = edges.(i) in Fact.Set.add f acc) used Fact.Set.empty
      in
      if not (List.exists (Fact.Set.equal support) !results) then
        results := support :: !results
    in
    (* DFS over (node, nfa-state-set); a pair (edge, state-set) may appear at
       most once on the current branch: a repeat means an excisable loop, so
       every minimal support is still reached. *)
    let rec go node set used path =
      if node = dst && Nfa.is_accepting nfa set then record used;
      let succ = Option.value ~default:[] (Hashtbl.find_opt out node) in
      List.iter
        (fun i ->
           let f, _, b = edges.(i) in
           let set' = Nfa.step nfa set (Fact.rel f) in
           if not (Nfa.is_empty_set set') then begin
             let key = (i, Nfa.set_elements set') in
             if not (List.mem key path) then
               go b set' (Iset.add i used) (key :: path)
           end)
        succ
    in
    go src (Nfa.start nfa) Iset.empty [];
    (* keep only ⊆-minimal supports *)
    let all = !results in
    List.filter
      (fun s ->
         not
           (List.exists (fun s' -> Fact.Set.subset s' s && not (Fact.Set.equal s' s)) all))
      all
  end

(* ------------------------------------------------------------------ *)
(* Lineage                                                             *)
(* ------------------------------------------------------------------ *)

(* Disjunction of minimal supports, with exogenous facts erased. *)
let of_supports (db : Database.t) (supports : Fact.Set.t list) : Bform.t =
  Bform.disj
    (List.map
       (fun s ->
          Bform.conj
            (List.filter_map
               (fun f -> if Database.mem_exo f db then None else Some (Bform.fv f))
               (Fact.Set.elements s)))
       supports)

let crpq_lineage (crpq : Crpq.t) (db : Database.t) : Bform.t =
  let facts = Database.all db in
  (* For each CSP solution over the full database, conjoin the per-atom RPQ
     lineages; satisfaction under any sub-database implies a solution over
     the full database, so the disjunction over full-database solutions is
     complete. *)
  let atoms = Crpq.path_atoms crpq in
  let universe =
    Term.Sset.union (Fact.Set.consts facts) (Crpq.consts crpq)
  in
  let atom_pairs (a : Crpq.path_atom) =
    let base = Rpq.reachable_pairs a.lang facts in
    if Regex.nullable a.lang then
      List.sort_uniq compare
        (base @ List.map (fun c -> (c, c)) (Term.Sset.elements universe))
    else base
  in
  let constraints = List.map (fun a -> (a, atom_pairs a)) atoms in
  let solutions = ref [] in
  let lookup binding (t : Term.t) =
    match t with
    | Term.Const c -> Some c
    | Term.Var v -> Term.Smap.find_opt v binding
  in
  let rec solve binding = function
    | [] -> solutions := binding :: !solutions
    | ((a : Crpq.path_atom), pairs) :: rest ->
      List.iter
        (fun (c, d) ->
           let ok_src = match lookup binding a.psrc with None -> true | Some x -> x = c in
           let ok_dst = match lookup binding a.pdst with None -> true | Some x -> x = d in
           if ok_src && ok_dst then begin
             let binding =
               match a.psrc with
               | Term.Var v -> Term.Smap.add v c binding
               | Term.Const _ -> binding
             in
             let binding =
               match a.pdst with
               | Term.Var v -> Term.Smap.add v d binding
               | Term.Const _ -> binding
             in
             solve binding rest
           end)
        pairs
  in
  solve Term.Smap.empty constraints;
  (* distinct pair choices can induce the same binding; dedup *)
  let distinct =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun b ->
         let key = Term.Smap.bindings b in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.add seen key ();
           true
         end)
      !solutions
  in
  let instantiate binding (a : Crpq.path_atom) =
    let res t =
      match lookup binding t with
      | Some c -> c
      | None -> invalid_arg "Lineage.crpq: unbound term"
    in
    Rpq.make a.lang ~src:(res a.psrc) ~dst:(res a.pdst)
  in
  Bform.disj
    (List.map
       (fun binding ->
          Bform.conj
            (List.map
               (fun a ->
                  of_supports db (rpq_minimal_supports (instantiate binding a) facts))
               atoms))
       distinct)

let cqneg_lineage (qn : Cqneg.t) (db : Database.t) : Bform.t =
  let facts = Database.all db in
  let branches = ref [] in
  Homomorphism.iter_valuations ~into:facts (Cqneg.pos qn) (fun s ->
      let ground a = Fact.of_atom (Atom.apply (Term.Smap.map Term.const s) a) in
      let pos_lits =
        List.filter_map
          (fun a ->
             let f = ground a in
             if Database.mem_exo f db then None else Some (Bform.fv f))
          (Cqneg.pos qn)
      in
      let neg_lits =
        List.map
          (fun a ->
             let f = ground a in
             if Database.mem_exo f db then Bform.fls (* always present: ¬f is false *)
             else if Database.mem_endo f db then Bform.neg (Bform.fv f)
             else Bform.tru (* absent from D: never present *))
          (Cqneg.neg qn)
      in
      branches := Bform.conj (pos_lits @ neg_lits) :: !branches);
  Bform.disj !branches

let gcq_lineage (g : Gcq.t) (db : Database.t) : Bform.t =
  let facts = Database.all db in
  let rec cond_form subst (c : Gcq.cond) : Bform.t =
    match c with
    | Gcq.Catom a ->
      let f = Fact.of_atom (Atom.apply (Term.Smap.map Term.const subst) a) in
      if Database.mem_exo f db then Bform.tru
      else if Database.mem_endo f db then Bform.fv f
      else Bform.fls (* absent facts are never present *)
    | Gcq.Cand cs -> Bform.conj (List.map (cond_form subst) cs)
    | Gcq.Cor cs -> Bform.disj (List.map (cond_form subst) cs)
    | Gcq.Cnot c -> Bform.neg (cond_form subst c)
  in
  let branches = ref [] in
  Homomorphism.iter_valuations ~into:facts (Gcq.guards g) (fun s ->
      let guard_lits =
        List.filter_map
          (fun a ->
             let f = Fact.of_atom (Atom.apply (Term.Smap.map Term.const s) a) in
             if Database.mem_exo f db then None else Some (Bform.fv f))
          (Gcq.guards g)
      in
      let cond_lits = List.map (cond_form s) (Gcq.conditions g) in
      branches := Bform.conj (guard_lits @ cond_lits) :: !branches);
  Bform.disj !branches

let rec lineage (q : Query.t) (db : Database.t) : Bform.t =
  let facts = Database.all db in
  match q with
  | Query.True -> Bform.tru
  | Query.Cq cq -> of_supports db (Cq.minimal_supports_in cq facts)
  | Query.Ucq ucq -> of_supports db (Ucq.minimal_supports_in ucq facts)
  | Query.Rpq rpq -> of_supports db (rpq_minimal_supports rpq facts)
  | Query.Crpq crpq -> crpq_lineage crpq db
  | Query.Ucrpq ucrpq ->
    Bform.disj (List.map (fun c -> lineage (Query.Crpq c) db) (Ucrpq.disjuncts ucrpq))
  | Query.Cqneg qn -> cqneg_lineage qn db
  | Query.Gcq g -> gcq_lineage g db
  | Query.And (a, b) -> Bform.conj [ lineage a db; lineage b db ]
  | Query.Or (a, b) -> Bform.disj [ lineage a db; lineage b db ]
