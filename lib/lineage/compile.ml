type stats = { cache_hits : int; cache_misses : int }

module Cache = Hashtbl.Make (struct
    type t = Bform.t

    let equal = Bform.equal
    let hash = Hashtbl.hash
  end)

(* (1 + z)^k *)
let one_plus_z_pow k =
  Poly.Z.of_coeffs (List.init (k + 1) (fun i -> Bigint.binomial k i))

(* Split a list of juncts into variable-disjoint groups (the decomposition
   rule, applied to conjunctions directly and to disjunctions through
   complementation). *)
let components ~rebuild (parts : Bform.t list) : (Bform.t * Fact.Set.t) list =
  let tagged = List.map (fun p -> (p, Bform.vars p)) parts in
  let rec merge groups = function
    | [] -> groups
    | (p, vs) :: rest ->
      let touching, apart =
        List.partition
          (fun (_, vs') -> not (Fact.Set.is_empty (Fact.Set.inter vs vs')))
          groups
      in
      let merged_parts = p :: List.concat_map (fun (ps, _) -> ps) touching in
      let merged_vars =
        List.fold_left (fun acc (_, vs') -> Fact.Set.union acc vs') vs touching
      in
      merge ((merged_parts, merged_vars) :: apart) rest
  in
  List.map (fun (ps, vs) -> (rebuild ps, vs)) (merge [] tagged)

let and_components = components ~rebuild:Bform.conj
let or_components = components ~rebuild:Bform.disj

(* Pick the most frequently occurring variable (fail-first branching). *)
let pick_variable phi =
  let counts : (Fact.t, int) Hashtbl.t = Hashtbl.create 16 in
  let rec scan = function
    | Bform.True | Bform.False -> ()
    | Bform.Fv f ->
      Hashtbl.replace counts f (1 + Option.value ~default:0 (Hashtbl.find_opt counts f))
    | Bform.And ps | Bform.Or ps -> List.iter scan ps
    | Bform.Not p -> scan p
  in
  scan phi;
  Hashtbl.fold
    (fun f c best ->
       match best with
       | Some (_, c') when c' >= c -> best
       | _ -> Some (f, c))
    counts None
  |> Option.map fst

(* Core counter over exactly vars(phi); callers pad with (1+z)^free. *)
let size_polynomial_core ~memo phi0 =
  let hits = ref 0 and misses = ref 0 in
  let cache : Poly.Z.t Cache.t = Cache.create 256 in
  let pad target_vars poly sub_vars =
    (* poly counts over sub_vars; pad to count over target_vars minus the
       conditioned variable *)
    let missing = target_vars - 1 - sub_vars in
    if missing = 0 then poly else Poly.Z.mul poly (one_plus_z_pow missing)
  in
  let rec count phi =
    match phi with
    | Bform.True -> Poly.Z.one
    | Bform.False -> Poly.Z.zero
    | _ ->
      let cached = if memo then Cache.find_opt cache phi else None in
      (match cached with
       | Some p ->
         incr hits;
         p
       | None ->
         incr misses;
         let result =
           let nvars = Fact.Set.cardinal (Bform.vars phi) in
           match phi with
           | Bform.And parts when memo ->
             (match and_components parts with
              | [ _ ] | [] -> shannon phi nvars
              | comps ->
                (* independent join: sizes add, polynomials multiply *)
                List.fold_left
                  (fun acc (sub, _) -> Poly.Z.mul acc (count sub))
                  Poly.Z.one comps)
           | Bform.Or parts when memo ->
             (match or_components parts with
              | [ _ ] | [] -> shannon phi nvars
              | comps ->
                (* independent union: complements multiply,
                   P = (1+z)^n - Π ((1+z)^{nᵢ} - Pᵢ) *)
                let not_sat =
                  List.fold_left
                    (fun acc (sub, vs) ->
                       let n_i = Fact.Set.cardinal vs in
                       Poly.Z.mul acc (Poly.Z.sub (one_plus_z_pow n_i) (count sub)))
                    Poly.Z.one comps
                in
                Poly.Z.sub (one_plus_z_pow nvars) not_sat)
           | _ -> shannon phi nvars
         in
         if memo then Cache.replace cache phi result;
         result)
  and shannon phi nvars =
    match pick_variable phi with
    | None -> assert false (* non-constant formula has a variable *)
    | Some v ->
      let phi1 = Bform.condition v true phi in
      let phi0 = Bform.condition v false phi in
      let p1 = count phi1 in
      let p0 = count phi0 in
      let n1 = Fact.Set.cardinal (Bform.vars phi1) in
      let n0 = Fact.Set.cardinal (Bform.vars phi0) in
      Poly.Z.add
        (Poly.Z.shift 1 (pad nvars p1 n1))
        (pad nvars p0 n0)
  in
  let result = count phi0 in
  (result, { cache_hits = !hits; cache_misses = !misses })

let check_universe ~universe phi =
  let uset = Fact.Set.of_list universe in
  if not (Fact.Set.subset (Bform.vars phi) uset) then
    invalid_arg "Compile: formula mentions a fact outside the universe"

let size_polynomial_stats ~universe phi =
  check_universe ~universe phi;
  let core, stats = size_polynomial_core ~memo:true phi in
  let free = List.length universe - Fact.Set.cardinal (Bform.vars phi) in
  (Poly.Z.mul core (one_plus_z_pow free), stats)

let size_polynomial ~universe phi = fst (size_polynomial_stats ~universe phi)

let size_polynomial_naive ~universe phi =
  check_universe ~universe phi;
  let core, _ = size_polynomial_core ~memo:false phi in
  let free = List.length universe - Fact.Set.cardinal (Bform.vars phi) in
  Poly.Z.mul core (one_plus_z_pow free)

let count_models ~universe phi = Poly.Z.total (size_polynomial ~universe phi)

(* Weighted (probability) variant. *)
let probability_with ~memo ~prob phi0 =
  let cache : Rational.t Cache.t = Cache.create 256 in
  let rec go phi =
    match phi with
    | Bform.True -> Rational.one
    | Bform.False -> Rational.zero
    | _ ->
      (match (if memo then Cache.find_opt cache phi else None) with
       | Some p -> p
       | None ->
         let result =
           match phi with
           | Bform.And parts when memo ->
             (match and_components parts with
              | [ _ ] | [] -> shannon phi
              | comps ->
                List.fold_left
                  (fun acc (sub, _) -> Rational.mul acc (go sub))
                  Rational.one comps)
           | Bform.Or parts when memo ->
             (match or_components parts with
              | [ _ ] | [] -> shannon phi
              | comps ->
                (* independent union: Pr = 1 - Π (1 - Prᵢ) *)
                let not_sat =
                  List.fold_left
                    (fun acc (sub, _) ->
                       Rational.mul acc (Rational.sub Rational.one (go sub)))
                    Rational.one comps
                in
                Rational.sub Rational.one not_sat)
           | _ -> shannon phi
         in
         if memo then Cache.replace cache phi result;
         result)
  and shannon phi =
    match pick_variable phi with
    | None -> assert false
    | Some v ->
      let pv = prob v in
      let p1 = go (Bform.condition v true phi) in
      let p0 = go (Bform.condition v false phi) in
      Rational.add (Rational.mul pv p1)
        (Rational.mul (Rational.sub Rational.one pv) p0)
  in
  go phi0

let probability ~prob phi = probability_with ~memo:true ~prob phi
let probability_naive ~prob phi = probability_with ~memo:false ~prob phi
