type stats = { cache_hits : int; cache_misses : int }

module Cache = Hashtbl.Make (struct
    type t = Bform.t

    let equal = Bform.equal
    let hash = Bform.hash
  end)

(* A shareable, bounded memo cache.  Keys are the (hash-consed-by-lookup)
   conditioned sub-formulas themselves, hashed structurally; a cached
   polynomial counts over exactly [vars phi], so one cache is sound across
   any number of [size_polynomial_with] calls — in particular across the
   per-fact conditionings of a batched SVC run, where the sub-formula
   overlap is the whole speedup.  When the capacity is reached, further
   results are computed but not retained (counted as [drops]). *)
module Memo = struct
  type t = {
    cache : Poly.Z.t Cache.t;
    capacity : int;
    mutable hits : int;
    mutable misses : int;
    mutable drops : int;
    mutable poly_ops : int;
  }

  let create ?(capacity = max_int) () =
    if capacity < 0 then invalid_arg "Compile.Memo.create: negative capacity";
    { cache = Cache.create 256; capacity; hits = 0; misses = 0; drops = 0;
      poly_ops = 0 }

  (* Same entries and capacity, fresh counters.  The copy is a new
     Hashtbl, so it restores the single-owner invariant: warm-starting a
     per-domain cache from a shared read-only one is exactly a copy. *)
  let copy m =
    { cache = Cache.copy m.cache; capacity = m.capacity; hits = 0;
      misses = 0; drops = 0; poly_ops = 0 }

  let length m = Cache.length m.cache
  let capacity m = m.capacity
  let hits m = m.hits
  let misses m = m.misses
  let drops m = m.drops
  let poly_ops m = m.poly_ops

  let clear m =
    Cache.reset m.cache;
    m.hits <- 0;
    m.misses <- 0;
    m.drops <- 0;
    m.poly_ops <- 0
end

(* (1 + z)^k, memoized: padding recomputes the same small set of powers at
   every Shannon node, and a row of binomials is O(k) to build but O(k^2)
   via repeated [Bigint.binomial].  The table is domain-local (one per
   domain, via [Domain.DLS]) rather than global: counting runs inside the
   parallel engine's worker domains, and an unsynchronized shared Hashtbl
   would be a data race.  Memoization stays invisible either way — every
   table entry is the pure function of its key. *)
let one_plus_z_table : (int, Poly.Z.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let one_plus_z_pow k =
  let table = Domain.DLS.get one_plus_z_table in
  match Hashtbl.find_opt table k with
  | Some p -> p
  | None ->
    let p = Poly.Z.of_coeffs (Array.to_list (Bigint.binomial_row k)) in
    Hashtbl.add table k p;
    p

(* Split a list of juncts into variable-disjoint groups (the decomposition
   rule, applied to conjunctions directly and to disjunctions through
   complementation). *)
let components ~rebuild (parts : Bform.t list) : (Bform.t * Fact.Set.t) list =
  let tagged = List.map (fun p -> (p, Bform.vars p)) parts in
  (* Groups hold their members as a list of chunks so that merging k parts
     into one group stays linear in k, not quadratic. *)
  let rec merge groups = function
    | [] -> groups
    | (p, vs) :: rest ->
      let touching, apart =
        List.partition
          (fun (_, vs') -> not (Fact.Set.is_empty (Fact.Set.inter vs vs')))
          groups
      in
      let merged_chunks =
        [ p ] :: List.concat_map (fun (chunks, _) -> chunks) touching
      in
      let merged_vars =
        List.fold_left (fun acc (_, vs') -> Fact.Set.union acc vs') vs touching
      in
      merge ((merged_chunks, merged_vars) :: apart) rest
  in
  List.map
    (fun (chunks, vs) -> (rebuild (List.concat chunks), vs))
    (merge [] tagged)

let and_components = components ~rebuild:Bform.conj
let or_components = components ~rebuild:Bform.disj
let conjunct_components = and_components

(* Pick the most frequently occurring variable (fail-first branching). *)
let pick_variable phi =
  let counts : (Fact.t, int) Hashtbl.t = Hashtbl.create 16 in
  let rec scan = function
    | Bform.True | Bform.False -> ()
    | Bform.Fv f ->
      Hashtbl.replace counts f (1 + Option.value ~default:0 (Hashtbl.find_opt counts f))
    | Bform.And ps | Bform.Or ps -> List.iter scan ps
    | Bform.Not p -> scan p
  in
  scan phi;
  Hashtbl.fold
    (fun f c best ->
       match best with
       | Some (_, c') when c' >= c -> best
       | _ -> Some (f, c))
    counts None
  |> Option.map fst

(* Core counter over exactly vars(phi); callers pad with (1+z)^free.
   [memo = None] disables both caching and decomposition (the naive
   Shannon-only ablation); [memo = Some m] looks results up in — and
   charges instrumentation to — the given shared cache. *)
let size_polynomial_core ~memo phi0 =
  let op =
    match memo with
    | Some (m : Memo.t) -> fun p -> m.Memo.poly_ops <- m.Memo.poly_ops + 1; p
    | None -> fun p -> p
  in
  let pad target_vars poly sub_vars =
    (* poly counts over sub_vars; pad to count over target_vars minus the
       conditioned variable *)
    let missing = target_vars - 1 - sub_vars in
    if missing = 0 then poly else op (Poly.Z.mul poly (one_plus_z_pow missing))
  in
  let rec count phi =
    match phi with
    | Bform.True -> Poly.Z.one
    | Bform.False -> Poly.Z.zero
    | _ ->
      let cached =
        match memo with
        | Some m -> Cache.find_opt m.Memo.cache phi
        | None -> None
      in
      (match cached with
       | Some p ->
         (match memo with Some m -> m.Memo.hits <- m.Memo.hits + 1 | None -> ());
         p
       | None ->
         (match memo with Some m -> m.Memo.misses <- m.Memo.misses + 1 | None -> ());
         let result =
           let nvars = Fact.Set.cardinal (Bform.vars phi) in
           match phi with
           | Bform.And parts when memo <> None ->
             (match and_components parts with
              | [ _ ] | [] -> shannon phi nvars
              | comps ->
                (* independent join: sizes add, polynomials multiply *)
                List.fold_left
                  (fun acc (sub, _) -> op (Poly.Z.mul acc (count sub)))
                  Poly.Z.one comps)
           | Bform.Or parts when memo <> None ->
             (match or_components parts with
              | [ _ ] | [] -> shannon phi nvars
              | comps ->
                (* independent union: complements multiply,
                   P = (1+z)^n - Π ((1+z)^{nᵢ} - Pᵢ) *)
                let not_sat =
                  List.fold_left
                    (fun acc (sub, vs) ->
                       let n_i = Fact.Set.cardinal vs in
                       op (Poly.Z.mul acc (op (Poly.Z.sub (one_plus_z_pow n_i) (count sub)))))
                    Poly.Z.one comps
                in
                op (Poly.Z.sub (one_plus_z_pow nvars) not_sat))
           | _ -> shannon phi nvars
         in
         (match memo with
          | Some m ->
            if Cache.length m.Memo.cache < m.Memo.capacity then
              Cache.replace m.Memo.cache phi result
            else m.Memo.drops <- m.Memo.drops + 1
          | None -> ());
         result)
  and shannon phi nvars =
    match pick_variable phi with
    | None -> assert false (* non-constant formula has a variable *)
    | Some v ->
      let phi1 = Bform.condition v true phi in
      let phi0 = Bform.condition v false phi in
      let p1 = count phi1 in
      let p0 = count phi0 in
      let n1 = Fact.Set.cardinal (Bform.vars phi1) in
      let n0 = Fact.Set.cardinal (Bform.vars phi0) in
      op (Poly.Z.add
            (op (Poly.Z.shift 1 (pad nvars p1 n1)))
            (pad nvars p0 n0))
  in
  count phi0

let check_universe ~universe phi =
  let uset = Fact.Set.of_list universe in
  if not (Fact.Set.subset (Bform.vars phi) uset) then
    invalid_arg "Compile: formula mentions a fact outside the universe"

let size_polynomial_with ~memo ~universe phi =
  let vs = Bform.vars phi in
  if not (Fact.Set.subset vs (Fact.Set.of_list universe)) then
    invalid_arg "Compile: formula mentions a fact outside the universe";
  let core = size_polynomial_core ~memo:(Some memo) phi in
  let free = List.length universe - Fact.Set.cardinal vs in
  if free = 0 then core else Poly.Z.mul core (one_plus_z_pow free)

let size_polynomial_stats ~universe phi =
  let memo = Memo.create () in
  let p = size_polynomial_with ~memo ~universe phi in
  (p, { cache_hits = Memo.hits memo; cache_misses = Memo.misses memo })

let size_polynomial ~universe phi = fst (size_polynomial_stats ~universe phi)

let size_polynomial_naive ~universe phi =
  check_universe ~universe phi;
  let core = size_polynomial_core ~memo:None phi in
  let free = List.length universe - Fact.Set.cardinal (Bform.vars phi) in
  Poly.Z.mul core (one_plus_z_pow free)

let count_models ~universe phi = Poly.Z.total (size_polynomial ~universe phi)

(* Weighted (probability) variant. *)
let probability_with ~memo ~prob phi0 =
  let cache : Rational.t Cache.t = Cache.create 256 in
  let rec go phi =
    match phi with
    | Bform.True -> Rational.one
    | Bform.False -> Rational.zero
    | _ ->
      (match (if memo then Cache.find_opt cache phi else None) with
       | Some p -> p
       | None ->
         let result =
           match phi with
           | Bform.And parts when memo ->
             (match and_components parts with
              | [ _ ] | [] -> shannon phi
              | comps ->
                List.fold_left
                  (fun acc (sub, _) -> Rational.mul acc (go sub))
                  Rational.one comps)
           | Bform.Or parts when memo ->
             (match or_components parts with
              | [ _ ] | [] -> shannon phi
              | comps ->
                (* independent union: Pr = 1 - Π (1 - Prᵢ) *)
                let not_sat =
                  List.fold_left
                    (fun acc (sub, _) ->
                       Rational.mul acc (Rational.sub Rational.one (go sub)))
                    Rational.one comps
                in
                Rational.sub Rational.one not_sat)
           | _ -> shannon phi
         in
         if memo then Cache.replace cache phi result;
         result)
  and shannon phi =
    match pick_variable phi with
    | None -> assert false
    | Some v ->
      let pv = prob v in
      let p1 = go (Bform.condition v true phi) in
      let p0 = go (Bform.condition v false phi) in
      Rational.add (Rational.mul pv p1)
        (Rational.mul (Rational.sub Rational.one pv) p0)
  in
  go phi0

let probability ~prob phi = probability_with ~memo:true ~prob phi
let probability_naive ~prob phi = probability_with ~memo:false ~prob phi

let branch_variable = pick_variable
