(** Lifted (intensional) FGMC evaluation for safe UCQs.

    {!Safety} certifies queries as safe by lifted-inference rules; this
    module {e executes} those same rules on generating polynomials, making
    every [Safe] verdict constructive:

    - CQ rules: coring, independent join of vocabulary-disjoint
      variable-components, independent project on a separator variable,
      read-once single atoms (as in {!Safe_plan}, generalized beyond
      self-join-free queries to everything the rules reach);
    - UCQ rules: independent union of vocabulary-disjoint groups
      (complement product) and inclusion–exclusion over the conjunctions
      of disjuncts.

    Functions return [None] when the rules get stuck — by construction
    exactly when {!Safety} does not answer [Safe] (tested invariant). *)

val cq : Cq.t -> Database.t -> Poly.Z.t option
val ucq : Ucq.t -> Database.t -> Poly.Z.t option

val fgmc_polynomial : Ucq.t -> Database.t -> Poly.Z.t
(** @raise Invalid_argument when the rules get stuck (query not certified
    safe). *)
