let one_plus_z_pow k = Poly.Z.of_coeffs (List.init (k + 1) (fun i -> Bigint.binomial k i))

let complement ~n p = Poly.Z.sub (one_plus_z_pow n) p

(* Does [fact] match [atom] (same relation, constants agree, repeated
   variables consistent)? *)
let matches atom fact =
  Option.is_some (Homomorphism.find_valuation ~into:(Fact.Set.singleton fact) [ atom ])

let atom_of_rel atoms rel = List.find_opt (fun a -> Atom.rel a = rel) atoms

(* positions of variable [x] in [atom] *)
let var_positions x atom =
  let rec go i = function
    | [] -> []
    | Term.Var v :: rest when v = x -> i :: go (i + 1) rest
    | _ :: rest -> go (i + 1) rest
  in
  go 0 (Atom.args atom)

(* the value of fact [f] at the separator positions of its atom, if
   consistent *)
let separator_value x atoms f =
  match atom_of_rel atoms (Fact.rel f) with
  | None -> None
  | Some atom ->
    (match var_positions x atom with
     | [] -> None
     | positions ->
       let args = Array.of_list (Fact.args f) in
       let values = List.map (fun i -> args.(i)) positions in
       (match values with
        | v :: rest when List.for_all (( = ) v) rest -> Some v
        | _ -> None))

let substitute x c atoms =
  List.map (Atom.apply (Term.Smap.singleton x (Term.const c))) atoms

(* [go atoms endo exo] returns the size-generating polynomial over exactly
   the universe [endo]; [exo] facts are assumed present. *)
let rec go (atoms : Atom.t list) (endo : Fact.Set.t) (exo : Fact.Set.t) : Poly.Z.t =
  let n = Fact.Set.cardinal endo in
  (* split into variable-connected components; self-join-freeness makes
     their vocabularies disjoint, hence the join independent *)
  match Incidence.variable_components atoms with
  | [] -> one_plus_z_pow n (* no atoms: trivially satisfied *)
  | [ [ atom ] ] ->
    (* single atom: read-once disjunction of its matching facts *)
    let matching, free = Fact.Set.partition (matches atom) endo in
    let m = Fact.Set.cardinal matching and k = Fact.Set.cardinal free in
    if Fact.Set.exists (matches atom) exo then one_plus_z_pow n
    else
      Poly.Z.mul
        (Poly.Z.sub (one_plus_z_pow m) Poly.Z.one)
        (one_plus_z_pow k)
  | [ component ] ->
    (* one variable-connected component with several atoms: project on a
       separator variable *)
    let vars = Cq.vars (Cq.of_atoms component) in
    let separator =
      Term.Sset.filter
        (fun x -> List.for_all (fun a -> Term.Sset.mem x (Atom.vars a)) component)
        vars
    in
    (match Term.Sset.choose_opt separator with
     | None ->
       invalid_arg "Safe_plan: connected subquery without separator (not hierarchical)"
     | Some x ->
       (* partition facts by their x-value; inconsistent facts are free *)
       let bucket_of f = separator_value x component f in
       let values =
         List.sort_uniq compare
           (List.filter_map bucket_of
              (Fact.Set.elements endo @ Fact.Set.elements exo))
       in
       let free =
         Fact.Set.filter (fun f -> bucket_of f = None) endo
       in
       let total_bucketed = ref 0 in
       let complements =
         List.map
           (fun c ->
              let endo_c = Fact.Set.filter (fun f -> bucket_of f = Some c) endo in
              let exo_c = Fact.Set.filter (fun f -> bucket_of f = Some c) exo in
              let n_c = Fact.Set.cardinal endo_c in
              total_bucketed := !total_bucketed + n_c;
              complement ~n:n_c (go (substitute x c component) endo_c exo_c))
           values
       in
       let not_sat = List.fold_left Poly.Z.mul Poly.Z.one complements in
       let p_buckets = Poly.Z.sub (one_plus_z_pow !total_bucketed) not_sat in
       Poly.Z.mul p_buckets (one_plus_z_pow (Fact.Set.cardinal free)))
  | components ->
    (* independent join: vocabularies are disjoint (sjf), multiply *)
    let rels_of comp = Cq.rels (Cq.of_atoms comp) in
    let used = ref Fact.Set.empty in
    let product =
      List.fold_left
        (fun acc comp ->
           let rels = rels_of comp in
           let endo_c = Fact.Set.filter (fun f -> Term.Sset.mem (Fact.rel f) rels) endo in
           let exo_c = Fact.Set.filter (fun f -> Term.Sset.mem (Fact.rel f) rels) exo in
           used := Fact.Set.union !used endo_c;
           Poly.Z.mul acc (go comp endo_c exo_c))
        Poly.Z.one components
    in
    let free = n - Fact.Set.cardinal !used in
    Poly.Z.mul product (one_plus_z_pow free)

let supported q = Cq.is_self_join_free q && Cq.is_hierarchical q

let fgmc_polynomial q db =
  if not (Cq.is_self_join_free q) then
    invalid_arg "Safe_plan.fgmc_polynomial: query has self-joins";
  if not (Cq.is_hierarchical q) then
    invalid_arg "Safe_plan.fgmc_polynomial: query is not hierarchical";
  go (Cq.atoms q) (Database.endo db) (Database.exo db)
