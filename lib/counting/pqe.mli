(** Probabilistic query evaluation and its restrictions (Section 3.3).

    [PQE_q(D) = Pr(D ⊨ q)] for a tuple-independent probabilistic database.
    The restrictions fix the image of the probability assignment:
    [PQE(1/2)], [PQE(1/2; 1)], [SPQE] (a single probability [p]) and
    [SPPQE] (probabilities [{p, 1}]). *)

val pqe : Query.t -> Prob_db.t -> Rational.t
(** Lineage-based weighted model counting. *)

val pqe_brute : Query.t -> Prob_db.t -> Rational.t
(** Explicit enumeration of the possible worlds (ground truth). *)

val sppqe : Query.t -> Database.t -> Rational.t -> Rational.t
(** [sppqe q db p]: probability of [q] when every endogenous fact has
    probability [p] and every exogenous fact probability 1, computed from
    the FGMC generating polynomial via the identity of Claim A.2:
    [(1+z)^n · Pr = Σ_j z^j · FGMC_j] with [z = p/(1-p)].
    @raise Invalid_argument if [p ∉ (0, 1]]. *)

val spqe : Query.t -> Database.t -> Rational.t -> Rational.t
(** As {!sppqe} on a purely endogenous database.
    @raise Invalid_argument if the database has exogenous facts. *)

val sppqe_of_polynomial : Poly.Z.t -> n:int -> Rational.t -> Rational.t
(** The Claim A.2 evaluation itself: from the FGMC polynomial of a database
    with [n] endogenous facts to the SPPQE probability at [p]. *)

val pqe_half_one : Query.t -> Database.t -> Rational.t
(** [PQE(1/2; 1)]: every endogenous fact has probability 1/2, every
    exogenous fact probability 1.  Satisfies [Pr = GMC / 2^n] — the
    equivalence of the "probabilistic evaluation" and "model counting"
    boxes of Figure 1a. *)

val pqe_half : Query.t -> Database.t -> Rational.t
(** [PQE(1/2)]: the purely endogenous restriction, [Pr = MC / 2^n].
    @raise Invalid_argument if the database has exogenous facts. *)
