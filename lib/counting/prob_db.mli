(** Tuple-independent probabilistic databases (Section 3.3).

    A pair [(S, π)] with [π : S → (0, 1]]; the associated partitioned
    database puts the probability-1 facts in [Dₓ] and the rest in [Dₙ]. *)

type t

val make : (Fact.t * Rational.t) list -> t
(** @raise Invalid_argument if a probability is outside (0, 1] or a fact is
    repeated. *)

val uniform : Database.t -> Rational.t -> t
(** Endogenous facts get the given probability, exogenous facts get 1.
    @raise Invalid_argument if the probability is outside (0, 1]. *)

val facts : t -> Fact.Set.t
val prob : t -> Fact.t -> Rational.t
(** @raise Not_found on facts absent from the database. *)

val to_database : t -> Database.t
(** The associated partitioned database. *)

val image : t -> Rational.t list
(** The distinct probability values in use, sorted. *)

val is_spqe_instance : t -> bool
(** [Im π = {p}] for a single [p] (the SPQE restriction). *)

val is_sppqe_instance : t -> bool
(** [Im π ⊆ {p, 1}] for a single [p] (the SPPQE restriction). *)

val is_half_instance : t -> bool
(** [Im π = {1/2}] (the PQE(1/2) restriction). *)

val is_half_one_instance : t -> bool
(** [Im π ⊆ {1/2, 1}] (the PQE(1/2; 1) restriction). *)

val pp : Format.formatter -> t -> unit
