let pqe q pdb =
  let db = Prob_db.to_database pdb in
  let phi = Lineage.lineage q db in
  Compile.probability ~prob:(Prob_db.prob pdb) phi

let pqe_brute q pdb =
  let db = Prob_db.to_database pdb in
  let exo = Database.exo db in
  Database.fold_endo_subsets
    (fun s acc ->
       let world_prob =
         Fact.Set.fold
           (fun f acc ->
              let p = Prob_db.prob pdb f in
              Rational.mul acc
                (if Fact.Set.mem f s then p else Rational.sub Rational.one p))
           (Database.endo db) Rational.one
       in
       if Query.eval q (Fact.Set.union s exo) then Rational.add acc world_prob else acc)
    db Rational.zero

let sppqe_of_polynomial poly ~n p =
  if Rational.sign p <= 0 || Rational.compare p Rational.one > 0 then
    invalid_arg "Pqe.sppqe: probability must lie in (0, 1]";
  if Rational.equal p Rational.one then
    (* every endogenous fact certain: q holds iff the full database does,
       i.e. iff FGMC_n ≠ 0 *)
    (if Bigint.is_zero (Poly.Z.coeff poly n) then Rational.zero else Rational.one)
  else begin
    let z = Rational.div p (Rational.sub Rational.one p) in
    let numer = Poly.Z.eval_rational poly z in
    let denom = Rational.pow (Rational.add Rational.one z) n in
    Rational.div numer denom
  end

let sppqe q db p =
  let poly = Model_counting.fgmc_polynomial q db in
  sppqe_of_polynomial poly ~n:(Database.size_endo db) p

let spqe q db p =
  if not (Fact.Set.is_empty (Database.exo db)) then
    invalid_arg "Pqe.spqe: database has exogenous facts (use sppqe)";
  sppqe q db p

let pqe_half_one q db = sppqe q db Rational.half

let pqe_half q db =
  if not (Fact.Set.is_empty (Database.exo db)) then
    invalid_arg "Pqe.pqe_half: database has exogenous facts (use pqe_half_one)";
  pqe_half_one q db
