type t = Rational.t Fact.Map.t

let check_prob p =
  if Rational.sign p <= 0 || Rational.compare p Rational.one > 0 then
    invalid_arg "Prob_db: probabilities must lie in (0, 1]"

let make assoc =
  List.fold_left
    (fun acc (f, p) ->
       check_prob p;
       if Fact.Map.mem f acc then invalid_arg "Prob_db.make: repeated fact";
       Fact.Map.add f p acc)
    Fact.Map.empty assoc

let uniform db p =
  check_prob p;
  let with_endo =
    Fact.Set.fold (fun f acc -> Fact.Map.add f p acc) (Database.endo db) Fact.Map.empty
  in
  Fact.Set.fold (fun f acc -> Fact.Map.add f Rational.one acc) (Database.exo db) with_endo

let facts t = Fact.Map.fold (fun f _ acc -> Fact.Set.add f acc) t Fact.Set.empty
let prob t f = Fact.Map.find f t

let to_database t =
  let endo, exo =
    Fact.Map.fold
      (fun f p (endo, exo) ->
         if Rational.equal p Rational.one then (endo, Fact.Set.add f exo)
         else (Fact.Set.add f endo, exo))
      t
      (Fact.Set.empty, Fact.Set.empty)
  in
  Database.of_sets ~endo ~exo

let image t =
  let probs = Fact.Map.fold (fun _ p acc -> p :: acc) t [] in
  List.sort_uniq Rational.compare probs

let proper_image t = List.filter (fun p -> not (Rational.equal p Rational.one)) (image t)

let is_spqe_instance t = List.length (image t) <= 1
let is_sppqe_instance t = List.length (proper_image t) <= 1
let is_half_instance t = image t = [ Rational.half ]

let is_half_one_instance t =
  List.for_all
    (fun p -> Rational.equal p Rational.half || Rational.equal p Rational.one)
    (image t)

let pp fmt t =
  Format.fprintf fmt "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ",@ ")
       (fun f (fact, p) -> Format.fprintf f "%a:%a" Fact.pp fact Rational.pp p))
    (Fact.Map.bindings t)
