(** Lifted (intensional) FGMC evaluation for hierarchical self-join-free
    CQs — the tractable side of the dichotomies, with a polynomial-time
    guarantee.

    The generic engine ({!Model_counting.fgmc_polynomial}) compiles the
    lineage by Shannon expansion; on safe queries its heuristics usually
    find the tractable structure, but nothing guarantees it.  This module
    evaluates hierarchical sjf-CQs by a {e safe plan} over size-generating
    polynomials, mirroring the lifted-inference rules used for PQE:

    - {e independent join}: variable-disjoint subqueries (disjoint
      vocabulary, since the query is self-join-free) multiply their
      polynomials;
    - {e independent project}: a separator variable [x] (occurring in every
      atom) partitions the facts by their [x]-value; the disjunction over
      values is independent, so complement polynomials multiply:
      [P̄ = Π_c P̄_c] (padding each factor to its local universe);
    - {e single atom}: the matching endogenous facts form a read-once
      disjunction, [P = (1+z)^m - 1] (or [(1+z)^m] if an exogenous fact
      matches).

    Every step is linear-size arithmetic on polynomials, so the whole
    evaluation is polynomial in the database — matching the FP side of
    Proposition 3.1 / Corollary 4.2. *)

val fgmc_polynomial : Cq.t -> Database.t -> Poly.Z.t
(** @raise Invalid_argument if the query is not a hierarchical
    self-join-free CQ. *)

val supported : Cq.t -> bool
(** Whether the query is in the fragment this evaluator covers. *)
