(** The model counting problems of Section 3.2.

    For a Boolean query [q] and partitioned database [D = (Dₙ, Dₓ)]:

    - [GMC_q(D)]     = #{S ⊆ Dₙ | S ⊎ Dₓ ⊨ q};
    - [FGMC_q(D, n)] = #{S ⊆ Dₙ | |S| = n, S ⊎ Dₓ ⊨ q};
    - [MC] / [FMC]   = the same with [Dₓ = ∅].

    The full vector [(FGMC_q(D, j))_j] is the size-generating polynomial of
    the query's lineage, which the lineage-based implementations compute in
    one pass. *)

val fgmc_polynomial : Query.t -> Database.t -> Poly.Z.t
(** Coefficient [j] is [FGMC_q(D, j)]; lineage-based. *)

val fgmc_polynomial_stats : Query.t -> Database.t -> Poly.Z.t * Compile.stats
(** As {!fgmc_polynomial}, also reporting the compilation's memo-cache
    counters. *)

val fgmc : Query.t -> Database.t -> int -> Bigint.t
val gmc : Query.t -> Database.t -> Bigint.t

val fmc_polynomial : Query.t -> Database.t -> Poly.Z.t
(** @raise Invalid_argument if the database has exogenous facts. *)

val fmc : Query.t -> Database.t -> int -> Bigint.t
(** @raise Invalid_argument if the database has exogenous facts. *)

val mc : Query.t -> Database.t -> Bigint.t
(** @raise Invalid_argument if the database has exogenous facts. *)

(** {1 Brute force}

    Independent implementations by explicit enumeration of the [2^|Dₙ|]
    subsets — the ground truth the test suite validates everything
    against. *)

val fgmc_polynomial_brute : Query.t -> Database.t -> Poly.Z.t
val fgmc_brute : Query.t -> Database.t -> int -> Bigint.t
val gmc_brute : Query.t -> Database.t -> Bigint.t
