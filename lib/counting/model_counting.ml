let fgmc_polynomial_stats q db =
  let phi = Lineage.lineage q db in
  Compile.size_polynomial_stats ~universe:(Database.endo_list db) phi

let fgmc_polynomial q db = fst (fgmc_polynomial_stats q db)

let fgmc q db n = Poly.Z.coeff (fgmc_polynomial q db) n
let gmc q db = Poly.Z.total (fgmc_polynomial q db)

let require_purely_endogenous name db =
  if not (Fact.Set.is_empty (Database.exo db)) then
    invalid_arg (name ^ ": database has exogenous facts (use the generalized variant)")

let fmc_polynomial q db =
  require_purely_endogenous "Model_counting.fmc" db;
  fgmc_polynomial q db

let fmc q db n =
  require_purely_endogenous "Model_counting.fmc" db;
  fgmc q db n

let mc q db =
  require_purely_endogenous "Model_counting.mc" db;
  gmc q db

let fgmc_polynomial_brute q db =
  let exo = Database.exo db in
  Database.fold_endo_subsets
    (fun s acc ->
       if Query.eval q (Fact.Set.union s exo) then
         Poly.Z.add acc (Poly.Z.monomial Bigint.one (Fact.Set.cardinal s))
       else acc)
    db Poly.Z.zero

let fgmc_brute q db n = Poly.Z.coeff (fgmc_polynomial_brute q db) n
let gmc_brute q db = Poly.Z.total (fgmc_polynomial_brute q db)
