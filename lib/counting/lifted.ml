let one_plus_z_pow k = Poly.Z.of_coeffs (List.init (k + 1) (fun i -> Bigint.binomial k i))

let complement ~n p = Poly.Z.sub (one_plus_z_pow n) p

let ( let* ) = Option.bind

let matches atom fact =
  Option.is_some (Homomorphism.find_valuation ~into:(Fact.Set.singleton fact) [ atom ])

let separator_of atoms =
  let cq = Cq.of_atoms atoms in
  Term.Sset.choose_opt
    (Term.Sset.filter
       (fun x -> List.for_all (fun a -> Term.Sset.mem x (Atom.vars a)) atoms)
       (Cq.vars cq))

(* the value(s) a fact gives to variable [x] through [its] atom occurrences;
   with self-joins a fact may match several atoms, so collect all candidate
   values (a fact goes to every bucket it could serve) — but for soundness
   of the independence argument we require a UNIQUE value, else give up. *)
let separator_value x atoms f =
  let values =
    List.concat_map
      (fun atom ->
         if Atom.rel atom <> Fact.rel f || Atom.arity atom <> Fact.arity f then []
         else begin
           let args = Array.of_list (Fact.args f) in
           let positions =
             List.filteri (fun _ _ -> true) (Atom.args atom)
             |> List.mapi (fun i t -> (i, t))
             |> List.filter_map (fun (i, t) ->
                 if Term.equal t (Term.var x) then Some i else None)
           in
           match positions with
           | [] -> []
           | ps ->
             let vs = List.map (fun i -> args.(i)) ps in
             (match vs with
              | v :: rest when List.for_all (( = ) v) rest -> [ v ]
              | _ -> [])
         end)
      atoms
  in
  match List.sort_uniq compare values with
  | [ v ] -> Some (Some v)  (* unique bucket *)
  | [] -> Some None         (* participates in no atom: free *)
  | _ -> None                (* ambiguous: give up *)

let rec cq_poly (atoms : Atom.t list) (endo : Fact.Set.t) (exo : Fact.Set.t) :
  Poly.Z.t option =
  let atoms = Cq.atoms (Cq.core (Cq.of_atoms atoms)) in
  let n = Fact.Set.cardinal endo in
  match Incidence.variable_components atoms with
  | [] -> Some (one_plus_z_pow n)
  | [ [ atom ] ] ->
    let matching, free = Fact.Set.partition (matches atom) endo in
    let m = Fact.Set.cardinal matching and k = Fact.Set.cardinal free in
    if Fact.Set.exists (matches atom) exo then Some (one_plus_z_pow n)
    else
      Some
        (Poly.Z.mul (Poly.Z.sub (one_plus_z_pow m) Poly.Z.one) (one_plus_z_pow k))
  | [ component ] ->
    (* independent project on a separator *)
    let* x = separator_of component in
    let bucket f = separator_value x component f in
    (* every fact must have an unambiguous bucket *)
    let buckets_ok =
      Fact.Set.for_all (fun f -> bucket f <> None) endo
      && Fact.Set.for_all (fun f -> bucket f <> None) exo
    in
    if not buckets_ok then None
    else begin
      let values =
        List.sort_uniq compare
          (List.filter_map
             (fun f -> Option.join (bucket f))
             (Fact.Set.elements endo @ Fact.Set.elements exo))
      in
      let free = Fact.Set.filter (fun f -> bucket f = Some None) endo in
      let substitute c =
        List.map (Atom.apply (Term.Smap.singleton x (Term.const c))) component
      in
      let total_bucketed = ref 0 in
      let rec build acc = function
        | [] -> Some acc
        | c :: rest ->
          let endo_c = Fact.Set.filter (fun f -> bucket f = Some (Some c)) endo in
          let exo_c = Fact.Set.filter (fun f -> bucket f = Some (Some c)) exo in
          let n_c = Fact.Set.cardinal endo_c in
          total_bucketed := !total_bucketed + n_c;
          let* p_c = cq_poly (substitute c) endo_c exo_c in
          build (Poly.Z.mul acc (complement ~n:n_c p_c)) rest
      in
      let* not_sat = build Poly.Z.one values in
      let p_buckets = Poly.Z.sub (one_plus_z_pow !total_bucketed) not_sat in
      Some (Poly.Z.mul p_buckets (one_plus_z_pow (Fact.Set.cardinal free)))
    end
  | components ->
    (* independent join: requires pairwise vocabulary-disjoint components *)
    let vocabs = List.map (fun c -> Cq.rels (Cq.of_atoms c)) components in
    let rec pairwise_disjoint = function
      | [] -> true
      | v :: rest ->
        List.for_all (fun v' -> Term.Sset.is_empty (Term.Sset.inter v v')) rest
        && pairwise_disjoint rest
    in
    if not (pairwise_disjoint vocabs) then None
    else begin
      let used = ref Fact.Set.empty in
      let rec build acc = function
        | [] -> Some acc
        | comp :: rest ->
          let rels = Cq.rels (Cq.of_atoms comp) in
          let endo_c = Fact.Set.filter (fun f -> Term.Sset.mem (Fact.rel f) rels) endo in
          let exo_c = Fact.Set.filter (fun f -> Term.Sset.mem (Fact.rel f) rels) exo in
          used := Fact.Set.union !used endo_c;
          let* p = cq_poly comp endo_c exo_c in
          build (Poly.Z.mul acc p) rest
      in
      let* product = build Poly.Z.one components in
      Some (Poly.Z.mul product (one_plus_z_pow (n - Fact.Set.cardinal !used)))
    end

let conjoin_cqs (cqs : Cq.t list) : Cq.t =
  let _, atoms =
    List.fold_left
      (fun (avoid, acc) c ->
         let c' = Cq.rename_apart ~avoid c in
         (Term.Sset.union avoid (Cq.vars c'), acc @ Cq.atoms c'))
      (Term.Sset.empty, []) cqs
  in
  Cq.of_atoms atoms

let rec ucq_poly (disjuncts : Cq.t list) (endo : Fact.Set.t) (exo : Fact.Set.t) :
  Poly.Z.t option =
  let disjuncts = Ucq.disjuncts (Ucq.reduce (Ucq.of_cqs disjuncts)) in
  let n = Fact.Set.cardinal endo in
  match disjuncts with
  | [ c ] -> cq_poly (Cq.atoms c) endo exo
  | _ ->
    (* independent union: group disjuncts by shared relations, fixpoint *)
    let tagged = List.map (fun c -> (c, Cq.rels c)) disjuncts in
    let rec group groups = function
      | [] -> groups
      | (c, vs) :: rest ->
        let touching, apart =
          List.partition
            (fun (_, vs') -> not (Term.Sset.is_empty (Term.Sset.inter vs vs')))
            groups
        in
        let cs = c :: List.concat_map fst touching in
        let vars = List.fold_left (fun a (_, v) -> Term.Sset.union a v) vs touching in
        group ((cs, vars) :: apart) rest
    in
    let rec fix gs =
      let flat = List.concat_map (fun (cs, _) -> List.map (fun c -> (c, Cq.rels c)) cs) gs in
      let gs' = group [] flat in
      if List.length gs' = List.length gs then gs else fix gs'
    in
    let groups = fix (group [] tagged) in
    if List.length groups > 1 then begin
      let used = ref Fact.Set.empty in
      let total_grouped = ref 0 in
      let rec build acc = function
        | [] -> Some acc
        | (cs, rels) :: rest ->
          let endo_g = Fact.Set.filter (fun f -> Term.Sset.mem (Fact.rel f) rels) endo in
          let exo_g = Fact.Set.filter (fun f -> Term.Sset.mem (Fact.rel f) rels) exo in
          used := Fact.Set.union !used endo_g;
          let n_g = Fact.Set.cardinal endo_g in
          total_grouped := !total_grouped + n_g;
          let* p_g = ucq_poly cs endo_g exo_g in
          build (Poly.Z.mul acc (complement ~n:n_g p_g)) rest
      in
      let* not_sat = build Poly.Z.one groups in
      let free = n - Fact.Set.cardinal !used in
      let p_groups = Poly.Z.sub (one_plus_z_pow !total_grouped) not_sat in
      Some (Poly.Z.mul p_groups (one_plus_z_pow free))
    end
    else begin
      (* inclusion–exclusion over all non-empty subsets of disjuncts *)
      let arr = Array.of_list disjuncts in
      let k = Array.length arr in
      if k > 6 then None
      else begin
        let rec build acc mask =
          if mask = 1 lsl k then Some acc
          else begin
            let chosen = ref [] in
            for i = 0 to k - 1 do
              if mask land (1 lsl i) <> 0 then chosen := arr.(i) :: !chosen
            done;
            let* p = cq_poly (Cq.atoms (conjoin_cqs !chosen)) endo exo in
            let popcount =
              let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
              go mask 0
            in
            let signed = if popcount mod 2 = 1 then p else Poly.Z.neg p in
            build (Poly.Z.add acc signed) (mask + 1)
          end
        in
        build Poly.Z.zero 1
      end
    end

let cq q db = cq_poly (Cq.atoms q) (Database.endo db) (Database.exo db)
let ucq q db = ucq_poly (Ucq.disjuncts q) (Database.endo db) (Database.exo db)

let fgmc_polynomial q db =
  match ucq q db with
  | Some p -> p
  | None -> invalid_arg "Lifted.fgmc_polynomial: lifted rules stuck (query not certified safe)"
