type decomposition = {
  q1 : Query.t;
  q2 : Query.t;
  rule : string;
}

let has_outside_support q =
  match Query.fresh_support q with
  | None -> false
  | Some s -> not (Term.Sset.subset (Fact.Set.consts s) (Query.consts q))

let of_and (q : Query.t) =
  match q with
  | Query.And (q1, q2) ->
    let r1 = Query.rels q1 and r2 = Query.rels q2 in
    if
      Term.Sset.is_empty (Term.Sset.inter r1 r2)
      && has_outside_support q1 && has_outside_support q2
    then Some { q1; q2; rule = "Lemma 4.5 (disjoint-vocabulary conjunction)" }
    else None
  | _ -> None

let of_crpq (crpq : Crpq.t) =
  if not (Crpq.is_cc_disjoint crpq) then None
  else
    match Crpq.components crpq with
    | [] | [ _ ] -> None
    | first :: rest ->
      let q1 = Query.Crpq (Crpq.of_path_atoms (Crpq.path_atoms first)) in
      let q2 =
        Query.Crpq (Crpq.of_path_atoms (List.concat_map Crpq.path_atoms rest))
      in
      if has_outside_support q1 && has_outside_support q2 then
        Some { q1; q2; rule = "Corollary 4.6 (cc-disjoint CRPQ)" }
      else None

let witness (q : Query.t) =
  match q with
  | Query.And _ -> of_and q
  | Query.Crpq crpq -> of_crpq crpq
  | _ -> None
