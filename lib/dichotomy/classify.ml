type verdict =
  | FP
  | SharpP_hard
  | Unknown

type judgement = {
  verdict : verdict;
  rule : string;
}

let verdict_to_string = function
  | FP -> "FP"
  | SharpP_hard -> "#P-hard"
  | Unknown -> "unknown"

let pp_judgement fmt j =
  Format.fprintf fmt "%s (%s)" (verdict_to_string j.verdict) j.rule

(* ------------------------------------------------------------------ *)
(* UCQ conversion                                                      *)
(* ------------------------------------------------------------------ *)

let crpq_bound (crpq : Crpq.t) : int option =
  List.fold_left
    (fun acc (a : Crpq.path_atom) ->
       match (acc, Words.length_profile a.lang) with
       | None, _ | _, Words.Unbounded -> None
       | Some m, Words.Bounded m' -> Some (max m m')
       | Some m, Words.Empty_language -> Some m)
    (Some 0) (Crpq.path_atoms crpq)

let rec to_ucq_opt (q : Query.t) : Ucq.t option =
  match q with
  | Query.True -> None
  | Query.Cq c -> Some (Ucq.of_cq c)
  | Query.Ucq u -> Some u
  | Query.Rpq r ->
    let crpq =
      Crpq.of_path_atoms
        [ { Crpq.lang = Rpq.lang r; psrc = Term.const (Rpq.src r); pdst = Term.const (Rpq.dst r) } ]
    in
    to_ucq_opt (Query.Crpq crpq)
  | Query.Crpq crpq ->
    (match crpq_bound crpq with
     | None -> None
     | Some m -> Crpq.to_ucq ~max_len:m crpq)
  | Query.Ucrpq ucrpq ->
    let parts = List.map (fun c -> to_ucq_opt (Query.Crpq c)) (Ucrpq.disjuncts ucrpq) in
    if List.exists Option.is_none parts then None
    else
      Some
        (Ucq.of_cqs
           (List.concat_map (fun u -> Ucq.disjuncts (Option.get u)) parts))
  | Query.Cqneg _ | Query.Gcq _ -> None
  | Query.And (a, b) ->
    (match (to_ucq_opt a, to_ucq_opt b) with
     | Some ua, Some ub ->
       (* distribute: conjunction of unions, variables renamed apart *)
       let cqs =
         List.concat_map
           (fun ca ->
              List.map
                (fun cb ->
                   let cb' = Cq.rename_apart ~avoid:(Cq.vars ca) cb in
                   Cq.of_atoms (Cq.atoms ca @ Cq.atoms cb'))
                (Ucq.disjuncts ub))
           (Ucq.disjuncts ua)
       in
       Some (Ucq.of_cqs cqs)
     | _ -> None)
  | Query.Or (a, b) ->
    (match (to_ucq_opt a, to_ucq_opt b) with
     | Some ua, Some ub -> Some (Ucq.of_cqs (Ucq.disjuncts ua @ Ucq.disjuncts ub))
     | _ -> None)

(* ------------------------------------------------------------------ *)
(* Class-specific classifiers                                          *)
(* ------------------------------------------------------------------ *)

let classify_rpq r =
  if Rpq.dichotomy_hard r then
    { verdict = SharpP_hard; rule = "Corollary 4.3: word of length ≥ 3" }
  else { verdict = FP; rule = "Corollary 4.3: all words of length ≤ 2" }

let classify_sjf_cq c =
  if not (Cq.is_self_join_free c) then
    invalid_arg "Classify.classify_sjf_cq: query has self-joins";
  if Hierarchical.cq c then
    { verdict = FP; rule = "hierarchical sjf-CQ is safe ([11]; Prop. 3.3 + [5])" }
  else
    { verdict = SharpP_hard; rule = "non-hierarchical sjf-CQ (Corollary 4.5 + [9])" }

let classify_cqneg c =
  if Cqneg.is_self_join_free c then begin
    if Hierarchical.cqneg c then
      { verdict = FP; rule = "hierarchical sjf-CQ¬ ([12, Thm 3.1])" }
    else if Cqneg.has_component_guarded_negation c then
      { verdict = SharpP_hard;
        rule = "non-hierarchical sjf-CQ¬, component-guarded (Prop. 6.1 + [7])" }
    else
      { verdict = SharpP_hard; rule = "non-hierarchical sjf-CQ¬ ([12, Thm 3.1])" }
  end
  else { verdict = Unknown; rule = "CQ¬ with self-joins: outside known dichotomies" }

(* A hardness route exists when the query is pseudo-connected or
   decomposable (the paper's reductions apply). *)
let has_reduction_route q =
  match Pseudo_connected.witness q with
  | Some w -> Some w.Pseudo_connected.rule
  | None ->
    (match Decomposable.witness q with
     | Some d -> Some d.Decomposable.rule
     | None -> None)

(* Corollary 4.5 hardness applies independently of the safety analysis:
   non-hierarchical sjf-CQs and non-hierarchical constant-free CQs. *)
let cor45_hardness (u : Ucq.t) : judgement option =
  match Ucq.disjuncts (Ucq.reduce u) with
  | [ c ] when Cq.is_self_join_free c && not (Cq.is_hierarchical c) ->
    Some
      { verdict = SharpP_hard; rule = "non-hierarchical sjf-CQ (Corollary 4.5 + [9])" }
  | [ c ] when Cq.is_constant_free c && not (Cq.is_hierarchical c) ->
    Some
      { verdict = SharpP_hard;
        rule = "non-hierarchical constant-free CQ (Corollary 4.5 + [9])" }
  | _ -> None

let classify_via_ucq (q : Query.t) (u : Ucq.t) : judgement =
  match Safety.ucq u with
  | Safety.Safe ->
    { verdict = FP; rule = "safe UCQ: SVC ≤ FGMC ≤ PQE ∈ FP (Prop. 3.3 + [5])" }
  | Safety.Unsafe ->
    (match has_reduction_route q with
     | Some rule ->
       { verdict = SharpP_hard;
         rule = Printf.sprintf "unsafe UCQ + FGMC ≤ SVC via %s (+ [9])" rule }
     | None ->
       (match cor45_hardness u with
        | Some j -> j
        | None ->
          { verdict = Unknown; rule = "unsafe UCQ without a known FGMC ≤ SVC route" }))
  | Safety.Unknown ->
    (match cor45_hardness u with
     | Some j -> j
     | None ->
       { verdict = Unknown;
         rule = "safety test inconclusive (beyond lifted-inference rules)" })

let rec classify (q : Query.t) : judgement =
  match q with
  | Query.True -> { verdict = FP; rule = "trivial query" }
  | Query.Rpq r -> classify_rpq r
  | Query.Cqneg c -> classify_cqneg c
  | Query.Gcq _ ->
    { verdict = Unknown;
      rule = "generalized CQ beyond sjf-CQ¬: only the Lemma D.2 hard route is known" }
  | Query.Cq c when Cq.is_self_join_free c -> classify_sjf_cq c
  | Query.Crpq crpq when crpq_bound crpq = None ->
    (* unbounded graph query *)
    if Crpq.is_constant_free crpq && Crpq.is_connected crpq then
      { verdict = SharpP_hard;
        rule = "unbounded connected hom-closed graph query (Cor. 4.2(2) + [1])" }
    else if Crpq.is_constant_free crpq && Crpq.is_cc_disjoint crpq then
      { verdict = SharpP_hard;
        rule = "unbounded cc-disjoint CRPQ (Cor. 4.6 + [1])" }
    else { verdict = Unknown; rule = "unbounded CRPQ outside Cor. 4.2/4.6" }
  | Query.Ucrpq ucrpq
    when List.exists (fun c -> crpq_bound c = None) (Ucrpq.disjuncts ucrpq) ->
    if
      Ucrpq.is_constant_free ucrpq
      && List.for_all
        (fun c -> Crpq.is_connected c)
        (Ucrpq.disjuncts ucrpq)
    then
      { verdict = SharpP_hard;
        rule = "unbounded connected hom-closed graph query (Cor. 4.2(2) + [1])" }
    else { verdict = Unknown; rule = "unbounded UCRPQ outside Cor. 4.2" }
  | _ ->
    (match to_ucq_opt q with
     | Some u -> classify_via_ucq q u
     | None ->
       (match q with
        | Query.And (a, b) ->
          (* decomposable conjunction: hard if either side is hard *)
          (match Decomposable.witness q with
           | Some d ->
             let ja = classify d.Decomposable.q1 and jb = classify d.Decomposable.q2 in
             (match (ja.verdict, jb.verdict) with
              | SharpP_hard, _ ->
                { verdict = SharpP_hard;
                  rule = Printf.sprintf "%s; hard conjunct: %s" d.Decomposable.rule ja.rule }
              | _, SharpP_hard ->
                { verdict = SharpP_hard;
                  rule = Printf.sprintf "%s; hard conjunct: %s" d.Decomposable.rule jb.rule }
              | FP, FP ->
                { verdict = FP; rule = "both conjuncts in FP over disjoint vocabularies" }
              | _ -> { verdict = Unknown; rule = "conjunct classification inconclusive" })
           | None -> ignore (a, b); { verdict = Unknown; rule = "non-decomposable conjunction" })
        | _ -> { verdict = Unknown; rule = "query class not covered" }))
