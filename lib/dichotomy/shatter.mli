(** Query shattering (Section 7 / Example E.1, after [5, §2.5]).

    Shattering eliminates constants from a CQ by case-splitting each
    variable on whether it equals a query constant: each disjunct fixes
    some variables to constants of [C] and specializes every atom to a new
    relation name recording which positions are pinned.  The result is a
    constant-free union equivalent to the original query over shattered
    databases.

    The paper's point (Example E.1) is that shattering interacts badly with
    the connectivity hypotheses of its reductions: a variable-connected
    query can shatter into disconnected disjuncts.  This module implements
    enough of the transformation to exhibit that phenomenon and to let the
    test suite verify semantic equivalence on concrete databases. *)

type satom = {
  base : string;          (** original relation name *)
  pattern : string option list;
      (** one entry per original position: [Some c] if pinned to constant
          [c], [None] if still carrying a term *)
  args : Term.t list;     (** the terms of the un-pinned positions *)
}

type disjunct = {
  assignment : string Term.Smap.t;  (** variables fixed to constants of C *)
  atoms : satom list;
}

val shatter : Cq.t -> c:Term.Sset.t -> disjunct list
(** All shattering disjuncts of the query w.r.t. the constant set [C]
    (which must contain the query's constants).
    @raise Invalid_argument otherwise. *)

val satom_rel : satom -> string
(** The specialized relation name, e.g. ["R@a,*"] for [R] with first
    position pinned to [a]. *)

val disjunct_vars : disjunct -> Term.Sset.t

val is_variable_connected : disjunct -> bool
(** Connectivity of the disjunct's atoms through shared variables —
    Example E.1's disjunct [R_{a,*}(y) ∧ S_{a,a}() ∧ T_{a,*}(z)] is
    disconnected. *)

val shatter_database : Fact.Set.t -> c:Term.Sset.t -> Fact.Set.t
(** Rewrite the facts over the shattered schema: each fact is re-tagged by
    the pattern of its [C]-constants; nullary shattered facts are
    represented with the reserved argument ["$unit"]. *)

val eval_disjunct : disjunct -> Fact.Set.t -> bool
(** Evaluate a disjunct over a shattered database. *)

val eval : disjunct list -> Fact.Set.t -> bool
(** Evaluation of the whole shattered union over a shattered database;
    equivalent to evaluating the original query over the original database
    (tested property). *)

val pp_disjunct : Format.formatter -> disjunct -> unit
