let cq = Cq.is_hierarchical
let cqneg = Cqneg.is_hierarchical

let witness_violation q =
  let arr = Array.of_list (Cq.atoms q) in
  let n = Array.length arr in
  let found = ref None in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for k = 0 to n - 1 do
        if !found = None then begin
          let v1 = Atom.vars arr.(i)
          and v2 = Atom.vars arr.(j)
          and v3 = Atom.vars arr.(k) in
          if
            (not (Term.Sset.subset (Term.Sset.inter v1 v2) v3))
            && not (Term.Sset.subset (Term.Sset.inter v3 v2) v1)
          then found := Some (arr.(i), arr.(j), arr.(k))
        end
      done
    done
  done;
  !found
