let cq = Cq.is_hierarchical
let cqneg = Cqneg.is_hierarchical

(* ------------------------------------------------------------------ *)
(* Checkable certificates of non-hierarchicalness                      *)
(* ------------------------------------------------------------------ *)

type violation = {
  var1 : string;
  var2 : string;
  atom_only1 : Atom.t;  (* contains var1 but not var2 *)
  atom_both : Atom.t;   (* contains both variables *)
  atom_only2 : Atom.t;  (* contains var2 but not var1 *)
}

let certificate_atoms (atoms : Atom.t list) : violation option =
  (* q is non-hierarchical iff two variables x, y have properly
     overlapping atom covers: some atom contains both, some contains x
     only, some contains y only.  (Equivalent to the footnote-5 triple
     condition used by {!Cq.is_hierarchical}.) *)
  let vars =
    Term.Sset.elements
      (List.fold_left
         (fun acc a -> Term.Sset.union acc (Atom.vars a))
         Term.Sset.empty atoms)
  in
  let find p = List.find_opt p atoms in
  let pair_witness x y =
    let has v a = Term.Sset.mem v (Atom.vars a) in
    match
      ( find (fun a -> has x a && not (has y a)),
        find (fun a -> has x a && has y a),
        find (fun a -> has y a && not (has x a)) )
    with
    | Some ax, Some axy, Some ay ->
      Some { var1 = x; var2 = y; atom_only1 = ax; atom_both = axy; atom_only2 = ay }
    | _ -> None
  in
  let rec over_pairs = function
    | [] -> None
    | x :: rest ->
      let rec inner = function
        | [] -> over_pairs rest
        | y :: more ->
          (match pair_witness x y with
           | Some v -> Some v
           | None -> inner more)
      in
      inner rest
  in
  over_pairs vars

let certificate (q : Cq.t) : violation option = certificate_atoms (Cq.atoms q)

let certificate_cqneg (q : Cqneg.t) : violation option =
  certificate_atoms (Cqneg.pos q @ Cqneg.neg q)

let check_violation (atoms : Atom.t list) (v : violation) : bool =
  (* Independent re-verification: memberships only, no search. *)
  let mem a = List.exists (Atom.equal a) atoms in
  let has var a = Term.Sset.mem var (Atom.vars a) in
  v.var1 <> v.var2
  && mem v.atom_only1 && mem v.atom_both && mem v.atom_only2
  && has v.var1 v.atom_only1 && not (has v.var2 v.atom_only1)
  && has v.var1 v.atom_both && has v.var2 v.atom_both
  && has v.var2 v.atom_only2 && not (has v.var1 v.atom_only2)

let violation_to_string v =
  Printf.sprintf
    "variables ?%s/?%s: %s covers both, %s only ?%s, %s only ?%s"
    v.var1 v.var2 (Atom.to_string v.atom_both) (Atom.to_string v.atom_only1)
    v.var1 (Atom.to_string v.atom_only2) v.var2

(* Footnote-5 triple view of the same witness: (α₁, α₂, α₃) with
   vars α₁ ∩ vars α₂ ⊄ vars α₃ and vars α₃ ∩ vars α₂ ⊄ vars α₁. *)
let witness_violation q =
  match certificate q with
  | None -> None
  | Some v -> Some (v.atom_only1, v.atom_both, v.atom_only2)
