(** Pseudo-connectedness witnesses (Section 4.1).

    A C-hom-closed query is pseudo-connected when it has an island minimal
    support with a constant outside [C]; Lemma 4.1 then gives
    [FGMC ≤ poly SVC].  Deciding pseudo-connectedness in general is hard;
    this module implements the sufficient criteria proved in the paper:

    - Lemma 4.2: connected hom-closed queries;
    - Lemma B.1: RPQs whose language has a word of length ≥ 2;
    - Corollary 4.4: queries with a duplicable singleton support. *)

type witness = {
  island : Fact.Set.t;    (** an island minimal support over fresh constants *)
  pivot : string;         (** a constant of the support outside C *)
  rule : string;          (** which criterion applied *)
}

val connected_hom_closed : Query.t -> witness option
(** Lemma 4.2 applied to connected constant-free (U)CQ / (U)CRPQ queries:
    checks constant-freeness and connectivity of the minimal supports, then
    returns a fresh support.  [None] when the criterion does not apply. *)

val rpq : Rpq.t -> witness option
(** Lemma B.1: a fresh simple path for a word of length ≥ 2. *)

val duplicable_singleton : Query.t -> witness option
(** Corollary 4.4: a minimal support of size 1 containing a constant
    outside [C]. *)

val witness : Query.t -> witness option
(** Try the criteria in order. *)
