type witness = {
  island : Fact.Set.t;
  pivot : string;
  rule : string;
}

let pick_pivot ~c support =
  Term.Sset.min_elt_opt (Term.Sset.diff (Fact.Set.consts support) c)

(* Connectivity of the query in the sense of Section 2: every minimal
   support is connected.  We check syntactic sufficient conditions per
   language. *)
let rec is_connected_constant_free (q : Query.t) : bool =
  match q with
  | Query.True -> false
  | Query.Cq cq -> Cq.is_constant_free cq && Cq.is_connected (Cq.core cq)
  | Query.Ucq ucq ->
    Ucq.is_constant_free ucq
    && List.for_all Cq.is_connected (Ucq.disjuncts (Ucq.reduce ucq))
  | Query.Crpq crpq ->
    Crpq.is_constant_free crpq
    && Crpq.is_connected crpq
    && List.for_all
      (fun (a : Crpq.path_atom) -> not (Regex.nullable a.lang))
      (Crpq.path_atoms crpq)
  | Query.Ucrpq ucrpq ->
    List.for_all (fun c -> is_connected_constant_free (Query.Crpq c)) (Ucrpq.disjuncts ucrpq)
  | Query.Rpq _ -> false (* RPQs carry constants; use the Lemma B.1 witness *)
  | Query.Cqneg _ | Query.Gcq _ -> false (* not hom-closed *)
  | Query.And _ -> false (* conjunction splits supports; use Lemma 4.4 *)
  | Query.Or (a, b) -> is_connected_constant_free a && is_connected_constant_free b

let connected_hom_closed q =
  if not (is_connected_constant_free q) then None
  else
    match Query.fresh_support q with
    | None -> None
    | Some island ->
      (match pick_pivot ~c:(Query.consts q) island with
       | Some pivot -> Some { island; pivot; rule = "Lemma 4.2 (connected hom-closed)" }
       | None -> None)

let rpq r =
  match Rpq.fresh_path_support ~min_len:2 r with
  | None -> None
  | Some (island, _) ->
    (match pick_pivot ~c:(Rpq.consts r) island with
     | Some pivot -> Some { island; pivot; rule = "Lemma B.1 (RPQ, word of length ≥ 2)" }
     | None -> None)

(* candidate size-1 supports, per language *)
let rec candidate_singletons (q : Query.t) : Fact.Set.t list =
  match q with
  | Query.True | Query.Cqneg _ | Query.Gcq _ | Query.And _ -> []
  | Query.Cq cq ->
    let s, _ = Cq.canonical_support (Cq.core cq) in
    if Fact.Set.cardinal s = 1 then [ s ] else []
  | Query.Ucq ucq ->
    List.concat_map
      (fun d -> candidate_singletons (Query.Cq d))
      (Ucq.disjuncts (Ucq.reduce ucq))
  | Query.Rpq r ->
    (match Rpq.fresh_path_support ~min_len:1 r with
     | Some (s, _) when Fact.Set.cardinal s = 1 -> [ s ]
     | _ -> [])
  | Query.Crpq crpq ->
    (match Crpq.path_atoms crpq with
     | [ a ] ->
       (match Words.some_word_of_length_geq a.lang 1 with
        | Some [ r ] ->
          let valuation = Hashtbl.create 2 in
          let resolve t =
            match (t : Term.t) with
            | Term.Const c -> c
            | Term.Var v ->
              (match Hashtbl.find_opt valuation v with
               | Some c -> c
               | None ->
                 let c = Term.fresh_const ~prefix:("n" ^ v) () in
                 Hashtbl.add valuation v c;
                 c)
          in
          [ Fact.Set.singleton (Fact.make r [ resolve a.psrc; resolve a.pdst ]) ]
        | _ -> [])
     | _ -> [])
  | Query.Ucrpq ucrpq ->
    List.concat_map (fun c -> candidate_singletons (Query.Crpq c)) (Ucrpq.disjuncts ucrpq)
  | Query.Or (a, b) -> candidate_singletons a @ candidate_singletons b

let duplicable_singleton q =
  let c = Query.consts q in
  let ok s =
    (not (Term.Sset.subset (Fact.Set.consts s) c)) && Query.is_minimal_support q s
  in
  match List.find_opt ok (candidate_singletons q) with
  | None -> None
  | Some island ->
    (match pick_pivot ~c island with
     | Some pivot ->
       Some { island; pivot; rule = "Corollary 4.4 (duplicable singleton support)" }
     | None -> None)

let witness q =
  match connected_hom_closed q with
  | Some w -> Some w
  | None ->
    (match q with
     | Query.Rpq r ->
       (match rpq r with Some w -> Some w | None -> duplicable_singleton q)
     | _ -> duplicable_singleton q)
