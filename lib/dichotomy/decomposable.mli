(** Decomposable queries (Section 4.2).

    A C-hom-closed query is decomposable into [q₁ ∧ q₂] when the conjuncts
    have minimal supports with constants outside [C] and all their minimal
    supports are disjoint; Lemma 4.4 then applies.  Lemma 4.5: for
    constant-free hom-closed queries, decomposability is exactly a
    disjoint-vocabulary conjunction. *)

type decomposition = {
  q1 : Query.t;
  q2 : Query.t;
  rule : string;
}

val of_and : Query.t -> decomposition option
(** [And (q1, q2)] with disjoint vocabularies and supports with constants
    outside C on both sides (Lemma 4.5 shape). *)

val of_crpq : Crpq.t -> decomposition option
(** A disconnected cc-disjoint CRPQ split into two vocabulary-disjoint
    halves (Corollary 4.6). *)

val witness : Query.t -> decomposition option
