(** FP / #P-hard classification of [SVC_q] (Figure 1b).

    Each verdict carries the rule that justifies it — a corollary of the
    paper or a cited prior result.  {!Unknown} means the query falls
    outside the classes this paper (and our conservative safety test)
    decides; it is never a wrong answer. *)

type verdict =
  | FP
  | SharpP_hard
  | Unknown

type judgement = {
  verdict : verdict;
  rule : string;
}

val classify : Query.t -> judgement

val verdict_to_string : verdict -> string
val pp_judgement : Format.formatter -> judgement -> unit

(** {1 Class-specific entry points} *)

val classify_rpq : Rpq.t -> judgement
(** Corollary 4.3: #P-hard iff the language contains a word of length ≥ 3. *)

val classify_sjf_cq : Cq.t -> judgement
(** The dichotomy of [11], recovered via Corollary 4.5: FP iff
    hierarchical.  @raise Invalid_argument if the query has self-joins. *)

val classify_cqneg : Cqneg.t -> judgement
(** The dichotomy of [12] for sjf-CQ¬ (FP iff hierarchical); our
    Proposition 6.1 re-derives the hard side for component-guarded
    negation. *)

val to_ucq_opt : Query.t -> Ucq.t option
(** Best-effort conversion to an equivalent UCQ (CQ/UCQ combinations and
    bounded (U)CRPQs); used to funnel classes into the UCQ dichotomy. *)
