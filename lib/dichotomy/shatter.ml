type satom = {
  base : string;
  pattern : string option list;
  args : Term.t list;
}

type disjunct = {
  assignment : string Term.Smap.t;
  atoms : satom list;
}

let satom_rel a =
  a.base ^ "@"
  ^ String.concat ","
      (List.map (function Some c -> c | None -> "*") a.pattern)

let specialize ~c (atom : Atom.t) : satom =
  let pattern, rev_args =
    List.fold_left
      (fun (pattern, args) t ->
         match t with
         | Term.Const k when Term.Sset.mem k c -> (Some k :: pattern, args)
         | t -> (None :: pattern, t :: args))
      ([], []) (Atom.args atom)
  in
  { base = Atom.rel atom; pattern = List.rev pattern; args = List.rev rev_args }

let shatter q ~c =
  if not (Term.Sset.subset (Cq.consts q) c) then
    invalid_arg "Shatter.shatter: C must contain the query constants";
  let vars = Term.Sset.elements (Cq.vars q) in
  let options = None :: List.map (fun k -> Some k) (Term.Sset.elements c) in
  (* all partial assignments vars → C *)
  let rec assignments = function
    | [] -> [ Term.Smap.empty ]
    | v :: rest ->
      let tails = assignments rest in
      List.concat_map
        (fun choice ->
           match choice with
           | None -> tails
           | Some k -> List.map (Term.Smap.add v k) tails)
        options
  in
  List.map
    (fun assignment ->
       let subst = Term.Smap.map Term.const assignment in
       let atoms =
         List.map (fun a -> specialize ~c (Atom.apply subst a)) (Cq.atoms q)
       in
       { assignment; atoms })
    (assignments vars)

let satom_vars a =
  List.fold_left
    (fun acc t -> match t with Term.Var v -> Term.Sset.add v acc | Term.Const _ -> acc)
    Term.Sset.empty a.args

let disjunct_vars d =
  List.fold_left (fun acc a -> Term.Sset.union acc (satom_vars a)) Term.Sset.empty d.atoms

let is_variable_connected d =
  match d.atoms with
  | [] | [ _ ] -> true
  | atoms ->
    (* union-find over atoms, connected through shared variables *)
    let arr = Array.of_list atoms in
    let n = Array.length arr in
    let parent = Array.init n (fun i -> i) in
    let rec find i = if parent.(i) = i then i else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end in
    let union i j =
      let ri = find i and rj = find j in
      if ri <> rj then parent.(ri) <- rj
    in
    let owner : (string, int) Hashtbl.t = Hashtbl.create 8 in
    Array.iteri
      (fun i a ->
         Term.Sset.iter
           (fun v ->
              match Hashtbl.find_opt owner v with
              | None -> Hashtbl.add owner v i
              | Some j -> union i j)
           (satom_vars a))
      arr;
    let roots = Array.to_list (Array.init n find) in
    List.length (List.sort_uniq compare roots) <= 1

let unit_arg = "$unit"

let to_atom (a : satom) : Atom.t =
  let args = if a.args = [] then [ Term.const unit_arg ] else a.args in
  Atom.make (satom_rel a) args

let shatter_fact ~c (f : Fact.t) : Fact.t =
  let pattern, rev_args =
    List.fold_left
      (fun (pattern, args) k ->
         if Term.Sset.mem k c then (Some k :: pattern, args)
         else (None :: pattern, k :: args))
      ([], []) (Fact.args f)
  in
  let sa = { base = Fact.rel f; pattern = List.rev pattern; args = [] } in
  let args = match List.rev rev_args with [] -> [ unit_arg ] | l -> l in
  Fact.make (satom_rel sa) args

let shatter_database facts ~c = Fact.Set.map (shatter_fact ~c) facts

let eval_disjunct d facts =
  Homomorphism.exists_valuation ~into:facts (List.map to_atom d.atoms)

let eval disjuncts facts = List.exists (fun d -> eval_disjunct d facts) disjuncts

let pp_disjunct fmt d =
  let bindings =
    Term.Smap.bindings d.assignment
    |> List.map (fun (v, k) -> Printf.sprintf "%s↦%s" v k)
  in
  Format.fprintf fmt "[%s] %s"
    (String.concat "," bindings)
    (String.concat " ∧ "
       (List.map
          (fun a ->
             Printf.sprintf "%s(%s)" (satom_rel a)
               (String.concat "," (List.map Term.to_string a.args)))
          d.atoms))
