(** Hierarchical queries.

    A CQ is hierarchical iff no triple of atoms violates the condition of
    footnote 5; for self-join-free CQs, hierarchical ⇔ safe ⇔ SVC in FP
    (the dichotomy of [11] recovered in Corollary 4.5).  For sjf-CQ¬, the
    same condition over positive and negative atoms characterizes the
    tractable queries ([12]). *)

val cq : Cq.t -> bool
val cqneg : Cqneg.t -> bool

(** {1 Checkable certificates}

    A query is {e non}-hierarchical iff two variables have properly
    overlapping atom covers.  The witness carries the variable pair and
    the three atoms that prove the overlap; {!check_violation} re-verifies
    a witness by membership tests alone, independently of the search that
    produced it. *)

type violation = {
  var1 : string;
  var2 : string;
  atom_only1 : Atom.t;  (** contains [var1] but not [var2] *)
  atom_both : Atom.t;   (** contains both variables *)
  atom_only2 : Atom.t;  (** contains [var2] but not [var1] *)
}

val certificate : Cq.t -> violation option
(** [Some v] iff the CQ is not hierarchical ([certificate q = None] ⇔
    {!cq}[ q]). *)

val certificate_cqneg : Cqneg.t -> violation option
(** Same, over positive {e and} negative atoms (the [12] condition). *)

val certificate_atoms : Atom.t list -> violation option
(** The underlying search over a raw atom list. *)

val check_violation : Atom.t list -> violation -> bool
(** Independent checker: the three atoms belong to the list and the two
    variables split their covers as claimed. *)

val violation_to_string : violation -> string

val witness_violation : Cq.t -> (Atom.t * Atom.t * Atom.t) option
(** A triple [(α₁, α₂, α₃)] with [vars α₁ ∩ vars α₂ ⊄ vars α₃] and
    [vars α₃ ∩ vars α₂ ⊄ vars α₁], if any — the footnote-5 view of
    {!certificate}. *)
