(** Hierarchical queries.

    A CQ is hierarchical iff no triple of atoms violates the condition of
    footnote 5; for self-join-free CQs, hierarchical ⇔ safe ⇔ SVC in FP
    (the dichotomy of [11] recovered in Corollary 4.5).  For sjf-CQ¬, the
    same condition over positive and negative atoms characterizes the
    tractable queries ([12]). *)

val cq : Cq.t -> bool
val cqneg : Cqneg.t -> bool

val witness_violation : Cq.t -> (Atom.t * Atom.t * Atom.t) option
(** A triple [(α₁, α₂, α₃)] with [vars α₁ ∩ vars α₂ ⊄ vars α₃] and
    [vars α₃ ∩ vars α₂ ⊄ vars α₁], if any. *)
