(** Safety of UCQs for probabilistic query evaluation (lifted inference).

    "Safe" queries are those whose PQE (equivalently GMC, Proposition 3.1)
    is in FP; the Dalvi–Suciu dichotomy says all others are #P-hard.  This
    module implements the standard lifted-inference rules:

    - {e independent union}: disjuncts over disjoint relation vocabularies;
    - {e inclusion–exclusion} over the conjunctions of disjuncts;
    - {e independent join}: variable-connected components over disjoint
      vocabularies;
    - {e independent project}: a separator variable occurring in every atom
      is grounded to a fresh constant.

    The procedure is sound in both directions on self-join-free CQs (where
    it coincides with the hierarchical criterion) and on unions built from
    them by the rules above.  It does NOT implement the full Dalvi–Suciu
    algorithm with cancellations, so it answers {!Unknown} on queries whose
    (un)safety hinges on cancellation phenomena — the conservative answer
    is never wrong, merely incomplete.  This is the documented substitution
    of DESIGN.md §4. *)

type verdict =
  | Safe
  | Unsafe
  | Unknown

val cq : Cq.t -> verdict
val ucq : Ucq.t -> verdict

val verdict_to_string : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit
