type verdict =
  | Safe
  | Unsafe
  | Unknown

let verdict_to_string = function
  | Safe -> "safe"
  | Unsafe -> "unsafe"
  | Unknown -> "unknown"

let pp_verdict fmt v = Format.pp_print_string fmt (verdict_to_string v)

let meet_all combine verdicts =
  List.fold_left combine Safe verdicts

(* verdict combinators for independent composition: all Safe → Safe, any
   Unsafe → Unsafe (hardness restricts to the offending part), else
   Unknown *)
let independent a b =
  match (a, b) with
  | Unsafe, _ | _, Unsafe -> Unsafe
  | Safe, Safe -> Safe
  | _ -> Unknown

(* for inclusion–exclusion, unsafety of a term does not transfer
   (cancellation may remove it) *)
let ie_combine a b =
  match (a, b) with
  | Safe, Safe -> Safe
  | _ -> Unknown

let rec cq_verdict (q : Cq.t) : verdict =
  let q = Cq.core q in
  let atoms = Cq.atoms q in
  match atoms with
  | [ _ ] -> Safe
  | _ ->
    let comps = Cq.variable_components q in
    if List.length comps > 1 then begin
      (* independent join requires pairwise-disjoint vocabularies *)
      let vocabs = List.map Cq.rels comps in
      let rec pairwise_disjoint = function
        | [] -> true
        | v :: rest ->
          List.for_all (fun v' -> Term.Sset.is_empty (Term.Sset.inter v v')) rest
          && pairwise_disjoint rest
      in
      if pairwise_disjoint vocabs then
        meet_all independent (List.map cq_verdict comps)
      else Unknown
    end
    else begin
      (* single variable-connected component: look for a separator *)
      let vars = Cq.vars q in
      let separators =
        Term.Sset.filter
          (fun x ->
             List.for_all (fun a -> Term.Sset.mem x (Atom.vars a)) atoms)
          vars
      in
      match Term.Sset.choose_opt separators with
      | Some x ->
        let grounded =
          Cq.of_atoms
            (List.map
               (Atom.apply (Term.Smap.singleton x (Term.const (Term.fresh_const ~prefix:"sep" ()))))
               atoms)
        in
        let sub = cq_verdict grounded in
        (match sub with
         | Safe -> Safe
         | Unsafe -> if Cq.is_self_join_free q then Unsafe else Unknown
         | Unknown -> Unknown)
      | None ->
        (* connected, several atoms, no separator: non-hierarchical core;
           for self-join-free queries this is exactly the unsafe case *)
        if Cq.is_self_join_free q then Unsafe else Unknown
    end

let cq q = cq_verdict q

let conjoin_cqs (cqs : Cq.t list) : Cq.t =
  (* conjunction with variables renamed apart *)
  let _, atoms =
    List.fold_left
      (fun (avoid, acc) c ->
         let c' = Cq.rename_apart ~avoid c in
         (Term.Sset.union avoid (Cq.vars c'), acc @ Cq.atoms c'))
      (Term.Sset.empty, []) cqs
  in
  Cq.of_atoms atoms

let rec ucq_verdict (q : Ucq.t) : verdict =
  let disjuncts = Ucq.disjuncts (Ucq.reduce q) in
  match disjuncts with
  | [ c ] -> cq_verdict c
  | _ ->
    (* try independent union: group disjuncts by shared relation names *)
    let tagged = List.map (fun c -> (c, Cq.rels c)) disjuncts in
    let rec group groups = function
      | [] -> groups
      | (c, vs) :: rest ->
        let touching, apart =
          List.partition
            (fun (_, vs') -> not (Term.Sset.is_empty (Term.Sset.inter vs vs')))
            groups
        in
        let cs = c :: List.concat_map fst touching in
        let vars = List.fold_left (fun a (_, v) -> Term.Sset.union a v) vs touching in
        group ((cs, vars) :: apart) rest
    in
    (* iterate grouping to a fixpoint *)
    let rec fix gs =
      let flat = List.concat_map (fun (cs, _) -> List.map (fun c -> (c, Cq.rels c)) cs) gs in
      let gs' = group [] flat in
      if List.length gs' = List.length gs then gs else fix gs'
    in
    let groups = fix (group [] tagged) in
    if List.length groups > 1 then
      meet_all independent
        (List.map (fun (cs, _) -> ucq_verdict (Ucq.of_cqs cs)) groups)
    else begin
      (* inclusion–exclusion over all non-empty subsets of disjuncts *)
      let arr = Array.of_list disjuncts in
      let n = Array.length arr in
      if n > 6 then Unknown
      else begin
        let verdicts = ref [] in
        for mask = 1 to (1 lsl n) - 1 do
          let chosen = ref [] in
          for i = 0 to n - 1 do
            if mask land (1 lsl i) <> 0 then chosen := arr.(i) :: !chosen
          done;
          verdicts := cq_verdict (conjoin_cqs !chosen) :: !verdicts
        done;
        meet_all ie_combine !verdicts
      end
    end

let ucq q = ucq_verdict q
