type t = { n : int; wealth : int -> Rational.t }

let make ~n ~wealth =
  if n < 0 || n > 62 then invalid_arg "Game.make: player count out of range";
  { n; wealth }

let n g = g.n
let wealth g = g.wealth

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

(* Equation 2: Sh(p) = Σ_{B ⊆ P\{p}} |B|!(n-|B|-1)!/n! (v(B∪{p}) - v(B)).
   Enumerate the subsets of P\{p} by iterating the sub-masks of its mask. *)
let shapley g p =
  if p < 0 || p >= g.n then invalid_arg "Game.shapley: no such player";
  let full = (1 lsl g.n) - 1 in
  let others = full land lnot (1 lsl p) in
  let n_fact = Bigint.factorial g.n in
  (* weights by |B| *)
  let weights =
    Array.init g.n (fun b ->
        Rational.make
          (Bigint.mul (Bigint.factorial b) (Bigint.factorial (g.n - b - 1)))
          n_fact)
  in
  (* iterate sub-masks of [others], including 0 *)
  let acc = ref Rational.zero in
  let sub = ref others in
  let continue = ref true in
  while !continue do
    let b = !sub in
    let delta = Rational.sub (g.wealth (b lor (1 lsl p))) (g.wealth b) in
    if not (Rational.is_zero delta) then
      acc := Rational.add !acc (Rational.mul weights.(popcount b) delta);
    if b = 0 then continue := false else sub := (b - 1) land others
  done;
  !acc

let shapley_all g = Array.init g.n (shapley g)

let shapley_permutations g p =
  if g.n > 9 then invalid_arg "Game.shapley_permutations: too many players";
  let total = ref Rational.zero in
  let count = ref 0 in
  (* enumerate permutations of 0..n-1 *)
  let arr = Array.init g.n (fun i -> i) in
  let swap i j =
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  in
  let contribution () =
    (* B = players before p in arr *)
    let mask = ref 0 in
    (try
       Array.iter
         (fun x ->
            if x = p then raise Exit;
            mask := !mask lor (1 lsl x))
         arr
     with Exit -> ());
    Rational.sub (g.wealth (!mask lor (1 lsl p))) (g.wealth !mask)
  in
  let rec permute k =
    if k = g.n then begin
      total := Rational.add !total (contribution ());
      incr count
    end
    else
      for i = k to g.n - 1 do
        swap k i;
        permute (k + 1);
        swap k i
      done
  in
  permute 0;
  Rational.div !total (Rational.of_bigint (Bigint.factorial g.n))

let shapley_sampled g p ~seed ~samples =
  if p < 0 || p >= g.n then invalid_arg "Game.shapley_sampled: no such player";
  if samples <= 0 then invalid_arg "Game.shapley_sampled: need a positive sample count";
  (* local xorshift so the library stays dependency-free and deterministic *)
  let state = ref (Int64.of_int (if seed = 0 then 0x2545F491 else seed)) in
  let next_int bound =
    let open Int64 in
    let x = !state in
    let x = logxor x (shift_left x 13) in
    let x = logxor x (shift_right_logical x 7) in
    let x = logxor x (shift_left x 17) in
    state := x;
    Int64.to_int (rem (logand x max_int) (of_int bound))
  in
  let arr = Array.init g.n (fun i -> i) in
  let total = ref Rational.zero in
  for _ = 1 to samples do
    (* Fisher–Yates shuffle *)
    for i = g.n - 1 downto 1 do
      let j = next_int (i + 1) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    let mask = ref 0 in
    (try
       Array.iter
         (fun x ->
            if x = p then raise Exit;
            mask := !mask lor (1 lsl x))
         arr
     with Exit -> ());
    total :=
      Rational.add !total
        (Rational.sub (g.wealth (!mask lor (1 lsl p))) (g.wealth !mask))
  done;
  Rational.div !total (Rational.of_int samples)

let banzhaf g p =
  if p < 0 || p >= g.n then invalid_arg "Game.banzhaf: no such player";
  let full = (1 lsl g.n) - 1 in
  let others = full land lnot (1 lsl p) in
  let acc = ref Rational.zero in
  let sub = ref others in
  let continue = ref true in
  while !continue do
    let b = !sub in
    acc := Rational.add !acc (Rational.sub (g.wealth (b lor (1 lsl p))) (g.wealth b));
    if b = 0 then continue := false else sub := (b - 1) land others
  done;
  Rational.div !acc (Rational.of_bigint (Bigint.pow Bigint.two (g.n - 1)))

let is_monotone g =
  let full = (1 lsl g.n) - 1 in
  let ok = ref true in
  for mask = 0 to full do
    if !ok then
      for p = 0 to g.n - 1 do
        if mask land (1 lsl p) = 0 then begin
          let v = g.wealth mask and v' = g.wealth (mask lor (1 lsl p)) in
          if Rational.compare v v' > 0 then ok := false
        end
      done
  done;
  !ok

let is_binary g =
  let full = (1 lsl g.n) - 1 in
  let ok = ref true in
  for mask = 0 to full do
    let v = g.wealth mask in
    if not (Rational.is_zero v || Rational.equal v Rational.one) then ok := false
  done;
  !ok

let efficiency_defect g =
  let full = (1 lsl g.n) - 1 in
  let sum = Array.fold_left Rational.add Rational.zero (shapley_all g) in
  Rational.sub (Rational.sub (g.wealth full) (g.wealth 0)) sum

let of_query q db =
  let players = Array.of_list (Database.endo_list db) in
  let exo = Database.exo db in
  let v_x = if Query.eval q exo then Rational.one else Rational.zero in
  let coalition mask =
    let s = ref exo in
    Array.iteri (fun i f -> if mask land (1 lsl i) <> 0 then s := Fact.Set.add f !s) players;
    !s
  in
  (* memoize wealth: SVC brute force evaluates each coalition many times *)
  let cache : (int, Rational.t) Hashtbl.t = Hashtbl.create 1024 in
  let wealth mask =
    match Hashtbl.find_opt cache mask with
    | Some v -> v
    | None ->
      let v_s = if Query.eval q (coalition mask) then Rational.one else Rational.zero in
      let v = Rational.sub v_s v_x in
      Hashtbl.replace cache mask v;
      v
  in
  (make ~n:(Array.length players) ~wealth, players)
