(** Maximum Shapley value (Section 6.3).

    [max-SVC_q] outputs some endogenous fact of maximal Shapley value
    together with that value.  Lemma 6.3: in a monotone binary game, a
    player that is a generalized support on its own attains the maximum. *)

val max_svc : Query.t -> Database.t -> (Fact.t * Rational.t) option
(** [None] on a database without endogenous facts. *)

val max_svc_brute : Query.t -> Database.t -> (Fact.t * Rational.t) option

val top_contributors : Query.t -> Database.t -> (Fact.t * Rational.t) list
(** All endogenous facts attaining the maximal Shapley value. *)

val singleton_support_is_max : Query.t -> Database.t -> bool
(** Empirical check of Lemma 6.3 on a concrete instance: every endogenous
    fact [s] with [{s} ∪ Dₓ ⊨ q] (when [Dₓ ⊭ q]) has maximal Shapley
    value.  Vacuously true when no such fact exists. *)
