(** Shapley value of database constants (Section 6.4).

    Players are {e endogenous constants}: for a partition
    [const(D) = Cₙ ⊎ Cₓ], the wealth of [C ⊆ Cₙ] is 1 iff the induced
    database [D|_{C ∪ Cₓ}] satisfies [q] while [D|_{Cₓ}] does not.
    [FGMC^const] counts the size-[k] subsets [C ⊆ Cₙ] with
    [D|_{C∪Cₓ} ⊨ q]. *)

type instance

val make_instance : facts:Fact.Set.t -> endo_consts:Term.Sset.t -> instance
(** Remaining constants of the facts are exogenous.  Endogenous constants
    absent from every fact are allowed and behave as null players. *)

val facts : instance -> Fact.Set.t
val endo_consts : instance -> Term.Sset.t
val exo_consts : instance -> Term.Sset.t

val induced : instance -> Term.Sset.t -> Fact.Set.t
(** [induced inst c] is [D|_{c ∪ Cₓ}]. *)

val svc_const : Query.t -> instance -> string -> Rational.t
(** Shapley value of an endogenous constant (brute force over coalitions).
    @raise Invalid_argument if the constant is not endogenous. *)

val svc_const_all : Query.t -> instance -> (string * Rational.t) list

val const_lineage : Query.t -> instance -> Bform.t
(** Boolean function over {e constant} variables (encoded as unary facts
    ["$const"(c)]): true on [C ⊆ Cₙ] iff [D|_{C∪Cₓ} ⊨ q].  Only sound for
    monotone (hom-closed) queries. *)

val fgmc_const_polynomial : Query.t -> instance -> Poly.Z.t
(** Coefficient [k] is [FGMC^const_q(D, k)]; lineage-based. *)

val fgmc_const : Query.t -> instance -> int -> Bigint.t

val fgmc_const_polynomial_brute : Query.t -> instance -> Poly.Z.t
(** Subset enumeration over [2^|Cₙ|] coalitions (ground truth). *)

val fmc_const_polynomial : Query.t -> instance -> Poly.Z.t
(** @raise Invalid_argument if the instance has exogenous constants. *)
