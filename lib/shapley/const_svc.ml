type instance = {
  facts : Fact.Set.t;
  endo_consts : Term.Sset.t;
  exo_consts : Term.Sset.t;
}

let make_instance ~facts ~endo_consts =
  (* Endogenous constants absent from every fact are allowed: they are null
     players (the reductions of Prop. 6.3 produce them when peeling a
     constant off the instance). *)
  let all = Fact.Set.consts facts in
  { facts; endo_consts; exo_consts = Term.Sset.diff all endo_consts }

let facts inst = inst.facts
let endo_consts inst = inst.endo_consts
let exo_consts inst = inst.exo_consts

let induced inst c =
  let allowed = Term.Sset.union c inst.exo_consts in
  Fact.Set.filter (fun f -> Term.Sset.subset (Fact.consts f) allowed) inst.facts

let game_of q inst =
  let players = Array.of_list (Term.Sset.elements inst.endo_consts) in
  let base_sat = Query.eval q (induced inst Term.Sset.empty) in
  let coalition mask =
    let c = ref Term.Sset.empty in
    Array.iteri (fun i x -> if mask land (1 lsl i) <> 0 then c := Term.Sset.add x !c) players;
    !c
  in
  let cache : (int, Rational.t) Hashtbl.t = Hashtbl.create 256 in
  let wealth mask =
    match Hashtbl.find_opt cache mask with
    | Some v -> v
    | None ->
      let v =
        if base_sat then Rational.zero
        else if Query.eval q (induced inst (coalition mask)) then Rational.one
        else Rational.zero
      in
      Hashtbl.replace cache mask v;
      v
  in
  (Game.make ~n:(Array.length players) ~wealth, players)

let svc_const q inst c =
  if not (Term.Sset.mem c inst.endo_consts) then
    invalid_arg "Const_svc.svc_const: constant is not endogenous";
  let game, players = game_of q inst in
  let idx = ref (-1) in
  Array.iteri (fun i x -> if x = c then idx := i) players;
  Game.shapley game !idx

let svc_const_all q inst =
  let game, players = game_of q inst in
  Array.to_list (Array.mapi (fun i c -> (c, Game.shapley game i)) players)

(* Encode "constant c is in the coalition" as the pseudo-fact $const(c),
   reusing the fact-variable counting machinery. *)
let const_var c = Fact.make "$const" [ c ]

let const_lineage q inst =
  (* D|_{C∪Cx} ⊨ q  ⇔  some minimal support of q in D has all its
     endogenous constants inside C (monotone queries). *)
  let supports = Query.minimal_supports_in q inst.facts in
  Bform.disj
    (List.map
       (fun s ->
          let needed = Term.Sset.inter (Fact.Set.consts s) inst.endo_consts in
          Bform.conj
            (List.map (fun c -> Bform.fv (const_var c)) (Term.Sset.elements needed)))
       supports)

let fgmc_const_polynomial q inst =
  let phi = const_lineage q inst in
  let universe = List.map const_var (Term.Sset.elements inst.endo_consts) in
  Compile.size_polynomial ~universe phi

let fgmc_const q inst k = Poly.Z.coeff (fgmc_const_polynomial q inst) k

let fgmc_const_polynomial_brute q inst =
  let players = Array.of_list (Term.Sset.elements inst.endo_consts) in
  let n = Array.length players in
  if n > 24 then invalid_arg "Const_svc.fgmc_const_polynomial_brute: too many constants";
  let acc = ref Poly.Z.zero in
  for mask = 0 to (1 lsl n) - 1 do
    let c = ref Term.Sset.empty in
    let size = ref 0 in
    Array.iteri
      (fun i x ->
         if mask land (1 lsl i) <> 0 then begin
           c := Term.Sset.add x !c;
           incr size
         end)
      players;
    if Query.eval q (induced inst !c) then
      acc := Poly.Z.add !acc (Poly.Z.monomial Bigint.one !size)
  done;
  !acc

let fmc_const_polynomial q inst =
  if not (Term.Sset.is_empty inst.exo_consts) then
    invalid_arg "Const_svc.fmc_const_polynomial: instance has exogenous constants";
  fgmc_const_polynomial q inst
