(* The per-term [Bigint.factorial] calls this loop used to make are now a
   single shared running-product table. *)
let svc_from_polynomials ~with_mu_exo ~without_mu ~n =
  Engine.shapley_of_polynomials ~factorials:(Bigint.factorial_table n)
    ~with_mu_exo ~without_mu ~n

(* With SVC_DEBUG set (to anything but "" or "0"), entry points first vet
   the (query, database) pair through the static analyzer and refuse to
   run when it reports errors. *)
let debug_enabled () =
  match Sys.getenv_opt "SVC_DEBUG" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let debug_check name q db =
  if debug_enabled () then begin
    let ds = Analyze.query q @ Analyze.database db @ Analyze.pair q db in
    let errors =
      List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) ds
    in
    if errors <> [] then
      invalid_arg
        (Printf.sprintf "%s: SVC_DEBUG analysis found errors:\n%s" name
           (String.concat "\n" (List.map Diagnostic.to_string errors)))
  end

let svc_unchecked q db mu =
  if not (Database.mem_endo mu db) then invalid_arg "Svc.svc: fact is not endogenous";
  let n = Database.size_endo db in
  let db_mu_exo = Database.make_exogenous mu db in
  let db_without = Database.remove mu db in
  let with_mu_exo = Model_counting.fgmc_polynomial q db_mu_exo in
  let without_mu = Model_counting.fgmc_polynomial q db_without in
  svc_from_polynomials ~with_mu_exo ~without_mu ~n

let svc q db mu =
  debug_check "Svc.svc" q db;
  svc_unchecked q db mu

let svc_brute q db mu =
  if not (Database.mem_endo mu db) then invalid_arg "Svc.svc_brute: fact is not endogenous";
  debug_check "Svc.svc_brute" q db;
  let game, players = Game.of_query q db in
  let idx = ref (-1) in
  Array.iteri (fun i f -> if Fact.equal f mu then idx := i) players;
  Game.shapley game !idx

let svc_all_naive q db =
  debug_check "Svc.svc_all_naive" q db;
  List.map (fun f -> (f, svc_unchecked q db f)) (Database.endo_list db)

let svc_all ?tel ?jobs ?backend q db =
  debug_check "Svc.svc_all" q db;
  Engine.svc_all (Engine.create ?tel ?jobs ?backend q db)

let svc_hierarchical q db mu =
  if not (Database.mem_endo mu db) then
    invalid_arg "Svc.svc_hierarchical: fact is not endogenous";
  let n = Database.size_endo db in
  let with_mu_exo = Safe_plan.fgmc_polynomial q (Database.make_exogenous mu db) in
  let without_mu = Safe_plan.fgmc_polynomial q (Database.remove mu db) in
  svc_from_polynomials ~with_mu_exo ~without_mu ~n

let banzhaf q db mu =
  if not (Database.mem_endo mu db) then invalid_arg "Svc.banzhaf: fact is not endogenous";
  debug_check "Svc.banzhaf" q db;
  let n = Database.size_endo db in
  let with_mu_exo = Model_counting.gmc q (Database.make_exogenous mu db) in
  let without_mu = Model_counting.gmc q (Database.remove mu db) in
  Rational.make (Bigint.sub with_mu_exo without_mu) (Bigint.pow Bigint.two (n - 1))

let banzhaf_brute q db mu =
  if not (Database.mem_endo mu db) then
    invalid_arg "Svc.banzhaf_brute: fact is not endogenous";
  let game, players = Game.of_query q db in
  let idx = ref (-1) in
  Array.iteri (fun i f -> if Fact.equal f mu then idx := i) players;
  Game.banzhaf game !idx
