(** Cooperative games and the Shapley value (Section 3.1).

    A game is a finite player set [P] with a wealth function
    [v : ℘(P) → ℚ], [v(∅) = 0].  Players are integers [0 .. n-1] and
    coalitions are bitmasks, so brute-force computations are limited to
    [n ≤ 62] (and practically far less). *)

type t

val make : n:int -> wealth:(int -> Rational.t) -> t
(** [wealth] takes a coalition bitmask.  It is the caller's responsibility
    that [wealth 0 = ℚ0] (checked lazily by the axiom tests below). *)

val n : t -> int
val wealth : t -> int -> Rational.t

val shapley : t -> int -> Rational.t
(** Shapley value of a player by the subset formula (Equation 2);
    [O(2^n)] wealth evaluations. *)

val shapley_all : t -> Rational.t array

val shapley_permutations : t -> int -> Rational.t
(** Direct evaluation of Equation 1 over all [n!] permutations; ground
    truth for tiny games. *)

val shapley_sampled : t -> int -> seed:int -> samples:int -> Rational.t
(** Monte-Carlo estimate of Equation 1 by sampling random permutations
    (deterministic in [seed]).  An approximation — the library's exact
    methods should be preferred whenever they fit; this is the standard
    fallback beyond them. *)

val banzhaf : t -> int -> Rational.t
(** The Banzhaf value [2^{1-n} Σ_B (v(B∪p) - v(B))] — the other classical
    power index studied alongside the Shapley value in provenance work;
    like the Shapley value it is a counting quantity (cf. {!Svc.banzhaf}).
    [O(2^n)] wealth evaluations. *)

val is_monotone : t -> bool
val is_binary : t -> bool
(** Wealth image included in [{0, 1}]. *)

val efficiency_defect : t -> Rational.t
(** [v(P) - v(∅) - Σ_p Sh(p)]; zero for every game (the efficiency axiom),
    exposed for property tests. *)

(** {1 Query games} *)

val of_query : Query.t -> Database.t -> t * Fact.t array
(** The game of Section 3.1: players are the endogenous facts (returned in
    the indexing array), wealth of [S] is [v_S - v_x] where [v_S] tells
    whether [S ∪ Dₓ ⊨ q]. *)
