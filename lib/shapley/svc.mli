(** Shapley value computation for facts ([SVC_q], Section 3.1).

    Two independent implementations:

    - {!svc_brute} evaluates Equation 2 directly on the query game
      ([O(2^|Dₙ|)] query evaluations);
    - {!svc} runs the reduction of Claim A.1 through the lineage-based FGMC
      engine: [Sh(μ) = Σ_j C_j (FGMC_j(Dₙ∖μ, Dₓ∪μ) - FGMC_j(Dₙ∖μ, Dₓ))]
      with [C_j = j!(|Dₙ|-j-1)!/|Dₙ|!].

    When the [SVC_DEBUG] environment variable is set (to anything but [""]
    or ["0"]), every entry point first runs the static analyzer
    ({!Analyze.query}, {!Analyze.database}, {!Analyze.pair}) on its inputs
    and raises [Invalid_argument] with the rendered diagnostics if any
    [Error]-severity diagnostic is reported. *)

val svc : Query.t -> Database.t -> Fact.t -> Rational.t
(** @raise Invalid_argument if the fact is not endogenous. *)

val svc_brute : Query.t -> Database.t -> Fact.t -> Rational.t
(** @raise Invalid_argument if the fact is not endogenous. *)

val svc_all :
  ?tel:Telemetry.t -> ?jobs:int -> ?backend:Engine.backend -> Query.t ->
  Database.t -> (Fact.t * Rational.t) list
(** Shapley values of all endogenous facts, through the batched
    {!Engine}: one lineage compilation shared by all facts, each fact's
    polynomials derived by conditioning against a shared memo cache — or,
    under [~backend:`Circuit] (and under [`Auto], the default, on large
    serial instances), read off one d-DNNF compilation with no per-fact
    conditioning at all.  [jobs] (default [1]; [0] = auto) fans the
    per-fact conditionings out across that many domains — values and
    order are identical for every [jobs] and every backend.  [tel] is
    handed to the underlying {!Engine.create}.

    For instances beyond exact reach, [~backend:(`Sample cfg)] swaps in
    the seeded anytime estimator of [lib/sample]: approximate values
    with rational confidence intervals, deterministic given
    [cfg.seed] — and rationally {e equal} to the exact backends when
    the hybrid strategy's every stratum fits under its exact cap.
    @raise Invalid_argument if [jobs < 0]. *)

val svc_all_naive : Query.t -> Database.t -> (Fact.t * Rational.t) list
(** The pre-engine path: an independent {!svc} call per fact, i.e. two
    fresh lineage compilations each.  Kept as the differential-testing and
    benchmarking baseline for {!svc_all}. *)

val svc_hierarchical : Cq.t -> Database.t -> Fact.t -> Rational.t
(** The FP side of the [11] dichotomy with a polynomial-time {e guarantee}:
    Claim A.1 routed through the lifted {!Safe_plan} evaluator.  Only for
    hierarchical self-join-free CQs.
    @raise Invalid_argument outside that fragment or if the fact is not
    endogenous. *)

val svc_from_polynomials : with_mu_exo:Poly.Z.t -> without_mu:Poly.Z.t -> n:int -> Rational.t
(** The Claim A.1 arithmetic alone: combine the two FGMC generating
    polynomials (both over a universe of [n-1] endogenous facts, [n] being
    the player count including [μ]). *)

(** {1 Banzhaf values}

    The other classical power index.  The paper's "SVC is a matter of
    counting" thesis is even more immediate here: the Banzhaf value of [μ]
    is [(GMC(Dₙ∖μ, Dₓ∪μ) - GMC(Dₙ∖μ, Dₓ)) / 2^(n-1)] — two plain GMC
    calls, no size grouping needed. *)

val banzhaf : Query.t -> Database.t -> Fact.t -> Rational.t
(** Lineage-based, via the two GMC counts.
    @raise Invalid_argument if the fact is not endogenous. *)

val banzhaf_brute : Query.t -> Database.t -> Fact.t -> Rational.t
