let argmax values =
  match values with
  | [] -> None
  | (f0, v0) :: rest ->
    Some
      (List.fold_left
         (fun (bf, bv) (f, v) -> if Rational.compare v bv > 0 then (f, v) else (bf, bv))
         (f0, v0) rest)

let max_svc q db = argmax (Svc.svc_all q db)

let max_svc_brute q db =
  argmax (List.map (fun f -> (f, Svc.svc_brute q db f)) (Database.endo_list db))

let top_contributors q db =
  let values = Svc.svc_all q db in
  match argmax values with
  | None -> []
  | Some (_, best) -> List.filter (fun (_, v) -> Rational.equal v best) values

let singleton_support_is_max q db =
  if Query.eval q (Database.exo db) then true
  else begin
    let values = Svc.svc_all q db in
    match argmax values with
    | None -> true
    | Some (_, best) ->
      List.for_all
        (fun (f, v) ->
           let singleton = Fact.Set.add f (Database.exo db) in
           (not (Query.eval q singleton)) || Rational.equal v best)
        values
  end
