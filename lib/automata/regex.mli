(** Regular expressions over relation-name alphabets.

    RPQ path atoms [L(a,b)] (Section 2) carry a regular language [L] over
    the binary relation names of the schema.  Concrete syntax follows the
    paper's conventions: capital-letter symbols juxtaposed ([AB+BA]), [+]
    or [|] for union, postfix [*] for Kleene star, postfix [?] for option
    and parentheses.  A symbol is one letter followed by lowercase letters
    or digits, so [Road Rail] is two symbols while [AB] is [A·B]; other
    names can be quoted (['X-Y']).  [_] denotes ε and [~] the empty
    language. *)

type t =
  | Empty            (** the empty language ∅ *)
  | Eps              (** the empty word *)
  | Sym of string    (** a single relation name *)
  | Seq of t * t
  | Alt of t * t
  | Star of t

val empty : t
val eps : t
val sym : string -> t
val seq : t -> t -> t
val alt : t -> t -> t
val star : t -> t
val plus : t -> t
(** [plus r] is [r · r*]. *)

val opt : t -> t
(** [opt r] is [ε | r]. *)

val seq_list : t list -> t
val alt_list : t list -> t
(** [alt_list [] = Empty], [seq_list [] = Eps]. *)

val word : string list -> t
(** The singleton language of one word. *)

val symbols : t -> string list
(** Sorted list of relation names occurring in the expression. *)

val nullable : t -> bool
(** Whether the language contains the empty word. *)

val is_empty_lang : t -> bool
(** Whether the language is empty. *)

val equal : t -> t -> bool
(** Structural equality (not language equivalence). *)

val parse : string -> t
(** Parse the concrete syntax described above.
    @raise Invalid_argument on syntax errors. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
