module Iset = Set.Make (Int)

(* Forward DP: [reach.(l)] = states reachable from the initial closure by
   some word of exactly [l] symbols (ε-transitions are free).  Taking unions
   over words is sound for every *existence* question asked here, because
   acceptance of some word of length [l] only requires the accept state to
   appear at layer [l]. *)
let reach_layers nfa lmax =
  let layers = Array.make (lmax + 1) Iset.empty in
  layers.(0) <- Iset.of_list (Nfa.set_elements (Nfa.start nfa));
  for l = 1 to lmax do
    let prev = layers.(l - 1) in
    let post = ref [] in
    Nfa.iter_transitions nfa (fun src _sym dst ->
        if Iset.mem src prev then post := dst :: !post);
    layers.(l) <- Iset.of_list (Nfa.set_elements (Nfa.closure_of nfa !post))
  done;
  layers

let accepting_set nfa = Iset.of_list (Nfa.accepting_states nfa)

let exists_length_nfa nfa l =
  let layers = reach_layers nfa l in
  let acc = accepting_set nfa in
  not (Iset.is_empty (Iset.inter layers.(l) acc))

let exists_length r l =
  if l < 0 then false
  else exists_length_nfa (Nfa.of_regex r) l

let shortest_length r =
  let nfa = Nfa.of_regex r in
  let bound = Nfa.num_states nfa in
  let layers = reach_layers nfa bound in
  let acc = accepting_set nfa in
  let rec go l =
    if l > bound then None
    else if not (Iset.is_empty (Iset.inter layers.(l) acc)) then Some l
    else go (l + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Unboundedness and "word of length ≥ k"                              *)
(* ------------------------------------------------------------------ *)

(* The word lengths of L are the symbol-edge counts of initial→accept paths
   in the NFA graph.  Restricting to states that are both reachable and
   co-reachable: if that subgraph has a cycle containing a symbol edge, the
   lengths are unbounded; otherwise we condense ε-SCCs and take the longest
   path in the resulting DAG. *)

let graph_analysis nfa =
  let n = Nfa.num_states nfa in
  (* adjacency: (dst, weight) with weight 1 for symbol edges, 0 for ε *)
  let adj = Array.make n [] in
  Nfa.iter_transitions nfa (fun src _sym dst -> adj.(src) <- (dst, 1) :: adj.(src));
  (* ε edges are not exposed by iter_transitions; recover them via closure of
     singletons. *)
  for s = 0 to n - 1 do
    List.iter
      (fun s' -> if s' <> s then adj.(s) <- (s', 0) :: adj.(s))
      (Nfa.set_elements (Nfa.closure_of nfa [ s ]))
  done;
  (* reachable from start *)
  let reachable = Array.make n false in
  let rec fwd s =
    if not reachable.(s) then begin
      reachable.(s) <- true;
      List.iter (fun (t, _) -> fwd t) adj.(s)
    end
  in
  List.iter fwd (Nfa.set_elements (Nfa.start nfa));
  (* co-reachable to accept *)
  let radj = Array.make n [] in
  Array.iteri (fun s l -> List.iter (fun (t, w) -> radj.(t) <- (s, w) :: radj.(t)) l) adj;
  let coreach = Array.make n false in
  let rec bwd s =
    if not coreach.(s) then begin
      coreach.(s) <- true;
      List.iter (fun (t, _) -> bwd t) radj.(s)
    end
  in
  List.iter bwd (Nfa.accepting_states nfa);
  let live s = reachable.(s) && coreach.(s) in
  (adj, live)

(* Tarjan SCC over the live subgraph. *)
let sccs adj live n =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comp = Array.make n (-1) in
  let ncomp = ref 0 in
  let rec strong v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (w, _) ->
         if live w then begin
           if index.(w) < 0 then begin
             strong w;
             lowlink.(v) <- min lowlink.(v) lowlink.(w)
           end
           else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
         end)
      adj.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp.(w) <- !ncomp;
          if w <> v then pop ()
      in
      pop ();
      incr ncomp
    end
  in
  for v = 0 to n - 1 do
    if live v && index.(v) < 0 then strong v
  done;
  (comp, !ncomp)

type length_profile =
  | Empty_language
  | Bounded of int (* maximal word length *)
  | Unbounded

let length_profile r =
  if Regex.is_empty_lang r then Empty_language
  else begin
    let nfa = Nfa.of_regex r in
    let n = Nfa.num_states nfa in
    let adj, live = graph_analysis nfa in
    match shortest_length r with
    | None -> Empty_language
    | Some _ ->
      let comp, ncomp = sccs adj live n in
      (* positive-weight edge inside an SCC ⇒ unbounded lengths *)
      let unbounded = ref false in
      for v = 0 to n - 1 do
        if live v then
          List.iter
            (fun (w, wt) ->
               if live w && wt = 1 && comp.(v) = comp.(w) then unbounded := true)
            adj.(v)
      done;
      if !unbounded then Unbounded
      else begin
        (* condensation DAG longest path, components numbered in reverse
           topological order by Tarjan (edges go from higher comp ids to
           lower in our construction? — safer: iterate relaxation ncomp
           times, Bellman-Ford style on the DAG). *)
        let cadj = Array.make ncomp [] in
        for v = 0 to n - 1 do
          if live v then
            List.iter
              (fun (w, wt) ->
                 if live w && comp.(v) <> comp.(w) then
                   cadj.(comp.(v)) <- (comp.(w), wt) :: cadj.(comp.(v)))
              adj.(v)
        done;
        let start_comps =
          List.filter_map
            (fun s -> if live s then Some comp.(s) else None)
            (Nfa.set_elements (Nfa.start nfa))
        in
        let accept_comps =
          List.filter_map
            (fun s -> if live s then Some comp.(s) else None)
            (Nfa.accepting_states nfa)
        in
        let dist = Array.make ncomp min_int in
        List.iter (fun c -> dist.(c) <- 0) start_comps;
        (* DAG: at most ncomp rounds of relaxation reach a fixpoint *)
        for _ = 1 to ncomp do
          for c = 0 to ncomp - 1 do
            if dist.(c) > min_int then
              List.iter
                (fun (d, wt) -> if dist.(c) + wt > dist.(d) then dist.(d) <- dist.(c) + wt)
                cadj.(c)
          done
        done;
        let best =
          List.fold_left (fun acc c -> max acc dist.(c)) min_int accept_comps
        in
        Bounded best
      end
  end

let exists_length_geq r k =
  match length_profile r with
  | Empty_language -> false
  | Unbounded -> true
  | Bounded m -> m >= k

let is_finite r =
  match length_profile r with
  | Empty_language | Bounded _ -> true
  | Unbounded -> false

(* ------------------------------------------------------------------ *)
(* Word enumeration                                                    *)
(* ------------------------------------------------------------------ *)

let words_of_length ?(limit = 1000) r k =
  let nfa = Nfa.of_regex r in
  let alphabet = Nfa.alphabet nfa in
  (* co-reachability layers for pruning: [colayers.(l)] = states from which
     some word of exactly [l] symbols is accepted *)
  let n = Nfa.num_states nfa in
  let colayers = Array.make (k + 1) Iset.empty in
  colayers.(0) <- accepting_set nfa;
  (* reverse symbol edges with ε-closure on the source side: s can do one
     symbol step into layer if closure(s) has a symbol edge into it. *)
  for l = 1 to k do
    let prev = colayers.(l - 1) in
    let srcs = ref Iset.empty in
    Nfa.iter_transitions nfa (fun src _sym dst ->
        if Iset.mem dst prev then srcs := Iset.add src !srcs);
    (* any state whose ε-closure meets [srcs] belongs to the layer *)
    let layer = ref Iset.empty in
    for s = 0 to n - 1 do
      let cl = Iset.of_list (Nfa.set_elements (Nfa.closure_of nfa [ s ])) in
      if not (Iset.is_empty (Iset.inter cl !srcs)) then layer := Iset.add s !layer
    done;
    colayers.(l) <- !layer
  done;
  let results = ref [] in
  let count = ref 0 in
  let rec go set depth word_rev =
    if !count < limit then begin
      if depth = k then begin
        if Nfa.is_accepting nfa set then begin
          results := List.rev word_rev :: !results;
          incr count
        end
      end
      else begin
        let states = Iset.of_list (Nfa.set_elements set) in
        if not (Iset.is_empty (Iset.inter states colayers.(k - depth))) then
          List.iter
            (fun sym ->
               let next = Nfa.step nfa set sym in
               if not (Nfa.is_empty_set next) then go next (depth + 1) (sym :: word_rev))
            alphabet
      end
    end
  in
  if k >= 0 then go (Nfa.start nfa) 0 [];
  List.rev !results

let shortest_word r =
  match shortest_length r with
  | None -> None
  | Some l ->
    (match words_of_length ~limit:1 r l with
     | w :: _ -> Some w
     | [] -> None)

let some_word_of_length_geq r k =
  match length_profile r with
  | Empty_language -> None
  | Bounded m when m < k -> None
  | _ ->
    let nfa = Nfa.of_regex r in
    let bound = k + Nfa.num_states nfa in
    let rec scan l =
      if l > bound then None
      else
        match words_of_length ~limit:1 r l with
        | w :: _ -> Some w
        | [] -> scan (l + 1)
    in
    scan (max k 0)
