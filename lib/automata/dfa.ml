type t = {
  nstates : int;
  initial : int;
  accepting : bool array;
  (* delta.(state) maps symbol -> state; missing = dead *)
  delta : (string, int) Hashtbl.t array;
  alphabet : string list;
}

let of_nfa (nfa : Nfa.t) : t =
  let alphabet = Nfa.alphabet nfa in
  let table : (Nfa.state_set * int) list ref = ref [] in
  let states = ref [] in
  let counter = ref 0 in
  let rec intern set =
    match List.find_opt (fun (s, _) -> Nfa.set_compare s set = 0) !table with
    | Some (_, id) -> id
    | None ->
      let id = !counter in
      incr counter;
      table := (set, id) :: !table;
      states := (id, set) :: !states;
      (* explore transitions *)
      List.iter
        (fun sym ->
           let next = Nfa.step nfa set sym in
           if not (Nfa.is_empty_set next) then ignore (intern next))
        alphabet;
      id
  in
  let initial = intern (Nfa.start nfa) in
  let n = !counter in
  let accepting = Array.make n false in
  let delta = Array.init n (fun _ -> Hashtbl.create 4) in
  List.iter
    (fun (id, set) ->
       accepting.(id) <- Nfa.is_accepting nfa set;
       List.iter
         (fun sym ->
            let next = Nfa.step nfa set sym in
            if not (Nfa.is_empty_set next) then begin
              match List.find_opt (fun (s, _) -> Nfa.set_compare s next = 0) !table with
              | Some (_, nid) -> Hashtbl.replace delta.(id) sym nid
              | None -> assert false
            end)
         alphabet)
    !states;
  { nstates = n; initial; accepting; delta; alphabet }

let of_regex r = of_nfa (Nfa.of_regex r)

let num_states d = d.nstates
let alphabet d = d.alphabet

let accepts d word =
  let rec go state = function
    | [] -> d.accepting.(state)
    | sym :: rest ->
      (match Hashtbl.find_opt d.delta.(state) sym with
       | None -> false
       | Some s' -> go s' rest)
  in
  go d.initial word

(* Completion: add an explicit dead state so every transition is total;
   state [n] is the dead state. *)
let completed_delta d =
  let n = d.nstates in
  let step s sym =
    if s = n then n
    else match Hashtbl.find_opt d.delta.(s) sym with Some s' -> s' | None -> n
  in
  step

let minimize d =
  let n = d.nstates + 1 (* + dead state *) in
  let dead = d.nstates in
  let step = completed_delta d in
  let accepting s = s <> dead && d.accepting.(s) in
  (* Moore: iteratively refine the partition by (class, successor classes) *)
  let cls = Array.init n (fun s -> if accepting s then 1 else 0) in
  let changed = ref true in
  while !changed do
    changed := false;
    let signature s =
      (cls.(s), List.map (fun sym -> cls.(step s sym)) d.alphabet)
    in
    let table = Hashtbl.create 16 in
    let next = Array.make n 0 in
    let counter = ref 0 in
    for s = 0 to n - 1 do
      let sg = signature s in
      match Hashtbl.find_opt table sg with
      | Some id -> next.(s) <- id
      | None ->
        Hashtbl.add table sg !counter;
        next.(s) <- !counter;
        incr counter
    done;
    let distinct_before =
      List.length (List.sort_uniq compare (Array.to_list cls))
    in
    if !counter <> distinct_before then changed := true;
    Array.blit next 0 cls 0 n
  done;
  (* rebuild over the classes, dropping transitions into the dead class *)
  let nclasses = 1 + Array.fold_left max 0 cls in
  let accepting' = Array.make nclasses false in
  let delta' = Array.init nclasses (fun _ -> Hashtbl.create 4) in
  for s = 0 to n - 1 do
    if accepting s then accepting'.(cls.(s)) <- true
  done;
  for s = 0 to n - 1 do
    if s <> dead && cls.(s) <> cls.(dead) then
      List.iter
        (fun sym ->
           let t = step s sym in
           if cls.(t) <> cls.(dead) then Hashtbl.replace delta'.(cls.(s)) sym cls.(t))
        d.alphabet
  done;
  (* prune classes unreachable from the initial class (in particular the
     dead class, which no remaining transition targets) *)
  let reach = Array.make nclasses false in
  let rec explore c =
    if not reach.(c) then begin
      reach.(c) <- true;
      Hashtbl.iter (fun _ t -> explore t) delta'.(c)
    end
  in
  explore cls.(d.initial);
  let remap = Array.make nclasses (-1) in
  let counter = ref 0 in
  for c = 0 to nclasses - 1 do
    if reach.(c) then begin
      remap.(c) <- !counter;
      incr counter
    end
  done;
  let nfinal = !counter in
  let accepting'' = Array.make nfinal false in
  let delta'' = Array.init nfinal (fun _ -> Hashtbl.create 4) in
  for c = 0 to nclasses - 1 do
    if reach.(c) then begin
      accepting''.(remap.(c)) <- accepting'.(c);
      Hashtbl.iter (fun sym t -> Hashtbl.replace delta''.(remap.(c)) sym remap.(t)) delta'.(c)
    end
  done;
  { nstates = nfinal; initial = remap.(cls.(d.initial)); accepting = accepting'';
    delta = delta''; alphabet = d.alphabet }

let equivalent d1 d2 =
  (* BFS over the completed product looking for a distinguishing state *)
  let alphabet = List.sort_uniq compare (d1.alphabet @ d2.alphabet) in
  let step1 = completed_delta d1 and step2 = completed_delta d2 in
  let acc1 s = s <> d1.nstates && d1.accepting.(s) in
  let acc2 s = s <> d2.nstates && d2.accepting.(s) in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  Queue.add (d1.initial, d2.initial) queue;
  Hashtbl.add seen (d1.initial, d2.initial) ();
  let distinguishing = ref false in
  while not (Queue.is_empty queue || !distinguishing) do
    let s1, s2 = Queue.pop queue in
    if acc1 s1 <> acc2 s2 then distinguishing := true
    else
      List.iter
        (fun sym ->
           let t = (step1 s1 sym, step2 s2 sym) in
           if not (Hashtbl.mem seen t) then begin
             Hashtbl.add seen t ();
             Queue.add t queue
           end)
        alphabet
  done;
  not !distinguishing
