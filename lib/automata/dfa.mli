(** Deterministic finite automata via subset construction.

    Not required for correctness anywhere (NFA simulation suffices), but a
    DFA gives O(|w|) membership after a one-off construction; the
    [ablate_homsearch]-style benches compare the two on long words. *)

type t

val of_nfa : Nfa.t -> t
val of_regex : Regex.t -> t

val num_states : t -> int
val alphabet : t -> string list
val accepts : t -> string list -> bool

val minimize : t -> t
(** Moore partition refinement over the completed automaton (a dead state
    is added internally when the transition function is partial and pruned
    again afterwards). *)

val equivalent : t -> t -> bool
(** Language equivalence, by product search for a distinguishing word. *)
