module Iset = Set.Make (Int)

type state_set = Iset.t

type t = {
  nstates : int;
  initial : int;
  accept : int;
  eps : int list array;
  delta : (string * int) list array;
  alphabet : string list;
}

(* Thompson construction: each sub-expression contributes a fragment with
   one entry and one exit state. *)
let of_regex (r : Regex.t) : t =
  let eps_edges = ref [] and sym_edges = ref [] in
  let counter = ref 0 in
  let fresh () = let s = !counter in incr counter; s in
  let add_eps a b = eps_edges := (a, b) :: !eps_edges in
  let add_sym a s b = sym_edges := (a, s, b) :: !sym_edges in
  let rec build r =
    match (r : Regex.t) with
    | Empty ->
      let i = fresh () and f = fresh () in
      (i, f)
    | Eps ->
      let i = fresh () and f = fresh () in
      add_eps i f;
      (i, f)
    | Sym s ->
      let i = fresh () and f = fresh () in
      add_sym i s f;
      (i, f)
    | Seq (a, b) ->
      let ia, fa = build a in
      let ib, fb = build b in
      add_eps fa ib;
      (ia, fb)
    | Alt (a, b) ->
      let i = fresh () and f = fresh () in
      let ia, fa = build a in
      let ib, fb = build b in
      add_eps i ia; add_eps i ib; add_eps fa f; add_eps fb f;
      (i, f)
    | Star a ->
      let i = fresh () and f = fresh () in
      let ia, fa = build a in
      add_eps i ia; add_eps fa f; add_eps i f; add_eps fa ia;
      (i, f)
  in
  let initial, accept = build r in
  let n = !counter in
  let eps = Array.make n [] in
  let delta = Array.make n [] in
  List.iter (fun (a, b) -> eps.(a) <- b :: eps.(a)) !eps_edges;
  List.iter (fun (a, s, b) -> delta.(a) <- (s, b) :: delta.(a)) !sym_edges;
  { nstates = n; initial; accept; eps; delta; alphabet = Regex.symbols r }

let num_states a = a.nstates
let alphabet a = a.alphabet

let closure a (set : Iset.t) : Iset.t =
  let rec go frontier acc =
    if Iset.is_empty frontier then acc
    else begin
      let next =
        Iset.fold
          (fun s nxt ->
             List.fold_left
               (fun nxt s' -> if Iset.mem s' acc then nxt else Iset.add s' nxt)
               nxt a.eps.(s))
          frontier Iset.empty
      in
      go next (Iset.union acc next)
    end
  in
  go set set

let closure_of a states = closure a (Iset.of_list states)
let start a = closure a (Iset.singleton a.initial)
let is_accepting a set = Iset.mem a.accept set

let step a set symbol =
  let post =
    Iset.fold
      (fun s acc ->
         List.fold_left
           (fun acc (sym, s') -> if sym = symbol then Iset.add s' acc else acc)
           acc a.delta.(s))
      set Iset.empty
  in
  closure a post

let is_empty_set = Iset.is_empty
let set_compare = Iset.compare
let set_elements = Iset.elements

let accepts a word =
  let final = List.fold_left (step a) (start a) word in
  is_accepting a final

let iter_transitions a yield =
  Array.iteri (fun src l -> List.iter (fun (sym, dst) -> yield src sym dst) l) a.delta

let accepting_states a =
  (* reverse ε-reachability from the accept state *)
  let rev = Array.make a.nstates [] in
  Array.iteri (fun src l -> List.iter (fun dst -> rev.(dst) <- src :: rev.(dst)) l) a.eps;
  let seen = Array.make a.nstates false in
  let rec go s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter go rev.(s)
    end
  in
  go a.accept;
  let acc = ref [] in
  Array.iteri (fun i b -> if b then acc := i :: !acc) seen;
  !acc
