(** Nondeterministic finite automata with ε-transitions.

    Built from {!Regex} by Thompson's construction; used for RPQ evaluation
    (product with the graph database) and for the language analyses behind
    the RPQ dichotomy of Corollary 4.3. *)

type t

type state_set
(** A set of NFA states. *)

val of_regex : Regex.t -> t

val num_states : t -> int
val alphabet : t -> string list

val start : t -> state_set
(** ε-closure of the initial state. *)

val is_accepting : t -> state_set -> bool

val step : t -> state_set -> string -> state_set
(** One symbol transition followed by ε-closure. *)

val is_empty_set : state_set -> bool
val set_compare : state_set -> state_set -> int
val set_elements : state_set -> int list

val accepts : t -> string list -> bool

val iter_transitions : t -> (int -> string -> int -> unit) -> unit
(** Iterate over all non-ε transitions [(src, symbol, dst)]. *)

val closure_of : t -> int list -> state_set
(** ε-closure of an arbitrary state list. *)

val accepting_states : t -> int list
(** States from which an accepting state is ε-reachable. *)
