(** Word-level analyses of regular languages.

    The RPQ dichotomy (Corollary 4.3) turns on whether the language contains
    a word of length at least 3; Lemma B.1's pseudo-connectedness witness
    needs some word of length at least 2; minimal supports of RPQs are
    simple paths labelled by accepted words. *)

val shortest_length : Regex.t -> int option
(** Length of a shortest accepted word ([None] for the empty language). *)

val shortest_word : Regex.t -> string list option

val exists_length_geq : Regex.t -> int -> bool
(** Whether the language contains a word of length ≥ k. *)

val exists_length : Regex.t -> int -> bool
(** Whether the language contains a word of length exactly k. *)

val some_word_of_length_geq : Regex.t -> int -> string list option
(** A witness word of length ≥ k, of minimal such length, if any. *)

val words_of_length : ?limit:int -> Regex.t -> int -> string list list
(** All accepted words of length exactly [k] (at most [limit], default
    1000). *)

val is_finite : Regex.t -> bool
(** Whether the language is finite, i.e. the RPQ is trivially bounded. *)

type length_profile =
  | Empty_language
  | Bounded of int    (** maximal word length *)
  | Unbounded

val length_profile : Regex.t -> length_profile

