type t =
  | Empty
  | Eps
  | Sym of string
  | Seq of t * t
  | Alt of t * t
  | Star of t

let empty = Empty
let eps = Eps
let sym s = Sym s

(* Smart constructors performing the obvious simplifications; they keep
   derived analyses (nullability, emptiness) cheap and outputs readable. *)
let seq a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Eps, r | r, Eps -> r
  | _ -> Seq (a, b)

let alt a b =
  match (a, b) with
  | Empty, r | r, Empty -> r
  | _ -> if a = b then a else Alt (a, b)

let star = function
  | Empty | Eps -> Eps
  | Star _ as r -> r
  | r -> Star r

let plus r = seq r (star r)
let opt r = alt Eps r
let seq_list rs = List.fold_left seq Eps rs
let alt_list rs = List.fold_left alt Empty rs
let word w = seq_list (List.map sym w)

let rec nullable = function
  | Empty | Sym _ -> false
  | Eps | Star _ -> true
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b

let rec is_empty_lang = function
  | Empty -> true
  | Eps | Sym _ | Star _ -> false
  | Seq (a, b) -> is_empty_lang a || is_empty_lang b
  | Alt (a, b) -> is_empty_lang a && is_empty_lang b

let symbols r =
  let rec go acc = function
    | Empty | Eps -> acc
    | Sym s -> s :: acc
    | Seq (a, b) | Alt (a, b) -> go (go acc a) b
    | Star a -> go acc a
  in
  List.sort_uniq String.compare (go [] r)

let equal = ( = )

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let needs_quotes s =
  (* quotes are needed unless the name re-tokenizes as a single symbol:
     one letter followed by lowercase letters or digits *)
  match String.length s with
  | 0 -> true
  | n ->
    let is_letter c = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') in
    let is_cont c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') in
    not
      (is_letter s.[0]
       && (let ok = ref true in
           for i = 1 to n - 1 do
             if not (is_cont s.[i]) then ok := false
           done;
           !ok))

let rec to_string_prec prec r =
  (* precedence: Alt = 0, Seq = 1, Star/atom = 2 *)
  let wrap p s = if p < prec then "(" ^ s ^ ")" else s in
  match r with
  | Empty -> "~"
  | Eps -> "_"
  | Sym s -> if needs_quotes s then "'" ^ s ^ "'" else s
  | Alt (Eps, a) | Alt (a, Eps) -> to_string_prec 3 a ^ "?"
  | Alt (a, b) -> wrap 0 (to_string_prec 0 a ^ "+" ^ to_string_prec 0 b)
  | Seq (a, b) -> wrap 1 (to_string_prec 1 a ^ to_string_prec 1 b)
  | Star a -> to_string_prec 3 a ^ "*"

let to_string = to_string_prec 0
let pp fmt r = Format.pp_print_string fmt (to_string r)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type token =
  | Tsym of string
  | Tlpar
  | Trpar
  | Talt
  | Tstar
  | Topt
  | Teps
  | Tempty

let tokenize (s : string) : token list =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '.' -> go (i + 1) acc
      | '(' -> go (i + 1) (Tlpar :: acc)
      | ')' -> go (i + 1) (Trpar :: acc)
      | '+' | '|' -> go (i + 1) (Talt :: acc)
      | '*' -> go (i + 1) (Tstar :: acc)
      | '?' -> go (i + 1) (Topt :: acc)
      | '\'' ->
        let j = try String.index_from s (i + 1) '\'' with Not_found ->
          invalid_arg "Regex.parse: unterminated quoted symbol"
        in
        go (j + 1) (Tsym (String.sub s (i + 1) (j - i - 1)) :: acc)
      | c when (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ->
        (* one symbol = a letter plus following lowercase letters/digits, so
           "AB" is A·B (paper style) while "Road" is a single name *)
        let j = ref (i + 1) in
        while
          !j < n
          && ((s.[!j] >= 'a' && s.[!j] <= 'z') || (s.[!j] >= '0' && s.[!j] <= '9'))
        do incr j done;
        go !j (Tsym (String.sub s i (!j - i)) :: acc)
      | '~' -> go (i + 1) (Tempty :: acc)
      | '_' -> go (i + 1) (Teps :: acc)
      | c -> invalid_arg (Printf.sprintf "Regex.parse: unexpected character %C" c)
  in
  go 0 []

(* Recursive descent:  alt := seq ('+' seq)* ;  seq := post+ ;
   post := atom ('*' | '?')* ;  atom := sym | '(' alt ')' | ε | ∅. *)
let parse s =
  let toks = ref (tokenize s) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: r -> toks := r in
  let rec parse_alt () =
    let a = parse_seq () in
    match peek () with
    | Some Talt ->
      advance ();
      alt a (parse_alt ())
    | _ -> a
  and parse_seq () =
    let a = parse_post () in
    match peek () with
    | Some (Tsym _ | Tlpar | Teps | Tempty) -> seq a (parse_seq ())
    | _ -> a
  and parse_post () =
    let a = parse_atom () in
    let rec stars a =
      match peek () with
      | Some Tstar -> advance (); stars (star a)
      | Some Topt -> advance (); stars (opt a)
      | _ -> a
    in
    stars a
  and parse_atom () =
    match peek () with
    | Some (Tsym name) -> advance (); sym name
    | Some Tlpar ->
      advance ();
      let a = parse_alt () in
      (match peek () with
       | Some Trpar -> advance (); a
       | _ -> invalid_arg "Regex.parse: missing closing parenthesis")
    | Some Teps -> advance (); eps
    | Some Tempty -> advance (); empty
    | _ -> invalid_arg "Regex.parse: unexpected end of input or token"
  in
  if !toks = [] then invalid_arg "Regex.parse: empty expression";
  let r = parse_alt () in
  if !toks <> [] then invalid_arg "Regex.parse: trailing tokens";
  r
