(** Dependency-free fork/join parallelism on stdlib [Domain]s.

    A {!t} is a fork/join pool configuration: {!map} fans an array out
    across [domains] worker domains (the calling domain is worker [0];
    the remaining workers are spawned per call and joined before the
    call returns — no background threads outlive a call).  Work is
    self-scheduled: workers claim chunk indices from a shared [Atomic]
    counter, so a worker that finishes early {e steals} the chunks a
    slower sibling never reached.

    The output is position-stable: [map pool f arr] writes [f arr.(i)]
    to slot [i] of the result whatever domain computed it, so results
    are bit-identical to [Array.map f arr] for every domain count —
    parallelism changes wall-clock and scheduling counters, never
    answers.

    [f] must be safe to run concurrently with itself from several
    domains: it must not mutate shared state without synchronization
    (in particular, stdlib [Hashtbl]s must not be shared across
    workers — give each chunk its own).  Reading shared immutable data
    is fine.

    If [f] raises, the first exception (by scheduling order) is
    re-raised in the caller with its backtrace after all workers have
    been joined; remaining workers stop claiming chunks, the pool never
    wedges, and the same pool value is reusable afterwards. *)

type t

val create : domains:int -> t
(** A pool of [domains] workers ([>= 1]; [1] degrades to sequential
    [Array.map] with no domain spawned).
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], floored at [1] — the [0 =
    auto] resolution used by every [--jobs] flag. *)

val bench_gate : required:int -> host:int -> cap:int option -> string option
(** Machine-readable skip reason for a wall-clock speedup gate that
    needs [required] true domains: [Some "host_domains=H"] when the host
    reports [host < required] domains (the speedup physically cannot
    show, whatever else holds — this check outranks the cap),
    [Some "cap=N"] on a size-capped smoke run, [None] when the gate is
    enforceable.  The string lands verbatim in the bench JSONs'
    ["skipped"] field, so its shape is pinned by a regression test. *)

type stats = {
  claims : int array;  (** chunks claimed, per worker slot *)
  steals : int array;
      (** chunks claimed beyond each worker's first — work that
          self-scheduling moved off a slower sibling.  Scheduling-
          dependent: two identical runs may report different steals. *)
}

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map ?chunk pool f arr] is [Array.map f arr], computed by all
    workers in parallel, [chunk] consecutive elements per claim
    (default: [length / (4 * domains)], floored at 1).
    @raise Invalid_argument if [chunk < 1]. *)

val map_stats :
  ?tel:Telemetry.t -> ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array * stats
(** As {!map}, also reporting per-worker scheduling counters.

    [tel] (default: disabled) records one [pool.chunk] span per claimed
    chunk, on a per-worker-slot trace track ([worker w] ↦ track [w + 1],
    forked in the calling domain and joined back after the workers), and
    accumulates the run's totals into the [pool.chunks] and
    [pool.steals] counters.  Chunk-to-worker assignment — and therefore
    which track a given span lands on — is scheduling-dependent; the
    total span count equals the total claims whatever the schedule. *)
