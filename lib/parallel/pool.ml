(* Fork/join pool: the calling domain is worker 0, workers 1..d-1 are
   spawned per map call and always joined before returning (even when a
   worker raises), so a pool value carries no state between calls and
   can never wedge.  Chunks are claimed with one [Atomic.fetch_and_add]
   each; results land in their original slot, making the merge
   deterministic by construction. *)

type t = { n_domains : int }

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  { n_domains = domains }

let domains t = t.n_domains

let recommended_domains () = max 1 (Domain.recommended_domain_count ())

(* Machine-readable skip reason for wall-clock speedup gates (the bench
   JSONs).  The host check outranks the cap check: a host with fewer
   domains than the gate needs can never exhibit the speedup, whatever
   the instance sizes — and BENCH_parallel.json once recorded a "pass"
   from a 1-domain host where the numbers meant nothing. *)
let bench_gate ~required ~host ~cap =
  if host < required then Some (Printf.sprintf "host_domains=%d" host)
  else
    match cap with
    | Some n -> Some (Printf.sprintf "cap=%d" n)
    | None -> None

type stats = { claims : int array; steals : int array }

let map_stats ?(tel = Telemetry.disabled ()) ?chunk pool f arr =
  let n = Array.length arr in
  let d = pool.n_domains in
  let chunk =
    match chunk with
    | Some c when c < 1 -> invalid_arg "Pool.map_stats: chunk must be >= 1"
    | Some c -> c
    | None -> max 1 (n / (4 * d))
  in
  let claims = Array.make d 0 in
  if n = 0 then ([||], { claims; steals = Array.make d 0 })
  else begin
    (* One child tracer per worker slot, forked here in the calling
       domain: workers may not touch a tracer they don't own. *)
    let tels =
      Array.init d (fun w ->
          Telemetry.fork tel ~track:(w + 1)
            ~name:(Printf.sprintf "worker %d" w))
    in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* First exception wins by CAS; its presence tells every worker to
       stop claiming further chunks. *)
    let failure : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let worker w =
      try
        let wt = tels.(w) in
        let continue = ref true in
        while !continue do
          if Atomic.get failure <> None then continue := false
          else begin
            let lo = Atomic.fetch_and_add next chunk in
            if lo >= n then continue := false
            else begin
              claims.(w) <- claims.(w) + 1;
              let hi = min n (lo + chunk) in
              let attrs =
                if Telemetry.enabled wt then
                  [ ("lo", string_of_int lo); ("hi", string_of_int hi) ]
                else []
              in
              Telemetry.span wt ~attrs "pool.chunk" (fun () ->
                  for i = lo to hi - 1 do
                    results.(i) <- Some (f arr.(i))
                  done)
            end
          end
        done
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failure None (Some (e, bt)))
    in
    (* Never more spawns than chunks: surplus workers would only claim
       nothing. *)
    let spawned =
      List.init
        (min (d - 1) (((n + chunk - 1) / chunk) - 1))
        (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    List.iter Domain.join spawned;
    Array.iter (fun wt -> Telemetry.join tel wt) tels;
    let total_claims = Array.fold_left ( + ) 0 claims in
    Telemetry.Counter.add (Telemetry.counter tel "pool.chunks") total_claims;
    Telemetry.Counter.add
      (Telemetry.counter tel "pool.steals")
      (Array.fold_left (fun acc c -> acc + max 0 (c - 1)) 0 claims);
    (match Atomic.get failure with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    let out =
      Array.map
        (function Some v -> v | None -> assert false (* all chunks claimed *))
        results
    in
    (out, { claims; steals = Array.map (fun c -> max 0 (c - 1)) claims })
  end

let map ?chunk pool f arr = fst (map_stats ?chunk pool f arr)
