type fgmc_const = (Const_svc.instance * int, Bigint.t) Oracle.t

let fgmc_const_oracle q = Oracle.make (fun (inst, k) -> Const_svc.fgmc_const q inst k)

let one_plus_z_pow k = Poly.Z.of_coeffs (List.init (k + 1) (fun i -> Bigint.binomial k i))

let svc_const_via_fgmc_const ~fgmc_const inst c =
  let cn = Const_svc.endo_consts inst in
  if not (Term.Sset.mem c cn) then
    invalid_arg "Const_red.svc_const_via_fgmc_const: constant is not endogenous";
  let facts = Const_svc.facts inst in
  let n = Term.Sset.cardinal cn in
  let others = Term.Sset.remove c cn in
  let with_c_exo = Const_svc.make_instance ~facts ~endo_consts:others in
  let without_c =
    Const_svc.make_instance
      ~facts:(Fact.Set.filter (fun f -> not (Term.Sset.mem c (Fact.consts f))) facts)
      ~endo_consts:others
  in
  let acc = ref Rational.zero in
  let n_fact = Bigint.factorial n in
  for j = 0 to n - 1 do
    let delta =
      Bigint.sub
        (Oracle.call fgmc_const (with_c_exo, j))
        (Oracle.call fgmc_const (without_c, j))
    in
    if not (Bigint.is_zero delta) then begin
      let w =
        Rational.make
          (Bigint.mul (Bigint.factorial j) (Bigint.factorial (n - j - 1)))
          n_fact
      in
      acc := Rational.add !acc (Rational.mul w (Rational.of_bigint delta))
    end
  done;
  !acc

let fgmc_const_via_svc_const ~svc_const ~query inst =
  let c_set = Query.consts query in
  let cn = Const_svc.endo_consts inst in
  if not (Term.Sset.is_empty (Term.Sset.inter c_set cn)) then
    invalid_arg "Const_red.fgmc_const_via_svc_const: query constants must be exogenous";
  let n = Term.Sset.cardinal cn in
  if Query.eval query (Const_svc.induced inst Term.Sset.empty) then
    one_plus_z_pow n
  else begin
    (* Collapse a fresh support onto a single new constant a_μ. *)
    let support =
      match Query.fresh_support query with
      | Some s -> s
      | None -> invalid_arg "Const_red.fgmc_const_via_svc_const: no fresh support"
    in
    let collapse target =
      let rho =
        Term.Sset.fold
          (fun c acc ->
             if Term.Sset.mem c c_set then acc else Term.Smap.add c target acc)
          (Fact.Set.consts support) Term.Smap.empty
      in
      Fact.Set.rename rho support
    in
    let probe = collapse (Term.fresh_const ~prefix:"amu" ()) in
    if Fact.Set.exists (fun f -> Term.Sset.subset (Fact.consts f) c_set) probe then
      invalid_arg
        "Const_red.fgmc_const_via_svc_const: collapsed support has a fact over C";
    (* copies with fresh pivots a_μ⁰ .. a_μⁱ *)
    let pivots = Array.init (n + 1) (fun k -> Term.fresh_const ~prefix:(Printf.sprintf "amu%d" k) ()) in
    let copies = Array.map collapse pivots in
    let facts0 = Const_svc.facts inst in
    let sh_values =
      Array.init (n + 1) (fun i ->
          let facts = ref facts0 in
          let endo = ref cn in
          for k = 0 to i do
            facts := Fact.Set.union copies.(k) !facts;
            endo := Term.Sset.add pivots.(k) !endo
          done;
          let inst_i = Const_svc.make_instance ~facts:!facts ~endo_consts:!endo in
          Oracle.call svc_const (inst_i, pivots.(0)))
    in
    (* shᵢ = Σ_j j!(n+i-j)!/(n+i+1)! · (C(n,j) - FGMC_j) *)
    let matrix =
      Array.init (n + 1) (fun i ->
          Array.init (n + 1) (fun j ->
              Rational.make
                (Bigint.mul (Bigint.factorial j) (Bigint.factorial (n + i - j)))
                (Bigint.factorial (n + i + 1))))
    in
    match Linalg.solve matrix sh_values with
    | Some x ->
      Poly.Z.of_coeffs
        (Array.to_list
           (Array.mapi
              (fun j v ->
                 Rational.to_bigint
                   (Rational.sub (Rational.of_bigint (Bigint.binomial n j)) v))
              x))
    | None -> invalid_arg "Const_red.fgmc_const_via_svc_const: singular system"
  end
