type mode =
  | Count
  | Complement

(* (1 + z)^k with integer coefficients *)
let one_plus_z_pow k = Poly.Z.of_coeffs (List.init (k + 1) (fun i -> Bigint.binomial k i))

let binomial_polynomial n = one_plus_z_pow n

let reduce_engine ~svc ~count_query ~query_consts ~s_prime ~support ~pivot ~mode db =
  if Fact.Set.is_empty support then
    invalid_arg "Fgmc_to_svc: empty support";
  if Term.Sset.mem pivot query_consts then
    invalid_arg "Fgmc_to_svc: pivot belongs to the query constants C";
  if not (Term.Sset.mem pivot (Fact.Set.consts support)) then
    invalid_arg "Fgmc_to_svc: pivot does not occur in the support";
  let c_set = query_consts in
  (* Trivial case of Claim 5.1 (1): for a monotone counted query, when the
     exogenous part already satisfies it, every subset of Dₙ is a
     generalized support.  (For non-monotone counted queries — Section 6.2 —
     the shortcut is unsound and the construction below handles the case by
     itself, cf. Lemma D.3 case (4).) *)
  if
    Query.is_hom_closed_syntactically count_query
    && Query.eval count_query (Database.exo db)
  then binomial_polynomial (Database.size_endo db)
  else begin
    (* Claim 5.1 (2): C-isomorphically rename D away from the constants of
       the construction (the counted polynomial is invariant). *)
    let avoid =
      Term.Sset.union (Fact.Set.consts s_prime) (Fact.Set.consts support)
    in
    let db, _rho = Database.rename_away ~keep:c_set ~avoid db in
    (* Claim 5.1 (3): facts shared with S′ (necessarily over C after the
       renaming) are irrelevant to the counted query by hypothesis (2c);
       drop them and pad the polynomial afterwards. *)
    let shared = Fact.Set.inter (Database.all db) s_prime in
    let dropped_endo =
      Fact.Set.cardinal (Fact.Set.inter shared (Database.endo db))
    in
    let db = Fact.Set.fold Database.remove shared db in
    let n = Database.size_endo db in
    (* Claim 5.3: split S into the pivot part S⁰ and the rest S⁻. *)
    let s0 =
      Fact.Set.filter (fun f -> Term.Sset.mem pivot (Fact.consts f)) support
    in
    let s_minus = Fact.Set.diff support s0 in
    let m = Fact.Set.cardinal s_minus in
    let mu =
      match Fact.Set.min_elt_opt s0 with
      | Some f -> f
      | None -> invalid_arg "Fgmc_to_svc: pivot part S⁰ is empty"
    in
    (* Copies S¹..Sⁱ: rename the pivot only; the glue constants shared with
       S⁻ are preserved so that Sᵏ ⊎ S⁻ remains a support. *)
    let copy k =
      let fresh = Term.fresh_const ~prefix:(Printf.sprintf "%s.copy%d" pivot k) () in
      let rho = Term.Smap.singleton pivot fresh in
      let facts = Fact.Set.rename rho s0 in
      let mu_k = Fact.rename rho mu in
      (facts, mu_k)
    in
    (* Build Aⁱ incrementally; measurements for i = 0 .. n. *)
    let base_endo =
      Fact.Set.union (Database.endo db) (Fact.Set.add mu s_minus)
    in
    let base_exo =
      Fact.Set.union (Database.exo db)
        (Fact.Set.union s_prime (Fact.Set.remove mu s0))
    in
    let copies = Array.init n (fun k -> copy (k + 1)) in
    let sh_values =
      Array.init (n + 1) (fun i ->
          let endo = ref base_endo and exo = ref base_exo in
          for k = 0 to i - 1 do
            let facts, mu_k = copies.(k) in
            endo := Fact.Set.add mu_k !endo;
            exo := Fact.Set.union (Fact.Set.remove mu_k facts) !exo
          done;
          let a_i = Database.of_sets ~endo:!endo ~exo:!exo in
          Oracle.call svc (a_i, mu))
    in
    (* Closed-form contribution Zᵢ of cases (1) and (2) of Lemma 5.1: the
       sets B containing some μᵏ or missing part of S⁻.  With
       Nᵢ = n + i + 1 + m players, of which B ranges over Nᵢ - 1:
       #bad(b) = C(Nᵢ-1, b) - C(n, b-m). *)
    let z_term i =
      let n_i = n + i + 1 + m in
      let n_i_fact = Bigint.factorial n_i in
      let acc = ref Rational.zero in
      for b = 0 to n_i - 1 do
        let bad =
          Bigint.sub (Bigint.binomial (n_i - 1) b) (Bigint.binomial n (b - m))
        in
        if not (Bigint.is_zero bad) then begin
          let w =
            Rational.make
              (Bigint.mul (Bigint.factorial b) (Bigint.factorial (n_i - b - 1)))
              n_i_fact
          in
          acc := Rational.add !acc (Rational.mul w (Rational.of_bigint bad))
        end
      done;
      !acc
    in
    let sh_clean =
      Array.init (n + 1) (fun i ->
          Rational.sub (Rational.sub Rational.one sh_values.(i)) (z_term i))
    in
    (* Invert the system  shᵢ = Σ_j (j+m)!(n+i-j)! / (n+i+m+1)! · x_j. *)
    let matrix =
      Array.init (n + 1) (fun i ->
          Array.init (n + 1) (fun j ->
              Rational.make
                (Bigint.mul
                   (Bigint.factorial (j + m))
                   (Bigint.factorial (n + i - j)))
                (Bigint.factorial (n + i + m + 1))))
    in
    let x =
      match Linalg.solve matrix sh_clean with
      | Some x -> x
      | None ->
        (* impossible: the matrix reduces to Bacher's (i+j)! matrix *)
        invalid_arg "Fgmc_to_svc: singular system"
    in
    let counts =
      Array.mapi
        (fun j v ->
           let v =
             match mode with
             | Count -> v
             | Complement ->
               Rational.sub (Rational.of_bigint (Bigint.binomial n j)) v
           in
           Rational.to_bigint v)
        x
    in
    let poly = Poly.Z.of_coeffs (Array.to_list counts) in
    Poly.Z.mul poly (one_plus_z_pow dropped_endo)
  end

(* ------------------------------------------------------------------ *)
(* Lemma 4.1                                                           *)
(* ------------------------------------------------------------------ *)

let lemma41 ~svc ~query ~island ~pivot db =
  reduce_engine ~svc ~count_query:query ~query_consts:(Query.consts query)
    ~s_prime:Fact.Set.empty ~support:island ~pivot ~mode:Count db

let lemma41_auto ~svc ~query db =
  match Query.fresh_support query with
  | None -> None
  | Some island ->
    let c = Query.consts query in
    let outside = Term.Sset.diff (Fact.Set.consts island) c in
    (match Term.Sset.min_elt_opt outside with
     | None -> None
     | Some pivot -> Some (lemma41 ~svc ~query ~island ~pivot db))

(* ------------------------------------------------------------------ *)
(* Lemma 4.3                                                           *)
(* ------------------------------------------------------------------ *)

let lemma43 ~svc ~q ~q' db =
  let s_prime =
    match q' with
    | Query.True -> Fact.Set.empty
    | _ ->
      (match Query.fresh_support q' with
       | Some s -> s
       | None -> invalid_arg "Fgmc_to_svc.lemma43: q′ has no fresh minimal support")
  in
  if Query.eval q s_prime then
    invalid_arg "Fgmc_to_svc.lemma43: hypothesis (2a) violated: S′ ⊨ q";
  let support =
    match Query.fresh_support q with
    | Some s -> s
    | None -> invalid_arg "Fgmc_to_svc.lemma43: q has no fresh minimal support"
  in
  let c_all = Term.Sset.union (Query.consts q) (Query.consts q') in
  let outside = Term.Sset.diff (Fact.Set.consts support) c_all in
  match Term.Sset.min_elt_opt outside with
  | None ->
    invalid_arg "Fgmc_to_svc.lemma43: support of q has no constant outside C ∪ C′"
  | Some pivot ->
    reduce_engine ~svc ~count_query:q ~query_consts:(Query.consts q) ~s_prime
      ~support ~pivot ~mode:Count db

(* ------------------------------------------------------------------ *)
(* Lemma 4.4                                                           *)
(* ------------------------------------------------------------------ *)

let default_split q1 q2 =
  let r1 = Query.rels q1 and r2 = Query.rels q2 in
  if not (Term.Sset.is_empty (Term.Sset.inter r1 r2)) then
    invalid_arg
      "Fgmc_to_svc.lemma44: conjunct vocabularies overlap; provide ~split";
  fun f ->
    if Term.Sset.mem (Fact.rel f) r1 then `Left
    else if Term.Sset.mem (Fact.rel f) r2 then `Right
    else `Neither

let lemma44_with ~pick_pivot ~svc ~q1 ~q2 ?split db =
  let split = match split with Some s -> s | None -> default_split q1 q2 in
  let part side =
    let keep f = split f = side in
    Database.of_sets
      ~endo:(Fact.Set.filter keep (Database.endo db))
      ~exo:(Fact.Set.filter keep (Database.exo db))
  in
  let d1 = part `Left and d2 = part `Right in
  let free =
    Database.size_endo db - Database.size_endo d1 - Database.size_endo d2
  in
  let c_all = Term.Sset.union (Query.consts q1) (Query.consts q2) in
  let run ~count_query ~other db_side =
    (* Replace the other conjunct's data by a fresh minimal support of the
       other conjunct, used as the duplicated S. *)
    let support =
      match Query.fresh_support other with
      | Some s -> s
      | None -> invalid_arg "Fgmc_to_svc.lemma44: conjunct has no fresh support"
    in
    match pick_pivot ~c:c_all support with
    | None ->
      invalid_arg "Fgmc_to_svc.lemma44: no admissible pivot in the support"
    | Some pivot ->
      reduce_engine ~svc ~count_query ~query_consts:c_all
        ~s_prime:Fact.Set.empty ~support ~pivot ~mode:Complement db_side
  in
  let p1 = run ~count_query:q1 ~other:q2 d1 in
  let p2 = run ~count_query:q2 ~other:q1 d2 in
  Poly.Z.mul (Poly.Z.mul p1 p2) (one_plus_z_pow free)

let any_outside_pivot ~c support =
  Term.Sset.min_elt_opt (Term.Sset.diff (Fact.Set.consts support) c)

(* Lemma D.1's "unshared constant": outside C and appearing in exactly one
   fact of the support, so that S⁰ is a singleton and the construction adds
   no exogenous facts. *)
let unshared_pivot ~c support =
  Term.Sset.min_elt_opt
    (Term.Sset.filter
       (fun a ->
          Fact.Set.cardinal
            (Fact.Set.filter (fun f -> Term.Sset.mem a (Fact.consts f)) support)
          = 1)
       (Term.Sset.diff (Fact.Set.consts support) c))

let lemma44 ~svc ~q1 ~q2 ?split db =
  lemma44_with ~pick_pivot:any_outside_pivot ~svc ~q1 ~q2 ?split db

let lemma_d1 ~svc ~q1 ~q2 ?split db =
  if not (Fact.Set.is_empty (Database.exo db)) then
    invalid_arg "Fgmc_to_svc.lemma_d1: database has exogenous facts";
  lemma44_with ~pick_pivot:unshared_pivot ~svc ~q1 ~q2 ?split db
