(** Counted oracles.

    The reductions of the paper are polynomial-time algorithms making
    unit-cost calls to an oracle for the target problem.  We implement them
    literally: each reduction takes an oracle record, and the wrapper counts
    calls so the test suite and benches can report (and bound) the number of
    oracle invocations. *)

type ('q, 'a) t

val make : ?tel:Telemetry.t -> ?name:string -> ('q -> 'a) -> ('q, 'a) t
(** With [tel] and [name], the call count lives in [tel]'s metrics
    registry under [name] — two oracles made against the same (tracer,
    name) share one count, which is exactly how per-arrow totals are
    collected; without them, the count is a private standalone counter.
    @raise Invalid_argument if only one of [tel]/[name] is given. *)

val call : ('q, 'a) t -> 'q -> 'a
val calls : ('q, 'a) t -> int
val reset : ('q, 'a) t -> unit

(** {1 Problem-specific oracle shapes} *)

type svc = (Database.t * Fact.t, Rational.t) t
(** [SVC_q]: Shapley value of an endogenous fact. *)

type fgmc = (Database.t * int, Bigint.t) t
(** [FGMC_q]: number of generalized supports of a given size. *)

type sppqe = (Database.t * Rational.t, Rational.t) t
(** [SPPQE_q]: probability of [q] when all endogenous facts get the given
    probability and exogenous facts probability 1. *)

type max_svc = (Database.t, (Fact.t * Rational.t) option) t
(** [max-SVC_q]: some endogenous fact of maximal Shapley value, with the
    value. *)

type svc_const = (Const_svc.instance * string, Rational.t) t
(** [SVC_q^const]: Shapley value of an endogenous constant. *)

(** {1 Reference oracles}

    Default instantiations backed by this library's own solvers.  Given
    [?tel], each registers its call counter in the tracer's registry
    under a stable per-arrow name ([oracle.svc], [oracle.svc_brute],
    [oracle.fgmc], [oracle.fgmc_brute], [oracle.sppqe],
    [oracle.max_svc], [oracle.svc_const]) — the FIG1A bench sums the
    [oracle.*] counters for its per-arrow totals. *)

val svc_of : ?tel:Telemetry.t -> Query.t -> svc
val svc_brute_of : ?tel:Telemetry.t -> Query.t -> svc
val fgmc_of : ?tel:Telemetry.t -> Query.t -> fgmc
val fgmc_brute_of : ?tel:Telemetry.t -> Query.t -> fgmc
val sppqe_of : ?tel:Telemetry.t -> Query.t -> sppqe
val max_svc_of : ?tel:Telemetry.t -> Query.t -> max_svc
val svc_const_of : ?tel:Telemetry.t -> Query.t -> svc_const

val svc_endo_only : svc -> svc
(** Wrap an SVC oracle so that it refuses databases with exogenous facts —
    turning it into an [SVC^n] oracle (Section 6.1).
    The wrapped oracle raises [Invalid_argument] on a violation, which the
    purely-endogenous reductions use as a correctness guard. *)
