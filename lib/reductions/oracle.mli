(** Counted oracles.

    The reductions of the paper are polynomial-time algorithms making
    unit-cost calls to an oracle for the target problem.  We implement them
    literally: each reduction takes an oracle record, and the wrapper counts
    calls so the test suite and benches can report (and bound) the number of
    oracle invocations. *)

type ('q, 'a) t

val make : ('q -> 'a) -> ('q, 'a) t
val call : ('q, 'a) t -> 'q -> 'a
val calls : ('q, 'a) t -> int
val reset : ('q, 'a) t -> unit

(** {1 Problem-specific oracle shapes} *)

type svc = (Database.t * Fact.t, Rational.t) t
(** [SVC_q]: Shapley value of an endogenous fact. *)

type fgmc = (Database.t * int, Bigint.t) t
(** [FGMC_q]: number of generalized supports of a given size. *)

type sppqe = (Database.t * Rational.t, Rational.t) t
(** [SPPQE_q]: probability of [q] when all endogenous facts get the given
    probability and exogenous facts probability 1. *)

type max_svc = (Database.t, (Fact.t * Rational.t) option) t
(** [max-SVC_q]: some endogenous fact of maximal Shapley value, with the
    value. *)

type svc_const = (Const_svc.instance * string, Rational.t) t
(** [SVC_q^const]: Shapley value of an endogenous constant. *)

(** {1 Reference oracles}

    Default instantiations backed by this library's own solvers. *)

val svc_of : Query.t -> svc
val svc_brute_of : Query.t -> svc
val fgmc_of : Query.t -> fgmc
val fgmc_brute_of : Query.t -> fgmc
val sppqe_of : Query.t -> sppqe
val max_svc_of : Query.t -> max_svc
val svc_const_of : Query.t -> svc_const

val svc_endo_only : svc -> svc
(** Wrap an SVC oracle so that it refuses databases with exogenous facts —
    turning it into an [SVC^n] oracle (Section 6.1).
    The wrapped oracle raises [Invalid_argument] on a violation, which the
    purely-endogenous reductions use as a correctness guard. *)
