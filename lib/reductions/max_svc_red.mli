(** [FGMC_q ≤ poly max-SVC_q] (Proposition 6.2).

    The Figure 2 construction with [S⁰ = S] and [S⁻ = ∅]: every copy is a
    full C-isomorphic copy of the support, so the distinguished fact [μ] is
    a singleton generalized support, and by Lemma 6.3 its Shapley value is
    the maximum — which is exactly what the max-SVC oracle returns. *)

val reduce :
  max_svc:Oracle.max_svc ->
  query:Query.t ->
  support:Fact.Set.t ->
  Database.t ->
  Poly.Z.t
(** [support] must be a minimal support of [query] over fresh constants
    satisfying the hypotheses of Lemma 4.1 (island) or 4.3.
    @raise Invalid_argument if the support is empty or the oracle returns
    no fact on a non-empty instance. *)

val reduce_auto : max_svc:Oracle.max_svc -> query:Query.t -> Database.t -> Poly.Z.t option
