(** Purely endogenous databases (Section 6.1).

    Lemma 6.1: FGMC on a database with [k] exogenous facts reduces to [2^k]
    FMC calls via the inclusion–exclusion
    [FGMC_j(Dₙ, Dₓ) = FGMC_{j+1}(Dₙ∪α, Dₓ∖α) - FGMC_{j+1}(Dₙ, Dₓ∖α)]. *)

val fgmc_via_fmc : fmc:Oracle.fgmc -> Database.t -> int -> Bigint.t
(** [fgmc_via_fmc ~fmc db j] computes [FGMC_q(db, j)] calling [fmc] only on
    purely endogenous databases — exactly [2^|Dₓ|] calls. *)

val fgmc_polynomial_via_fmc : fmc:Oracle.fgmc -> Database.t -> Poly.Z.t
(** The whole FGMC vector, [2^|Dₓ|·(|Dₙ|+|Dₓ|+1)] oracle calls. *)
