(** Queries with negation (Section 6.2, Proposition 6.1).

    For a self-join-free CQ¬ [q] with positive part [q⁺] and negative part
    [q⁻]: pick a maximal variable-connected subquery [q⁺ᵥ꜀] of [q⁺] and the
    negative atoms [q⁻ᵥ꜀] guarded by it; then
    [FGMC_{q⁺ᵥ꜀ ∧ q⁻ᵥ꜀} ≤ poly SVC_q] by the Lemma 4.1 construction with
    [S ≅ q⁺ᵥ꜀] and [S′ ≅] the rest of the positive part.

    Restriction: negative atoms without variables (the [α_k] of Lemma D.2)
    are not supported by this implementation. *)

val prop61 :
  svc:Oracle.svc ->
  q:Cqneg.t ->
  Database.t ->
  (Query.t * Poly.Z.t)
(** Returns the counted query [q̃ = q⁺ᵥ꜀ ∧ q⁻ᵥ꜀] (the first maximal
    variable-connected component) and its FGMC polynomial on the input
    database, computed through the [SVC_q] oracle.
    @raise Invalid_argument if [q] is not self-join-free or has a
    variable-free negative atom. *)

val lemma_d2 :
  svc:Oracle.svc ->
  q:Gcq.t ->
  Database.t ->
  (Query.t * Poly.Z.t)
(** The full Lemma D.2, covering the sjf-1RA¬ queries of Examples D.1 and
    D.2: the condition may be an arbitrary nested Boolean combination.
    Requires self-join-free guards, guard/condition vocabularies disjoint,
    and every condition atom to contain a variable.  Returns the counted
    query [q̃] (the first maximal variable-connected guard component with
    its guarded conditions) and its FGMC polynomial, computed through the
    [SVC_q] oracle.
    @raise Invalid_argument when a hypothesis fails. *)
