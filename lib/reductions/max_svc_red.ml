let one_plus_z_pow k = Poly.Z.of_coeffs (List.init (k + 1) (fun i -> Bigint.binomial k i))

let reduce ~max_svc ~query ~support db =
  if Fact.Set.is_empty support then invalid_arg "Max_svc_red.reduce: empty support";
  let c_set = Query.consts query in
  if Query.eval query (Database.exo db) then
    one_plus_z_pow (Database.size_endo db)
  else begin
    let db, _ =
      Database.rename_away ~keep:c_set ~avoid:(Fact.Set.consts support) db
    in
    let n = Database.size_endo db in
    (* μ: any fact of S; S ∖ {μ} is exogenous.  Copies are full C-isomorphic
       renamings, each with its own endogenous μᵏ. *)
    let mu =
      match Fact.Set.min_elt_opt support with
      | Some f -> f
      | None -> assert false
    in
    let copy _k =
      let rho =
        Term.Sset.fold
          (fun c acc ->
             if Term.Sset.mem c c_set then acc
             else Term.Smap.add c (Term.fresh_const ~prefix:c ()) acc)
          (Fact.Set.consts support) Term.Smap.empty
      in
      let facts = Fact.Set.rename rho support in
      (facts, Fact.rename rho mu)
    in
    let copies = Array.init n (fun k -> copy (k + 1)) in
    let base_endo = Fact.Set.add mu (Database.endo db) in
    let base_exo = Fact.Set.union (Database.exo db) (Fact.Set.remove mu support) in
    let sh_values =
      Array.init (n + 1) (fun i ->
          let endo = ref base_endo and exo = ref base_exo in
          for k = 0 to i - 1 do
            let facts, mu_k = copies.(k) in
            endo := Fact.Set.add mu_k !endo;
            exo := Fact.Set.union (Fact.Set.remove mu_k facts) !exo
          done;
          let a_i = Database.of_sets ~endo:!endo ~exo:!exo in
          match Oracle.call max_svc a_i with
          | Some (_, v) -> v
          | None -> invalid_arg "Max_svc_red.reduce: oracle returned no fact")
    in
    (* Identical arithmetic to the m = 0 instance of the main engine:
       cases (1)/(2) of Lemma 5.1 reduce to "some μᵏ ∈ B". *)
    let z_term i =
      let n_i = n + i + 1 in
      let n_i_fact = Bigint.factorial n_i in
      let acc = ref Rational.zero in
      for b = 0 to n_i - 1 do
        let bad = Bigint.sub (Bigint.binomial (n_i - 1) b) (Bigint.binomial n b) in
        if not (Bigint.is_zero bad) then begin
          let w =
            Rational.make
              (Bigint.mul (Bigint.factorial b) (Bigint.factorial (n_i - b - 1)))
              n_i_fact
          in
          acc := Rational.add !acc (Rational.mul w (Rational.of_bigint bad))
        end
      done;
      !acc
    in
    let sh_clean =
      Array.init (n + 1) (fun i ->
          Rational.sub (Rational.sub Rational.one sh_values.(i)) (z_term i))
    in
    let matrix =
      Array.init (n + 1) (fun i ->
          Array.init (n + 1) (fun j ->
              Rational.make
                (Bigint.mul (Bigint.factorial j) (Bigint.factorial (n + i - j)))
                (Bigint.factorial (n + i + 1))))
    in
    match Linalg.solve matrix sh_clean with
    | Some x -> Poly.Z.of_coeffs (Array.to_list (Array.map Rational.to_bigint x))
    | None -> invalid_arg "Max_svc_red.reduce: singular system"
  end

let reduce_auto ~max_svc ~query db =
  match Query.fresh_support query with
  | None -> None
  | Some support ->
    if Term.Sset.subset (Fact.Set.consts support) (Query.consts query) then None
    else Some (reduce ~max_svc ~query ~support db)
