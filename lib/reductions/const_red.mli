(** Shapley value of constants: [SVC_q^const ≡ poly FGMC_q^const]
    (Proposition 6.3).

    Stated for hom-closed queries; the implementation also accepts
    C-hom-closed queries whose fresh support has no fact entirely over [C],
    provided the constants of [C] are exogenous (the extension noted at the
    end of Section 6.4). *)

type fgmc_const = (Const_svc.instance * int, Bigint.t) Oracle.t

val fgmc_const_oracle : Query.t -> fgmc_const
(** Reference oracle backed by {!Const_svc.fgmc_const}. *)

val svc_const_via_fgmc_const :
  fgmc_const:fgmc_const -> Const_svc.instance -> string -> Rational.t
(** The Claim A.1 analog for constants. *)

val fgmc_const_via_svc_const :
  svc_const:Oracle.svc_const -> query:Query.t -> Const_svc.instance -> Poly.Z.t
(** The duplicable-singleton-support construction: collapse a fresh support
    of [q] onto a single fresh constant [a_μ], add [i] copies for
    [i = 0..|Cₙ|], and invert the resulting system.
    @raise Invalid_argument when the query constants are not all exogenous
    in the instance, or the collapsed support retains a fact entirely over
    [C]. *)
