type ('q, 'a) t = { f : 'q -> 'a; counter : Telemetry.Counter.t }

let make ?tel ?name f =
  let counter =
    match (tel, name) with
    | Some tel, Some name -> Telemetry.counter tel name
    | Some _, None | None, Some _ ->
      invalid_arg "Oracle.make: tel and name must be given together"
    | None, None -> Telemetry.Counter.create ()
  in
  { f; counter }

let call o q =
  Telemetry.Counter.incr o.counter;
  o.f q

let calls o = Telemetry.Counter.value o.counter
let reset o = Telemetry.Counter.reset o.counter

type svc = (Database.t * Fact.t, Rational.t) t
type fgmc = (Database.t * int, Bigint.t) t
type sppqe = (Database.t * Rational.t, Rational.t) t
type max_svc = (Database.t, (Fact.t * Rational.t) option) t
type svc_const = (Const_svc.instance * string, Rational.t) t

(* One registry counter per Figure 1a arrow endpoint: a reduction handed
   a tracer reports its oracle traffic under a stable [oracle.*] name. *)
let named tel name = match tel with None -> (None, None) | Some _ -> (tel, Some name)

let svc_of ?tel q =
  let tel, name = named tel "oracle.svc" in
  make ?tel ?name (fun (db, mu) -> Svc.svc q db mu)

let svc_brute_of ?tel q =
  let tel, name = named tel "oracle.svc_brute" in
  make ?tel ?name (fun (db, mu) -> Svc.svc_brute q db mu)

let fgmc_of ?tel q =
  let tel, name = named tel "oracle.fgmc" in
  make ?tel ?name (fun (db, n) -> Model_counting.fgmc q db n)

let fgmc_brute_of ?tel q =
  let tel, name = named tel "oracle.fgmc_brute" in
  make ?tel ?name (fun (db, n) -> Model_counting.fgmc_brute q db n)

let sppqe_of ?tel q =
  let tel, name = named tel "oracle.sppqe" in
  make ?tel ?name (fun (db, p) -> Pqe.sppqe q db p)

let max_svc_of ?tel q =
  let tel, name = named tel "oracle.max_svc" in
  make ?tel ?name (fun db -> Max_svc.max_svc q db)

let svc_const_of ?tel q =
  let tel, name = named tel "oracle.svc_const" in
  make ?tel ?name (fun (inst, c) -> Const_svc.svc_const q inst c)

let svc_endo_only o =
  make (fun (db, mu) ->
      if not (Fact.Set.is_empty (Database.exo db)) then
        invalid_arg "Oracle.svc_endo_only: reduction produced exogenous facts";
      call o (db, mu))
