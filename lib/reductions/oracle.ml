type ('q, 'a) t = { f : 'q -> 'a; mutable count : int }

let make f = { f; count = 0 }

let call o q =
  o.count <- o.count + 1;
  o.f q

let calls o = o.count
let reset o = o.count <- 0

type svc = (Database.t * Fact.t, Rational.t) t
type fgmc = (Database.t * int, Bigint.t) t
type sppqe = (Database.t * Rational.t, Rational.t) t
type max_svc = (Database.t, (Fact.t * Rational.t) option) t
type svc_const = (Const_svc.instance * string, Rational.t) t

let svc_of q = make (fun (db, mu) -> Svc.svc q db mu)
let svc_brute_of q = make (fun (db, mu) -> Svc.svc_brute q db mu)
let fgmc_of q = make (fun (db, n) -> Model_counting.fgmc q db n)
let fgmc_brute_of q = make (fun (db, n) -> Model_counting.fgmc_brute q db n)
let sppqe_of q = make (fun (db, p) -> Pqe.sppqe q db p)
let max_svc_of q = make (fun db -> Max_svc.max_svc q db)
let svc_const_of q = make (fun (inst, c) -> Const_svc.svc_const q inst c)

let svc_endo_only o =
  make (fun (db, mu) ->
      if not (Fact.Set.is_empty (Database.exo db)) then
        invalid_arg "Oracle.svc_endo_only: reduction produced exogenous facts";
      call o (db, mu))
