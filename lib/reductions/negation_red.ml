let lemma_d2 ~svc ~q db =
  if not (Gcq.is_guard_self_join_free q) then
    invalid_arg "Negation_red.lemma_d2: guards are not self-join-free";
  if not (Gcq.guards_disjoint_from_conditions q) then
    invalid_arg "Negation_red.lemma_d2: guard and condition vocabularies overlap";
  if Gcq.has_variable_free_condition_atom q then
    invalid_arg "Negation_red.lemma_d2: variable-free condition atoms unsupported";
  match Gcq.guard_variable_components q with
  | [] -> invalid_arg "Negation_red.lemma_d2: no variable-connected guard component"
  | (comp, guarded) :: _ as comps ->
    let q_tilde = Query.Gcq (Gcq.make ~guards:(Cq.atoms comp) ~cond:guarded) in
    let support, _ = Cq.canonical_support comp in
    let rest_atoms = List.concat_map (fun (c, _) -> Cq.atoms c) (List.tl comps) in
    let s_prime =
      match rest_atoms with
      | [] -> Fact.Set.empty
      | atoms -> fst (Cq.canonical_support (Cq.of_atoms atoms))
    in
    let c_set = Gcq.consts q in
    (match Term.Sset.min_elt_opt (Term.Sset.diff (Fact.Set.consts support) c_set) with
     | None ->
       invalid_arg "Negation_red.lemma_d2: component support has no constant outside C"
     | Some pivot ->
       let poly =
         Fgmc_to_svc.reduce_engine ~svc ~count_query:q_tilde ~query_consts:c_set
           ~s_prime ~support ~pivot ~mode:Fgmc_to_svc.Count db
       in
       (q_tilde, poly))

let prop61 ~svc ~q db =
  if not (Cqneg.is_self_join_free q) then
    invalid_arg "Negation_red.prop61: query is not self-join-free";
  if List.exists (fun a -> Term.Sset.is_empty (Atom.vars a)) (Cqneg.neg q) then
    invalid_arg "Negation_red.prop61: variable-free negative atoms unsupported";
  match Cqneg.positive_variable_components q with
  | [] -> invalid_arg "Negation_red.prop61: no variable-connected component"
  | (comp, guarded) :: _ as comps ->
    (* q̃ = q⁺ᵥ꜀ ∧ q⁻ᵥ꜀ : the counted query *)
    let q_tilde = Query.Cqneg (Cqneg.make ~pos:(Cq.atoms comp) ~neg:guarded) in
    (* S ≅ canonical support of the component, S′ ≅ canonical support of the
       remaining positive atoms *)
    let support, _ = Cq.canonical_support comp in
    let rest_atoms = List.concat_map (fun (c, _) -> Cq.atoms c) (List.tl comps) in
    let s_prime =
      match rest_atoms with
      | [] -> Fact.Set.empty
      | atoms -> fst (Cq.canonical_support (Cq.of_atoms atoms))
    in
    let c_set = Cqneg.consts q in
    let outside = Term.Sset.diff (Fact.Set.consts support) c_set in
    (match Term.Sset.min_elt_opt outside with
     | None ->
       invalid_arg "Negation_red.prop61: component support has no constant outside C"
     | Some pivot ->
       let poly =
         Fgmc_to_svc.reduce_engine ~svc ~count_query:q_tilde ~query_consts:c_set
           ~s_prime ~support ~pivot ~mode:Fgmc_to_svc.Count db
       in
       (q_tilde, poly))
