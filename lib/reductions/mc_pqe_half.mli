(** The [MC ≡ PQE(1/2)] and [GMC ≡ PQE(1/2;1)] arrows of Figure 1a.

    A single evaluation at probability 1/2 carries the whole (generalized)
    model count: [Pr(D ⊨ q) = GMC_q(D) / 2^{|Dₙ|}]. *)

type prob_oracle = (Database.t, Rational.t) Oracle.t
type count_oracle = (Database.t, Bigint.t) Oracle.t

val pqe_half_one_of : ?tel:Telemetry.t -> Query.t -> prob_oracle
(** With [?tel], counts calls in its registry as [oracle.pqe_half_one]
    (likewise [oracle.gmc] below) — same convention as {!Oracle}'s
    reference constructors. *)

val gmc_of : ?tel:Telemetry.t -> Query.t -> count_oracle

val gmc_via_half_one : pqe:prob_oracle -> Database.t -> Bigint.t
(** One oracle call. *)

val half_one_via_gmc : gmc:count_oracle -> Database.t -> Rational.t
(** One oracle call. *)

val mc_via_half : pqe:prob_oracle -> Database.t -> Bigint.t
(** @raise Invalid_argument if the database has exogenous facts. *)

val half_via_mc : mc:count_oracle -> Database.t -> Rational.t
(** @raise Invalid_argument if the database has exogenous facts. *)
