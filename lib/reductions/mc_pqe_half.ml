type prob_oracle = (Database.t, Rational.t) Oracle.t
type count_oracle = (Database.t, Bigint.t) Oracle.t

let pqe_half_one_of ?tel q =
  let name = match tel with None -> None | Some _ -> Some "oracle.pqe_half_one" in
  Oracle.make ?tel ?name (fun db -> Pqe.pqe_half_one q db)

let gmc_of ?tel q =
  let name = match tel with None -> None | Some _ -> Some "oracle.gmc" in
  Oracle.make ?tel ?name (fun db -> Model_counting.gmc q db)

let gmc_via_half_one ~pqe db =
  let n = Database.size_endo db in
  let pr = Oracle.call pqe db in
  (* GMC = 2^n · Pr, necessarily an integer *)
  Rational.to_bigint (Rational.mul pr (Rational.of_bigint (Bigint.pow Bigint.two n)))

let half_one_via_gmc ~gmc db =
  let n = Database.size_endo db in
  Rational.make (Oracle.call gmc db) (Bigint.pow Bigint.two n)

let require_endogenous name db =
  if not (Fact.Set.is_empty (Database.exo db)) then
    invalid_arg (name ^ ": database has exogenous facts")

let mc_via_half ~pqe db =
  require_endogenous "Mc_pqe_half.mc_via_half" db;
  gmc_via_half_one ~pqe db

let half_via_mc ~mc db =
  require_endogenous "Mc_pqe_half.half_via_mc" db;
  half_one_via_gmc ~gmc:mc db
