let sppqe_via_fgmc ~fgmc db p =
  if Rational.sign p <= 0 || Rational.compare p Rational.one > 0 then
    invalid_arg "Fgmc_sppqe.sppqe_via_fgmc: probability must lie in (0, 1]";
  let n = Database.size_endo db in
  let poly =
    Poly.Z.of_coeffs (List.init (n + 1) (fun j -> Oracle.call fgmc (db, j)))
  in
  Pqe.sppqe_of_polynomial poly ~n p

let fgmc_via_sppqe ~sppqe db =
  let n = Database.size_endo db in
  (* z_k = k for k = 1..n+1, i.e. probabilities p_k = k/(k+1) ∈ (0, 1) *)
  let zs = Array.init (n + 1) (fun k -> Rational.of_int (k + 1)) in
  let rhs =
    Array.map
      (fun z ->
         let p = Rational.div z (Rational.add Rational.one z) in
         let pr = Oracle.call sppqe (db, p) in
         Rational.mul (Rational.pow (Rational.add Rational.one z) n) pr)
      zs
  in
  let coeffs = Linalg.solve_vandermonde zs rhs in
  Poly.Z.of_coeffs (Array.to_list (Array.map Rational.to_bigint coeffs))

let require_endogenous name db =
  if not (Fact.Set.is_empty (Database.exo db)) then
    invalid_arg (name ^ ": database has exogenous facts")

let fmc_via_spqe ~spqe db =
  require_endogenous "Fgmc_sppqe.fmc_via_spqe" db;
  fgmc_via_sppqe ~sppqe:spqe db

let spqe_via_fmc ~fmc db p =
  require_endogenous "Fgmc_sppqe.spqe_via_fmc" db;
  sppqe_via_fgmc ~fgmc:fmc db p
