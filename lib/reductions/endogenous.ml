let rec fgmc_via_fmc ~fmc db j =
  match Fact.Set.choose_opt (Database.exo db) with
  | None ->
    if j < 0 then Bigint.zero
    else Oracle.call fmc (db, j)
  | Some alpha ->
    (* generalized supports of size j in (Dₙ, Dₓ) are the generalized
       supports of size j+1 in (Dₙ ∪ α, Dₓ ∖ α) that contain α *)
    let promoted = Database.make_endogenous alpha db in
    let dropped = Database.remove alpha db in
    Bigint.sub
      (fgmc_via_fmc ~fmc promoted (j + 1))
      (fgmc_via_fmc ~fmc dropped (j + 1))

let fgmc_polynomial_via_fmc ~fmc db =
  let n = Database.size_endo db in
  Poly.Z.of_coeffs (List.init (n + 1) (fun j -> fgmc_via_fmc ~fmc db j))
