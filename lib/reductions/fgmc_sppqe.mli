(** [FGMC_q ≡ poly SPPQE_q] (Proposition 3.3 (1) / Claim A.2).

    Both directions of the equivalence, preserving the underlying
    partitioned database:

    - [(1+z)ⁿ · Pr(D_z ⊨ q) = Σ_j z^j · FGMC_j]  with [z = p/(1-p)];
    - querying SPPQE at [n+1] distinct probabilities yields a Vandermonde
      system over the [FGMC_j]. *)

val sppqe_via_fgmc : fgmc:Oracle.fgmc -> Database.t -> Rational.t -> Rational.t
(** [n+1] oracle calls. @raise Invalid_argument if [p ∉ (0, 1]]. *)

val fgmc_via_sppqe : sppqe:Oracle.sppqe -> Database.t -> Poly.Z.t
(** The whole FGMC vector from [n+1] SPPQE calls at probabilities
    [k/(k+1)], [k = 1..n+1]. *)

val fmc_via_spqe : spqe:Oracle.sppqe -> Database.t -> Poly.Z.t
(** Claim A.3: the restriction to purely endogenous databases.
    @raise Invalid_argument if the database has exogenous facts. *)

val spqe_via_fmc : fmc:Oracle.fgmc -> Database.t -> Rational.t -> Rational.t
(** @raise Invalid_argument if the database has exogenous facts. *)
