(** [SVC_q ≤ poly FGMC_q] (Proposition 3.3 (3) / Claim A.1).

    [Sh(Dₙ, v, μ) = Σ_j C_j (FGMC_j(Dₙ∖μ, Dₓ∪μ) - FGMC_j(Dₙ∖μ, Dₓ))]
    with [C_j = j!(n-j-1)!/n!], [n = |Dₙ|] — [2n] oracle calls. *)

val svc : fgmc:Oracle.fgmc -> Database.t -> Fact.t -> Rational.t
(** @raise Invalid_argument if the fact is not endogenous. *)

val svc_endo : fgmc:Oracle.fgmc -> Database.t -> Fact.t -> Rational.t
(** [SVC_q^n ≤ poly FMC_q] (Corollary 6.1): same computation, but the [μ]-
    made-exogenous call is routed through Lemma 6.1's expansion so that the
    oracle only ever sees purely endogenous databases.
    @raise Invalid_argument if the input database has exogenous facts. *)
