let weight n j =
  Rational.make
    (Bigint.mul (Bigint.factorial j) (Bigint.factorial (n - j - 1)))
    (Bigint.factorial n)

let svc_with ~fgmc_j db mu =
  if not (Database.mem_endo mu db) then
    invalid_arg "Svc_to_fgmc.svc: fact is not endogenous";
  let n = Database.size_endo db in
  let db_mu_exo = Database.make_exogenous mu db in
  let db_without = Database.remove mu db in
  let acc = ref Rational.zero in
  for j = 0 to n - 1 do
    let delta = Bigint.sub (fgmc_j db_mu_exo j) (fgmc_j db_without j) in
    if not (Bigint.is_zero delta) then
      acc := Rational.add !acc (Rational.mul (weight n j) (Rational.of_bigint delta))
  done;
  !acc

let svc ~fgmc db mu = svc_with ~fgmc_j:(fun db j -> Oracle.call fgmc (db, j)) db mu

let svc_endo ~fgmc db mu =
  if not (Fact.Set.is_empty (Database.exo db)) then
    invalid_arg "Svc_to_fgmc.svc_endo: database has exogenous facts";
  svc_with ~fgmc_j:(fun db j -> Endogenous.fgmc_via_fmc ~fmc:fgmc db j) db mu
