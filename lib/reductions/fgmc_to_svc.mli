(** The paper's main results: reductions [FGMC_q ≤ poly SVC_q] (Section 5).

    All three lemmas share one engine, the construction of Figure 2:

    {v
        Aⁱ  =  D′ ∪ S⁰ ∪ S¹ ∪ … ∪ Sⁱ ∪ S⁻
    v}

    where [D′ = D ⊎ S′] ([S′] exogenous), [S = S⁰ ⊎ S⁻] is the minimal
    support being duplicated, [S⁰] the facts containing the pivot constant
    [a], and each [Sᵏ] renames [a] to a fresh constant.  Endogenous facts
    of [Aⁱ]: those of [D], the distinguished [μ ∈ S⁰] and its copies
    [μᵏ], and all of [S⁻].  Querying the SVC oracle on [(Aⁱ, μ)] for
    [i = 0..|Dₙ|], subtracting the closed-form contribution of the
    degenerate cases of Lemma 5.1, and inverting the shifted-factorial
    linear system recovers the whole FGMC vector. *)

type mode =
  | Count        (** Lemmas 4.1/4.3: case (3) of Lemma 5.1 collects the
                     generalized supports. *)
  | Complement   (** Lemma 4.4: case (3) collects the non-supports of the
                     conjunct being counted. *)

val reduce_engine :
  svc:Oracle.svc ->
  count_query:Query.t ->
  query_consts:Term.Sset.t ->
  s_prime:Fact.Set.t ->
  support:Fact.Set.t ->
  pivot:string ->
  mode:mode ->
  Database.t ->
  Poly.Z.t
(** The shared construction.  [count_query] is the query whose FGMC vector
    is computed ([q] for Lemmas 4.1/4.3, a conjunct [qᵢ] for Lemma 4.4);
    the [svc] oracle answers SVC for the (possibly different) oracle query.
    @raise Invalid_argument if [pivot ∉ const(support) ∖ query_consts]. *)

(** {1 Lemma 4.1 — pseudo-connected queries} *)

val lemma41 :
  svc:Oracle.svc ->
  query:Query.t ->
  island:Fact.Set.t ->
  pivot:string ->
  Database.t ->
  Poly.Z.t
(** [island] must be an island minimal support of [query] over constants
    fresh w.r.t. the input database, [pivot ∈ const(island) ∖ C]. *)

val lemma41_auto : svc:Oracle.svc -> query:Query.t -> Database.t -> Poly.Z.t option
(** Derive the island support via {!Query.fresh_support} and pick any
    constant outside [C] as pivot; [None] when no such support exists.
    Soundness of using that support as an island is the caller's burden
    (e.g. [query] connected hom-closed — Lemma 4.2 — or an RPQ with a long
    word — Lemma B.1). *)

(** {1 Lemma 4.3 — variable-connected q, oracle query q ∧ q′} *)

val lemma43 :
  svc:Oracle.svc ->
  q:Query.t ->
  q':Query.t ->
  Database.t ->
  Poly.Z.t
(** The [svc] oracle answers [SVC_{q ∧ q′}].  Builds [S′] as a fresh
    minimal support of [q′] and [S] as a fresh minimal support of [q],
    checking hypothesis (2a) ([S′ ⊭ q]).  Hypotheses (1), (2b), (2c), (3)
    — variable-connectedness and absence of q-leaks — are the caller's
    burden (automatic for self-join-free or constant-free [q], cf.
    Corollary 4.5).
    @raise Invalid_argument when a required fresh support does not exist or
    [S′ ⊨ q]. *)

(** {1 Lemma 4.4 — decomposable queries} *)

val lemma44 :
  svc:Oracle.svc ->
  q1:Query.t ->
  q2:Query.t ->
  ?split:(Fact.t -> [ `Left | `Right | `Neither ]) ->
  Database.t ->
  Poly.Z.t
(** The [svc] oracle answers [SVC_{q1 ∧ q2}]; the result is the FGMC vector
    of [q1 ∧ q2] on the input database.  [split] assigns each fact to the
    conjunct it can be relevant to (default: by relation vocabulary, which
    is complete for disjoint-vocabulary decompositions, Lemma 4.5).
    @raise Invalid_argument if the vocabularies overlap and no [split] is
    given, or a conjunct has no fresh support with a constant outside
    [C]. *)

val lemma_d1 :
  svc:Oracle.svc ->
  q1:Query.t ->
  q2:Query.t ->
  ?split:(Fact.t -> [ `Left | `Right | `Neither ]) ->
  Database.t ->
  Poly.Z.t
(** Lemma D.1: the purely endogenous variant of {!lemma44} for queries
    {e decomposable with an unshared constant}.  The pivot is a constant of
    the support occurring in exactly one fact, so [S⁰] is a singleton and
    the construction adds no exogenous facts — wrap the oracle with
    {!Oracle.svc_endo_only} to certify.
    @raise Invalid_argument if the input database has exogenous facts or a
    support has no unshared constant. *)
