(* PARALLEL: the multicore fan-out engine vs the serial batched engine,
   on the SCALE instance families.  Emits BENCH_parallel.json (uploaded
   by the CI bench-smoke job) and validates that for every instance

   (a) jobs ∈ {2, 4} produce exactly the serial values in the serial
       order (the deterministic-merge contract), and
   (b) two jobs=4 runs are identical, values and normalized stats alike.

   The wall-clock gate — >= 1.8x speedup at 4 domains over jobs=1 on the
   largest instance, eval phase (the fan-out is the subject; lineage
   compilation is the same serial prefix at every jobs count) — is only
   enforceable where 4 domains can actually run in parallel, so it is
   skipped on hosts with fewer than 4 cores and on capped smoke runs
   (BENCH_PARALLEL_CAP bounds |Dn|, as BENCH_ENGINE_CAP does for the
   engine experiment); correctness checks always run. *)

let speedup_target = 1.8

let cap () =
  match Sys.getenv_opt "BENCH_PARALLEL_CAP" with
  | None | Some "" -> max_int
  | Some s -> (try int_of_string s with Failure _ -> max_int)

type entry = {
  family : string;
  n_endo : int;
  serial_s : float;
  par2_s : float;
  par4_s : float;
  par4_stats : Stats.t;
}

let json_of_entry e =
  Printf.sprintf
    "{\"family\":%S,\"n_endo\":%d,\"serial_ms\":%.3f,\"par2_ms\":%.3f,\
     \"par4_ms\":%.3f,\"speedup2\":%.2f,\"speedup4\":%.2f,\"par4_stats\":%s}"
    e.family e.n_endo (e.serial_s *. 1000.) (e.par2_s *. 1000.)
    (e.par4_s *. 1000.) (e.serial_s /. e.par2_s) (e.serial_s /. e.par4_s)
    (Stats.to_json e.par4_stats)

let write_json ~path entries ~gate ~skipped ~pass =
  let oc = open_out path in
  output_string oc
    (Printf.sprintf
       "{\"experiment\":\"parallel\",\"host_domains\":%d,\"cap\":%s,\
        \"speedup_target\":%.1f,\"gate\":%S,\"skipped\":%s,\"pass\":%b,\
        \"entries\":[%s]}\n"
       (Pool.recommended_domains ())
       (let c = cap () in if c = max_int then "null" else string_of_int c)
       speedup_target gate
       (match skipped with None -> "null" | Some r -> Printf.sprintf "%S" r)
       pass
       (String.concat "," (List.map json_of_entry entries)));
  close_out oc

let values_equal v1 v2 =
  List.length v1 = List.length v2
  && List.for_all2
       (fun (f1, x1) (f2, x2) -> Fact.equal f1 f2 && Rational.equal x1 x2)
       v1 v2

(* Time the batched evaluation phase at a given jobs count; the engine is
   created (and the lineage compiled) outside the timer.  Pinned to the
   conditioning backend so the jobs=1 baseline stays the serial fan-out
   path rather than `Auto flipping it to the circuit evaluator. *)
let timed_eval ~jobs q db =
  let e = Engine.create ~jobs ~backend:`Conditioning q db in
  let (values, s) = Report.time_it (fun () -> Engine.svc_all e) in
  (values, Engine.stats e, s)

let run_instance ~family q db =
  let n = Database.size_endo db in
  let serial_v, _, serial_s = timed_eval ~jobs:1 q db in
  let par2_v, _, par2_s = timed_eval ~jobs:2 q db in
  let par4_v, par4_stats, par4_s = timed_eval ~jobs:4 q db in
  let rerun_v, rerun_stats, _ = timed_eval ~jobs:4 q db in
  let agree = values_equal serial_v par2_v && values_equal serial_v par4_v in
  let deterministic =
    values_equal par4_v rerun_v
    && Stats.normalize par4_stats = Stats.normalize rerun_stats
  in
  if not agree then
    Printf.printf "!! %s n=%d: parallel/serial value MISMATCH\n" family n;
  if not deterministic then
    Printf.printf "!! %s n=%d: jobs=4 rerun NOT deterministic\n" family n;
  ( { family; n_endo = n; serial_s; par2_s; par4_s; par4_stats },
    agree && deterministic )

let parallel () =
  Report.heading "PARALLEL"
    "Multicore fan-out engine: jobs 1 vs 2 vs 4 (emits BENCH_parallel.json)";
  let cap = cap () in
  let instances =
    Report.family_instances ~cap ~family:"star"
      ~label:"safe R(x),S(x,y) [star]" [ 16; 32; 64; 96 ]
    @ Report.family_instances ~cap ~family:"bipartite"
        ~label:"unsafe q_RST [bipartite]" [ 3; 4; 5 ]
  in
  let results = List.map (fun (f, q, db) -> run_instance ~family:f q db) instances in
  let entries = List.map fst results in
  let all_ok = List.for_all snd results in
  Report.table
    ~headers:[ "query [instance family]"; "|Dn|"; "jobs=1"; "jobs=2"; "jobs=4";
               "speedup@4"; "par cache hits/misses" ]
    (List.map
       (fun e ->
          [ e.family; string_of_int e.n_endo; Report.ms e.serial_s;
            Report.ms e.par2_s; Report.ms e.par4_s;
            Printf.sprintf "%.1fx" (e.serial_s /. e.par4_s);
            Printf.sprintf "%d/%d" (Stats.par_hits e.par4_stats)
              (Stats.par_misses e.par4_stats) ])
       entries);
  (* Pool.bench_gate owns the skip policy (host check outranks the cap
     check); the JSON carries both the human-readable gate string and
     the machine-readable "skipped" reason so downstream tooling never
     has to parse prose to learn the gate was vacuous *)
  let host = Pool.recommended_domains () in
  let skipped =
    Pool.bench_gate ~required:4 ~host
      ~cap:(if cap = max_int then None else Some cap)
  in
  let gate =
    match skipped with
    | Some _ when host < 4 ->
      Printf.sprintf "skipped (host has %d domain(s), need 4)" host
    | Some _ -> "skipped (capped smoke run)"
    | None -> "enforced"
  in
  let largest =
    List.fold_left
      (fun best e ->
         match best with
         | Some b when b.n_endo >= e.n_endo -> best
         | _ -> Some e)
      None entries
  in
  let speedup_ok =
    match largest with
    | None -> false
    | Some e ->
      let s = e.serial_s /. e.par4_s in
      Printf.printf
        "Largest size |Dn|=%d (%s): %.1fx speedup at 4 domains (target: >= %.1fx) — %s\n"
        e.n_endo e.family s speedup_target
        (if gate = "enforced" then Report.ok (s >= speedup_target)
         else "gate " ^ gate);
      s >= speedup_target
  in
  let pass = all_ok && (speedup_ok || skipped <> None) in
  write_json ~path:"BENCH_parallel.json" entries ~gate ~skipped ~pass;
  Printf.printf "Wrote BENCH_parallel.json (%d entries).\n" (List.length entries);
  pass
