(* Plain-text tables for the experiment reports. *)

let heading id title =
  Printf.printf "\n================================================================================\n";
  Printf.printf "[%s] %s\n" id title;
  Printf.printf "================================================================================\n"

let subheading title = Printf.printf "\n--- %s ---\n" title

let table ~headers rows =
  let ncols = List.length headers in
  let rows = List.map (fun r -> List.map (fun c -> c) r) rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
         if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure headers;
  List.iter measure rows;
  let print_row row =
    let cells =
      List.mapi
        (fun i cell ->
           let pad = widths.(i) - String.length cell in
           cell ^ String.make (max 0 pad) ' ')
        row
    in
    Printf.printf "| %s |\n" (String.concat " | " cells)
  in
  let sep =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  Printf.printf "%s\n" sep;
  print_row headers;
  Printf.printf "%s\n" sep;
  List.iter print_row rows;
  Printf.printf "%s\n" sep

let ok b = if b then "ok" else "FAIL"

(* Registry-backed instance lists: the seed-0 member of a workload family
   at each size, capped by |Dn| for smoke runs.  Every experiment sources
   its instances from lib/workload's generator registry, so the benches
   and the conformance suite exercise the same databases. *)
let family_instances ~cap ~family ~label sizes =
  List.filter_map
    (fun size ->
       let c = Workload.generate ~family ~seed:0 ~size in
       if Database.size_endo c.Workload.db <= cap then
         Some (label, c.Workload.query, c.Workload.db)
       else None)
    sizes

let now () = Unix.gettimeofday ()

let time_it f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let ms t = Printf.sprintf "%.2fms" (t *. 1000.)
