(* ENGINE: the batched memoizing engine vs per-fact svc_all, on the same
   instance families as the SCALE experiment.  Emits BENCH_engine.json
   (machine-readable, uploaded by the CI bench-smoke job) and validates
   that the engine (a) agrees with the naive path exactly, (b) performs a
   single lineage compilation per (query, database), and (c) is at least
   3x faster at the largest benchmarked size.

   BENCH_ENGINE_CAP bounds |Dn| (for CI smoke runs). *)

let cap () =
  match Sys.getenv_opt "BENCH_ENGINE_CAP" with
  | None | Some "" -> max_int
  | Some s -> (try int_of_string s with Failure _ -> max_int)

type entry = {
  family : string;
  n_endo : int;
  naive_s : float;
  engine_s : float;
  stats : Stats.t;
}

let json_of_entry e =
  Printf.sprintf
    "{\"family\":%S,\"n_endo\":%d,\"naive_ms\":%.3f,\"engine_ms\":%.3f,\
     \"speedup\":%.2f,\"stats\":%s}"
    e.family e.n_endo (e.naive_s *. 1000.) (e.engine_s *. 1000.)
    (e.naive_s /. e.engine_s) (Stats.to_json e.stats)

let write_json ~path entries ~pass =
  let oc = open_out path in
  output_string oc
    (Printf.sprintf
       "{\"experiment\":\"engine\",\"cap\":%s,\"speedup_target\":3.0,\
        \"pass\":%b,\"entries\":[%s]}\n"
       (let c = cap () in if c = max_int then "null" else string_of_int c)
       pass
       (String.concat "," (List.map json_of_entry entries)));
  close_out oc

let run_instance ~jobs ~family q db =
  let n = Database.size_endo db in
  let naive, naive_s = Report.time_it (fun () -> Svc.svc_all_naive q db) in
  (* pinned to the conditioning backend: this experiment measures the
     batched memoizing engine itself, not the `Auto backend choice *)
  let (e, batched), engine_s =
    Report.time_it (fun () ->
        let e = Engine.create ~jobs ~backend:`Conditioning q db in
        (e, Engine.svc_all e))
  in
  let agree =
    List.length naive = List.length batched
    && List.for_all2
         (fun (f1, v1) (f2, v2) -> Fact.equal f1 f2 && Rational.equal v1 v2)
         naive batched
  in
  let stats = Engine.stats e in
  if not agree then Printf.printf "!! %s n=%d: engine/naive MISMATCH\n" family n;
  if stats.Stats.compilations <> 1 then
    Printf.printf "!! %s n=%d: %d compilations (expected 1)\n" family n
      stats.Stats.compilations;
  ( { family; n_endo = n; naive_s; engine_s; stats },
    agree && stats.Stats.compilations = 1 )

let engine ?(jobs = 1) () =
  Report.heading "ENGINE"
    (Printf.sprintf
       "Batched memoizing SVC engine (jobs=%d) vs per-fact svc_all_naive \
        (emits BENCH_engine.json)" jobs);
  let cap = cap () in
  let instances =
    Report.family_instances ~cap ~family:"star"
      ~label:"safe R(x),S(x,y) [star]" [ 4; 8; 16; 32; 64 ]
    @ Report.family_instances ~cap ~family:"bipartite"
        ~label:"unsafe q_RST [bipartite]" [ 2; 3; 4; 5 ]
  in
  let results =
    List.map (fun (f, q, db) -> run_instance ~jobs ~family:f q db) instances
  in
  let entries = List.map fst results in
  let all_ok = List.for_all snd results in
  Report.table
    ~headers:[ "query [instance family]"; "|Dn|"; "naive svc_all"; "engine";
               "speedup"; "compilations"; "cache hits/misses" ]
    (List.map
       (fun e ->
          [ e.family; string_of_int e.n_endo; Report.ms e.naive_s;
            Report.ms e.engine_s;
            Printf.sprintf "%.1fx" (e.naive_s /. e.engine_s);
            string_of_int e.stats.Stats.compilations;
            Printf.sprintf "%d/%d" e.stats.Stats.cache_hits
              e.stats.Stats.cache_misses ])
       entries);
  let largest =
    List.fold_left
      (fun best e ->
         match best with
         | Some b when b.n_endo >= e.n_endo -> best
         | _ -> Some e)
      None entries
  in
  let speedup_ok =
    match largest with
    | None -> false
    | Some e ->
      let s = e.naive_s /. e.engine_s in
      Printf.printf
        "Largest size |Dn|=%d (%s): %.1fx speedup (target: >= 3x) — %s\n"
        e.n_endo e.family s (Report.ok (s >= 3.));
      s >= 3.
  in
  (* Capped (smoke) runs validate agreement and the single-compilation
     contract only: wall-clock ratios at toy sizes are noise. *)
  let pass = all_ok && (speedup_ok || cap <> max_int) in
  write_json ~path:"BENCH_engine.json" entries ~pass;
  Printf.printf "Wrote BENCH_engine.json (%d entries).\n" (List.length entries);
  pass

