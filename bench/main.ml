(* Benchmark & experiment harness.

   Regenerates every figure/table-level artifact of the paper (see
   DESIGN.md §3 and EXPERIMENTS.md) and runs Bechamel microbenchmarks.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig1a   # a single experiment
     dune exec bench/main.exe -- --list  # available experiment ids
     dune exec bench/main.exe -- --jobs 4 engine   # engine on 4 domains *)

let rounds = 12

let experiments ~jobs : (string * (unit -> bool)) list =
  [
    ("fig1a", Exp_fig1.fig1a ~rounds);
    ("fig1b", Exp_fig1.fig1b);
    ("prop33", Exp_fig1.prop33);
    ("fig2", Exp_constructions.fig2);
    ("cor41", Exp_constructions.cor41 ~rounds:6);
    ("cor43", Exp_constructions.cor43 ~rounds:6);
    ("cor45", Exp_constructions.cor45 ~rounds:8);
    ("cor46", Exp_constructions.cor46 ~rounds:8);
    ("lem61", Exp_variants.lem61);
    ("lem62", Exp_variants.lem62 ~rounds:10);
    ("lem63", Exp_variants.lem63 ~rounds:10);
    ("prop62", Exp_variants.prop62 ~rounds:8);
    ("prop63", Exp_variants.prop63 ~rounds:8);
    ("sec62", Exp_variants.sec62 ~rounds:8);
    ("appd", Exp_variants.appendix_d ~rounds:8);
    ("exe1", Exp_discussion.exe1);
    ("scale", Exp_scale.scale);
    ("sample", Exp_scale.sample);
    ("engine", Exp_engine.engine ~jobs);
    ("parallel", Exp_parallel.parallel);
    ("circuit", Exp_circuit.circuit);
    ("red_scale", Exp_scale.reduction_scaling);
    ("ablate_compile", Exp_scale.ablate_compile);
    ("ablate_poly", Exp_scale.ablate_poly);
    ("ablate_shapley", Exp_scale.ablate_shapley);
    ("ablate_safeplan", Exp_scale.ablate_safeplan);
    ("ablate_homsearch", Exp_scale.ablate_homsearch);
    ("arith", Micro.arith);
    ("micro", Micro.run);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* --jobs N applies to the experiments that evaluate through the batched
     engine (currently: engine); 0 = one domain per available core. *)
  let rec extract_jobs acc = function
    | [] -> (List.rev acc, 1)
    | "--jobs" :: n :: rest ->
      let jobs =
        match int_of_string_opt n with
        | Some j when j >= 0 -> if j = 0 then Pool.recommended_domains () else j
        | _ ->
          Printf.eprintf "bench: --jobs needs an integer >= 0, got %S\n" n;
          exit 2
      in
      (List.rev_append acc rest, jobs)
    | a :: rest -> extract_jobs (a :: acc) rest
  in
  let args, jobs = extract_jobs [] args in
  let experiments = experiments ~jobs in
  match args with
  | [ "--list" ] ->
    List.iter (fun (id, _) -> print_endline id) experiments
  | [] ->
    let failures = ref [] in
    List.iter
      (fun (id, run) -> if not (run ()) then failures := id :: !failures)
      experiments;
    Printf.printf "\n================================================================================\n";
    (match !failures with
     | [] -> Printf.printf "All %d experiments validated.\n" (List.length experiments)
     | fs ->
       Printf.printf "FAILED experiments: %s\n" (String.concat ", " (List.rev fs));
       exit 1)
  | ids ->
    List.iter
      (fun id ->
         match List.assoc_opt id experiments with
         | Some run -> if not (run ()) then exit 1
         | None ->
           Printf.eprintf "unknown experiment %S (try --list)\n" id;
           exit 2)
      ids
