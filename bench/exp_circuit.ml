(* CIRCUIT: the d-DNNF knowledge-compilation backend vs the conditioning
   engine, on the SCALE instance families.  Emits BENCH_circuit.json
   (uploaded by the CI bench-smoke job) and validates that for every
   instance

   (a) the circuit backend returns exactly the conditioning values in the
       same order,
   (b) it performs zero per-fact conditionings (the whole point: one
       compilation, one traversal pair), and
   (c) two circuit runs are identical, values and normalized stats alike.

   The wall-clock gate — >= 2x speedup over the serial conditioning
   engine on the largest instance — is skipped on capped smoke runs
   (BENCH_CIRCUIT_CAP bounds |Dn|, as BENCH_ENGINE_CAP does for the
   engine experiment); correctness checks always run. *)

let speedup_target = 2.0

let cap () =
  match Sys.getenv_opt "BENCH_CIRCUIT_CAP" with
  | None | Some "" -> max_int
  | Some s -> (try int_of_string s with Failure _ -> max_int)

(* The recorded node count of the complete-bipartite n=24 circuit before
   the compilation planner existed: the plan-driven node gate asserts
   planned compilation at least halves it. *)
let bipartite24_baseline = 2174

type entry = {
  family : string;
  n_endo : int;
  conditioning_s : float;
  circuit_s : float;
  circuit_stats : Stats.t;
  planned_nodes : int;  (* plan-steered compilation (the engine default) *)
  unplanned_nodes : int;  (* same lineage, naive Shannon order *)
}

let json_of_entry e =
  Printf.sprintf
    "{\"family\":%S,\"n_endo\":%d,\"conditioning_ms\":%.3f,\
     \"circuit_ms\":%.3f,\"speedup\":%.2f,\"planned_nodes\":%d,\
     \"unplanned_nodes\":%d,\"circuit_stats\":%s}"
    e.family e.n_endo (e.conditioning_s *. 1000.) (e.circuit_s *. 1000.)
    (e.conditioning_s /. e.circuit_s)
    e.planned_nodes e.unplanned_nodes
    (Stats.to_json e.circuit_stats)

let write_json ~path entries ~gate ~pass =
  let oc = open_out path in
  output_string oc
    (Printf.sprintf
       "{\"experiment\":\"circuit\",\"cap\":%s,\"speedup_target\":%.1f,\
        \"bipartite24_baseline\":%d,\"gate\":%S,\"pass\":%b,\"entries\":[%s]}\n"
       (let c = cap () in if c = max_int then "null" else string_of_int c)
       speedup_target bipartite24_baseline gate pass
       (String.concat "," (List.map json_of_entry entries)));
  close_out oc

let values_equal v1 v2 =
  List.length v1 = List.length v2
  && List.for_all2
       (fun (f1, x1) (f2, x2) -> Fact.equal f1 f2 && Rational.equal x1 x2)
       v1 v2

(* Both backends timed end to end (engine creation included): the circuit
   side's pitch is that its one compilation replaces the n conditioned
   counts, so the compilations belong inside the timer.  Best of
   [rounds] runs — the minimum is the standard noise-robust estimator
   for a deterministic computation. *)
let rounds = 3

let timed_backend ~backend q db =
  let run () =
    let (e, values), s =
      Report.time_it (fun () ->
          let e = Engine.create ~backend q db in
          (e, Engine.svc_all e))
    in
    (values, Engine.stats e, s)
  in
  let first = run () in
  let rec refine best k =
    if k = 0 then best
    else
      let ((_, _, s) as r) = run () in
      let _, _, best_s = best in
      refine (if s < best_s then r else best) (k - 1)
  in
  refine first (rounds - 1)

let run_instance ~family q db =
  let n = Database.size_endo db in
  let cond_v, _, conditioning_s = timed_backend ~backend:`Conditioning q db in
  let circ_v, circuit_stats, circuit_s = timed_backend ~backend:`Circuit q db in
  let rerun_v, rerun_stats, _ = timed_backend ~backend:`Circuit q db in
  (* the engine's circuit backend is plan-steered, so its stats already
     report the planned size; the unplanned column recompiles the same
     lineage in naive Shannon order for comparison *)
  let planned_nodes = circuit_stats.Stats.circuit_nodes in
  let unplanned_nodes =
    Circuit.node_count (Circuit.compile (Lineage.lineage q db))
  in
  let agree = values_equal cond_v circ_v in
  let contract =
    circuit_stats.Stats.conditionings = 0
    && circuit_stats.Stats.compilations = 1
    && circuit_stats.Stats.circuit_nodes > 0
  in
  let deterministic =
    values_equal circ_v rerun_v
    && Stats.normalize circuit_stats = Stats.normalize rerun_stats
  in
  if not agree then
    Printf.printf "!! %s n=%d: circuit/conditioning value MISMATCH\n" family n;
  if not contract then
    Printf.printf "!! %s n=%d: circuit instrumentation contract violated\n"
      family n;
  if not deterministic then
    Printf.printf "!! %s n=%d: circuit rerun NOT deterministic\n" family n;
  ( { family; n_endo = n; conditioning_s; circuit_s; circuit_stats;
      planned_nodes; unplanned_nodes },
    agree && contract && deterministic )

let circuit () =
  Report.heading "CIRCUIT"
    "d-DNNF knowledge-compilation backend vs conditioning engine (emits \
     BENCH_circuit.json)";
  let cap = cap () in
  (* Two roles: the star family is where compilation amortizes (lineage is
     a wide independent union, so the d-DNNF is linear-size and one
     compilation replaces n conditioned counts) and carries the gate at
     its largest size; the complete-bipartite q_RST family is adversarial
     for Shannon expansion (dense co-occurrence, so the circuit grows
     super-linearly while the conditioning counter exploits independent
     unions per branch) and is kept as correctness/telemetry coverage. *)
  let instances =
    Report.family_instances ~cap ~family:"star"
      ~label:"safe R(x),S(x,y) [star]" [ 8; 16; 32; 64; 96 ]
    @ Report.family_instances ~cap ~family:"bipartite"
        ~label:"unsafe q_RST [bipartite]" [ 2; 3; 4 ]
  in
  let results = List.map (fun (f, q, db) -> run_instance ~family:f q db) instances in
  let entries = List.map fst results in
  let all_ok = List.for_all snd results in
  Report.table
    ~headers:[ "query [instance family]"; "|Dn|"; "conditioning"; "circuit";
               "speedup"; "planned"; "unplanned"; "smoothing" ]
    (List.map
       (fun e ->
          [ e.family; string_of_int e.n_endo; Report.ms e.conditioning_s;
            Report.ms e.circuit_s;
            Printf.sprintf "%.1fx" (e.conditioning_s /. e.circuit_s);
            string_of_int e.planned_nodes;
            string_of_int e.unplanned_nodes;
            string_of_int e.circuit_stats.Stats.circuit_smoothing ])
       entries);
  (* plan-driven node gate: the bipartite n=24 circuit must land at or
     below half the recorded pre-planner baseline (skipped when the cap
     excludes the instance) *)
  let nodes_ok =
    match
      List.find_opt
        (fun e -> e.n_endo = 24 && e.family = "unsafe q_RST [bipartite]")
        entries
    with
    | None -> true
    | Some e ->
      let ok = e.planned_nodes * 2 <= bipartite24_baseline in
      Printf.printf
        "Bipartite n=24: %d planned nodes vs %d-node baseline (target: <= half) — %s\n"
        e.planned_nodes bipartite24_baseline (Report.ok ok);
      ok
  in
  let gate = if cap <> max_int then "skipped (capped smoke run)" else "enforced" in
  let largest =
    List.fold_left
      (fun best e ->
         match best with
         | Some b when b.n_endo >= e.n_endo -> best
         | _ -> Some e)
      None entries
  in
  let speedup_ok =
    match largest with
    | None -> false
    | Some e ->
      let s = e.conditioning_s /. e.circuit_s in
      Printf.printf
        "Largest size |Dn|=%d (%s): %.1fx circuit speedup (target: >= %.1fx) — %s\n"
        e.n_endo e.family s speedup_target
        (if gate = "enforced" then Report.ok (s >= speedup_target)
         else "gate " ^ gate);
      s >= speedup_target
  in
  let pass = all_ok && nodes_ok && (speedup_ok || gate <> "enforced") in
  write_json ~path:"BENCH_circuit.json" entries ~gate ~pass;
  Printf.printf "Wrote BENCH_circuit.json (%d entries).\n" (List.length entries);
  pass
