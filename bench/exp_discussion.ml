(* EXE1: Section 7 / Example E.1 — why constants obstruct the reductions.

   Shattering eliminates constants from a query (standard in the PQE
   literature), but it can destroy the connectivity hypotheses of the
   paper's FGMC ≤ SVC reductions: Example E.1's variable-connected query
   shatters into a disjunct that is not even connected. *)

let exe1 () =
  Report.heading "EXE1" "Example E.1: shattering breaks variable-connectivity";
  let q = Cq.parse "R(?x,?y), S(a,?x), S(?x,a), T(?x,?z)" in
  let c = Term.Sset.singleton "a" in
  Printf.printf "q = %s   (C = {a})\n" (Cq.to_string q);
  Printf.printf "variable-connected: %b\n\n" (Cq.is_variable_connected q);
  let disjuncts = Shatter.shatter q ~c in
  Report.table
    ~headers:[ "assignment"; "shattered disjunct"; "variable-connected?" ]
    (List.map
       (fun d ->
          let assignment =
            match Term.Smap.bindings d.Shatter.assignment with
            | [] -> "(none)"
            | bs -> String.concat ", " (List.map (fun (v, k) -> v ^ "↦" ^ k) bs)
          in
          [ assignment;
            Format.asprintf "%a" Shatter.pp_disjunct d;
            string_of_bool (Shatter.is_variable_connected d) ])
       disjuncts);
  (* semantic sanity: the shattered union is equivalent on random dbs *)
  let rounds = 30 in
  let ok = ref 0 in
  for seed = 1 to rounds do
    let r = Workload.rng (seed * 149) in
    let db =
      Workload.random_database r ~rels:[ ("R", 2); ("S", 2); ("T", 2) ]
        ~consts:[ "a"; "1"; "2" ] ~n_endo:(2 + Workload.int r 5) ~n_exo:0
    in
    let fs = Database.all db in
    if Cq.eval q fs = Shatter.eval disjuncts (Shatter.shatter_database fs ~c) then incr ok
  done;
  Printf.printf "\nsemantic equivalence on %d random databases: %d/%d\n" rounds !ok rounds;
  let disconnected =
    List.exists (fun d -> not (Shatter.is_variable_connected d)) disjuncts
  in
  Printf.printf
    "some disjunct is disconnected: %b — exactly the obstruction Section 7\n\
     identifies for extending the reductions to queries with constants.\n"
    disconnected;
  disconnected && !ok = rounds
