(* SCALE + ablations: the FP/#P-hard complexity separation made visible, and
   the design choices of DESIGN.md §5 measured. *)

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

(* SCALE: lineage-based counting vs subset brute force as |D| grows, for a
   safe (hierarchical) query and an unsafe one.  The expected *shape*: the
   lineage algorithm is polynomial on the safe query and only the brute
   force blows up; on the unsafe query, the lineage engine also degrades
   (its cache no longer collapses the state space) — matching the paper's
   FP vs #P-hard divide. *)
let scale () =
  Report.heading "SCALE" "Complexity separation: safe vs unsafe query, lineage vs brute force";
  let rows = ref [] in
  let run (family, q, db) =
    let _, t_lineage = Report.time_it (fun () -> Model_counting.fgmc_polynomial q db) in
    let t_brute =
      if Database.size_endo db <= 18 then
        snd (Report.time_it (fun () -> Model_counting.fgmc_polynomial_brute q db))
      else Float.nan
    in
    rows :=
      [ family; string_of_int (Database.size_endo db);
        Report.ms t_lineage;
        (if Float.is_nan t_brute then "(skipped: 2^n)" else Report.ms t_brute) ]
      :: !rows
  in
  List.iter run
    (Report.family_instances ~cap:max_int ~family:"star"
       ~label:"safe R(x),S(x,y) [star]" [ 6; 10; 14; 18; 40; 80; 160 ]
     @ Report.family_instances ~cap:max_int ~family:"bipartite"
         ~label:"unsafe q_RST [bipartite]" [ 2; 3; 4; 5; 6; 7 ]);
  Report.table ~headers:[ "query [instance family]"; "|Dn|"; "lineage"; "brute force" ]
    (List.rev !rows);
  Printf.printf
    "Shape check: the safe query scales to hundreds of facts; the unsafe one\n\
     grows combinatorially even for the compiled lineage — the FP/#P divide.\n";
  true

(* SAMPLE: the anytime sampling backend where exact SVC is out of
   reach — 10^3..10^4 endogenous facts, on the unsafe q_RST complete
   bipartite family and the safe star family.  Emits BENCH_sample.json
   (uploaded by the CI bench-smoke job).  The gate: on every instance
   the Monte-Carlo estimator reports a 95% CI half-width <= 1/20 within
   the draw budget.  A small-instance hybrid run must additionally equal
   the exact engine rationally — that check always runs.
   BENCH_SAMPLE_CAP bounds |Dn| on smoke runs, which skips the
   convergence gate (machine-readably, like BENCH_parallel.json). *)
let sample_cap () =
  match Sys.getenv_opt "BENCH_SAMPLE_CAP" with
  | None | Some "" -> max_int
  | Some s -> (try int_of_string s with Failure _ -> max_int)

let sample () =
  Report.heading "SAMPLE"
    "Anytime sampling backend at 10^3..10^4 facts (emits BENCH_sample.json)";
  let cap = sample_cap () in
  let epsilon = Rational.of_ints 1 20 in
  let cfg =
    Sample.config ~strategy:Sample.Monte_carlo ~seed:1 ~epsilon
      ~max_draws:4096 ()
  in
  let instances =
    Report.family_instances ~cap ~family:"bipartite"
      ~label:"unsafe q_RST [bipartite]" [ 32; 50; 70; 100 ]
    @ Report.family_instances ~cap ~family:"star"
        ~label:"safe R(x),S(x,y) [star]" [ 1000; 10000 ]
  in
  let rows = ref [] and entries = ref [] and all_converged = ref true in
  List.iter
    (fun (family, q, db) ->
       let n = Database.size_endo db in
       let e = Engine.create ~backend:(`Sample cfg) q db in
       let _, eval_s = Report.time_it (fun () -> Engine.svc_all e) in
       let st = Engine.stats e in
       let hw =
         match Engine.sample_report e with
         | Some r -> Rational.to_float r.Sample.max_half_width
         | None -> Float.nan
       in
       let converged = st.Stats.sample_converged in
       if not converged then all_converged := false;
       rows :=
         [ family; string_of_int n; string_of_int st.Stats.sample_draws;
           Printf.sprintf "%.4f" hw; Report.ms eval_s;
           (if converged then "yes" else "NO") ]
         :: !rows;
       entries :=
         Printf.sprintf
           "{\"family\":%S,\"n_endo\":%d,\"eval_ms\":%.1f,\
            \"max_hw_float\":%.5f,\"stats\":%s}"
           family n (eval_s *. 1000.) hw (Stats.to_json st)
         :: !entries)
    instances;
  Report.table
    ~headers:[ "query [instance family]"; "|Dn|"; "draws"; "95% CI hw";
               "eval"; "converged" ]
    (List.rev !rows);
  (* small-instance sanity: the hybrid estimator with every stratum under
     the exact cap must equal the exact engine rationally (|Dn|=15 needs
     exact_cap >= C(14,7) = 3432 to keep every stratum exact) *)
  let sanity_case = Workload.generate ~family:"bipartite" ~seed:0 ~size:3 in
  let q_sanity = sanity_case.Workload.query
  and db = sanity_case.Workload.db in
  let all_exact = Sample.config ~exact_cap:4000 () in
  let hybrid =
    Engine.svc_all (Engine.create ~backend:(`Sample all_exact) q_sanity db)
  and exact = Engine.svc_all (Engine.create ~backend:`Conditioning q_sanity db) in
  let sanity =
    List.length hybrid = List.length exact
    && List.for_all2
         (fun (f1, v1) (f2, v2) -> Fact.equal f1 f2 && Rational.equal v1 v2)
         hybrid exact
  in
  Printf.printf "Hybrid all-strata-exact = exact engine (|Dn|=%d): %s\n"
    (Database.size_endo db) (Report.ok sanity);
  let skipped =
    Pool.bench_gate ~required:1 ~host:(Pool.recommended_domains ())
      ~cap:(if cap = max_int then None else Some cap)
  in
  let gate =
    match skipped with
    | Some _ -> "skipped (capped smoke run)"
    | None -> "enforced"
  in
  let pass = sanity && (!all_converged || skipped <> None) in
  let oc = open_out "BENCH_sample.json" in
  output_string oc
    (Printf.sprintf
       "{\"experiment\":\"sample\",\"cap\":%s,\"strategy\":\"mc\",\"seed\":1,\
        \"epsilon\":\"1/20\",\"confidence\":\"19/20\",\"max_draws\":4096,\
        \"hybrid_exact_sanity\":%b,\"gate\":%S,\"skipped\":%s,\"pass\":%b,\
        \"entries\":[%s]}\n"
       (if cap = max_int then "null" else string_of_int cap)
       sanity gate
       (match skipped with None -> "null" | Some r -> Printf.sprintf "%S" r)
       pass
       (String.concat "," (List.rev !entries)));
  close_out oc;
  Printf.printf "Wrote BENCH_sample.json (%d entries).\n" (List.length !entries);
  pass

let ablate_compile () =
  Report.heading "ABL-COMPILE"
    "Ablation: decomposed+memoized Shannon expansion vs naive expansion";
  (* a conjunction of vocabulary-disjoint subqueries, one star per conjunct:
     the lineage is an AND of variable-disjoint ORs, so the decomposition
     rule turns the count into a product while naive Shannon expansion pays
     the product of the branch spaces *)
  let multi_star ~stars ~spokes =
    let facts =
      List.concat
        (List.init stars (fun s ->
             let hub = Printf.sprintf "hub%d" s in
             Fact.make (Printf.sprintf "R%d" s) [ hub ]
             :: List.init spokes (fun i ->
                 Fact.make (Printf.sprintf "S%d" s) [ hub; Printf.sprintf "n%d_%d" s i ])))
    in
    Database.make ~endo:facts ~exo:[]
  in
  let conj_query stars =
    let conjunct s = Query_parse.parse (Printf.sprintf "R%d(?x), S%d(?x,?y)" s s) in
    List.fold_left
      (fun acc s -> Query.And (acc, conjunct s))
      (conjunct 0)
      (List.init (stars - 1) (fun i -> i + 1))
  in
  let rows = ref [] in
  List.iter
    (fun stars ->
       let db = multi_star ~stars ~spokes:6 in
       let q = conj_query stars in
       let phi = Lineage.lineage q db in
       let universe = Database.endo_list db in
       let p1, t_memo = Report.time_it (fun () -> Compile.size_polynomial ~universe phi) in
       let p2, t_naive =
         if stars <= 5 then begin
           let p, t =
             Report.time_it (fun () -> Compile.size_polynomial_naive ~universe phi)
           in
           (Some p, t)
         end
         else (None, Float.nan)
       in
       (match p2 with Some p2 -> assert (Poly.Z.equal p1 p2) | None -> ());
       rows :=
         [ string_of_int (Database.size_endo db); Report.ms t_memo;
           (if Float.is_nan t_naive then "(skipped: exponential)" else Report.ms t_naive) ]
         :: !rows)
    [ 1; 2; 3; 4; 5; 8 ];
  Report.table
    ~headers:[ "|Dn| (disjoint stars)"; "decomp+memo"; "naive Shannon" ]
    (List.rev !rows);
  Printf.printf
    "On variable-disjoint components the decomposition rule is the whole\n\
     difference between polynomial and exponential compilation.\n";
  true

let ablate_poly () =
  Report.heading "ABL-POLY" "Ablation: one generating polynomial vs per-size recounts";
  let db = Workload.rst_gadget ~rows:4 ~extra_exo:false () in
  let n = Database.size_endo db in
  let _, t_once = Report.time_it (fun () -> Model_counting.fgmc_polynomial qrst db) in
  let _, t_per_size =
    Report.time_it (fun () ->
        for j = 0 to n do
          ignore (Model_counting.fgmc qrst db j)
        done)
  in
  Report.table ~headers:[ "strategy"; "time" ]
    [ [ "one polynomial, all sizes"; Report.ms t_once ];
      [ Printf.sprintf "recount per size (%d compilations)" (n + 1); Report.ms t_per_size ] ];
  true

let ablate_shapley () =
  Report.heading "ABL-SHAPLEY"
    "Ablation: SVC via FGMC polynomial vs Eq. 2 subset sum (unsafe q_RST), and the PTIME route (safe query)";
  let rows = ref [] in
  List.iter
    (fun k ->
       let db = Workload.rst_gadget ~rows:k ~extra_exo:false () in
       let mu = List.hd (Database.endo_list db) in
       let v1, t_fgmc = Report.time_it (fun () -> Svc.svc qrst db mu) in
       let v2, t_brute =
         if Database.size_endo db <= 16 then
           let v, t = Report.time_it (fun () -> Svc.svc_brute qrst db mu) in
           (Some v, t)
         else (None, Float.nan)
       in
       (match v2 with Some v2 -> assert (Rational.equal v1 v2) | None -> ());
       rows :=
         [ string_of_int (Database.size_endo db); Report.ms t_fgmc;
           (if Float.is_nan t_brute then "(skipped: 2^n)" else Report.ms t_brute) ]
         :: !rows)
    [ 2; 3; 4; 5 ];
  Report.table ~headers:[ "|Dn| (q_RST)"; "via FGMC (Claim A.1)"; "Eq. 2 subset sum" ]
    (List.rev !rows);
  (* the FP side of the [11] dichotomy: guaranteed-PTIME SVC for
     hierarchical sjf-CQs via the safe plan *)
  Report.subheading "PTIME SVC on the safe side (Svc.svc_hierarchical)";
  let q_safe_cq = Cq.parse "R(?x), S(?x,?y)" in
  let rows2 = ref [] in
  List.iter
    (fun spokes ->
       let db = Workload.star_join ~spokes in
       let mu = Fact.make "R" [ "hub" ] in
       let _, t = Report.time_it (fun () -> Svc.svc_hierarchical q_safe_cq db mu) in
       rows2 := [ string_of_int (Database.size_endo db); Report.ms t ] :: !rows2)
    [ 20; 60; 120 ];
  Report.table ~headers:[ "|Dn| (star)"; "svc_hierarchical" ] (List.rev !rows2);
  true

let reduction_scaling () =
  Report.heading "RED-SCALE"
    "Scaling of the Lemma 4.1 reduction: n+1 SVC calls on growing A^i instances";
  Printf.printf
    "Polynomial-time Turing reduction made concrete: total work grows\n\
     polynomially in |Dn| (each of the n+1 oracle calls runs on an instance\n\
     of size ≤ 2n+|S|).\n";
  let rows = ref [] in
  List.iter
    (fun k ->
       (* a safe instance family so that the SVC oracle itself stays fast;
          measuring the reduction's own overhead *)
       let q = Query_parse.parse "R(?x), S(?x,?y)" in
       let db = Workload.star_join ~spokes:k in
       let svc = Oracle.svc_of q in
       let p, t = Report.time_it (fun () -> Fgmc_to_svc.lemma41_auto ~svc ~query:q db) in
       (match p with
        | Some poly -> assert (Poly.Z.equal poly (Model_counting.fgmc_polynomial q db))
        | None -> assert false);
       rows :=
         [ string_of_int (Database.size_endo db); string_of_int (Oracle.calls svc);
           Report.ms t ]
         :: !rows)
    [ 4; 8; 12; 16; 20 ];
  Report.table ~headers:[ "|Dn|"; "SVC oracle calls"; "total time" ] (List.rev !rows);
  true

let ablate_safeplan () =
  Report.heading "ABL-SAFEPLAN"
    "Ablation: lifted safe-plan FGMC vs generic lineage compilation";
  (* a two-level hierarchical query on data where the generic engine's
     heuristics still work but pay compilation overhead; the safe plan has
     a polynomial guarantee *)
  let q = Cq.parse "R(?x), S(?x,?y)" in
  let instance hubs spokes =
    let facts =
      List.concat
        (List.init hubs (fun h ->
             let hub = Printf.sprintf "h%d" h in
             Fact.make "R" [ hub ]
             :: List.init spokes (fun i ->
                 Fact.make "S" [ hub; Printf.sprintf "n%d_%d" h i ])))
    in
    Database.make ~endo:facts ~exo:[]
  in
  let rows = ref [] in
  List.iter
    (fun (hubs, spokes) ->
       let db = instance hubs spokes in
       let p1, t_plan = Report.time_it (fun () -> Safe_plan.fgmc_polynomial q db) in
       let p2, t_lineage =
         Report.time_it (fun () -> Model_counting.fgmc_polynomial (Query.Cq q) db)
       in
       assert (Poly.Z.equal p1 p2);
       rows :=
         [ string_of_int (Database.size_endo db); Report.ms t_plan; Report.ms t_lineage ]
         :: !rows)
    [ (2, 10); (4, 20); (8, 30); (12, 40) ];
  Report.table ~headers:[ "|Dn| (multi-star)"; "safe plan"; "lineage engine" ]
    (List.rev !rows);
  true

let ablate_homsearch () =
  Report.heading "ABL-HOMSEARCH" "Ablation: fail-first vs syntactic atom ordering";
  (* a query whose syntactic order is adversarial: the most selective atom
     is listed last *)
  let atoms = Cq.atoms (Cq.parse "S(?x,?y), S(?y,?z), S(?z,?w), R(?w)") in
  let r = Workload.rng 2718 in
  let db =
    Workload.random_database r ~rels:[ ("S", 2) ] ~consts:(List.init 40 string_of_int)
      ~n_endo:500 ~n_exo:0
  in
  let facts = Fact.Set.add (Fact.make "R" [ "0" ]) (Database.all db) in
  let count ordering =
    let n = ref 0 in
    Homomorphism.iter_valuations ~ordering ~into:facts atoms (fun _ -> incr n);
    !n
  in
  let n1, t_ff = Report.time_it (fun () -> count Homomorphism.Fail_first) in
  let n2, t_syn = Report.time_it (fun () -> count Homomorphism.Syntactic) in
  assert (n1 = n2);
  Report.table ~headers:[ "ordering"; "valuations found"; "time" ]
    [ [ "fail-first (selective atom first)"; string_of_int n1; Report.ms t_ff ];
      [ "syntactic (adversarial order)"; string_of_int n2; Report.ms t_syn ] ];
  true
