(* LEM61 / LEM62 / LEM63 / PROP62 / PROP63 / SEC62: Section 6 variants. *)

let fct = Fact.make

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let lem61 () =
  Report.heading "LEM61" "Lemma 6.1: FGMC from 2^k FMC calls";
  let rows = ref [] in
  let all_ok = ref true in
  for k = 0 to 4 do
    let r = Workload.rng (k + 5) in
    let endo =
      List.init 3 (fun i -> fct "S" [ string_of_int i; string_of_int (i + 1) ])
    in
    let exo =
      List.init k (fun i -> if Workload.bool r then fct "R" [ string_of_int i ] else fct "T" [ string_of_int i ])
    in
    let db = Database.make ~endo ~exo in
    let o = Oracle.fgmc_of qrst in
    let v = Endogenous.fgmc_via_fmc ~fmc:o db 1 in
    let expected = Model_counting.fgmc_brute qrst db 1 in
    let ok = Bigint.equal v expected && Oracle.calls o = 1 lsl k in
    if not ok then all_ok := false;
    rows :=
      [ string_of_int k; string_of_int (1 lsl k); string_of_int (Oracle.calls o);
        Report.ok ok ]
      :: !rows
  done;
  Report.table ~headers:[ "k = |Dx|"; "2^k"; "measured FMC calls"; "correct" ]
    (List.rev !rows);
  !all_ok

let lem62 ~rounds () =
  Report.heading "LEM62"
    "Lemma 6.2: FMC ≤ SVC^n for queries with an unshared constant";
  (* the oracle wrapper *fails* if any constructed database has exogenous
     facts, so a passing run certifies the purely-endogenous invariant *)
  let q = Query_parse.parse "R(?x), S(?x,?y)" in
  Term.reset_fresh ();
  let island = Option.get (Query.fresh_support q) in
  let pivot =
    Term.Sset.min_elt
      (Term.Sset.filter
         (fun c ->
            Fact.Set.cardinal
              (Fact.Set.filter (fun f -> Term.Sset.mem c (Fact.consts f)) island)
            = 1)
         (Fact.Set.consts island))
  in
  let ok = ref 0 in
  for seed = 1 to rounds do
    let r = Workload.rng (seed * 41) in
    let db =
      Workload.random_database r ~rels:[ ("R", 1); ("S", 2) ] ~consts:[ "1"; "2"; "3" ]
        ~n_endo:(2 + Workload.int r 4) ~n_exo:0
    in
    let o = Oracle.svc_endo_only (Oracle.svc_of q) in
    let p = Fgmc_to_svc.lemma41 ~svc:o ~query:q ~island ~pivot db in
    if Poly.Z.equal p (Model_counting.fgmc_polynomial q db) then incr ok
  done;
  Printf.printf
    "instances: %d/%d correct; the SVC oracle asserted |Dx| = 0 on every call\n"
    !ok rounds;
  !ok = rounds

let lem63 ~rounds () =
  Report.heading "LEM63" "Lemma 6.3: singleton supports attain the maximum Shapley value";
  let queries =
    [ "ucq: R(?x) | S(?x,?y)"; "R(?x), S(?x,?y)"; "ucq: A(?x) | R(?x), S(?x,?y), T(?y)" ]
  in
  let rows = ref [] in
  let all_ok = ref true in
  List.iter
    (fun qs ->
       let q = Query_parse.parse qs in
       let ok = ref 0 in
       for seed = 1 to rounds do
         let r = Workload.rng (seed * 97) in
         let db =
           Workload.random_database r
             ~rels:[ ("R", 1); ("S", 2); ("T", 1); ("A", 1) ]
             ~consts:[ "1"; "2" ] ~n_endo:(2 + Workload.int r 4) ~n_exo:(Workload.int r 2)
         in
         if Max_svc.singleton_support_is_max q db then incr ok
       done;
       if !ok <> rounds then all_ok := false;
       rows := [ qs; Printf.sprintf "%d/%d" !ok rounds ] :: !rows)
    queries;
  Report.table ~headers:[ "query"; "property holds" ] (List.rev !rows);
  !all_ok

let prop62 ~rounds () =
  Report.heading "PROP62" "Proposition 6.2: FGMC ≤ max-SVC";
  let ok = ref 0 and calls = ref 0 in
  for seed = 1 to rounds do
    let r = Workload.rng (seed * 211) in
    let db =
      Workload.random_database r ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
        ~consts:[ "1"; "2"; "3" ] ~n_endo:(2 + Workload.int r 3) ~n_exo:(Workload.int r 2)
    in
    let o = Oracle.max_svc_of qrst in
    (match Max_svc_red.reduce_auto ~max_svc:o ~query:qrst db with
     | Some p when Poly.Z.equal p (Model_counting.fgmc_polynomial qrst db) -> incr ok
     | _ -> ());
    calls := !calls + Oracle.calls o
  done;
  Printf.printf "instances: %d/%d correct, %d max-SVC oracle calls in total\n" !ok rounds !calls;
  !ok = rounds

let prop63 ~rounds () =
  Report.heading "PROP63" "Proposition 6.3: SVC^const ≡ FGMC^const";
  let q = Query_parse.parse "R(?x,?y), T(?y,?z)" in
  let forward = ref 0 and backward = ref 0 in
  for seed = 1 to rounds do
    let r = Workload.rng (seed * 389) in
    let g =
      Workload.random_graph r ~labels:[ "R"; "T" ] ~nodes:[ "1"; "2"; "3"; "4" ]
        ~n_endo:5 ~n_exo:0
    in
    let fs = Database.all g in
    let consts = Term.Sset.elements (Fact.Set.consts fs) in
    if consts <> [] then begin
      let endo_consts = Term.Sset.of_list (List.filteri (fun i _ -> i < 3) consts) in
      let inst = Const_svc.make_instance ~facts:fs ~endo_consts in
      (* forward: FGMC^const through the SVC^const oracle *)
      let p =
        Const_red.fgmc_const_via_svc_const ~svc_const:(Oracle.svc_const_of q) ~query:q inst
      in
      if Poly.Z.equal p (Const_svc.fgmc_const_polynomial_brute q inst) then incr forward;
      (* backward: SVC^const through the FGMC^const oracle *)
      let c = Term.Sset.min_elt endo_consts in
      let v =
        Const_red.svc_const_via_fgmc_const ~fgmc_const:(Const_red.fgmc_const_oracle q) inst c
      in
      if Rational.equal v (Const_svc.svc_const q inst c) then incr backward
    end
    else begin
      incr forward;
      incr backward
    end
  done;
  Report.table ~headers:[ "direction"; "correct" ]
    [ [ "FGMC^const ≤ SVC^const"; Printf.sprintf "%d/%d" !forward rounds ];
      [ "SVC^const ≤ FGMC^const"; Printf.sprintf "%d/%d" !backward rounds ] ];
  !forward = rounds && !backward = rounds

let appendix_d ~rounds () =
  Report.heading "APPD"
    "Appendix D: Lemma D.1 (purely endogenous, decomposable) and D.2 (1RA¬ examples)";
  (* Lemma D.1 *)
  Report.subheading "Lemma D.1: FMC ≤ SVC^n for decomposable queries with unshared constants";
  let q1 = Query_parse.parse "R(?x), S(?x,?y)" in
  let q2 = Query_parse.parse "T(?u,?v)" in
  let qand = Query.And (q1, q2) in
  let d1_ok = ref 0 in
  for seed = 1 to rounds do
    let r = Workload.rng (seed * 823) in
    let db =
      Workload.random_database r ~rels:[ ("R", 1); ("S", 2); ("T", 2) ]
        ~consts:[ "1"; "2"; "3" ] ~n_endo:(2 + Workload.int r 4) ~n_exo:0
    in
    let svc = Oracle.svc_endo_only (Oracle.svc_of qand) in
    if
      Poly.Z.equal
        (Fgmc_to_svc.lemma_d1 ~svc ~q1 ~q2 db)
        (Model_counting.fgmc_polynomial qand db)
    then incr d1_ok
  done;
  Printf.printf
    "instances: %d/%d correct; the oracle asserted |Dx| = 0 on every call\n" !d1_ok rounds;
  (* Examples D.1 / D.2 via Lemma D.2 *)
  Report.subheading "Lemma D.2 on the sjf-1RA¬ examples (beyond sjf-CQ¬)";
  let examples =
    [ ("Example D.1", "D(?x), S(?x,?y), A(?y), !(B(?y) & !C(?y))",
       [ ("D", 1); ("S", 2); ("A", 1); ("B", 1); ("C", 1) ]);
      ("Example D.2", "S(?x,?y), !(A(?x) & B(?y))", [ ("S", 2); ("A", 1); ("B", 1) ]) ]
  in
  let rows = ref [] in
  let all_ok = ref (!d1_ok = rounds) in
  List.iter
    (fun (label, qs, rels) ->
       let g = Gcq.parse qs in
       let ok = ref 0 in
       for seed = 1 to rounds do
         let r = Workload.rng (seed * 1187) in
         let db =
           Workload.random_database r ~rels ~consts:[ "1"; "2" ]
             ~n_endo:(2 + Workload.int r 3) ~n_exo:(Workload.int r 2)
         in
         let q_tilde, poly =
           Negation_red.lemma_d2 ~svc:(Oracle.svc_of (Query.Gcq g)) ~q:g db
         in
         if Poly.Z.equal poly (Model_counting.fgmc_polynomial q_tilde db) then incr ok
       done;
       if !ok <> rounds then all_ok := false;
       rows := [ label; qs; Printf.sprintf "%d/%d" !ok rounds ] :: !rows)
    examples;
  Report.table ~headers:[ "example"; "query"; "FGMC via SVC_q" ] (List.rev !rows);
  !all_ok

let sec62 ~rounds () =
  Report.heading "SEC62" "Section 6.2 / Proposition 6.1: sjf-CQ¬ reductions";
  let cases =
    [ "R(?x), S(?x,?y), !T(?y)";
      "R(?x), S(?x,?y), !W(?x)";
      "R(?x), S(?x,?y), T(?u), !W(?y)" ]
  in
  let rows = ref [] in
  let all_ok = ref true in
  List.iter
    (fun qs ->
       let qn = Cqneg.parse qs in
       let ok = ref 0 in
       let counted = ref "" in
       for seed = 1 to rounds do
         let r = Workload.rng (seed * 503) in
         let db =
           Workload.random_database r
             ~rels:[ ("R", 1); ("S", 2); ("T", 1); ("W", 1) ]
             ~consts:[ "1"; "2" ] ~n_endo:(2 + Workload.int r 3) ~n_exo:(Workload.int r 2)
         in
         let q_tilde, p =
           Negation_red.prop61 ~svc:(Oracle.svc_of (Query.Cqneg qn)) ~q:qn db
         in
         counted := Query.to_string q_tilde;
         if Poly.Z.equal p (Model_counting.fgmc_polynomial q_tilde db) then incr ok
       done;
       if !ok <> rounds then all_ok := false;
       rows := [ qs; !counted; Printf.sprintf "%d/%d" !ok rounds ] :: !rows)
    cases;
  Report.table ~headers:[ "sjf-CQ¬ q"; "counted q̃"; "FGMC via SVC_q" ] (List.rev !rows);
  !all_ok
