(* FIG1A / FIG1B / PROP33: the reduction arrows and the dichotomy landscape. *)

let fct = Fact.make

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let random_db seed =
  let r = Workload.rng seed in
  Workload.random_database r
    ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
    ~consts:[ "1"; "2"; "3" ]
    ~n_endo:(2 + Workload.int r 4)
    ~n_exo:(Workload.int r 3)

(* Each arrow of Figure 1a: run the reduction on [rounds] random instances,
   check against brute force, accumulate oracle calls.  Each arrow gets a
   disabled tracer as a pure metrics registry: the oracle wrappers
   register their [oracle.*] call counters in it, and the per-arrow
   total is the registry sum — no private call counts. *)
type arrow_result = {
  arrow : string;
  instances : int;
  correct : int;
  oracle_calls : int;
}

let oracle_total tel =
  List.fold_left
    (fun acc (name, m) ->
       match m with
       | Telemetry.Counter c when String.starts_with ~prefix:"oracle." name ->
         acc + Telemetry.Counter.value c
       | _ -> acc)
    0 (Telemetry.metrics tel)

let run_arrow ~arrow ~rounds ~run =
  let tel = Telemetry.disabled () in
  let correct = ref 0 in
  for seed = 1 to rounds do
    let db = random_db (seed * 7919) in
    if run tel db then incr correct
  done;
  { arrow; instances = rounds; correct = !correct; oracle_calls = oracle_total tel }

let fig1a ~rounds () =
  Report.heading "FIG1A" "Figure 1a: reduction arrows, validated on random instances";
  Printf.printf
    "Every arrow A -> B is run as a literal oracle algorithm: A computed via\n\
     unit-cost calls to B, then compared against an independent brute-force\n\
     computation of A. 'calls' is the total number of oracle invocations.\n";
  let arrows =
    [
      run_arrow ~arrow:"SVC <= FGMC (Claim A.1)" ~rounds ~run:(fun tel db ->
          match Database.endo_list db with
          | [] -> true
          | mu :: _ ->
            let o = Oracle.fgmc_of ~tel qrst in
            let v = Svc_to_fgmc.svc ~fgmc:o db mu in
            Rational.equal v (Svc.svc_brute qrst db mu));
      run_arrow ~arrow:"FGMC <= SPPQE (Claim A.2)" ~rounds ~run:(fun tel db ->
          let o = Oracle.sppqe_of ~tel qrst in
          let p = Fgmc_sppqe.fgmc_via_sppqe ~sppqe:o db in
          Poly.Z.equal p (Model_counting.fgmc_polynomial_brute qrst db));
      run_arrow ~arrow:"SPPQE <= FGMC (Claim A.2)" ~rounds ~run:(fun tel db ->
          let o = Oracle.fgmc_of ~tel qrst in
          let pr = Fgmc_sppqe.sppqe_via_fgmc ~fgmc:o db (Rational.of_ints 2 5) in
          Rational.equal pr (Pqe.sppqe qrst db (Rational.of_ints 2 5)));
      run_arrow ~arrow:"FGMC <= SVC (Lemma 4.1)" ~rounds ~run:(fun tel db ->
          let o = Oracle.svc_of ~tel qrst in
          match Fgmc_to_svc.lemma41_auto ~svc:o ~query:qrst db with
          | Some p -> Poly.Z.equal p (Model_counting.fgmc_polynomial qrst db)
          | None -> false);
      run_arrow ~arrow:"FGMC_q <= SVC_{q^q'} (Lemma 4.3)" ~rounds ~run:(fun tel db ->
          let q' = Query_parse.parse "U(?u,?v)" in
          let qand = Query.And (qrst, q') in
          let db = Database.add_endo (fct "U" [ "u1"; "u2" ]) db in
          let o = Oracle.svc_of ~tel qand in
          let p = Fgmc_to_svc.lemma43 ~svc:o ~q:qrst ~q' db in
          Poly.Z.equal p (Model_counting.fgmc_polynomial qrst db));
      run_arrow ~arrow:"FGMC <= SVC (Lemma 4.4)" ~rounds ~run:(fun tel db ->
          let q1 = Query_parse.parse "R(?x), S(?x,?y)" in
          let q2 = Query_parse.parse "U(?u,?v)" in
          let qand = Query.And (q1, q2) in
          let db = Database.add_endo (fct "U" [ "u1"; "u2" ]) db in
          let o = Oracle.svc_of ~tel qand in
          let p = Fgmc_to_svc.lemma44 ~svc:o ~q1 ~q2 db in
          Poly.Z.equal p (Model_counting.fgmc_polynomial qand db));
      run_arrow ~arrow:"FGMC <= max-SVC (Prop 6.2)" ~rounds ~run:(fun tel db ->
          let o = Oracle.max_svc_of ~tel qrst in
          match Max_svc_red.reduce_auto ~max_svc:o ~query:qrst db with
          | Some p -> Poly.Z.equal p (Model_counting.fgmc_polynomial qrst db)
          | None -> false);
      run_arrow ~arrow:"FGMC <= 2^k FMC (Lemma 6.1)" ~rounds ~run:(fun tel db ->
          let o = Oracle.fgmc_of ~tel qrst in
          let p = Endogenous.fgmc_polynomial_via_fmc ~fmc:o db in
          Poly.Z.equal p (Model_counting.fgmc_polynomial qrst db));
      run_arrow ~arrow:"SVC^n <= FMC (Cor 6.1)" ~rounds ~run:(fun tel db ->
          (* purely endogenous variant of the instance *)
          let dbn =
            Database.of_sets
              ~endo:(Fact.Set.union (Database.endo db) (Database.exo db))
              ~exo:Fact.Set.empty
          in
          match Database.endo_list dbn with
          | [] -> true
          | mu :: _ ->
            let o = Oracle.fgmc_of ~tel qrst in
            let v = Svc_to_fgmc.svc_endo ~fgmc:o dbn mu in
            Rational.equal v (Svc.svc_brute qrst dbn mu));
      run_arrow ~arrow:"GMC <= PQE(1/2;1)" ~rounds ~run:(fun tel db ->
          let o = Mc_pqe_half.pqe_half_one_of ~tel qrst in
          let v = Mc_pqe_half.gmc_via_half_one ~pqe:o db in
          Bigint.equal v (Model_counting.gmc qrst db));
      run_arrow ~arrow:"PQE(1/2;1) <= GMC" ~rounds ~run:(fun tel db ->
          let o = Mc_pqe_half.gmc_of ~tel qrst in
          let v = Mc_pqe_half.half_one_via_gmc ~gmc:o db in
          Rational.equal v (Pqe.pqe_half_one qrst db));
      run_arrow ~arrow:"FMC <= SVC^n (Lemma 6.2)" ~rounds ~run:(fun tel db ->
          let q = Query_parse.parse "R(?x), S(?x,?y)" in
          let dbn =
            Database.of_sets
              ~endo:(Fact.Set.union (Database.endo db) (Database.exo db))
              ~exo:Fact.Set.empty
          in
          Term.reset_fresh ();
          let island = Option.get (Query.fresh_support q) in
          let pivot =
            Term.Sset.min_elt
              (Term.Sset.filter
                 (fun c ->
                    Fact.Set.cardinal
                      (Fact.Set.filter (fun f -> Term.Sset.mem c (Fact.consts f)) island)
                    = 1)
                 (Fact.Set.consts island))
          in
          (* the endo-only guard's own count equals the inner [oracle.svc]
             registry count: every guarded call delegates exactly once *)
          let o = Oracle.svc_endo_only (Oracle.svc_of ~tel q) in
          let p = Fgmc_to_svc.lemma41 ~svc:o ~query:q ~island ~pivot dbn in
          Poly.Z.equal p (Model_counting.fgmc_polynomial q dbn));
    ]
  in
  Report.table
    ~headers:[ "arrow"; "instances"; "correct"; "oracle calls" ]
    (List.map
       (fun r ->
          [ r.arrow; string_of_int r.instances;
            Printf.sprintf "%d/%d" r.correct r.instances;
            string_of_int r.oracle_calls ])
       arrows);
  List.for_all (fun r -> r.correct = r.instances) arrows

let query_corpus =
  [
    ("sjf-CQ", "R(?x), S(?x,?y)");
    ("sjf-CQ", "R(?x), S(?x,?y), T(?y)");
    ("sjf-CQ", "R(?x), S(?x,?y), U(?x,?y,?z)");
    ("sjf-CQ", "A(?x,?y), B(?y,?z), C(?z,?w)");
    ("CQ (const-free)", "R(?x,?y), R(?y,?z)");
    ("CQ (const-free)", "R(?x), S(?x,?y), S(?y,?z)");
    ("UCQ (connected)", "ucq: R(?x), S(?x,?y) | S(?x,?y), T(?y)");
    ("UCQ", "ucq: R(?x) | S(?x,?y)");
    ("UCQ", "ucq: A(?x) | R(?x), S(?x,?y), T(?y)");
    ("RPQ", "rpq: A(s,t)");
    ("RPQ", "rpq: (AB)(s,t)");
    ("RPQ", "rpq: (ABC)(s,t)");
    ("RPQ", "rpq: (AB*)(s,t)");
    ("RPQ", "rpq: (A+BC)(s,t)");
    ("CRPQ (unbounded)", "crpq: (AAA*)(?x,?y)");
    ("CRPQ (bounded sjf)", "crpq: A(?x,?y)");
    ("cc-disjoint CRPQ", "crpq: (ABC)(?x,?y), D(?u,?v)");
    ("sjf-CQ¬", "cqneg: R(?x), S(?x,?y), !W(?x,?y)");
    ("sjf-CQ¬", "cqneg: R(?x), S(?x,?y), !T(?y)");
    ("conjunction", "R(?x), S(?x,?y)");
  ]

let fig1b () =
  Report.heading "FIG1B" "Figure 1b: FP / #P-hard dichotomy landscape";
  Printf.printf
    "Classification of a query corpus with the justifying rule.  'unknown'\n\
     marks queries outside the classes decided by the paper (never a wrong\n\
     answer).  FP verdicts on UCQ-expressible queries carry constructive\n\
     evidence: the lifted engine evaluates them exactly.\n";
  let evidence q j =
    match j.Classify.verdict with
    | Classify.FP ->
      (match Classify.to_ucq_opt q with
       | Some u ->
         let r = Workload.rng 2024 in
         (* arities straight from the query's own atoms *)
         let rels =
           List.sort_uniq compare
             (List.concat_map
                (fun c -> List.map (fun a -> (Atom.rel a, Atom.arity a)) (Cq.atoms c))
                (Ucq.disjuncts u))
         in
         (try
            let db =
              Workload.random_database r ~rels ~consts:[ "s"; "t"; "1"; "2" ]
                ~n_endo:5 ~n_exo:2
            in
            (match Lifted.ucq u db with
             | Some p
               when Poly.Z.equal p
                   (Model_counting.fgmc_polynomial_brute (Query.Ucq u) db) ->
               "lifted ✓"
             | Some _ -> "MISMATCH"
             | None -> "lifted stuck")
          with _ -> "-")
       | None -> "-")
    | Classify.SharpP_hard -> "reduction"
    | Classify.Unknown -> "-"
  in
  Report.table
    ~headers:[ "class"; "query"; "verdict"; "evidence"; "rule" ]
    (List.map
       (fun (cls, qs) ->
          let q = Query_parse.parse qs in
          let j = Classify.classify q in
          [ cls; qs; Classify.verdict_to_string j.Classify.verdict; evidence q j;
            j.Classify.rule ])
       query_corpus);
  true

let prop33 () =
  Report.heading "PROP33" "Proposition 3.3: oracle-call budgets of the easy arrows";
  let db = random_db 99 in
  let n = Database.size_endo db in
  let rows = ref [] in
  let add name expected f =
    let calls = f () in
    rows := [ name; string_of_int n; expected; string_of_int calls; Report.ok true ] :: !rows
  in
  add "SVC <= FGMC (Claim A.1)" "2n" (fun () ->
      let o = Oracle.fgmc_of qrst in
      (match Database.endo_list db with
       | mu :: _ -> ignore (Svc_to_fgmc.svc ~fgmc:o db mu)
       | [] -> ());
      Oracle.calls o);
  add "FGMC <= SPPQE (Claim A.2)" "n+1" (fun () ->
      let o = Oracle.sppqe_of qrst in
      ignore (Fgmc_sppqe.fgmc_via_sppqe ~sppqe:o db);
      Oracle.calls o);
  add "SPPQE <= FGMC (Claim A.2)" "n+1" (fun () ->
      let o = Oracle.fgmc_of qrst in
      ignore (Fgmc_sppqe.sppqe_via_fgmc ~fgmc:o db Rational.half);
      Oracle.calls o);
  add "FGMC <= FMC (Lemma 6.1, one size)" "2^k" (fun () ->
      let o = Oracle.fgmc_of qrst in
      ignore (Endogenous.fgmc_via_fmc ~fmc:o db 1);
      Oracle.calls o);
  Report.table ~headers:[ "reduction"; "n"; "budget"; "measured calls"; "status" ]
    (List.rev !rows);
  Printf.printf "(k = %d exogenous facts)\n" (Fact.Set.cardinal (Database.exo db));
  true
