(* FIG2 / COR41 / COR43 / COR45 / COR46: the constructions and the
   dichotomies they yield. *)

let fct = Fact.make

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

(* FIG2: audit the Aⁱ construction by re-deriving Lemma 5.1's case analysis
   exhaustively on a small instance. *)
let fig2 () =
  Report.heading "FIG2" "Figure 2: the A^i construction, audited";
  Term.reset_fresh ();
  let db =
    Database.make
      ~endo:[ fct "R" [ "1" ]; fct "S" [ "1"; "2" ]; fct "T" [ "2" ] ]
      ~exo:[ fct "T" [ "9" ] ]
  in
  let support = Option.get (Query.fresh_support qrst) in
  let c = Query.consts qrst in
  let pivot = Term.Sset.min_elt (Term.Sset.diff (Fact.Set.consts support) c) in
  let s0 = Fact.Set.filter (fun f -> Term.Sset.mem pivot (Fact.consts f)) support in
  let s_minus = Fact.Set.diff support s0 in
  Printf.printf "query      : %s\n" (Query.to_string qrst);
  Printf.printf "support S  : %s\n" (Format.asprintf "%a" Fact.Set.pp support);
  Printf.printf "pivot a    : %s   S0 = %d fact(s), S- = %d fact(s)\n" pivot
    (Fact.Set.cardinal s0) (Fact.Set.cardinal s_minus);
  (* Reconstruct A^i the way the engine does, and check the invariants by
     running the oracle-call trace through a counting wrapper. *)
  let trace = ref [] in
  let svc =
    Oracle.make (fun (adb, mu) ->
        (* structural invariants of the construction *)
        let endo = Database.endo adb and exo = Database.exo adb in
        assert (Fact.Set.mem mu endo);
        assert (Fact.Set.is_empty (Fact.Set.inter endo exo));
        (* the input database's endogenous facts all survive *)
        assert (Database.size_endo adb >= Database.size_endo db);
        trace := (Database.size_endo adb, Database.size adb) :: !trace;
        Svc.svc qrst adb mu)
  in
  let poly = Fgmc_to_svc.lemma41 ~svc ~query:qrst ~island:support ~pivot db in
  let expected = Model_counting.fgmc_polynomial_brute qrst db in
  Report.table ~headers:[ "i"; "|A^i_n|"; "|A^i|" ]
    (List.mapi
       (fun i (ne, tot) -> [ string_of_int i; string_of_int ne; string_of_int tot ])
       (List.rev !trace));
  Printf.printf "recovered FGMC polynomial: %s\n" (Format.asprintf "%a" Poly.Z.pp poly);
  Printf.printf "brute-force  polynomial  : %s\n" (Format.asprintf "%a" Poly.Z.pp expected);
  (* Lemma 5.1 case analysis, checked exhaustively on A^0 *)
  Report.subheading "Lemma 5.1 case analysis on A^0 (exhaustive over all B)";
  Term.reset_fresh ();
  let mu = Fact.Set.min_elt s0 in
  let a0 =
    Database.of_sets
      ~endo:(Fact.Set.union (Database.endo db) (Fact.Set.add mu s_minus))
      ~exo:(Fact.Set.union (Database.exo db) (Fact.Set.remove mu s0))
  in
  let qv = Query.eval qrst in
  let exo = Database.exo a0 in
  let players = Fact.Set.remove mu (Database.endo a0) in
  let case_counts = Array.make 4 0 in
  let sub = Database.of_sets ~endo:players ~exo:Fact.Set.empty in
  let checked = ref true in
  Database.fold_endo_subsets
    (fun b () ->
       let v s = if qv (Fact.Set.union s exo) then 1 else 0 in
       let marginal = v (Fact.Set.add mu b) - v b in
       (* cases of Lemma 5.1 with i = 0 (no copies): (1) is empty; (2) is
          "some fact of S- missing"; (3) is "S- present and D-part already a
          generalized support" *)
       let s_minus_in = Fact.Set.subset s_minus b in
       let d_part = Fact.Set.inter b (Database.endo db) in
       let d_sat = qv (Fact.Set.union d_part (Database.exo db)) in
       let expected_marginal =
         if (not s_minus_in) || (s_minus_in && d_sat) then 0 else 1
       in
       let case = if not s_minus_in then 2 else if d_sat then 3 else 0 in
       case_counts.(case) <- case_counts.(case) + 1;
       if marginal <> expected_marginal then checked := false)
    sub ();
  Printf.printf "subsets B checked: %d — case (2): %d, case (3): %d, contributing: %d\n"
    (Array.fold_left ( + ) 0 case_counts)
    case_counts.(2) case_counts.(3) case_counts.(0);
  Printf.printf "case analysis matches marginals: %s\n" (Report.ok !checked);
  Poly.Z.equal poly expected && !checked

(* COR41: FGMC ≡ SVC for connected hom-closed queries — both directions
   composed must be the identity. *)
let cor41 ~rounds () =
  Report.heading "COR41" "Corollary 4.1: FGMC ≡ SVC for connected hom-closed queries";
  let queries =
    [ "R(?x), S(?x,?y), T(?y)"; "R(?x,?y), S(?y,?z)"; "R(?x,?y), R(?y,?z)";
      "ucq: R(?x), S(?x,?y) | S(?x,?y), T(?y)" ]
  in
  let rows = ref [] in
  let all_ok = ref true in
  List.iter
    (fun qs ->
       let q = Query_parse.parse qs in
       let ok = ref 0 in
       for seed = 1 to rounds do
         let r = Workload.rng (seed * 31) in
         let db =
           Workload.random_database r
             ~rels:[ ("R", 2); ("S", 2); ("T", 1) ]
             ~consts:[ "1"; "2"; "3" ] ~n_endo:(2 + Workload.int r 3)
             ~n_exo:(Workload.int r 2)
         in
         let db =
           (* arity mismatch guard: R is unary in the first query *)
           if qs = "R(?x), S(?x,?y), T(?y)" then
             let r2 = Workload.rng (seed * 31) in
             Workload.random_database r2
               ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
               ~consts:[ "1"; "2"; "3" ] ~n_endo:(2 + Workload.int r2 3)
               ~n_exo:(Workload.int r2 2)
           else db
         in
         (* direction 1: FGMC via SVC (Lemma 4.1) *)
         let via_svc =
           match Fgmc_to_svc.lemma41_auto ~svc:(Oracle.svc_of q) ~query:q db with
           | Some p -> p
           | None -> Poly.Z.zero
         in
         (* direction 2: SVC via FGMC (Claim A.1) *)
         let svc_ok =
           match Database.endo_list db with
           | [] -> true
           | mu :: _ ->
             Rational.equal
               (Svc_to_fgmc.svc ~fgmc:(Oracle.fgmc_of q) db mu)
               (Svc.svc_brute q db mu)
         in
         if Poly.Z.equal via_svc (Model_counting.fgmc_polynomial q db) && svc_ok then
           incr ok
       done;
       if !ok <> rounds then all_ok := false;
       rows := [ qs; Printf.sprintf "%d/%d" !ok rounds ] :: !rows)
    queries;
  Report.table ~headers:[ "connected query"; "equivalence verified" ] (List.rev !rows);
  !all_ok

(* COR43: the RPQ dichotomy table. *)
let cor43 ~rounds () =
  Report.heading "COR43" "Corollary 4.3: RPQ dichotomy (word of length ≥ 3)";
  let langs = [ "A"; "A+B"; "AB"; "AB+BA"; "ABC"; "AB*"; "A*"; "(AB)*"; "A?B"; "ABCD" ] in
  let rows = ref [] in
  let all_ok = ref true in
  List.iter
    (fun l ->
       let rpq = Rpq.of_string l ~src:"s" ~dst:"t" in
       let q = Query.Rpq rpq in
       let j = Classify.classify_rpq rpq in
       let hard = j.Classify.verdict = Classify.SharpP_hard in
       (* evidence: FP side — lineage algorithm matches brute force;
          hard side — the Lemma 4.1/B.1 reduction recovers FGMC *)
       let evidence_ok = ref true in
       for seed = 1 to rounds do
         let r = Workload.rng (seed * 131) in
         let db =
           Workload.random_graph r ~labels:[ "A"; "B"; "C"; "D" ]
             ~nodes:[ "s"; "t"; "1"; "2" ] ~n_endo:(2 + Workload.int r 4)
             ~n_exo:(Workload.int r 2)
         in
         if not (Poly.Z.equal (Model_counting.fgmc_polynomial q db)
                   (Model_counting.fgmc_polynomial_brute q db))
         then evidence_ok := false;
         if hard && seed = 1 then begin
           match Pseudo_connected.rpq rpq with
           | Some w ->
             let p =
               Fgmc_to_svc.lemma41 ~svc:(Oracle.svc_of q) ~query:q
                 ~island:w.Pseudo_connected.island ~pivot:w.Pseudo_connected.pivot db
             in
             if not (Poly.Z.equal p (Model_counting.fgmc_polynomial q db)) then
               evidence_ok := false
           | None -> evidence_ok := false
         end
       done;
       if not !evidence_ok then all_ok := false;
       rows :=
         [ l; (if Words.exists_length_geq (Regex.parse l) 3 then "yes" else "no");
           Classify.verdict_to_string j.Classify.verdict; Report.ok !evidence_ok ]
         :: !rows)
    langs;
  Report.table ~headers:[ "language"; "word ≥ 3?"; "SVC verdict"; "evidence" ]
    (List.rev !rows);
  !all_ok

(* COR45: non-hierarchical sjf-CQ hardness via the Lemma 4.3 route. *)
let cor45 ~rounds () =
  Report.heading "COR45" "Corollary 4.5: non-hierarchical sjf-CQs via Lemma 4.3";
  let cases =
    [ (* (query, its variable-connected non-hierarchical part, the rest) *)
      ("R(?x), S(?x,?y), T(?y)", "R(?x), S(?x,?y), T(?y)", "");
      ("R(?x), S(?x,?y), T(?y), U(?u,?v)", "R(?x), S(?x,?y), T(?y)", "U(?u,?v)");
    ]
  in
  let rows = ref [] in
  let all_ok = ref true in
  List.iter
    (fun (full, vc, rest) ->
       let q = Query_parse.parse vc in
       let q' = if rest = "" then Query.True else Query_parse.parse rest in
       let qfull = if rest = "" then q else Query.And (q, q') in
       let ok = ref 0 in
       for seed = 1 to rounds do
         let r = Workload.rng (seed * 733) in
         let db =
           Workload.random_database r
             ~rels:[ ("R", 1); ("S", 2); ("T", 1); ("U", 2) ]
             ~consts:[ "1"; "2"; "3" ] ~n_endo:(2 + Workload.int r 3)
             ~n_exo:(Workload.int r 2)
         in
         let p = Fgmc_to_svc.lemma43 ~svc:(Oracle.svc_of qfull) ~q ~q' db in
         if Poly.Z.equal p (Model_counting.fgmc_polynomial q db) then incr ok
       done;
       if !ok <> rounds then all_ok := false;
       rows := [ full; vc; Printf.sprintf "%d/%d" !ok rounds ] :: !rows)
    cases;
  Report.table
    ~headers:[ "sjf-CQ q"; "variable-connected core"; "FGMC via SVC_q" ]
    (List.rev !rows);
  !all_ok

(* COR46: cc-disjoint CRPQs — classification + the Lemma 4.4 route on a
   disconnected instance. *)
let cor46 ~rounds () =
  Report.heading "COR46" "Corollary 4.6: constant-free cc-disjoint CRPQs";
  let corpus =
    [ "crpq: A(?x,?y)"; "crpq: (AB)(?x,?y)"; "crpq: (ABC)(?x,?y)";
      "crpq: (ABC)(?x,?y), D(?u,?v)"; "crpq: (AA*)(?x,?y)" ]
  in
  Report.table ~headers:[ "CRPQ"; "verdict"; "rule" ]
    (List.map
       (fun qs ->
          let j = Classify.classify (Query_parse.parse qs) in
          [ qs; Classify.verdict_to_string j.Classify.verdict; j.Classify.rule ])
       corpus);
  (* run the decomposable reduction on the disconnected corpus entry *)
  Report.subheading "Lemma 4.4 on the disconnected instance (AB)(?x,?y) ∧ D(?u,?v)";
  let q1 = Query_parse.parse "crpq: (AB)(?x,?y)" in
  let q2 = Query_parse.parse "crpq: D(?u,?v)" in
  let qand = Query.And (q1, q2) in
  let ok = ref 0 in
  for seed = 1 to rounds do
    let r = Workload.rng (seed * 613) in
    let db =
      Workload.random_graph r ~labels:[ "A"; "B"; "D" ] ~nodes:[ "1"; "2"; "3" ]
        ~n_endo:(2 + Workload.int r 3) ~n_exo:(Workload.int r 2)
    in
    let p = Fgmc_to_svc.lemma44 ~svc:(Oracle.svc_of qand) ~q1 ~q2 db in
    if Poly.Z.equal p (Model_counting.fgmc_polynomial qand db) then incr ok
  done;
  Printf.printf "FGMC recovered through SVC: %d/%d instances\n" !ok rounds;
  !ok = rounds
