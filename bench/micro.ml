(* Bechamel microbenchmarks: one Test.make per experiment id, measuring the
   kernel that regenerates the corresponding artifact. *)

open Bechamel
open Toolkit

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let small_db =
  Database.make
    ~endo:
      [ Fact.make "R" [ "1" ]; Fact.make "S" [ "1"; "2" ]; Fact.make "T" [ "2" ];
        Fact.make "S" [ "1"; "3" ] ]
    ~exo:[ Fact.make "T" [ "3" ] ]

let graph_db = Workload.path_graph ~label_word:[ "A"; "B"; "C" ] ~n_paths:3

let tests () =
  [
    Test.make ~name:"fig1a/svc_via_fgmc" (Staged.stage (fun () ->
        let mu = List.hd (Database.endo_list small_db) in
        Svc_to_fgmc.svc ~fgmc:(Oracle.fgmc_of qrst) small_db mu));
    Test.make ~name:"fig1a/fgmc_via_sppqe" (Staged.stage (fun () ->
        Fgmc_sppqe.fgmc_via_sppqe ~sppqe:(Oracle.sppqe_of qrst) small_db));
    Test.make ~name:"fig2/lemma41_engine" (Staged.stage (fun () ->
        Fgmc_to_svc.lemma41_auto ~svc:(Oracle.svc_of qrst) ~query:qrst small_db));
    Test.make ~name:"fig1b/classify_corpus" (Staged.stage (fun () ->
        List.map
          (fun s -> Classify.classify (Query_parse.parse s))
          [ "R(?x), S(?x,?y)"; "R(?x), S(?x,?y), T(?y)"; "ucq: R(?x) | S(?x,?y)" ]));
    Test.make ~name:"cor43/rpq_dichotomy" (Staged.stage (fun () ->
        Classify.classify_rpq (Rpq.of_string "A(B+C)*D" ~src:"s" ~dst:"t")));
    Test.make ~name:"cor43/rpq_fgmc" (Staged.stage (fun () ->
        Model_counting.fgmc_polynomial (Query_parse.parse "rpq: (ABC)(s,t)") graph_db));
    Test.make ~name:"lem61/fgmc_via_fmc" (Staged.stage (fun () ->
        Endogenous.fgmc_polynomial_via_fmc ~fmc:(Oracle.fgmc_of qrst) small_db));
    Test.make ~name:"lem63/max_svc" (Staged.stage (fun () -> Max_svc.max_svc qrst small_db));
    Test.make ~name:"prop63/const_counting" (Staged.stage (fun () ->
        let fs = Workload.bibliography ~n_authors:4 ~n_papers:5 ~seed:3 in
        let authors =
          Term.Sset.filter
            (fun c -> String.length c > 6 && String.sub c 0 6 = "author")
            (Fact.Set.consts fs)
        in
        let inst = Const_svc.make_instance ~facts:fs ~endo_consts:authors in
        Const_svc.fgmc_const_polynomial
          (Query_parse.parse "Publication(?x,?y), Keyword(?y,shapley)") inst));
    Test.make ~name:"scale/lineage_star40" (Staged.stage (fun () ->
        Model_counting.fgmc_polynomial
          (Query_parse.parse "R(?x), S(?x,?y)")
          (Workload.star_join ~spokes:40)));
    Test.make ~name:"safe_plan/fgmc_star40" (Staged.stage (fun () ->
        Safe_plan.fgmc_polynomial (Cq.parse "R(?x), S(?x,?y)") (Workload.star_join ~spokes:40)));
    Test.make ~name:"provenance/nx_polynomial" (Staged.stage (fun () ->
        Annotate.provenance_polynomial (Cq.parse "R(?x), S(?x,?y)")
          (Database.all (Workload.star_join ~spokes:20))));
    Test.make ~name:"substrate/bigint_fact100" (Staged.stage (fun () -> Bigint.factorial 100));
    Test.make ~name:"substrate/vandermonde8" (Staged.stage (fun () ->
        let pts = Array.init 8 (fun i -> Rational.of_int (i + 1)) in
        let b = Array.init 8 (fun i -> Rational.of_int (i * i)) in
        Linalg.solve_vandermonde pts b));
  ]

let run () =
  Report.heading "MICRO" "Bechamel microbenchmarks (ns/run, OLS estimate)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"micro" (tests ())) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
       let est =
         match Analyze.OLS.estimates ols with
         | Some [ e ] -> Printf.sprintf "%.0f ns" e
         | _ -> "n/a"
       in
       rows := [ name; est ] :: !rows)
    results;
  Report.table ~headers:[ "kernel"; "time/run" ]
    (List.sort compare !rows);
  true
