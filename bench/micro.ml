(* Bechamel microbenchmarks: one Test.make per experiment id, measuring the
   kernel that regenerates the corresponding artifact. *)

open Bechamel
open Toolkit

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let small_db =
  Database.make
    ~endo:
      [ Fact.make "R" [ "1" ]; Fact.make "S" [ "1"; "2" ]; Fact.make "T" [ "2" ];
        Fact.make "S" [ "1"; "3" ] ]
    ~exo:[ Fact.make "T" [ "3" ] ]

let graph_db = Workload.path_graph ~label_word:[ "A"; "B"; "C" ] ~n_paths:3

let tests () =
  [
    Test.make ~name:"fig1a/svc_via_fgmc" (Staged.stage (fun () ->
        let mu = List.hd (Database.endo_list small_db) in
        Svc_to_fgmc.svc ~fgmc:(Oracle.fgmc_of qrst) small_db mu));
    Test.make ~name:"fig1a/fgmc_via_sppqe" (Staged.stage (fun () ->
        Fgmc_sppqe.fgmc_via_sppqe ~sppqe:(Oracle.sppqe_of qrst) small_db));
    Test.make ~name:"fig2/lemma41_engine" (Staged.stage (fun () ->
        Fgmc_to_svc.lemma41_auto ~svc:(Oracle.svc_of qrst) ~query:qrst small_db));
    Test.make ~name:"fig1b/classify_corpus" (Staged.stage (fun () ->
        List.map
          (fun s -> Classify.classify (Query_parse.parse s))
          [ "R(?x), S(?x,?y)"; "R(?x), S(?x,?y), T(?y)"; "ucq: R(?x) | S(?x,?y)" ]));
    Test.make ~name:"cor43/rpq_dichotomy" (Staged.stage (fun () ->
        Classify.classify_rpq (Rpq.of_string "A(B+C)*D" ~src:"s" ~dst:"t")));
    Test.make ~name:"cor43/rpq_fgmc" (Staged.stage (fun () ->
        Model_counting.fgmc_polynomial (Query_parse.parse "rpq: (ABC)(s,t)") graph_db));
    Test.make ~name:"lem61/fgmc_via_fmc" (Staged.stage (fun () ->
        Endogenous.fgmc_polynomial_via_fmc ~fmc:(Oracle.fgmc_of qrst) small_db));
    Test.make ~name:"lem63/max_svc" (Staged.stage (fun () -> Max_svc.max_svc qrst small_db));
    Test.make ~name:"prop63/const_counting" (Staged.stage (fun () ->
        let fs = Workload.bibliography ~n_authors:4 ~n_papers:5 ~seed:3 in
        let authors =
          Term.Sset.filter
            (fun c -> String.length c > 6 && String.sub c 0 6 = "author")
            (Fact.Set.consts fs)
        in
        let inst = Const_svc.make_instance ~facts:fs ~endo_consts:authors in
        Const_svc.fgmc_const_polynomial
          (Query_parse.parse "Publication(?x,?y), Keyword(?y,shapley)") inst));
    Test.make ~name:"scale/lineage_star40" (Staged.stage (fun () ->
        Model_counting.fgmc_polynomial
          (Query_parse.parse "R(?x), S(?x,?y)")
          (Workload.star_join ~spokes:40)));
    Test.make ~name:"safe_plan/fgmc_star40" (Staged.stage (fun () ->
        Safe_plan.fgmc_polynomial (Cq.parse "R(?x), S(?x,?y)") (Workload.star_join ~spokes:40)));
    Test.make ~name:"provenance/nx_polynomial" (Staged.stage (fun () ->
        Annotate.provenance_polynomial (Cq.parse "R(?x), S(?x,?y)")
          (Database.all (Workload.star_join ~spokes:20))));
    Test.make ~name:"substrate/bigint_fact100" (Staged.stage (fun () -> Bigint.factorial 100));
    Test.make ~name:"substrate/vandermonde8" (Staged.stage (fun () ->
        let pts = Array.init 8 (fun i -> Rational.of_int (i + 1)) in
        let b = Array.init 8 (fun i -> Rational.of_int (i * i)) in
        Linalg.solve_vandermonde pts b));
  ]

(* ------------------------------------------------------------------ *)
(* ARITH: the adaptive small/big integer tier and the flat polynomial  *)
(* accumulator against their always-Big / always-allocating reference  *)
(* paths.  Emits BENCH_arith.json; gates >= 2x on the small-only       *)
(* kernel (the one the two-tier representation exists for).            *)
(* BENCH_ARITH_CAP bounds the iteration count (for CI smoke runs).     *)
(* ------------------------------------------------------------------ *)

let arith_cap () =
  match Sys.getenv_opt "BENCH_ARITH_CAP" with
  | None | Some "" -> max_int
  | Some s -> (try int_of_string s with Failure _ -> max_int)

type arith_entry = {
  kernel : string;
  iters : int;
  adaptive_s : float;
  reference_s : float;
}

let arith_json_of_entry e =
  Printf.sprintf
    "{\"kernel\":%S,\"iters\":%d,\"adaptive_ms\":%.3f,\"reference_ms\":%.3f,\
     \"speedup\":%.2f}"
    e.kernel e.iters (e.adaptive_s *. 1000.) (e.reference_s *. 1000.)
    (e.reference_s /. e.adaptive_s)

let arith_write_json entries ~pass =
  let oc = open_out "BENCH_arith.json" in
  output_string oc
    (Printf.sprintf
       "{\"experiment\":\"arith\",\"cap\":%s,\"speedup_target\":2.0,\
        \"pass\":%b,\"entries\":[%s]}\n"
       (let c = arith_cap () in
        if c = max_int then "null" else string_of_int c)
       pass
       (String.concat "," (List.map arith_json_of_entry entries)));
  close_out oc

(* One dot-product pass: acc += x.(i) * y.(i).  The adaptive side runs the
   public ops; the reference side runs the pre-promotion always-Big path
   (inputs forced to the magnitude-array representation outside the timed
   region, [For_tests.*_ref] keeping every intermediate there). *)
let dot_adaptive xs ys =
  let acc = ref Bigint.zero in
  for i = 0 to Array.length xs - 1 do
    acc := Bigint.add !acc (Bigint.mul xs.(i) ys.(i))
  done;
  !acc

let dot_reference xs ys =
  let acc = ref (Bigint.For_tests.force_big Bigint.zero) in
  for i = 0 to Array.length xs - 1 do
    acc := Bigint.For_tests.add_ref !acc (Bigint.For_tests.mul_ref xs.(i) ys.(i))
  done;
  !acc

let time_kernel ~iters f =
  (* one warm-up pass keeps first-touch allocation out of the sample *)
  ignore (Sys.opaque_identity (f ()));
  let (), s =
    Report.time_it (fun () ->
        for _ = 1 to iters do
          ignore (Sys.opaque_identity (f ()))
        done)
  in
  s

let dot_kernel ~name ~iters mk =
  let xs = Array.init 64 (fun i -> mk (17 * i + 1)) in
  let ys = Array.init 64 (fun i -> mk (23 * i + 5)) in
  let bxs = Array.map Bigint.For_tests.force_big xs in
  let bys = Array.map Bigint.For_tests.force_big ys in
  let adaptive_s = time_kernel ~iters (fun () -> dot_adaptive xs ys) in
  let reference_s = time_kernel ~iters (fun () -> dot_reference bxs bys) in
  if not (Bigint.equal (dot_adaptive xs ys) (dot_reference bxs bys)) then
    Printf.printf "!! %s: adaptive/reference MISMATCH\n" name;
  { kernel = name; iters; adaptive_s; reference_s }

(* Conditioning-shaped polynomial accumulation: acc += c . z^k . p, the
   engine's hot loop.  Adaptive = the in-place accumulator; reference =
   the allocating add . scale . shift composition. *)
let poly_kernel ~iters =
  let polys =
    Array.init 48 (fun i ->
        Poly.Z.of_coeffs
          (List.init 32 (fun j -> Bigint.of_int (((i + 2) * (j + 3)) mod 97))))
  in
  let adaptive () =
    let acc = Poly.Z.acc_create 128 in
    Array.iteri
      (fun i p -> Poly.Z.acc_add_scaled acc (Bigint.of_int (i + 1)) (i mod 7) p)
      polys;
    Poly.Z.acc_total acc
  in
  let reference () =
    let acc = ref Poly.Z.zero in
    Array.iteri
      (fun i p ->
         acc :=
           Poly.Z.add !acc
             (Poly.Z.scale (Bigint.of_int (i + 1)) (Poly.Z.shift (i mod 7) p)))
      polys;
    !acc
  in
  let adaptive_s = time_kernel ~iters adaptive in
  let reference_s = time_kernel ~iters reference in
  if not (Poly.Z.equal (adaptive ()) (reference ())) then
    Printf.printf "!! poly-accumulate: adaptive/reference MISMATCH\n";
  { kernel = "poly-accumulate"; iters; adaptive_s; reference_s }

let arith () =
  Report.heading "ARITH"
    "Adaptive small/big integers + in-place polynomial accumulation vs \
     always-Big reference (emits BENCH_arith.json)";
  let cap = arith_cap () in
  let iters = min cap 20_000 in
  let p40 = Bigint.pow (Bigint.of_int 10) 40 in
  let entries =
    [
      (* operands and every intermediate stay on the small tier *)
      dot_kernel ~name:"small-only" ~iters
        (fun v -> Bigint.of_int ((v mod 2000) - 1000));
      (* operands near 2^31: products straddle the promotion boundary *)
      dot_kernel ~name:"mixed" ~iters:(min cap 4_000)
        (fun v -> Bigint.of_int ((1 lsl 30) + (v * 1_000_003)));
      (* 40-digit operands: both paths run the magnitude-array code *)
      dot_kernel ~name:"big-only" ~iters:(min cap 2_000)
        (fun v -> Bigint.add p40 (Bigint.of_int v));
      poly_kernel ~iters:(min cap 400);
    ]
  in
  Report.table
    ~headers:[ "kernel"; "iters"; "adaptive"; "always-Big"; "speedup" ]
    (List.map
       (fun e ->
          [ e.kernel; string_of_int e.iters; Report.ms e.adaptive_s;
            Report.ms e.reference_s;
            Printf.sprintf "%.1fx" (e.reference_s /. e.adaptive_s) ])
       entries);
  let small = List.find (fun e -> e.kernel = "small-only") entries in
  let s = small.reference_s /. small.adaptive_s in
  Printf.printf
    "small-only kernel: %.1fx over the always-Big path (target: >= 2x) — %s\n"
    s
    (Report.ok (s >= 2.));
  (* Capped (smoke) runs validate agreement only: wall-clock ratios at toy
     iteration counts are noise. *)
  let pass = s >= 2. || cap <> max_int in
  arith_write_json entries ~pass;
  Printf.printf "Wrote BENCH_arith.json (%d entries).\n" (List.length entries);
  pass

let run () =
  Report.heading "MICRO" "Bechamel microbenchmarks (ns/run, OLS estimate)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"micro" (tests ())) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
       let est =
         match Analyze.OLS.estimates ols with
         | Some [ e ] -> Printf.sprintf "%.0f ns" e
         | _ -> "n/a"
       in
       rows := [ name; est ] :: !rows)
    results;
  Report.table ~headers:[ "kernel"; "time/run" ]
    (List.sort compare !rows);
  true
