(* The paper's hardness machinery, end to end.

   Goal: compute FGMC — a #P-complete counting problem — for the canonical
   non-hierarchical query q_RST = ∃x,y R(x) ∧ S(x,y) ∧ T(y), using nothing
   but an oracle answering Shapley values (SVC_q).  This is the Lemma 4.1
   reduction, and it is exactly why SVC_q is #P-hard for q_RST.

   The demo prints each oracle interaction so the construction of Figure 2
   is visible: the instance Aⁱ grows one island-support copy at a time, the
   oracle is asked for the Shapley value of the distinguished fact μ, and a
   linear system over exact rationals turns these values back into counts.

   Run with:  dune exec examples/hardness_pipeline.exe *)

let () =
  let f = Fact.make in
  let q = Query_parse.parse "R(?x), S(?x,?y), T(?y)" in
  let db =
    Database.make
      ~endo:[ f "R" [ "a" ]; f "S" [ "a"; "b" ]; f "T" [ "b" ]; f "S" [ "a"; "c" ];
              f "T" [ "c" ] ]
      ~exo:[ f "R" [ "z" ] ]
  in
  Printf.printf "query   : %s  (non-hierarchical: SVC is #P-hard, Cor. 4.5)\n"
    (Query.to_string q);
  Format.printf "database:@.%a@." Database.pp db;

  (* the classification machinery agrees *)
  let j = Classify.classify q in
  Printf.printf "\nclassifier: %s — %s\n\n" (Classify.verdict_to_string j.Classify.verdict)
    j.Classify.rule;

  (* a verbose SVC oracle *)
  let call_no = ref 0 in
  let svc =
    Oracle.make (fun (adb, mu) ->
        incr call_no;
        let v = Svc.svc q adb mu in
        Printf.printf "  oracle call %d: |A_n| = %2d, |A| = %2d, Sh(μ = %s) = %s\n"
          !call_no (Database.size_endo adb) (Database.size adb) (Fact.to_string mu)
          (Rational.to_string v);
        v)
  in

  Printf.printf "running the Lemma 4.1 construction (Figure 2):\n";
  (match Fgmc_to_svc.lemma41_auto ~svc ~query:q db with
   | Some poly ->
     Format.printf "\nrecovered FGMC polynomial: %a\n" Poly.Z.pp poly;
     let expected = Model_counting.fgmc_polynomial q db in
     Format.printf "direct counting          : %a\n" Poly.Z.pp expected;
     Printf.printf "agreement: %b\n" (Poly.Z.equal poly expected);
     Printf.printf
       "\nReading: coefficient j = number of size-j subsets of the 5 endogenous\n\
        facts that (with the exogenous R(z)) satisfy q_RST.  The reduction\n\
        used %d unit-cost SVC calls plus polynomial-time arithmetic — so a\n\
        polynomial SVC algorithm would yield a polynomial FGMC algorithm,\n\
        which cannot exist unless FP = #P.\n"
       (Oracle.calls svc)
   | None -> print_endline "unexpected: no witness");

  (* the same pipeline through the max-SVC oracle (Prop. 6.2) *)
  Printf.printf "\nthe same counts through a max-SVC oracle (Prop. 6.2):\n";
  let max_oracle = Oracle.max_svc_of q in
  (match Max_svc_red.reduce_auto ~max_svc:max_oracle ~query:q db with
   | Some poly ->
     Format.printf "  recovered: %a with %d max-SVC calls\n" Poly.Z.pp poly
       (Oracle.calls max_oracle)
   | None -> print_endline "unexpected: no witness")
