rpq: (Road Rail?)(s,t)
