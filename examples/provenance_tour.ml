(* Provenance semirings and where the Shapley value fits.

   The paper lives under "Data provenance": the Shapley value quantifies a
   fact's contribution to an answer, and this library computes it from the
   query's Boolean lineage.  That lineage is one specialization of the most
   general annotation — the provenance polynomial over ℕ[X].  This example
   evaluates one query in four semirings and connects the dots.

   Run with:  dune exec examples/provenance_tour.exe *)

let () =
  let f = Fact.make in
  let q = Cq.parse "Flight(?x,?y), Visa(?y)" in
  let endo =
    [ f "Flight" [ "paris"; "tokyo" ]; f "Flight" [ "paris"; "osaka" ];
      f "Visa" [ "tokyo" ]; f "Visa" [ "osaka" ]; f "Flight" [ "lyon"; "tokyo" ] ]
  in
  let db = Database.make ~endo ~exo:[] in
  let facts = Database.all db in
  Printf.printf "query: %s  —  \"is some reachable city visa-ready?\"\n\n" (Cq.to_string q);

  (* 1. Boolean semiring: plain satisfaction *)
  let sat = Annotate.cq (module Semiring.Bool) ~annot:(fun _ -> true) q facts in
  Printf.printf "Bool      : %b\n" sat;

  (* 2. Counting semiring: how many derivations *)
  let count = Annotate.hom_count q facts in
  Printf.printf "Counting  : %s derivations\n" (Bigint.to_string count);

  (* 3. Tropical semiring: cheapest derivation under per-fact costs *)
  let cost fact =
    match Fact.args fact with
    | [ "paris"; _ ] -> 3
    | [ "lyon"; _ ] -> 1
    | _ -> 2 (* visas *)
  in
  (match Annotate.min_cost ~cost q facts with
   | Some c -> Printf.printf "Tropical  : cheapest derivation costs %d\n" c
   | None -> print_endline "Tropical  : unsatisfied");

  (* 4. ℕ[X]: the full provenance polynomial *)
  let p = Annotate.provenance_polynomial q facts in
  Printf.printf "ℕ[X]      : %s\n\n" (Format.asprintf "%a" Semiring.Nx.pp p);

  (* universality: the other three are specializations of ℕ[X] *)
  let count' =
    Semiring.Nx.specialize (module Semiring.Counting) (fun _ -> Bigint.one) p
  in
  Printf.printf "universality check: ℕ[X] → Counting gives %s (same)\n\n"
    (Bigint.to_string count');

  (* ...and so is the Boolean lineage that powers every Shapley value in
     this library *)
  let lineage = Annotate.lineage_of_provenance q db in
  Printf.printf "Boolean lineage (from provenance): %s\n"
    (Format.asprintf "%a" Bform.pp lineage);
  Printf.printf "\nShapley values computed from that lineage:\n";
  List.iter
    (fun (fact, v) ->
       Printf.printf "  %-24s %s\n" (Fact.to_string fact) (Rational.to_string v))
    (List.sort
       (fun (_, a) (_, b) -> Rational.compare b a)
       (Svc.svc_all (Query.Cq q) db));
  Printf.printf
    "\nReading: each Visa fact backs one route and partially another; the\n\
     redundant Flights split their routes' credit, exactly as the Shapley\n\
     axioms prescribe.\n"
