(* The paper's Section 6.4 scenario: measuring author expertise by the
   Shapley value of *constants* rather than facts.

   Schema: Publication(authorID, paperID), Keyword(paperID, keywordStr).
   Query:  q* = ∃x,y Publication(x,y) ∧ Keyword(y,'shapley').

   The Shapley value of author constants (all other constants exogenous)
   quantifies each author's share of the community's 'shapley' expertise —
   the per-fact Shapley value would split an author's contribution across
   their publications (Remark in §6.4).

   Run with:  dune exec examples/bibliography.exe *)

let () =
  let f = Fact.make in
  let facts =
    Fact.Set.of_list
      [
        (* alice: two shapley papers, one co-authored *)
        f "Publication" [ "alice"; "p1" ];
        f "Publication" [ "alice"; "p2" ];
        f "Publication" [ "bob"; "p2" ];
        (* bob also has a solo logic paper *)
        f "Publication" [ "bob"; "p3" ];
        (* carol: one shapley paper *)
        f "Publication" [ "carol"; "p4" ];
        (* dave: publishes, but never on shapley *)
        f "Publication" [ "dave"; "p3" ];
        f "Keyword" [ "p1"; "shapley" ];
        f "Keyword" [ "p2"; "shapley" ];
        f "Keyword" [ "p3"; "logic" ];
        f "Keyword" [ "p4"; "shapley" ];
      ]
  in
  let authors = Term.Sset.of_list [ "alice"; "bob"; "carol"; "dave" ] in
  let inst = Const_svc.make_instance ~facts ~endo_consts:authors in
  let qstar = Query_parse.parse "Publication(?x,?y), Keyword(?y,shapley)" in

  Printf.printf "q* = %s\n\n" (Query.to_string qstar);
  Printf.printf "Shapley value of author constants (SVC^const, §6.4):\n";
  let values =
    List.sort
      (fun (_, a) (_, b) -> Rational.compare b a)
      (Const_svc.svc_const_all qstar inst)
  in
  List.iter
    (fun (author, v) ->
       Printf.printf "  %-8s %-8s (≈ %.4f)\n" author (Rational.to_string v)
         (Rational.to_float v))
    values;

  (* the counting analog (Prop. 6.3): how many author coalitions of each
     size witness a shapley paper *)
  let poly = Const_svc.fgmc_const_polynomial qstar inst in
  Format.printf "\nFGMC^const polynomial: %a\n" Poly.Z.pp poly;
  Printf.printf
    "(coefficient k = number of author subsets of size k whose induced\n\
     database contains a 'shapley' publication)\n";

  (* the equivalence of Prop. 6.3, executed: recover the polynomial through
     an SVC^const oracle *)
  let oracle = Oracle.svc_const_of qstar in
  let recovered =
    Const_red.fgmc_const_via_svc_const ~svc_const:oracle ~query:qstar inst
  in
  Format.printf "\nProp. 6.3 reduction: recovered %a with %d SVC^const calls — %s\n"
    Poly.Z.pp recovered (Oracle.calls oracle)
    (if Poly.Z.equal recovered poly then "matches" else "MISMATCH");

  (* contrast with the per-fact Shapley value: alice's expertise is split
     between her publication facts *)
  Printf.printf "\nPer-fact view (facts of the Publication relation endogenous):\n";
  let pub_facts, kw_facts =
    Fact.Set.partition (fun fact -> Fact.rel fact = "Publication") facts
  in
  let db = Database.of_sets ~endo:pub_facts ~exo:kw_facts in
  List.iter
    (fun (fact, v) ->
       if not (Rational.is_zero v) then
         Printf.printf "  %-28s %s\n" (Fact.to_string fact) (Rational.to_string v))
    (Svc.svc_all qstar db)
