(* Regular path queries over a transport network.

   A small multi-modal network: Road, Rail and Ferry edges.  We ask which
   individual links matter most for the connection "hub reachable from
   home by road, then any rail, then one final road", i.e. the RPQ

       (Road Rail* Road)(home, hub)

   and watch the Corollary 4.3 dichotomy in action on several languages.

   Run with:  dune exec examples/road_network.exe *)

let () =
  let f = Fact.make in
  let edge rel a b ~critical = (f rel [ a; b ], critical) in
  let network =
    [
      (* primary corridor *)
      edge "Road" "home" "stationA" ~critical:true;
      edge "Rail" "stationA" "stationB" ~critical:false;
      edge "Rail" "stationB" "stationC" ~critical:false;
      edge "Road" "stationC" "hub" ~critical:true;
      (* an express rail bypass *)
      edge "Rail" "stationA" "stationC" ~critical:false;
      (* a slow secondary corridor *)
      edge "Road" "home" "stationD" ~critical:false;
      edge "Rail" "stationD" "stationC" ~critical:false;
      (* a ferry nobody should need *)
      edge "Ferry" "home" "hub" ~critical:false;
    ]
  in
  let db = Database.make ~endo:(List.map fst network) ~exo:[] in
  let q = Query_parse.parse "rpq: (Road Rail* Road)(home, hub)" in

  Printf.printf "network: %d edges, query %s\n\n" (Database.size_endo db)
    (Query.to_string q);
  Printf.printf "reachable? %b\n\n" (Query.holds q db);

  Printf.printf "Shapley value of each link (its share in keeping home → hub):\n";
  let values =
    List.sort (fun (_, a) (_, b) -> Rational.compare b a) (Svc.svc_all q db)
  in
  List.iter
    (fun (fact, v) ->
       Printf.printf "  %-28s %-8s (≈ %.4f)\n" (Fact.to_string fact)
         (Rational.to_string v) (Rational.to_float v))
    values;
  Printf.printf
    "\nNote how the two unavoidable Road links dominate, the redundant rail\n\
     segments share their corridor's value, and the Ferry edge gets 0.\n";

  (* dichotomy across languages *)
  Printf.printf "\nCorollary 4.3 on related languages:\n";
  List.iter
    (fun l ->
       let j = Classify.classify_rpq (Rpq.of_string l ~src:"home" ~dst:"hub") in
       Printf.printf "  %-22s %-8s %s\n" l
         (Classify.verdict_to_string j.Classify.verdict)
         j.Classify.rule)
    [ "Road"; "Road Rail"; "Road Rail Road"; "Road Rail* Road"; "Road+Rail" ];

  (* minimal supports: the inclusion-minimal sets of links that realize the
     connection *)
  Printf.printf "\nminimal supports (inclusion-minimal link sets):\n";
  (match q with
   | Query.Rpq rpq ->
     List.iter
       (fun s -> Format.printf "  %a\n" Fact.Set.pp s)
       (Lineage.rpq_minimal_supports rpq (Database.all db))
   | _ -> ());

  (* probability that the connection survives if each link independently
     fails with probability 1/4 (i.e. is present with probability 3/4) *)
  let pr = Pqe.sppqe q db (Rational.of_ints 3 4) in
  Printf.printf "\nPr(connection survives | each link up w.p. 3/4) = %s (≈ %.4f)\n"
    (Rational.to_string pr) (Rational.to_float pr);

  (* the §6.4 note: in the graph setting, Shapley values of constants are
     Shapley values of *nodes* — which stations matter, rather than which
     links? endpoints stay exogenous *)
  Printf.printf "\nShapley value of intermediate stations (SVC^const = node Shapley, §6.4):\n";
  let stations =
    Term.Sset.of_list [ "stationA"; "stationB"; "stationC"; "stationD" ]
  in
  let inst = Const_svc.make_instance ~facts:(Database.all db) ~endo_consts:stations in
  List.iter
    (fun (node, v) ->
       Printf.printf "  %-10s %-8s (≈ %.4f)\n" node (Rational.to_string v)
         (Rational.to_float v))
    (List.sort
       (fun (_, a) (_, b) -> Rational.compare b a)
       (Const_svc.svc_const_all q inst))
