(* Quickstart: the five-minute tour of the library.

   Run with:  dune exec examples/quickstart.exe *)

let section title = Printf.printf "\n== %s ==\n" title

let () =
  (* 1. Build a partitioned database: endogenous facts are the "players",
     exogenous facts are assumed to always be present. *)
  section "A partitioned database";
  let f = Fact.make in
  let db =
    Database.make
      ~endo:[ f "Author" [ "alice" ]; f "Wrote" [ "alice"; "p1" ]; f "Cites" [ "p1"; "p2" ];
              f "Wrote" [ "alice"; "p3" ] ]
      ~exo:[ f "Cites" [ "p3"; "p2" ] ]
  in
  Format.printf "%a\n" Database.pp db;

  (* 2. Parse a Boolean conjunctive query: ?x, ?y are variables, p2 is a
     constant. "Is there an author who wrote a paper citing p2?" *)
  section "A Boolean query";
  let q = Query_parse.parse "Author(?x), Wrote(?x,?y), Cites(?y,p2)" in
  Printf.printf "q = %s\n" (Query.to_string q);
  Printf.printf "D ⊨ q?  %b\n" (Query.holds q db);

  (* 3. Shapley values: how much does each fact contribute to the answer? *)
  section "Shapley values of facts (SVC_q)";
  List.iter
    (fun (fact, v) ->
       Printf.printf "  %-20s %s\n" (Fact.to_string fact) (Rational.to_string v))
    (Svc.svc_all q db);

  (* 4. The counting view: the FGMC generating polynomial — coefficient j
     counts the sub-databases of size j (plus the exogenous facts) that
     satisfy q. *)
  section "Fixed-size generalized model counting (FGMC_q)";
  let poly = Model_counting.fgmc_polynomial q db in
  Format.printf "FGMC polynomial: %a\n" Poly.Z.pp poly;
  Printf.printf "generalized supports in total (GMC): %s\n"
    (Bigint.to_string (Poly.Z.total poly));

  (* 5. The probabilistic view: every endogenous fact present independently
     with probability 1/3. *)
  section "Probabilistic evaluation (SPPQE_q)";
  let pr = Pqe.sppqe q db (Rational.of_ints 1 3) in
  Printf.printf "Pr(D ⊨ q) at p = 1/3:  %s  (≈ %.4f)\n" (Rational.to_string pr)
    (Rational.to_float pr);

  (* 6. Complexity: where does this query sit in the dichotomy? *)
  section "Dichotomy classification (Figure 1b)";
  let j = Classify.classify q in
  Printf.printf "verdict: %s\n  rule: %s\n"
    (Classify.verdict_to_string j.Classify.verdict)
    j.Classify.rule;

  (* 7. The paper's punchline, executable: compute FGMC using only a
     Shapley-value oracle (Lemma 4.1). *)
  section "FGMC through an SVC oracle (Lemma 4.1)";
  let svc_oracle = Oracle.svc_of q in
  (match Fgmc_to_svc.lemma41_auto ~svc:svc_oracle ~query:q db with
   | Some recovered ->
     Format.printf "recovered: %a  with %d SVC calls — %s\n" Poly.Z.pp recovered
       (Oracle.calls svc_oracle)
       (if Poly.Z.equal recovered poly then "matches the direct count" else "MISMATCH")
   | None -> print_endline "no reduction witness");
  print_newline ()
