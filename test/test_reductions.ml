open Test_util

(* Proposition 3.3: the "easy direction" arrows of Figure 1a. *)

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let test_svc_via_fgmc_calls () =
  (* Claim A.1 makes exactly 2n calls for a database with n endogenous facts *)
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ]; fact "R" [ "3" ] ]
      ~exo:[]
  in
  let fgmc = Oracle.fgmc_brute_of qrst in
  let v = Svc_to_fgmc.svc ~fgmc db (fact "R" [ "1" ]) in
  check_rational "value" (Svc.svc_brute qrst db (fact "R" [ "1" ])) v;
  Alcotest.(check int) "2n oracle calls" 8 (Oracle.calls fgmc)

let test_fgmc_via_sppqe_calls () =
  let db = Gen.random_db 42 in
  let n = Database.size_endo db in
  let sppqe = Oracle.sppqe_of qrst in
  let poly = Fgmc_sppqe.fgmc_via_sppqe ~sppqe db in
  check_zpoly "recovered" (Model_counting.fgmc_polynomial_brute qrst db) poly;
  Alcotest.(check int) "n+1 oracle calls" (n + 1) (Oracle.calls sppqe)

let test_sppqe_via_fgmc () =
  let db = Gen.random_db 7 in
  let fgmc = Oracle.fgmc_brute_of qrst in
  let p = Rational.of_ints 3 7 in
  check_rational "probability" (Pqe.sppqe qrst db p)
    (Fgmc_sppqe.sppqe_via_fgmc ~fgmc db p);
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Fgmc_sppqe.sppqe_via_fgmc: probability must lie in (0, 1]")
    (fun () -> ignore (Fgmc_sppqe.sppqe_via_fgmc ~fgmc db (Rational.of_int 2)))

let test_fmc_spqe_guards () =
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[ fact "T" [ "9" ] ] in
  Alcotest.check_raises "fmc_via_spqe guard"
    (Invalid_argument "Fgmc_sppqe.fmc_via_spqe: database has exogenous facts") (fun () ->
        ignore (Fgmc_sppqe.fmc_via_spqe ~spqe:(Oracle.sppqe_of qrst) db));
  Alcotest.check_raises "spqe_via_fmc guard"
    (Invalid_argument "Fgmc_sppqe.spqe_via_fmc: database has exogenous facts") (fun () ->
        ignore (Fgmc_sppqe.spqe_via_fmc ~fmc:(Oracle.fgmc_of qrst) db Rational.half))

let test_fmc_spqe_roundtrip () =
  let db = Database.make ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ] ] ~exo:[] in
  check_zpoly "fmc via spqe"
    (Model_counting.fgmc_polynomial_brute qrst db)
    (Fgmc_sppqe.fmc_via_spqe ~spqe:(Oracle.sppqe_of qrst) db);
  check_rational "spqe via fmc"
    (Pqe.spqe qrst db Rational.half)
    (Fgmc_sppqe.spqe_via_fmc ~fmc:(Oracle.fgmc_of qrst) db Rational.half)

let test_oracle_bookkeeping () =
  let o = Oracle.make (fun x -> x * 2) in
  Alcotest.(check int) "initial" 0 (Oracle.calls o);
  Alcotest.(check int) "call" 10 (Oracle.call o 5);
  Alcotest.(check int) "counted" 1 (Oracle.calls o);
  Oracle.reset o;
  Alcotest.(check int) "reset" 0 (Oracle.calls o)

let test_endo_only_wrapper () =
  let o = Oracle.svc_endo_only (Oracle.svc_brute_of qrst) in
  let db_exo = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[ fact "T" [ "9" ] ] in
  Alcotest.check_raises "exogenous rejected"
    (Invalid_argument "Oracle.svc_endo_only: reduction produced exogenous facts") (fun () ->
        ignore (Oracle.call o (db_exo, fact "R" [ "1" ])));
  let db = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[] in
  ignore (Oracle.call o (db, fact "R" [ "1" ]))

let prop_svc_via_fgmc =
  qcheck ~count:40 "Claim A.1 on random instances" Gen.seed_gen
    (fun seed ->
       let db = Gen.random_db seed in
       match Database.endo_list db with
       | [] -> true
       | mu :: _ ->
         Rational.equal
           (Svc_to_fgmc.svc ~fgmc:(Oracle.fgmc_of qrst) db mu)
           (Svc.svc_brute qrst db mu))

let prop_fgmc_via_sppqe =
  qcheck ~count:30 "Claim A.2 Vandermonde inversion" Gen.seed_gen
    (fun seed ->
       let db = Gen.random_db seed in
       Poly.Z.equal
         (Fgmc_sppqe.fgmc_via_sppqe ~sppqe:(Oracle.sppqe_of qrst) db)
         (Model_counting.fgmc_polynomial qrst db))

let prop_roundtrip_composition =
  qcheck ~count:20 "SVC → FGMC → SPPQE composition" Gen.seed_gen
    (fun seed ->
       (* compute SVC where the FGMC oracle is itself implemented through
          SPPQE: two reduction layers composed *)
       let db = Gen.random_db seed in
       match Database.endo_list db with
       | [] -> true
       | mu :: _ ->
         let fgmc_via_probs =
           Oracle.make (fun (db, j) ->
               Poly.Z.coeff
                 (Fgmc_sppqe.fgmc_via_sppqe ~sppqe:(Oracle.sppqe_of qrst) db)
                 j)
         in
         Rational.equal
           (Svc_to_fgmc.svc ~fgmc:fgmc_via_probs db mu)
           (Svc.svc_brute qrst db mu))

let suite =
  [
    Alcotest.test_case "Claim A.1 call count" `Quick test_svc_via_fgmc_calls;
    Alcotest.test_case "Claim A.2 call count" `Quick test_fgmc_via_sppqe_calls;
    Alcotest.test_case "SPPQE via FGMC" `Quick test_sppqe_via_fgmc;
    Alcotest.test_case "FMC/SPQE guards" `Quick test_fmc_spqe_guards;
    Alcotest.test_case "Claim A.3 roundtrip" `Quick test_fmc_spqe_roundtrip;
    Alcotest.test_case "oracle bookkeeping" `Quick test_oracle_bookkeeping;
    Alcotest.test_case "endo-only wrapper" `Quick test_endo_only_wrapper;
    prop_svc_via_fgmc;
    prop_fgmc_via_sppqe;
    prop_roundtrip_composition;
  ]
