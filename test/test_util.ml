(* Shared helpers for the test suite. *)

let fact r a = Fact.make r a
let facts l = Fact.Set.of_list l

let bigint_t : Bigint.t Alcotest.testable =
  Alcotest.testable Bigint.pp Bigint.equal

let rational_t : Rational.t Alcotest.testable =
  Alcotest.testable Rational.pp Rational.equal

let zpoly_t : Poly.Z.t Alcotest.testable = Alcotest.testable Poly.Z.pp Poly.Z.equal

let fact_set_t : Fact.Set.t Alcotest.testable =
  Alcotest.testable Fact.Set.pp Fact.Set.equal

let check_bigint = Alcotest.check bigint_t
let check_rational = Alcotest.check rational_t
let check_zpoly = Alcotest.check zpoly_t

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A pool of random partitioned databases for a given schema. *)
let random_dbs ~seed ~rounds ~rels ~consts ~n_endo ~n_exo =
  let r = Workload.rng seed in
  List.init rounds (fun _ ->
      Workload.random_database r ~rels ~consts
        ~n_endo:(1 + Workload.int r n_endo)
        ~n_exo:(Workload.int r (n_exo + 1)))

(* Exhaustively compare a query's lineage-based FGMC against brute force. *)
let fgmc_agree q db =
  Poly.Z.equal
    (Model_counting.fgmc_polynomial q db)
    (Model_counting.fgmc_polynomial_brute q db)
