(* The certified compilation planner (lib/plan) and its independent
   verifier (Plancheck).

   Three layers: (1) the bipartite acceptance instance — the plan's
   branch order must cut the n=24 complete-bipartite q_RST circuit well
   below half its unplanned size, and the certificate must verify;
   (2) mutation tests — Plancheck rejects certificates whose partition,
   orders or width claims are wrong, while accepting honestly weaker
   width bounds; (3) qcheck differentials — on 500+ random instances the
   plan certificate verifies, the plan-steered circuit passes the
   independent Circuit.Check against its own formula, and the circuit
   backend's values match conditioning exactly. *)

open Test_util

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let values_equal v1 v2 =
  List.length v1 = List.length v2
  && List.for_all2
       (fun (f1, x1) (f2, x2) -> Fact.equal f1 f2 && Rational.equal x1 x2)
       v1 v2

let plancheck_ok phi plan =
  match Plancheck.check phi plan with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "plancheck rejected honest plan: %s" msg

let plancheck_rejects what phi plan =
  match Plancheck.check phi plan with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "plancheck accepted %s" what

(* ---- the acceptance instance: complete bipartite q_RST, rows = 4 ---- *)

(* ISSUE 6 acceptance: the plan-driven circuit for the n=24 instance
   must land at or below 1087 nodes (half the 2174-node unplanned
   Shannon expansion).  The pseudo-tree branch order gives 565. *)
let test_bipartite_plan () =
  let db = Gen.bipartite ~rows:4 in
  let phi = Lineage.lineage qrst db in
  let plan = Plan.analyze phi in
  Alcotest.(check int) "all 24 variables covered" 24 plan.Plan.n_vars;
  Alcotest.(check int) "one AND-component" 1 (Plan.component_count plan);
  plancheck_ok phi plan;
  let plain = Circuit.compile phi in
  let planned = Circuit.compile ~plan phi in
  let n_plain = Circuit.node_count plain in
  let n_planned = Circuit.node_count planned in
  Alcotest.(check bool)
    (Printf.sprintf "planned %d <= 1087 (plain %d)" n_planned n_plain)
    true
    (n_planned <= 1087 && n_planned * 2 <= n_plain);
  (* the certificate's size prediction is an upper bound here *)
  Alcotest.(check bool)
    (Printf.sprintf "planned %d <= predicted %d" n_planned
       plan.Plan.predicted_nodes)
    true
    (n_planned <= plan.Plan.predicted_nodes)

(* the planned circuit still computes the right thing end to end *)
let test_bipartite_values () =
  let db = Gen.bipartite ~rows:3 in
  let circuit = Engine.create ~backend:`Circuit qrst db in
  let conditioning = Engine.create ~backend:`Conditioning qrst db in
  Alcotest.(check bool) "circuit = conditioning on rows=3" true
    (values_equal (Engine.svc_all circuit) (Engine.svc_all conditioning));
  match Engine.plan circuit with
  | None -> Alcotest.fail "circuit engine carries no plan"
  | Some plan -> plancheck_ok (Lineage.lineage qrst db) plan

(* ---- multi-component split: constant atoms decouple the root And ---- *)

let test_multi_component () =
  let db = Gen.bipartite ~rows:2 in
  (* R(l0) ∧ T(r1) shares no variables across the two conjuncts, so the
     root And splits into two independent components. *)
  let q = Query_parse.parse "R(l0), T(r1)" in
  let phi = Lineage.lineage q db in
  let plan = Plan.analyze phi in
  Alcotest.(check int) "two components" 2 (Plan.component_count plan);
  plancheck_ok phi plan;
  let planned = Circuit.compile ~plan phi in
  (match Circuit.Check.check ~formula:phi planned with
   | Ok _ -> ()
   | Error msg -> Alcotest.failf "multi-component circuit invalid: %s" msg);
  let circuit = Engine.create ~backend:`Circuit q db in
  let conditioning = Engine.create ~backend:`Conditioning q db in
  Alcotest.(check bool) "values agree across the split" true
    (values_equal (Engine.svc_all circuit) (Engine.svc_all conditioning))

(* a constant lineage has no variables and no components *)
let test_constant_lineage () =
  let db =
    Database.make ~endo:[ fact "Z" [ "9" ] ] ~exo:[ fact "R" [ "1" ] ]
  in
  let phi = Lineage.lineage (Query_parse.parse "R(1)") db in
  let plan = Plan.analyze phi in
  Alcotest.(check int) "no variables" 0 plan.Plan.n_vars;
  Alcotest.(check int) "no components" 0 (Plan.component_count plan);
  plancheck_ok phi plan

(* ---- Plancheck mutation rejections ---- *)

let bipartite_plan rows =
  let db = Gen.bipartite ~rows in
  let phi = Lineage.lineage qrst db in
  (phi, Plan.analyze phi)

let test_reject_understated_width () =
  let phi, plan = bipartite_plan 3 in
  let weakened =
    { plan with
      Plan.components =
        List.map
          (fun c -> { c with Plan.width = c.Plan.width - 1 })
          plan.Plan.components;
    }
  in
  plancheck_rejects "an understated width" phi weakened

let test_accept_overstated_width () =
  let phi, plan = bipartite_plan 3 in
  let overstated =
    { plan with
      Plan.components =
        List.map
          (fun c -> { c with Plan.width = c.Plan.width + 1 })
          plan.Plan.components;
      max_width = plan.Plan.max_width + 1;
      (* keep predicted_nodes consistent with the weaker claim *)
      predicted_nodes =
        List.fold_left
          (fun acc c ->
             acc
             + (List.length c.Plan.cvars + 1)
               * (1 lsl min (c.Plan.width + 2) 24))
          0 plan.Plan.components;
    }
  in
  match Plancheck.check phi overstated with
  | Ok _ -> ()
  | Error msg ->
    Alcotest.failf "overstated width is a valid weaker bound: %s" msg

let test_reject_order_not_permutation () =
  let phi, plan = bipartite_plan 2 in
  let mangle c =
    match c.Plan.order with
    | v :: _ :: rest -> { c with Plan.order = v :: v :: rest }
    | _ -> c
  in
  plancheck_rejects "a duplicated order entry" phi
    { plan with Plan.components = List.map mangle plan.Plan.components }

let test_reject_branch_not_permutation () =
  let phi, plan = bipartite_plan 2 in
  let mangle c =
    match c.Plan.branch with
    | _ :: rest -> { c with Plan.branch = rest }
    | [] -> c
  in
  plancheck_rejects "a branch order missing a variable" phi
    { plan with Plan.components = List.map mangle plan.Plan.components }

let test_reject_merged_components () =
  let db = Gen.bipartite ~rows:2 in
  let q = Query_parse.parse "R(l0), T(r1)" in
  let phi = Lineage.lineage q db in
  let plan = Plan.analyze phi in
  let merged =
    match plan.Plan.components with
    | [ a; b ] ->
      let cvars = List.sort Fact.compare (a.Plan.cvars @ b.Plan.cvars) in
      { plan with
        Plan.components =
          [ { a with
              Plan.cvars;
              order = a.Plan.order @ b.Plan.order;
              branch = a.Plan.branch @ b.Plan.branch;
            } ];
      }
    | _ -> Alcotest.fail "expected exactly two components"
  in
  plancheck_rejects "a merged component partition" phi merged

let test_reject_wrong_n_vars () =
  let phi, plan = bipartite_plan 2 in
  plancheck_rejects "a wrong n_vars" phi
    { plan with Plan.n_vars = plan.Plan.n_vars + 1 }

let test_reject_wrong_prediction () =
  let phi, plan = bipartite_plan 2 in
  plancheck_rejects "an inconsistent predicted_nodes" phi
    { plan with Plan.predicted_nodes = plan.Plan.predicted_nodes + 1 }

(* ---- qcheck: the satellite differentials over random instances ---- *)

(* 500+ random instances: the certificate verifies, the plan-steered
   circuit passes the independent checker against its own formula, and
   the circuit backend's Shapley values equal conditioning's. *)
let prop_planned_circuits =
  qcheck ~count:500 "planned circuit checks + matches conditioning"
    Gen.seed_gen (fun seed ->
        let q, db = Gen.random_case seed in
        let phi = Lineage.lineage q db in
        let plan = Plan.analyze phi in
        let cert_ok = Result.is_ok (Plancheck.check phi plan) in
        let circuit = Circuit.compile ~plan phi in
        let circuit_ok =
          Result.is_ok (Circuit.Check.check ~formula:phi circuit)
        in
        let circ = Engine.create ~backend:`Circuit q db in
        let cond = Engine.create ~backend:`Conditioning q db in
        cert_ok && circuit_ok
        && values_equal (Engine.svc_all circ) (Engine.svc_all cond))

(* both heuristics produce verifiable certificates, not just Best *)
let prop_heuristics_verify =
  qcheck ~count:200 "min-degree and min-fill plans verify" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let phi = Lineage.lineage q db in
       List.for_all
         (fun h ->
            Result.is_ok
              (Plancheck.check phi (Plan.analyze ~heuristic:h phi)))
         [ Plan.Min_degree; Plan.Min_fill; Plan.Best ])

(* random mutations: dropping a variable from any nonempty component's
   order always breaks the permutation clause *)
let prop_mutated_plans_rejected =
  qcheck ~count:200 "plancheck rejects truncated orders" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let phi = Lineage.lineage q db in
       let plan = Plan.analyze phi in
       match plan.Plan.components with
       | [] -> true (* constant lineage: nothing to mutate *)
       | c :: rest ->
         let truncated =
           { plan with
             Plan.components =
               { c with Plan.order = List.tl c.Plan.order } :: rest;
           }
         in
         Result.is_error (Plancheck.check phi truncated))

let suite =
  [
    Alcotest.test_case "bipartite n=24 plan beats the bar" `Quick
      test_bipartite_plan;
    Alcotest.test_case "bipartite values via planned circuit" `Quick
      test_bipartite_values;
    Alcotest.test_case "multi-component split" `Quick test_multi_component;
    Alcotest.test_case "constant lineage" `Quick test_constant_lineage;
    Alcotest.test_case "reject understated width" `Quick
      test_reject_understated_width;
    Alcotest.test_case "accept overstated width" `Quick
      test_accept_overstated_width;
    Alcotest.test_case "reject non-permutation order" `Quick
      test_reject_order_not_permutation;
    Alcotest.test_case "reject non-permutation branch" `Quick
      test_reject_branch_not_permutation;
    Alcotest.test_case "reject merged components" `Quick
      test_reject_merged_components;
    Alcotest.test_case "reject wrong n_vars" `Quick test_reject_wrong_n_vars;
    Alcotest.test_case "reject wrong prediction" `Quick
      test_reject_wrong_prediction;
    prop_planned_circuits;
    prop_heuristics_verify;
    prop_mutated_plans_rejected;
  ]
