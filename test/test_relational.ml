open Test_util

let test_terms () =
  Alcotest.(check bool) "const" true (Term.is_const (Term.const "a"));
  Alcotest.(check bool) "var" true (Term.is_var (Term.var "x"));
  Alcotest.(check bool) "const ≠ var" false (Term.equal (Term.const "a") (Term.var "a"));
  Alcotest.(check string) "pp var" "?x" (Term.to_string (Term.var "x"));
  let c1 = Term.fresh_const () and c2 = Term.fresh_const () in
  Alcotest.(check bool) "fresh distinct" false (c1 = c2)

let test_atoms () =
  let a = Atom.make "R" [ Term.var "x"; Term.const "c" ] in
  Alcotest.(check int) "arity" 2 (Atom.arity a);
  Alcotest.(check bool) "vars" true (Term.Sset.equal (Atom.vars a) (Term.Sset.singleton "x"));
  Alcotest.(check bool) "consts" true (Term.Sset.equal (Atom.consts a) (Term.Sset.singleton "c"));
  Alcotest.(check bool) "not ground" false (Atom.is_ground a);
  let g = Atom.apply (Term.Smap.singleton "x" (Term.const "d")) a in
  Alcotest.(check bool) "ground after apply" true (Atom.is_ground g);
  let n = Atom.make "R" [] in
  Alcotest.(check int) "nullary arity" 0 (Atom.arity n);
  Alcotest.(check bool) "nullary ground" true (Atom.is_ground n);
  Alcotest.(check string) "nullary fact" "R()" (Fact.to_string (Fact.make "R" []))

let test_facts () =
  let f = fact "R" [ "a"; "b" ] in
  Alcotest.(check string) "to_string" "R(a,b)" (Fact.to_string f);
  let a = Fact.to_atom f in
  Alcotest.(check bool) "roundtrip" true (Fact.equal f (Fact.of_atom a));
  let renamed = Fact.rename (Term.Smap.singleton "a" "z") f in
  Alcotest.(check string) "rename" "R(z,b)" (Fact.to_string renamed);
  Alcotest.(check bool) "of_atom_opt non-ground" true
    (Fact.of_atom_opt (Atom.make "R" [ Term.var "x" ]) = None)

let test_database_partition () =
  let f1 = fact "R" [ "1" ] and f2 = fact "S" [ "2" ] in
  let db = Database.make ~endo:[ f1 ] ~exo:[ f2 ] in
  Alcotest.(check bool) "mem endo" true (Database.mem_endo f1 db);
  Alcotest.(check bool) "mem exo" true (Database.mem_exo f2 db);
  Alcotest.(check int) "size" 2 (Database.size db);
  Alcotest.(check int) "size endo" 1 (Database.size_endo db);
  Alcotest.check_raises "overlap rejected"
    (Invalid_argument "Database.of_sets: endogenous and exogenous parts overlap") (fun () ->
        ignore (Database.make ~endo:[ f1 ] ~exo:[ f1 ]));
  Alcotest.check_raises "add_endo conflict"
    (Invalid_argument "Database.add_endo: fact is exogenous") (fun () ->
        ignore (Database.add_endo f2 db))

let test_database_moves () =
  let f1 = fact "R" [ "1" ] in
  let db = Database.make ~endo:[ f1 ] ~exo:[] in
  let db' = Database.make_exogenous f1 db in
  Alcotest.(check bool) "moved" true (Database.mem_exo f1 db');
  let db'' = Database.make_endogenous f1 db' in
  Alcotest.(check bool) "moved back" true (Database.mem_endo f1 db'');
  Alcotest.(check bool) "equal roundtrip" true (Database.equal db db'')

let test_union_disjoint () =
  let a = Database.make ~endo:[ fact "R" [ "1" ] ] ~exo:[ fact "S" [ "2" ] ] in
  let b = Database.make ~endo:[ fact "T" [ "3" ] ] ~exo:[] in
  let u = Database.union_disjoint a b in
  Alcotest.(check int) "sizes" 3 (Database.size u);
  Alcotest.check_raises "shared fact rejected"
    (Invalid_argument "Database.union_disjoint: databases share facts") (fun () ->
        ignore (Database.union_disjoint a a))

let test_rename_away () =
  let db =
    Database.make ~endo:[ fact "R" [ "a"; "b" ] ] ~exo:[ fact "S" [ "b"; "c" ] ]
  in
  let keep = Term.Sset.singleton "c" in
  let avoid = Term.Sset.of_list [ "a"; "b" ] in
  let db', rho = Database.rename_away ~keep ~avoid db in
  Alcotest.(check int) "renamed two constants" 2 (Term.Smap.cardinal rho);
  let cs = Database.consts db' in
  Alcotest.(check bool) "a gone" false (Term.Sset.mem "a" cs);
  Alcotest.(check bool) "b gone" false (Term.Sset.mem "b" cs);
  Alcotest.(check bool) "c kept" true (Term.Sset.mem "c" cs);
  Alcotest.(check int) "same size" 2 (Database.size db')

let test_fold_subsets () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "R" [ "2" ]; fact "R" [ "3" ] ]
      ~exo:[ fact "S" [ "9" ] ]
  in
  let count = Database.fold_endo_subsets (fun _ acc -> acc + 1) db 0 in
  Alcotest.(check int) "2^3 subsets" 8 count;
  let sizes =
    Database.fold_endo_subsets (fun s acc -> Fact.Set.cardinal s + acc) db 0
  in
  Alcotest.(check int) "total elements = 3·2^2" 12 sizes

let test_restrict () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "a"; "b" ]; fact "R" [ "a"; "c" ] ]
      ~exo:[ fact "S" [ "b" ] ]
  in
  let r = Database.restrict_to_consts (Term.Sset.of_list [ "a"; "b" ]) db in
  Alcotest.(check int) "induced size" 2 (Database.size r);
  Alcotest.(check bool) "keeps R(a,b)" true (Database.mem (fact "R" [ "a"; "b" ]) r);
  Alcotest.(check bool) "drops R(a,c)" false (Database.mem (fact "R" [ "a"; "c" ]) r)

let test_incidence () =
  let parse = Cq.parse in
  Alcotest.(check bool) "connected path" true
    (Incidence.connected (Cq.atoms (parse "R(?x,?y), S(?y,?z)")));
  Alcotest.(check bool) "disconnected" false
    (Incidence.connected (Cq.atoms (parse "R(?x), S(?y)")));
  Alcotest.(check bool) "connected via constant" true
    (Incidence.connected (Cq.atoms (parse "R(?x,c), S(c,?y)")));
  Alcotest.(check bool) "not variable-connected via constant" false
    (Incidence.variable_connected (Cq.atoms (parse "R(?x,c), S(c,?y)")));
  Alcotest.(check int) "two components" 2
    (List.length (Incidence.components (Cq.atoms (parse "R(?x), S(?y)"))));
  Alcotest.(check int) "var components split on constants" 2
    (List.length (Incidence.variable_components (Cq.atoms (parse "R(?x,c), S(c,?y)"))))

let test_fact_components () =
  let fs =
    facts [ fact "A" [ "a"; "x" ]; fact "B" [ "x"; "b" ]; fact "C" [ "a"; "b" ] ]
  in
  let fixed = Term.Sset.of_list [ "a"; "b" ] in
  (* only x counts as a connector: A-B glued by x; C isolated *)
  Alcotest.(check int) "components outside C" 2
    (List.length (Incidence.fact_components_outside ~fixed fs));
  Alcotest.(check bool) "not connected outside C" false
    (Incidence.facts_connected_outside ~fixed fs);
  Alcotest.(check bool) "connected with empty fixed" true
    (Incidence.facts_connected_outside ~fixed:Term.Sset.empty fs)

let test_db_text_roundtrip () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "a"; "b" ]; fact "S" [ "b" ] ]
      ~exo:[ fact "T" [ "c" ] ]
  in
  let db' = Db_text.parse (Db_text.to_string db) in
  Alcotest.(check bool) "roundtrip" true (Database.equal db db')

let suite =
  [
    Alcotest.test_case "terms" `Quick test_terms;
    Alcotest.test_case "atoms" `Quick test_atoms;
    Alcotest.test_case "facts" `Quick test_facts;
    Alcotest.test_case "database partition" `Quick test_database_partition;
    Alcotest.test_case "endo/exo moves" `Quick test_database_moves;
    Alcotest.test_case "disjoint union" `Quick test_union_disjoint;
    Alcotest.test_case "rename away" `Quick test_rename_away;
    Alcotest.test_case "fold subsets" `Quick test_fold_subsets;
    Alcotest.test_case "restrict to constants" `Quick test_restrict;
    Alcotest.test_case "incidence graphs" `Quick test_incidence;
    Alcotest.test_case "fact components outside C" `Quick test_fact_components;
    Alcotest.test_case "db text roundtrip" `Quick test_db_text_roundtrip;
  ]
