Output regression for the four runnable examples.

  $ ../../examples/quickstart.exe
  
  == A partitioned database ==
  endo: {Author(alice), Cites(p1,p2), Wrote(alice,p1), Wrote(alice,p3)}
  exo:  {Cites(p3,p2)}
  
  == A Boolean query ==
  q = CQ[Author(?x), Cites(?y,p2), Wrote(?x,?y)]
  D ⊨ q?  true
  
  == Shapley values of facts (SVC_q) ==
    Author(alice)        7/12
    Cites(p1,p2)         1/12
    Wrote(alice,p1)      1/12
    Wrote(alice,p3)      1/4
  
  == Fixed-size generalized model counting (FGMC_q) ==
  FGMC polynomial: z^2 + 3·z^3 + z^4
  generalized supports in total (GMC): 5
  
  == Probabilistic evaluation (SPPQE_q) ==
  Pr(D ⊨ q) at p = 1/3:  11/81  (≈ 0.1358)
  
  == Dichotomy classification (Figure 1b) ==
  verdict: #P-hard
    rule: non-hierarchical sjf-CQ (Corollary 4.5 + [9])
  
  == FGMC through an SVC oracle (Lemma 4.1) ==
  recovered: z^2 + 3·z^3 + z^4  with 5 SVC calls — matches the direct count
  
  $ ../../examples/bibliography.exe
  q* = CQ[Keyword(?y,shapley), Publication(?x,?y)]
  
  Shapley value of author constants (SVC^const, §6.4):
    alice    1/3      (≈ 0.3333)
    bob      1/3      (≈ 0.3333)
    carol    1/3      (≈ 0.3333)
    dave     0        (≈ 0.0000)
  (coefficient k = number of author subsets of size k whose induced
  database contains a 'shapley' publication)
  
  FGMC^const polynomial: 3·z^1 + 6·z^2 + 4·z^3 + z^4
  
  Prop. 6.3 reduction: recovered 3·z^1 + 6·z^2 + 4·z^3 + z^4 with 5 SVC^const calls — matches
  
  Per-fact view (facts of the Publication relation endogenous):
    Publication(alice,p1)        1/4
    Publication(alice,p2)        1/4
    Publication(bob,p2)          1/4
    Publication(carol,p4)        1/4
  $ ../../examples/road_network.exe
  network: 8 edges, query RPQ[RoadRail*Road(home,hub)]
  
  reachable? true
  
  Shapley value of each link (its share in keeping home → hub):
    Road(stationC,hub)           69/140   (≈ 0.4929)
    Road(home,stationA)          67/420   (≈ 0.1595)
    Rail(stationD,stationC)      23/210   (≈ 0.1095)
    Road(home,stationD)          23/210   (≈ 0.1095)
    Rail(stationA,stationC)      8/105    (≈ 0.0762)
    Rail(stationA,stationB)      11/420   (≈ 0.0262)
    Rail(stationB,stationC)      11/420   (≈ 0.0262)
    Ferry(home,hub)              0        (≈ 0.0000)
  
  Note how the two unavoidable Road links dominate, the redundant rail
  segments share their corridor's value, and the Ferry edge gets 0.
  
  Corollary 4.3 on related languages:
    Road                   FP       Corollary 4.3: all words of length ≤ 2
    Road Rail              FP       Corollary 4.3: all words of length ≤ 2
    Road Rail Road         #P-hard  Corollary 4.3: word of length ≥ 3
    Road Rail* Road        #P-hard  Corollary 4.3: word of length ≥ 3
    Road+Rail              FP       Corollary 4.3: all words of length ≤ 2
  
  minimal supports (inclusion-minimal link sets):
    {Rail(stationD,stationC), Road(home,stationD), Road(stationC,hub)}
    {
  Rail(stationA,stationC), Road(home,stationA), Road(stationC,hub)}
    {
  Rail(stationA,stationB), Rail(stationB,stationC), Road(home,stationA),
  Road(stationC,hub)}
  
  Pr(connection survives | each link up w.p. 3/4) = 10503/16384 (≈ 0.6411)
  
  Shapley value of intermediate stations (SVC^const = node Shapley, §6.4):
    stationC   2/3      (≈ 0.6667)
    stationA   1/6      (≈ 0.1667)
    stationD   1/6      (≈ 0.1667)
    stationB   0        (≈ 0.0000)
  $ ../../examples/hardness_pipeline.exe
  query   : CQ[R(?x), S(?x,?y), T(?y)]  (non-hierarchical: SVC is #P-hard, Cor. 4.5)
  database:
  endo: {R(a), S(a,b), S(a,c), T(b), T(c)}
  exo:  {R(z)}
  
  classifier: #P-hard — non-hierarchical sjf-CQ (Corollary 4.5 + [9])
  
  running the Lemma 4.1 construction (Figure 2):
    oracle call 1: |A_n| =  7, |A| =  9, Sh(μ = R(vx#3)) = 17/70
    oracle call 2: |A_n| =  8, |A| = 11, Sh(μ = R(vx#3)) = 33/280
    oracle call 3: |A_n| =  9, |A| = 13, Sh(μ = R(vx#3)) = 43/630
    oracle call 4: |A_n| = 10, |A| = 15, Sh(μ = R(vx#3)) = 37/840
    oracle call 5: |A_n| = 11, |A| = 17, Sh(μ = R(vx#3)) = 106/3465
    oracle call 6: |A_n| = 12, |A| = 19, Sh(μ = R(vx#3)) = 69/3080
  
  recovered FGMC polynomial: 2·z^3 + 4·z^4 + z^5
  direct counting          : 2·z^3 + 4·z^4 + z^5
  agreement: true
  
  Reading: coefficient j = number of size-j subsets of the 5 endogenous
  facts that (with the exogenous R(z)) satisfy q_RST.  The reduction
  used 6 unit-cost SVC calls plus polynomial-time arithmetic — so a
  polynomial SVC algorithm would yield a polynomial FGMC algorithm,
  which cannot exist unless FP = #P.
  
  the same counts through a max-SVC oracle (Prop. 6.2):
    recovered: 2·z^3 + 4·z^4 + z^5 with 6 max-SVC calls

  $ ../../examples/provenance_tour.exe
  query: Flight(?x,?y), Visa(?y)  —  "is some reachable city visa-ready?"
  
  Bool      : true
  Counting  : 3 derivations
  Tropical  : cheapest derivation costs 3
  ℕ[X]      : Flight(lyon,tokyo)·Visa(tokyo) + Flight(paris,osaka)·Visa(osaka) + Flight(paris,tokyo)·Visa(tokyo)
  
  universality check: ℕ[X] → Counting gives 3 (same)
  
  Boolean lineage (from provenance): ((Flight(lyon,tokyo) ∧ Visa(tokyo)) ∨ (Flight(paris,osaka) ∧ Visa(osaka)) ∨ (Flight(paris,tokyo) ∧ Visa(tokyo)))
  
  Shapley values computed from that lineage:
    Visa(tokyo)              11/30
    Flight(paris,osaka)      1/5
    Visa(osaka)              1/5
    Flight(lyon,tokyo)       7/60
    Flight(paris,tokyo)      7/60
  
  Reading: each Visa fact backs one route and partially another; the
  redundant Flights split their routes' credit, exactly as the Shapley
  axioms prescribe.
