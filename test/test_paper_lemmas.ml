open Test_util

(* Direct empirical checks of the paper's lemmas as mathematical statements
   (not of our reductions): island supports, the Claim A.2 identity, the
   Lemma 4.5 characterization, hierarchy structure. *)

(* Lemma 4.2: a fresh minimal support S of a connected hom-closed query is
   an island — for any fact set S' sharing no constants with S, every
   minimal support of q inside S ∪ S' is contained in S or in S'. *)
let prop_island_support =
  qcheck ~count:40 "Lemma 4.2: island property of connected supports"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let q = Query_parse.parse "R(?x), S(?x,?y), T(?y)" in
       Term.reset_fresh ();
       let s = Option.get (Query.fresh_support q) in
       let r = Workload.rng seed in
       (* an environment with entirely disjoint constants *)
       let s' =
         Database.all
           (Workload.random_database r ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
              ~consts:[ "e1"; "e2"; "e3" ] ~n_endo:(1 + Workload.int r 5) ~n_exo:0)
       in
       assert (Term.Sset.is_empty (Term.Sset.inter (Fact.Set.consts s) (Fact.Set.consts s')));
       List.for_all
         (fun m -> Fact.Set.subset m s || Fact.Set.subset m s')
         (Query.minimal_supports_in q (Fact.Set.union s s')))

(* Lemma B.1: the fresh path support of an RPQ with |word| ≥ 2 is an island
   even against environments sharing the endpoint constants. *)
let prop_island_rpq =
  qcheck ~count:40 "Lemma B.1: RPQ path supports are islands"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let rpq = Rpq.of_string "AB" ~src:"s" ~dst:"t" in
       let q = Query.Rpq rpq in
       Term.reset_fresh ();
       let s, _ = Option.get (Rpq.fresh_path_support ~min_len:2 rpq) in
       let r = Workload.rng seed in
       (* environment may use the constants of C = {s, t} *)
       let s' =
         Database.all
           (Workload.random_graph r ~labels:[ "A"; "B" ] ~nodes:[ "s"; "t"; "u"; "v" ]
              ~n_endo:(1 + Workload.int r 5) ~n_exo:0)
       in
       List.for_all
         (fun m -> Fact.Set.subset m s || Fact.Set.subset m s')
         (Query.minimal_supports_in q (Fact.Set.union s s')))

(* Corollary 4.4's duplicable singleton supports are islands trivially:
   any minimal support either is the singleton or avoids it. *)
let prop_island_singleton =
  qcheck ~count:30 "Cor 4.4: singleton supports are islands"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let q = Query_parse.parse "ucq: A(?x) | R(?x), S(?x,?y), T(?y)" in
       match Pseudo_connected.duplicable_singleton q with
       | None -> false
       | Some w ->
         let s = w.Pseudo_connected.island in
         let r = Workload.rng seed in
         let s' =
           Database.all
             (Workload.random_database r
                ~rels:[ ("A", 1); ("R", 1); ("S", 2); ("T", 1) ]
                ~consts:[ "1"; "2" ] ~n_endo:(1 + Workload.int r 4) ~n_exo:0)
         in
         List.for_all
           (fun m -> Fact.Set.subset m s || Fact.Set.subset m s')
           (Query.minimal_supports_in q (Fact.Set.union s s')))

(* Claim A.2's identity: (1+z)^n · Pr(D_z ⊨ q) = Σ_j z^j FGMC_j, evaluated
   at several rational points. *)
let prop_claim_a2_identity =
  qcheck ~count:40 "Claim A.2: the generating identity"
    QCheck2.Gen.(pair (int_range 0 1000000) (int_range 1 6))
    (fun (seed, znum) ->
       let q = Query_parse.parse "R(?x), S(?x,?y), T(?y)" in
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
           ~consts:[ "1"; "2" ] ~n_endo:(1 + Workload.int r 4) ~n_exo:(Workload.int r 2)
       in
       let n = Database.size_endo db in
       let z = Rational.of_ints znum 3 in
       let p = Rational.div z (Rational.add Rational.one z) in
       let lhs =
         Rational.mul
           (Rational.pow (Rational.add Rational.one z) n)
           (Pqe.pqe_brute q (Prob_db.uniform db p))
       in
       let rhs = Poly.Z.eval_rational (Model_counting.fgmc_polynomial_brute q db) z in
       Rational.equal lhs rhs)

(* Lemma 4.5: for constant-free hom-closed queries, decomposability is
   exactly a disjoint-vocabulary conjunction — check the "⇐" on concrete
   minimal supports: supports of the two conjuncts are always disjoint. *)
let prop_lemma_45 =
  qcheck ~count:30 "Lemma 4.5: disjoint vocabularies ⇒ disjoint supports"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let q1 = Query_parse.parse "R(?x), S(?x,?y)" in
       let q2 = Query_parse.parse "T(?u,?v)" in
       let r = Workload.rng seed in
       let db =
         Database.all
           (Workload.random_database r ~rels:[ ("R", 1); ("S", 2); ("T", 2) ]
              ~consts:[ "1"; "2" ] ~n_endo:(2 + Workload.int r 4) ~n_exo:0)
       in
       List.for_all
         (fun m1 ->
            List.for_all
              (fun m2 -> Fact.Set.is_empty (Fact.Set.inter m1 m2))
              (Query.minimal_supports_in q2 db))
         (Query.minimal_supports_in q1 db))

(* Hierarchy structure: a connected hierarchical sjf-CQ has a separator
   variable (what Safe_plan relies on); conversely, the non-hierarchical
   witness triple has no separator in its component. *)
let test_hierarchy_separators () =
  let has_separator atoms =
    let cq = Cq.of_atoms atoms in
    Term.Sset.exists
      (fun x -> List.for_all (fun a -> Term.Sset.mem x (Atom.vars a)) atoms)
      (Cq.vars cq)
  in
  List.iter
    (fun qs ->
       let q = Cq.parse qs in
       List.iter
         (fun comp ->
            if List.length (Cq.atoms comp) > 1 then
              Alcotest.(check bool)
                (qs ^ " component has separator")
                (Cq.is_hierarchical q)
                (has_separator (Cq.atoms comp)))
         (Cq.variable_components q))
    [ "R(?x), S(?x,?y)"; "R(?x), S(?x,?y), U(?x,?y,?z)"; "R(?x), S(?x,?y), T(?y)";
      "A(?x,?y), B(?y,?z), C(?z,?w)" ]

(* Efficiency + symmetry of the Shapley value on query games (the axioms
   the §3.1 introduction recalls). *)
let prop_axioms_on_query_games =
  qcheck ~count:30 "Shapley axioms on query games" QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let q = Query_parse.parse "R(?x), S(?x,?y)" in
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("R", 1); ("S", 2) ] ~consts:[ "1"; "2" ]
           ~n_endo:(1 + Workload.int r 4) ~n_exo:(Workload.int r 2)
       in
       let game, _ = Game.of_query q db in
       Rational.is_zero (Game.efficiency_defect game) && Game.is_monotone game
       && Game.is_binary game)

(* Claim 5.2 (completion): with S′ a fresh minimal support of q′ added as
   exogenous facts, FGMC_q(D, j) = FGMC_{q∧q′}(D ⊎ S′, j) for every j —
   under Claim 5.1's preconditions (Dₓ ⊭ q, disjoint constants). *)
let prop_claim_52_completion =
  qcheck ~count:30 "Claim 5.2: exogenous completion preserves the counts"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let q = Query_parse.parse "R(?x), S(?x,?y), T(?y)" in
       let q' = Query_parse.parse "U(?u,?v)" in
       let qand = Query.And (q, q') in
       Term.reset_fresh ();
       let s' = Option.get (Query.fresh_support q') in
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
           ~consts:[ "1"; "2" ] ~n_endo:(1 + Workload.int r 4) ~n_exo:(Workload.int r 2)
       in
       Query.eval q (Database.exo db)
       ||
       let db' =
         Fact.Set.fold (fun f acc -> Database.add_exo f acc) s' db
       in
       Poly.Z.equal
         (Model_counting.fgmc_polynomial_brute q db)
         (Model_counting.fgmc_polynomial_brute qand db'))

(* Claim 5.3 (duplication): the pivot-renamed copies S^k ⊎ S⁻ are supports
   of q, connected through constants outside C, and pairwise distinct. *)
let test_claim_53_duplication () =
  let q = Query_parse.parse "R(?x), S(?x,?y), T(?y)" in
  Term.reset_fresh ();
  let s = Option.get (Query.fresh_support q) in
  let c = Query.consts q in
  let pivot = Term.Sset.min_elt (Fact.Set.consts s) in
  let s0 = Fact.Set.filter (fun f -> Term.Sset.mem pivot (Fact.consts f)) s in
  let s_minus = Fact.Set.diff s s0 in
  let copies =
    List.init 4 (fun k ->
        let fresh = Term.fresh_const ~prefix:(Printf.sprintf "copy%d" k) () in
        Fact.Set.rename (Term.Smap.singleton pivot fresh) s0)
  in
  List.iter
    (fun sk ->
       let support = Fact.Set.union sk s_minus in
       Alcotest.(check bool) "S^k ⊎ S⁻ supports q" true (Query.eval q support);
       Alcotest.(check bool) "connected outside C" true
         (Incidence.facts_connected_outside ~fixed:c support))
    copies;
  (* pairwise distinct *)
  List.iteri
    (fun i si ->
       List.iteri
         (fun j sj ->
            if i < j then
              Alcotest.(check bool) "distinct copies" false (Fact.Set.equal si sj))
         copies)
    copies

let suite =
  [
    prop_claim_52_completion;
    Alcotest.test_case "Claim 5.3: duplication structure" `Quick test_claim_53_duplication;
    prop_island_support;
    prop_island_rpq;
    prop_island_singleton;
    prop_claim_a2_identity;
    prop_lemma_45;
    Alcotest.test_case "hierarchy ⇔ separators" `Quick test_hierarchy_separators;
    prop_axioms_on_query_games;
  ]
