open Test_util

let b = Bigint.of_int
let s = Bigint.of_string

let test_constants () =
  check_bigint "zero" (b 0) Bigint.zero;
  check_bigint "one" (b 1) Bigint.one;
  check_bigint "minus_one" (b (-1)) Bigint.minus_one;
  Alcotest.(check bool) "is_zero zero" true (Bigint.is_zero Bigint.zero);
  Alcotest.(check bool) "is_zero one" false (Bigint.is_zero Bigint.one);
  Alcotest.(check int) "sign pos" 1 (Bigint.sign (b 42));
  Alcotest.(check int) "sign neg" (-1) (Bigint.sign (b (-42)));
  Alcotest.(check int) "sign zero" 0 (Bigint.sign Bigint.zero)

let test_int_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (Bigint.to_int (b n)))
    [ 0; 1; -1; 42; -42; 1 lsl 30; -(1 lsl 30); max_int; min_int; max_int - 1; min_int + 1 ]

let test_string_roundtrip () =
  List.iter
    (fun str -> Alcotest.(check string) str str (Bigint.to_string (s str)))
    [ "0"; "1"; "-1"; "123456789"; "-987654321";
      "123456789012345678901234567890123456789";
      "-340282366920938463463374607431768211456";
      "10000000000000000000000000000000000000000000001" ]

let test_to_int_overflow () =
  let big = s "123456789012345678901234567890" in
  Alcotest.(check (option int)) "overflow" None (Bigint.to_int_opt big);
  Alcotest.check_raises "to_int raises" (Failure "Bigint.to_int: overflow") (fun () ->
      ignore (Bigint.to_int big))

let test_addition () =
  check_bigint "2+3" (b 5) (Bigint.add (b 2) (b 3));
  check_bigint "neg" (b (-1)) (Bigint.add (b 2) (b (-3)));
  check_bigint "cancel" Bigint.zero (Bigint.add (b 7) (b (-7)));
  let big = s "99999999999999999999999999999" in
  check_bigint "carry chain" (s "100000000000000000000000000000") (Bigint.add big Bigint.one)

let test_subtraction () =
  check_bigint "5-3" (b 2) (Bigint.sub (b 5) (b 3));
  check_bigint "3-5" (b (-2)) (Bigint.sub (b 3) (b 5));
  let big = s "100000000000000000000000000000" in
  check_bigint "borrow chain" (s "99999999999999999999999999999") (Bigint.sub big Bigint.one)

let test_multiplication () =
  check_bigint "6*7" (b 42) (Bigint.mul (b 6) (b 7));
  check_bigint "sign" (b (-42)) (Bigint.mul (b 6) (b (-7)));
  check_bigint "zero" Bigint.zero (Bigint.mul (b 12345) Bigint.zero);
  check_bigint "square"
    (s "15241578753238836750495351562536198787501905199875019052100")
    (Bigint.mul (s "123456789012345678901234567890") (s "123456789012345678901234567890"))

let test_division () =
  let q, r = Bigint.divmod (b 17) (b 5) in
  check_bigint "17/5" (b 3) q;
  check_bigint "17 mod 5" (b 2) r;
  let q, r = Bigint.divmod (b (-17)) (b 5) in
  check_bigint "-17/5 (truncated)" (b (-3)) q;
  check_bigint "-17 mod 5" (b (-2)) r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bigint.divmod (b 1) Bigint.zero));
  check_bigint "divexact" (b 111) (Bigint.divexact (b 333) (b 3));
  Alcotest.check_raises "divexact inexact"
    (Invalid_argument "Bigint.divexact: inexact division") (fun () ->
        ignore (Bigint.divexact (b 10) (b 3)))

let test_factorial () =
  check_bigint "0!" Bigint.one (Bigint.factorial 0);
  check_bigint "5!" (b 120) (Bigint.factorial 5);
  check_bigint "20!" (s "2432902008176640000") (Bigint.factorial 20);
  check_bigint "30!" (s "265252859812191058636308480000000") (Bigint.factorial 30);
  (* n! = n * (n-1)! *)
  for n = 1 to 40 do
    check_bigint
      (Printf.sprintf "%d! recurrence" n)
      (Bigint.mul_int (Bigint.factorial (n - 1)) n)
      (Bigint.factorial n)
  done

let test_factorial_table () =
  (* exact pinned values for every n <= 12 (the int64-safe prefix) *)
  let expected =
    [ 1; 1; 2; 6; 24; 120; 720; 5040; 40320; 362880; 3628800; 39916800;
      479001600 ]
  in
  let t = Bigint.factorial_table 12 in
  Alcotest.(check int) "length" 13 (Array.length t);
  List.iteri
    (fun n e -> check_bigint (Printf.sprintf "%d! pinned" n) (b e) t.(n))
    expected;
  (* agreement with the one-shot function well past the pinned prefix *)
  let t40 = Bigint.factorial_table 40 in
  for n = 0 to 40 do
    check_bigint (Printf.sprintf "table.(%d) = factorial %d" n n)
      (Bigint.factorial n) t40.(n)
  done;
  (* the degenerate table is exactly [| 0! |] *)
  let t0 = Bigint.factorial_table 0 in
  Alcotest.(check int) "table 0 length" 1 (Array.length t0);
  check_bigint "table 0 content" Bigint.one t0.(0);
  Alcotest.check_raises "negative"
    (Invalid_argument "Bigint.factorial_table: negative argument") (fun () ->
        ignore (Bigint.factorial_table (-1)))

let test_binomial_row () =
  let row = Bigint.binomial_row 60 in
  Alcotest.(check int) "length" 61 (Array.length row);
  for k = 0 to 60 do
    check_bigint (Printf.sprintf "C(60,%d)" k) (Bigint.binomial 60 k) row.(k)
  done;
  check_bigint "row 0" Bigint.one (Bigint.binomial_row 0).(0);
  Alcotest.check_raises "negative"
    (Invalid_argument "Bigint.binomial_row: negative argument") (fun () ->
        ignore (Bigint.binomial_row (-1)))

(* every row is palindromic and agrees entrywise with the closed form *)
let prop_binomial_row_symmetry =
  Test_util.qcheck ~count:100 "binomial_row symmetry vs binomial"
    QCheck2.Gen.(int_range 0 80)
    (fun n ->
       let row = Bigint.binomial_row n in
       Array.length row = n + 1
       && Array.for_all Fun.id
            (Array.init (n + 1) (fun k ->
                 Bigint.equal row.(k) row.(n - k)
                 && Bigint.equal row.(k) (Bigint.binomial n k))))

let test_binomial () =
  check_bigint "C(0,0)" Bigint.one (Bigint.binomial 0 0);
  check_bigint "C(5,2)" (b 10) (Bigint.binomial 5 2);
  check_bigint "C(5,7)" Bigint.zero (Bigint.binomial 5 7);
  check_bigint "C(5,-1)" Bigint.zero (Bigint.binomial 5 (-1));
  check_bigint "C(60,30)" (s "118264581564861424") (Bigint.binomial 60 30);
  (* Pascal: C(n,k) = C(n-1,k-1) + C(n-1,k) *)
  for n = 1 to 25 do
    for k = 1 to n - 1 do
      check_bigint "pascal"
        (Bigint.add (Bigint.binomial (n - 1) (k - 1)) (Bigint.binomial (n - 1) k))
        (Bigint.binomial n k)
    done
  done

let test_falling_factorial () =
  check_bigint "ff(5,0)" Bigint.one (Bigint.falling_factorial 5 0);
  check_bigint "ff(5,2)" (b 20) (Bigint.falling_factorial 5 2);
  check_bigint "ff(5,5)" (b 120) (Bigint.falling_factorial 5 5);
  check_bigint "ff(5,6)" Bigint.zero (Bigint.falling_factorial 5 6)

let test_pow () =
  check_bigint "2^10" (b 1024) (Bigint.pow (b 2) 10);
  check_bigint "x^0" Bigint.one (Bigint.pow (b 999) 0);
  check_bigint "(-2)^3" (b (-8)) (Bigint.pow (b (-2)) 3);
  check_bigint "10^30" (s "1000000000000000000000000000000") (Bigint.pow (b 10) 30)

let test_gcd () =
  check_bigint "gcd(12,18)" (b 6) (Bigint.gcd (b 12) (b 18));
  check_bigint "gcd(-12,18)" (b 6) (Bigint.gcd (b (-12)) (b 18));
  check_bigint "gcd(0,5)" (b 5) (Bigint.gcd Bigint.zero (b 5));
  check_bigint "gcd(0,0)" Bigint.zero (Bigint.gcd Bigint.zero Bigint.zero);
  check_bigint "gcd of factorials" (Bigint.factorial 20)
    (Bigint.gcd (Bigint.factorial 20) (Bigint.factorial 25))

let test_compare () =
  Alcotest.(check bool) "lt" true (Bigint.lt (b (-5)) (b 3));
  Alcotest.(check bool) "big vs small" true (Bigint.gt (s "10000000000000000000000") (b max_int));
  Alcotest.(check bool) "neg big" true (Bigint.lt (s "-10000000000000000000000") (b min_int));
  check_bigint "min" (b 1) (Bigint.min (b 1) (b 2));
  check_bigint "max" (b 2) (Bigint.max (b 1) (b 2))

(* qcheck generators over int pairs; exercised through of_int *)
let arb_pair = QCheck2.Gen.(pair (int_range (-10000) 10000) (int_range (-10000) 10000))

let prop_add_matches_int =
  qcheck "add matches int semantics" arb_pair (fun (x, y) ->
      Bigint.equal (Bigint.add (b x) (b y)) (b (x + y)))

let prop_mul_matches_int =
  qcheck "mul matches int semantics" arb_pair (fun (x, y) ->
      Bigint.equal (Bigint.mul (b x) (b y)) (b (x * y)))

let prop_divmod_invariant =
  qcheck "a = q*b + r with |r| < |b|"
    QCheck2.Gen.(pair (int_range (-1000000) 1000000) (int_range 1 9999))
    (fun (a, d) ->
       let q, r = Bigint.divmod (b a) (b d) in
       Bigint.equal (Bigint.add (Bigint.mul q (b d)) r) (b a)
       && Bigint.lt (Bigint.abs r) (Bigint.abs (b d)))

let prop_string_roundtrip =
  qcheck "of_string ∘ to_string = id"
    QCheck2.Gen.(list_size (int_range 1 5) (int_range 0 9999))
    (fun chunks ->
       (* build a large random number from chunks *)
       let n =
         List.fold_left
           (fun acc c -> Bigint.add (Bigint.mul acc (b 10000)) (b c))
           Bigint.one chunks
       in
       Bigint.equal (Bigint.of_string (Bigint.to_string n)) n)

let prop_gcd_divides =
  qcheck "gcd divides both"
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 1 100000))
    (fun (x, y) ->
       let g = Bigint.gcd (b x) (b y) in
       Bigint.is_zero (Bigint.rem (b x) g) && Bigint.is_zero (Bigint.rem (b y) g))

let prop_big_divmod =
  qcheck "divmod invariant on large operands"
    QCheck2.Gen.(pair (int_range 2 999999) (int_range 2 999999))
    (fun (x, y) ->
       (* a = x^5, d = y^2: multi-limb operands *)
       let a = Bigint.pow (b x) 5 and d = Bigint.pow (b y) 2 in
       let q, r = Bigint.divmod a d in
       Bigint.equal (Bigint.add (Bigint.mul q d) r) a && Bigint.lt (Bigint.abs r) d)

(* ------------------------------------------------------------------ *)
(* Adaptive small/big representation: the promotion boundary           *)
(* ------------------------------------------------------------------ *)

module BT = Bigint.For_tests

let p62 = Bigint.pow (b 2) 62

(* A value is entitled to the small tier iff it fits a native int other
   than min_int; the canonical-form invariant says the tier ALWAYS
   matches that entitlement. *)
let in_small_range n =
  match Bigint.to_int_opt n with
  | Some v -> v <> min_int
  | None -> false

let check_canonical ctx r =
  if not (BT.canonical r) then Alcotest.failf "%s: non-canonical result" ctx;
  if BT.is_small r <> in_small_range r then
    Alcotest.failf "%s: value %s on the wrong tier" ctx (Bigint.to_string r)

(* Every binary op at the representation boundary: max_int, min_int,
   ±(2^62 ± 1), powers of two around the 31-bit multiplication fast-path
   bound, and small values whose products straddle the promotion
   threshold. *)
let boundaries =
  let near x = [ Bigint.pred x; x; Bigint.succ x ] in
  List.concat
    [ [ Bigint.zero; Bigint.one; Bigint.minus_one; b 2; b (-3); b 1000 ];
      near (b max_int); near (b min_int);
      near p62; near (Bigint.neg p62);
      near (b (1 lsl 31)); near (b (-(1 lsl 31)));
      (* isqrt(2^62) and friends: pairs multiply to straddle 2^62 *)
      near (b 2147483648); near (b 3037000499) ]

let test_promotion_boundary () =
  List.iter
    (fun x ->
       List.iter
         (fun y ->
            let fx = BT.force_big x and fy = BT.force_big y in
            let ctx op =
              Printf.sprintf "%s %s %s" (Bigint.to_string x) op (Bigint.to_string y)
            in
            (* adaptive result = public op on forced-Big inputs = pure
               magnitude-path reference, and always canonical *)
            let check name adaptive forced reference =
              check_bigint (ctx name) forced adaptive;
              check_bigint (ctx (name ^ "-ref")) reference adaptive;
              check_canonical (ctx name) adaptive
            in
            check "add" (Bigint.add x y) (Bigint.add fx fy) (BT.add_ref x y);
            check "sub" (Bigint.sub x y) (Bigint.sub fx fy) (BT.sub_ref x y);
            check "mul" (Bigint.mul x y) (Bigint.mul fx fy) (BT.mul_ref x y);
            check_bigint (ctx "min") (Bigint.min fx fy) (Bigint.min x y);
            check_bigint (ctx "max") (Bigint.max fx fy) (Bigint.max x y);
            let g = Bigint.gcd x y in
            check_bigint (ctx "gcd") (Bigint.gcd fx fy) g;
            check_canonical (ctx "gcd") g;
            Alcotest.(check int) (ctx "compare")
              (Bigint.compare x y) (Bigint.compare fx fy);
            Alcotest.(check bool) (ctx "equal")
              (Bigint.equal x y) (Bigint.equal fx fy);
            if not (Bigint.is_zero y) then begin
              let q, r = Bigint.divmod x y in
              let fq, fr = Bigint.divmod fx fy in
              check_bigint (ctx "div") fq q;
              check_bigint (ctx "rem") fr r;
              check_canonical (ctx "div") q;
              check_canonical (ctx "rem") r;
              check_bigint (ctx "divmod-invariant") x
                (Bigint.add (Bigint.mul q y) r)
            end)
         boundaries)
    boundaries

(* sub x x, promotion and demotion all land on the one canonical zero:
   no negative zero, no empty-vs-[|0|] magnitude split, and hashes agree
   across representations. *)
let test_zero_normalization () =
  List.iter
    (fun x ->
       let z = Bigint.sub x x in
       Alcotest.(check int) "compare zero (sub x x)" 0
         (Bigint.compare Bigint.zero z);
       Alcotest.(check bool) "sub x x is the small-tier zero" true
         (BT.is_small z);
       check_canonical "sub x x" z;
       Alcotest.(check int) "hash (sub x x) = hash zero"
         (Bigint.hash Bigint.zero) (Bigint.hash z);
       let fz = Bigint.sub (BT.force_big x) (BT.force_big x) in
       Alcotest.(check bool) "forced sub x x demotes to canonical zero" true
         (BT.is_small fz);
       Alcotest.(check int) "compare zero (forced sub x x)" 0
         (Bigint.compare Bigint.zero fz);
       check_bigint "neg zero" Bigint.zero (Bigint.neg z);
       Alcotest.(check int) "hash across representations"
         (Bigint.hash x) (Bigint.hash (BT.force_big x)))
    boundaries;
  (* demotion: a genuinely big intermediate shrinking back under the
     boundary must land on the small tier *)
  let big = Bigint.mul (b max_int) (b 12345) in
  Alcotest.(check bool) "promoted product is big" false (BT.is_small big);
  let back = Bigint.divexact big (b 12345) in
  Alcotest.(check bool) "exact quotient demotes" true (BT.is_small back);
  check_bigint "round trip" (b max_int) back

(* Operands drawn to land on, around and far beyond the boundary. *)
let gen_operand =
  QCheck2.Gen.(
    oneof
      [ map b (int_range (-1000) 1000);
        map (fun k -> Bigint.sub (b max_int) (b k)) (int_range (-1000) 1000);
        map (fun k -> Bigint.add (b min_int) (b k)) (int_range (-1000) 1000);
        map
          (fun (k, e) -> Bigint.mul_int (Bigint.pow (b 10) e) k)
          (pair (int_range (-9999) 9999) (int_range 10 40)) ])

(* 1000 random op sequences, evaluated step by step under the adaptive
   representation and under a forced-Big reference path; every
   intermediate must agree in value and the adaptive one must be
   canonical. *)
let prop_differential_sequences =
  qcheck ~count:1000 "adaptive = forced-Big over random op sequences"
    QCheck2.Gen.(
      pair gen_operand (list_size (int_range 1 12) (pair (int_range 0 4) gen_operand)))
    (fun (start, ops) ->
       let apply tag x y =
         match tag with
         | 0 -> Bigint.add x y
         | 1 -> Bigint.sub x y
         | 2 -> Bigint.mul x y
         | 3 -> if Bigint.is_zero y then x else Bigint.div x y
         | _ -> Bigint.gcd x y
       in
       let apply_forced tag x y =
         let fy = BT.force_big y in
         match tag with
         | 0 -> BT.add_ref x fy
         | 1 -> BT.sub_ref x fy
         | 2 -> BT.mul_ref x fy
         | 3 -> if Bigint.is_zero y then x else BT.force_big (Bigint.div x fy)
         | _ -> BT.force_big (Bigint.gcd x fy)
       in
       let rec go a r = function
         | [] -> true
         | (tag, y) :: rest ->
           let a' = apply tag a y in
           let r' = apply_forced tag r y in
           Bigint.equal a' r'
           && Bigint.hash a' = Bigint.hash r'
           && BT.canonical a'
           && go a' r' rest
       in
       go start (BT.force_big start) ops)

let prop_isqrt_differential =
  qcheck ~count:1000 "isqrt: adaptive = forced-Big, and exact floor"
    gen_operand
    (fun n0 ->
       let n = Bigint.abs n0 in
       let r = Bigint.isqrt n in
       let rf = Bigint.isqrt (BT.force_big n) in
       Bigint.equal r rf && BT.canonical r
       && Bigint.leq (Bigint.mul r r) n
       && Bigint.gt (Bigint.mul (Bigint.succ r) (Bigint.succ r)) n)

(* 20! is the last factorial on the small tier; the table must cross the
   boundary exactly there and agree with the one-shot recurrence. *)
let test_factorial_table_boundary () =
  let t = Bigint.factorial_table 30 in
  for n = 0 to 30 do
    check_bigint (Printf.sprintf "table.(%d)" n) (Bigint.factorial n) t.(n);
    check_canonical (Printf.sprintf "table.(%d)" n) t.(n)
  done;
  Alcotest.(check bool) "20! is small" true (BT.is_small t.(20));
  Alcotest.(check bool) "21! is big" false (BT.is_small t.(21))

let test_binomial_row_boundary () =
  (* row 67 contains both small entries (ends) and big ones (middle) *)
  let n = 67 in
  let row = Bigint.binomial_row n in
  for k = 0 to n do
    check_bigint (Printf.sprintf "C(%d,%d)" n k) (Bigint.binomial n k) row.(k);
    check_canonical (Printf.sprintf "C(%d,%d)" n k) row.(k)
  done;
  Alcotest.(check bool) "C(67,1) small" true (BT.is_small row.(1));
  Alcotest.(check bool) "C(67,33) big" false (BT.is_small row.(33))

(* Rational's certified CI bounds stay sound when their Bigint inputs mix
   tiers (sqrt_upper multiplies the operand up past the boundary even for
   small-tier inputs; ln_upper's doubling split walks back down). *)
let prop_sqrt_upper_adaptive =
  qcheck ~count:300 "sqrt_upper sound on mixed-tier inputs"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 1000))
    (fun (a, den) ->
       let big = Rational.of_bigint (Bigint.add p62 (b a)) in
       let small = Rational.of_ints a den in
       List.for_all
         (fun x ->
            let s = Rational.sqrt_upper x in
            Rational.leq x (Rational.mul s s))
         [ small; big; Rational.div big (Rational.of_int den) ])

let prop_ln_upper_adaptive =
  qcheck ~count:300 "ln_upper sound on mixed-tier inputs"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 1000))
    (fun (a, den) ->
       (* 1 + a/den over [1, 10^6], and a value past the small tier *)
       let xs =
         [ Rational.add Rational.one (Rational.of_ints a den);
           Rational.of_bigint (Bigint.add p62 (b a)) ]
       in
       List.for_all
         (fun x ->
            let u = Rational.to_float (Rational.ln_upper x) in
            u >= log (Rational.to_float x) -. 1e-9)
         xs)

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
    Alcotest.test_case "addition" `Quick test_addition;
    Alcotest.test_case "subtraction" `Quick test_subtraction;
    Alcotest.test_case "multiplication" `Quick test_multiplication;
    Alcotest.test_case "division" `Quick test_division;
    Alcotest.test_case "factorial" `Quick test_factorial;
    Alcotest.test_case "factorial table" `Quick test_factorial_table;
    Alcotest.test_case "binomial" `Quick test_binomial;
    Alcotest.test_case "binomial row" `Quick test_binomial_row;
    prop_binomial_row_symmetry;
    Alcotest.test_case "falling factorial" `Quick test_falling_factorial;
    Alcotest.test_case "pow" `Quick test_pow;
    Alcotest.test_case "gcd" `Quick test_gcd;
    Alcotest.test_case "compare" `Quick test_compare;
    prop_add_matches_int;
    prop_mul_matches_int;
    prop_divmod_invariant;
    prop_string_roundtrip;
    prop_gcd_divides;
    prop_big_divmod;
    Alcotest.test_case "promotion boundary ops" `Quick test_promotion_boundary;
    Alcotest.test_case "zero normalization" `Quick test_zero_normalization;
    Alcotest.test_case "factorial table boundary" `Quick test_factorial_table_boundary;
    Alcotest.test_case "binomial row boundary" `Quick test_binomial_row_boundary;
    prop_differential_sequences;
    prop_isqrt_differential;
    prop_sqrt_upper_adaptive;
    prop_ln_upper_adaptive;
  ]
