(* Static analyzer: golden table of diagnostic codes, certificate
   verification (every certificate re-checked by the independent
   Certcheck), and the "clean analysis ⇒ SVC runs" property. *)

open Test_util

let codes ds = List.map (fun d -> d.Diagnostic.code) ds

let certs_ok ?query ?database ?db_source name ds =
  Alcotest.(check bool)
    (name ^ ": certificates verify")
    true
    (Certcheck.check_all ?query ?database ?db_source ds)

(* One scenario per diagnostic code; returns the codes it produced after
   checking all its certificates. *)
let query_scenario src =
  let q, ds = Analyze.query_src src in
  (match q with Some q -> certs_ok ~query:q src ds | None -> ());
  codes ds

let db_scenario text =
  let db, ds = Analyze.database_src text in
  (match db with
   | Some db -> certs_ok ~database:db ~db_source:text text ds
   | None -> certs_ok ~db_source:text text ds);
  codes ds

let pair_scenario qsrc db =
  let q = Query_parse.parse qsrc in
  let ds = Analyze.pair q db in
  certs_ok ~query:q ~database:db qsrc ds;
  codes ds

let db_of text =
  match Analyze.database_src text with
  | Some db, _ -> db
  | None, _ -> Alcotest.fail "scenario database did not parse"

let test_golden_code_table () =
  let big_db = Workload.rst_gadget ~rows:5 ~extra_exo:false () in
  let scenarios =
    [ ("Q001", query_scenario "R(?x");
      ("Q002", query_scenario "zzz: R(?x)");
      ("Q003", query_scenario "R(?x), S(?x,?y), T(?y)");
      ("Q003", query_scenario "cqneg: R(?x), S(?x,?y), !T(?y)");
      ("Q004", query_scenario "rpq: (A B C)(s,t)");
      ("Q005", query_scenario "crpq: (A~)(?x,?y)");
      ("Q006", query_scenario "R(?x,?y), R(?x,?z)");
      ("Q007", query_scenario "R(?x,?y), R(?x,?z)");
      ("Q008", query_scenario "ucq: R(?x,?y) | R(?u,?v), S(?u)");
      ("Q009", query_scenario "R(?x), S(?y)");
      ("D101", db_scenario "endo R(a)\njunk line\n");
      ("D102", db_scenario "endo R(a)\nendo R(a,b)\n");
      ("D103", db_scenario "endo R(a)\nexo R(a)\n");
      ("D104", db_scenario "endo R(a)\nendo R(a)\n");
      ("X201", pair_scenario "R(?x), T(?x)" (db_of "endo R(a)\n"));
      ("X202", pair_scenario "R(?x,?y)" (db_of "endo R(a)\n"));
      ("X203", pair_scenario "R(?x), S(?x,?y), T(?y)" big_db);
      ( "W301",
        let w =
          Workload.parse
            "case a\nquery R(?x)\nendo R(1)\ncase a\nquery R(?x)\nendo R(1)\n"
        in
        codes (Analyze.workload w) );
      ("W302", codes (Analyze.workload (Workload.make ~name:"empty" ~cases:[])));
      ("W303", codes (snd (Analyze.workload_src "bogus line\n"))) ]
  in
  List.iter
    (fun (code, produced) ->
       Alcotest.(check bool)
         (Printf.sprintf "%s produced (got %s)" code (String.concat "," produced))
         true (List.mem code produced))
    scenarios;
  let observed =
    List.sort_uniq String.compare (List.concat_map snd scenarios)
  in
  Alcotest.(check (list string)) "exactly the documented codes"
    [ "D101"; "D102"; "D103"; "D104"; "Q001"; "Q002"; "Q003"; "Q004"; "Q005";
      "Q006"; "Q007"; "Q008"; "Q009"; "W301"; "W302"; "W303"; "X201"; "X202";
      "X203" ]
    observed

let test_severities_and_gate () =
  let _, err = Analyze.query_src "zzz: R(?x)" in
  let warn = Analyze.query (Query_parse.parse "R(?x), S(?x,?y), T(?y)") in
  let hints = Analyze.query (Query_parse.parse "R(?x), S(?y)") in
  Alcotest.(check bool) "error gates" true (Diagnostic.gate ~strict:false err);
  Alcotest.(check bool) "warning passes lax" false (Diagnostic.gate ~strict:false warn);
  Alcotest.(check bool) "warning gates strict" true (Diagnostic.gate ~strict:true warn);
  Alcotest.(check bool) "hint never gates" false (Diagnostic.gate ~strict:true hints);
  Alcotest.(check int) "one error" 1 (Diagnostic.count Diagnostic.Error err);
  Alcotest.(check (option string)) "max severity" (Some "warning")
    (Option.map Diagnostic.severity_to_string (Diagnostic.max_severity warn))

let test_checker_rejects_forgeries () =
  (* a certificate transplanted onto the wrong query must be rejected *)
  let hard = Query_parse.parse "R(?x), S(?x,?y), T(?y)" in
  let easy = Query_parse.parse "R(?x), S(?x,?y)" in
  let ds = Analyze.query hard in
  let q003 = List.find (fun d -> d.Diagnostic.code = "Q003") ds in
  Alcotest.(check bool) "valid on its query" true (Certcheck.check ~query:hard q003);
  Alcotest.(check bool) "rejected on a hierarchical query" false
    (Certcheck.check ~query:easy q003);
  (* a tampered hard word must be rejected *)
  let rpq = Query_parse.parse "rpq: (A B C)(s,t)" in
  let forged =
    Diagnostic.warning "Q004"
      ~certificate:(Diagnostic.Hard_word [ "A"; "B"; "Z" ])
      "forged"
  in
  Alcotest.(check bool) "forged word rejected" false (Certcheck.check ~query:rpq forged);
  (* a component split that shares a variable must be rejected *)
  let forged_split =
    Diagnostic.hint "Q009"
      ~certificate:
        (Diagnostic.Component_split
           ( [ Atom.make "R" [ Term.var "x" ] ],
             [ Atom.make "S" [ Term.var "x"; Term.var "y" ] ] ))
      "forged"
  in
  Alcotest.(check bool) "connected split rejected" false
    (Certcheck.check ~query:easy forged_split);
  (* a blowup certificate with a forged plan width must be rejected *)
  let big_db = Workload.rst_gadget ~rows:5 ~extra_exo:false () in
  let ds = Analyze.pair hard big_db in
  let x203 = List.find (fun d -> d.Diagnostic.code = "X203") ds in
  Alcotest.(check bool) "honest plan width verifies" true
    (Certcheck.check ~query:hard ~database:big_db x203);
  (match x203.Diagnostic.certificate with
   | Some (Diagnostic.Blowup b) ->
     Alcotest.(check bool) "X203 carries a plan width" true
       (b.plan_width <> None);
     let forged_width =
       { x203 with
         Diagnostic.certificate =
           Some
             (Diagnostic.Blowup
                { b with plan_width = Some (Option.get b.plan_width + 1) });
       }
     in
     Alcotest.(check bool) "forged plan width rejected" false
       (Certcheck.check ~query:hard ~database:big_db forged_width)
   | _ -> Alcotest.fail "X203 carries no blowup certificate")

let test_empty_proofs () =
  let check_re s expect =
    let re = Regex.parse s in
    match Analyze.empty_proof_of re with
    | Some p ->
      Alcotest.(check bool) (s ^ " expected empty") true expect;
      Alcotest.(check bool) (s ^ " proof replays") true (Certcheck.check_empty_proof re p)
    | None -> Alcotest.(check bool) (s ^ " expected nonempty") false expect
  in
  check_re "~" true;
  check_re "A~" true;
  check_re "~+~" true;
  check_re "A" false;
  check_re "~*" false;  (* ∅* = {ε} *)
  check_re "A+~" false

let test_svc_debug_gate () =
  let db = db_of "endo R(a)\nendo R(a,b)\n" in
  let q = Query_parse.parse "R(?x)" in
  Unix.putenv "SVC_DEBUG" "1";
  let raised =
    match Svc.svc_all q db with
    | _ -> false
    | exception Invalid_argument msg ->
      (* the rendered diagnostics must name the offending code *)
      let rec contains i =
        i + 4 <= String.length msg && (String.sub msg i 4 = "D102" || contains (i + 1))
      in
      contains 0
  in
  Unix.putenv "SVC_DEBUG" "";
  Alcotest.(check bool) "SVC_DEBUG refuses an arity-conflicted database" true raised;
  (* with the variable unset the same call goes through *)
  Alcotest.(check int) "gate off: svc_all runs" 2 (List.length (Svc.svc_all q db))

(* ---------------- properties ---------------- *)

let gen_cq =
  let open QCheck2.Gen in
  let term =
    frequency
      [ (4, map Term.var (oneofl [ "x"; "y"; "z"; "w" ]));
        (1, map Term.const (oneofl [ "a"; "b" ])) ]
  in
  let atom =
    oneofl [ ("R", 1); ("S", 2); ("T", 1); ("U", 2); ("V", 3) ]
    >>= fun (r, k) -> map (Atom.make r) (list_repeat k term)
  in
  map Cq.of_atoms (list_size (int_range 1 4) atom)

let prop_query_certificates_verify =
  qcheck ~count:300 "every query certificate re-verifies" gen_cq (fun cq ->
      let q = Query.Cq cq in
      Certcheck.check_all ~query:q (Analyze.query q))

let prop_hierarchical_certificate_complete =
  qcheck ~count:300 "non-hierarchical ⇔ valid violation certificate" gen_cq
    (fun cq ->
       match Hierarchical.certificate cq with
       | None -> Cq.is_hierarchical cq
       | Some v ->
         (not (Cq.is_hierarchical cq))
         && Hierarchical.check_violation (Cq.atoms cq) v)

let test_clean_analysis_never_raises () =
  let queries =
    List.map Query_parse.parse
      [ "R(?x), S(?x,?y)";
        "R(?x), S(?x,?y), T(?y)";
        "ucq: R(?x) | S(?x,?y), T(?y)";
        "cqneg: S(?x,?y), !T(?y)";
        "rpq: (S T*)(a,b)";
        "true" ]
  in
  let dbs =
    random_dbs ~seed:20240806 ~rounds:10
      ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
      ~consts:[ "a"; "b"; "c" ] ~n_endo:5 ~n_exo:2
  in
  List.iter
    (fun q ->
       List.iter
         (fun db ->
            let ds = Analyze.query q @ Analyze.database db @ Analyze.pair q db in
            if Diagnostic.count Diagnostic.Error ds = 0 then
              match Svc.svc_all q db with
              | values ->
                Alcotest.(check int)
                  "one value per endogenous fact" (Database.size_endo db)
                  (List.length values)
              | exception e ->
                Alcotest.failf "clean pair but svc_all raised %s on %s"
                  (Printexc.to_string e) (Query.to_string q))
         dbs)
    queries

let suite =
  [ Alcotest.test_case "golden diagnostic-code table" `Quick test_golden_code_table;
    Alcotest.test_case "severities and gating" `Quick test_severities_and_gate;
    Alcotest.test_case "checker rejects forgeries" `Quick test_checker_rejects_forgeries;
    Alcotest.test_case "regex emptiness proofs" `Quick test_empty_proofs;
    Alcotest.test_case "SVC_DEBUG analysis gate" `Quick test_svc_debug_gate;
    prop_query_certificates_verify;
    prop_hierarchical_certificate_complete;
    Alcotest.test_case "clean analysis ⇒ svc_all runs" `Quick
      test_clean_analysis_never_raises ]
