open Test_util

let test_ucq_reduce () =
  let u = Ucq.parse "R(?x,?y) | R(?x,?x)" in
  Alcotest.(check int) "redundant disjunct dropped" 1
    (List.length (Ucq.disjuncts (Ucq.reduce u)));
  let u2 = Ucq.parse "R(?x,?y), R(?x,?z) | S(?x)" in
  let r2 = Ucq.reduce u2 in
  Alcotest.(check bool) "cores taken" true
    (List.for_all (fun c -> List.length (Cq.atoms c) = 1) (Ucq.disjuncts r2));
  (* equivalence class keeps one representative *)
  let u3 = Ucq.parse "R(?x,?y) | R(?u,?v)" in
  Alcotest.(check int) "equivalent disjuncts merged" 1
    (List.length (Ucq.disjuncts (Ucq.reduce u3)))

let test_ucq_eval_implies () =
  let u = Ucq.parse "R(?x) | S(?x,?y)" in
  Alcotest.(check bool) "first" true (Ucq.eval u (facts [ fact "R" [ "1" ] ]));
  Alcotest.(check bool) "second" true (Ucq.eval u (facts [ fact "S" [ "1"; "2" ] ]));
  Alcotest.(check bool) "neither" false (Ucq.eval u (facts [ fact "T" [ "1" ] ]));
  Alcotest.(check bool) "CQ implies its union" true
    (Ucq.implies (Ucq.parse "R(?x)") u);
  Alcotest.(check bool) "union does not imply disjunct" false
    (Ucq.implies u (Ucq.parse "R(?x)"));
  Alcotest.(check bool) "equivalent after padding" true
    (Ucq.equivalent (Ucq.parse "R(?x)") (Ucq.parse "R(?x) | R(?y), R(?z)"))

let test_ucq_minimal_supports () =
  let u = Ucq.parse "R(?x), S(?x) | T(?y)" in
  let db = facts [ fact "R" [ "1" ]; fact "S" [ "1" ]; fact "T" [ "2" ] ] in
  let ms = Ucq.minimal_supports_in u db in
  Alcotest.(check int) "two supports" 2 (List.length ms);
  Alcotest.(check bool) "T alone" true
    (List.exists (Fact.Set.equal (facts [ fact "T" [ "2" ] ])) ms)

let test_query_eval_combinators () =
  let q1 = Query_parse.parse "cq: R(?x)" in
  let q2 = Query_parse.parse "cq: S(?x)" in
  let both = Query.And (q1, q2) in
  let either = Query.Or (q1, q2) in
  let db_r = facts [ fact "R" [ "1" ] ] in
  let db_rs = facts [ fact "R" [ "1" ]; fact "S" [ "2" ] ] in
  Alcotest.(check bool) "and needs both" false (Query.eval both db_r);
  Alcotest.(check bool) "and sat" true (Query.eval both db_rs);
  Alcotest.(check bool) "or sat" true (Query.eval either db_r);
  Alcotest.(check bool) "true query" true (Query.eval Query.True Fact.Set.empty)

let test_query_parse () =
  (match Query_parse.parse "rpq: (A B* C)(s, t)" with
   | Query.Rpq r ->
     Alcotest.(check string) "src" "s" (Rpq.src r);
     Alcotest.(check string) "dst" "t" (Rpq.dst r)
   | _ -> Alcotest.fail "expected RPQ");
  (match Query_parse.parse "R(?x,?y)" with
   | Query.Cq _ -> ()
   | _ -> Alcotest.fail "default tag is cq");
  (match Query_parse.parse "cqneg: R(?x), !S(?x)" with
   | Query.Cqneg _ -> ()
   | _ -> Alcotest.fail "expected CQ¬");
  Alcotest.(check bool) "true" true (Query_parse.parse "true" = Query.True);
  Alcotest.check_raises "bad tag"
    (Invalid_argument
       "Query_parse: unknown language tag \"zzz\" at offset 0 (near token \"zzz\")")
    (fun () -> ignore (Query_parse.parse "zzz: R(?x)"));
  (match Query_parse.parse_result "zzz: R(?x)" with
   | Error d ->
     Alcotest.(check string) "diag code" "Q002" d.Query_parse.code;
     Alcotest.(check int) "diag offset" 0 d.Query_parse.offset;
     Alcotest.(check (option string)) "diag token" (Some "zzz") d.Query_parse.token
   | Ok _ -> Alcotest.fail "expected a parse diagnostic");
  (match Query_parse.parse_result "R(?x" with
   | Error d -> Alcotest.(check string) "syntax code" "Q001" d.Query_parse.code
   | Ok _ -> Alcotest.fail "expected a parse diagnostic")

let test_minimal_supports_generic () =
  let q = Query_parse.parse "rpq: (AB)(s,t)" in
  let db = facts [ fact "A" [ "s"; "1" ]; fact "B" [ "1"; "t" ]; fact "A" [ "s"; "2" ] ] in
  let ms = Query.minimal_supports_in q db in
  Alcotest.(check int) "one support" 1 (List.length ms);
  Alcotest.(check bool) "true has empty support" true
    (Query.minimal_supports_in Query.True db = [ Fact.Set.empty ]);
  Alcotest.(check int) "unsatisfied" 0
    (List.length (Query.minimal_supports_in q (facts [ fact "A" [ "s"; "1" ] ])))

let test_fresh_supports () =
  let check_fresh q expected_size =
    match Query.fresh_support q with
    | Some s ->
      Alcotest.(check int) (Query.to_string q) expected_size (Fact.Set.cardinal s);
      Alcotest.(check bool) "is minimal support" true (Query.is_minimal_support q s)
    | None -> Alcotest.fail ("no support for " ^ Query.to_string q)
  in
  check_fresh (Query_parse.parse "R(?x), S(?x,?y), T(?y)") 3;
  check_fresh (Query_parse.parse "rpq: (AB)(s,t)") 2;
  check_fresh (Query_parse.parse "crpq: A(?x,?y), B(?y,?z)") 2;
  check_fresh (Query_parse.parse "ucq: R(?x) | S(?x,?y)") 1;
  check_fresh
    (Query.And (Query_parse.parse "R(?x)", Query_parse.parse "S(?y)"))
    2;
  Alcotest.(check bool) "⊤ has no fresh support" true (Query.fresh_support Query.True = None)

let test_fresh_support_core_collapse () =
  (* non-minimal CQ: the fresh support uses the core *)
  let q = Query_parse.parse "R(?x,?y), R(?x,?z)" in
  match Query.fresh_support q with
  | Some s -> Alcotest.(check int) "core size" 1 (Fact.Set.cardinal s)
  | None -> Alcotest.fail "expected support"

let test_relevance () =
  let q = Query_parse.parse "R(?x), S(?x,?y)" in
  let db = facts [ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "S" [ "9"; "9" ] ] in
  Alcotest.(check bool) "R(1) relevant" true (Query.relevant_in q db (fact "R" [ "1" ]));
  Alcotest.(check bool) "S(9,9) irrelevant" false
    (Query.relevant_in q db (fact "S" [ "9"; "9" ]))

let test_hom_closed_flag () =
  Alcotest.(check bool) "CQ closed" true
    (Query.is_hom_closed_syntactically (Query_parse.parse "R(?x)"));
  Alcotest.(check bool) "negation open" false
    (Query.is_hom_closed_syntactically (Query_parse.parse "cqneg: R(?x), !S(?x)"));
  Alcotest.(check bool) "And propagates" false
    (Query.is_hom_closed_syntactically
       (Query.And (Query_parse.parse "R(?x)", Query_parse.parse "cqneg: R(?x), !S(?x)")))

let test_cqneg_eval_cases () =
  let q = Cqneg.parse "R(?x), !S(?x)" in
  Alcotest.(check bool) "negation blocks" false
    (Cqneg.eval q (facts [ fact "R" [ "1" ]; fact "S" [ "1" ] ]));
  Alcotest.(check bool) "other witness" true
    (Cqneg.eval q (facts [ fact "R" [ "1" ]; fact "R" [ "2" ]; fact "S" [ "1" ] ]));
  Alcotest.check_raises "unsafe rejected"
    (Invalid_argument "Cqneg.make: unsafe negation (variable not in positive part)") (fun () ->
        ignore (Cqneg.make ~pos:[ Atom.make "R" [ Term.var "x" ] ]
                  ~neg:[ Atom.make "S" [ Term.var "y" ] ]))

let test_cqneg_components () =
  let q = Cqneg.parse "R(?x), S(?x,?y), T(?u), !W(?x), !V(?u)" in
  let comps = Cqneg.positive_variable_components q in
  Alcotest.(check int) "two components" 2 (List.length comps);
  Alcotest.(check bool) "guarded" true (Cqneg.has_component_guarded_negation q);
  let q2 = Cqneg.parse "R(?x), T(?u), !W(?x,?u)" in
  Alcotest.(check bool) "cross-component negation unguarded" false
    (Cqneg.has_component_guarded_negation q2)

(* lineage-level agreement: Query.eval vs Bform.eval on all subsets *)
let prop_supports_are_supports =
  qcheck ~count:60 "fresh supports satisfy their query" QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
       ignore seed;
       List.for_all
         (fun qs ->
            let q = Query_parse.parse qs in
            match Query.fresh_support q with
            | Some s -> Query.eval q s
            | None -> false)
         [ "R(?x), S(?x,?y), T(?y)"; "ucq: R(?x) | T(?y)"; "rpq: (AB*C)(s,t)";
           "crpq: (AB+BA)(?x,a)" ])

let suite =
  [
    Alcotest.test_case "UCQ reduce" `Quick test_ucq_reduce;
    Alcotest.test_case "UCQ eval and implication" `Quick test_ucq_eval_implies;
    Alcotest.test_case "UCQ minimal supports" `Quick test_ucq_minimal_supports;
    Alcotest.test_case "And/Or/True" `Quick test_query_eval_combinators;
    Alcotest.test_case "front-end parser" `Quick test_query_parse;
    Alcotest.test_case "generic minimal supports" `Quick test_minimal_supports_generic;
    Alcotest.test_case "fresh supports" `Quick test_fresh_supports;
    Alcotest.test_case "fresh support via core" `Quick test_fresh_support_core_collapse;
    Alcotest.test_case "relevance" `Quick test_relevance;
    Alcotest.test_case "hom-closure flag" `Quick test_hom_closed_flag;
    Alcotest.test_case "CQ¬ evaluation" `Quick test_cqneg_eval_cases;
    Alcotest.test_case "CQ¬ components" `Quick test_cqneg_components;
    prop_supports_are_supports;
  ]
