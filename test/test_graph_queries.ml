open Test_util

let test_rpq_eval () =
  let q = Rpq.of_string "A B* C" ~src:"s" ~dst:"t" in
  let g = facts [ fact "A" [ "s"; "1" ]; fact "B" [ "1"; "1" ]; fact "C" [ "1"; "t" ] ] in
  Alcotest.(check bool) "loop path" true (Rpq.eval q g);
  Alcotest.(check bool) "missing edge" false
    (Rpq.eval q (facts [ fact "A" [ "s"; "1" ]; fact "B" [ "1"; "1" ] ]));
  Alcotest.(check bool) "wrong direction" false
    (Rpq.eval q (facts [ fact "A" [ "1"; "s" ]; fact "C" [ "1"; "t" ] ]))

let test_rpq_epsilon () =
  let q = Rpq.of_string "A*" ~src:"s" ~dst:"s" in
  Alcotest.(check bool) "ε self loop on empty db" true (Rpq.eval q Fact.Set.empty);
  let q2 = Rpq.of_string "A*" ~src:"s" ~dst:"t" in
  Alcotest.(check bool) "ε distinct endpoints" false (Rpq.eval q2 Fact.Set.empty);
  Alcotest.(check bool) "path still needed" true
    (Rpq.eval q2 (facts [ fact "A" [ "s"; "t" ] ]))

let test_rpq_nonbinary_ignored () =
  let q = Rpq.of_string "A" ~src:"s" ~dst:"t" in
  Alcotest.(check bool) "ternary A ignored" false
    (Rpq.eval q (facts [ fact "A" [ "s"; "t"; "u" ] ]))

let test_reachable_pairs () =
  let g = facts [ fact "A" [ "1"; "2" ]; fact "A" [ "2"; "3" ]; fact "B" [ "3"; "1" ] ] in
  let pairs = Rpq.reachable_pairs (Regex.parse "AA") g in
  Alcotest.(check (list (pair string string))) "AA pairs" [ ("1", "3") ] pairs;
  let pairs_star = Rpq.reachable_pairs (Regex.parse "A*") g in
  Alcotest.(check bool) "ε pairs included" true (List.mem ("3", "3") pairs_star);
  Alcotest.(check bool) "transitive" true (List.mem ("1", "3") pairs_star)

let test_fresh_path_support () =
  let q = Rpq.of_string "AB*C" ~src:"s" ~dst:"t" in
  (match Rpq.fresh_path_support ~min_len:2 q with
   | Some (s, word) ->
     Alcotest.(check int) "shortest ≥ 2" 2 (List.length word);
     Alcotest.(check bool) "supports" true (Rpq.eval q s);
     Fact.Set.iter
       (fun f ->
          Alcotest.(check bool) "minimal" false (Rpq.eval q (Fact.Set.remove f s)))
       s
   | None -> Alcotest.fail "expected support");
  Alcotest.(check bool) "no long word" true
    (Rpq.fresh_path_support ~min_len:2 (Rpq.of_string "A" ~src:"s" ~dst:"t") = None)

let test_rpq_dichotomy_flags () =
  let mk l = Rpq.of_string l ~src:"s" ~dst:"t" in
  Alcotest.(check bool) "A: easy" false (Rpq.dichotomy_hard (mk "A"));
  Alcotest.(check bool) "AB: easy" false (Rpq.dichotomy_hard (mk "AB"));
  Alcotest.(check bool) "ABC: hard" true (Rpq.dichotomy_hard (mk "ABC"));
  Alcotest.(check bool) "AB*: hard (ABB…)" true (Rpq.dichotomy_hard (mk "AB*"));
  Alcotest.(check bool) "A+B pseudo-connected: no" false (Rpq.is_pseudo_connected (mk "A+B"));
  Alcotest.(check bool) "AB pseudo-connected" true (Rpq.is_pseudo_connected (mk "AB"))

let test_crpq_eval () =
  let q = Crpq.parse "(AB+BA)(?x,a), C(?x,?y)" in
  let g =
    facts
      [ fact "A" [ "1"; "2" ]; fact "B" [ "2"; "a" ]; fact "C" [ "1"; "9" ] ]
  in
  Alcotest.(check bool) "sat" true (Crpq.eval q g);
  (* remove the C edge: x has no outgoing C *)
  let g2 = facts [ fact "A" [ "1"; "2" ]; fact "B" [ "2"; "a" ] ] in
  Alcotest.(check bool) "no C" false (Crpq.eval q g2);
  (* shared variable must be consistent *)
  let g3 =
    facts
      [ fact "A" [ "1"; "2" ]; fact "B" [ "2"; "a" ]; fact "C" [ "7"; "9" ] ]
  in
  Alcotest.(check bool) "inconsistent x" false (Crpq.eval q g3)

let test_crpq_structure () =
  let q = Crpq.parse "A(?x,?y), B(?y,?z)" in
  Alcotest.(check bool) "connected" true (Crpq.is_connected q);
  Alcotest.(check bool) "sjf" true (Crpq.is_self_join_free q);
  let q2 = Crpq.parse "A(?x,?y), B(?u,?v)" in
  Alcotest.(check bool) "disconnected" false (Crpq.is_connected q2);
  Alcotest.(check int) "components" 2 (List.length (Crpq.components q2));
  Alcotest.(check bool) "cc-disjoint" true (Crpq.is_cc_disjoint q2);
  let q3 = Crpq.parse "A(?x,?y), A(?u,?v)" in
  Alcotest.(check bool) "shared vocab not cc-disjoint" false (Crpq.is_cc_disjoint q3)

let test_crpq_to_ucq () =
  let q = Crpq.parse "(AB+BA)(?x,a)" in
  (match Crpq.to_ucq ~max_len:2 q with
   | Some u ->
     Alcotest.(check int) "two disjuncts" 2 (List.length (Ucq.disjuncts u));
     (* agreement on a few graphs *)
     List.iter
       (fun g ->
          Alcotest.(check bool) "agree" (Crpq.eval q g) (Ucq.eval u g))
       [
         facts [ fact "A" [ "1"; "2" ]; fact "B" [ "2"; "a" ] ];
         facts [ fact "B" [ "1"; "2" ]; fact "A" [ "2"; "a" ] ];
         facts [ fact "A" [ "1"; "2" ]; fact "B" [ "3"; "a" ] ];
         Fact.Set.empty;
       ]
   | None -> Alcotest.fail "expected expansion");
  Alcotest.(check bool) "unbounded refused" true (Crpq.to_ucq ~max_len:3 (Crpq.parse "A*B(?x,?y)") = None)

let test_ucrpq () =
  let q = Ucrpq.parse "A(?x,?y) | (BC)(?x,a)" in
  Alcotest.(check bool) "first disjunct" true (Ucrpq.eval q (facts [ fact "A" [ "1"; "2" ] ]));
  Alcotest.(check bool) "second disjunct" true
    (Ucrpq.eval q (facts [ fact "B" [ "1"; "2" ]; fact "C" [ "2"; "a" ] ]));
  Alcotest.(check bool) "neither" false (Ucrpq.eval q (facts [ fact "C" [ "1"; "2" ] ]));
  Alcotest.(check bool) "not constant free" false (Ucrpq.is_constant_free q)

(* random-graph agreement between CRPQ evaluation and its UCQ expansion *)
let prop_crpq_ucq_agree =
  qcheck ~count:60 "CRPQ ≡ bounded UCQ expansion" QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
       let r = Workload.rng seed in
       let g =
         Database.all
           (Workload.random_graph r ~labels:[ "A"; "B" ] ~nodes:[ "a"; "1"; "2"; "3" ]
              ~n_endo:6 ~n_exo:0)
       in
       let q = Crpq.parse "(AB+BA)(?x,a)" in
       match Crpq.to_ucq ~max_len:2 q with
       | Some u -> Crpq.eval q g = Ucq.eval u g
       | None -> false)

let prop_rpq_monotone =
  qcheck ~count:60 "RPQ evaluation is monotone" QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
       let r = Workload.rng seed in
       let g =
         Database.all
           (Workload.random_graph r ~labels:[ "A"; "B"; "C" ]
              ~nodes:[ "s"; "t"; "1"; "2" ] ~n_endo:6 ~n_exo:0)
       in
       let q = Rpq.of_string "AB*C" ~src:"s" ~dst:"t" in
       (not (Rpq.eval q g))
       || Rpq.eval q (Fact.Set.add (fact "A" [ "s"; "s" ]) g))

let suite =
  [
    Alcotest.test_case "RPQ evaluation" `Quick test_rpq_eval;
    Alcotest.test_case "RPQ ε cases" `Quick test_rpq_epsilon;
    Alcotest.test_case "non-binary facts ignored" `Quick test_rpq_nonbinary_ignored;
    Alcotest.test_case "reachable pairs" `Quick test_reachable_pairs;
    Alcotest.test_case "fresh path support (Lemma B.1)" `Quick test_fresh_path_support;
    Alcotest.test_case "RPQ dichotomy flags (Cor 4.3)" `Quick test_rpq_dichotomy_flags;
    Alcotest.test_case "CRPQ evaluation" `Quick test_crpq_eval;
    Alcotest.test_case "CRPQ structure" `Quick test_crpq_structure;
    Alcotest.test_case "CRPQ → UCQ expansion" `Quick test_crpq_to_ucq;
    Alcotest.test_case "UCRPQ" `Quick test_ucrpq;
    prop_crpq_ucq_agree;
    prop_rpq_monotone;
  ]
