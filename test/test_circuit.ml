(* Differential and metamorphic property suite for the d-DNNF circuit
   backend.

   The circuit engine must be bit-identical to the conditioning engine and
   to the per-fact Claim A.1 path ([Svc.svc_all_naive]) on every query
   class — exact [Rational] equality, no tolerance.  On top of the
   differentials: metamorphic invariances (fact insertion order,
   endogenous→exogenous relabeling, duplicate-clause idempotence), the
   circuit invariants themselves verified by the independent
   [Circuit.Check] verifier (decomposability, smoothness, determinism,
   equivalence to the compiled formula), and the instrumentation contract
   (zero conditionings, deterministic normalized stats, stable JSON
   shape). *)

open Test_util

let qrst = Query_parse.parse "R(?x), S(?x,?y), T(?y)"

let values_equal v1 v2 =
  List.length v1 = List.length v2
  && List.for_all2
       (fun (f1, x1) (f2, x2) -> Fact.equal f1 f2 && Rational.equal x1 x2)
       v1 v2

let circuit_values q db =
  Engine.svc_all (Engine.create ~backend:`Circuit q db)

let conditioning_values q db =
  Engine.svc_all (Engine.create ~backend:`Conditioning q db)

(* circuit ≡ conditioning ≡ naive per-fact path, across the query corpus *)
let prop_circuit_vs_conditioning_vs_naive =
  qcheck ~count:300 "circuit = conditioning = naive" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let via_circuit = circuit_values q db in
       values_equal via_circuit (conditioning_values q db)
       && values_equal via_circuit (Svc.svc_all_naive q db))

let prop_circuit_graph =
  qcheck ~count:100 "circuit on rpq graph instances" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_graph_case seed in
       values_equal (circuit_values q db) (conditioning_values q db))

(* Fisher–Yates on the deterministic Workload rng, so qcheck shrinking
   stays reproducible. *)
let shuffle r l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Workload.int r (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(* metamorphic: the order facts are listed in cannot matter — the same
   partitioned database rebuilt from shuffled lists yields the same
   values in the same (canonical) order *)
let prop_permutation_invariance =
  qcheck ~count:100 "fact-order permutation invariance" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let r = Workload.rng (seed + 1) in
       let db' =
         Database.make
           ~endo:(shuffle r (Fact.Set.elements (Database.endo db)))
           ~exo:(shuffle r (Fact.Set.elements (Database.exo db)))
       in
       values_equal (circuit_values q db) (circuit_values q db'))

(* metamorphic: relabel one endogenous fact as exogenous; the two backends
   must keep agreeing on the smaller game (exercises lineages with
   exogenous facts folded in as constants) *)
let prop_relabel_exogenous =
  qcheck ~count:60 "endogenous→exogenous relabeling" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       match Database.endo_list db with
       | [] -> true
       | mu :: _ ->
         let db' = Database.make_exogenous mu db in
         let via_circuit = circuit_values q db' in
         values_equal via_circuit (conditioning_values q db')
         && values_equal via_circuit (Svc.svc_all_naive q db'))

(* metamorphic: conjoining or disjoining a lineage with itself changes
   nothing — the circuits of φ, φ∧φ and φ∨φ evaluate identically *)
let prop_duplicate_clause_idempotence =
  qcheck ~count:60 "duplicate-clause idempotence" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let phi = Lineage.lineage q db in
       let universe = Database.endo_list db in
       let eval f = Circuit.evaluate (Circuit.compile f) ~universe in
       let same (a : Circuit.evaluation) (b : Circuit.evaluation) =
         Poly.Z.equal a.Circuit.full b.Circuit.full
         && Array.for_all2
              (fun (f1, p1) (f2, p2) -> Fact.equal f1 f2 && Poly.Z.equal p1 p2)
              a.Circuit.by_fact b.Circuit.by_fact
       in
       let reference = eval phi in
       same reference (eval (Bform.conj [ phi; phi ]))
       && same reference (eval (Bform.disj [ phi; phi ])))

(* every compiled circuit passes the independent verifier, including the
   semantic equivalence check against the formula it was compiled from *)
let prop_check_invariants =
  qcheck ~count:100 "Check: smooth + decomposable + deterministic" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       let phi = Lineage.lineage q db in
       let c = Circuit.compile phi in
       match Circuit.Check.check ~formula:phi c with
       | Ok r ->
         r.Circuit.Check.nodes_checked = Circuit.node_count c
         && r.Circuit.Check.assignments
            = 1 lsl Fact.Set.cardinal (Bform.vars phi)
       | Error msg -> QCheck2.Test.fail_report msg)

let prop_banzhaf_circuit =
  qcheck ~count:50 "circuit banzhaf = conditioning banzhaf" Gen.seed_gen
    (fun seed ->
       let q, db = Gen.random_case seed in
       values_equal
         (Engine.banzhaf_all (Engine.create ~backend:`Circuit q db))
         (Engine.banzhaf_all (Engine.create ~backend:`Conditioning q db)))

(* the tentpole contract: zero per-fact conditionings, one lineage
   compilation, a live circuit in the stats *)
let test_no_conditioning () =
  let db = Gen.star ~spokes:8 in
  let q = Query_parse.parse "R(?x), S(?x,?y)" in
  let e = Engine.create ~backend:`Circuit q db in
  Alcotest.(check bool) "resolved to circuit" true (Engine.backend e = `Circuit);
  ignore (Engine.svc_all e);
  let s = Engine.stats e in
  Alcotest.(check string) "backend" "circuit" s.Stats.backend;
  Alcotest.(check int) "one compilation" 1 s.Stats.compilations;
  Alcotest.(check int) "zero conditionings" 0 s.Stats.conditionings;
  Alcotest.(check bool) "live nodes" true (s.Stats.circuit_nodes > 0);
  Alcotest.(check bool) "live edges" true (s.Stats.circuit_edges > 0);
  (* a second pass reuses the cached evaluation wholesale *)
  ignore (Engine.svc_all e);
  let s2 = Engine.stats e in
  Alcotest.(check int) "still zero conditionings" 0 s2.Stats.conditionings;
  Alcotest.(check int) "same nodes" s.Stats.circuit_nodes s2.Stats.circuit_nodes

(* `Auto resolution: circuit iff serial and at least threshold players *)
let test_auto_selection () =
  let q = Query_parse.parse "R(?x), S(?x,?y)" in
  let big = Gen.star ~spokes:(Engine.circuit_threshold + 2) in
  let small = Gen.star ~spokes:4 in
  let e_big = Engine.create q big in
  Alcotest.(check bool) "big serial → circuit" true
    (Engine.backend e_big = `Circuit && Engine.auto_selected e_big);
  let e_par = Engine.create ~jobs:2 q big in
  Alcotest.(check bool) "big parallel → conditioning" true
    (Engine.backend e_par = `Conditioning && not (Engine.auto_selected e_par));
  let e_small = Engine.create q small in
  Alcotest.(check bool) "small → conditioning" true
    (Engine.backend e_small = `Conditioning);
  let e_forced = Engine.create ~backend:`Conditioning q big in
  Alcotest.(check bool) "forced conditioning sticks" true
    (Engine.backend e_forced = `Conditioning && not (Engine.auto_selected e_forced));
  Alcotest.(check bool) "auto = explicit circuit" true
    (values_equal (Engine.svc_all e_big) (Engine.svc_all (Engine.create ~backend:`Circuit q big)))

(* a bounded circuit compile cache changes counters, never answers *)
let test_bounded_circuit_cache () =
  let db = Gen.bipartite ~rows:3 in
  let bounded = Engine.create ~backend:`Circuit ~cache_capacity:2 qrst db in
  let unbounded = Engine.create ~backend:`Circuit qrst db in
  Alcotest.(check bool) "same values" true
    (values_equal (Engine.svc_all bounded) (Engine.svc_all unbounded));
  let s = Engine.stats bounded in
  Alcotest.(check bool) "drops happened" true (s.Stats.circuit_cache_drops > 0);
  Alcotest.(check bool) "hits still happened" true (s.Stats.circuit_cache_hits > 0)

(* smoothing gadgets exist exactly when Shannon branches forget variables *)
let test_smoothing_counted () =
  let db = Gen.bipartite ~rows:3 in
  let c = Circuit.compile (Lineage.lineage qrst db) in
  Alcotest.(check bool) "smoothing nodes counted" true
    (Circuit.smoothing_nodes c > 0);
  match Circuit.Check.check c with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "verifier rejected smoothed circuit: %s" msg

(* Stats.normalize zeroes the circuit wall-clock fields (and only those of
   the new fields), and the JSON shape is pinned *)
let test_stats_normalize_and_json () =
  let db = Gen.star ~spokes:6 in
  let q = Query_parse.parse "R(?x), S(?x,?y)" in
  let e = Engine.create ~backend:`Circuit q db in
  ignore (Engine.svc_all e);
  let s = Stats.normalize (Engine.stats e) in
  Alcotest.(check (float 0.)) "circuit_compile_s zeroed" 0. s.Stats.circuit_compile_s;
  Alcotest.(check (float 0.)) "circuit_traverse_s zeroed" 0. s.Stats.circuit_traverse_s;
  Alcotest.(check (float 0.)) "compile_s zeroed" 0. s.Stats.compile_s;
  Alcotest.(check (float 0.)) "eval_s zeroed" 0. s.Stats.eval_s;
  Alcotest.(check bool) "counters survive normalize" true
    (s.Stats.circuit_nodes > 0 && s.Stats.backend = "circuit");
  (* two runs of the same workload normalize identically *)
  let e2 = Engine.create ~backend:`Circuit q db in
  ignore (Engine.svc_all e2);
  Alcotest.(check string) "deterministic normalized JSON"
    (Stats.to_json s)
    (Stats.to_json (Stats.normalize (Engine.stats e2)));
  (* the JSON shape itself is a stable contract *)
  Alcotest.(check string) "JSON shape of Stats.zero"
    "{\"players\":0,\"compilations\":0,\"conditionings\":0,\"cache_hits\":0,\
     \"cache_misses\":0,\"cache_size\":0,\"cache_capacity\":0,\
     \"cache_drops\":0,\"poly_ops\":0,\"jobs\":1,\"par_facts\":0,\
     \"par_cache_hits\":0,\"par_cache_misses\":0,\"par_steals\":0,\
     \"compile_ms\":0.000,\"eval_ms\":0.000,\"backend\":\"conditioning\",\
     \"circuit_nodes\":0,\"circuit_edges\":0,\"circuit_smoothing\":0,\
     \"circuit_cache_hits\":0,\"circuit_cache_misses\":0,\
     \"circuit_cache_drops\":0,\"circuit_compile_ms\":0.000,\
     \"circuit_traverse_ms\":0.000,\"sample_strategy\":\"\",\
     \"sample_seed\":0,\"sample_draws\":0,\"sample_exact_strata\":0,\
     \"sample_sampled_strata\":0,\"sample_max_hw\":\"0\",\
     \"sample_epsilon\":\"0\",\"sample_confidence\":\"0\",\
     \"sample_converged\":false}"
    (Stats.to_json Stats.zero)

(* null players sit outside the circuit's variable set and still get
   Shapley value 0 through the padding path *)
let test_null_player () =
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "2" ];
              fact "Z" [ "9" ] ]
      ~exo:[]
  in
  let e = Engine.create ~backend:`Circuit qrst db in
  check_rational "null player value" Rational.zero (Engine.svc e (fact "Z" [ "9" ]));
  Alcotest.check_raises "not endogenous"
    (Invalid_argument "Engine.svc: fact is not endogenous") (fun () ->
        ignore (Engine.svc e (fact "T" [ "9" ])))

(* degenerate lineages: constant-true and constant-false circuits *)
let test_constant_lineages () =
  let q = Query_parse.parse "R(?x)" in
  (* true lineage: an exogenous R fact satisfies the query outright *)
  let db_true =
    Database.make ~endo:[ fact "S" [ "1"; "2" ] ] ~exo:[ fact "R" [ "1" ] ]
  in
  (* false lineage: no R fact at all *)
  let db_false = Database.make ~endo:[ fact "S" [ "1"; "2" ] ] ~exo:[] in
  List.iter
    (fun db ->
       Alcotest.(check bool) "constant lineage agrees" true
         (values_equal (circuit_values q db) (Svc.svc_all_naive q db)))
    [ db_true; db_false ];
  let c = Circuit.compile Bform.True in
  (match Circuit.Check.check ~formula:Bform.True c with
   | Ok r -> Alcotest.(check int) "⊤ circuit is one node" 1 r.Circuit.Check.nodes_checked
   | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "⊤ mentions nothing" 0 (Fact.Set.cardinal (Circuit.vars c))

(* the workload runner accepts the backend and returns identical values *)
let test_workload_backend () =
  let w =
    Workload.make ~name:"circuit-test"
      ~cases:
        [ Workload.case ~name:"star" ~query_src:"R(?x), S(?x,?y)"
            ~db:(Gen.star ~spokes:3) ]
  in
  match (Workload.eval ~backend:`Circuit w, Workload.eval ~backend:`Conditioning w) with
  | [ rc ], [ rk ] ->
    Alcotest.(check bool) "same values" true
      (values_equal rc.Workload.values rk.Workload.values);
    Alcotest.(check string) "circuit stats backend" "circuit"
      rc.Workload.stats.Stats.backend
  | _ -> Alcotest.fail "expected one case result each"

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Check's max_vars guard refuses rather than silently skipping *)
let test_check_max_vars_guard () =
  let facts = List.init 10 (fun i -> fact "R" [ string_of_int i ]) in
  let phi = Bform.disj (List.map (fun f -> Bform.Fv f) facts) in
  let c = Circuit.compile phi in
  (match Circuit.Check.check ~max_vars:4 c with
   | Ok _ -> Alcotest.fail "expected Error from max_vars guard"
   | Error msg ->
     Alcotest.(check bool) "mentions the bound" true
       (contains_substring msg "10 > 4"));
  match Circuit.Check.check ~max_vars:10 c with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let suite =
  [
    prop_circuit_vs_conditioning_vs_naive;
    prop_circuit_graph;
    prop_permutation_invariance;
    prop_relabel_exogenous;
    prop_duplicate_clause_idempotence;
    prop_check_invariants;
    prop_banzhaf_circuit;
    Alcotest.test_case "no per-fact conditioning" `Quick test_no_conditioning;
    Alcotest.test_case "auto backend selection" `Quick test_auto_selection;
    Alcotest.test_case "bounded circuit cache drops, never lies" `Quick
      test_bounded_circuit_cache;
    Alcotest.test_case "smoothing counted and verified" `Quick
      test_smoothing_counted;
    Alcotest.test_case "stats normalize + JSON shape" `Quick
      test_stats_normalize_and_json;
    Alcotest.test_case "null player via padding" `Quick test_null_player;
    Alcotest.test_case "constant lineages" `Quick test_constant_lineages;
    Alcotest.test_case "workload backend" `Quick test_workload_backend;
    Alcotest.test_case "Check max_vars guard" `Quick test_check_max_vars_guard;
  ]
