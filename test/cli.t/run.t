A small database shared by all commands:

  $ cat > demo.db <<'DB'
  > endo R(1)
  > endo S(1,2)
  > endo T(2)
  > endo S(1,3)
  > exo  T(3)
  > DB

Shapley values of all endogenous facts (sorted by value):

  $ ../../bin/svc_cli.exe shapley demo.db "R(?x), S(?x,?y), T(?y)"
  R(1)                           7/12  (≈ 0.5833)
  S(1,3)                         1/4  (≈ 0.2500)
  S(1,2)                         1/12  (≈ 0.0833)
  T(2)                           1/12  (≈ 0.0833)
  sum: 1

The FGMC generating polynomial and total:

  $ ../../bin/svc_cli.exe count demo.db "R(?x), S(?x,?y), T(?y)"
  FGMC polynomial: z^2 + 3·z^3 + z^4
  GMC (total)    : 5

A single size:

  $ ../../bin/svc_cli.exe count demo.db "R(?x), S(?x,?y), T(?y)" --size 3
  FGMC(D, 3) = 3

Probabilistic evaluation at p = 1/3:

  $ ../../bin/svc_cli.exe prob demo.db "R(?x), S(?x,?y), T(?y)" -p 1/3
  Pr(D ⊨ q) = 11/81  (≈ 0.135802)

Dichotomy classification:

  $ ../../bin/svc_cli.exe classify "R(?x), S(?x,?y), T(?y)"
  query  : CQ[R(?x), S(?x,?y), T(?y)]
  verdict: #P-hard
  rule   : non-hierarchical sjf-CQ (Corollary 4.5 + [9])

  $ ../../bin/svc_cli.exe classify "rpq: (AB)(s,t)"
  query  : RPQ[AB(s,t)]
  verdict: FP
  rule   : Corollary 4.3: all words of length ≤ 2

The Lemma 4.1 reduction, end to end:

  $ ../../bin/svc_cli.exe reduce demo.db "R(?x), S(?x,?y), T(?y)"
  FGMC polynomial recovered through the SVC oracle:
    z^2 + 3·z^3 + z^4
  SVC oracle calls: 5
  cross-check vs direct counting: ok

Maximum contributor:

  $ ../../bin/svc_cli.exe max demo.db "R(?x), S(?x,?y), T(?y)"
  max contributor: R(1) with value 7/12

Errors are reported cleanly:

  $ ../../bin/svc_cli.exe classify "zzz: R(?x)"
  svc: internal error, uncaught exception:
       Invalid_argument("Query_parse: unknown language tag \"zzz\"")
       
  [125]

Banzhaf values (the other power index):

  $ ../../bin/svc_cli.exe banzhaf demo.db "R(?x), S(?x,?y), T(?y)"
  R(1)                           5/8  (≈ 0.6250)
  S(1,3)                         3/8  (≈ 0.3750)
  S(1,2)                         1/8  (≈ 0.1250)
  T(2)                           1/8  (≈ 0.1250)

Lineage inspection:

  $ ../../bin/svc_cli.exe lineage demo.db "R(?x), S(?x,?y), T(?y)"
  lineage: ((R(1) ∧ S(1,3)) ∨ (R(1) ∧ S(1,2) ∧ T(2)))
  size   : 8 nodes over 4 fact variables
  count  : z^2 + 3·z^3 + z^4
  cache  : 0 hits / 6 misses

The one-stop explanation report:

  $ ../../bin/svc_cli.exe explain demo.db "R(?x), S(?x,?y), T(?y)"
  query    : CQ[R(?x), S(?x,?y), T(?y)]
  answer   : true
  complexity of SVC: #P-hard — non-hierarchical sjf-CQ (Corollary 4.5 + [9])
  
  minimal supports (2):
    {R(1), S(1,3), T(3)}
    {R(1), S(1,2), T(2)}
  
  fact contributions (Shapley | Banzhaf):
    R(1)                         7/12       | 5/8
    S(1,3)                       1/4        | 3/8
    S(1,2)                       1/12       | 1/8
    T(2)                         1/12       | 1/8
  
  robustness: Pr(q | each endogenous fact present w.p. 1/2) = 5/16 (≈ 0.3125)

Explain on an unsatisfied query:

  $ cat > empty.db <<'DB'
  > endo R(9)
  > DB
  $ ../../bin/svc_cli.exe explain empty.db "R(?x), S(?x,?y), T(?y)"
  query    : CQ[R(?x), S(?x,?y), T(?y)]
  answer   : false
  complexity of SVC: #P-hard — non-hierarchical sjf-CQ (Corollary 4.5 + [9])
  
  no minimal supports: the query is not satisfied.
