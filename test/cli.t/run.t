A small database shared by all commands:

  $ cat > demo.db <<'DB'
  > endo R(1)
  > endo S(1,2)
  > endo T(2)
  > endo S(1,3)
  > exo  T(3)
  > DB

Shapley values of all endogenous facts (sorted by value):

  $ ../../bin/svc_cli.exe shapley demo.db "R(?x), S(?x,?y), T(?y)"
  R(1)                           7/12  (≈ 0.5833)
  S(1,3)                         1/4  (≈ 0.2500)
  S(1,2)                         1/12  (≈ 0.0833)
  T(2)                           1/12  (≈ 0.0833)
  sum: 1

The batched engine computes the same values through one shared lineage
compilation:

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)"
  R(1)                           7/12  (≈ 0.5833)
  S(1,3)                         1/4  (≈ 0.2500)
  S(1,2)                         1/12  (≈ 0.0833)
  T(2)                           1/12  (≈ 0.0833)
  sum: 1

With --stats the instrumentation record follows (every counter is
deterministic; only the wall-clock lines are masked):

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --stats \
  >   | sed -e 's/time  *: .*/time  : [MASKED]/'
  R(1)                           7/12  (≈ 0.5833)
  S(1,3)                         1/4  (≈ 0.2500)
  S(1,2)                         1/12  (≈ 0.0833)
  T(2)                           1/12  (≈ 0.0833)
  sum: 1
  engine stats:
    players       : 4
    compilations  : 1
    conditionings : 5
    cache         : 5 hits / 11 misses / 0 drops (11 entries, capacity 1048576)
    poly ops      : 36
    compile time  : [MASKED]
    eval time  : [MASKED]

--stats=json emits one machine-readable line with stable field names:

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --stats=json \
  >   | sed -e 's/"compile_ms":[0-9.]*/"compile_ms":null/' \
  >         -e 's/"eval_ms":[0-9.]*/"eval_ms":null/'
  R(1)                           7/12  (≈ 0.5833)
  S(1,3)                         1/4  (≈ 0.2500)
  S(1,2)                         1/12  (≈ 0.0833)
  T(2)                           1/12  (≈ 0.0833)
  sum: 1
  {"players":4,"compilations":1,"conditionings":5,"cache_hits":5,"cache_misses":11,"cache_size":11,"cache_capacity":1048576,"cache_drops":0,"poly_ops":36,"jobs":1,"par_facts":0,"par_cache_hits":0,"par_cache_misses":0,"par_steals":0,"compile_ms":null,"eval_ms":null,"backend":"conditioning","circuit_nodes":0,"circuit_edges":0,"circuit_smoothing":0,"circuit_cache_hits":0,"circuit_cache_misses":0,"circuit_cache_drops":0,"circuit_compile_ms":0.000,"circuit_traverse_ms":0.000,"sample_strategy":"","sample_seed":0,"sample_draws":0,"sample_exact_strata":0,"sample_sampled_strata":0,"sample_max_hw":"0","sample_epsilon":"0","sample_confidence":"0","sample_converged":false}

--jobs fans the per-fact conditioning out across stdlib domains.  Values
and order are identical to the serial run for every jobs count; each
worker slot owns a static slice of the fact array with its own private
cache, so the summed per-domain counters are deterministic too.  Only
wall clock and the steal counter record scheduling, so only those are
masked:

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --jobs 4 --stats \
  >   | sed -e 's/time  *: .*/time  : [MASKED]/' -e 's/steals [0-9]*/steals [MASKED]/'
  R(1)                           7/12  (≈ 0.5833)
  S(1,3)                         1/4  (≈ 0.2500)
  S(1,2)                         1/12  (≈ 0.0833)
  T(2)                           1/12  (≈ 0.0833)
  sum: 1
  engine stats:
    players       : 4
    compilations  : 1
    conditionings : 5
    cache         : 0 hits / 6 misses / 0 drops (6 entries, capacity 1048576)
    poly ops      : 16
    parallel      : 4 jobs, 4 facts, cache 5 hits / 5 misses, steals [MASKED]
    compile time  : [MASKED]
    eval time  : [MASKED]

The same through the JSON record (the per-domain counters appear summed
as the par_* fields):

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --jobs 4 --stats=json \
  >   | sed -e 's/"compile_ms":[0-9.]*/"compile_ms":null/' \
  >         -e 's/"eval_ms":[0-9.]*/"eval_ms":null/' \
  >         -e 's/"par_steals":[0-9]*/"par_steals":null/'
  R(1)                           7/12  (≈ 0.5833)
  S(1,3)                         1/4  (≈ 0.2500)
  S(1,2)                         1/12  (≈ 0.0833)
  T(2)                           1/12  (≈ 0.0833)
  sum: 1
  {"players":4,"compilations":1,"conditionings":5,"cache_hits":0,"cache_misses":6,"cache_size":6,"cache_capacity":1048576,"cache_drops":0,"poly_ops":16,"jobs":4,"par_facts":4,"par_cache_hits":5,"par_cache_misses":5,"par_steals":null,"compile_ms":null,"eval_ms":null,"backend":"conditioning","circuit_nodes":0,"circuit_edges":0,"circuit_smoothing":0,"circuit_cache_hits":0,"circuit_cache_misses":0,"circuit_cache_drops":0,"circuit_compile_ms":0.000,"circuit_traverse_ms":0.000,"sample_strategy":"","sample_seed":0,"sample_draws":0,"sample_exact_strata":0,"sample_sampled_strata":0,"sample_max_hw":"0","sample_epsilon":"0","sample_confidence":"0","sample_converged":false}

A negative jobs count errors cleanly:

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --jobs=-1
  svc eval: --jobs must be >= 0 (got -1)
  [2]

A tiny cache bound changes the counters (drops appear), never the values:

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --stats --cache-capacity 2 \
  >   | sed -e 's/time  *: .*/time  : [MASKED]/'
  R(1)                           7/12  (≈ 0.5833)
  S(1,3)                         1/4  (≈ 0.2500)
  S(1,2)                         1/12  (≈ 0.0833)
  T(2)                           1/12  (≈ 0.0833)
  sum: 1
  engine stats:
    players       : 4
    compilations  : 1
    conditionings : 5
    cache         : 4 hits / 16 misses / 14 drops (2 entries, capacity 2)
    poly ops      : 49
    compile time  : [MASKED]
    eval time  : [MASKED]

--backend circuit routes the whole batch through one d-DNNF
compilation: the values are bit-identical to the conditioning runs
above, conditionings drop to zero, and the stats grow a circuit block
(sizes and cache counters are deterministic; the two circuit wall-clock
lines are masked like the others):

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --backend circuit --stats \
  >   | sed -e 's/time  *: .*/time  : [MASKED]/'
  R(1)                           7/12  (≈ 0.5833)
  S(1,3)                         1/4  (≈ 0.2500)
  S(1,2)                         1/12  (≈ 0.0833)
  T(2)                           1/12  (≈ 0.0833)
  sum: 1
  engine stats:
    players       : 4
    compilations  : 1
    conditionings : 0
    cache         : 0 hits / 0 misses / 0 drops (0 entries, capacity 1048576)
    poly ops      : 0
    backend       : circuit
    circuit       : 15 nodes / 20 edges (5 smoothing)
    circuit cache : 1 hits / 4 misses / 0 drops
    compile time  : [MASKED]
    eval time  : [MASKED]
    circuit compile time  : [MASKED]
    circuit traverse time  : [MASKED]

The JSON record carries the same circuit fields (the circuit_* time
masks must not collide with the plain compile_ms/eval_ms ones — the
patterns below are quote-anchored so they cannot):

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --backend circuit --stats=json \
  >   | sed -e 's/"circuit_compile_ms":[0-9.]*/"circuit_compile_ms":null/' \
  >         -e 's/"circuit_traverse_ms":[0-9.]*/"circuit_traverse_ms":null/' \
  >         -e 's/"compile_ms":[0-9.]*/"compile_ms":null/' \
  >         -e 's/"eval_ms":[0-9.]*/"eval_ms":null/'
  R(1)                           7/12  (≈ 0.5833)
  S(1,3)                         1/4  (≈ 0.2500)
  S(1,2)                         1/12  (≈ 0.0833)
  T(2)                           1/12  (≈ 0.0833)
  sum: 1
  {"players":4,"compilations":1,"conditionings":0,"cache_hits":0,"cache_misses":0,"cache_size":0,"cache_capacity":1048576,"cache_drops":0,"poly_ops":0,"jobs":1,"par_facts":0,"par_cache_hits":0,"par_cache_misses":0,"par_steals":0,"compile_ms":null,"eval_ms":null,"backend":"circuit","circuit_nodes":15,"circuit_edges":20,"circuit_smoothing":5,"circuit_cache_hits":1,"circuit_cache_misses":4,"circuit_cache_drops":0,"circuit_compile_ms":null,"circuit_traverse_ms":null,"sample_strategy":"","sample_seed":0,"sample_draws":0,"sample_exact_strata":0,"sample_sampled_strata":0,"sample_max_hw":"0","sample_epsilon":"0","sample_confidence":"0","sample_converged":false}

With the default --backend auto, the engine consults the compilation
planner: a serial batch gets the circuit backend exactly when the
plan's predicted node count (from the lineage's induced width) fits
the budget, and the note ahead of the values quotes that reasoning
(--backend pins either engine explicitly):

  $ for i in $(seq 1 24); do echo "endo R($i)"; done > big.db
  $ ../../bin/svc_cli.exe eval big.db "R(?x)" | head -4
  note: auto-selected circuit backend (~50 predicted nodes (width 0) within the 65536-node budget for 24 endogenous facts); --backend overrides
  R(1)                           1/24  (≈ 0.0417)
  R(10)                          1/24  (≈ 0.0417)
  R(11)                          1/24  (≈ 0.0417)

--backend auto-legacy keeps the historical fact-count rule (circuit
iff serial and at least 24 endogenous facts), with its historical
note, for comparison against the cost-based default:

  $ ../../bin/svc_cli.exe eval big.db "R(?x)" --backend auto-legacy | head -2
  note: auto-selected circuit backend (24 endogenous facts >= 24); --backend overrides
  R(1)                           1/24  (≈ 0.0417)

svc plan dumps what the auto resolution consulted: the AND-component
split of the lineage's variable co-occurrence graph, one elimination
order and induced width per component, the pseudo-tree branch order
the circuit compiler would follow, and the predicted circuit size —
then re-verifies the whole certificate with the independent checker
(Plancheck re-derives the partition and the graph from the raw
formula and replays every order):

  $ ../../bin/svc_cli.exe plan demo.db "R(?x), S(?x,?y), T(?y)"
  query   : CQ[R(?x), S(?x,?y), T(?y)]
  lineage : 8 nodes over 4 fact variables
  plan : 1 component(s) over 4 variable(s), max width 2, ~40 predicted nodes
    component 1 : 4 var(s), width 2 [min-fill]
      elimination order : S(1,3), R(1), S(1,2), T(2)
      branch order      : T(2), S(1,2), R(1), S(1,3)
  certificate : verified (1 component(s), 4 var(s), max replayed width 2)
  recommended backend : conditioning (4 endogenous facts < 8: conditioning wins on tiny instances)

  $ ../../bin/svc_cli.exe plan big.db "R(?x)" --format json
  {"query":"CQ[R(?x)]","n_facts":24,"plan":{"n_vars":24,"max_width":0,"predicted_nodes":50,"components":[{"vars":["R(1)","R(10)","R(11)","R(12)","R(13)","R(14)","R(15)","R(16)","R(17)","R(18)","R(19)","R(2)","R(20)","R(21)","R(22)","R(23)","R(24)","R(3)","R(4)","R(5)","R(6)","R(7)","R(8)","R(9)"],"order":["R(1)","R(10)","R(11)","R(12)","R(13)","R(14)","R(15)","R(16)","R(17)","R(18)","R(19)","R(2)","R(20)","R(21)","R(22)","R(23)","R(24)","R(3)","R(4)","R(5)","R(6)","R(7)","R(8)","R(9)"],"branch":["R(9)","R(8)","R(7)","R(6)","R(5)","R(4)","R(3)","R(24)","R(23)","R(22)","R(21)","R(20)","R(2)","R(19)","R(18)","R(17)","R(16)","R(15)","R(14)","R(13)","R(12)","R(11)","R(10)","R(1)"],"width":0,"heuristic":"min-fill"}]},"certificate":"verified (1 component(s), 24 var(s), max replayed width 0)","recommended_backend":"circuit"}

A bad heuristic name errors cleanly:

  $ ../../bin/svc_cli.exe plan demo.db "R(?x), S(?x,?y), T(?y)" --heuristic typo
  svc plan: unknown heuristic "typo" (expected min-degree, min-fill or best)
  [2]

svc eval --plan prints the same plan (and verifies its certificate)
ahead of the values:

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --plan
  plan : 1 component(s) over 4 variable(s), max width 2, ~40 predicted nodes
    component 1 : 4 var(s), width 2 [min-fill]
      elimination order : S(1,3), R(1), S(1,2), T(2)
      branch order      : T(2), S(1,2), R(1), S(1,3)
  certificate : verified (1 component(s), 4 var(s), max replayed width 2)
  R(1)                           7/12  (≈ 0.5833)
  S(1,3)                         1/4  (≈ 0.2500)
  S(1,2)                         1/12  (≈ 0.0833)
  T(2)                           1/12  (≈ 0.0833)
  sum: 1

An unknown backend errors cleanly:

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --backend typo
  svc eval: unknown backend "typo" (expected auto, auto-legacy, conditioning, circuit or sample)
  [2]

--backend sample runs the seeded anytime estimator.  The whole run is
a deterministic function of --seed, so the values and every sample_*
stats field can be pinned exactly.  With the default hybrid strategy
on a tiny instance every stratum fits under the exact cap: the values
are the exact engine's, rationally, with a zero-width interval and no
draws spent:

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --backend sample --seed 42 --stats=json \
  >   | sed -e 's/"compile_ms":[0-9.]*/"compile_ms":null/' \
  >         -e 's/"eval_ms":[0-9.]*/"eval_ms":null/'
  R(1)                           7/12  (≈ 0.5833)
  S(1,3)                         1/4  (≈ 0.2500)
  S(1,2)                         1/12  (≈ 0.0833)
  T(2)                           1/12  (≈ 0.0833)
  sum: 1
  {"players":4,"compilations":1,"conditionings":0,"cache_hits":0,"cache_misses":0,"cache_size":0,"cache_capacity":1048576,"cache_drops":0,"poly_ops":0,"jobs":1,"par_facts":0,"par_cache_hits":0,"par_cache_misses":0,"par_steals":0,"compile_ms":null,"eval_ms":null,"backend":"sample","circuit_nodes":0,"circuit_edges":0,"circuit_smoothing":0,"circuit_cache_hits":0,"circuit_cache_misses":0,"circuit_cache_drops":0,"circuit_compile_ms":0.000,"circuit_traverse_ms":0.000,"sample_strategy":"hybrid","sample_seed":42,"sample_draws":0,"sample_exact_strata":16,"sample_sampled_strata":0,"sample_max_hw":"0","sample_epsilon":"1/20","sample_confidence":"19/20","sample_converged":true}

--strategy mc switches to Monte-Carlo permutation sampling: estimates
become pivot-count fractions over the shared draw budget, and the
anytime loop stops at the first batch whose Hoeffding half-width
clears --epsilon (here one 64-permutation batch):

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --backend sample --strategy mc --seed 42 --epsilon 1/4 --stats=json \
  >   | sed -e 's/"compile_ms":[0-9.]*/"compile_ms":null/' \
  >         -e 's/"eval_ms":[0-9.]*/"eval_ms":null/'
  R(1)                           19/32  (≈ 0.5938)
  S(1,3)                         7/32  (≈ 0.2188)
  T(2)                           7/64  (≈ 0.1094)
  S(1,2)                         5/64  (≈ 0.0781)
  sum: 1
  {"players":4,"compilations":1,"conditionings":0,"cache_hits":0,"cache_misses":0,"cache_size":0,"cache_capacity":1048576,"cache_drops":0,"poly_ops":0,"jobs":1,"par_facts":0,"par_cache_hits":0,"par_cache_misses":0,"par_steals":0,"compile_ms":null,"eval_ms":null,"backend":"sample","circuit_nodes":0,"circuit_edges":0,"circuit_smoothing":0,"circuit_cache_hits":0,"circuit_cache_misses":0,"circuit_cache_drops":0,"circuit_compile_ms":0.000,"circuit_traverse_ms":0.000,"sample_strategy":"mc","sample_seed":42,"sample_draws":64,"sample_exact_strata":0,"sample_sampled_strata":0,"sample_max_hw":"1090429640096049481/6400000000000000000","sample_epsilon":"1/4","sample_confidence":"19/20","sample_converged":true}

Bad sampling parameters error cleanly (note --max-draws needs the
--flag=value form for a negative value, as any cmdliner option does):

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --backend sample --epsilon 0
  svc eval: --epsilon must be > 0 (got 0)
  [2]

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --backend sample --max-draws=-1
  svc eval: --max-draws must be >= 1 (got -1)
  [2]

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --backend sample --strategy typo
  svc eval: unknown strategy "typo" (expected mc, stratified or hybrid)
  [2]

A traced sampling run records sample.* spans and counters alongside
the engine ones — draws, evaluations, strata split and the final
half-width in parts per million:

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --backend sample --seed 1 --strategy mc --epsilon 1/4 --trace sample.json >/dev/null
  $ ../../bin/svc_cli.exe trace summary sample.json \
  >   | sed -e 's/time  *: .*/time  : [MASKED]/'
  trace summary : sample.json
  events        : 12 (4 spans, 1 metadata, 7 counter samples)
  tracks        : 1
    track 0 (main)            : 4 spans
  spans by name:
    engine.eval                                 1x  time  : [MASKED]
    engine.lineage                              1x  time  : [MASKED]
    sample.eval                                 1x  time  : [MASKED]
    sample.round                                1x  time  : [MASKED]
  counters:
    engine.compilations                      1
    engine.conditionings                     0
    sample.draws                             64
    sample.evals                             130
    sample.exact_strata                      0
    sample.sampled_strata                    0
    sample.max_hw_ppm                        170380

--trace records the run as a Chrome trace_event file (loadable in
about:tracing / Perfetto) next to the usual output:

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --trace trace.json
  R(1)                           7/12  (≈ 0.5833)
  S(1,3)                         1/4  (≈ 0.2500)
  S(1,2)                         1/12  (≈ 0.0833)
  T(2)                           1/12  (≈ 0.0833)
  sum: 1
  trace   : wrote trace.json (9 spans)

svc trace summary validates the file and reports it; span counts are
deterministic, only the durations need the wall-clock mask:

  $ ../../bin/svc_cli.exe trace summary trace.json \
  >   | sed -e 's/time  *: .*/time  : [MASKED]/'
  trace summary : trace.json
  events        : 14 (9 spans, 1 metadata, 4 counter samples)
  tracks        : 1
    track 0 (main)            : 9 spans
  spans by name:
    engine.eval                                 1x  time  : [MASKED]
    engine.fact                                 4x  time  : [MASKED]
    engine.full                                 1x  time  : [MASKED]
    engine.lineage                              1x  time  : [MASKED]
    plan.analyze                                1x  time  : [MASKED]
    plan.order                                  1x  time  : [MASKED]
  counters:
    engine.compilations                      1
    engine.conditionings                     5
    plan.components                          1
    plan.max_width                           2

A parallel run lays each worker slot out on its own track — the four
engine.slice spans across domain lanes carry the same work-split the
--stats parallel line reports:

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --jobs 4 --trace par.json >/dev/null
  $ ../../bin/svc_cli.exe trace summary par.json \
  >   | sed -e 's/time  *: .*/time  : [MASKED]/'
  trace summary : par.json
  events        : 15 (8 spans, 5 metadata, 2 counter samples)
  tracks        : 5
    track 0 (main)            : 4 spans
    track 1 (domain 0)        : 1 spans
    track 2 (domain 1)        : 1 spans
    track 3 (domain 2)        : 1 spans
    track 4 (domain 3)        : 1 spans
  spans by name:
    engine.eval                                 1x  time  : [MASKED]
    engine.full                                 1x  time  : [MASKED]
    engine.lineage                              1x  time  : [MASKED]
    engine.merge                                1x  time  : [MASKED]
    engine.slice                                4x  time  : [MASKED]
  counters:
    engine.compilations                      1
    engine.conditionings                     5

An unwritable trace path fails after the values, with the eval exit
code:

  $ ../../bin/svc_cli.exe eval demo.db "R(?x), S(?x,?y), T(?y)" --trace /nonexistent-dir/t.json >/dev/null
  svc eval: cannot write trace: /nonexistent-dir/t.json: No such file or directory
  [2]

Malformed trace input is rejected with a parse position:

  $ echo '{"traceEvents":' > bad.json
  $ ../../bin/svc_cli.exe trace summary bad.json
  svc trace summary: malformed JSON: unexpected end of input at offset 16
  [1]

  $ echo '{"traceEvents":[{"name":"x","ph":"Z","pid":1,"tid":0,"ts":0}]}' > bad2.json
  $ ../../bin/svc_cli.exe trace summary bad2.json
  svc trace summary: invalid trace: event #0: unknown phase "Z"
  [1]

The FGMC generating polynomial and total:

  $ ../../bin/svc_cli.exe count demo.db "R(?x), S(?x,?y), T(?y)"
  FGMC polynomial: z^2 + 3·z^3 + z^4
  GMC (total)    : 5

A single size:

  $ ../../bin/svc_cli.exe count demo.db "R(?x), S(?x,?y), T(?y)" --size 3
  FGMC(D, 3) = 3

Probabilistic evaluation at p = 1/3:

  $ ../../bin/svc_cli.exe prob demo.db "R(?x), S(?x,?y), T(?y)" -p 1/3
  Pr(D ⊨ q) = 11/81  (≈ 0.135802)

Dichotomy classification:

  $ ../../bin/svc_cli.exe classify "R(?x), S(?x,?y), T(?y)"
  query  : CQ[R(?x), S(?x,?y), T(?y)]
  verdict: #P-hard
  rule   : non-hierarchical sjf-CQ (Corollary 4.5 + [9])

  $ ../../bin/svc_cli.exe classify "rpq: (AB)(s,t)"
  query  : RPQ[AB(s,t)]
  verdict: FP
  rule   : Corollary 4.3: all words of length ≤ 2

The Lemma 4.1 reduction, end to end:

  $ ../../bin/svc_cli.exe reduce demo.db "R(?x), S(?x,?y), T(?y)"
  FGMC polynomial recovered through the SVC oracle:
    z^2 + 3·z^3 + z^4
  SVC oracle calls: 5
  cross-check vs direct counting: ok

Maximum contributor:

  $ ../../bin/svc_cli.exe max demo.db "R(?x), S(?x,?y), T(?y)"
  max contributor: R(1) with value 7/12

Errors are reported cleanly:

  $ ../../bin/svc_cli.exe classify "zzz: R(?x)"
  svc: internal error, uncaught exception:
       Invalid_argument("Query_parse: unknown language tag \"zzz\" at offset 0 (near token \"zzz\")")
       
  [125]


Banzhaf values (the other power index):

  $ ../../bin/svc_cli.exe banzhaf demo.db "R(?x), S(?x,?y), T(?y)"
  R(1)                           5/8  (≈ 0.6250)
  S(1,3)                         3/8  (≈ 0.3750)
  S(1,2)                         1/8  (≈ 0.1250)
  T(2)                           1/8  (≈ 0.1250)

Lineage inspection:

  $ ../../bin/svc_cli.exe lineage demo.db "R(?x), S(?x,?y), T(?y)"
  lineage: ((R(1) ∧ S(1,3)) ∨ (R(1) ∧ S(1,2) ∧ T(2)))
  size   : 8 nodes over 4 fact variables
  count  : z^2 + 3·z^3 + z^4
  cache  : 0 hits / 6 misses

The one-stop explanation report:

  $ ../../bin/svc_cli.exe explain demo.db "R(?x), S(?x,?y), T(?y)"
  query    : CQ[R(?x), S(?x,?y), T(?y)]
  answer   : true
  complexity of SVC: #P-hard — non-hierarchical sjf-CQ (Corollary 4.5 + [9])
  
  minimal supports (2):
    {R(1), S(1,3), T(3)}
    {R(1), S(1,2), T(2)}
  
  fact contributions (Shapley | Banzhaf):
    R(1)                         7/12       | 5/8
    S(1,3)                       1/4        | 3/8
    S(1,2)                       1/12       | 1/8
    T(2)                         1/12       | 1/8
  
  robustness: Pr(q | each endogenous fact present w.p. 1/2) = 5/16 (≈ 0.3125)

Explain on an unsatisfied query:

  $ cat > empty.db <<'DB'
  > endo R(9)
  > DB
  $ ../../bin/svc_cli.exe explain empty.db "R(?x), S(?x,?y), T(?y)"
  query    : CQ[R(?x), S(?x,?y), T(?y)]
  answer   : false
  complexity of SVC: #P-hard — non-hierarchical sjf-CQ (Corollary 4.5 + [9])
  
  no minimal supports: the query is not satisfied.


Static analysis: a non-hierarchical query draws a certified warning, which
is fine by default but fails under --strict:

  $ ../../bin/svc_cli.exe analyze --query "R(?x), S(?x,?y), T(?y)" --db demo.db
  warning[Q003]: self-join-free CQ is not hierarchical: SVC is #P-hard (Corollary 4.5)
      certificate: variables ?x/?y: S(?x,?y) covers both, R(?x) only ?x, T(?y) only ?y
  
  0 error(s), 1 warning(s), 0 hint(s)


  $ ../../bin/svc_cli.exe analyze --query "R(?x), S(?x,?y), T(?y)" --strict
  warning[Q003]: self-join-free CQ is not hierarchical: SVC is #P-hard (Corollary 4.5)
      certificate: variables ?x/?y: S(?x,?y) covers both, R(?x) only ?x, T(?y) only ?y
  
  0 error(s), 1 warning(s), 0 hint(s)
  [1]


A hierarchical query over a matching database is clean:

  $ ../../bin/svc_cli.exe analyze --query "R(?x), S(?x,?y)" --db demo.db --strict
  0 error(s), 0 warning(s), 0 hint(s)

Database-level diagnostics carry line spans and certificates:

  $ cat > broken.db <<'DB'
  > endo R(1)
  > endo R(1,2)
  > exo  R(1)
  > endo S(4)
  > endo S(4)
  > DB
  $ ../../bin/svc_cli.exe analyze --db broken.db
  error[D102]: relation R is used at two different arities
      certificate: R(1) vs R(1,2)
  error[D103] 3:0: fact R(1) is declared both endogenous and exogenous
      certificate: R(1) is both endogenous and exogenous
  hint[D104] 5:0: duplicate endo fact S(4) (first on line 4)
      certificate: S(4) on lines 4 and 5
  
  2 error(s), 0 warning(s), 1 hint(s)
  [1]


JSON output is machine-readable:

  $ ../../bin/svc_cli.exe analyze --query "zzz: R(?x)" --format json
  {"diagnostics":[{"code":"Q002","severity":"error","message":"unknown language tag \"zzz\" at offset 0 (near token \"zzz\")","span":{"line":1,"col":0,"len":3}}],"summary":{"errors":1,"warnings":0,"hints":0}}
  [1]

Workloads are vetted case by case:

  $ cat > demo.workload <<'WL'
  > workload demo
  > case easy
  > query R(?x), S(?x,?y)
  > endo R(1)
  > endo S(1,2)
  > 
  > case hard
  > query R(?x), S(?x,?y), T(?y)
  > endo R(1)
  > endo S(1,2)
  > exo  T(2)
  > WL
  $ ../../bin/svc_cli.exe analyze --workload demo.workload
  warning[Q003]: case "hard": self-join-free CQ is not hierarchical: SVC is #P-hard (Corollary 4.5)
      certificate: variables ?x/?y: S(?x,?y) covers both, R(?x) only ?x, T(?y) only ?y
  
  0 error(s), 1 warning(s), 0 hint(s)


Calling analyze with nothing to analyze is an error:

  $ ../../bin/svc_cli.exe analyze
  svc analyze: nothing to analyze (give --query, --db and/or --workload)
  [2]

The workload generator registry lists its families:

  $ ../../bin/svc_cli.exe workload list
  family      class     description
  star        FP        hierarchical star join for R(x) ∧ S(x,y): one hub, size spokes (seeds > 0 demote some spokes to exogenous)
  bipartite   #P-hard   complete-bipartite q_RST gadget, the classic hard-lineage family (seeds > 0 keep a random sub-grid)
  rpq-road    #P-hard   road-network RPQ (Road Rail* Road)(home, hub): a rail corridor of size stations with seeded bypasses and an exogenous ferry
  crpq        #P-hard   CRPQ (AB+BA)(?x,t) over seeded random labelled graphs with exogenous edges
  cqneg       #P-hard   CQ with negation R(x) ∧ S(x,y) ∧ ¬T(y) over seeded random partitioned databases
  endogenous  #P-hard   purely endogenous q_RST databases (the §6.1 SVCⁿ setting: no exogenous facts anywhere)
  max-svc     mixed     q_RST instances with a guaranteed singleton support (Lemma 6.3): an exogenous R/T frame, one endogenous bridge, seeded noise — exercises max-SVC
  const-svc   #P-hard   purely endogenous chain joins R(x,y) ∧ T(y,z) whose constants become the §6.4 players (SVC^const)

  $ ../../bin/svc_cli.exe workload list --format names
  star
  bipartite
  rpq-road
  crpq
  cqneg
  endogenous
  max-svc
  const-svc

Generated cases serialize in the workload text format, deterministically:

  $ ../../bin/svc_cli.exe workload gen --family star --size 3 --seed 0
  workload star-s0-n3
  
  case star-s0-n3
  query R(?x), S(?x,?y)
  endo R(hub)
  endo S(hub,n0)
  endo S(hub,n1)
  endo S(hub,n2)

  $ ../../bin/svc_cli.exe workload gen --family rpq-road --size 2 --seed 5 --format query
  rpq: (Road Rail* Road)(home, hub)

Generated workloads round-trip through analyze and eval:

  $ ../../bin/svc_cli.exe workload gen --family bipartite --size 2 --seed 1 > bip.workload
  $ ../../bin/svc_cli.exe analyze --workload bip.workload
  warning[Q003]: case "bipartite-s1-n2": self-join-free CQ is not hierarchical: SVC is #P-hard (Corollary 4.5)
      certificate: variables ?x/?y: S(?x,?y) covers both, R(?x) only ?x, T(?y) only ?y
  
  0 error(s), 1 warning(s), 0 hint(s)

  $ ../../bin/svc_cli.exe workload gen --family cqneg --size 3 --seed 2 --format db > cqneg.db
  $ ../../bin/svc_cli.exe workload gen --family cqneg --size 3 --seed 2 --format query
  cqneg: R(?x), S(?x,?y), !T(?y)
  $ ../../bin/svc_cli.exe eval cqneg.db "cqneg: R(?x), S(?x,?y), !T(?y)"
  R(3)                           1/2  (≈ 0.5000)
  S(3,4)                         1/2  (≈ 0.5000)
  S(1,1)                         0  (≈ 0.0000)
  sum: 1

Bad inputs exit with code 2 and a clear message:

  $ ../../bin/svc_cli.exe workload gen --family no-such --size 3
  svc workload gen: unknown family "no-such" (try 'svc workload list')
  [2]

  $ ../../bin/svc_cli.exe workload gen --family star --size 0
  svc workload gen: --size must be >= 1 (got 0)
  [2]

  $ ../../bin/svc_cli.exe workload gen --family star --size 3 --seed=-1
  svc workload gen: --seed must be >= 0 (got -1)
  [2]
