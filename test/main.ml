(* Test runner: every module contributes an alcotest suite. *)

let () =
  Alcotest.run "shapley_counting"
    [
      ("bigint", Test_bigint.suite);
      ("rational", Test_rational.suite);
      ("poly", Test_poly.suite);
      ("linalg", Test_linalg.suite);
      ("relational", Test_relational.suite);
      ("homomorphism", Test_homomorphism.suite);
      ("automata", Test_automata.suite);
      ("cq", Test_cq.suite);
      ("graph-queries", Test_graph_queries.suite);
      ("query", Test_query.suite);
      ("lineage", Test_lineage.suite);
      ("counting", Test_counting.suite);
      ("safe-plan", Test_safe_plan.suite);
      ("lifted", Test_lifted.suite);
      ("game", Test_game.suite);
      ("svc", Test_svc.suite);
      ("engine", Test_engine.suite);
      ("circuit", Test_circuit.suite);
      ("plan", Test_plan.suite);
      ("parallel", Test_parallel.suite);
      ("sample", Test_sample.suite);
      ("telemetry", Test_telemetry.suite);
      ("reductions", Test_reductions.suite);
      ("fgmc-to-svc", Test_fgmc_to_svc.suite);
      ("variants", Test_variants.suite);
      ("dichotomy", Test_dichotomy.suite);
      ("shatter", Test_shatter.suite);
      ("gcq", Test_gcq.suite);
      ("half-prob", Test_half.suite);
      ("io", Test_io.suite);
      ("workload", Test_workload.suite);
      ("analysis", Test_analysis.suite);
      ("misc", Test_misc.suite);
      ("provenance", Test_provenance.suite);
      ("paper-lemmas", Test_paper_lemmas.suite);
      ("exhaustive", Test_exhaustive.suite);
      ("conformance", Test_conformance.suite);
      ("server", Test_server.suite);
    ]
