

let test_rng_determinism () =
  let a = Workload.rng 42 and b = Workload.rng 42 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Workload.int a 1000) (Workload.int b 1000)
  done

let test_rng_bounds () =
  let r = Workload.rng 7 in
  for _ = 1 to 200 do
    let v = Workload.int r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Workload.int: non-positive bound")
    (fun () -> ignore (Workload.int r 0))

let test_random_database () =
  let r = Workload.rng 1 in
  let db =
    Workload.random_database r ~rels:[ ("R", 2); ("S", 1) ] ~consts:[ "a"; "b"; "c" ]
      ~n_endo:5 ~n_exo:3
  in
  Alcotest.(check int) "endo count" 5 (Database.size_endo db);
  Alcotest.(check int) "total" 8 (Database.size db);
  (* partition invariant is enforced by construction *)
  Alcotest.(check bool) "disjoint" true
    (Fact.Set.is_empty (Fact.Set.inter (Database.endo db) (Database.exo db)))

let test_pool_exhaustion () =
  (* only 2 possible facts exist; asking for 10 must not loop forever *)
  let r = Workload.rng 3 in
  let db =
    Workload.random_database r ~rels:[ ("R", 1) ] ~consts:[ "a"; "b" ] ~n_endo:10 ~n_exo:0
  in
  Alcotest.(check bool) "bounded by pool" true (Database.size_endo db <= 2)

let test_rst_gadget () =
  let db = Workload.rst_gadget ~rows:3 ~extra_exo:false () in
  Alcotest.(check bool) "satisfies q_RST" true
    (Query.holds (Query_parse.parse "R(?x), S(?x,?y), T(?y)") db);
  let db2 = Workload.rst_gadget ~rows:3 ~extra_exo:true () in
  Alcotest.(check bool) "has exogenous facts" false (Fact.Set.is_empty (Database.exo db2))

let test_path_graph () =
  let db = Workload.path_graph ~label_word:[ "A"; "B"; "C" ] ~n_paths:4 in
  Alcotest.(check int) "edges" 12 (Database.size_endo db);
  Alcotest.(check bool) "paths connect" true
    (Query.holds (Query_parse.parse "rpq: (ABC)(s,t)") db)

let test_bibliography () =
  let fs = Workload.bibliography ~n_authors:4 ~n_papers:6 ~seed:11 in
  Alcotest.(check bool) "keywords present" true
    (Fact.Set.exists (fun f -> Fact.rel f = "Keyword") fs);
  (* deterministic *)
  let fs' = Workload.bibliography ~n_authors:4 ~n_papers:6 ~seed:11 in
  Alcotest.(check bool) "deterministic" true (Fact.Set.equal fs fs')

let test_star_join () =
  let db = Workload.star_join ~spokes:5 in
  Alcotest.(check int) "facts" 6 (Database.size_endo db);
  Alcotest.(check bool) "satisfies" true
    (Query.holds (Query_parse.parse "R(?x), S(?x,?y)") db)

let test_workload_parse () =
  let src =
    "workload demo\n\
     case one\n\
     query R(?x), S(?x,?y)\n\
     endo R(a)\n\
     endo S(a,b)\n\
     exo  T(b)\n\n\
     case two\n\
     query rpq: (AB)(s,t)\n\
     endo A(s,m)\n\
     endo B(m,t)\n"
  in
  let w = Workload.parse src in
  Alcotest.(check string) "name" "demo" (Workload.name w);
  Alcotest.(check int) "cases" 2 (List.length (Workload.cases w));
  let one = List.hd (Workload.cases w) in
  Alcotest.(check string) "case name" "one" one.Workload.cname;
  Alcotest.(check int) "case db" 3 (Database.size one.Workload.db);
  Alcotest.(check bool) "case holds" true (Query.holds one.Workload.query one.Workload.db);
  (* round-trip through the printer *)
  let w' = Workload.parse (Workload.to_string w) in
  Alcotest.(check int) "roundtrip cases" 2 (List.length (Workload.cases w'));
  List.iter2
    (fun (c : Workload.case) (c' : Workload.case) ->
       Alcotest.(check string) "roundtrip name" c.Workload.cname c'.Workload.cname;
       Alcotest.(check bool) "roundtrip db" true
         (Database.equal c.Workload.db c'.Workload.db))
    (Workload.cases w) (Workload.cases w')

let test_workload_parse_errors () =
  let err src = match Workload.parse_result src with
    | Error (msg, line) -> (msg, line)
    | Ok _ -> Alcotest.fail ("expected a parse error for: " ^ src)
  in
  Alcotest.(check int) "fact outside case" 1 (snd (err "endo R(a)\n"));
  Alcotest.(check int) "unknown tag line" 2 (snd (err "workload w\nnonsense here\n"));
  let msg, _ = err "case a\nquery R(?x\nendo R(1)\n" in
  Alcotest.(check bool) "query error mentions the case" true
    (String.length msg >= 8 && String.sub msg 0 8 = "case \"a\"");
  (match err "case a\nendo R(1)\n" with
   | msg, 1 -> Alcotest.(check string) "missing query" "case \"a\" has no query line" msg
   | _, l -> Alcotest.failf "wrong line %d" l)

let test_registry_families () =
  let fams = Workload.families () in
  Alcotest.(check bool) "at least six families" true (List.length fams >= 6);
  let names = List.map (fun (f : Workload.Family.t) -> f.Workload.Family.name) fams in
  Alcotest.(check int) "unique names"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun n ->
       Alcotest.(check bool) ("registered: " ^ n) true (List.mem n names))
    [ "star"; "bipartite"; "rpq-road"; "crpq"; "cqneg"; "endogenous";
      "max-svc"; "const-svc" ];
  Alcotest.(check bool) "find_family hit" true
    (Workload.find_family "star" <> None);
  Alcotest.(check bool) "find_family miss" true
    (Workload.find_family "no-such" = None)

let test_registry_seed0_compat () =
  (* seed 0 reproduces the historical bench instances exactly *)
  let star = Workload.generate ~family:"star" ~seed:0 ~size:5 in
  Alcotest.(check bool) "star seed 0 = star_join" true
    (Database.equal star.Workload.db (Workload.star_join ~spokes:5));
  let bip = Workload.generate ~family:"bipartite" ~seed:0 ~size:3 in
  Alcotest.(check bool) "bipartite seed 0 = complete rst_gadget" true
    (Database.equal bip.Workload.db
       (Workload.rst_gadget ~complete:true ~rows:3 ~extra_exo:false ()))

let test_registry_validation () =
  Alcotest.check_raises "negative seed"
    (Invalid_argument "Workload.generate: seed must be >= 0") (fun () ->
        ignore (Workload.generate ~family:"star" ~seed:(-1) ~size:3));
  Alcotest.check_raises "non-positive size"
    (Invalid_argument "Workload.generate: size must be >= 1") (fun () ->
        ignore (Workload.generate ~family:"star" ~seed:0 ~size:0));
  Alcotest.check_raises "unknown family"
    (Invalid_argument "Workload.generate: unknown family \"no-such\"") (fun () ->
        ignore (Workload.generate ~family:"no-such" ~seed:0 ~size:3))

let test_registry_roundtrip () =
  (* every family's serialized case parses back to the same database and
     the generator is a pure function of (seed, size) *)
  List.iter
    (fun (f : Workload.Family.t) ->
       let name = f.Workload.Family.name in
       let c = Workload.generate ~family:name ~seed:3 ~size:2 in
       let c' = Workload.generate ~family:name ~seed:3 ~size:2 in
       Alcotest.(check bool) (name ^ " deterministic") true
         (Database.equal c.Workload.db c'.Workload.db);
       let w = Workload.parse (Workload.to_string (Workload.to_workload c)) in
       match Workload.cases w with
       | [ parsed ] ->
         Alcotest.(check string) (name ^ " case name")
           (Workload.case_name ~family:name ~seed:3 ~size:2)
           parsed.Workload.cname;
         Alcotest.(check bool) (name ^ " roundtrip db") true
           (Database.equal c.Workload.db parsed.Workload.db)
       | _ -> Alcotest.failf "%s: expected one case" name)
    (Workload.families ())

let test_register_family_guards () =
  let dup : Workload.Family.t =
    { name = "star"; description = "dup"; tractability = `Fp;
      generate = (fun ~seed:_ ~size:_ -> Workload.generate ~family:"star" ~seed:0 ~size:1) }
  in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Workload.register_family: duplicate family \"star\"")
    (fun () -> Workload.register_family dup);
  Alcotest.check_raises "empty name"
    (Invalid_argument "Workload.register_family: empty family name")
    (fun () -> Workload.register_family { dup with name = "" })

let suite =
  [
    Alcotest.test_case "workload parsing" `Quick test_workload_parse;
    Alcotest.test_case "registry families" `Quick test_registry_families;
    Alcotest.test_case "registry seed-0 bench compatibility" `Quick
      test_registry_seed0_compat;
    Alcotest.test_case "registry validation" `Quick test_registry_validation;
    Alcotest.test_case "registry roundtrip + determinism" `Quick
      test_registry_roundtrip;
    Alcotest.test_case "register_family guards" `Quick test_register_family_guards;
    Alcotest.test_case "workload parse errors" `Quick test_workload_parse_errors;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "random databases" `Quick test_random_database;
    Alcotest.test_case "pool exhaustion" `Quick test_pool_exhaustion;
    Alcotest.test_case "RST gadget" `Quick test_rst_gadget;
    Alcotest.test_case "path graphs" `Quick test_path_graph;
    Alcotest.test_case "bibliography" `Quick test_bibliography;
    Alcotest.test_case "star join" `Quick test_star_join;
  ]
