open Test_util

(* The lifted UCQ engine: executable counterpart of the Safety classifier. *)

let random_db ~rels seed =
  let r = Workload.rng seed in
  Workload.random_database r ~rels ~consts:[ "1"; "2"; "3" ]
    ~n_endo:(1 + Workload.int r 5)
    ~n_exo:(Workload.int r 3)

let test_safe_corpus_constructive () =
  (* every query our Safety procedure certifies Safe must be evaluable by
     the lifted engine, and exactly *)
  let corpus =
    [ ("R(?x)", [ ("R", 1) ]);
      ("R(?x), S(?x,?y)", [ ("R", 1); ("S", 2) ]);
      ("R(?x), S(?x,?y), U(?x,?y,?z)", [ ("R", 1); ("S", 2); ("U", 3) ]);
      ("R(?x), S(?y)", [ ("R", 1); ("S", 1) ]);
      ("R(?x) | S(?x,?y)", [ ("R", 1); ("S", 2) ]);
      ("R(?x), S(?x,?y) | S(?u,?v)", [ ("R", 1); ("S", 2) ]);
      ("R(?x,?y), R(?x,?z)", [ ("R", 2) ]);
    ]
  in
  List.iter
    (fun (qs, rels) ->
       let u = Ucq.parse qs in
       Alcotest.(check string) (qs ^ " certified safe") "safe"
         (Safety.verdict_to_string (Safety.ucq u));
       for seed = 1 to 10 do
         let db = random_db ~rels (seed * 37) in
         match Lifted.ucq u db with
         | Some p ->
           Alcotest.(check bool) (qs ^ " exact") true
             (Poly.Z.equal p (Model_counting.fgmc_polynomial_brute (Query.Ucq u) db))
         | None -> Alcotest.failf "lifted rules stuck on certified-safe %s" qs
       done)
    corpus

let test_unsafe_stuck () =
  let u = Ucq.parse "R(?x), S(?x,?y), T(?y)" in
  let db = random_db ~rels:[ ("R", 1); ("S", 2); ("T", 1) ] 3 in
  Alcotest.(check bool) "stuck on q_RST" true (Lifted.ucq u db = None);
  Alcotest.check_raises "raising front-end"
    (Invalid_argument "Lifted.fgmc_polynomial: lifted rules stuck (query not certified safe)")
    (fun () -> ignore (Lifted.fgmc_polynomial u db))

let test_scales_beyond_brute () =
  (* a polynomial-time guarantee: large safe instance *)
  let u = Ucq.parse "R(?x), S(?x,?y)" in
  let db = Gen.star ~spokes:100 in
  match Lifted.ucq u db with
  | Some p ->
    check_bigint "closed form: 2^100 - 1"
      (Bigint.sub (Bigint.pow Bigint.two 100) Bigint.one)
      (Poly.Z.total p)
  | None -> Alcotest.fail "stuck on a safe query"

let test_independent_union_large () =
  (* vocabulary-disjoint union of three queries, exogenous facts included *)
  let u = Ucq.parse "R(?x) | S(?x,?y) | T(?x), W(?x,?y)" in
  let db =
    Database.make
      ~endo:[ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "T" [ "3" ];
              fact "W" [ "3"; "4" ]; fact "T" [ "5" ] ]
      ~exo:[ fact "S" [ "9"; "9" ] ]
  in
  match Lifted.ucq u db with
  | Some p ->
    check_zpoly "independent union"
      (Model_counting.fgmc_polynomial_brute (Query.Ucq u) db)
      p
  | None -> Alcotest.fail "stuck"

let test_ambiguous_bucket_conservative () =
  (* self-join where a single fact serves two atoms with different
     separator values: the engine must give up rather than double-count *)
  let q = Cq.parse "R(?x,a), R(b,?x)" in
  let db =
    Database.make
      ~endo:[ fact "R" [ "b"; "a" ]; fact "R" [ "c"; "a" ]; fact "R" [ "b"; "d" ] ]
      ~exo:[]
  in
  (match Lifted.cq q db with
   | None -> () (* conservative: fine *)
   | Some p ->
     (* if it does answer, it must be exact *)
     Alcotest.(check bool) "exact if answered" true
       (Poly.Z.equal p (Model_counting.fgmc_polynomial_brute (Query.Cq q) db)))

let prop_lifted_sound =
  qcheck ~count:60 "whenever the lifted engine answers, it is exact"
    QCheck2.Gen.(pair (int_range 0 1000000)
                   (oneofl
                      [ "R(?x), S(?x,?y)"; "R(?x) | S(?x,?y)";
                        "R(?x), S(?x,?y) | S(?u,?v)"; "R(?x), S(?x,?y), T(?y)";
                        "R(?x), T(?y)"; "R(?x,?y), R(?x,?z)" ]))
    (fun (seed, qs) ->
       let u = Ucq.parse qs in
       let db = random_db ~rels:[ ("R", 2); ("S", 2); ("T", 1) ] seed in
       let db =
         (* unary R variant for most queries *)
         if qs = "R(?x,?y), R(?x,?z)" then db
         else random_db ~rels:[ ("R", 1); ("S", 2); ("T", 1) ] seed
       in
       match Lifted.ucq u db with
       | None -> true
       | Some p ->
         Poly.Z.equal p (Model_counting.fgmc_polynomial_brute (Query.Ucq u) db))

(* random sjf queries over distinct relations: whenever Safety certifies
   Safe, the lifted engine must answer, and exactly *)
let prop_safe_implies_constructive =
  qcheck ~count:60 "Safety = safe ⇒ lifted engine answers exactly"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let r = Workload.rng seed in
       let vars = [ "x"; "y"; "z" ] in
       let atoms =
         List.init
           (1 + Workload.int r 3)
           (fun i ->
              let arity = 1 + Workload.int r 2 in
              Atom.make
                (Printf.sprintf "P%d" i)
                (List.init arity (fun _ -> Term.var (Workload.pick r vars))))
       in
       let q = Cq.of_atoms atoms in
       match Safety.cq q with
       | Safety.Safe ->
         let rels = List.map (fun a -> (Atom.rel a, Atom.arity a)) atoms in
         let db = random_db ~rels (seed + 1) in
         (match Lifted.cq q db with
          | Some p ->
            Poly.Z.equal p (Model_counting.fgmc_polynomial_brute (Query.Cq q) db)
          | None -> false)
       | Safety.Unsafe | Safety.Unknown -> true)

let prop_safe_plan_agreement =
  qcheck ~count:40 "lifted engine = Safe_plan on hierarchical sjf-CQs"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
       let q = Cq.parse "R(?x), S(?x,?y)" in
       let db = random_db ~rels:[ ("R", 1); ("S", 2) ] seed in
       match Lifted.cq q db with
       | Some p -> Poly.Z.equal p (Safe_plan.fgmc_polynomial q db)
       | None -> false)

let suite =
  [
    Alcotest.test_case "Safe verdicts are constructive" `Quick test_safe_corpus_constructive;
    Alcotest.test_case "stuck on unsafe queries" `Quick test_unsafe_stuck;
    Alcotest.test_case "polynomial scaling" `Quick test_scales_beyond_brute;
    Alcotest.test_case "independent union" `Quick test_independent_union_large;
    Alcotest.test_case "ambiguous buckets are conservative" `Quick
      test_ambiguous_bucket_conservative;
    prop_lifted_sound;
    prop_safe_implies_constructive;
    prop_safe_plan_agreement;
  ]
