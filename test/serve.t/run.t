The serving loop end to end: `svc client encode` builds request frames,
`svc serve` answers them on stdin/stdout, `svc client decode` strips the
framing.  --fake-clock pins telemetry to a deterministic clock (1ms per
frame), so the whole transcript is byte-exact.

  $ cat > demo.db <<'DB'
  > endo R(1)
  > endo S(1,2)
  > endo T(2)
  > endo S(1,3)
  > exo  T(3)
  > DB

A full session: the first eval compiles (a cache miss), the second hits
the cache, an insert makes the cached engine stale so the next eval
catches up by a delta update (the new fact changes the answers), and the
delete delta brings the original answers back.

  $ ../../bin/svc_cli.exe client encode \
  >   '{"op":"ping","id":1}' \
  >   '{"op":"eval","db":"demo","query":"R(?x), S(?x,?y), T(?y)"}' \
  >   '{"op":"eval","db":"demo","query":"R(?x), S(?x,?y), T(?y)"}' \
  >   '{"op":"insert","db":"demo","fact":"T(4)"}' \
  >   '{"op":"eval","db":"demo","query":"R(?x), S(?x,?y), T(?y)"}' \
  >   '{"op":"delete","db":"demo","fact":"T(4)"}' \
  >   '{"op":"eval","db":"demo","query":"R(?x), S(?x,?y), T(?y)"}' \
  >   '{"op":"stats"}' \
  > | ../../bin/svc_cli.exe serve --db demo=demo.db --fake-clock \
  > | ../../bin/svc_cli.exe client decode
  {"ok":true,"id":1,"op":"ping"}
  {"ok":true,"op":"eval","db":"demo","backend":"conditioning","cache":"miss","version":0,"reused_nodes":0,"values":[{"fact":"R(1)","value":"7/12"},{"fact":"S(1,2)","value":"1/12"},{"fact":"S(1,3)","value":"1/4"},{"fact":"T(2)","value":"1/12"}]}
  {"ok":true,"op":"eval","db":"demo","backend":"conditioning","cache":"hit","version":0,"reused_nodes":0,"values":[{"fact":"R(1)","value":"7/12"},{"fact":"S(1,2)","value":"1/12"},{"fact":"S(1,3)","value":"1/4"},{"fact":"T(2)","value":"1/12"}]}
  {"ok":true,"op":"insert","db":"demo","version":1,"endo":5,"size":6}
  {"ok":true,"op":"eval","db":"demo","backend":"conditioning","cache":"delta","version":1,"reused_nodes":0,"values":[{"fact":"R(1)","value":"7/12"},{"fact":"S(1,2)","value":"1/12"},{"fact":"S(1,3)","value":"1/4"},{"fact":"T(2)","value":"1/12"},{"fact":"T(4)","value":"0"}]}
  {"ok":true,"op":"delete","db":"demo","version":2,"endo":4,"size":5}
  {"ok":true,"op":"eval","db":"demo","backend":"conditioning","cache":"delta","version":2,"reused_nodes":0,"values":[{"fact":"R(1)","value":"7/12"},{"fact":"S(1,2)","value":"1/12"},{"fact":"S(1,3)","value":"1/4"},{"fact":"T(2)","value":"1/12"}]}
  {"ok":true,"op":"stats","dbs":1,"engines":1,"capacity":8,"hits":1,"misses":1,"evictions":0,"delta_updates":2,"requests":8,"errors":0}

The circuit backend is cached under its own key; after a delta update
its recompiled circuit reuses the hash-consed sub-circuits the change
did not touch (reused_nodes).

  $ ../../bin/svc_cli.exe client encode \
  >   '{"op":"eval","db":"demo","query":"R(?x), S(?x,?y), T(?y)","backend":"circuit"}' \
  >   '{"op":"insert","db":"demo","fact":"T(4)"}' \
  >   '{"op":"eval","db":"demo","query":"R(?x), S(?x,?y), T(?y)","backend":"circuit","facts":["T(4)"]}' \
  > | ../../bin/svc_cli.exe serve --db demo=demo.db --fake-clock \
  > | ../../bin/svc_cli.exe client decode
  {"ok":true,"op":"eval","db":"demo","backend":"circuit","cache":"miss","version":0,"reused_nodes":0,"values":[{"fact":"R(1)","value":"7/12"},{"fact":"S(1,2)","value":"1/12"},{"fact":"S(1,3)","value":"1/4"},{"fact":"T(2)","value":"1/12"}]}
  {"ok":true,"op":"insert","db":"demo","version":1,"endo":5,"size":6}
  {"ok":true,"op":"eval","db":"demo","backend":"circuit","cache":"delta","version":1,"reused_nodes":15,"values":[{"fact":"T(4)","value":"0"}]}

LRU eviction: with capacity 2, the third distinct query evicts the
least-recently-used engine, and re-asking the first query misses again.

  $ ../../bin/svc_cli.exe client encode \
  >   '{"op":"eval","db":"demo","query":"R(?x), S(?x,?y), T(?y)"}' \
  >   '{"op":"eval","db":"demo","query":"R(?x), S(?x,?y)"}' \
  >   '{"op":"eval","db":"demo","query":"R(?x)"}' \
  >   '{"op":"eval","db":"demo","query":"R(?x), S(?x,?y), T(?y)"}' \
  >   '{"op":"stats"}' \
  > | ../../bin/svc_cli.exe serve --db demo=demo.db --fake-clock --cache-capacity 2 \
  > | ../../bin/svc_cli.exe client decode
  {"ok":true,"op":"eval","db":"demo","backend":"conditioning","cache":"miss","version":0,"reused_nodes":0,"values":[{"fact":"R(1)","value":"7/12"},{"fact":"S(1,2)","value":"1/12"},{"fact":"S(1,3)","value":"1/4"},{"fact":"T(2)","value":"1/12"}]}
  {"ok":true,"op":"eval","db":"demo","backend":"conditioning","cache":"miss","version":0,"reused_nodes":0,"values":[{"fact":"R(1)","value":"2/3"},{"fact":"S(1,2)","value":"1/6"},{"fact":"S(1,3)","value":"1/6"},{"fact":"T(2)","value":"0"}]}
  {"ok":true,"op":"eval","db":"demo","backend":"conditioning","cache":"miss","version":0,"reused_nodes":0,"values":[{"fact":"R(1)","value":"1"},{"fact":"S(1,2)","value":"0"},{"fact":"S(1,3)","value":"0"},{"fact":"T(2)","value":"0"}]}
  {"ok":true,"op":"eval","db":"demo","backend":"conditioning","cache":"miss","version":0,"reused_nodes":0,"values":[{"fact":"R(1)","value":"7/12"},{"fact":"S(1,2)","value":"1/12"},{"fact":"S(1,3)","value":"1/4"},{"fact":"T(2)","value":"1/12"}]}
  {"ok":true,"op":"stats","dbs":1,"engines":2,"capacity":2,"hits":0,"misses":4,"evictions":2,"delta_updates":0,"requests":5,"errors":0}

Errors are structured frames, never crashes: bad JSON, an unknown op and
a bad request each get an error response and the session continues; a
malformed frame is answered and then ends the session (the stream
position is gone).

  $ ../../bin/svc_cli.exe client encode \
  >   '{"op":' \
  >   '{"op":"frobnicate","id":7}' \
  >   '{"op":"delete","db":"demo","fact":"R(9)"}' \
  >   '{"op":"ping"}' \
  > | ../../bin/svc_cli.exe serve --db demo=demo.db --fake-clock \
  > | ../../bin/svc_cli.exe client decode
  {"ok":false,"error":"bad_json","message":"unexpected end of input at offset 6"}
  {"ok":false,"id":7,"error":"unknown_op","message":"unknown op \"frobnicate\""}
  {"ok":false,"error":"bad_request","message":"fact R(9) is not present"}
  {"ok":true,"op":"ping"}

  $ { ../../bin/svc_cli.exe client encode '{"op":"ping"}'; printf 'not a frame\n'; } \
  > | ../../bin/svc_cli.exe serve --db demo=demo.db --fake-clock \
  > | ../../bin/svc_cli.exe client decode
  {"ok":true,"op":"ping"}
  {"ok":false,"error":"frame","message":"frame length prefix is not a decimal line"}

A shutdown request acks and stops the loop; with the fake clock the
exported trace is deterministic, so its summary is too.

  $ ../../bin/svc_cli.exe client encode \
  >   '{"op":"eval","db":"demo","query":"R(?x), S(?x,?y), T(?y)"}' \
  >   '{"op":"trace","path":"serve-trace.json"}' \
  >   '{"op":"shutdown"}' \
  >   '{"op":"ping"}' \
  > | ../../bin/svc_cli.exe serve --db demo=demo.db --fake-clock \
  > | ../../bin/svc_cli.exe client decode
  {"ok":true,"op":"eval","db":"demo","backend":"conditioning","cache":"miss","version":0,"reused_nodes":0,"values":[{"fact":"R(1)","value":"7/12"},{"fact":"S(1,2)","value":"1/12"},{"fact":"S(1,3)","value":"1/4"},{"fact":"T(2)","value":"1/12"}]}
  {"ok":true,"op":"trace","path":"serve-trace.json"}
  {"ok":true,"op":"shutdown"}

  $ ../../bin/svc_cli.exe trace summary serve-trace.json
  trace summary : serve-trace.json
  events        : 22 (11 spans, 1 metadata, 10 counter samples)
  tracks        : 1
    track 0 (main)            : 11 spans
  spans by name:
    engine.eval                                 1x  time  : 0.00ms
    engine.fact                                 4x  time  : 0.00ms
    engine.full                                 1x  time  : 0.00ms
    engine.lineage                              1x  time  : 0.00ms
    plan.analyze                                1x  time  : 0.00ms
    plan.order                                  1x  time  : 0.00ms
    server.eval                                 1x  time  : 0.00ms
    server.request                              1x  time  : 0.00ms
  counters:
    server.delta_updates                     0
    server.cache_evictions                   0
    server.cache_misses                      1
    server.cache_hits                        0
    server.errors                            0
    server.requests                          2
    engine.compilations                      1
    engine.conditionings                     5
    plan.components                          1
    plan.max_width                           2
