open Test_util

let parse = Cq.parse

let test_parse_print () =
  let q = parse "R(?x,?y), S(?y,b)" in
  Alcotest.(check int) "two atoms" 2 (List.length (Cq.atoms q));
  Alcotest.(check bool) "vars" true
    (Term.Sset.equal (Cq.vars q) (Term.Sset.of_list [ "x"; "y" ]));
  Alcotest.(check bool) "consts" true
    (Term.Sset.equal (Cq.consts q) (Term.Sset.singleton "b"));
  Alcotest.(check bool) "reparse" true (Cq.equal (parse (Cq.to_string q)) q);
  Alcotest.check_raises "empty" (Invalid_argument "Cq.of_atoms: empty conjunction (use Query.True)")
    (fun () -> ignore (Cq.of_atoms []))

let test_eval () =
  let q = parse "R(?x,?y), S(?y,?z)" in
  Alcotest.(check bool) "sat" true
    (Cq.eval q (facts [ fact "R" [ "1"; "2" ]; fact "S" [ "2"; "3" ] ]));
  Alcotest.(check bool) "join mismatch" false
    (Cq.eval q (facts [ fact "R" [ "1"; "2" ]; fact "S" [ "4"; "3" ] ]));
  Alcotest.(check bool) "collapsing allowed" true
    (Cq.eval q (facts [ fact "R" [ "1"; "1" ]; fact "S" [ "1"; "1" ] ]));
  Alcotest.(check bool) "empty db" false (Cq.eval q Fact.Set.empty)

let test_syntactic_classes () =
  Alcotest.(check bool) "sjf" true (Cq.is_self_join_free (parse "R(?x), S(?x,?y)"));
  Alcotest.(check bool) "self join" false (Cq.is_self_join_free (parse "R(?x,?y), R(?y,?z)"));
  Alcotest.(check bool) "constant free" true (Cq.is_constant_free (parse "R(?x)"));
  Alcotest.(check bool) "has constant" false (Cq.is_constant_free (parse "R(a)"));
  Alcotest.(check bool) "connected" true (Cq.is_connected (parse "R(?x,?y), S(?y)"));
  Alcotest.(check bool) "disconnected" false (Cq.is_connected (parse "R(?x), S(?y)"));
  Alcotest.(check bool) "variable connected" true
    (Cq.is_variable_connected (parse "R(?x,?y), S(?y,?z)"));
  Alcotest.(check bool) "constant bridge not variable connected" false
    (Cq.is_variable_connected (parse "R(?x,c), S(c,?y)"))

let test_hierarchical () =
  (* the canonical non-hierarchical query q_RST *)
  Alcotest.(check bool) "q_RST" false (Cq.is_hierarchical (parse "R(?x), S(?x,?y), T(?y)"));
  Alcotest.(check bool) "R,S" true (Cq.is_hierarchical (parse "R(?x), S(?x,?y)"));
  Alcotest.(check bool) "single atom" true (Cq.is_hierarchical (parse "R(?x,?y)"));
  Alcotest.(check bool) "nested" true (Cq.is_hierarchical (parse "R(?x), S(?x,?y), U(?x,?y,?z)"));
  (* example E.1 of the paper is variable-connected and non-hierarchical *)
  let e1 = parse "R(?x,?y), S(a,?x), S(?x,a), T(?x,?z)" in
  Alcotest.(check bool) "E.1 variable connected" true (Cq.is_variable_connected e1)

let test_hierarchical_witness () =
  (match Hierarchical.witness_violation (parse "R(?x), S(?x,?y), T(?y)") with
   | Some (a1, a2, a3) ->
     let names = List.sort compare [ Atom.rel a1; Atom.rel a2; Atom.rel a3 ] in
     Alcotest.(check (list string)) "witness atoms" [ "R"; "S"; "T" ] names
   | None -> Alcotest.fail "expected violation");
  Alcotest.(check bool) "no witness for hierarchical" true
    (Hierarchical.witness_violation (parse "R(?x), S(?x,?y)") = None)

let test_core () =
  let c = Cq.core (parse "R(?x,?y), R(?x,?z)") in
  Alcotest.(check int) "core collapses" 1 (List.length (Cq.atoms c));
  let c2 = Cq.core (parse "R(?x,?y), S(?y,?z)") in
  Alcotest.(check int) "already minimal" 2 (List.length (Cq.atoms c2));
  Alcotest.(check bool) "is_minimal" true (Cq.is_minimal (parse "R(?x,?y), S(?y,?z)"));
  Alcotest.(check bool) "not minimal" false (Cq.is_minimal (parse "R(?x,?y), R(?x,?z)"));
  (* core with constants: R(x,y) ∧ R(a,z) does NOT collapse (a rigid) *)
  let c3 = Cq.core (parse "R(?x,?y), R(a,?z)") in
  Alcotest.(check int) "constant blocks retraction onto R(x,y)? no: R(x,y) maps to R(a,z)" 1
    (List.length (Cq.atoms c3))

let test_canonical_support () =
  let q = parse "R(?x,?y), S(?y,b)" in
  let s, valuation = Cq.canonical_support q in
  Alcotest.(check int) "two facts" 2 (Fact.Set.cardinal s);
  Alcotest.(check int) "two variables valued" 2 (Term.Smap.cardinal valuation);
  Alcotest.(check bool) "satisfies" true (Cq.eval q s);
  Alcotest.(check bool) "keeps b" true (Term.Sset.mem "b" (Fact.Set.consts s))

let test_minimal_supports () =
  let q = parse "R(?x), S(?x,?y)" in
  let db =
    facts
      [ fact "R" [ "1" ]; fact "S" [ "1"; "2" ]; fact "S" [ "1"; "3" ];
        fact "R" [ "4" ]; fact "S" [ "5"; "6" ] ]
  in
  let ms = Cq.minimal_supports_in q db in
  Alcotest.(check int) "two minimal supports" 2 (List.length ms);
  List.iter
    (fun s ->
       Alcotest.(check bool) "satisfies" true (Cq.eval q s);
       Fact.Set.iter
         (fun f ->
            Alcotest.(check bool) "minimal" false (Cq.eval q (Fact.Set.remove f s)))
         s)
    ms

let test_homomorphic_equivalence () =
  Alcotest.(check bool) "R(x,y) ← R(x,x)" true
    (Cq.homomorphic_to (parse "R(?x,?y)") (parse "R(?x,?x)"));
  Alcotest.(check bool) "R(x,x) not ← R(x,y)" false
    (Cq.homomorphic_to (parse "R(?x,?x)") (parse "R(?x,?y)"));
  Alcotest.(check bool) "equivalent duplicates" true
    (Cq.equivalent (parse "R(?x,?y)") (parse "R(?u,?v), R(?u,?w)"));
  Alcotest.(check bool) "different relations" false
    (Cq.equivalent (parse "R(?x)") (parse "S(?x)"))

let test_variable_components () =
  let q = parse "R(?x,?y), S(?y), T(?u,?v), U(a,b)" in
  let comps = Cq.variable_components q in
  Alcotest.(check int) "three components" 3 (List.length comps)

let test_rename_apart () =
  let q = parse "R(?x,?y)" in
  let q' = Cq.rename_apart ~avoid:(Term.Sset.of_list [ "x" ]) q in
  Alcotest.(check bool) "x renamed" false (Term.Sset.mem "x" (Cq.vars q'));
  Alcotest.(check bool) "y kept" true (Term.Sset.mem "y" (Cq.vars q'));
  Alcotest.(check bool) "still equivalent" true (Cq.equivalent q (Cq.of_atoms (Cq.atoms q')))

let prop_eval_monotone =
  qcheck ~count:80 "CQ evaluation is monotone" QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
       let r = Workload.rng seed in
       let db =
         Workload.random_database r ~rels:[ ("R", 1); ("S", 2); ("T", 1) ]
           ~consts:[ "1"; "2"; "3" ] ~n_endo:6 ~n_exo:0
       in
       let q = parse "R(?x), S(?x,?y), T(?y)" in
       let all = Database.all db in
       (not (Cq.eval q all))
       || Fact.Set.for_all
         (fun f -> Cq.eval q (Fact.Set.add f all))
         (facts [ fact "R" [ "9" ]; fact "T" [ "9" ] ]))

let prop_core_equivalent =
  qcheck ~count:50 "core is equivalent to the query" QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
       let r = Workload.rng seed in
       (* random small CQ over R/S with vars from a small pool *)
       let var () = Term.var (Workload.pick r [ "x"; "y"; "z" ]) in
       let atom () =
         if Workload.bool r then Atom.make "R" [ var (); var () ]
         else Atom.make "S" [ var () ]
       in
       let q = Cq.of_atoms (List.init (1 + Workload.int r 3) (fun _ -> atom ())) in
       Cq.equivalent q (Cq.core q))

let suite =
  [
    Alcotest.test_case "parse and print" `Quick test_parse_print;
    Alcotest.test_case "evaluation" `Quick test_eval;
    Alcotest.test_case "syntactic classes" `Quick test_syntactic_classes;
    Alcotest.test_case "hierarchical" `Quick test_hierarchical;
    Alcotest.test_case "hierarchy witness" `Quick test_hierarchical_witness;
    Alcotest.test_case "core" `Quick test_core;
    Alcotest.test_case "canonical support" `Quick test_canonical_support;
    Alcotest.test_case "minimal supports" `Quick test_minimal_supports;
    Alcotest.test_case "homomorphic equivalence" `Quick test_homomorphic_equivalence;
    Alcotest.test_case "variable components" `Quick test_variable_components;
    Alcotest.test_case "rename apart" `Quick test_rename_apart;
    prop_eval_monotone;
    prop_core_equivalent;
  ]
