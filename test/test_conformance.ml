(* Universal cross-backend conformance suite over the generator registry.

   For EVERY registered workload family:

   - a qcheck sweep draws random (seed, size) instances and checks that
     every backend — conditioning, circuit, and the sampling estimator
     with every stratum under the exact cap — at jobs ∈ {1, 4} returns
     exactly the serial conditioning values (facts, order, rationals);
   - an exhaustive sweep enumerates EVERY partitioned database (each
     fact absent / endogenous / exogenous) over a small universe drawn
     from the family's own generator and cross-checks every backend
     against raw Eq. 2 subset enumeration ([Svc.svc_brute]);
   - a golden-digest test pins the byte-exact workload serialization of
     fixed (family, seed, size) triples, so seed drift in any generator
     can never silently invalidate BENCH history.

   A future backend or family joins the matrix by registration alone. *)

open Test_util

let values_equal v1 v2 =
  List.length v1 = List.length v2
  && List.for_all2
       (fun (f1, x1) (f2, x2) -> Fact.equal f1 f2 && Rational.equal x1 x2)
       v1 v2

(* Every stratum of every conformance instance must sit under the exact
   cap, so the hybrid estimator enumerates exactly and is rationally
   equal to the exact engines: max C(n-1, k) over n <= 16 endogenous
   facts is C(15, 7) = 6435 <= 10000. *)
let hybrid_exact = Sample.config ~exact_cap:10_000 ()

(* Size ranges keep every family's endogenous count <= 16 (the bipartite
   gadget at size s has s^2 + 2s endogenous facts, the star s + 1). *)
let size_ranges =
  [ ("star", (1, 8)); ("bipartite", (1, 3)); ("rpq-road", (1, 4));
    ("crpq", (1, 6)); ("cqneg", (1, 6)); ("endogenous", (1, 6));
    ("max-svc", (1, 6)); ("const-svc", (1, 6)) ]

let size_range name =
  match List.assoc_opt name size_ranges with
  | Some r -> r
  | None -> (1, 4)  (* families registered after this suite was written *)

(* The backend × jobs matrix checked against serial conditioning. *)
let matrix =
  [ ("conditioning jobs=4", `Conditioning, 4);
    ("circuit jobs=1", `Circuit, 1);
    ("circuit jobs=4", `Circuit, 4);
    ("sample-hybrid jobs=1", `Sample hybrid_exact, 1);
    ("sample-hybrid jobs=4", `Sample hybrid_exact, 4) ]

let run ~backend ~jobs q db =
  Engine.svc_all (Engine.create ~jobs ~backend q db)

let sweep_qcheck (fam : Workload.Family.t) =
  let lo, hi = size_range fam.name in
  qcheck ~count:55
    (Printf.sprintf "%s: every backend = serial conditioning" fam.name)
    (QCheck2.Gen.pair Gen.seed_gen (QCheck2.Gen.int_range lo hi))
    (fun (seed, size) ->
       let c = Workload.generate ~family:fam.name ~seed ~size in
       let q = c.Workload.query and db = c.Workload.db in
       let reference = run ~backend:`Conditioning ~jobs:1 q db in
       List.for_all
         (fun (label, backend, jobs) ->
            if values_equal reference (run ~backend ~jobs q db) then true
            else
              QCheck2.Test.fail_reportf
                "%s disagrees with serial conditioning on %s (seed %d, size %d)"
                label fam.name seed size)
         matrix)

(* Exhaustive: the family's own generator supplies the fact universe
   (first <= 4 facts of a small instance), then 3^|U| databases each get
   every backend checked fact-by-fact against Eq. 2 brute force. *)
let sweep_exhaustive (fam : Workload.Family.t) =
  Alcotest.test_case
    (Printf.sprintf "%s: all backends vs brute force on all databases" fam.name)
    `Slow
    (fun () ->
       let c = Workload.generate ~family:fam.name ~seed:1 ~size:2 in
       let q = c.Workload.query in
       let universe =
         List.filteri (fun i _ -> i < 4)
           (Fact.Set.elements (Database.all c.Workload.db))
       in
       let checked = ref 0 in
       Gen.iter_databases universe (fun db ->
           if Database.size_endo db > 0 then begin
             incr checked;
             let brute =
               List.map (fun f -> (f, Svc.svc_brute q db f)) (Database.endo_list db)
             in
             List.iter
               (fun (label, backend, jobs) ->
                  if not (values_equal brute (run ~backend ~jobs q db)) then
                    Alcotest.failf "%s: %s mismatch on %s" fam.name label
                      (Format.asprintf "%a" Database.pp db))
               (("conditioning jobs=1", `Conditioning, 1) :: matrix)
           end);
       if !checked = 0 then Alcotest.fail "empty sweep")

(* Golden digests: one MD5 per pinned (family, seed, size) triple over
   the workload text serialization.  A digest change means the generator
   drifted — bump it consciously and re-baseline the affected BENCH
   artifacts, never silently. *)
let pinned_triples = [ (0, 3); (7, 5) ]

let digest_block () =
  String.concat ""
    (List.concat_map
       (fun (fam : Workload.Family.t) ->
          List.map
            (fun (seed, size) ->
               let c = Workload.generate ~family:fam.name ~seed ~size in
               Printf.sprintf "%s seed=%d size=%d %s\n" fam.name seed size
                 (Digest.to_hex
                    (Digest.string (Workload.to_string (Workload.to_workload c)))))
            pinned_triples)
       (Workload.families ()))

let golden_digests =
  "star seed=0 size=3 603cf94cc944ff51bda5f04d2ef84077\n\
   star seed=7 size=5 fb89d069cbaff17c1fcfc7f27307481a\n\
   bipartite seed=0 size=3 8618a7d296290a7a061da6299796369c\n\
   bipartite seed=7 size=5 0fa5e30069e35234f1f345b16dff8a99\n\
   rpq-road seed=0 size=3 df256610247c12b30f209bd506242500\n\
   rpq-road seed=7 size=5 5ce28416ddf75a0086ce2f66b65790c7\n\
   crpq seed=0 size=3 3a82bb6d7456bcb547b7d196934076c4\n\
   crpq seed=7 size=5 eca4378f1d30ca19af86f9d0a8c1af17\n\
   cqneg seed=0 size=3 d045c434f25b476bd5af4968921b599d\n\
   cqneg seed=7 size=5 4aabf02d22ef89317e575b196f484ccc\n\
   endogenous seed=0 size=3 f927357a5f63bf5979c43e3dae9d98b5\n\
   endogenous seed=7 size=5 2c9dfa0a81796ed41d3fd2df8b7717d8\n\
   max-svc seed=0 size=3 2ea9e5b57ac5f4a09db30ef8c7248d32\n\
   max-svc seed=7 size=5 b9bce742d6c503dd852a9f9936d22df5\n\
   const-svc seed=0 size=3 65b30093a5fe73cb9be2b8884e634e6b\n\
   const-svc seed=7 size=5 39159af200e78cab666aac740bc4b5e7\n"

let test_golden_digests () =
  Alcotest.(check string) "pinned generator digests" golden_digests (digest_block ())

let suite =
  List.map sweep_qcheck (Workload.families ())
  @ List.map sweep_exhaustive (Workload.families ())
  @ [ Alcotest.test_case "golden digests pin every family" `Quick
        test_golden_digests ]
