open Test_util

let q = Rational.of_ints
let b = Bigint.of_int

let test_normalization () =
  check_rational "2/4 = 1/2" Rational.half (q 2 4);
  check_rational "-2/-4 = 1/2" Rational.half (q (-2) (-4));
  check_rational "2/-4 = -1/2" (Rational.neg Rational.half) (q 2 (-4));
  check_bigint "den positive" (b 2) (Rational.den (q 3 (-2)) |> Bigint.neg |> Bigint.neg);
  Alcotest.(check bool) "den of 3/-2 positive" true (Bigint.sign (Rational.den (q 3 (-2))) > 0);
  check_rational "0/5 = 0" Rational.zero (q 0 5);
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () -> ignore (q 1 0))

let test_arithmetic () =
  check_rational "1/2 + 1/3" (q 5 6) (Rational.add Rational.half (q 1 3));
  check_rational "1/2 - 1/3" (q 1 6) (Rational.sub Rational.half (q 1 3));
  check_rational "2/3 * 3/4" Rational.half (Rational.mul (q 2 3) (q 3 4));
  check_rational "(1/2) / (1/3)" (q 3 2) (Rational.div Rational.half (q 1 3));
  check_rational "inv(-2/3)" (q (-3) 2) (Rational.inv (q (-2) 3));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Rational.inv Rational.zero))

let test_pow () =
  check_rational "(2/3)^3" (q 8 27) (Rational.pow (q 2 3) 3);
  check_rational "(2/3)^-2" (q 9 4) (Rational.pow (q 2 3) (-2));
  check_rational "x^0" Rational.one (Rational.pow (q 7 5) 0)

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Rational.lt (q 1 3) Rational.half);
  Alcotest.(check bool) "-1/2 < 1/3" true (Rational.lt (q (-1) 2) (q 1 3));
  Alcotest.(check int) "equal" 0 (Rational.compare (q 3 9) (q 1 3));
  check_rational "min" (q 1 3) (Rational.min (q 1 3) Rational.half);
  check_rational "max" Rational.half (Rational.max (q 1 3) Rational.half)

let test_integer () =
  Alcotest.(check bool) "4/2 is integer" true (Rational.is_integer (q 4 2));
  Alcotest.(check bool) "1/2 not integer" false (Rational.is_integer Rational.half);
  check_bigint "to_bigint" (b 2) (Rational.to_bigint (q 4 2));
  Alcotest.check_raises "to_bigint non-integer"
    (Invalid_argument "Rational.to_bigint: not an integer") (fun () ->
        ignore (Rational.to_bigint Rational.half))

let test_strings () =
  Alcotest.(check string) "to_string frac" "-1/2" (Rational.to_string (q 1 (-2)));
  Alcotest.(check string) "to_string int" "3" (Rational.to_string (q 6 2));
  check_rational "of_string a/b" (q 22 7) (Rational.of_string "22/7");
  check_rational "of_string int" (q 5 1) (Rational.of_string "5");
  check_rational "of_string decimal" (q 1 4) (Rational.of_string "0.25");
  check_rational "of_string negative decimal" (q (-5) 4) (Rational.of_string "-1.25")

let test_sum () =
  (* harmonic-like exact sum: 1/1 + 1/2 + 1/3 + 1/4 = 25/12 *)
  check_rational "sum" (q 25 12) (Rational.sum [ q 1 1; q 1 2; q 1 3; q 1 4 ]);
  check_rational "empty sum" Rational.zero (Rational.sum [])

let arb = QCheck2.Gen.(pair (int_range (-500) 500) (int_range 1 500))

let prop_add_comm =
  qcheck "addition commutes" (QCheck2.Gen.pair arb arb) (fun ((a, b), (c, d)) ->
      Rational.equal (Rational.add (q a b) (q c d)) (Rational.add (q c d) (q a b)))

let prop_mul_distributes =
  qcheck "multiplication distributes" (QCheck2.Gen.triple arb arb arb)
    (fun ((a, b), (c, d), (e, f)) ->
       let x = q a b and y = q c d and z = q e f in
       Rational.equal
         (Rational.mul x (Rational.add y z))
         (Rational.add (Rational.mul x y) (Rational.mul x z)))

let prop_sub_add_inverse =
  qcheck "x - y + y = x" (QCheck2.Gen.pair arb arb) (fun ((a, b), (c, d)) ->
      let x = q a b and y = q c d in
      Rational.equal (Rational.add (Rational.sub x y) y) x)

let prop_inv_involution =
  qcheck "inv (inv x) = x for x ≠ 0" arb (fun (a, b) ->
      let x = q a b in
      Rational.is_zero x || Rational.equal (Rational.inv (Rational.inv x)) x)

let prop_float_close =
  qcheck "to_float approximates" arb (fun (a, b) ->
      let f = Rational.to_float (q a b) in
      Float.abs (f -. (float_of_int a /. float_of_int b)) < 1e-9)

let suite =
  [
    Alcotest.test_case "normalization" `Quick test_normalization;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "pow" `Quick test_pow;
    Alcotest.test_case "compare" `Quick test_compare;
    Alcotest.test_case "integrality" `Quick test_integer;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "sum" `Quick test_sum;
    prop_add_comm;
    prop_mul_distributes;
    prop_sub_add_inverse;
    prop_inv_involution;
    prop_float_close;
  ]
